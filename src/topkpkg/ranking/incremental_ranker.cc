#include "topkpkg/ranking/incremental_ranker.h"

#include <algorithm>
#include <utility>

#include "topkpkg/obs/metrics.h"

namespace topkpkg::ranking {

namespace {

// Incremental-cache effectiveness counters; the searches themselves are
// counted by the shared ComputeSampleLists path.
struct CacheMetrics {
  obs::Counter* cache_hits;
  obs::Counter* cache_evictions;
  obs::Counter* cache_invalidations;
};

const CacheMetrics& Metrics() {
  static const CacheMetrics* m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    auto* mm = new CacheMetrics();
    mm->cache_hits =
        reg.GetCounter("topkpkg_ranking_cache_hits_total",
                       "Sample top lists reused from the incremental cache "
                       "(searches skipped)");
    mm->cache_evictions =
        reg.GetCounter("topkpkg_ranking_cache_evictions_total",
                       "Cached lists dropped for removed pool samples");
    mm->cache_invalidations =
        reg.GetCounter("topkpkg_ranking_cache_invalidations_total",
                       "Whole-cache flushes from a ranking-option change");
    return mm;
  }();
  return *m;
}

}  // namespace

IncrementalRanker::CacheSnapshot IncrementalRanker::Snapshot() const {
  CacheSnapshot snap;
  snap.has_options = has_cached_options_;
  snap.options = cached_options_;
  snap.epoch = epoch_;
  snap.entries.reserve(cache_.size());
  for (const auto& [id, list] : cache_) snap.entries.emplace_back(id, &list);
  std::sort(snap.entries.begin(), snap.entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snap;
}

void IncrementalRanker::RestoreSnapshot(
    bool has_options, const CacheKeyOptions& options, std::uint64_t epoch,
    std::vector<std::pair<sampling::SampleId, SampleTopList>> entries) {
  cache_.clear();
  for (auto& [id, list] : entries) cache_[id] = std::move(list);
  cached_options_ = options;
  has_cached_options_ = has_options;
  epoch_ = epoch;
}

bool IncrementalRanker::UpdateWeight(sampling::SampleId id, double weight) {
  auto it = cache_.find(id);
  if (it == cache_.end()) return false;
  it->second.weight = weight;
  return true;
}

void IncrementalRanker::InvalidateAll() {
  cache_.clear();
  has_cached_options_ = false;
  ++epoch_;
}

Result<RankingResult> IncrementalRanker::Rank(const sampling::SamplePool& pool,
                                              const sampling::PoolDelta& delta,
                                              Semantics semantics,
                                              const RankingOptions& options,
                                              IncrementalRankStats* stats,
                                              ThreadPool* workers) {
  IncrementalRankStats local;

  CacheKeyOptions key;
  key.list_size = std::max(options.k, options.sigma);
  key.limits = options.limits;
  key.has_filter = static_cast<bool>(options.package_filter);
  if (!has_cached_options_ || !(key == cached_options_)) {
    if (!cache_.empty()) local.cache_invalidated = true;
    InvalidateAll();
    cached_options_ = key;
    has_cached_options_ = true;
  }

  for (sampling::SampleId id : delta.removed_ids) {
    local.evicted += cache_.erase(id);
  }

  // Everything the cache doesn't cover — the delta's added samples plus, if
  // the cache was just invalidated, the whole pool — gets searched in one
  // ComputeSampleLists call so it shares the dedup + parallel machinery.
  std::vector<const sampling::WeightedSample*> missing;
  for (const auto& s : pool.samples()) {
    if (cache_.find(s.id) == cache_.end()) missing.push_back(&s);
  }
  if (!missing.empty()) {
    SearchDedupStats dedup;
    TOPKPKG_ASSIGN_OR_RETURN(std::vector<SampleTopList> fresh,
                             base_.ComputeSampleLists(missing, options,
                                                      workers, &dedup));
    for (std::size_t i = 0; i < missing.size(); ++i) {
      cache_[missing[i]->id] = std::move(fresh[i]);
    }
    local.searches_deduped = dedup.dedup_hits;
  }
  local.searches_run = missing.size();
  local.searches_skipped = pool.size() - missing.size();

  // Assemble the per-sample lists in pool order — the exact input the
  // from-scratch PackageRanker::Rank would aggregate — as non-owning
  // pointers into the cache, and re-run the (cheap) aggregation.
  std::vector<const SampleTopList*> lists;
  lists.reserve(pool.size());
  for (const auto& s : pool.samples()) {
    lists.push_back(&cache_.at(s.id));
  }
  if (stats != nullptr) *stats = local;
  if constexpr (obs::kMetricsEnabled) {
    const CacheMetrics& m = Metrics();
    m.cache_hits->Increment(local.searches_skipped);
    m.cache_evictions->Increment(local.evicted);
    if (local.cache_invalidated) m.cache_invalidations->Increment();
  }
  return base_.Aggregate(lists, semantics, options);
}

}  // namespace topkpkg::ranking
