#ifndef TOPKPKG_RANKING_RANKERS_H_
#define TOPKPKG_RANKING_RANKERS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "topkpkg/common/execution_options.h"
#include "topkpkg/common/status.h"
#include "topkpkg/model/package.h"
#include "topkpkg/sampling/sample.h"
#include "topkpkg/topk/topk_pkg.h"

namespace topkpkg {
class ThreadPool;
}

namespace topkpkg::ranking {

// The three package ranking semantics of Sec. 2.2, all evaluated over the
// same pool of weight-vector samples (Sec. 4):
//   EXP — rank by (estimated) expected utility E_w[w·p],
//   TKP — rank by the probability of appearing in the top-σ under w,
//   MPO — return the most probable whole top-k list.
enum class Semantics { kExp, kTkp, kMpo };

const char* SemanticsName(Semantics s);

struct RankingOptions {
  std::size_t k = 5;      // Result list length.
  std::size_t sigma = 5;  // TKP's "top-σ positions" threshold.
  topk::SearchLimits limits;
  // Optional Sec. 7 schema predicate applied inside every per-sample search
  // (failing packages are still expanded but never ranked).
  topk::TopKPkgSearch::PackageFilter package_filter;
  // Execution seam for the per-sample Top-k-Pkg searches (each sample's
  // search is independent; TopKPkgSearch::Search is const and shares only
  // the pre-sorted lists). exec.num_threads == 1 = serial; any value yields
  // identical lists.
  ExecutionOptions exec;
  // Run the per-sample searches through TopKPkgSearch::SearchBatch: unique
  // weight vectors are sorted by access signature, chunked into
  // exec.batch_width lanes, and each chunk runs one shared branch-and-bound
  // walk instead of per-sample scalar walks. Per-sample results are
  // bit-identical either way (the batch kernel's contract, enforced by
  // search_batch_property_test); false keeps the scalar path as the oracle
  // and escape hatch.
  bool batched = true;
};

// The unique-weight dedup outcome of one ComputeSampleLists call. MCMC pools
// repeat states whenever a Metropolis step is rejected, so the searched
// work-list is often much smaller than the pool — this is what makes
// batching (and the memo itself) attributable in round logs and benches.
struct SearchDedupStats {
  std::size_t total_samples = 0;    // Samples requested.
  std::size_t unique_searches = 0;  // Distinct weight vectors searched.
  std::size_t dedup_hits = 0;       // total_samples - unique_searches.
};

// The per-sample search output the rankers aggregate: the sample's top list
// (length max(k, σ)) plus the sample's importance weight.
struct SampleTopList {
  std::vector<topk::ScoredPackage> packages;
  Vec w;                   // The sample's weight vector.
  double weight = 1.0;     // The sample's importance weight.
  bool truncated = false;  // The underlying search hit a safety valve.
};

struct RankedPackage {
  model::Package package;
  // Semantics-dependent score: estimated expected utility (EXP), estimated
  // top-σ probability (TKP), or the winning list's probability (MPO; equal
  // for all members of the list).
  double score = 0.0;
};

struct RankingResult {
  std::vector<RankedPackage> packages;  // Best first, at most k.
  bool any_truncated = false;  // A per-sample search hit a safety valve.
};

// Aggregates per-sample top-k package results under the selected ranking
// semantics. Use `ComputeSampleLists` once and feed the result to several
// `Aggregate` calls to rank the same pool under different semantics without
// re-running the package search.
class PackageRanker {
 public:
  // `evaluator` must outlive the ranker.
  explicit PackageRanker(const model::PackageEvaluator* evaluator)
      : evaluator_(evaluator), search_(evaluator) {}

  // Runs Top-k-Pkg once per unique sample with list length max(k, σ).
  // `workers`, when non-null, is a caller-owned pool the searches shard
  // onto (falling back to options.exec.pool, then to a spawn-per-call pool
  // when options.exec.num_threads > 1); thread count and pool ownership
  // never change the output. `dedup`, when non-null, receives the
  // unique-weight memo's hit statistics.
  Result<std::vector<SampleTopList>> ComputeSampleLists(
      const std::vector<sampling::WeightedSample>& samples,
      const RankingOptions& options, ThreadPool* workers = nullptr,
      SearchDedupStats* dedup = nullptr) const;

  // Same search over non-owning pointers (entries must be non-null), so
  // callers that select a subset of a pool (e.g. IncrementalRanker's
  // cache-missing samples) don't copy the weight vectors first.
  Result<std::vector<SampleTopList>> ComputeSampleLists(
      const std::vector<const sampling::WeightedSample*>& samples,
      const RankingOptions& options, ThreadPool* workers = nullptr,
      SearchDedupStats* dedup = nullptr) const;

  // Pure aggregation of precomputed lists (Sec. 4's EXP/TKP/MPO logic).
  RankingResult Aggregate(const std::vector<SampleTopList>& lists,
                          Semantics semantics,
                          const RankingOptions& options) const;

  // Same aggregation over non-owning pointers, so callers that already hold
  // the lists elsewhere (e.g. IncrementalRanker's top-list cache) can
  // aggregate every round without copying them. Entries must be non-null.
  RankingResult Aggregate(const std::vector<const SampleTopList*>& lists,
                          Semantics semantics,
                          const RankingOptions& options) const;

  // Convenience: ComputeSampleLists + Aggregate.
  Result<RankingResult> Rank(
      const std::vector<sampling::WeightedSample>& samples,
      Semantics semantics, const RankingOptions& options,
      ThreadPool* workers = nullptr, SearchDedupStats* dedup = nullptr) const;

 private:
  const model::PackageEvaluator* evaluator_;
  topk::TopKPkgSearch search_;
};

}  // namespace topkpkg::ranking

#endif  // TOPKPKG_RANKING_RANKERS_H_
