#include "topkpkg/ranking/rankers.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "topkpkg/common/thread_pool.h"
#include "topkpkg/obs/metrics.h"

namespace topkpkg::ranking {

namespace {

using model::Package;
using model::PackageHash;

// Registry handles for the shared search work-list; every ranking path
// (from-scratch and incremental) funnels through ComputeSampleLists, so
// counting here covers both without double counting.
struct RankingMetrics {
  obs::Counter* sample_lists;
  obs::Counter* unique_searches;
  obs::Counter* dedup_hits;
};

const RankingMetrics& Metrics() {
  static const RankingMetrics* m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    auto* mm = new RankingMetrics();
    mm->sample_lists =
        reg.GetCounter("topkpkg_ranking_sample_lists_total",
                       "Per-sample top lists requested from the ranker");
    mm->unique_searches =
        reg.GetCounter("topkpkg_ranking_unique_searches_total",
                       "Top-k searches actually run after weight-vector "
                       "memoization");
    mm->dedup_hits =
        reg.GetCounter("topkpkg_ranking_dedup_hits_total",
                       "Sample lists served by the weight-vector memo");
    return mm;
  }();
  return *m;
}

}  // namespace

const char* SemanticsName(Semantics s) {
  switch (s) {
    case Semantics::kExp:
      return "EXP";
    case Semantics::kTkp:
      return "TKP";
    case Semantics::kMpo:
      return "MPO";
  }
  return "?";
}

Result<std::vector<SampleTopList>> PackageRanker::ComputeSampleLists(
    const std::vector<sampling::WeightedSample>& samples,
    const RankingOptions& options, ThreadPool* workers,
    SearchDedupStats* dedup) const {
  std::vector<const sampling::WeightedSample*> ptrs;
  ptrs.reserve(samples.size());
  for (const auto& s : samples) ptrs.push_back(&s);
  return ComputeSampleLists(ptrs, options, workers, dedup);
}

Result<std::vector<SampleTopList>> PackageRanker::ComputeSampleLists(
    const std::vector<const sampling::WeightedSample*>& samples,
    const RankingOptions& options, ThreadPool* workers,
    SearchDedupStats* dedup) const {
  const std::size_t list_size = std::max(options.k, options.sigma);
  const topk::TopKPkgSearch::PackageFilter* filter =
      options.package_filter ? &options.package_filter : nullptr;
  // MCMC pools repeat states whenever a Metropolis step is rejected, and the
  // search result depends only on the exact weight vector — memoize on its
  // bit pattern so duplicated samples cost one search. `unique_of[i]` maps
  // sample i to its slot in the deduplicated search work-list.
  std::unordered_map<std::string, std::size_t> memo;
  std::vector<std::size_t> unique_of(samples.size());
  std::vector<const sampling::WeightedSample*> unique_samples;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    std::string key(reinterpret_cast<const char*>(samples[i]->w.data()),
                    samples[i]->w.size() * sizeof(double));
    auto [it, inserted] = memo.emplace(key, unique_samples.size());
    if (inserted) unique_samples.push_back(samples[i]);
    unique_of[i] = it->second;
  }
  if (dedup != nullptr) {
    dedup->total_samples = samples.size();
    dedup->unique_searches = unique_samples.size();
    dedup->dedup_hits = samples.size() - unique_samples.size();
  }
  if constexpr (obs::kMetricsEnabled) {
    const RankingMetrics& m = Metrics();
    m.sample_lists->Increment(samples.size());
    m.unique_searches->Increment(unique_samples.size());
    m.dedup_hits->Increment(samples.size() - unique_samples.size());
  }

  // The unit of sharded work: one scalar search per unique sample, or —
  // batched, the default — one shared walk per chunk of signature-sorted
  // unique samples. Search()/SearchBatch() are const over shared immutable
  // state, so the only write per task is its own result slot(s); thread
  // count and batching never change the output (SearchBatch is bit-identical
  // per sample to Search).
  std::vector<Result<topk::SearchResult>> searched(
      unique_samples.size(), Status::Internal("search not run"));
  std::size_t num_tasks = unique_samples.size();
  std::function<void(std::size_t)> run_task;
  const std::size_t width = std::max<std::size_t>(1, options.exec.batch_width);
  std::vector<std::size_t> batch_order;
  if (options.batched && unique_samples.size() > 1) {
    // Sort the work-list by access signature so chunks are homogeneous: a
    // SearchBatch call walks once per distinct signature it receives, so
    // mixing signatures in one chunk forfeits the sharing. The signature
    // mirrors SearchBatch's grouping rule exactly.
    const model::Profile& profile = evaluator_->profile();
    const std::size_t m = profile.num_features();
    std::vector<std::string> sigs(unique_samples.size());
    for (std::size_t u = 0; u < unique_samples.size(); ++u) {
      std::string sig(m, '0');
      const Vec& w = unique_samples[u]->w;
      for (std::size_t f = 0; f < m; ++f) {
        if (profile.op(f) == model::AggregateOp::kNull || w[f] == 0.0) {
          continue;
        }
        sig[f] = w[f] > 0.0 ? '+' : (w[f] < 0.0 ? '-' : 'n');
      }
      sigs[u] = std::move(sig);
    }
    batch_order.resize(unique_samples.size());
    for (std::size_t u = 0; u < batch_order.size(); ++u) batch_order[u] = u;
    std::stable_sort(batch_order.begin(), batch_order.end(),
                     [&](std::size_t a, std::size_t c) {
                       return sigs[a] < sigs[c];
                     });
    num_tasks = (batch_order.size() + width - 1) / width;
    run_task = [&, width](std::size_t c) {
      const std::size_t begin = c * width;
      const std::size_t end = std::min(begin + width, batch_order.size());
      std::vector<const Vec*> ws;
      ws.reserve(end - begin);
      for (std::size_t i = begin; i < end; ++i) {
        ws.push_back(&unique_samples[batch_order[i]]->w);
      }
      // options.exec also carries the SIMD-suite and lane-compaction knobs
      // the batched kernels run under (never a result change, only speed).
      auto batch = search_.SearchBatch(ws, list_size, options.limits, filter,
                                       nullptr, options.exec);
      for (std::size_t i = begin; i < end; ++i) {
        if (batch.ok()) {
          searched[batch_order[i]] = std::move((*batch)[i - begin]);
        } else {
          searched[batch_order[i]] = batch.status();
        }
      }
    };
  } else {
    run_task = [&](std::size_t u) {
      searched[u] = search_.Search(unique_samples[u]->w, list_size,
                                   options.limits, filter);
    };
  }
  if (workers == nullptr) workers = options.exec.pool;
  if (options.exec.num_threads <= 1 || num_tasks <= 1) {
    for (std::size_t t = 0; t < num_tasks; ++t) run_task(t);
  } else if (workers != nullptr) {
    // Caller-owned pool: no spawn/join per call, and the workers' warm
    // thread_local scratch arenas are reused across rounds. The pool may be
    // sized for another phase, so cap at this call's own knob.
    workers->ParallelFor(num_tasks, options.exec.num_threads, run_task);
  } else {
    ThreadPool pool(std::min(options.exec.num_threads, num_tasks));
    pool.ParallelFor(num_tasks, run_task);
  }

  // Each unique result's package list is moved out at its last use and
  // copied only for earlier duplicates, so the common all-unique pool pays
  // no extra copies.
  std::vector<std::size_t> last_use(unique_samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) last_use[unique_of[i]] = i;
  std::vector<SampleTopList> lists;
  lists.reserve(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    Result<topk::SearchResult>& res = searched[unique_of[i]];
    if (!res.ok()) return res.status();
    SampleTopList list;
    list.packages = last_use[unique_of[i]] == i ? std::move(res->packages)
                                                : res->packages;
    list.w = samples[i]->w;
    list.weight = samples[i]->weight;
    list.truncated = res->truncated;
    lists.push_back(std::move(list));
  }
  return lists;
}

RankingResult PackageRanker::Aggregate(const std::vector<SampleTopList>& lists,
                                       Semantics semantics,
                                       const RankingOptions& options) const {
  std::vector<const SampleTopList*> ptrs;
  ptrs.reserve(lists.size());
  for (const SampleTopList& l : lists) ptrs.push_back(&l);
  return Aggregate(ptrs, semantics, options);
}

RankingResult PackageRanker::Aggregate(
    const std::vector<const SampleTopList*>& lists, Semantics semantics,
    const RankingOptions& options) const {
  RankingResult result;
  double total_weight = 0.0;
  for (const SampleTopList* l : lists) {
    total_weight += l->weight;
    result.any_truncated = result.any_truncated || l->truncated;
  }
  if (total_weight <= 0.0) return result;

  auto finalize = [&](std::vector<RankedPackage> ranked) {
    std::sort(ranked.begin(), ranked.end(),
              [](const RankedPackage& a, const RankedPackage& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.package.items() < b.package.items();
              });
    if (ranked.size() > options.k) ranked.resize(options.k);
    result.packages = std::move(ranked);
  };

  switch (semantics) {
    case Semantics::kExp: {
      // Because the utility is linear in w, the expected utility is exact:
      // E_w[w·p̂] = w̄·p̂ with w̄ the (importance-weighted) mean weight
      // vector. The paper's sampling estimator — mean utility over the
      // samples where a package appears in the top list — is biased toward
      // packages that appear rarely but luckily; computing w̄·p̂ over the
      // candidate union (plus the top list under w̄ itself, so the true EXP
      // winner cannot be missed) avoids that bias at the same cost.
      Vec mean_w(lists[0]->w.size(), 0.0);
      for (const SampleTopList* l : lists) {
        for (std::size_t f = 0; f < mean_w.size(); ++f) {
          mean_w[f] += l->weight * l->w[f];
        }
      }
      for (double& v : mean_w) v /= total_weight;

      std::unordered_map<Package, double, PackageHash> candidates;
      for (const SampleTopList* l : lists) {
        for (std::size_t i = 0; i < std::min(l->packages.size(), options.k);
             ++i) {
          candidates.emplace(l->packages[i].package, 0.0);
        }
      }
      auto mean_top = search_.Search(mean_w, options.k, options.limits);
      if (mean_top.ok()) {
        for (const auto& sp : mean_top->packages) {
          candidates.emplace(sp.package, 0.0);
        }
      }
      std::vector<RankedPackage> ranked;
      ranked.reserve(candidates.size());
      for (auto& [pkg, unused] : candidates) {
        ranked.push_back(
            RankedPackage{pkg, evaluator_->Utility(pkg, mean_w)});
      }
      finalize(std::move(ranked));
      break;
    }
    case Semantics::kTkp: {
      // Count (weighted) how often each package lands in the sample's top-σ.
      std::unordered_map<Package, double, PackageHash> counter;
      for (const SampleTopList* l : lists) {
        for (std::size_t i = 0;
             i < std::min(l->packages.size(), options.sigma); ++i) {
          counter[l->packages[i].package] += l->weight;
        }
      }
      std::vector<RankedPackage> ranked;
      ranked.reserve(counter.size());
      for (auto& [pkg, w] : counter) {
        ranked.push_back(RankedPackage{pkg, w / total_weight});
      }
      finalize(std::move(ranked));
      break;
    }
    case Semantics::kMpo: {
      // Count (weighted) whole top-k lists; return the most probable one.
      struct ListStat {
        double weight = 0.0;
        const SampleTopList* exemplar = nullptr;
      };
      std::unordered_map<std::string, ListStat> counter;
      for (const SampleTopList* l : lists) {
        std::string key;
        for (std::size_t i = 0; i < std::min(l->packages.size(), options.k);
             ++i) {
          key += l->packages[i].package.Key();
          key += '|';
        }
        ListStat& st = counter[key];
        st.weight += l->weight;
        if (st.exemplar == nullptr) st.exemplar = l;
      }
      const ListStat* best = nullptr;
      std::string best_key;
      for (auto& [key, st] : counter) {
        if (best == nullptr || st.weight > best->weight ||
            (st.weight == best->weight && key < best_key)) {
          best = &st;
          best_key = key;
        }
      }
      if (best != nullptr && best->exemplar != nullptr) {
        double prob = best->weight / total_weight;
        for (std::size_t i = 0;
             i < std::min(best->exemplar->packages.size(), options.k); ++i) {
          result.packages.push_back(
              RankedPackage{best->exemplar->packages[i].package, prob});
        }
      }
      break;
    }
  }
  return result;
}

Result<RankingResult> PackageRanker::Rank(
    const std::vector<sampling::WeightedSample>& samples, Semantics semantics,
    const RankingOptions& options, ThreadPool* workers,
    SearchDedupStats* dedup) const {
  TOPKPKG_ASSIGN_OR_RETURN(
      std::vector<SampleTopList> lists,
      ComputeSampleLists(samples, options, workers, dedup));
  return Aggregate(lists, semantics, options);
}

}  // namespace topkpkg::ranking
