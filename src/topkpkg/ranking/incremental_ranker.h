#ifndef TOPKPKG_RANKING_INCREMENTAL_RANKER_H_
#define TOPKPKG_RANKING_INCREMENTAL_RANKER_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "topkpkg/common/status.h"
#include "topkpkg/ranking/rankers.h"
#include "topkpkg/sampling/sample_pool.h"

namespace topkpkg::ranking {

// Per-call reuse accounting for IncrementalRanker::Rank.
struct IncrementalRankStats {
  std::size_t searches_run = 0;      // Samples whose top list was computed.
  std::size_t searches_skipped = 0;  // Samples served from the cache.
  std::size_t searches_deduped = 0;  // Cache-missing duplicates served by the
                                     // unique-weight memo (no own search).
  std::size_t evicted = 0;           // Cache entries dropped via the delta.
  bool cache_invalidated = false;    // The whole cache was cleared this call.
};

// Stateful ranker for the incremental serving loop: a TopListCache keyed by
// stable SampleId holds each pooled sample's Top-k-Pkg result, so a round
// that replaced only the violators (Sec. 3.4) re-searches only the added
// samples — an unchanged weight vector provably yields an unchanged top
// list. Aggregation (EXP/TKP/MPO) re-runs every round over cached + fresh
// lists in pool order, which makes the result bit-identical to
// PackageRanker::Rank over the same pool.
//
// Invalidation rules: the cache is valid only for a fixed evaluator (bound
// at construction), search limits, result list length max(k, σ), and package
// filter. Limit/list-length changes are detected automatically and clear the
// cache; the filter is an opaque std::function, so only its presence is
// tracked — callers that swap the filter's behavior must call
// InvalidateAll() themselves. Every clear bumps ranking_epoch().
class IncrementalRanker {
 public:
  // `evaluator` must outlive the ranker.
  explicit IncrementalRanker(const model::PackageEvaluator* evaluator)
      : base_(evaluator) {}

  // Ranks the whole pool. `delta` is the mutation that produced the pool's
  // current state: its removed_ids are evicted, and any pool sample without
  // a cache entry (the delta's added samples, or everything after an
  // invalidation) is searched via the same deduplicated, optionally
  // num_threads-parallel path PackageRanker uses. `workers`, when non-null,
  // is a caller-owned pool those searches run on (no spawn/join per round).
  // Neither thread count nor pool ownership ever changes the output.
  Result<RankingResult> Rank(const sampling::SamplePool& pool,
                             const sampling::PoolDelta& delta,
                             Semantics semantics,
                             const RankingOptions& options,
                             IncrementalRankStats* stats = nullptr,
                             ThreadPool* workers = nullptr);

  // Clears the TopListCache and bumps the epoch. Call when the package
  // filter's behavior (not just presence) changes.
  void InvalidateAll();

  // Incremented on every whole-cache invalidation (explicit or automatic).
  std::uint64_t ranking_epoch() const { return epoch_; }
  std::size_t cache_size() const { return cache_.size(); }

  // The RankingOptions fields a cached top list depends on.
  struct CacheKeyOptions {
    std::size_t list_size = 0;  // max(k, sigma)
    topk::SearchLimits limits;
    bool has_filter = false;
    bool operator==(const CacheKeyOptions& o) const {
      return list_size == o.list_size &&
             limits.max_expansions == o.limits.max_expansions &&
             limits.max_items_accessed == o.limits.max_items_accessed &&
             limits.max_queue == o.limits.max_queue &&
             limits.expand_on_ties == o.limits.expand_on_ties &&
             has_filter == o.has_filter;
    }
  };

  // --- storage-layer snapshot access -------------------------------------

  // The whole cache state, entries ascending by id so serialized snapshots
  // are deterministic. Pointers borrow from the cache; consume before the
  // next mutating call.
  struct CacheSnapshot {
    bool has_options = false;
    CacheKeyOptions options;
    std::uint64_t epoch = 0;
    std::vector<std::pair<sampling::SampleId, const SampleTopList*>> entries;
  };
  CacheSnapshot Snapshot() const;

  // Replaces the cache state with a snapshot's. Restoring the cached
  // options is what lets the first post-restore Rank() keep the entries
  // (same key → no auto-invalidation) instead of re-searching the pool.
  void RestoreSnapshot(
      bool has_options, const CacheKeyOptions& options, std::uint64_t epoch,
      std::vector<std::pair<sampling::SampleId, SampleTopList>> entries);

  // Overwrites the cached importance weight for `id` (survivor reweighting
  // under a changed proposal): a cached top list depends only on the
  // sample's weight *vector*, so the list stays valid and only the
  // aggregation-side weight needs the update. False when `id` is not
  // cached.
  bool UpdateWeight(sampling::SampleId id, double weight);

 private:
  PackageRanker base_;
  std::unordered_map<sampling::SampleId, SampleTopList> cache_;
  CacheKeyOptions cached_options_;
  bool has_cached_options_ = false;
  std::uint64_t epoch_ = 0;
};

}  // namespace topkpkg::ranking

#endif  // TOPKPKG_RANKING_INCREMENTAL_RANKER_H_
