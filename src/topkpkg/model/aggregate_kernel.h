#ifndef TOPKPKG_MODEL_AGGREGATE_KERNEL_H_
#define TOPKPKG_MODEL_AGGREGATE_KERNEL_H_

// The single implementation of the per-op aggregate arithmetic (Definition 1
// + the Algorithm 3 `upper-exp` bound). Every layer that folds item values
// into package aggregates, normalizes them, or upper-bounds a package's
// utility delegates here:
//
//   model    — AggregateState (Add / NormalizedFeature / Utility)
//   topk     — the reference UpperExp and the search kernel's scratch-
//              resident twins (UtilityOf / PeekPadUtility / PaddedBound /
//              EmptyUpper), plus the NaivePackageEnumerator oracle via
//              AggregateState
//   sampling — PackageConstraintChecker's aggregate-threshold checks
//   baseline — SolveHardConstraint*'s budget checks
//
// There are deliberately no other copies: the per-op rules (null skipping,
// avg dividing by the *package* size including null rows, count-0 min/max
// evaluating to 0, τ padding, the Lemma 3 greedy stop) are edge-case-heavy
// enough that bit-synchronized twins kept drifting — see
// search_kernel_property_test, which sweeps this arithmetic against the
// exhaustive oracle.
//
// Aggregates are stored as flat stripes: per feature one packed
// [count, sum, min, max] block of kAggStripeWidth doubles. The functions are
// header-inlined because they sit in the branch-and-bound search's innermost
// loop (~2 bound evaluations per expansion).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "topkpkg/model/item_table.h"
#include "topkpkg/model/profile.h"

namespace topkpkg::model {

inline constexpr std::size_t kAggStripeWidth = 4;  // [count, sum, min, max]

// Resets `nf` stripes to the empty-package state.
inline void AggInitStripes(double* blk, std::size_t nf) {
  for (std::size_t f = 0; f < nf; ++f) {
    double* cell = blk + kAggStripeWidth * f;
    cell[0] = 0.0;
    cell[1] = 0.0;
    cell[2] = std::numeric_limits<double>::infinity();
    cell[3] = -std::numeric_limits<double>::infinity();
  }
}

// Folds one non-null value into a stripe.
inline void AggFoldValue(double* cell, double v) {
  cell[0] += 1.0;
  cell[1] += v;
  cell[2] = std::min(cell[2], v);
  cell[3] = std::max(cell[3], v);
}

// Folds an m-wide item row (NaN entries are nulls and are skipped; the
// package size, which `avg` divides by, is tracked by the caller).
inline void AggFoldRow(double* blk, const double* row, std::size_t m) {
  for (std::size_t f = 0; f < m; ++f) {
    const double v = row[f];
    if (IsNull(v)) continue;
    AggFoldValue(blk + kAggStripeWidth * f, v);
  }
}

// Same fold restricted to `nf` selected columns of the row (the search
// kernel's active-feature plan): stripe a holds columns[a]'s aggregates.
inline void AggFoldRowActive(double* blk, const double* row,
                             const std::size_t* columns, std::size_t nf) {
  for (std::size_t a = 0; a < nf; ++a) {
    const double v = row[columns[a]];
    if (IsNull(v)) continue;
    AggFoldValue(blk + kAggStripeWidth * a, v);
  }
}

// Folds the boundary item τ (one effective value per stripe, already mapped
// from the per-feature sorted-list frontier; a null entry folds nothing but
// still occupies a package slot, which the caller's size accounting covers).
inline void AggFoldTau(double* blk, const double* tau, std::size_t nf) {
  for (std::size_t a = 0; a < nf; ++a) {
    const double v = tau[a];
    if (IsNull(v)) continue;
    AggFoldValue(blk + kAggStripeWidth * a, v);
  }
}

// The per-op raw aggregate value of one stripe (Definition 1): `avg` divides
// the non-null sum by the package size (null rows included), a min/max with
// no non-null contribution — and a `null`-profiled feature — evaluate to 0.
inline double AggRaw(const double* cell, AggregateOp op, std::size_t size) {
  switch (op) {
    case AggregateOp::kNull:
      return 0.0;
    case AggregateOp::kSum:
      return cell[1];
    case AggregateOp::kAvg:
      return size > 0 ? cell[1] / static_cast<double>(size) : 0.0;
    case AggregateOp::kMin:
      return cell[0] > 0 ? cell[2] : 0.0;
    case AggregateOp::kMax:
      return cell[0] > 0 ? cell[3] : 0.0;
  }
  return 0.0;
}

// Raw aggregate after one more τ fold, without committing it — the peek the
// empty-package bound's greedy stop uses. `padded_size` is the package size
// before the peeked fold.
inline double AggPeekTauRaw(const double* cell, AggregateOp op, double tau,
                            std::size_t padded_size) {
  if (IsNull(tau)) return AggRaw(cell, op, padded_size + 1);
  switch (op) {
    case AggregateOp::kNull:
      return 0.0;
    case AggregateOp::kSum:
      return cell[1] + tau;
    case AggregateOp::kAvg:
      return (cell[1] + tau) / static_cast<double>(padded_size + 1);
    case AggregateOp::kMin:
      return std::min(cell[2], tau);
    case AggregateOp::kMax:
      return std::max(cell[3], tau);
  }
  return 0.0;
}

// The evaluation plan a stripe block is scored under: parallel per-stripe
// ops / weights / normalization scales. Stripe a of a block corresponds to
// entry a of each array (the caller fixes which table column that is).
struct AggregatePlan {
  const AggregateOp* ops = nullptr;
  const double* weights = nullptr;
  const double* scales = nullptr;
  std::size_t num_features = 0;
};

// U = Σ_a w_a · (raw_a / scale_a), ascending stripe order, zero-weight
// stripes skipped — the one utility evaluation every layer shares.
inline double AggUtility(const AggregatePlan& plan, const double* blk,
                         std::size_t size) {
  double u = 0.0;
  for (std::size_t a = 0; a < plan.num_features; ++a) {
    const double w = plan.weights[a];
    if (w == 0.0) continue;
    u += w * (AggRaw(blk + kAggStripeWidth * a, plan.ops[a], size) /
              plan.scales[a]);
  }
  return u;
}

// Utility after one more τ pad, without committing it.
inline double AggPeekTauUtility(const AggregatePlan& plan, const double* blk,
                                const double* tau, std::size_t padded_size) {
  double u = 0.0;
  for (std::size_t a = 0; a < plan.num_features; ++a) {
    const double w = plan.weights[a];
    if (w == 0.0) continue;
    u += w * (AggPeekTauRaw(blk + kAggStripeWidth * a, plan.ops[a], tau[a],
                            padded_size) /
              plan.scales[a]);
  }
  return u;
}

// True iff a feature's upper bounds need the null-aware relaxation below:
// min-aggregated, negative weight, over a column that may hold nulls. The
// one eligibility rule both the search kernel's per-call plan and the
// reference UpperExp derive their relax masks from.
inline bool AggNeedsNullRelaxation(AggregateOp op, double weight,
                                   bool nullable_column) {
  return op == AggregateOp::kMin && weight < 0.0 && nullable_column;
}

// Null-aware bound weights. `relax[a]` marks stripes whose τ padding is NOT
// admissible when the package has no non-null contribution yet: a
// min-aggregated feature with negative weight over a nullable column. There
// a count-0 package contributes exactly 0 (AggRaw's count-0 rule), which
// beats any τ-padded minimum under a negative weight — folding τ anyway is
// what used to let the search prune (and miss) packages of null items. The
// resolve zeroes those stripes' weights for the bound evaluation, carrying
// the count-0 contribution of 0 explicitly; stripes that already hold a
// non-null value (count > 0) keep the exact τ-padded arithmetic, which is
// admissible for them. `blk == nullptr` means the empty package (all counts
// 0). Never apply this to the exact utility of a real package — only to
// upper bounds.
inline void AggResolveBoundWeights(const AggregatePlan& plan,
                                   const double* blk,
                                   const std::uint8_t* relax, double* out) {
  for (std::size_t a = 0; a < plan.num_features; ++a) {
    const bool count0 = blk == nullptr || blk[kAggStripeWidth * a] == 0.0;
    out[a] = (relax[a] != 0 && count0) ? 0.0 : plan.weights[a];
  }
}

// Algorithm 3 (`upper-exp`) over a stripe block: upper-bounds the utility
// achievable by extending the block's package with up to `slots` copies of
// the boundary item τ. For set-monotone U all slots are filled; otherwise
// padding stops at the first non-positive marginal gain (Lemma 3 makes the
// greedy stop correct). sum/avg advance per pad, min/max are constant after
// the first, so the pad accumulators are scalar — `pad` is caller scratch of
// num_features stripes and no aggregate state is ever copied. Callers with
// nullable min/negative-weight features must resolve the plan's weights
// through AggResolveBoundWeights first.
inline double AggTauPaddedBound(const AggregatePlan& plan, const double* blk,
                                std::size_t size, const double* tau,
                                std::size_t slots, bool set_monotone,
                                double* pad) {
  std::memcpy(pad, blk,
              plan.num_features * kAggStripeWidth * sizeof(double));
  double best = AggUtility(plan, pad, size);
  for (std::size_t i = 0; i < slots; ++i) {
    AggFoldTau(pad, tau, plan.num_features);
    const double u = AggUtility(plan, pad, size + i + 1);
    if (!set_monotone && u <= best) return best;  // Lemma 3: greedy stop.
    best = std::max(best, u);
  }
  return best;
}

// The empty-package variant: upper bound for packages made purely of
// not-yet-folded items. At least one τ pad is forced (packages are
// non-empty); the peek-based stop mirrors AggTauPaddedBound's greedy stop.
inline double AggEmptyTauBound(const AggregatePlan& plan, const double* tau,
                               std::size_t phi, bool set_monotone,
                               double* pad) {
  AggInitStripes(pad, plan.num_features);
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < phi; ++i) {
    AggFoldTau(pad, tau, plan.num_features);
    const double u = AggUtility(plan, pad, i + 1);
    best = std::max(best, u);
    if (!set_monotone && i > 0 &&
        AggPeekTauUtility(plan, pad, tau, i + 1) <= u) {
      break;
    }
  }
  return best;
}

// Raw aggregate of one table column over an explicit item set (the
// constraint layers' entry point: aggregate-threshold and budget checks).
// Out-of-line — these callers are not on the search's hot path.
double AggRawOverColumn(const ItemTable& table,
                        const std::vector<ItemId>& items, std::size_t feature,
                        AggregateOp op);

}  // namespace topkpkg::model

#endif  // TOPKPKG_MODEL_AGGREGATE_KERNEL_H_
