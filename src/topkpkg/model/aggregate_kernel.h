#ifndef TOPKPKG_MODEL_AGGREGATE_KERNEL_H_
#define TOPKPKG_MODEL_AGGREGATE_KERNEL_H_

// The single implementation of the per-op aggregate arithmetic (Definition 1
// + the Algorithm 3 `upper-exp` bound). Every layer that folds item values
// into package aggregates, normalizes them, or upper-bounds a package's
// utility delegates here:
//
//   model    — AggregateState (Add / NormalizedFeature / Utility)
//   topk     — the reference UpperExp and the search kernel's scratch-
//              resident twins (UtilityOf / PeekPadUtility / PaddedBound /
//              EmptyUpper), plus the NaivePackageEnumerator oracle via
//              AggregateState
//   sampling — PackageConstraintChecker's aggregate-threshold checks
//   baseline — SolveHardConstraint*'s budget checks
//
// There are deliberately no other copies: the per-op rules (null skipping,
// avg dividing by the *package* size including null rows, count-0 min/max
// evaluating to 0, τ padding, the Lemma 3 greedy stop) are edge-case-heavy
// enough that bit-synchronized twins kept drifting — see
// search_kernel_property_test, which sweeps this arithmetic against the
// exhaustive oracle.
//
// Aggregates are stored as flat stripes: per feature one packed
// [count, sum, min, max] block of kAggStripeWidth doubles. The functions are
// header-inlined because they sit in the branch-and-bound search's innermost
// loop (~2 bound evaluations per expansion).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "topkpkg/common/execution_options.h"
#include "topkpkg/model/item_table.h"
#include "topkpkg/model/profile.h"

namespace topkpkg::model {

inline constexpr std::size_t kAggStripeWidth = 4;  // [count, sum, min, max]

// Resets `nf` stripes to the empty-package state.
inline void AggInitStripes(double* blk, std::size_t nf) {
  for (std::size_t f = 0; f < nf; ++f) {
    double* cell = blk + kAggStripeWidth * f;
    cell[0] = 0.0;
    cell[1] = 0.0;
    cell[2] = std::numeric_limits<double>::infinity();
    cell[3] = -std::numeric_limits<double>::infinity();
  }
}

// Folds one non-null value into a stripe.
inline void AggFoldValue(double* cell, double v) {
  cell[0] += 1.0;
  cell[1] += v;
  cell[2] = std::min(cell[2], v);
  cell[3] = std::max(cell[3], v);
}

// Folds an m-wide item row (NaN entries are nulls and are skipped; the
// package size, which `avg` divides by, is tracked by the caller).
inline void AggFoldRow(double* blk, const double* row, std::size_t m) {
  for (std::size_t f = 0; f < m; ++f) {
    const double v = row[f];
    if (IsNull(v)) continue;
    AggFoldValue(blk + kAggStripeWidth * f, v);
  }
}

// Same fold restricted to `nf` selected columns of the row (the search
// kernel's active-feature plan): stripe a holds columns[a]'s aggregates.
inline void AggFoldRowActive(double* blk, const double* row,
                             const std::size_t* columns, std::size_t nf) {
  for (std::size_t a = 0; a < nf; ++a) {
    const double v = row[columns[a]];
    if (IsNull(v)) continue;
    AggFoldValue(blk + kAggStripeWidth * a, v);
  }
}

// Folds the boundary item τ (one effective value per stripe, already mapped
// from the per-feature sorted-list frontier; a null entry folds nothing but
// still occupies a package slot, which the caller's size accounting covers).
inline void AggFoldTau(double* blk, const double* tau, std::size_t nf) {
  for (std::size_t a = 0; a < nf; ++a) {
    const double v = tau[a];
    if (IsNull(v)) continue;
    AggFoldValue(blk + kAggStripeWidth * a, v);
  }
}

// The per-op raw aggregate value of one stripe (Definition 1): `avg` divides
// the non-null sum by the package size (null rows included), a min/max with
// no non-null contribution — and a `null`-profiled feature — evaluate to 0.
inline double AggRaw(const double* cell, AggregateOp op, std::size_t size) {
  switch (op) {
    case AggregateOp::kNull:
      return 0.0;
    case AggregateOp::kSum:
      return cell[1];
    case AggregateOp::kAvg:
      return size > 0 ? cell[1] / static_cast<double>(size) : 0.0;
    case AggregateOp::kMin:
      return cell[0] > 0 ? cell[2] : 0.0;
    case AggregateOp::kMax:
      return cell[0] > 0 ? cell[3] : 0.0;
  }
  return 0.0;
}

// Raw aggregate after one more τ fold, without committing it — the peek the
// empty-package bound's greedy stop uses. `padded_size` is the package size
// before the peeked fold.
inline double AggPeekTauRaw(const double* cell, AggregateOp op, double tau,
                            std::size_t padded_size) {
  if (IsNull(tau)) return AggRaw(cell, op, padded_size + 1);
  switch (op) {
    case AggregateOp::kNull:
      return 0.0;
    case AggregateOp::kSum:
      return cell[1] + tau;
    case AggregateOp::kAvg:
      return (cell[1] + tau) / static_cast<double>(padded_size + 1);
    case AggregateOp::kMin:
      return std::min(cell[2], tau);
    case AggregateOp::kMax:
      return std::max(cell[3], tau);
  }
  return 0.0;
}

// The evaluation plan a stripe block is scored under: parallel per-stripe
// ops / weights / normalization scales. Stripe a of a block corresponds to
// entry a of each array (the caller fixes which table column that is).
struct AggregatePlan {
  const AggregateOp* ops = nullptr;
  const double* weights = nullptr;
  const double* scales = nullptr;
  std::size_t num_features = 0;
};

// U = Σ_a w_a · (raw_a / scale_a), ascending stripe order, zero-weight
// stripes skipped — the one utility evaluation every layer shares.
inline double AggUtility(const AggregatePlan& plan, const double* blk,
                         std::size_t size) {
  double u = 0.0;
  for (std::size_t a = 0; a < plan.num_features; ++a) {
    const double w = plan.weights[a];
    if (w == 0.0) continue;
    u += w * (AggRaw(blk + kAggStripeWidth * a, plan.ops[a], size) /
              plan.scales[a]);
  }
  return u;
}

// Utility after one more τ pad, without committing it.
inline double AggPeekTauUtility(const AggregatePlan& plan, const double* blk,
                                const double* tau, std::size_t padded_size) {
  double u = 0.0;
  for (std::size_t a = 0; a < plan.num_features; ++a) {
    const double w = plan.weights[a];
    if (w == 0.0) continue;
    u += w * (AggPeekTauRaw(blk + kAggStripeWidth * a, plan.ops[a], tau[a],
                            padded_size) /
              plan.scales[a]);
  }
  return u;
}

// True iff a feature's upper bounds need the null-aware relaxation below:
// min-aggregated, negative weight, over a column that may hold nulls. The
// one eligibility rule both the search kernel's per-call plan and the
// reference UpperExp derive their relax masks from.
inline bool AggNeedsNullRelaxation(AggregateOp op, double weight,
                                   bool nullable_column) {
  return op == AggregateOp::kMin && weight < 0.0 && nullable_column;
}

// Null-aware bound weights. `relax[a]` marks stripes whose τ padding is NOT
// admissible when the package has no non-null contribution yet: a
// min-aggregated feature with negative weight over a nullable column. There
// a count-0 package contributes exactly 0 (AggRaw's count-0 rule), which
// beats any τ-padded minimum under a negative weight — folding τ anyway is
// what used to let the search prune (and miss) packages of null items. The
// resolve zeroes those stripes' weights for the bound evaluation, carrying
// the count-0 contribution of 0 explicitly; stripes that already hold a
// non-null value (count > 0) keep the exact τ-padded arithmetic, which is
// admissible for them. `blk == nullptr` means the empty package (all counts
// 0). Never apply this to the exact utility of a real package — only to
// upper bounds.
inline void AggResolveBoundWeights(const AggregatePlan& plan,
                                   const double* blk,
                                   const std::uint8_t* relax, double* out) {
  for (std::size_t a = 0; a < plan.num_features; ++a) {
    const bool count0 = blk == nullptr || blk[kAggStripeWidth * a] == 0.0;
    out[a] = (relax[a] != 0 && count0) ? 0.0 : plan.weights[a];
  }
}

// Algorithm 3 (`upper-exp`) over a stripe block: upper-bounds the utility
// achievable by extending the block's package with up to `slots` copies of
// the boundary item τ. For set-monotone U all slots are filled; otherwise
// padding stops at the first non-positive marginal gain (Lemma 3 makes the
// greedy stop correct). sum/avg advance per pad, min/max are constant after
// the first, so the pad accumulators are scalar — `pad` is caller scratch of
// num_features stripes and no aggregate state is ever copied. Callers with
// nullable min/negative-weight features must resolve the plan's weights
// through AggResolveBoundWeights first.
inline double AggTauPaddedBound(const AggregatePlan& plan, const double* blk,
                                std::size_t size, const double* tau,
                                std::size_t slots, bool set_monotone,
                                double* pad) {
  std::memcpy(pad, blk,
              plan.num_features * kAggStripeWidth * sizeof(double));
  double best = AggUtility(plan, pad, size);
  for (std::size_t i = 0; i < slots; ++i) {
    AggFoldTau(pad, tau, plan.num_features);
    const double u = AggUtility(plan, pad, size + i + 1);
    if (!set_monotone && u <= best) return best;  // Lemma 3: greedy stop.
    best = std::max(best, u);
  }
  return best;
}

// The empty-package variant: upper bound for packages made purely of
// not-yet-folded items. At least one τ pad is forced (packages are
// non-empty); the peek-based stop mirrors AggTauPaddedBound's greedy stop.
inline double AggEmptyTauBound(const AggregatePlan& plan, const double* tau,
                               std::size_t phi, bool set_monotone,
                               double* pad) {
  AggInitStripes(pad, plan.num_features);
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < phi; ++i) {
    AggFoldTau(pad, tau, plan.num_features);
    const double u = AggUtility(plan, pad, i + 1);
    best = std::max(best, u);
    if (!set_monotone && i > 0 &&
        AggPeekTauUtility(plan, pad, tau, i + 1) <= u) {
      break;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Batched (multi-lane) evaluation.
//
// The batched search (TopKPkgSearch::SearchBatch) walks one shared frontier
// and scores every node under many weight vectors ("lanes") at once. The
// entry points below keep the per-op arithmetic identical to the scalar
// ones: the raw aggregate of each stripe is normalized once (AggRaw /
// scale — the same division, in the same order), and each lane's utility is
// then the plain dot product of those shared normalized raws with the
// lane's weight column. A lane's value is therefore bit-for-bit what the
// scalar AggUtility / AggTauPaddedBound / AggEmptyTauBound would compute
// under that lane's weights — the property suite enforces this. Loops run
// stripe-outer / lane-inner over column-major weights, so the inner loop is
// a contiguous multiply-add stream the compiler can auto-vectorize.
// ---------------------------------------------------------------------------

// The batched evaluation plan: per-stripe ops / normalization scales shared
// by every lane, plus the column-major lane weights.
struct AggBatchPlan {
  const AggregateOp* ops = nullptr;
  const double* scales = nullptr;
  // wcol[a * lanes + j] = lane j's weight on stripe a. Entries are the exact
  // per-lane weights (never resolved); bound evaluations express the
  // null-aware relaxation through a shared `skip` set instead, which is
  // lane-uniform within an access-signature group (relax eligibility depends
  // only on op, weight sign and column nullability — all group constants).
  const double* wcol = nullptr;
  std::size_t num_features = 0;
  std::size_t lanes = 0;
};

// raw_norm[a] = AggRaw(stripe a) / scale[a] — the shared, lane-independent
// half of every batched utility.
inline void AggRawNormalized(const AggBatchPlan& plan, const double* blk,
                             std::size_t size, double* raw_norm) {
  for (std::size_t a = 0; a < plan.num_features; ++a) {
    raw_norm[a] =
        AggRaw(blk + kAggStripeWidth * a, plan.ops[a], size) / plan.scales[a];
  }
}

// Same, but peeking one more τ fold per stripe without committing it (the
// batched twin of AggPeekTauRaw for the empty-package bound's greedy stop).
inline void AggPeekTauRawNormalized(const AggBatchPlan& plan,
                                    const double* pad, const double* tau,
                                    std::size_t padded_size,
                                    double* peek_norm) {
  for (std::size_t a = 0; a < plan.num_features; ++a) {
    peek_norm[a] = AggPeekTauRaw(pad + kAggStripeWidth * a, plan.ops[a],
                                 tau[a], padded_size) /
                   plan.scales[a];
  }
}

// u[j] = Σ_a wcol[a][j] · raw_norm[a], ascending stripe order — the batched
// twin of AggUtility's accumulation. `skip`, when non-null, marks stripes
// whose contribution is dropped for every lane; active stripes never carry
// weight 0, so the only skipped stripes are the ones a bound resolved to 0
// (AggResolveBoundWeights' relax-and-count-0 rule), matching the scalar
// w == 0.0 skip exactly.
inline void AggDotBatch(const AggBatchPlan& plan, const double* raw_norm,
                        const std::uint8_t* skip, double* u) {
  const std::size_t lanes = plan.lanes;
  for (std::size_t j = 0; j < lanes; ++j) u[j] = 0.0;
  for (std::size_t a = 0; a < plan.num_features; ++a) {
    if (skip != nullptr && skip[a] != 0) continue;
    const double r = raw_norm[a];
    const double* w = plan.wcol + a * lanes;
    for (std::size_t j = 0; j < lanes; ++j) u[j] += w[j] * r;
  }
}

// Gather twin of AggDotBatch for sparse lane sets: computes u[lidx[t]] for
// the `nl` lane indices in `lidx` only, leaving every other u entry
// untouched (stale). Same ascending-stripe accumulation order per lane, so
// each computed lane is bit-identical to the full-width dot. A shared B&B
// walk's per-node lane masks thin out as lanes prune and retire — on sparse
// nodes this makes dot work scale with the live-lane count instead of the
// batch width.
inline void AggDotBatchGather(const AggBatchPlan& plan, const double* raw_norm,
                              const std::uint8_t* skip,
                              const std::uint32_t* lidx, std::size_t nl,
                              double* u) {
  // Lane-outer with a register accumulator: one strided wcol read per
  // (lane, stripe) — the wcol matrix is small enough to sit in L1 — and a
  // single store per lane. Stripe order stays ascending, so the summation
  // order (and thus the value) matches the full-width dot exactly.
  const std::size_t lanes = plan.lanes;
  const std::size_t nf = plan.num_features;
  for (std::size_t t = 0; t < nl; ++t) {
    const std::uint32_t j = lidx[t];
    double acc = 0.0;
    for (std::size_t a = 0; a < nf; ++a) {
      if (skip != nullptr && skip[a] != 0) continue;
      acc += plan.wcol[a * lanes + j] * raw_norm[a];
    }
    u[j] = acc;
  }
}

// AggUtility for every lane at once: normalize the block once, dot per lane.
// `raw_norm` is caller scratch of num_features doubles, `u` of lanes.
inline void AggUtilityBatch(const AggBatchPlan& plan, const double* blk,
                            std::size_t size, double* raw_norm, double* u) {
  AggRawNormalized(plan, blk, size, raw_norm);
  AggDotBatch(plan, raw_norm, nullptr, u);
}

// AggTauPaddedBound for every lane at once. The τ folds are lane-shared (τ
// is a property of the walk, not of the lane); only the dot products and the
// Lemma 3 greedy stop are per-lane: `stopped[j]` freezes lane j's bound the
// moment its marginal gain goes non-positive, after which the shared folds
// keep running for the lanes that still gain — extra shared arithmetic that
// never changes a frozen bound. With set-monotone utilities no lane stops,
// exactly like the scalar kernel. `pad` is num_features stripes of caller
// scratch; `raw_norm`, `u`, `stopped`, `bound` are num_features / lanes /
// lanes / lanes wide.
//
// `u0`, when non-null, seeds the pre-pad bound (the i = 0 state) instead of
// the kernel normalizing and dotting `blk` itself. The pre-pad bound is the
// block's plain per-lane utility — it does not depend on τ — so a caller
// that has already evaluated the block's utilities under the SAME plan and
// no skip set (the batched search caches them per node) passes them here
// and saves one normalization (num_features divisions) plus one full dot
// per call. Only valid when `skip` is null: a skip set changes the pre-pad
// dot. Values are bit-identical either way.
inline void AggTauPaddedBoundBatch(const AggBatchPlan& plan, const double* blk,
                                   std::size_t size, const double* tau,
                                   std::size_t slots, bool set_monotone,
                                   const std::uint8_t* skip, const double* u0,
                                   double* pad, double* raw_norm, double* u,
                                   std::uint8_t* stopped, double* bound) {
  const std::size_t lanes = plan.lanes;
  std::memcpy(pad, blk, plan.num_features * kAggStripeWidth * sizeof(double));
  if (u0 != nullptr) {
    std::memcpy(bound, u0, lanes * sizeof(double));
  } else {
    AggRawNormalized(plan, pad, size, raw_norm);
    AggDotBatch(plan, raw_norm, skip, bound);
  }
  for (std::size_t j = 0; j < lanes; ++j) stopped[j] = 0;
  std::size_t padding = lanes;
  for (std::size_t i = 0; i < slots && padding > 0; ++i) {
    AggFoldTau(pad, tau, plan.num_features);
    AggRawNormalized(plan, pad, size + i + 1, raw_norm);
    AggDotBatch(plan, raw_norm, skip, u);
    for (std::size_t j = 0; j < lanes; ++j) {
      if (stopped[j] != 0) continue;
      if (!set_monotone && u[j] <= bound[j]) {  // Lemma 3: greedy stop.
        stopped[j] = 1;
        --padding;
        continue;
      }
      bound[j] = std::max(bound[j], u[j]);
    }
  }
}

// Gather twin of AggTauPaddedBoundBatch: evaluates the τ-padded bound for
// the `nl` lane indices in `lidx` only (other bound entries stay stale).
// The shared τ folds run while any listed lane still gains, exactly as the
// full-width kernel runs them while any lane of the batch still gains —
// frozen lanes never update, so each listed lane's bound is bit-identical
// either way. `lidx` is reordered in place: Lemma-3-stopped lanes are
// swapped behind the live prefix so later folds dot only the lanes that
// can still move (a lane's bound is frozen on stop, so excluding it from
// further dots changes nothing it reads). `u0` as in AggTauPaddedBoundBatch
// (per listed lane; requires a null `skip`).
inline void AggTauPaddedBoundBatchGather(
    const AggBatchPlan& plan, const double* blk, std::size_t size,
    const double* tau, std::size_t slots, bool set_monotone,
    const std::uint8_t* skip, const double* u0, std::uint32_t* lidx,
    std::size_t nl, double* pad, double* raw_norm, double* u, double* bound) {
  std::memcpy(pad, blk, plan.num_features * kAggStripeWidth * sizeof(double));
  if (u0 != nullptr) {
    for (std::size_t t = 0; t < nl; ++t) bound[lidx[t]] = u0[lidx[t]];
  } else {
    AggRawNormalized(plan, pad, size, raw_norm);
    AggDotBatchGather(plan, raw_norm, skip, lidx, nl, bound);
  }
  std::size_t active = nl;
  for (std::size_t i = 0; i < slots && active > 0; ++i) {
    AggFoldTau(pad, tau, plan.num_features);
    AggRawNormalized(plan, pad, size + i + 1, raw_norm);
    AggDotBatchGather(plan, raw_norm, skip, lidx, active, u);
    for (std::size_t t = 0; t < active;) {
      const std::uint32_t j = lidx[t];
      if (!set_monotone && u[j] <= bound[j]) {  // Lemma 3: greedy stop.
        std::swap(lidx[t], lidx[--active]);
        continue;
      }
      bound[j] = std::max(bound[j], u[j]);
      ++t;
    }
  }
}

// AggEmptyTauBound for every lane at once: shared pad/peek folds, per-lane
// peek-based stop. `peek_norm` is num_features doubles of caller scratch,
// `peek_u` lanes wide; the rest as in AggTauPaddedBoundBatch.
inline void AggEmptyTauBoundBatch(const AggBatchPlan& plan, const double* tau,
                                  std::size_t phi, bool set_monotone,
                                  const std::uint8_t* skip, double* pad,
                                  double* raw_norm, double* peek_norm,
                                  double* u, double* peek_u,
                                  std::uint8_t* stopped, double* bound) {
  const std::size_t lanes = plan.lanes;
  AggInitStripes(pad, plan.num_features);
  for (std::size_t j = 0; j < lanes; ++j) {
    bound[j] = -std::numeric_limits<double>::infinity();
    stopped[j] = 0;
  }
  std::size_t padding = lanes;
  for (std::size_t i = 0; i < phi && padding > 0; ++i) {
    AggFoldTau(pad, tau, plan.num_features);
    AggRawNormalized(plan, pad, i + 1, raw_norm);
    AggDotBatch(plan, raw_norm, skip, u);
    const bool peek = !set_monotone && i > 0;
    if (peek) {
      AggPeekTauRawNormalized(plan, pad, tau, i + 1, peek_norm);
      AggDotBatch(plan, peek_norm, skip, peek_u);
    }
    for (std::size_t j = 0; j < lanes; ++j) {
      if (stopped[j] != 0) continue;
      bound[j] = std::max(bound[j], u[j]);
      if (peek && peek_u[j] <= u[j]) {
        stopped[j] = 1;
        --padding;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// SIMD suites for the batched kernels.
//
// The three lane-loop entry points above are the scalar reference; the
// vectorized rewrites (common/simd.h lanes over the same
// stripe-outer-per-block, ascending-stripe accumulation) live in
// aggregate_kernel_lanes.inc, compiled once with the baseline ISA and — on
// x86-64 with a capable compiler — once more with -mavx2 under a distinct
// namespace. A suite is a table of function pointers with the reference
// signatures; every suite is bit-identical per lane to the reference (the
// search's bit-identity contract with Search() rides on it, and
// simd_test / search_batch_property_test sweep it).
// ---------------------------------------------------------------------------

struct AggBatchKernels {
  using DotBatchFn = void (*)(const AggBatchPlan&, const double*,
                              const std::uint8_t*, double*);
  using TauPaddedBoundBatchFn = void (*)(const AggBatchPlan&, const double*,
                                         std::size_t, const double*,
                                         std::size_t, bool,
                                         const std::uint8_t*, const double*,
                                         double*, double*, double*,
                                         std::uint8_t*, double*);
  using EmptyTauBoundBatchFn = void (*)(const AggBatchPlan&, const double*,
                                        std::size_t, bool,
                                        const std::uint8_t*, double*, double*,
                                        double*, double*, double*,
                                        std::uint8_t*, double*);
  using DotBatchGatherFn = void (*)(const AggBatchPlan&, const double*,
                                    const std::uint8_t*, const std::uint32_t*,
                                    std::size_t, double*);
  using TauPaddedBoundBatchGatherFn = void (*)(
      const AggBatchPlan&, const double*, std::size_t, const double*,
      std::size_t, bool, const std::uint8_t*, const double*, std::uint32_t*,
      std::size_t, double*, double*, double*, double*);

  DotBatchFn dot_batch = nullptr;
  TauPaddedBoundBatchFn tau_padded_bound_batch = nullptr;
  EmptyTauBoundBatchFn empty_tau_bound_batch = nullptr;
  DotBatchGatherFn dot_batch_gather = nullptr;
  TauPaddedBoundBatchGatherFn tau_padded_bound_batch_gather = nullptr;
  // "avx2", "sse2", "neon" or "scalar" — what the suite's dots run on.
  const char* backend = "";
};

// The suite for `mode`: kScalar returns the reference kernels above;
// kAuto picks the widest suite the running CPU supports (cpuid-checked once,
// AVX2 ≻ baseline vector ISA ≻ scalar). Thread-safe; the returned reference
// is to a process-lifetime table.
const AggBatchKernels& AggBatchKernelsFor(SimdMode mode);

// Raw aggregate of one table column over an explicit item set (the
// constraint layers' entry point: aggregate-threshold and budget checks).
// Out-of-line — these callers are not on the search's hot path.
double AggRawOverColumn(const ItemTable& table,
                        const std::vector<ItemId>& items, std::size_t feature,
                        AggregateOp op);

}  // namespace topkpkg::model

#endif  // TOPKPKG_MODEL_AGGREGATE_KERNEL_H_
