#include "topkpkg/model/aggregate_kernel.h"

#include "topkpkg/obs/metrics.h"

namespace topkpkg::model {

// Per-ISA suites, each defined by one aggregate_kernel_lanes_*.cc TU. The
// AVX2 one exists only when CMake found a compiler that takes -mavx2 (it
// then defines TOPKPKG_HAVE_AVX2_TU on this file); it is entered only after
// the cpuid check below, so the binary stays runnable on pre-AVX2 CPUs.
namespace lanes_base {
extern const AggBatchKernels kKernels;
}  // namespace lanes_base
#if defined(TOPKPKG_HAVE_AVX2_TU)
namespace lanes_avx2 {
extern const AggBatchKernels kKernels;
}  // namespace lanes_avx2
#endif

namespace {

// The header reference kernels, as a suite: the forced-scalar path every
// test can pin the vector suites against.
const AggBatchKernels kReferenceKernels = {
    &AggDotBatch, &AggTauPaddedBoundBatch, &AggEmptyTauBoundBatch,
    &AggDotBatchGather, &AggTauPaddedBoundBatchGather, "scalar"};

const AggBatchKernels& PickAutoKernels() {
#if defined(TOPKPKG_HAVE_AVX2_TU) && (defined(__x86_64__) || defined(__i386__))
  if (__builtin_cpu_supports("avx2")) return lanes_avx2::kKernels;
#endif
  return lanes_base::kKernels;
}

}  // namespace

namespace {

// Surfaces which suite a dispatch resolved to, as a one-hot gauge family:
// topkpkg_simd_suite{backend="avx2"} 1. Each call site latches the write
// behind its own magic-static, so dispatch stays a table lookup.
bool ExportDispatchedSuite([[maybe_unused]] const AggBatchKernels& suite) {
  if constexpr (obs::kMetricsEnabled) {
    obs::MetricsRegistry::Global()
        .GetGauge("topkpkg_simd_suite",
                  "Dispatched SIMD kernel suite (1 = in use)",
                  "backend=\"" + std::string(suite.backend) + "\"")
        ->Set(1.0);
  }
  return true;
}

}  // namespace

const AggBatchKernels& AggBatchKernelsFor(SimdMode mode) {
  if (mode == SimdMode::kScalar) {
    [[maybe_unused]] static const bool exported =
        ExportDispatchedSuite(kReferenceKernels);
    return kReferenceKernels;
  }
  // Magic-static: the cpuid probe runs once, thread-safely.
  static const AggBatchKernels& kAuto = PickAutoKernels();
  [[maybe_unused]] static const bool exported = ExportDispatchedSuite(kAuto);
  return kAuto;
}

double AggRawOverColumn(const ItemTable& table,
                        const std::vector<ItemId>& items, std::size_t feature,
                        AggregateOp op) {
  double cell[kAggStripeWidth];
  AggInitStripes(cell, 1);
  for (ItemId id : items) {
    const double v = table.value(id, feature);
    if (!IsNull(v)) AggFoldValue(cell, v);
  }
  return AggRaw(cell, op, items.size());
}

}  // namespace topkpkg::model
