#include "topkpkg/model/aggregate_kernel.h"

namespace topkpkg::model {

double AggRawOverColumn(const ItemTable& table,
                        const std::vector<ItemId>& items, std::size_t feature,
                        AggregateOp op) {
  double cell[kAggStripeWidth];
  AggInitStripes(cell, 1);
  for (ItemId id : items) {
    const double v = table.value(id, feature);
    if (!IsNull(v)) AggFoldValue(cell, v);
  }
  return AggRaw(cell, op, items.size());
}

}  // namespace topkpkg::model
