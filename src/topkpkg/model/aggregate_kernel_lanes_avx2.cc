// AVX2 instantiation of the vectorized batched aggregate kernels. CMake
// compiles exactly this file with -mavx2 (no -mfma — bit-identity forbids
// contraction) and defines TOPKPKG_HAVE_AVX2_TU on aggregate_kernel.cc so
// the runtime dispatch knows the suite exists; it is only ever entered after
// a cpuid check. Everything the TU emits lives behind internal linkage in
// lanes_avx2 (see the .inc header comment for why that isolation matters).

#if !defined(__AVX2__)
#error "aggregate_kernel_lanes_avx2.cc must be compiled with -mavx2"
#endif

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>

#include "topkpkg/common/simd.h"
#include "topkpkg/model/aggregate_kernel.h"

#define TOPKPKG_LANES_NS lanes_avx2
#define TOPKPKG_LANES_V ::topkpkg::simd::avx2::F64x
#include "topkpkg/model/aggregate_kernel_lanes.inc"
