#ifndef TOPKPKG_MODEL_UTILITY_H_
#define TOPKPKG_MODEL_UTILITY_H_

#include "topkpkg/common/status.h"
#include "topkpkg/common/vec.h"
#include "topkpkg/model/profile.h"

namespace topkpkg::model {

// The additive utility function U(p) = w₁p₁ + ... + w_m p_m (Equation 1)
// over *normalized* package feature vectors. Weights lie in [-1, 1]: a
// positive (negative) weight means larger (smaller) aggregate values are
// preferred.
class LinearUtility {
 public:
  // Validates weight range and dimensionality against `profile`.
  static Result<LinearUtility> Create(Vec weights, const Profile& profile);

  // Unchecked constructor for internal hot paths.
  explicit LinearUtility(Vec weights) : weights_(std::move(weights)) {}

  const Vec& weights() const { return weights_; }
  std::size_t dim() const { return weights_.size(); }

  double Value(const Vec& normalized_features) const {
    return Dot(weights_, normalized_features);
  }

 private:
  Vec weights_;
};

// True iff U is set-monotone under `profile` (Sec. 4.1): adding any item to
// any package can never decrease utility. Per feature f this requires the
// weighted aggregate to be non-decreasing under item additions:
//   w_f > 0  → A_f ∈ {sum, max}   (non-negative values only grow these)
//   w_f < 0  → A_f = min          (min can only shrink, which helps)
//   w_f = 0 or A_f = null         (feature is irrelevant)
// `avg` is never set-monotone for nonzero weight.
bool IsSetMonotone(const Profile& profile, const Vec& weights);

}  // namespace topkpkg::model

#endif  // TOPKPKG_MODEL_UTILITY_H_
