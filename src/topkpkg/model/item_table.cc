#include "topkpkg/model/item_table.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace topkpkg::model {

Result<ItemTable> ItemTable::Create(std::vector<Vec> rows,
                                    std::vector<std::string> feature_names) {
  if (rows.empty()) return Status::InvalidArgument("ItemTable: no items");
  const std::size_t m = rows[0].size();
  if (m == 0) return Status::InvalidArgument("ItemTable: zero features");
  if (!feature_names.empty() && feature_names.size() != m) {
    return Status::InvalidArgument("ItemTable: feature name count mismatch");
  }
  std::vector<double> values;
  values.reserve(rows.size() * m);
  for (const Vec& row : rows) {
    if (row.size() != m) {
      return Status::InvalidArgument("ItemTable: ragged rows");
    }
    for (double v : row) {
      if (!IsNull(v) && (!std::isfinite(v) || v < 0.0)) {
        return Status::InvalidArgument(
            "ItemTable: feature values must be non-negative and finite");
      }
      values.push_back(v);
    }
  }
  if (feature_names.empty()) {
    feature_names.reserve(m);
    for (std::size_t f = 0; f < m; ++f) {
      feature_names.push_back("f" + std::to_string(f));
    }
  }
  return ItemTable(std::move(values), rows.size(), m,
                   std::move(feature_names));
}

Vec ItemTable::Row(ItemId item) const {
  Vec out(num_features_);
  for (std::size_t f = 0; f < num_features_; ++f) out[f] = value(item, f);
  return out;
}

double ItemTable::MaxFeatureValue(std::size_t feature) const {
  double best = 0.0;
  for (std::size_t i = 0; i < num_items_; ++i) {
    double v = value(static_cast<ItemId>(i), feature);
    if (!IsNull(v)) best = std::max(best, v);
  }
  return best;
}

double ItemTable::TopValuesSum(std::size_t feature, std::size_t count) const {
  std::vector<double> col;
  col.reserve(num_items_);
  for (std::size_t i = 0; i < num_items_; ++i) {
    double v = value(static_cast<ItemId>(i), feature);
    if (!IsNull(v)) col.push_back(v);
  }
  count = std::min(count, col.size());
  std::partial_sort(col.begin(), col.begin() + static_cast<long>(count),
                    col.end(), std::greater<double>());
  double sum = 0.0;
  for (std::size_t i = 0; i < count; ++i) sum += col[i];
  return sum;
}

ItemTable ItemTable::SelectFeatures(
    const std::vector<std::size_t>& features) const {
  std::vector<double> values;
  values.reserve(num_items_ * features.size());
  std::vector<std::string> names;
  names.reserve(features.size());
  for (std::size_t f : features) names.push_back(feature_names_[f]);
  for (std::size_t i = 0; i < num_items_; ++i) {
    for (std::size_t f : features) {
      values.push_back(value(static_cast<ItemId>(i), f));
    }
  }
  return ItemTable(std::move(values), num_items_, features.size(),
                   std::move(names));
}

}  // namespace topkpkg::model
