#include "topkpkg/model/profile.h"

#include <sstream>
#include <utility>

namespace topkpkg::model {

const char* AggregateOpName(AggregateOp op) {
  switch (op) {
    case AggregateOp::kNull:
      return "null";
    case AggregateOp::kMin:
      return "min";
    case AggregateOp::kMax:
      return "max";
    case AggregateOp::kSum:
      return "sum";
    case AggregateOp::kAvg:
      return "avg";
  }
  return "?";
}

Result<Profile> Profile::Create(std::vector<AggregateOp> ops) {
  if (ops.empty()) return Status::InvalidArgument("Profile: empty");
  return Profile(std::move(ops));
}

Result<Profile> Profile::Parse(const std::string& spec) {
  std::vector<AggregateOp> ops;
  std::stringstream ss(spec);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok == "null") {
      ops.push_back(AggregateOp::kNull);
    } else if (tok == "min") {
      ops.push_back(AggregateOp::kMin);
    } else if (tok == "max") {
      ops.push_back(AggregateOp::kMax);
    } else if (tok == "sum") {
      ops.push_back(AggregateOp::kSum);
    } else if (tok == "avg") {
      ops.push_back(AggregateOp::kAvg);
    } else {
      return Status::InvalidArgument("Profile: unknown aggregate '" + tok +
                                     "'");
    }
  }
  return Create(std::move(ops));
}

std::string Profile::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (i > 0) out += ",";
    out += AggregateOpName(ops_[i]);
  }
  return out;
}

Normalizer ComputeNormalizer(const ItemTable& table, const Profile& profile,
                             std::size_t phi) {
  Normalizer norm;
  norm.scale.resize(profile.num_features(), 1.0);
  for (std::size_t f = 0; f < profile.num_features(); ++f) {
    double scale = 1.0;
    switch (profile.op(f)) {
      case AggregateOp::kNull:
        scale = 1.0;
        break;
      case AggregateOp::kSum:
        scale = table.TopValuesSum(f, phi);
        break;
      case AggregateOp::kMin:
      case AggregateOp::kMax:
      case AggregateOp::kAvg:
        scale = table.MaxFeatureValue(f);
        break;
    }
    norm.scale[f] = scale > 0.0 ? scale : 1.0;
  }
  return norm;
}

}  // namespace topkpkg::model
