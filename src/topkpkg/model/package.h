#ifndef TOPKPKG_MODEL_PACKAGE_H_
#define TOPKPKG_MODEL_PACKAGE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "topkpkg/common/vec.h"
#include "topkpkg/model/aggregate_kernel.h"
#include "topkpkg/model/item_table.h"
#include "topkpkg/model/profile.h"

namespace topkpkg::model {

// A package: a non-empty set of distinct items, stored sorted by ItemId so
// that equal packages compare equal structurally.
class Package {
 public:
  Package() = default;

  // Sorts and dedups `items`.
  static Package Of(std::vector<ItemId> items);

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const std::vector<ItemId>& items() const { return items_; }
  bool Contains(ItemId id) const;

  // A new package with `id` added (no-op copy if already present).
  Package With(ItemId id) const;

  // Canonical "id0,id1,..." string; usable as a map key and stable across
  // runs (the paper's deterministic tie-breaker is the package ID).
  std::string Key() const;

  friend bool operator==(const Package& a, const Package& b) {
    return a.items_ == b.items_;
  }
  friend bool operator!=(const Package& a, const Package& b) {
    return !(a == b);
  }
  friend bool operator<(const Package& a, const Package& b) {
    return a.items_ < b.items_;
  }

 private:
  std::vector<ItemId> items_;
};

// Pre-order walk of every package of size 1..phi over items [0, n), in
// lexicographic item-id order — the deterministic tie-break order of
// Sec. 2.1, and exactly the order NaivePackageEnumerator ranks ties in.
// `visit(current)` is called once per package with the current item chain
// (ascending; valid only during the call); return false to stop the walk.
// Shared by the oracle enumerator, the hard-constraint exact solver and the
// search's zero-active-weight tie-break path, so "same walk order" is true
// by construction rather than by three synchronized copies. Visits arrive
// in pre-order: each call's prefix (current minus its last item) was the
// previous surviving spine, which lets callers maintain incremental state
// keyed on current.size() (see NaivePackageEnumerator).
template <typename Visit>
void ForEachPackageLexicographic(std::size_t n, std::size_t phi,
                                 Visit&& visit) {
  std::vector<ItemId> current;
  std::vector<std::size_t> next_stack{0};
  while (!next_stack.empty()) {
    std::size_t& next = next_stack.back();
    if (next >= n || current.size() >= phi) {
      next_stack.pop_back();
      if (!current.empty()) current.pop_back();
      continue;
    }
    const ItemId t = static_cast<ItemId>(next++);
    current.push_back(t);
    if (!visit(static_cast<const std::vector<ItemId>&>(current))) return;
    next_stack.push_back(static_cast<std::size_t>(t) + 1);
  }
}

struct PackageHash {
  std::size_t operator()(const Package& p) const {
    std::size_t h = 1469598103934665603ULL;
    for (ItemId id : p.items()) {
      h ^= id + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

// Incrementally maintained aggregate values of a package under a fixed
// profile. Supports adding real item rows as well as the imaginary boundary
// item τ used by the Top-k-Pkg upper-bound estimation (Algorithm 3). All
// per-op arithmetic (fold, normalize, utility) delegates to
// model/aggregate_kernel.h — the one implementation every layer shares.
class AggregateState {
 public:
  AggregateState(const Profile* profile, const Normalizer* norm);

  // Folds one item row (NaN entries are nulls) into the aggregates.
  void Add(const Vec& row);

  // Same fold over a raw row span of `m` doubles (e.g. ItemTable::RowSpan),
  // so bulk callers never materialize a Vec per row.
  void Add(const double* row, std::size_t m);

  std::size_t size() const { return size_; }

  // The normalized feature vector of the current package. Features with no
  // non-null contributing value (and `null`-profiled features) evaluate to 0.
  Vec Normalized() const;

  // w · Normalized() without materializing the vector.
  double Utility(const Vec& weights) const;

  // Normalized aggregate value of one feature.
  double NormalizedFeature(std::size_t f) const;

  // Raw per-feature aggregates, for bound estimators (UpperExp) that pad a
  // state without copy-constructing it.
  double count(std::size_t f) const { return data_[kAggStripeWidth * f]; }
  double sum(std::size_t f) const { return data_[kAggStripeWidth * f + 1]; }
  double min(std::size_t f) const { return data_[kAggStripeWidth * f + 2]; }
  double max(std::size_t f) const { return data_[kAggStripeWidth * f + 3]; }
  // The flat [count,sum,min,max]-per-feature stripe block, in the layout
  // model/aggregate_kernel.h operates on (UpperExp bounds a state through
  // this view with zero copies).
  const double* stripes() const { return data_.data(); }
  const Profile& profile() const { return *profile_; }
  const Normalizer& normalizer() const { return *norm_; }

 private:
  const Profile* profile_;
  const Normalizer* norm_;
  std::size_t size_ = 0;
  // Per feature, packed [count, sum, min, max] in one allocation. The search
  // kernel itself keeps its states in SearchScratch's flat slab (same
  // per-feature packing) and never copies this struct on expansion.
  Vec data_;
};

// Binds an ItemTable, Profile and maximum package size φ together with the
// induced normalizer, and evaluates package feature vectors and utilities.
// The table and profile must outlive the evaluator.
class PackageEvaluator {
 public:
  PackageEvaluator(const ItemTable* table, const Profile* profile,
                   std::size_t phi);

  const ItemTable& table() const { return *table_; }
  const Profile& profile() const { return *profile_; }
  const Normalizer& normalizer() const { return norm_; }
  std::size_t phi() const { return phi_; }

  // Normalized aggregate feature vector p̂ of `package` (Definition 1 +
  // normalization).
  Vec FeatureVector(const Package& package) const;

  // U(p) = w · p̂ for the linear utility with weight vector `weights`.
  double Utility(const Package& package, const Vec& weights) const;

  // Fresh empty aggregate state bound to this evaluator's profile/normalizer.
  AggregateState NewState() const;

 private:
  const ItemTable* table_;
  const Profile* profile_;
  std::size_t phi_;
  Normalizer norm_;
};

}  // namespace topkpkg::model

#endif  // TOPKPKG_MODEL_PACKAGE_H_
