#include "topkpkg/model/package.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace topkpkg::model {

Package Package::Of(std::vector<ItemId> items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  Package p;
  p.items_ = std::move(items);
  return p;
}

bool Package::Contains(ItemId id) const {
  return std::binary_search(items_.begin(), items_.end(), id);
}

Package Package::With(ItemId id) const {
  Package p(*this);
  auto it = std::lower_bound(p.items_.begin(), p.items_.end(), id);
  if (it == p.items_.end() || *it != id) p.items_.insert(it, id);
  return p;
}

std::string Package::Key() const {
  std::string key;
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) key += ',';
    key += std::to_string(items_[i]);
  }
  return key;
}

AggregateState::AggregateState(const Profile* profile, const Normalizer* norm)
    : profile_(profile), norm_(norm), data_(4 * profile->num_features()) {
  for (std::size_t f = 0; f < profile->num_features(); ++f) {
    data_[4 * f] = 0.0;
    data_[4 * f + 1] = 0.0;
    data_[4 * f + 2] = std::numeric_limits<double>::infinity();
    data_[4 * f + 3] = -std::numeric_limits<double>::infinity();
  }
}

void AggregateState::Add(const Vec& row) { Add(row.data(), row.size()); }

void AggregateState::Add(const double* row, std::size_t m) {
  ++size_;
  for (std::size_t f = 0; f < m; ++f) {
    double v = row[f];
    if (IsNull(v)) continue;
    double* cell = &data_[4 * f];
    cell[0] += 1.0;
    cell[1] += v;
    cell[2] = std::min(cell[2], v);
    cell[3] = std::max(cell[3], v);
  }
}

double AggregateState::NormalizedFeature(std::size_t f) const {
  // The per-op raw-value rules here are the reference the search layer's
  // bound/utility kernels (topk_pkg.cc: UpperExp, SearchKernel::UtilityOf /
  // PeekPadUtility) must reproduce bit-for-bit — change all of them
  // together, and keep search_kernel_property_test green.
  double raw = 0.0;
  switch (profile_->op(f)) {
    case AggregateOp::kNull:
      return 0.0;
    case AggregateOp::kSum:
      raw = sum(f);
      break;
    case AggregateOp::kAvg:
      // Definition 1: avg divides the non-null sum by the package size.
      raw = size_ > 0 ? sum(f) / static_cast<double>(size_) : 0.0;
      break;
    case AggregateOp::kMin:
      raw = count(f) > 0 ? min(f) : 0.0;
      break;
    case AggregateOp::kMax:
      raw = count(f) > 0 ? max(f) : 0.0;
      break;
  }
  return raw / norm_->scale[f];
}

Vec AggregateState::Normalized() const {
  const std::size_t m = profile_->num_features();
  Vec out(m);
  for (std::size_t f = 0; f < m; ++f) out[f] = NormalizedFeature(f);
  return out;
}

double AggregateState::Utility(const Vec& weights) const {
  double u = 0.0;
  for (std::size_t f = 0; f < weights.size(); ++f) {
    if (weights[f] != 0.0) u += weights[f] * NormalizedFeature(f);
  }
  return u;
}

PackageEvaluator::PackageEvaluator(const ItemTable* table,
                                   const Profile* profile, std::size_t phi)
    : table_(table),
      profile_(profile),
      phi_(phi),
      norm_(ComputeNormalizer(*table, *profile, phi)) {}

Vec PackageEvaluator::FeatureVector(const Package& package) const {
  AggregateState state(profile_, &norm_);
  const std::size_t m = table_->num_features();
  for (ItemId id : package.items()) state.Add(table_->RowSpan(id), m);
  return state.Normalized();
}

double PackageEvaluator::Utility(const Package& package,
                                 const Vec& weights) const {
  return Dot(FeatureVector(package), weights);
}

AggregateState PackageEvaluator::NewState() const {
  return AggregateState(profile_, &norm_);
}

}  // namespace topkpkg::model
