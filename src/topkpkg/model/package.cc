#include "topkpkg/model/package.h"

#include <algorithm>
#include <utility>

#include "topkpkg/model/aggregate_kernel.h"

namespace topkpkg::model {

Package Package::Of(std::vector<ItemId> items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  Package p;
  p.items_ = std::move(items);
  return p;
}

bool Package::Contains(ItemId id) const {
  return std::binary_search(items_.begin(), items_.end(), id);
}

Package Package::With(ItemId id) const {
  Package p(*this);
  auto it = std::lower_bound(p.items_.begin(), p.items_.end(), id);
  if (it == p.items_.end() || *it != id) p.items_.insert(it, id);
  return p;
}

std::string Package::Key() const {
  std::string key;
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) key += ',';
    key += std::to_string(items_[i]);
  }
  return key;
}

AggregateState::AggregateState(const Profile* profile, const Normalizer* norm)
    : profile_(profile),
      norm_(norm),
      data_(kAggStripeWidth * profile->num_features()) {
  AggInitStripes(data_.data(), profile->num_features());
}

void AggregateState::Add(const Vec& row) { Add(row.data(), row.size()); }

void AggregateState::Add(const double* row, std::size_t m) {
  ++size_;
  AggFoldRow(data_.data(), row, m);
}

double AggregateState::NormalizedFeature(std::size_t f) const {
  return AggRaw(&data_[kAggStripeWidth * f], profile_->op(f), size_) /
         norm_->scale[f];
}

Vec AggregateState::Normalized() const {
  const std::size_t m = profile_->num_features();
  Vec out(m);
  for (std::size_t f = 0; f < m; ++f) out[f] = NormalizedFeature(f);
  return out;
}

double AggregateState::Utility(const Vec& weights) const {
  const AggregatePlan plan{profile_->ops().data(), weights.data(),
                           norm_->scale.data(), weights.size()};
  return AggUtility(plan, data_.data(), size_);
}

PackageEvaluator::PackageEvaluator(const ItemTable* table,
                                   const Profile* profile, std::size_t phi)
    : table_(table),
      profile_(profile),
      phi_(phi),
      norm_(ComputeNormalizer(*table, *profile, phi)) {}

Vec PackageEvaluator::FeatureVector(const Package& package) const {
  AggregateState state(profile_, &norm_);
  const std::size_t m = table_->num_features();
  for (ItemId id : package.items()) state.Add(table_->RowSpan(id), m);
  return state.Normalized();
}

double PackageEvaluator::Utility(const Package& package,
                                 const Vec& weights) const {
  return Dot(FeatureVector(package), weights);
}

AggregateState PackageEvaluator::NewState() const {
  return AggregateState(profile_, &norm_);
}

}  // namespace topkpkg::model
