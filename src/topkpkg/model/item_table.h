#ifndef TOPKPKG_MODEL_ITEM_TABLE_H_
#define TOPKPKG_MODEL_ITEM_TABLE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "topkpkg/common/status.h"
#include "topkpkg/common/vec.h"

namespace topkpkg::model {

using ItemId = std::uint32_t;

// Sentinel for a missing feature value (the paper allows items to have null
// feature values; nulls are skipped by the aggregate functions).
inline constexpr double kNullValue = std::numeric_limits<double>::quiet_NaN();

inline bool IsNull(double v) { return v != v; }

// Immutable set T of n items, each an m-dimensional non-negative feature
// vector (possibly with nulls). Row-major storage; items are addressed by
// dense ItemId in [0, n).
class ItemTable {
 public:
  // Validates that all non-null values are finite and non-negative and that
  // every row has the same width.
  static Result<ItemTable> Create(std::vector<Vec> rows,
                                  std::vector<std::string> feature_names = {});

  std::size_t num_items() const { return num_items_; }
  std::size_t num_features() const { return num_features_; }

  double value(ItemId item, std::size_t feature) const {
    return values_[item * num_features_ + feature];
  }
  bool is_null(ItemId item, std::size_t feature) const {
    return IsNull(value(item, feature));
  }

  // Copies row `item` into a feature vector (nulls preserved as NaN).
  Vec Row(ItemId item) const;

  // Zero-copy view of row `item`: a pointer into the row-major storage,
  // valid for num_features() doubles and for the table's lifetime. The
  // search kernel reads item rows through this on every expansion, so the
  // per-access Vec allocation of Row() never enters the hot path.
  const double* RowSpan(ItemId item) const {
    return values_.data() + item * num_features_;
  }

  const std::string& feature_name(std::size_t feature) const {
    return feature_names_[feature];
  }

  // Largest non-null value of `feature` over all items; 0 if none.
  double MaxFeatureValue(std::size_t feature) const;

  // Sum of the `count` largest non-null values of `feature` (used to
  // normalize `sum` aggregates: it is the largest sum any package of size
  // <= count can achieve).
  double TopValuesSum(std::size_t feature, std::size_t count) const;

  // Restricts the table to the given feature columns (used by the NBA
  // experiment, which randomly selects 10 of 17 features).
  ItemTable SelectFeatures(const std::vector<std::size_t>& features) const;

 private:
  ItemTable(std::vector<double> values, std::size_t num_items,
            std::size_t num_features, std::vector<std::string> names)
      : values_(std::move(values)),
        num_items_(num_items),
        num_features_(num_features),
        feature_names_(std::move(names)) {}

  std::vector<double> values_;
  std::size_t num_items_;
  std::size_t num_features_;
  std::vector<std::string> feature_names_;
};

}  // namespace topkpkg::model

#endif  // TOPKPKG_MODEL_ITEM_TABLE_H_
