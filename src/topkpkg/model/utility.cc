#include "topkpkg/model/utility.h"

namespace topkpkg::model {

Result<LinearUtility> LinearUtility::Create(Vec weights,
                                            const Profile& profile) {
  if (weights.size() != profile.num_features()) {
    return Status::InvalidArgument(
        "LinearUtility: weight/profile dimension mismatch");
  }
  for (double w : weights) {
    if (w < -1.0 || w > 1.0) {
      return Status::InvalidArgument(
          "LinearUtility: weights must lie in [-1, 1]");
    }
  }
  return LinearUtility(std::move(weights));
}

bool IsSetMonotone(const Profile& profile, const Vec& weights) {
  for (std::size_t f = 0; f < profile.num_features(); ++f) {
    const double w = weights[f];
    const AggregateOp op = profile.op(f);
    if (w == 0.0 || op == AggregateOp::kNull) continue;
    if (w > 0.0) {
      if (op != AggregateOp::kSum && op != AggregateOp::kMax) return false;
    } else {
      if (op != AggregateOp::kMin) return false;
    }
  }
  return true;
}

}  // namespace topkpkg::model
