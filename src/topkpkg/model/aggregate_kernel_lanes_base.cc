// Baseline-ISA instantiation of the vectorized batched aggregate kernels:
// compiled with the project's default flags, so the backend is whatever the
// target guarantees everywhere (SSE2 on x86-64, NEON on aarch64, scalar
// elsewhere). Selected by AggBatchKernelsFor when the CPU lacks AVX2 or the
// AVX2 TU wasn't built.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>

#include "topkpkg/common/simd.h"
#include "topkpkg/model/aggregate_kernel.h"

#define TOPKPKG_LANES_NS lanes_base
#define TOPKPKG_LANES_V ::topkpkg::simd::best::F64x
#include "topkpkg/model/aggregate_kernel_lanes.inc"
