#ifndef TOPKPKG_MODEL_PROFILE_H_
#define TOPKPKG_MODEL_PROFILE_H_

#include <string>
#include <vector>

#include "topkpkg/common/status.h"
#include "topkpkg/common/vec.h"
#include "topkpkg/model/item_table.h"

namespace topkpkg::model {

// Per-feature aggregation function (Definition 1). `kNull` means the feature
// is ignored (its package value is always 0 and it never contributes to
// utility).
enum class AggregateOp { kNull, kMin, kMax, kSum, kAvg };

const char* AggregateOpName(AggregateOp op);

// An aggregate feature profile V = (A_1, ..., A_m): one aggregation function
// per feature. The profile, together with an ItemTable and a maximum package
// size φ, fixes how packages map to normalized feature vectors.
class Profile {
 public:
  static Result<Profile> Create(std::vector<AggregateOp> ops);

  // Parses a compact spec such as "sum,avg,null,max" (used by examples).
  static Result<Profile> Parse(const std::string& spec);

  std::size_t num_features() const { return ops_.size(); }
  AggregateOp op(std::size_t feature) const { return ops_[feature]; }
  const std::vector<AggregateOp>& ops() const { return ops_; }

  std::string ToString() const;

 private:
  explicit Profile(std::vector<AggregateOp> ops) : ops_(std::move(ops)) {}

  std::vector<AggregateOp> ops_;
};

// Per-feature positive scale factors: a package's raw aggregate value on
// feature i is divided by `scale[i]` so that all package feature values fall
// in [0, 1] (Sec. 2: "each individual aggregate feature value is normalized
// ... using the maximum possible aggregate value"). Features whose maximum
// achievable aggregate is 0 (or that are nulled out) get scale 1.
struct Normalizer {
  Vec scale;
};

// Computes the normalizer for packages of size at most `phi`: `sum` features
// are scaled by the sum of the φ largest item values, `min`/`max`/`avg`
// features by the largest single item value.
Normalizer ComputeNormalizer(const ItemTable& table, const Profile& profile,
                             std::size_t phi);

}  // namespace topkpkg::model

#endif  // TOPKPKG_MODEL_PROFILE_H_
