#include "topkpkg/obs/metrics.h"

#include <cstdio>
#include <fstream>
#include <limits>

namespace topkpkg::obs {

namespace {

// Prometheus sample-value formatting: shortest round-trippable-enough form,
// stable across platforms so the golden test can pin rendered text.
std::string FormatValue(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string SampleLine(const std::string& name, const std::string& labels,
                       const std::string& value) {
  std::string out = name;
  if (!labels.empty()) out += "{" + labels + "}";
  out += " " + value + "\n";
  return out;
}

}  // namespace

double Histogram::BucketUpper(std::size_t idx) {
  if (idx == 0) {
    // Underflow: everything at or below the first real bucket's lower edge.
    return std::ldexp(0.5, kMinExp);
  }
  if (idx >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  const std::size_t real = idx - kFirstReal;
  const int exp = kMinExp + static_cast<int>(real / kBucketsPerPow2);
  const int sub = static_cast<int>(real % kBucketsPerPow2);
  // Bucket (exp, sub) holds frac in [0.5 + sub/8, 0.5 + (sub+1)/8) scaled
  // by 2^exp; its inclusive upper edge is the next sub-bucket's lower edge.
  return std::ldexp(0.5 + (sub + 1) / (2.0 * kBucketsPerPow2), exp);
}

void Histogram::Observe(double v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t before = count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  // Min/max CAS loops. The first observation must seed both
  // unconditionally; racing first observers are resolved by letting every
  // thread also run the ordinary min/max loop below.
  if (before == 0) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  }
  double mn = min_.load(std::memory_order_relaxed);
  while (v < mn &&
         !min_.compare_exchange_weak(mn, v, std::memory_order_relaxed)) {
  }
  double mx = max_.load(std::memory_order_relaxed);
  while (v > mx &&
         !max_.compare_exchange_weak(mx, v, std::memory_order_relaxed)) {
  }
}

double Histogram::Quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank: the smallest order statistic whose index covers q.
  std::uint64_t rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    if (cum >= rank) {
      double v = BucketUpper(i);
      const double mx = max();
      const double mn = min();
      if (v > mx) v = mx;  // Overflow bucket (and top of the max's bucket).
      if (v < mn) v = mn;  // Underflow bucket.
      return v;
    }
  }
  return max();  // Unreachable while count_ matches the bucket sums.
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instrumentation handles live in function-local
  // statics all over the library, and static destruction order must never
  // leave one dangling.
  static MetricsRegistry* const kGlobal = new MetricsRegistry();
  return *kGlobal;
}

MetricsRegistry::Instrument& MetricsRegistry::GetSlot(
    const std::string& name, const std::string& help,
    const std::string& labels, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = families_[name];
  if (family.series.empty()) {
    family.kind = kind;
    family.help = help;
  }
  Instrument& inst = family.series[labels];
  if (inst.counter == nullptr && inst.gauge == nullptr &&
      inst.histogram == nullptr) {
    inst.kind = family.kind;
    switch (family.kind) {
      case Kind::kCounter:
        inst.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        inst.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        inst.histogram = std::make_unique<Histogram>();
        break;
    }
  }
  return inst;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const std::string& labels) {
  Instrument& inst = GetSlot(name, help, labels, Kind::kCounter);
  // A name registered under another kind keeps that kind; handing back a
  // detached counter keeps the caller harmless instead of crashing the
  // process over an instrumentation typo.
  if (inst.counter == nullptr) {
    static Counter* const kDetached = new Counter();
    return kDetached;
  }
  return inst.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const std::string& labels) {
  Instrument& inst = GetSlot(name, help, labels, Kind::kGauge);
  if (inst.gauge == nullptr) {
    static Gauge* const kDetached = new Gauge();
    return kDetached;
  }
  return inst.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const std::string& labels) {
  Instrument& inst = GetSlot(name, help, labels, Kind::kHistogram);
  if (inst.histogram == nullptr) {
    static Histogram* const kDetached = new Histogram();
    return kDetached;
  }
  return inst.histogram.get();
}

std::string MetricsRegistry::RenderPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out += "# HELP " + name + " " + family.help + "\n";
    }
    switch (family.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        break;
      case Kind::kHistogram:
        out += "# TYPE " + name + " histogram\n";
        break;
    }
    for (const auto& [labels, inst] : family.series) {
      switch (inst.kind) {
        case Kind::kCounter:
          out += SampleLine(name, labels,
                            std::to_string(inst.counter->value()));
          break;
        case Kind::kGauge:
          out += SampleLine(name, labels, FormatValue(inst.gauge->value()));
          break;
        case Kind::kHistogram: {
          const Histogram& h = *inst.histogram;
          std::uint64_t cum = 0;
          for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
            const std::uint64_t c = h.bucket_count(i);
            if (c == 0) continue;  // Cumulative series: empties add nothing.
            cum += c;
            const double upper = Histogram::BucketUpper(i);
            const std::string le = std::isinf(upper)
                                       ? std::string("+Inf")
                                       : FormatValue(upper);
            std::string ls = labels.empty() ? "" : labels + ",";
            out += SampleLine(name + "_bucket", ls + "le=\"" + le + "\"",
                              std::to_string(cum));
          }
          std::string ls = labels.empty() ? "" : labels + ",";
          if (cum != h.count() || h.bucket_count(Histogram::kNumBuckets - 1) ==
                                      0) {
            // The mandatory +Inf bucket (== _count), unless the overflow
            // bucket already rendered it.
            out += SampleLine(name + "_bucket", ls + "le=\"+Inf\"",
                              std::to_string(h.count()));
          }
          out += SampleLine(name + "_sum", labels, FormatValue(h.sum()));
          out += SampleLine(name + "_count", labels,
                            std::to_string(h.count()));
          break;
        }
      }
    }
  }
  return out;
}

Status MetricsRegistry::DumpToFile(const std::string& path) const {
  const std::string text = RenderPrometheusText();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("MetricsRegistry::DumpToFile: cannot open " +
                              tmp);
    }
    out << text;
    if (!out.flush()) {
      return Status::Internal("MetricsRegistry::DumpToFile: write to " + tmp +
                              " failed");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("MetricsRegistry::DumpToFile: rename to " + path +
                            " failed");
  }
  return Status::OK();
}

}  // namespace topkpkg::obs
