#ifndef TOPKPKG_OBS_METRICS_H_
#define TOPKPKG_OBS_METRICS_H_

// Process-wide, low-overhead metrics: atomic counters, gauges, and
// fixed-bucket log-scale latency histograms, keyed by (name, labels) in a
// MetricsRegistry and rendered in the Prometheus text exposition format.
//
// Concurrency model. Handle acquisition (GetCounter / GetGauge /
// GetHistogram) takes the registry mutex once and returns a stable pointer;
// the handle's mutation path is lock-free — plain relaxed atomics for
// counters and histogram buckets, CAS loops for the double-valued gauge /
// histogram sum / min / max — so hot loops pay one atomic RMW per update
// and ThreadSanitizer sees no races by construction. Rendering walks the
// same atomics with relaxed loads: a scrape is a consistent-enough snapshot
// (each individual value is atomic; cross-metric skew is inherent to
// scraping a live process).
//
// Escape hatch. Building with -DTOPKPKG_NO_METRICS compiles the pure
// telemetry *call sites* out of the library's hot paths: ScopedLatency
// becomes an empty type and instrumentation blocks are written as
// `if constexpr (obs::kMetricsEnabled) { ... }` so the compiler drops them
// entirely. The classes themselves stay fully functional either way —
// counters that back SessionManager::stats() (and the bench percentile
// helper) must keep counting regardless of the telemetry build flavor.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "topkpkg/common/status.h"

namespace topkpkg::obs {

#if defined(TOPKPKG_NO_METRICS)
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

// Monotone event count. Increment is one relaxed fetch_add.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-writer-wins instantaneous value. Add() is a CAS loop (C++17 has no
// fetch_add for atomic<double>); contended adds retry, which is fine for
// the set-on-change cadence gauges see here.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket log-scale latency histogram with exact nearest-rank
// quantile extraction.
//
// Buckets are quarter-octaves: 4 per power of two, derived from the
// double's frexp decomposition, spanning 2^-31 .. 2^36 seconds (~0.5 ns to
// ~19 h) plus an underflow and an overflow bucket. Each bucket's
// upper/lower edge ratio is at most 5/4, so any quantile read off a bucket
// upper edge overestimates the true order statistic by at most 25% — and
// the tracked exact min/max clamp makes the one-sample, all-equal, and
// overflow-bucket cases exact (metrics_test pins all three against a
// sorted-vector oracle).
class Histogram {
 public:
  static constexpr int kBucketsPerPow2 = 4;
  static constexpr int kMinExp = -30;  // frexp exponent of the first octave.
  static constexpr int kMaxExp = 36;   // frexp exponent of the last octave.
  static constexpr std::size_t kFirstReal = 1;  // 0 is the underflow bucket.
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp + 1) * kBucketsPerPow2 + 2;

  // Bucket holding `v`. Non-positive (and NaN) values land in the
  // underflow bucket, values past the last octave in the overflow bucket.
  static std::size_t BucketIndex(double v) {
    if (!(v > 0.0)) return 0;
    int exp = 0;
    const double frac = std::frexp(v, &exp);  // frac in [0.5, 1).
    if (exp < kMinExp) return 0;
    if (exp > kMaxExp) return kNumBuckets - 1;
    const int sub = static_cast<int>((frac - 0.5) * 2.0 * kBucketsPerPow2);
    return kFirstReal +
           static_cast<std::size_t>(exp - kMinExp) * kBucketsPerPow2 +
           static_cast<std::size_t>(sub < kBucketsPerPow2 ? sub
                                                          : kBucketsPerPow2 -
                                                                1);
  }

  // Inclusive upper edge of bucket `idx` (+inf for the overflow bucket).
  static double BucketUpper(std::size_t idx);

  void Observe(double v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return LoadDouble(sum_); }
  double min() const {
    return count() == 0 ? 0.0 : LoadDouble(min_);
  }
  double max() const {
    return count() == 0 ? 0.0 : LoadDouble(max_);
  }

  // Exact nearest-rank quantile over the buckets: the bucket holding order
  // statistic ceil(q * count) (rank clamped to [1, count]) read at its
  // upper edge, clamped into the observed [min, max]. 0.0 when empty.
  double Quantile(double q) const;

  std::uint64_t bucket_count(std::size_t idx) const {
    return buckets_[idx].load(std::memory_order_relaxed);
  }

 private:
  static double LoadDouble(const std::atomic<double>& a) {
    return a.load(std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

// The (name, labels) keyed metric registry. `labels` is the Prometheus
// label body without braces, e.g. `mgr="3"` or `sampler="RS",phase="draw"`
// (empty for unlabeled metrics); the same (name, labels, kind) always
// returns the same handle, valid for the registry's lifetime. Global() is
// the process-wide instance every library instrumentation point uses; tests
// construct their own registries for isolation.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name, const std::string& help,
                      const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const std::string& labels = "");
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const std::string& labels = "");

  // Prometheus text exposition format: one # HELP / # TYPE pair per metric
  // family, samples sorted by (name, labels), histograms as cumulative
  // `_bucket{le="..."}` series (non-empty buckets plus the mandatory +Inf)
  // with `_sum` and `_count`.
  std::string RenderPrometheusText() const;

  // RenderPrometheusText() to `path` (atomic enough for a snapshot hook:
  // written to a temp file, then renamed into place).
  Status DumpToFile(const std::string& path) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Instrument {
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    // labels -> instrument, ordered for deterministic rendering.
    std::map<std::string, Instrument> series;
  };

  Instrument& GetSlot(const std::string& name, const std::string& help,
                      const std::string& labels, Kind kind);

  mutable std::mutex mu_;  // Guards the maps; never held on a hot path.
  std::map<std::string, Family> families_;
};

// RAII latency probe: observes the enclosing scope's wall time (seconds)
// into a histogram. This is the one instrumentation helper that reads the
// clock, so under TOPKPKG_NO_METRICS it compiles to an empty object and the
// two steady_clock calls vanish from the instrumented path.
#if defined(TOPKPKG_NO_METRICS)
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram*) {}
};
#else
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* hist) : hist_(hist) {
    start_ = std::chrono::steady_clock::now();
  }
  ~ScopedLatency() {
    if (hist_ == nullptr) return;
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - start_;
    hist_->Observe(dt.count());
  }
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};
#endif

}  // namespace topkpkg::obs

#endif  // TOPKPKG_OBS_METRICS_H_
