#ifndef TOPKPKG_OBS_TRACE_H_
#define TOPKPKG_OBS_TRACE_H_

// Lightweight per-request tracing: a TraceContext of nested scoped spans
// flows with a request through SessionManager -> PackageRecommender ->
// SearchBatch, and a Tracer samples 1-in-N contexts deterministically
// (trace id modulo the sampling period) and exports them as JSONL.
//
// Propagation is a thread_local pointer to the current context, installed
// for the lifetime of one request's execution by ScopedTraceBinding on the
// serving worker that runs it. Library code opens spans with ScopedSpan; if
// no context is bound (direct library use, or work handed to an inner
// thread pool whose workers never bound one), the span quietly measures
// nothing extra and records nothing. Span recording therefore only ever
// happens on the single thread that owns the request, so the context needs
// no locking.
//
// ScopedSpan is also the shared timing primitive for RoundLog's phase
// seconds: Close() computes the duration once and both returns it (for the
// log field) and records it (for the trace), so per-round timing and
// tracing cannot drift apart.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "topkpkg/obs/metrics.h"

namespace topkpkg::obs {

// One closed span: relative nanosecond offsets from the context's start so
// exported traces are stable under replay and cheap to serialize.
struct SpanRecord {
  std::string name;
  std::uint64_t start_ns = 0;  // Offset from the trace's first span.
  std::uint64_t dur_ns = 0;
  int depth = 0;  // Nesting depth; 0 is the root span.
};

// Per-request span collection. Created by a Tracer (which decides the
// sampled bit), bound to the executing thread via ScopedTraceBinding,
// flushed back to the tracer when the binding ends.
class TraceContext {
 public:
  TraceContext(std::uint64_t trace_id, bool sampled)
      : trace_id_(trace_id), sampled_(sampled) {}

  std::uint64_t trace_id() const { return trace_id_; }
  bool sampled() const { return sampled_; }
  const std::vector<SpanRecord>& spans() const { return spans_; }

  // Span bookkeeping (single-threaded: only the bound request thread).
  int EnterSpan() { return depth_++; }
  void ExitSpan(SpanRecord record) {
    --depth_;
    if (sampled_) spans_.push_back(std::move(record));
  }
  int depth() const { return depth_; }

  // Timebase for span offsets: the first span anchors it.
  std::chrono::steady_clock::time_point epoch() const { return epoch_; }
  bool has_epoch() const { return has_epoch_; }
  void SetEpoch(std::chrono::steady_clock::time_point t) {
    epoch_ = t;
    has_epoch_ = true;
  }

 private:
  std::uint64_t trace_id_;
  bool sampled_;
  int depth_ = 0;
  bool has_epoch_ = false;
  std::chrono::steady_clock::time_point epoch_{};
  std::vector<SpanRecord> spans_;
};

// Mints trace contexts with deterministic 1-in-N sampling (ids count up
// from 0; id % sample_every == 0 is sampled, so the first request is always
// in the sample and the cadence is reproducible) and sinks sampled
// contexts to a JSONL file, one trace object per line.
class Tracer {
 public:
  // sample_every == 0 disables sampling entirely (contexts still flow, so
  // span nesting stays correct, but nothing is recorded or exported).
  // An empty path keeps sampled traces in memory only (drained by tests
  // via set_sink or simply discarded on Finish).
  explicit Tracer(std::uint64_t sample_every, std::string jsonl_path = "");
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  std::unique_ptr<TraceContext> StartTrace();

  // Serializes (if sampled and a sink is open) and destroys the context.
  void FinishTrace(std::unique_ptr<TraceContext> ctx);

  std::uint64_t sample_every() const { return sample_every_; }

  // One trace as a single JSON line (exposed for tests).
  static std::string ToJsonLine(const TraceContext& ctx);

 private:
  const std::uint64_t sample_every_;
  std::atomic<std::uint64_t> next_id_{0};
  std::mutex sink_mu_;
  std::string jsonl_path_;
  // Opened lazily on first sampled finish so an unused tracer never
  // touches the filesystem.
  std::unique_ptr<std::ofstream> sink_;
};

// Installs `ctx` as the executing thread's current trace context for the
// binding's scope. The serving worker that drains a request wraps the
// request's execution in one of these.
class ScopedTraceBinding {
 public:
  explicit ScopedTraceBinding(TraceContext* ctx);
  ~ScopedTraceBinding();

  ScopedTraceBinding(const ScopedTraceBinding&) = delete;
  ScopedTraceBinding& operator=(const ScopedTraceBinding&) = delete;

 private:
  TraceContext* prev_;
};

// The executing thread's current context, or nullptr when none is bound.
TraceContext* CurrentTraceContext();

// RAII span. Always measures wall time (Close() returns seconds — RoundLog
// phase fields are populated from it in every build flavor); records a
// SpanRecord only when a sampled context is bound to this thread. `name`
// must outlive the span (string literals in practice).
class ScopedSpan {
 public:
  // If `accumulate_seconds` is non-null, Close() also += the duration into
  // it — the natural shape for RoundLog fields that sum several spans
  // (maintain + reweight).
  explicit ScopedSpan(const char* name, double* accumulate_seconds = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Ends the span now and returns its duration in seconds. Idempotent:
  // repeated calls (and the destructor) return the first call's duration
  // without re-measuring or re-recording.
  double Close();

 private:
  const char* name_;
  double* accumulate_seconds_;
  TraceContext* ctx_;  // Bound context at construction (may be null).
  int depth_ = 0;
  bool closed_ = false;
  double seconds_ = 0.0;  // Cached Close() result.
  std::chrono::steady_clock::time_point start_;
  std::uint64_t start_ns_ = 0;  // Offset from ctx_ epoch (0 if no ctx).
};

}  // namespace topkpkg::obs

#endif  // TOPKPKG_OBS_TRACE_H_
