#include "topkpkg/obs/trace.h"

#include <fstream>

namespace topkpkg::obs {

namespace {

thread_local TraceContext* tls_current_trace = nullptr;

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

}  // namespace

Tracer::Tracer(std::uint64_t sample_every, std::string jsonl_path)
    : sample_every_(sample_every), jsonl_path_(std::move(jsonl_path)) {}

Tracer::~Tracer() = default;

std::unique_ptr<TraceContext> Tracer::StartTrace() {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const bool sampled = sample_every_ != 0 && id % sample_every_ == 0;
  return std::make_unique<TraceContext>(id, sampled);
}

void Tracer::FinishTrace(std::unique_ptr<TraceContext> ctx) {
  if (ctx == nullptr || !ctx->sampled() || ctx->spans().empty() ||
      jsonl_path_.empty()) {
    return;
  }
  const std::string line = ToJsonLine(*ctx);
  std::lock_guard<std::mutex> lock(sink_mu_);
  if (sink_ == nullptr) {
    sink_ = std::make_unique<std::ofstream>(jsonl_path_,
                                            std::ios::binary | std::ios::app);
  }
  if (sink_->good()) {
    *sink_ << line;
    sink_->flush();
  }
}

std::string Tracer::ToJsonLine(const TraceContext& ctx) {
  std::string out = "{\"trace_id\":" + std::to_string(ctx.trace_id()) +
                    ",\"spans\":[";
  bool first = true;
  for (const SpanRecord& s : ctx.spans()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(out, s.name);
    out += "\",\"start_ns\":" + std::to_string(s.start_ns) +
           ",\"dur_ns\":" + std::to_string(s.dur_ns) +
           ",\"depth\":" + std::to_string(s.depth) + "}";
  }
  out += "]}\n";
  return out;
}

ScopedTraceBinding::ScopedTraceBinding(TraceContext* ctx)
    : prev_(tls_current_trace) {
  tls_current_trace = ctx;
}

ScopedTraceBinding::~ScopedTraceBinding() { tls_current_trace = prev_; }

TraceContext* CurrentTraceContext() { return tls_current_trace; }

ScopedSpan::ScopedSpan(const char* name, double* accumulate_seconds)
    : name_(name),
      accumulate_seconds_(accumulate_seconds),
      ctx_(tls_current_trace),
      start_(std::chrono::steady_clock::now()) {
  if (ctx_ != nullptr) {
    if (!ctx_->has_epoch()) ctx_->SetEpoch(start_);
    start_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(start_ -
                                                             ctx_->epoch())
            .count());
    depth_ = ctx_->EnterSpan();
  }
}

ScopedSpan::~ScopedSpan() { Close(); }

double ScopedSpan::Close() {
  if (closed_) return seconds_;
  closed_ = true;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  // One measurement feeds both consumers: the returned/accumulated seconds
  // (RoundLog phase fields) and the recorded span — they cannot disagree.
  seconds_ = static_cast<double>(ns) * 1e-9;
  if (accumulate_seconds_ != nullptr) *accumulate_seconds_ += seconds_;
  if (ctx_ != nullptr) {
    SpanRecord rec;
    rec.name = name_;
    rec.start_ns = start_ns_;
    rec.dur_ns = static_cast<std::uint64_t>(ns);
    rec.depth = depth_;
    ctx_->ExitSpan(std::move(rec));
  }
  return seconds_;
}

}  // namespace topkpkg::obs
