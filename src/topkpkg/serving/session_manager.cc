#include "topkpkg/serving/session_manager.h"

#include <chrono>
#include <utility>

#include "topkpkg/storage/codec.h"
#include "topkpkg/storage/session_store.h"

namespace topkpkg::serving {

namespace {

// Resolves the one armed promise of `req` with an error. Safe to call
// exactly once per request, off the manager lock.
void FailRequest(SessionRequest& req, const Status& st) {
  switch (req.kind) {
    case SessionRequest::Kind::kFeedback:
      req.feedback_result.set_value(st);
      return;
    case SessionRequest::Kind::kGetTopK:
      req.topk_result.set_value(st);
      return;
    case SessionRequest::Kind::kEndSession:
      req.end_result.set_value(st);
      return;
  }
}

}  // namespace

std::future<Result<recsys::RoundLog>> SessionHandle::Feedback(
    const recsys::SimulatedUser* user) {
  return manager_->SubmitFeedback(id_, user);
}

std::future<Result<TopKSnapshot>> SessionHandle::GetTopK() {
  return manager_->SubmitGetTopK(id_);
}

std::future<Status> SessionHandle::End() {
  return manager_->SubmitEndSession(id_);
}

SessionManager::SessionManager(const model::PackageEvaluator* evaluator,
                               const prob::GaussianMixture* prior,
                               storage::SessionStore* store,
                               SessionManagerOptions options)
    : evaluator_(evaluator),
      prior_(prior),
      store_(store),
      options_(std::move(options)) {
  const std::size_t workers = options_.num_workers == 0
                                  ? ThreadPool::DefaultThreadCount()
                                  : options_.num_workers;
  owned_pool_ = std::make_unique<ThreadPool>(workers);
  pool_ = owned_pool_.get();
  // The single seam: every session's phases borrow the manager's pool
  // instead of spawning their own (nested ParallelFor from a pool worker
  // runs inline, so this cannot deadlock).
  options_.recommender.exec.pool = pool_;

  // Registry handles, labeled with a process-unique manager id so each
  // manager (tests construct them back to back) gets fresh series and
  // stats() stays exactly per-manager.
  static std::atomic<std::uint64_t> next_mgr_id{0};
  const std::string mgr =
      "mgr=\"" +
      std::to_string(next_mgr_id.fetch_add(1, std::memory_order_relaxed)) +
      "\"";
  auto& reg = obs::MetricsRegistry::Global();
  metrics_.sessions = reg.GetGauge("topkpkg_serving_sessions",
                                   "Registered live (non-ended) sessions",
                                   mgr);
  metrics_.hydrated = reg.GetGauge("topkpkg_serving_hydrated",
                                   "Recommenders resident in memory", mgr);
  metrics_.queue_depth = reg.GetGauge(
      "topkpkg_serving_queue_depth",
      "Requests queued across all sessions, not yet executing", mgr);
  metrics_.hydrations = reg.GetCounter("topkpkg_serving_hydrations_total",
                                       "Cold-to-resident transitions", mgr);
  metrics_.evictions = reg.GetCounter(
      "topkpkg_serving_evictions_total",
      "Checkpoint-then-drop (or clean-drop) LRU evictions", mgr);
  metrics_.completed = reg.GetCounter(
      "topkpkg_serving_completed_total",
      "Requests whose promise was fulfilled", mgr);
  metrics_.rejected = reg.GetCounter(
      "topkpkg_serving_rejected_total",
      "Submits refused (backpressure, unknown session, shutdown)", mgr);
  metrics_.store_errors = reg.GetCounter(
      "topkpkg_serving_store_errors_total",
      "Failed store writes, counting every attempt", mgr);
  metrics_.store_retries = reg.GetCounter(
      "topkpkg_serving_store_retries_total",
      "Backed-off checkpoint re-attempts", mgr);
  metrics_.degraded_hydrations = reg.GetCounter(
      "topkpkg_serving_degraded_hydrations_total",
      "Hydrations admitted over capacity because no victim could checkpoint",
      mgr);
  metrics_.writebacks = reg.GetCounter(
      "topkpkg_serving_writebacks_total",
      "Background checkpoints of idle dirty sessions", mgr);
  metrics_.clean_drops = reg.GetCounter(
      "topkpkg_serving_clean_drops_total",
      "Evictions that needed no store write", mgr);
  metrics_.queue_wait = reg.GetHistogram(
      "topkpkg_serving_queue_wait_seconds",
      "Time a request spent queued before a worker picked it up", mgr);
  metrics_.execute = reg.GetHistogram(
      "topkpkg_serving_execute_seconds",
      "Time a worker spent executing a request (excludes queue wait)", mgr);

  if (options_.trace_sample_every > 0) {
    tracer_ = std::make_unique<obs::Tracer>(options_.trace_sample_every,
                                            options_.trace_jsonl_path);
  }
  if (options_.writeback_interval_ms > 0) {
    writeback_thread_ = std::thread([this]() { WritebackLoop(); });
  }
}

Result<std::unique_ptr<SessionManager>> SessionManager::Create(
    const model::PackageEvaluator* evaluator,
    const prob::GaussianMixture* prior, storage::SessionStore* store,
    SessionManagerOptions options) {
  if (store == nullptr) {
    return Status::InvalidArgument(
        "SessionManager::Create: store must not be null (cold sessions "
        "live only in the store)");
  }
  if (options.max_hydrated_sessions == 0) {
    return Status::InvalidArgument(
        "SessionManagerOptions.max_hydrated_sessions: at least one session "
        "must be able to reside in memory");
  }
  if (options.max_queued_requests_per_session == 0) {
    return Status::InvalidArgument(
        "SessionManagerOptions.max_queued_requests_per_session: a queue of "
        "0 would reject every request");
  }
  // Validate the recommender template once, up front, with the same
  // validator every hydration uses — a bad template must fail Create, not
  // the first request.
  {
    Result<std::unique_ptr<recsys::PackageRecommender>> probe =
        recsys::PackageRecommender::Create(evaluator, prior,
                                           options.recommender, /*seed=*/0);
    if (!probe.ok()) return probe.status();
  }
  return std::unique_ptr<SessionManager>(
      new SessionManager(evaluator, prior, store, std::move(options)));
}

SessionManager::~SessionManager() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;  // Rejects new submits; queued work still runs.
  }
  writeback_cv_.notify_all();
  if (writeback_thread_.joinable()) writeback_thread_.join();
  // ThreadPool's destructor drains every queued task, so each pending
  // request resolves its future before the pool joins. Tasks still running
  // during the drain resubmit through the raw pool_ alias, which remains
  // valid until ~ThreadPool returns.
  owned_pool_.reset();
  // Persist whatever is still resident and dirty. Destruction cannot report
  // errors; sessions that fail to checkpoint keep their previous durable
  // state (Checkpoint is crash-atomic, so the store is never left torn).
  std::lock_guard<std::mutex> store_lock(store_mu_);
  for (auto& [id, s] : sessions_) {
    if (s->rec != nullptr) {
      if (s->dirty) {
        s->rec->Checkpoint(*store_, id).ok();  // Best effort by design.
      }
      s->rec.reset();
    }
  }
}

Result<SessionHandle> SessionManager::StartSession(SessionId id,
                                                   std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutting_down_) {
    return Status::FailedPrecondition("SessionManager: shutting down");
  }
  auto [it, inserted] = sessions_.try_emplace(id);
  if (inserted) {
    it->second = std::make_unique<SessionState>();
    it->second->id = id;
    it->second->seed = seed;
    metrics_.sessions->Add(1.0);
  } else if (it->second->ended) {
    // Re-open a previously ended session: it continues from its checkpoint
    // in the store (the seed only matters if no checkpoint exists).
    it->second->ended = false;
    it->second->seed = seed;
    it->second->rounds_served = 0;  // Serving-layer counter, not state.
    metrics_.sessions->Add(1.0);
  }
  return SessionHandle(this, id);
}

std::future<Result<recsys::RoundLog>> SessionManager::SubmitFeedback(
    SessionId id, const recsys::SimulatedUser* user) {
  SessionRequest req;
  req.kind = SessionRequest::Kind::kFeedback;
  req.user = user;
  std::future<Result<recsys::RoundLog>> future =
      req.feedback_result.get_future();
  if (user == nullptr) {
    req.feedback_result.set_value(Status::InvalidArgument(
        "SubmitFeedback: user must not be null"));
    return future;
  }
  Enqueue(id, std::move(req));
  return future;
}

std::future<Result<TopKSnapshot>> SessionManager::SubmitGetTopK(
    SessionId id) {
  SessionRequest req;
  req.kind = SessionRequest::Kind::kGetTopK;
  std::future<Result<TopKSnapshot>> future = req.topk_result.get_future();
  Enqueue(id, std::move(req));
  return future;
}

std::future<Status> SessionManager::SubmitEndSession(SessionId id) {
  SessionRequest req;
  req.kind = SessionRequest::Kind::kEndSession;
  std::future<Status> future = req.end_result.get_future();
  Enqueue(id, std::move(req));
  return future;
}

Status SessionManager::Enqueue(SessionId id, SessionRequest req) {
  Status st;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (shutting_down_) {
      st = Status::FailedPrecondition("SessionManager: shutting down");
    } else if (it == sessions_.end()) {
      st = Status::NotFound("unknown session " + std::to_string(id) +
                            " (StartSession first)");
    } else if (it->second->ended) {
      st = Status::FailedPrecondition("session " + std::to_string(id) +
                                      " has ended");
    } else if (it->second->queue.size() >=
               options_.max_queued_requests_per_session) {
      st = Status::ResourceExhausted(
          "session " + std::to_string(id) + " queue is full (" +
          std::to_string(options_.max_queued_requests_per_session) +
          " pending requests)");
    }
    if (st.ok()) {
      SessionState& s = *it->second;
      if constexpr (obs::kMetricsEnabled) {
        req.enqueued_at = std::chrono::steady_clock::now();
        metrics_.queue_depth->Add(1.0);
      }
      if (tracer_ != nullptr) req.trace = tracer_->StartTrace();
      s.queue.push_back(std::move(req));
      if (!s.scheduled) {
        // At most one drain task per session ever exists; this is the
        // per-session serialization. Cross-session parallelism comes from
        // distinct sessions' drain tasks sharing the pool.
        s.scheduled = true;
        pool_->Submit([this, id]() { DrainOne(id); });
      }
      return Status::OK();
    }
    metrics_.rejected->Increment();
  }
  FailRequest(req, st);
  return st;
}

void SessionManager::LruAppend(SessionState& s) {
  if (s.in_lru) return;
  s.in_lru = true;
  s.lru_prev = lru_tail_;
  s.lru_next = nullptr;
  if (lru_tail_ != nullptr) {
    lru_tail_->lru_next = &s;
  } else {
    lru_head_ = &s;
  }
  lru_tail_ = &s;
}

void SessionManager::LruUnlink(SessionState& s) {
  if (!s.in_lru) return;
  s.in_lru = false;
  if (s.lru_prev != nullptr) {
    s.lru_prev->lru_next = s.lru_next;
  } else {
    lru_head_ = s.lru_next;
  }
  if (s.lru_next != nullptr) {
    s.lru_next->lru_prev = s.lru_prev;
  } else {
    lru_tail_ = s.lru_prev;
  }
  s.lru_prev = nullptr;
  s.lru_next = nullptr;
}

SessionManager::RetryOutcome SessionManager::CheckpointWithRetry(
    recsys::PackageRecommender& rec, SessionId id) {
  RetryOutcome out;
  for (std::size_t attempt = 0;; ++attempt) {
    {
      std::lock_guard<std::mutex> store_lock(store_mu_);
      out.status = rec.Checkpoint(*store_, id);
    }
    if (out.status.ok()) return out;
    ++out.errors;
    if (attempt >= options_.store_retry_limit) return out;
    ++out.retries;
    // Exponential backoff, slept while holding nothing: a transient store
    // hiccup heals without stalling other sessions' drains.
    std::this_thread::sleep_for(std::chrono::milliseconds(
        options_.store_retry_backoff_ms << attempt));
  }
}

Status SessionManager::EvictLocked(std::unique_lock<std::mutex>& lock,
                                   SessionState& victim) {
  // A clean victim's state is already durable: drop it with no store I/O.
  if (!victim.dirty) {
    victim.rec.reset();
    --hydrated_count_;
    if constexpr (obs::kMetricsEnabled) {
      metrics_.hydrated->Set(static_cast<double>(hydrated_count_));
    }
    metrics_.evictions->Increment();
    metrics_.clean_drops->Increment();
    return Status::OK();
  }
  recsys::PackageRecommender* rec = victim.rec.get();
  const SessionId victim_id = victim.id;
  lock.unlock();
  RetryOutcome out = CheckpointWithRetry(*rec, victim_id);
  lock.lock();
  metrics_.store_errors->Increment(out.errors);
  metrics_.store_retries->Increment(out.retries);
  // When every retry failed the victim stays resident — dropping it would
  // lose rounds the store never saw. The caller decides whether to degrade
  // (hydrate over capacity) or surface the error.
  if (!out.status.ok()) return out.status;
  victim.dirty = false;
  victim.rec.reset();
  --hydrated_count_;
  if constexpr (obs::kMetricsEnabled) {
    metrics_.hydrated->Set(static_cast<double>(hydrated_count_));
  }
  metrics_.evictions->Increment();
  return Status::OK();
}

Status SessionManager::EnsureHydrated(std::unique_lock<std::mutex>& lock,
                                      SessionState& s) {
  while (hydrated_count_ >= options_.max_hydrated_sessions) {
    // The LRU list holds exactly the idle resident sessions, head least
    // recently used — the victim is one pointer read, O(1) regardless of
    // how many sessions are resident.
    SessionState* victim = lru_head_;
    if (victim != nullptr) {
      victim->busy = true;
      LruUnlink(*victim);
      Status st = EvictLocked(lock, *victim);
      victim->busy = false;
      // A failed checkpoint leaves the victim resident and idle: relink it
      // at the MRU end so retries under persistent store failure rotate
      // through candidates instead of hammering one session.
      if (victim->rec != nullptr) LruAppend(*victim);
      slot_cv_.notify_all();
      if (!st.ok()) {
        // Store outage: no victim can leave. Serve degraded instead of
        // failing the request — hydrate over capacity and let future
        // evictions shrink the set once the store heals. A session is
        // never dropped and a request is never refused because the store
        // is down.
        metrics_.degraded_hydrations->Increment();
        break;
      }
      continue;  // Lock was held across the re-check: the slot is ours.
    }
    // Every resident session is mid-request. Each is owned by an actively
    // executing worker (busy tasks never wait on this cv), so one will
    // finish and notify; waiting here cannot deadlock.
    slot_cv_.wait(lock);
  }
  ++hydrated_count_;  // Reserve the slot before releasing the lock.
  if constexpr (obs::kMetricsEnabled) {
    metrics_.hydrated->Set(static_cast<double>(hydrated_count_));
  }
  metrics_.hydrations->Increment();
  lock.unlock();

  Result<std::unique_ptr<recsys::PackageRecommender>> rec =
      recsys::PackageRecommender::Create(evaluator_, prior_,
                                         options_.recommender, s.seed);
  Status st = rec.ok() ? Status::OK() : rec.status();
  if (st.ok()) {
    std::lock_guard<std::mutex> store_lock(store_mu_);
    if (store_->Contains(s.id, storage::kKindRecommenderMeta)) {
      st = (*rec)->Restore(*store_, s.id);
    }
  }

  lock.lock();
  if (!st.ok()) {
    --hydrated_count_;
    if constexpr (obs::kMetricsEnabled) {
      metrics_.hydrated->Set(static_cast<double>(hydrated_count_));
    }
    slot_cv_.notify_all();
    return st;
  }
  s.rec = std::move(*rec);
  return Status::OK();
}

void SessionManager::DrainOne(SessionId id) {
  std::unique_lock<std::mutex> lock(mu_);
  SessionState& s = *sessions_.at(id);
  // An evictor may hold this session (it was idle when chosen as victim,
  // then a request arrived and scheduled us). Wait for it to finish — the
  // evictor is actively checkpointing, never cv-waiting, so it always
  // releases. No other drain task can race us here (one per session).
  while (s.busy) slot_cv_.wait(lock);
  s.busy = true;
  LruUnlink(s);  // Busy sessions are never eviction victims.
  SessionRequest req = std::move(s.queue.front());
  s.queue.pop_front();
  if constexpr (obs::kMetricsEnabled) {
    metrics_.queue_depth->Add(-1.0);
    const std::chrono::duration<double> waited =
        std::chrono::steady_clock::now() - req.enqueued_at;
    metrics_.queue_wait->Observe(waited.count());
  }

  Status pre;
  if (s.ended) {
    // An End ahead of this request in the queue already completed.
    pre = Status::FailedPrecondition("session " + std::to_string(id) +
                                     " has ended");
  } else if (req.kind != SessionRequest::Kind::kEndSession &&
             s.rec == nullptr) {
    pre = EnsureHydrated(lock, s);
  }
  lock.unlock();

  // Execute off the lock: `busy` pins the session (eviction scans skip it,
  // and the single-drain-task invariant keeps every other request of this
  // session queued), so s.rec is exclusively ours here. Results are staged
  // and the promise fulfilled only after the bookkeeping below, which is
  // what makes the registry-backed stats() read-your-writes for a caller
  // who awaited its futures: every counter Increment (relaxed atomics on
  // the ServingMetrics handles) is sequenced before set_value, set_value
  // synchronizes with the caller's future::get, so the increments are
  // visible to any stats() call that follows the get.
  Result<recsys::RoundLog> feedback_out =
      Status::Internal("unset");  // Overwritten by the kFeedback branch.
  TopKSnapshot topk_out;
  Status end_out;
  if (pre.ok()) {
    // Bind the request's trace context to this worker for the execute
    // window: spans opened anywhere down the call chain (RunRound phases,
    // SearchBatch) nest under the root span. The execute histogram
    // measures the same window.
    obs::ScopedTraceBinding trace_binding(req.trace.get());
    const char* root_name =
        req.kind == SessionRequest::Kind::kFeedback
            ? "serve_feedback"
            : req.kind == SessionRequest::Kind::kGetTopK ? "serve_get_topk"
                                                         : "serve_end";
    obs::ScopedSpan root_span(root_name);
    obs::ScopedLatency execute_latency(metrics_.execute);
    switch (req.kind) {
      case SessionRequest::Kind::kFeedback: {
        feedback_out = s.rec->RunRound(*req.user);
        if (feedback_out.ok()) {
          ++s.rounds_served;
          s.dirty = true;  // The store no longer has this round.
        }
        break;
      }
      case SessionRequest::Kind::kGetTopK: {
        topk_out.top_k = s.rec->current_top_k();
        topk_out.rounds_served = s.rounds_served;
        break;
      }
      case SessionRequest::Kind::kEndSession: {
        RetryOutcome out;
        if (s.rec != nullptr && s.dirty) {
          out = CheckpointWithRetry(*s.rec, id);
          end_out = out.status;
        }
        lock.lock();
        metrics_.store_errors->Increment(out.errors);
        metrics_.store_retries->Increment(out.retries);
        if (end_out.ok()) {
          if (s.rec != nullptr) {
            s.dirty = false;
            s.rec.reset();
            --hydrated_count_;
            if constexpr (obs::kMetricsEnabled) {
              metrics_.hydrated->Set(static_cast<double>(hydrated_count_));
            }
          }
          s.ended = true;
          metrics_.sessions->Add(-1.0);
        }
        lock.unlock();
        break;
      }
    }
  }
  if (tracer_ != nullptr) tracer_->FinishTrace(std::move(req.trace));

  lock.lock();
  s.busy = false;
  // The request just served makes this session the most recently used; an
  // ended or still-cold session is not an eviction candidate.
  if (s.rec != nullptr && !s.ended) LruAppend(s);
  metrics_.completed->Increment();
  if (!s.queue.empty()) {
    pool_->Submit([this, id]() { DrainOne(id); });
  } else {
    s.scheduled = false;
  }
  slot_cv_.notify_all();
  lock.unlock();

  if (!pre.ok()) {
    FailRequest(req, pre);
    return;
  }
  switch (req.kind) {
    case SessionRequest::Kind::kFeedback:
      req.feedback_result.set_value(std::move(feedback_out));
      break;
    case SessionRequest::Kind::kGetTopK:
      req.topk_result.set_value(std::move(topk_out));
      break;
    case SessionRequest::Kind::kEndSession:
      req.end_result.set_value(end_out);
      break;
  }
}

void SessionManager::WritebackLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!shutting_down_) {
    writeback_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.writeback_interval_ms));
    if (shutting_down_) return;
    // Drain an overdue group-commit window first (a trickle of puts below
    // group_commit_puts otherwise sits unsynced until the next burst).
    // MaybeFlush is a cheap deadline check when the store's flush timer is
    // off or nothing is pending.
    {
      lock.unlock();
      Status flush_st;
      {
        std::lock_guard<std::mutex> store_lock(store_mu_);
        flush_st = store_->MaybeFlush();
      }
      lock.lock();
      if (!flush_st.ok()) metrics_.store_errors->Increment();
      if (shutting_down_) return;
    }
    // Collect candidates first: processing unlocks mu_, and StartSession
    // may rehash sessions_ in that window, so iterators can't be held.
    std::vector<SessionId> candidates;
    for (const auto& [id, s] : sessions_) {
      if (s->rec != nullptr && !s->busy && !s->scheduled && !s->ended &&
          s->dirty) {
        candidates.push_back(id);
      }
    }
    for (const SessionId id : candidates) {
      if (shutting_down_) return;
      SessionState& s = *sessions_.at(id);
      // Re-check under the lock: a drain task may have claimed the session
      // since the scan. Skip it — its own eviction will checkpoint later.
      if (s.rec == nullptr || s.busy || s.scheduled || s.ended || !s.dirty) {
        continue;
      }
      s.busy = true;  // Pins s.rec exactly like an evictor does.
      LruUnlink(s);
      recsys::PackageRecommender* rec = s.rec.get();
      lock.unlock();
      Status st;
      {
        std::lock_guard<std::mutex> store_lock(store_mu_);
        st = rec->Checkpoint(*store_, id);
      }
      lock.lock();
      s.busy = false;
      if (st.ok()) {
        s.dirty = false;
        metrics_.writebacks->Increment();
      } else {
        // Leave it dirty; eviction (with retries) remains the backstop.
        metrics_.store_errors->Increment();
      }
      if (s.rec != nullptr && !s.ended) LruAppend(s);
      slot_cv_.notify_all();
    }
  }
}

SessionManager::Stats SessionManager::stats() const {
  // Assembled straight from the registry handles — the same series a
  // Prometheus scrape reads, so the two surfaces cannot disagree. mu_ only
  // guards hydrated_count_; the handles are relaxed atomics.
  std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  out.sessions = static_cast<std::size_t>(metrics_.sessions->value());
  out.hydrated = hydrated_count_;
  out.hydrations = metrics_.hydrations->value();
  out.evictions = metrics_.evictions->value();
  out.completed = metrics_.completed->value();
  out.rejected = metrics_.rejected->value();
  out.store_errors = metrics_.store_errors->value();
  out.store_retries = metrics_.store_retries->value();
  out.degraded_hydrations = metrics_.degraded_hydrations->value();
  out.writebacks = metrics_.writebacks->value();
  out.clean_drops = metrics_.clean_drops->value();
  return out;
}

}  // namespace topkpkg::serving
