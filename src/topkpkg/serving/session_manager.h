#ifndef TOPKPKG_SERVING_SESSION_MANAGER_H_
#define TOPKPKG_SERVING_SESSION_MANAGER_H_

// The multi-tenant serving frontend: one SessionManager multiplexes
// thousands of concurrent elicitation sessions over a single shared
// ThreadPool and a single durable SessionStore.
//
//   - Hydrated-LRU working set. At most `max_hydrated_sessions` live
//     PackageRecommenders are in memory at once; every other session exists
//     only as its checkpoint in the store. A request to a cold session
//     hydrates it on demand (Restore), evicting the least-recently-used
//     idle session first (Checkpoint, then drop). Because Checkpoint /
//     Restore round-trips are bit-identical, a session served through any
//     number of evict→hydrate cycles produces exactly the RoundLogs the
//     always-resident session would (session_manager_test proves it).
//
//   - Per-session FIFO, cross-session parallelism. Each session owns a
//     request queue drained strictly in order — two requests to one session
//     never interleave — while requests to distinct sessions run
//     concurrently on the shared pool. Session work that wants its own
//     inner parallelism borrows the same pool through the
//     ExecutionOptions::pool seam (safe: nested ParallelFor from a worker
//     runs inline, see ThreadPool::OnWorkerThread).
//
//   - Capacity and backpressure. A session whose queue holds
//     `max_queued_requests_per_session` pending requests rejects further
//     submits with ResourceExhausted instead of buffering unboundedly; the
//     caller sheds load or retries.
//
//   - Self-healing under store failure. Checkpoint writes that fail are
//     retried with exponential backoff (`store_retry_limit`,
//     `store_retry_backoff_ms`); a victim whose checkpoint still fails
//     stays resident — a session is never dropped with rounds the store has
//     not seen — and the manager hydrates *over* capacity (degraded mode)
//     so requests keep completing through a store outage. An optional
//     background writeback thread checkpoints dirty idle sessions so most
//     evictions become free drops of already-durable state.
//
// Requests are submitted through a SessionHandle and complete as typed
// Result<T> futures: Feedback → Result<RoundLog>, GetTopK →
// Result<TopKSnapshot>, End → Status. Submission never blocks on session
// work; rejection (unknown session, full queue, shutdown) resolves the
// future immediately.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "topkpkg/common/status.h"
#include "topkpkg/common/thread_pool.h"
#include "topkpkg/model/package.h"
#include "topkpkg/obs/metrics.h"
#include "topkpkg/obs/trace.h"
#include "topkpkg/recsys/recommender.h"
#include "topkpkg/recsys/simulated_user.h"

namespace topkpkg::storage {
class SessionStore;
}

namespace topkpkg::serving {

using SessionId = std::uint64_t;

// GetTopK's reply: the session's current best-package list.
struct TopKSnapshot {
  std::vector<model::Package> top_k;
  std::size_t rounds_served = 0;  // Feedback rounds this session completed.
};

struct SessionManagerOptions {
  // Template every session's PackageRecommender is built from. Must stay
  // fixed for the manager's lifetime: the checkpoint config fingerprint is
  // derived from it, so changing it orphans cold sessions. exec.pool is
  // overwritten with the manager's shared pool.
  recsys::RecommenderOptions recommender;
  // Hydrated-LRU capacity: max sessions resident in memory at once.
  std::size_t max_hydrated_sessions = 64;
  // Backpressure: pending requests per session before ResourceExhausted.
  std::size_t max_queued_requests_per_session = 64;
  // Shared worker pool size; 0 = ThreadPool::DefaultThreadCount().
  std::size_t num_workers = 0;
  // Self-healing: retries after a failed checkpoint write before the
  // manager gives up on that eviction and serves degraded instead.
  std::size_t store_retry_limit = 4;
  // First retry waits this long; each further retry doubles it. Slept off
  // every lock, so other sessions keep serving during the backoff.
  std::uint64_t store_retry_backoff_ms = 10;
  // Background writeback cadence: every interval, idle dirty sessions are
  // checkpointed so their later eviction is a free drop. 0 disables it.
  std::uint64_t writeback_interval_ms = 0;
  // Request tracing: sample 1 in N requests (deterministically, by request
  // id) into a TraceContext whose nested spans cover serve → RunRound →
  // phases → SearchBatch. 0 disables tracing entirely.
  std::uint64_t trace_sample_every = 0;
  // Where sampled traces are appended as JSONL, one trace per line. Empty
  // keeps sampling decisions flowing (for tests) but writes nothing.
  std::string trace_jsonl_path;
};

// One queued unit of session work. Exactly one of the result promises is
// armed, matching `kind`; the drain loop fulfills it when the request's
// turn comes.
struct SessionRequest {
  enum class Kind { kFeedback, kGetTopK, kEndSession };
  Kind kind = Kind::kFeedback;
  // kFeedback: the click model driving this round. Must outlive the future.
  const recsys::SimulatedUser* user = nullptr;
  // Stamped at enqueue so the drain can split queue wait from execute time.
  std::chrono::steady_clock::time_point enqueued_at{};
  // Minted at enqueue when tracing is on (ids count in submission order,
  // which makes 1-in-N sampling deterministic for tests).
  std::unique_ptr<obs::TraceContext> trace;
  std::promise<Result<recsys::RoundLog>> feedback_result;
  std::promise<Result<TopKSnapshot>> topk_result;
  std::promise<Status> end_result;
};

class SessionManager;

// Cheap value handle for submitting requests to one session. Valid only
// while the SessionManager that issued it is alive.
class SessionHandle {
 public:
  SessionHandle() = default;

  SessionId id() const { return id_; }

  // Runs one elicitation round (present → click → fold feedback) against
  // `user`, which must outlive the returned future's completion.
  std::future<Result<recsys::RoundLog>> Feedback(
      const recsys::SimulatedUser* user);

  // Reads the session's current top-k list (hydrating it if cold).
  std::future<Result<TopKSnapshot>> GetTopK();

  // Checkpoints the session to the store and drops it from memory. The
  // session's durable state survives; StartSession with the same id
  // re-opens it. Requests queued behind the End fail FailedPrecondition.
  std::future<Status> End();

 private:
  friend class SessionManager;
  SessionHandle(SessionManager* manager, SessionId id)
      : manager_(manager), id_(id) {}

  SessionManager* manager_ = nullptr;
  SessionId id_ = 0;
};

class SessionManager {
 public:
  struct Stats {
    std::size_t sessions = 0;       // Registered (live, non-ended) sessions.
    std::size_t hydrated = 0;       // Currently resident recommenders.
    std::uint64_t hydrations = 0;   // Cold → resident transitions.
    std::uint64_t evictions = 0;    // Checkpoint-then-drop LRU evictions.
    std::uint64_t completed = 0;    // Requests whose promise was fulfilled.
    std::uint64_t rejected = 0;     // Submits refused (backpressure etc.).
    std::uint64_t store_errors = 0;     // Failed store writes (every attempt).
    std::uint64_t store_retries = 0;    // Backed-off checkpoint re-attempts.
    std::uint64_t degraded_hydrations = 0;  // Hydrated over capacity because
                                            // no victim could checkpoint.
    std::uint64_t writebacks = 0;   // Background checkpoints of idle sessions.
    std::uint64_t clean_drops = 0;  // Evictions that needed no store write.
  };

  // Validates the configuration (including the recommender template, via
  // PackageRecommender::Create) and spins up the shared pool. `evaluator`,
  // `prior` and `store` must outlive the manager; the manager is the
  // store's only user while alive (SessionStore is single-owner).
  static Result<std::unique_ptr<SessionManager>> Create(
      const model::PackageEvaluator* evaluator,
      const prob::GaussianMixture* prior, storage::SessionStore* store,
      SessionManagerOptions options);

  // Completes every queued request, then checkpoints all still-hydrated
  // sessions so the store holds the full serving state.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // Registers (or re-opens) session `id` and returns its handle. A session
  // with a checkpoint in the store resumes from it on first request —
  // `seed` only seeds brand-new sessions. Calling StartSession for an
  // already-registered live session returns the same handle (the seed is
  // ignored). FailedPrecondition after shutdown began.
  Result<SessionHandle> StartSession(SessionId id, std::uint64_t seed);

  // Handle-free submission surface (the handle methods forward here).
  std::future<Result<recsys::RoundLog>> SubmitFeedback(
      SessionId id, const recsys::SimulatedUser* user);
  std::future<Result<TopKSnapshot>> SubmitGetTopK(SessionId id);
  std::future<Status> SubmitEndSession(SessionId id);

  Stats stats() const;

  ThreadPool* pool() { return pool_; }

 private:
  // Per-session serving state. Entries are created by StartSession and kept
  // for the manager's lifetime (an ended session stays as a tombstone so
  // late submits fail cleanly instead of resurrecting it).
  struct SessionState {
    SessionId id = 0;
    std::uint64_t seed = 0;
    std::deque<SessionRequest> queue;
    // A drain task for this session is queued or running (at most one ever
    // exists — this is what serializes a session's requests).
    bool scheduled = false;
    // A worker is executing / hydrating / evicting this session right now.
    // Busy sessions are never eviction victims.
    bool busy = false;
    bool ended = false;
    // The resident recommender has rounds the store has not seen. Set when
    // a feedback round completes, cleared by a successful checkpoint
    // (eviction, writeback, End, destructor). Clean sessions evict with no
    // store write. Mutated off-lock only while `busy` pins the session.
    bool dirty = false;
    std::unique_ptr<recsys::PackageRecommender> rec;  // Null when cold.
    // Intrusive LRU-list links (guarded by mu_). A session is linked iff it
    // is resident and idle (rec != nullptr && !busy) — exactly the eviction
    // candidates — so picking a victim is "read lru_head_", O(1), instead
    // of scanning every resident session under the manager lock.
    SessionState* lru_prev = nullptr;
    SessionState* lru_next = nullptr;
    bool in_lru = false;
    std::size_t rounds_served = 0;
  };

  SessionManager(const model::PackageEvaluator* evaluator,
                 const prob::GaussianMixture* prior,
                 storage::SessionStore* store, SessionManagerOptions options);

  // Queues `req` on session `id`, scheduling a drain task if none is in
  // flight. Returns the error a submit must surface immediately (unknown
  // session, ended, full queue, shutdown) or OK once queued.
  Status Enqueue(SessionId id, SessionRequest req);

  // Drains exactly one request of session `id` on a pool worker, then
  // reschedules itself while the queue is non-empty.
  void DrainOne(SessionId id);

  // Ensures `s.rec` is resident, evicting LRU idle sessions while the
  // hydrated set is at capacity. Called from a drain task with s.busy set;
  // takes and releases `lock` (which must be held on entry and is held
  // again on return).
  Status EnsureHydrated(std::unique_lock<std::mutex>& lock, SessionState& s);

  // Checkpoints `victim` (skipped when clean) and drops its recommender.
  // `lock` held on entry and return; `victim.busy` must already be claimed
  // by the caller.
  Status EvictLocked(std::unique_lock<std::mutex>& lock,
                     SessionState& victim);

  // One checkpoint attempt plus up to store_retry_limit backed-off retries.
  // Runs off mu_ (takes store_mu_ per attempt); the caller folds the error
  // and retry counts into the store_errors/store_retries registry counters.
  struct RetryOutcome {
    Status status;
    std::uint64_t errors = 0;
    std::uint64_t retries = 0;
  };
  RetryOutcome CheckpointWithRetry(recsys::PackageRecommender& rec,
                                   SessionId id);

  // Body of the background writeback thread (writeback_interval_ms > 0):
  // each tick checkpoints every idle dirty resident session.
  void WritebackLoop();

  // Intrusive-list maintenance, mu_ held. Append puts `s` at the tail
  // (most recently used); the head is always the next eviction victim.
  void LruAppend(SessionState& s);
  void LruUnlink(SessionState& s);

  // Registry handles backing both the Prometheus export and the public
  // stats() accessor (the counters ARE the stats — there is no second
  // ledger to drift from). Labeled mgr="N" with a process-unique manager
  // id so sequentially constructed managers never share series. The
  // pure-telemetry members (gauges for depth/hydrated, latency histograms)
  // are only touched under `if constexpr (obs::kMetricsEnabled)`; the
  // stats-bearing counters always count, in every build flavor.
  struct ServingMetrics {
    obs::Gauge* sessions = nullptr;
    obs::Gauge* hydrated = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Counter* hydrations = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Counter* store_errors = nullptr;
    obs::Counter* store_retries = nullptr;
    obs::Counter* degraded_hydrations = nullptr;
    obs::Counter* writebacks = nullptr;
    obs::Counter* clean_drops = nullptr;
    obs::Histogram* queue_wait = nullptr;
    obs::Histogram* execute = nullptr;
  };

  const model::PackageEvaluator* evaluator_;
  const prob::GaussianMixture* prior_;
  storage::SessionStore* store_;
  SessionManagerOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;
  // Raw alias of owned_pool_ that stays valid while the pool's destructor
  // drains: in-flight drain tasks resubmit through this pointer after the
  // destructor has already moved the unique_ptr aside (a unique_ptr::reset
  // nulls its pointer *before* running ~ThreadPool, so tasks racing the
  // drain must not read the owner).
  ThreadPool* pool_ = nullptr;

  mutable std::mutex mu_;
  // Signaled whenever a session stops being busy or a hydration slot frees,
  // waking drain tasks waiting to hydrate.
  std::condition_variable slot_cv_;
  std::unordered_map<SessionId, std::unique_ptr<SessionState>> sessions_;
  std::size_t hydrated_count_ = 0;
  // Idle-resident sessions in recency order: head = least recently used.
  // SessionState addresses are stable (unique_ptr-owned, kept for the
  // manager's lifetime), so raw links are safe.
  SessionState* lru_head_ = nullptr;
  SessionState* lru_tail_ = nullptr;
  bool shutting_down_ = false;
  ServingMetrics metrics_;
  // Non-null iff options_.trace_sample_every > 0.
  std::unique_ptr<obs::Tracer> tracer_;

  // Wakes WritebackLoop between ticks (and for shutdown). Joined in the
  // destructor before the pool drains.
  std::condition_variable writeback_cv_;
  std::thread writeback_thread_;

  // SessionStore calls are not thread-safe; every Checkpoint/Restore/Flush
  // across all sessions serializes here. Never held while holding or
  // waiting on mu_/slot_cv_ (always mu_ → release → store_mu_), so the two
  // locks cannot deadlock. Group commit for eviction bursts is the
  // storage-engine follow-up (ROADMAP item 2).
  std::mutex store_mu_;
};

}  // namespace topkpkg::serving

#endif  // TOPKPKG_SERVING_SESSION_MANAGER_H_
