#ifndef TOPKPKG_COMMON_EXECUTION_OPTIONS_H_
#define TOPKPKG_COMMON_EXECUTION_OPTIONS_H_

#include <cstddef>

namespace topkpkg {

class ThreadPool;

// The one execution knob every parallel phase embeds (sampling draws,
// per-sample ranking searches, the recommender's round engine). Before this
// existed each options struct carried its own `num_threads` and the serving
// layer had no way to make N sessions share one pool; now a caller — the
// SessionManager above all — injects a shared pool through a single seam.
struct ExecutionOptions {
  // Degree of parallelism for the embedding phase. 1 = the classic serial
  // path (bit-identical to prior releases); >1 shards work into
  // deterministic blocks, so results are reproducible for a fixed seed but
  // may consume RNG streams differently than the serial path. The phase
  // honors this cap even when borrowing a larger shared pool.
  std::size_t num_threads = 1;

  // Optional caller-owned worker pool. When set, the phase borrows it
  // instead of spawning its own threads — the seam the SessionManager uses
  // to run thousands of sessions over one pool. The pool must outlive every
  // component holding these options. Null = the component spawns (or lazily
  // owns) workers itself when num_threads > 1. Thread count and pool
  // ownership never change any result, only where the work runs.
  ThreadPool* pool = nullptr;

  // Lane width for the batched per-sample ranking searches
  // (TopKPkgSearch::SearchBatch): unique weight vectors are chunked into
  // batches of this many lanes, which is also the unit of work sharded
  // across threads. The kernel caps a single shared walk at 64 lanes and
  // chunks wider batches internally, so values above 64 only coarsen the
  // sharding granularity. Never changes any result — only how many samples
  // share one walk.
  std::size_t batch_width = 64;
};

}  // namespace topkpkg

#endif  // TOPKPKG_COMMON_EXECUTION_OPTIONS_H_
