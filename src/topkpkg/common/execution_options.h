#ifndef TOPKPKG_COMMON_EXECUTION_OPTIONS_H_
#define TOPKPKG_COMMON_EXECUTION_OPTIONS_H_

#include <cstddef>

namespace topkpkg {

class ThreadPool;

// Instruction-set selection for the batched search's lane kernels
// (model/aggregate_kernel's AggBatchKernels suites). Every suite computes
// bit-identical per-lane results — the mode only changes how fast they
// arrive — so tests sweep both values to prove it.
enum class SimdMode {
  // Widest suite the running CPU supports: AVX2 when the binary carries the
  // -mavx2 dispatch object and the CPU has it, else the baseline-ISA
  // vector suite (SSE2 on x86-64, NEON on aarch64), else scalar.
  kAuto = 0,
  // Force the scalar reference kernels (the header-inlined originals the
  // vector suites are verified against).
  kScalar,
};

// The one execution knob every parallel phase embeds (sampling draws,
// per-sample ranking searches, the recommender's round engine). Before this
// existed each options struct carried its own `num_threads` and the serving
// layer had no way to make N sessions share one pool; now a caller — the
// SessionManager above all — injects a shared pool through a single seam.
struct ExecutionOptions {
  // Degree of parallelism for the embedding phase. 1 = the classic serial
  // path (bit-identical to prior releases); >1 shards work into
  // deterministic blocks, so results are reproducible for a fixed seed but
  // may consume RNG streams differently than the serial path. The phase
  // honors this cap even when borrowing a larger shared pool.
  std::size_t num_threads = 1;

  // Optional caller-owned worker pool. When set, the phase borrows it
  // instead of spawning its own threads — the seam the SessionManager uses
  // to run thousands of sessions over one pool. The pool must outlive every
  // component holding these options. Null = the component spawns (or lazily
  // owns) workers itself when num_threads > 1. Thread count and pool
  // ownership never change any result, only where the work runs.
  ThreadPool* pool = nullptr;

  // Lane width for the batched per-sample ranking searches
  // (TopKPkgSearch::SearchBatch): unique weight vectors are chunked into
  // batches of this many lanes, which is also the unit of work sharded
  // across threads. The kernel caps a single shared walk at 64 lanes and
  // chunks wider batches internally, so values above 64 only coarsen the
  // sharding granularity. Never changes any result — only how many samples
  // share one walk.
  std::size_t batch_width = 64;

  // Lane-kernel instruction set for SearchBatch (see SimdMode). Never
  // changes any result — every suite is bit-identical per lane.
  SimdMode simd = SimdMode::kAuto;

  // Live-lane compaction threshold for SearchBatch. As lanes prune and
  // retire, a node's live-lane fraction thins out; once it drops below this
  // fraction of the batch width, the kernel re-packs the live lanes' weight
  // columns into a dense contiguous block and runs the unit-stride SIMD
  // kernels at the compacted width instead of the gather kernels.
  // 0 = never compact (always gather), 1 = compact every partial mask.
  // Values are clamped to [0, 1]. Never changes any result — a compacted
  // lane accumulates in the same ascending-stripe order as a gathered one.
  //
  // Default 0: with the gather kernels vectorized over hardware gathered
  // loads, re-packing has to amortize an O(num_features · live) copy per
  // evaluation and measures strictly slower at every threshold on the
  // shallow-φ search benches. The knob stays for deep-pad workloads where
  // many folds reuse one packing.
  double lane_compact_threshold = 0.0;
};

}  // namespace topkpkg

#endif  // TOPKPKG_COMMON_EXECUTION_OPTIONS_H_
