#ifndef TOPKPKG_COMMON_TIMER_H_
#define TOPKPKG_COMMON_TIMER_H_

#include <chrono>

namespace topkpkg {

// Simple wall-clock stopwatch for coarse experiment timing. For statistically
// careful micro-measurements use google-benchmark; this is for the paper-style
// "overall processing time" tables.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace topkpkg

#endif  // TOPKPKG_COMMON_TIMER_H_
