#include "topkpkg/common/thread_pool.h"

#include <algorithm>
#include <exception>

namespace topkpkg {

namespace {

// The pool (if any) whose WorkerLoop the current thread is executing.
// Worker threads run exactly one loop for their whole lifetime, so a plain
// set-once thread_local suffices.
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::OnWorkerThread() const { return tls_worker_pool == this; }

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !tasks_.empty(); });
      // Drain-then-stop: even after stop_ is set, queued tasks still run so
      // no submitted future is ever abandoned.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures any exception into the future.
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  ParallelFor(n, num_threads(), fn);
}

void ThreadPool::ParallelFor(std::size_t n, std::size_t max_blocks,
                             const std::function<void(std::size_t)>& fn) {
  ParallelForBlocks(n, max_blocks, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

void ThreadPool::ParallelForBlocks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  ParallelForBlocks(n, num_threads(), fn);
}

void ThreadPool::ParallelForBlocks(
    std::size_t n, std::size_t max_blocks,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t num_blocks =
      std::min(n, std::min(std::max<std::size_t>(1, max_blocks),
                           num_threads()));
  if (num_blocks <= 1) {
    fn(0, n);
    return;
  }
  if (OnWorkerThread()) {
    // Nested use from inside a task: waiting on blocks queued behind the
    // other tasks of a busy pool can deadlock, so run the *same* partition
    // inline, sequentially. Per-block state (chunked RNG streams, scratch)
    // sees identical (lo, hi) ranges, so results don't change.
    const std::size_t block = (n + num_blocks - 1) / num_blocks;
    for (std::size_t b = 0; b < num_blocks; ++b) {
      const std::size_t lo = b * block;
      const std::size_t hi = std::min(n, lo + block);
      if (lo >= hi) break;
      fn(lo, hi);
    }
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(num_blocks);
  // Contiguous blocks of size ceil(n / num_blocks), last one possibly short.
  const std::size_t block = (n + num_blocks - 1) / num_blocks;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t lo = b * block;
    const std::size_t hi = std::min(n, lo + block);
    if (lo >= hi) break;  // ceil-div can leave a trailing empty block.
    futures.push_back(Submit([lo, hi, &fn]() { fn(lo, hi); }));
  }
  // Collect every block before rethrowing so no future outlives `fn`, then
  // surface the lowest-index failure deterministically.
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

std::size_t ThreadPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

}  // namespace topkpkg
