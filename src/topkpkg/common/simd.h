#ifndef TOPKPKG_COMMON_SIMD_H_
#define TOPKPKG_COMMON_SIMD_H_

// Portable f64 SIMD lanes for the batched search's aggregate kernels.
//
// Each backend lives in its own namespace (avx2 / sse2 / neon / scalar) and
// exposes the same tiny value type `F64x`: Load / Store / Broadcast / Zero
// plus `+` and `*`. Backends are compile-time gated on the instruction sets
// the *current translation unit* was built for, so a TU compiled with
// `-mavx2` sees `avx2::F64x` while a baseline TU does not — the namespaces
// keep the two from ever colliding at link time. `namespace best` aliases
// the widest backend available to the including TU; note that the alias (and
// anything whose definition depends on it) is therefore per-TU, so only
// TU-local code may use it. Runtime selection between differently-compiled
// kernel TUs happens in model/aggregate_kernel.cc (AggBatchKernelsFor), not
// here.
//
// The abstraction is deliberately minimal: a multiply-add stream with
// separate mul and add (no FMA — the batched search guarantees bit-identity
// with the scalar `Search()` path, and a contracted fused multiply-add
// rounds differently), plus the mask ops the kernels' per-lane Lemma-3
// bookkeeping needs. The mask ops are specified by their scalar-reference
// semantics, NaN cases included:
//
//   CmpLE(a, b)   all-ones where a <= b, else zero; any NaN compares false
//                 (quiet/ordered — x86 _CMP_LE_OQ, NEON vcle).
//   Max(a, b)     per lane (a < b) ? b : a — i.e. the *first* operand wins
//                 on NaN or equality, matching std::max(a, b). On x86 this
//                 is max_pd with the operands swapped (max_pd(b, a) returns
//                 a when either compares unordered); NEON must NOT use
//                 vmaxq (it propagates NaN) and blends through vclt instead.
//   Or/AndNot     bitwise on the f64 lane patterns; AndNot(m, x) = ~m & x.
//   Blend(m,x,y)  per lane m ? x : y. Masks are always all-ones/all-zero
//                 here, so sign-bit blends (blendv_pd) and full bitwise
//                 selects agree.
//   MoveMask(m)   one bit per lane from the lane's sign bit (bit j = lane j).
//   AllOnes()     every bit set (an all-ones NaN pattern, used as a mask).
//   GatherIdx(p, idx)  lane t = p[idx[t]] for kWidth 32-bit indices — the
//                 sparse kernels' strided wcol reads (a real vgatherdpd on
//                 AVX2, lane-composed loads elsewhere). Pure loads, so lane
//                 values are bit-identical to scalar indexing.

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__AVX2__) || defined(__SSE2__) || defined(__x86_64__) || \
    defined(_M_X64)
#include <immintrin.h>
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace topkpkg::simd {

// Always available; also the tail-lane fallback of every vector backend.
namespace scalar {
struct F64x {
  double v;
  static constexpr std::size_t kWidth = 1;
  static constexpr const char* Name() { return "scalar"; }
  static F64x Load(const double* p) { return {*p}; }
  static F64x Broadcast(double x) { return {x}; }
  static F64x Zero() { return {0.0}; }
  void Store(double* p) const { *p = v; }
  friend F64x operator+(F64x a, F64x b) { return {a.v + b.v}; }
  friend F64x operator*(F64x a, F64x b) { return {a.v * b.v}; }
  static std::uint64_t Bits(F64x a) {
    std::uint64_t r;
    std::memcpy(&r, &a.v, sizeof(r));
    return r;
  }
  static F64x FromBits(std::uint64_t b) {
    F64x r;
    std::memcpy(&r.v, &b, sizeof(b));
    return r;
  }
  static F64x Max(F64x a, F64x b) { return {(a.v < b.v) ? b.v : a.v}; }
  static F64x CmpLE(F64x a, F64x b) {
    return FromBits(a.v <= b.v ? ~std::uint64_t{0} : 0);
  }
  static F64x Or(F64x a, F64x b) { return FromBits(Bits(a) | Bits(b)); }
  static F64x AndNot(F64x m, F64x x) { return FromBits(~Bits(m) & Bits(x)); }
  static F64x Blend(F64x m, F64x x, F64x y) {
    return FromBits((Bits(m) & Bits(x)) | (~Bits(m) & Bits(y)));
  }
  static int MoveMask(F64x a) { return static_cast<int>(Bits(a) >> 63); }
  static F64x AllOnes() { return FromBits(~std::uint64_t{0}); }
  static F64x GatherIdx(const double* p, const std::uint32_t* idx) {
    return {p[idx[0]]};
  }
};
}  // namespace scalar

#if defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
namespace sse2 {
struct F64x {
  __m128d v;
  static constexpr std::size_t kWidth = 2;
  static constexpr const char* Name() { return "sse2"; }
  static F64x Load(const double* p) { return {_mm_loadu_pd(p)}; }
  static F64x Broadcast(double x) { return {_mm_set1_pd(x)}; }
  static F64x Zero() { return {_mm_setzero_pd()}; }
  void Store(double* p) const { _mm_storeu_pd(p, v); }
  friend F64x operator+(F64x a, F64x b) { return {_mm_add_pd(a.v, b.v)}; }
  friend F64x operator*(F64x a, F64x b) { return {_mm_mul_pd(a.v, b.v)}; }
  // max_pd(b, a): returns the *second* source (a) on NaN/equal == std::max.
  static F64x Max(F64x a, F64x b) { return {_mm_max_pd(b.v, a.v)}; }
  static F64x CmpLE(F64x a, F64x b) { return {_mm_cmple_pd(a.v, b.v)}; }
  static F64x Or(F64x a, F64x b) { return {_mm_or_pd(a.v, b.v)}; }
  static F64x AndNot(F64x m, F64x x) { return {_mm_andnot_pd(m.v, x.v)}; }
  static F64x Blend(F64x m, F64x x, F64x y) {
    // No blendv before SSE4.1; masks are all-ones/zero so bitwise select.
    return {_mm_or_pd(_mm_and_pd(m.v, x.v), _mm_andnot_pd(m.v, y.v))};
  }
  static int MoveMask(F64x a) { return _mm_movemask_pd(a.v); }
  static F64x AllOnes() {
    return {_mm_castsi128_pd(_mm_set1_epi64x(-1))};
  }
  static F64x GatherIdx(const double* p, const std::uint32_t* idx) {
    return {_mm_set_pd(p[idx[1]], p[idx[0]])};
  }
};
}  // namespace sse2
#endif

#if defined(__AVX2__)
namespace avx2 {
struct F64x {
  __m256d v;
  static constexpr std::size_t kWidth = 4;
  static constexpr const char* Name() { return "avx2"; }
  static F64x Load(const double* p) { return {_mm256_loadu_pd(p)}; }
  static F64x Broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static F64x Zero() { return {_mm256_setzero_pd()}; }
  void Store(double* p) const { _mm256_storeu_pd(p, v); }
  friend F64x operator+(F64x a, F64x b) { return {_mm256_add_pd(a.v, b.v)}; }
  friend F64x operator*(F64x a, F64x b) { return {_mm256_mul_pd(a.v, b.v)}; }
  // max_pd(b, a): returns the *second* source (a) on NaN/equal == std::max.
  static F64x Max(F64x a, F64x b) { return {_mm256_max_pd(b.v, a.v)}; }
  static F64x CmpLE(F64x a, F64x b) {
    return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
  }
  static F64x Or(F64x a, F64x b) { return {_mm256_or_pd(a.v, b.v)}; }
  static F64x AndNot(F64x m, F64x x) { return {_mm256_andnot_pd(m.v, x.v)}; }
  static F64x Blend(F64x m, F64x x, F64x y) {
    return {_mm256_blendv_pd(y.v, x.v, m.v)};
  }
  static int MoveMask(F64x a) { return _mm256_movemask_pd(a.v); }
  static F64x AllOnes() {
    return {_mm256_castsi256_pd(_mm256_set1_epi64x(-1))};
  }
  static F64x GatherIdx(const double* p, const std::uint32_t* idx) {
    const __m128i vi =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
    return {_mm256_i32gather_pd(p, vi, sizeof(double))};
  }
};
}  // namespace avx2
#endif

#if defined(__aarch64__) && defined(__ARM_NEON)
namespace neon {
struct F64x {
  float64x2_t v;
  static constexpr std::size_t kWidth = 2;
  static constexpr const char* Name() { return "neon"; }
  static F64x Load(const double* p) { return {vld1q_f64(p)}; }
  static F64x Broadcast(double x) { return {vdupq_n_f64(x)}; }
  static F64x Zero() { return {vdupq_n_f64(0.0)}; }
  void Store(double* p) const { vst1q_f64(p, v); }
  friend F64x operator+(F64x a, F64x b) { return {vaddq_f64(a.v, b.v)}; }
  friend F64x operator*(F64x a, F64x b) { return {vmulq_f64(a.v, b.v)}; }
  // vmaxq propagates NaN (wrong operand wins); blend through vclt instead.
  static F64x Max(F64x a, F64x b) {
    return {vbslq_f64(vcltq_f64(a.v, b.v), b.v, a.v)};
  }
  static F64x CmpLE(F64x a, F64x b) {
    return {vreinterpretq_f64_u64(vcleq_f64(a.v, b.v))};
  }
  static F64x Or(F64x a, F64x b) {
    return {vreinterpretq_f64_u64(vorrq_u64(vreinterpretq_u64_f64(a.v),
                                            vreinterpretq_u64_f64(b.v)))};
  }
  static F64x AndNot(F64x m, F64x x) {
    return {vreinterpretq_f64_u64(vbicq_u64(vreinterpretq_u64_f64(x.v),
                                            vreinterpretq_u64_f64(m.v)))};
  }
  static F64x Blend(F64x m, F64x x, F64x y) {
    return {vbslq_f64(vreinterpretq_u64_f64(m.v), x.v, y.v)};
  }
  static int MoveMask(F64x a) {
    const uint64x2_t s = vshrq_n_u64(vreinterpretq_u64_f64(a.v), 63);
    return static_cast<int>(vgetq_lane_u64(s, 0) |
                            (vgetq_lane_u64(s, 1) << 1));
  }
  static F64x AllOnes() {
    return {vreinterpretq_f64_u64(vdupq_n_u64(~std::uint64_t{0}))};
  }
  static F64x GatherIdx(const double* p, const std::uint32_t* idx) {
    float64x2_t r = vld1q_dup_f64(p + idx[0]);
    return {vld1q_lane_f64(p + idx[1], r, 1)};
  }
};
}  // namespace neon
#endif

// The widest backend this TU's compile flags allow.
#if defined(__AVX2__)
namespace best = avx2;
#elif defined(__SSE2__) || defined(__x86_64__) || defined(_M_X64)
namespace best = sse2;
#elif defined(__aarch64__) && defined(__ARM_NEON)
namespace best = neon;
#else
namespace best = scalar;
#endif

}  // namespace topkpkg::simd

#endif  // TOPKPKG_COMMON_SIMD_H_
