#ifndef TOPKPKG_COMMON_STATUS_H_
#define TOPKPKG_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace topkpkg {

// Error codes used across the library. Modeled after the RocksDB/Arrow
// convention: library code never throws; fallible operations return a
// `Status` (or a `Result<T>`, below).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
};

// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

// A cheap, value-semantic success-or-error type.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Value-or-error holder. A `Result<T>` is either a `T` or a non-OK `Status`.
// Accessing `value()` on an error result aborts (programming error).
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

// Propagates a non-OK status out of the current function.
#define TOPKPKG_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::topkpkg::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

#define TOPKPKG_CONCAT_IMPL(a, b) a##b
#define TOPKPKG_CONCAT(a, b) TOPKPKG_CONCAT_IMPL(a, b)

// Evaluates `rexpr` (a Result<T>); on error returns its status, otherwise
// move-assigns the value into `lhs`.
#define TOPKPKG_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  TOPKPKG_ASSIGN_OR_RETURN_IMPL(                                  \
      TOPKPKG_CONCAT(_result_tmp_, __LINE__), lhs, rexpr)

#define TOPKPKG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

}  // namespace topkpkg

#endif  // TOPKPKG_COMMON_STATUS_H_
