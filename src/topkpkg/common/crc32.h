#ifndef TOPKPKG_COMMON_CRC32_H_
#define TOPKPKG_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace topkpkg {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum the
// storage layer stamps on every appended record so replay can tell a torn
// tail (clean stop) from payload corruption (hard error). `seed` chains
// incremental computations: Crc32(b, Crc32(a)) == Crc32(a ++ b).
std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace topkpkg

#endif  // TOPKPKG_COMMON_CRC32_H_
