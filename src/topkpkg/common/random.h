#ifndef TOPKPKG_COMMON_RANDOM_H_
#define TOPKPKG_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "topkpkg/common/status.h"

namespace topkpkg {

// Deterministic pseudo-random source. Every stochastic component in the
// library takes an explicit seed so that experiments are reproducible
// run-to-run; `Rng` wraps a Mersenne twister seeded through SplitMix64 to
// decorrelate nearby seeds.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform in [0, 1).
  double Uniform();
  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);
  // Standard normal draw.
  double Gaussian();
  // Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);
  // Pareto(alpha) draw with minimum value 1 (heavy-tailed, used by the PWR
  // dataset generator).
  double Pareto(double alpha);
  // Bernoulli(p).
  bool Bernoulli(double p);

  // A fresh independent child generator; used to hand deterministic,
  // decorrelated streams to sub-components.
  Rng Fork();

  // Engine-state round trip for the durable-session layer: SaveState
  // captures the mt19937_64 state as its standard textual form, LoadState
  // restores it so the next draws continue the stream bit-identically.
  std::string SaveState() const;
  Status LoadState(const std::string& state);

  // Uniform point in the axis-aligned box [lo, hi]^dim.
  std::vector<double> UniformVector(std::size_t dim, double lo, double hi);

  // Uniform point in the ball of radius `radius` around the origin
  // (rejection from the bounding box; fine for the small dimensions the
  // MCMC random walk uses).
  std::vector<double> UniformInBall(std::size_t dim, double radius);

  // Chooses `count` distinct indices from [0, n) (count <= n).
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t count);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

// SplitMix64 step: mixes `state` and returns the next 64-bit output.
uint64_t SplitMix64(uint64_t& state);

}  // namespace topkpkg

#endif  // TOPKPKG_COMMON_RANDOM_H_
