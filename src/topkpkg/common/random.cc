#include "topkpkg/common/random.h"

#include <cmath>
#include <locale>
#include <numeric>
#include <sstream>

namespace topkpkg {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  std::seed_seq seq{SplitMix64(state), SplitMix64(state), SplitMix64(state),
                    SplitMix64(state)};
  engine_.seed(seq);
}

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

uint64_t Rng::UniformInt(uint64_t n) {
  return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
}

double Rng::Gaussian() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Gaussian(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::Pareto(double alpha) {
  // Inverse-CDF: X = (1 - U)^(-1/alpha), X >= 1.
  double u = Uniform();
  return std::pow(1.0 - u, -1.0 / alpha);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

Rng Rng::Fork() { return Rng(engine_()); }

std::string Rng::SaveState() const {
  std::ostringstream out;
  // The classic locale pins the textual form: a global locale with digit
  // grouping would otherwise write "12,345,…" and break cross-host restore.
  out.imbue(std::locale::classic());
  out << engine_;
  return out.str();
}

Status Rng::LoadState(const std::string& state) {
  std::istringstream in(state);
  in.imbue(std::locale::classic());
  std::mt19937_64 restored;
  in >> restored;
  if (in.fail()) {
    return Status::InvalidArgument("Rng::LoadState: not a mt19937_64 state");
  }
  engine_ = restored;
  return Status::OK();
}

std::vector<double> Rng::UniformVector(std::size_t dim, double lo, double hi) {
  std::vector<double> v(dim);
  for (auto& x : v) x = Uniform(lo, hi);
  return v;
}

std::vector<double> Rng::UniformInBall(std::size_t dim, double radius) {
  while (true) {
    std::vector<double> v = UniformVector(dim, -radius, radius);
    double norm2 = 0.0;
    for (double x : v) norm2 += x * x;
    if (norm2 <= radius * radius) return v;
  }
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t count) {
  // Partial Fisher-Yates over an index array; O(n) memory, O(count) swaps.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  for (std::size_t i = 0; i < count && i < n; ++i) {
    std::size_t j = i + static_cast<std::size_t>(UniformInt(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(count < n ? count : n);
  return idx;
}

}  // namespace topkpkg
