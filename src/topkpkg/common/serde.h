#ifndef TOPKPKG_COMMON_SERDE_H_
#define TOPKPKG_COMMON_SERDE_H_

// Byte-level serialization helpers shared by the storage layer's codecs.
// Everything is written little-endian with explicit byte shifts (the files
// are portable across hosts), doubles as their IEEE-754 bit patterns (the
// checkpoint/restore contract is *bit-identical* state, so no text round
// trip is allowed anywhere near a weight or utility).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "topkpkg/common/status.h"
#include "topkpkg/common/vec.h"

namespace topkpkg {

// Little-endian primitives over raw buffers — the one byte-order contract
// ByteWriter/ByteReader and the record log's on-disk framing all share.
inline std::uint32_t ReadU32Le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

inline std::uint64_t ReadU64Le(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

// Appends fixed-width little-endian primitives to a byte string.
class ByteWriter {
 public:
  void PutU8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void PutU32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }

  void PutU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
    }
  }

  void PutF64(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  // Length-prefixed (u32) byte string.
  void PutString(const std::string& s) {
    PutU32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }

  // Length-prefixed (u32) vector of F64.
  void PutVec(const Vec& v) {
    PutU32(static_cast<std::uint32_t>(v.size()));
    for (double x : v) PutF64(x);
  }

  const std::string& bytes() const { return out_; }
  std::string Take() && { return std::move(out_); }

 private:
  std::string out_;
};

// Bounds-checked reader over a byte string; every getter returns OutOfRange
// once the input is exhausted, so truncated or corrupt payloads surface as
// Status instead of UB.
class ByteReader {
 public:
  explicit ByteReader(const std::string& bytes) : data_(bytes) {}

  Result<std::uint8_t> GetU8() {
    if (pos_ + 1 > data_.size()) return Truncated("u8");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  Result<std::uint32_t> GetU32() {
    if (pos_ + 4 > data_.size()) return Truncated("u32");
    std::uint32_t v = ReadU32Le(data_.data() + pos_);
    pos_ += 4;
    return v;
  }

  Result<std::uint64_t> GetU64() {
    if (pos_ + 8 > data_.size()) return Truncated("u64");
    std::uint64_t v = ReadU64Le(data_.data() + pos_);
    pos_ += 8;
    return v;
  }

  Result<double> GetF64() {
    TOPKPKG_ASSIGN_OR_RETURN(std::uint64_t bits, GetU64());
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<std::string> GetString() {
    TOPKPKG_ASSIGN_OR_RETURN(std::uint32_t len, GetU32());
    if (pos_ + len > data_.size()) return Truncated("string body");
    std::string s = data_.substr(pos_, len);
    pos_ += len;
    return s;
  }

  Result<Vec> GetVec() {
    TOPKPKG_ASSIGN_OR_RETURN(std::uint32_t len, GetU32());
    if (pos_ + 8ull * len > data_.size()) return Truncated("vec body");
    Vec v(len);
    for (std::uint32_t i = 0; i < len; ++i) {
      v[i] = GetF64().value();  // Bounds proven above.
    }
    return v;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  Status Truncated(const char* what) const {
    return Status::OutOfRange(std::string("serde: truncated payload while "
                                          "reading ") +
                              what + " at offset " + std::to_string(pos_));
  }

  const std::string& data_;
  std::size_t pos_ = 0;
};

}  // namespace topkpkg

#endif  // TOPKPKG_COMMON_SERDE_H_
