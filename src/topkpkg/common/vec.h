#ifndef TOPKPKG_COMMON_VEC_H_
#define TOPKPKG_COMMON_VEC_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace topkpkg {

// Dense double vector helpers. Feature vectors and weight vectors throughout
// the library are plain std::vector<double>; these free functions keep the
// arithmetic in one place.

using Vec = std::vector<double>;

inline double Dot(const Vec& a, const Vec& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

inline Vec Sub(const Vec& a, const Vec& b) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

inline Vec Add(const Vec& a, const Vec& b) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

inline Vec Scale(const Vec& a, double c) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * c;
  return out;
}

inline double Norm2(const Vec& a) {
  double s = 0.0;
  for (double x : a) s += x * x;
  return std::sqrt(s);
}

inline double Distance(const Vec& a, const Vec& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

// True if every coordinate lies in [lo, hi].
inline bool InBox(const Vec& a, double lo, double hi) {
  for (double x : a) {
    if (x < lo || x > hi) return false;
  }
  return true;
}

}  // namespace topkpkg

#endif  // TOPKPKG_COMMON_VEC_H_
