#ifndef TOPKPKG_COMMON_THREAD_POOL_H_
#define TOPKPKG_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace topkpkg {

// Fixed-size worker pool with a single locked FIFO queue (deliberately
// work-stealing-free: the parallel sampling workloads are pre-sharded into
// near-equal chunks, so a shared queue is contention-light and keeps the
// scheduling order deterministic enough to reason about). Tasks submitted
// after construction run on one of `num_threads` workers; the destructor
// drains every queued task and joins all workers, so a ThreadPool can be
// destroyed at any time without losing submitted work.
class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(std::size_t num_threads);

  // Drains the queue (every submitted task still runs) and joins workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  // Enqueues `fn`; the returned future carries its result, or rethrows any
  // exception `fn` escaped with. A throwing task never takes down a worker.
  template <typename Fn>
  auto Submit(Fn fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  // Runs fn(i) for every i in [0, n), sharded into one contiguous block per
  // worker, and blocks until all blocks finish. If any invocation throws,
  // the remaining blocks still run to completion and the exception of the
  // lowest-index block is rethrown (deterministic error selection).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Same, but with at most `max_blocks` blocks in flight. Callers that
  // borrow a shared pool sized for another phase use this to keep honoring
  // their own num_threads knob (the block partition — and hence any
  // per-block state — depends only on min(n, workers, max_blocks), never on
  // which worker runs a block).
  void ParallelFor(std::size_t n, std::size_t max_blocks,
                   const std::function<void(std::size_t)>& fn);

  // Block-level flavor: runs fn(lo, hi) once per contiguous block of the
  // partition of [0, n) that ParallelFor uses (one block per worker, sized
  // ceil(n / workers)). For kernels that want per-block scratch state
  // instead of a per-index callback. Same blocking and exception contract
  // as ParallelFor.
  void ParallelForBlocks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& fn);

  // Block-level flavor with a block-count cap; see the capped ParallelFor.
  void ParallelForBlocks(
      std::size_t n, std::size_t max_blocks,
      const std::function<void(std::size_t, std::size_t)>& fn);

  // True when the calling thread is one of this pool's workers. A
  // ParallelFor/ParallelForBlocks issued from such a thread runs its blocks
  // inline on the caller — same partition, sequential order — instead of
  // re-submitting them: a worker blocking on futures served by its own
  // (possibly fully busy) pool is a deadlock. This is what lets serving
  // tasks that already run on the shared pool borrow it again for their
  // inner phases; block partitions never depend on where blocks run, so
  // results are identical.
  bool OnWorkerThread() const;

  // std::thread::hardware_concurrency(), clamped to at least 1.
  static std::size_t DefaultThreadCount();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace topkpkg

#endif  // TOPKPKG_COMMON_THREAD_POOL_H_
