#ifndef TOPKPKG_COMMON_TABLE_PRINTER_H_
#define TOPKPKG_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace topkpkg {

// Fixed-width ASCII table writer used by the benchmark harnesses to print
// paper-style result tables (one row per parameter setting, one column per
// algorithm/series).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Fmt(double v, int precision = 4);

  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace topkpkg

#endif  // TOPKPKG_COMMON_TABLE_PRINTER_H_
