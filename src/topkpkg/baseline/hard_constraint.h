#ifndef TOPKPKG_BASELINE_HARD_CONSTRAINT_H_
#define TOPKPKG_BASELINE_HARD_CONSTRAINT_H_

#include <cstddef>

#include "topkpkg/common/status.h"
#include "topkpkg/model/package.h"
#include "topkpkg/topk/topk_pkg.h"

namespace topkpkg::baseline {

// The hard-constraint baseline the paper contrasts with ([27], "breaking out
// of the box"): fix a budget on one aggregate feature and maximize another.
// E.g. "total cost at most $500, maximize average rating". The paper's
// critique — budgets set too low give sub-optimal packages, budgets set too
// high give huge candidate sets — is what bench_ablation_skyline
// demonstrates.
struct HardConstraintQuery {
  std::size_t objective_feature = 0;  // Maximize this feature's aggregate.
  std::size_t budget_feature = 1;     // Subject to a raw-value sum budget...
  double budget = 1.0;                // ... of at most this.
};

// Exact solver by exhaustive enumeration (small instances only; fails with
// ResourceExhausted beyond `max_packages`). Ties broken like TopKPkgSearch.
Result<topk::ScoredPackage> SolveHardConstraintExact(
    const model::PackageEvaluator& evaluator, const HardConstraintQuery& query,
    std::size_t max_packages = 2'000'000);

// Greedy heuristic: adds items by best marginal objective gain per unit of
// budget while the budget and φ allow. Scales to large tables.
Result<topk::ScoredPackage> SolveHardConstraintGreedy(
    const model::PackageEvaluator& evaluator,
    const HardConstraintQuery& query);

}  // namespace topkpkg::baseline

#endif  // TOPKPKG_BASELINE_HARD_CONSTRAINT_H_
