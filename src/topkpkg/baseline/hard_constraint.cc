#include "topkpkg/baseline/hard_constraint.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "topkpkg/sampling/constraint_checker.h"
#include "topkpkg/topk/naive_enumerator.h"

namespace topkpkg::baseline {

namespace {

using model::ItemId;
using model::Package;
using sampling::AggregateThreshold;
using sampling::PackageConstraintChecker;

// The budget as an aggregate-threshold check: raw sum of the budget feature
// at most `budget`. Delegates the fold to model/aggregate_kernel.h (the same
// null-skipping sum the evaluator scores packages with) instead of keeping a
// private copy of the arithmetic.
PackageConstraintChecker BudgetCheck(const model::ItemTable& table,
                                     const HardConstraintQuery& query) {
  AggregateThreshold budget;
  budget.feature = query.budget_feature;
  budget.op = model::AggregateOp::kSum;
  budget.upper = query.budget;
  return PackageConstraintChecker(&table, {budget});
}

// Normalized aggregate value of the objective feature.
double Objective(const model::PackageEvaluator& ev, const Package& p,
                 std::size_t feature) {
  return ev.FeatureVector(p)[feature];
}

}  // namespace

Result<topk::ScoredPackage> SolveHardConstraintExact(
    const model::PackageEvaluator& evaluator, const HardConstraintQuery& query,
    std::size_t max_packages) {
  const model::ItemTable& table = evaluator.table();
  const std::size_t n = table.num_items();
  const std::size_t m = table.num_features();
  if (query.objective_feature >= m || query.budget_feature >= m) {
    return Status::InvalidArgument("SolveHardConstraintExact: bad feature");
  }
  if (topk::NaivePackageEnumerator::PackageSpaceSize(n, evaluator.phi()) >
      max_packages) {
    return Status::ResourceExhausted(
        "SolveHardConstraintExact: package space too large");
  }
  const PackageConstraintChecker budget_check = BudgetCheck(table, query);
  topk::ScoredPackage best;
  best.utility = -std::numeric_limits<double>::infinity();
  // The shared lexicographic walk (model/package.h) — the same combination
  // order as the oracle enumerator — filtering on the budget.
  model::ForEachPackageLexicographic(
      n, evaluator.phi(), [&](const std::vector<ItemId>& current) {
        Package p = Package::Of(current);
        if (budget_check.IsValid(p)) {
          double obj = Objective(evaluator, p, query.objective_feature);
          topk::ScoredPackage cand{p, obj};
          if (best.package.empty() || topk::BetterThan(cand, best)) {
            best = std::move(cand);
          }
        }
        return true;
      });
  if (best.package.empty()) {
    return Status::NotFound(
        "SolveHardConstraintExact: no package satisfies the budget");
  }
  return best;
}

Result<topk::ScoredPackage> SolveHardConstraintGreedy(
    const model::PackageEvaluator& evaluator,
    const HardConstraintQuery& query) {
  const model::ItemTable& table = evaluator.table();
  const std::size_t n = table.num_items();
  const std::size_t m = table.num_features();
  if (query.objective_feature >= m || query.budget_feature >= m) {
    return Status::InvalidArgument("SolveHardConstraintGreedy: bad feature");
  }
  // Candidate order: objective value per unit budget, descending. Items with
  // zero/null budget cost come first (free wins).
  struct Cand {
    ItemId id;
    double ratio;
  };
  std::vector<Cand> cands;
  cands.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ItemId id = static_cast<ItemId>(i);
    double obj = table.is_null(id, query.objective_feature)
                     ? 0.0
                     : table.value(id, query.objective_feature);
    double cost = table.is_null(id, query.budget_feature)
                      ? 0.0
                      : table.value(id, query.budget_feature);
    double ratio = cost > 0.0 ? obj / cost
                              : std::numeric_limits<double>::infinity();
    cands.push_back(Cand{id, ratio});
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.ratio != b.ratio) return a.ratio > b.ratio;
    return a.id < b.id;
  });

  const PackageConstraintChecker budget_check = BudgetCheck(table, query);
  std::vector<ItemId> chosen;
  double best_obj = -std::numeric_limits<double>::infinity();
  Package best_pkg;
  for (const Cand& c : cands) {
    if (chosen.size() >= evaluator.phi()) break;
    chosen.push_back(c.id);
    Package p = Package::Of(chosen);
    if (!budget_check.IsValid(p)) {
      chosen.pop_back();
      continue;
    }
    double obj = Objective(evaluator, p, query.objective_feature);
    if (obj > best_obj) {
      best_obj = obj;
      best_pkg = p;
    } else {
      // For non-monotone aggregates (avg/min) the last addition may hurt;
      // keep the best prefix but continue looking for cheap improvements.
    }
  }
  if (best_pkg.empty()) {
    return Status::NotFound(
        "SolveHardConstraintGreedy: no package satisfies the budget");
  }
  return topk::ScoredPackage{best_pkg, best_obj};
}

}  // namespace topkpkg::baseline
