#include "topkpkg/baseline/hard_constraint.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "topkpkg/topk/naive_enumerator.h"

namespace topkpkg::baseline {

namespace {

using model::AggregateState;
using model::IsNull;
using model::ItemId;
using model::Package;

double RawSum(const model::ItemTable& table, const Package& p,
              std::size_t feature) {
  double sum = 0.0;
  for (ItemId id : p.items()) {
    if (!table.is_null(id, feature)) sum += table.value(id, feature);
  }
  return sum;
}

// Normalized aggregate value of the objective feature.
double Objective(const model::PackageEvaluator& ev, const Package& p,
                 std::size_t feature) {
  return ev.FeatureVector(p)[feature];
}

}  // namespace

Result<topk::ScoredPackage> SolveHardConstraintExact(
    const model::PackageEvaluator& evaluator, const HardConstraintQuery& query,
    std::size_t max_packages) {
  const model::ItemTable& table = evaluator.table();
  const std::size_t n = table.num_items();
  const std::size_t m = table.num_features();
  if (query.objective_feature >= m || query.budget_feature >= m) {
    return Status::InvalidArgument("SolveHardConstraintExact: bad feature");
  }
  if (topk::NaivePackageEnumerator::PackageSpaceSize(n, evaluator.phi()) >
      max_packages) {
    return Status::ResourceExhausted(
        "SolveHardConstraintExact: package space too large");
  }
  topk::ScoredPackage best;
  best.utility = -std::numeric_limits<double>::infinity();
  // Enumerate subsets of size 1..phi via the same combination walk as the
  // oracle enumerator, filtering on the budget.
  std::vector<ItemId> current;
  struct Frame {
    std::size_t next;
  };
  std::vector<Frame> stack{{0}};
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= n || current.size() >= evaluator.phi()) {
      stack.pop_back();
      if (!current.empty()) current.pop_back();
      continue;
    }
    const ItemId t = static_cast<ItemId>(frame.next++);
    current.push_back(t);
    Package p = Package::Of(current);
    if (RawSum(table, p, query.budget_feature) <= query.budget) {
      double obj = Objective(evaluator, p, query.objective_feature);
      topk::ScoredPackage cand{p, obj};
      if (best.package.empty() || topk::BetterThan(cand, best)) {
        best = std::move(cand);
      }
    }
    stack.push_back(Frame{static_cast<std::size_t>(t) + 1});
  }
  if (best.package.empty()) {
    return Status::NotFound(
        "SolveHardConstraintExact: no package satisfies the budget");
  }
  return best;
}

Result<topk::ScoredPackage> SolveHardConstraintGreedy(
    const model::PackageEvaluator& evaluator,
    const HardConstraintQuery& query) {
  const model::ItemTable& table = evaluator.table();
  const std::size_t n = table.num_items();
  const std::size_t m = table.num_features();
  if (query.objective_feature >= m || query.budget_feature >= m) {
    return Status::InvalidArgument("SolveHardConstraintGreedy: bad feature");
  }
  // Candidate order: objective value per unit budget, descending. Items with
  // zero/null budget cost come first (free wins).
  struct Cand {
    ItemId id;
    double ratio;
  };
  std::vector<Cand> cands;
  cands.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ItemId id = static_cast<ItemId>(i);
    double obj = table.is_null(id, query.objective_feature)
                     ? 0.0
                     : table.value(id, query.objective_feature);
    double cost = table.is_null(id, query.budget_feature)
                      ? 0.0
                      : table.value(id, query.budget_feature);
    double ratio = cost > 0.0 ? obj / cost
                              : std::numeric_limits<double>::infinity();
    cands.push_back(Cand{id, ratio});
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.ratio != b.ratio) return a.ratio > b.ratio;
    return a.id < b.id;
  });

  std::vector<ItemId> chosen;
  double spent = 0.0;
  double best_obj = -std::numeric_limits<double>::infinity();
  Package best_pkg;
  for (const Cand& c : cands) {
    if (chosen.size() >= evaluator.phi()) break;
    double cost = table.is_null(c.id, query.budget_feature)
                      ? 0.0
                      : table.value(c.id, query.budget_feature);
    if (spent + cost > query.budget) continue;
    chosen.push_back(c.id);
    spent += cost;
    Package p = Package::Of(chosen);
    double obj = Objective(evaluator, p, query.objective_feature);
    if (obj > best_obj) {
      best_obj = obj;
      best_pkg = p;
    } else {
      // For non-monotone aggregates (avg/min) the last addition may hurt;
      // keep the best prefix but continue looking for cheap improvements.
    }
  }
  if (best_pkg.empty()) {
    return Status::NotFound(
        "SolveHardConstraintGreedy: no package satisfies the budget");
  }
  return topk::ScoredPackage{best_pkg, best_obj};
}

}  // namespace topkpkg::baseline
