#include "topkpkg/baseline/skyline.h"

#include <algorithm>
#include <utility>

namespace topkpkg::baseline {

namespace {

using model::ItemId;
using model::Package;

}  // namespace

bool Dominates(const Vec& a, const Vec& b, const std::vector<bool>& maximize) {
  bool strictly_better = false;
  for (std::size_t f = 0; f < a.size(); ++f) {
    double av = a[f];
    double bv = b[f];
    if (!maximize[f]) {
      av = -av;
      bv = -bv;
    }
    if (av < bv) return false;
    if (av > bv) strictly_better = true;
  }
  return strictly_better;
}

std::vector<ItemId> SkylineItems(const model::ItemTable& table,
                                 const std::vector<bool>& maximize) {
  const std::size_t n = table.num_items();
  std::vector<Vec> vecs(n);
  for (std::size_t i = 0; i < n; ++i) {
    vecs[i] = table.Row(static_cast<ItemId>(i));
    for (double& v : vecs[i]) {
      if (model::IsNull(v)) v = 0.0;
    }
  }
  // Block-nested-loop with an incrementally maintained window.
  std::vector<ItemId> window;
  for (std::size_t i = 0; i < n; ++i) {
    bool dominated = false;
    for (ItemId w : window) {
      if (Dominates(vecs[w], vecs[i], maximize)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    window.erase(std::remove_if(window.begin(), window.end(),
                                [&](ItemId w) {
                                  return Dominates(vecs[i], vecs[w], maximize);
                                }),
                 window.end());
    window.push_back(static_cast<ItemId>(i));
  }
  std::sort(window.begin(), window.end());
  return window;
}

Result<std::vector<Package>> SkylinePackages(
    const model::PackageEvaluator& evaluator, std::size_t package_size,
    const std::vector<bool>& maximize, std::size_t max_packages) {
  const std::size_t n = evaluator.table().num_items();
  if (package_size == 0 || package_size > n) {
    return Status::InvalidArgument("SkylinePackages: bad package size");
  }
  if (maximize.size() != evaluator.profile().num_features()) {
    return Status::InvalidArgument(
        "SkylinePackages: direction vector dimension mismatch");
  }
  // C(n, package_size) candidates; refuse blowups.
  double count = 1.0;
  for (std::size_t i = 1; i <= package_size; ++i) {
    count *= static_cast<double>(n - i + 1) / static_cast<double>(i);
    if (count > static_cast<double>(max_packages)) {
      return Status::ResourceExhausted(
          "SkylinePackages: candidate space too large");
    }
  }

  // Enumerate fixed-size combinations and keep the Pareto window.
  std::vector<std::pair<Package, Vec>> window;
  std::vector<ItemId> combo(package_size);
  for (std::size_t i = 0; i < package_size; ++i) {
    combo[i] = static_cast<ItemId>(i);
  }
  while (true) {
    Package p = Package::Of(combo);
    Vec v = evaluator.FeatureVector(p);
    bool dominated = false;
    for (const auto& [wp, wv] : window) {
      if (Dominates(wv, v, maximize)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      window.erase(std::remove_if(window.begin(), window.end(),
                                  [&](const std::pair<Package, Vec>& e) {
                                    return Dominates(v, e.second, maximize);
                                  }),
                   window.end());
      window.emplace_back(std::move(p), std::move(v));
    }
    // Next combination (lexicographic).
    std::size_t pos = package_size;
    while (pos > 0) {
      --pos;
      if (combo[pos] + (package_size - pos) <= n - 1) {
        ++combo[pos];
        for (std::size_t j = pos + 1; j < package_size; ++j) {
          combo[j] = combo[j - 1] + 1;
        }
        break;
      }
      if (pos == 0) {
        std::vector<Package> out;
        out.reserve(window.size());
        for (auto& [wp, wv] : window) out.push_back(std::move(wp));
        std::sort(out.begin(), out.end());
        return out;
      }
    }
    if (package_size == 0) break;  // Unreachable; silences no-progress loops.
  }
  return std::vector<Package>{};
}

}  // namespace topkpkg::baseline
