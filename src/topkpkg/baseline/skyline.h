#ifndef TOPKPKG_BASELINE_SKYLINE_H_
#define TOPKPKG_BASELINE_SKYLINE_H_

#include <cstddef>
#include <vector>

#include "topkpkg/common/status.h"
#include "topkpkg/common/vec.h"
#include "topkpkg/model/package.h"

namespace topkpkg::baseline {

// Skyline baselines — the alternative package semantics of [20, 29] that the
// paper argues against: the set of Pareto-optimal packages is exact but
// typically enormous, which is the motivation for utility-based top-k
// ranking. `maximize[f]` selects the preferred direction per feature
// (false = smaller is better, e.g. cost).

// Item-level skyline (Börzsönyi et al. [4] block-nested-loop): items not
// dominated by any other item. Nulls compare as 0.
std::vector<model::ItemId> SkylineItems(const model::ItemTable& table,
                                        const std::vector<bool>& maximize);

// Fixed-cardinality package skyline (the [20, 29] setting): all packages of
// exactly `package_size` items whose aggregate feature vectors are
// Pareto-optimal. Exponential; fails with ResourceExhausted beyond
// `max_packages` candidate packages.
Result<std::vector<model::Package>> SkylinePackages(
    const model::PackageEvaluator& evaluator, std::size_t package_size,
    const std::vector<bool>& maximize, std::size_t max_packages = 2'000'000);

// True iff vector `a` dominates `b`: no worse on every feature and strictly
// better on at least one, with per-feature directions.
bool Dominates(const Vec& a, const Vec& b, const std::vector<bool>& maximize);

}  // namespace topkpkg::baseline

#endif  // TOPKPKG_BASELINE_SKYLINE_H_
