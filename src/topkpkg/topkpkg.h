#ifndef TOPKPKG_TOPKPKG_H_
#define TOPKPKG_TOPKPKG_H_

// The public facade of topkpkg. Applications include this one header and
// program against what it re-exports; everything under src/topkpkg/ that it
// does NOT pull in (storage/codec.h, sampling internals like
// parallel_sampler.h, topk/skyline.h, ranking/incremental_ranker.h, ...) is
// an internal header: its layout and API may change between versions
// without notice, and the examples deliberately compile against this facade
// alone to keep it honest.
//
// The supported surface, top-down:
//
//   serving/  SessionManager — multi-tenant serving: N durable sessions
//             multiplexed over one thread pool and one session store.
//   recsys/   PackageRecommender — a single elicitation session (the
//             paper's interactive loop), plus SimulatedUser click models.
//   storage/  SessionStore — the append-only durable store sessions
//             checkpoint into.
//   topk/     TopKPkgSearch — the Top-k-Pkg search kernel (Sec. 4).
//   ranking/  PackageRanker + RankingOptions — expected-utility ranking
//             over posterior samples (Sec. 3.4).
//   sampling/ RejectionSampler / McmcSampler / ImportanceSampler — posterior
//             sampling under preference constraints (Sec. 3.2).
//   baseline/ HardConstraintBaseline — the hard-constraint strawman the
//             paper compares against.
//   pref/     Preference / PreferenceSet — the elicited constraint DAG
//             (Sec. 3.3).
//   prob/     Gaussian / GaussianMixture priors.
//   model/    ItemTable / Profile / PackageEvaluator / Package.
//   data/     Synthetic dataset generators (UNI/PWR/COR/ANT, NBA-like).
//   obs/      MetricsRegistry (Prometheus-text export) + request tracing.
//   common/   Status / Result<T>, Rng, ThreadPool, ExecutionOptions.

#include "topkpkg/baseline/hard_constraint.h"
#include "topkpkg/common/execution_options.h"
#include "topkpkg/common/random.h"
#include "topkpkg/common/status.h"
#include "topkpkg/common/thread_pool.h"
#include "topkpkg/data/generators.h"
#include "topkpkg/data/nba_like.h"
#include "topkpkg/model/package.h"
#include "topkpkg/obs/metrics.h"
#include "topkpkg/obs/trace.h"
#include "topkpkg/pref/preference.h"
#include "topkpkg/pref/preference_set.h"
#include "topkpkg/prob/gaussian.h"
#include "topkpkg/prob/gaussian_mixture.h"
#include "topkpkg/ranking/rankers.h"
#include "topkpkg/recsys/recommender.h"
#include "topkpkg/recsys/simulated_user.h"
#include "topkpkg/sampling/importance_sampler.h"
#include "topkpkg/sampling/mcmc_sampler.h"
#include "topkpkg/sampling/rejection_sampler.h"
#include "topkpkg/serving/session_manager.h"
#include "topkpkg/storage/session_store.h"
#include "topkpkg/topk/topk_pkg.h"

#endif  // TOPKPKG_TOPKPKG_H_
