#ifndef TOPKPKG_TOPK_ITEM_TOPK_H_
#define TOPKPKG_TOPK_ITEM_TOPK_H_

#include <cstddef>
#include <vector>

#include "topkpkg/common/status.h"
#include "topkpkg/common/vec.h"
#include "topkpkg/model/item_table.h"

namespace topkpkg::topk {

struct ScoredItem {
  model::ItemId item = 0;
  double utility = 0.0;
};

struct ItemTopKStats {
  std::size_t sorted_accesses = 0;
};

// Classic top-k *item* query processing (Ilyas et al.'s threshold algorithm,
// the [13] substrate the paper builds on): items are scored by
// U(t) = Σ_f w_f · t_f / max_f (nulls contribute 0), per-feature sorted lists
// are walked round-robin, and the scan stops once the threshold τ (the best
// possible score of an unseen item) cannot beat the current k-th item.
class ItemTopK {
 public:
  // Pre-sorts the per-feature lists; `table` must outlive the object.
  explicit ItemTopK(const model::ItemTable* table);

  // Top-k items by the threshold algorithm. Deterministic: ties broken by
  // smaller item id.
  Result<std::vector<ScoredItem>> Query(const Vec& weights, std::size_t k,
                                        ItemTopKStats* stats = nullptr) const;

  // Reference implementation: full scan. Used by tests to validate Query.
  std::vector<ScoredItem> FullScan(const Vec& weights, std::size_t k) const;

 private:
  double ItemScore(model::ItemId id, const Vec& weights) const;

  const model::ItemTable* table_;
  Vec max_value_;
  // ascending_[f]: item ids ordered by ascending normalized value of f.
  std::vector<std::vector<model::ItemId>> ascending_;
};

}  // namespace topkpkg::topk

#endif  // TOPKPKG_TOPK_ITEM_TOPK_H_
