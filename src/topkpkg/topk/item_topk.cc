#include "topkpkg/topk/item_topk.h"

#include <algorithm>
#include <limits>

namespace topkpkg::topk {

namespace {

using model::IsNull;
using model::ItemId;

bool BetterItem(const ScoredItem& a, const ScoredItem& b) {
  if (a.utility != b.utility) return a.utility > b.utility;
  return a.item < b.item;
}

}  // namespace

ItemTopK::ItemTopK(const model::ItemTable* table) : table_(table) {
  const std::size_t m = table->num_features();
  const std::size_t n = table->num_items();
  max_value_.resize(m);
  ascending_.resize(m);
  for (std::size_t f = 0; f < m; ++f) {
    double mv = table->MaxFeatureValue(f);
    max_value_[f] = mv > 0.0 ? mv : 1.0;
    std::vector<ItemId> ids(n);
    for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<ItemId>(i);
    std::sort(ids.begin(), ids.end(), [&](ItemId a, ItemId b) {
      double va = table->is_null(a, f) ? 0.0 : table->value(a, f);
      double vb = table->is_null(b, f) ? 0.0 : table->value(b, f);
      if (va != vb) return va < vb;
      return a < b;
    });
    ascending_[f] = std::move(ids);
  }
}

double ItemTopK::ItemScore(ItemId id, const Vec& weights) const {
  double score = 0.0;
  for (std::size_t f = 0; f < weights.size(); ++f) {
    if (weights[f] == 0.0 || table_->is_null(id, f)) continue;
    score += weights[f] * table_->value(id, f) / max_value_[f];
  }
  return score;
}

std::vector<ScoredItem> ItemTopK::FullScan(const Vec& weights,
                                           std::size_t k) const {
  std::vector<ScoredItem> all;
  all.reserve(table_->num_items());
  for (std::size_t i = 0; i < table_->num_items(); ++i) {
    ItemId id = static_cast<ItemId>(i);
    all.push_back(ScoredItem{id, ItemScore(id, weights)});
  }
  std::sort(all.begin(), all.end(), BetterItem);
  if (all.size() > k) all.resize(k);
  return all;
}

Result<std::vector<ScoredItem>> ItemTopK::Query(const Vec& weights,
                                                std::size_t k,
                                                ItemTopKStats* stats) const {
  const std::size_t m = table_->num_features();
  const std::size_t n = table_->num_items();
  if (weights.size() != m) {
    return Status::InvalidArgument("ItemTopK: weight dimension mismatch");
  }
  if (k == 0) return Status::InvalidArgument("ItemTopK: k must be >= 1");

  std::vector<std::size_t> lists;
  for (std::size_t f = 0; f < m; ++f) {
    if (weights[f] != 0.0) lists.push_back(f);
  }
  std::vector<ScoredItem> best;
  auto add = [&](ScoredItem si) {
    auto pos = std::upper_bound(best.begin(), best.end(), si, BetterItem);
    best.insert(pos, si);
    if (best.size() > k) best.pop_back();
  };
  if (lists.empty()) {
    for (std::size_t i = 0; i < std::min(k, n); ++i) {
      best.push_back(ScoredItem{static_cast<ItemId>(i), 0.0});
    }
    return best;
  }

  std::vector<std::size_t> cursor(lists.size(), 0);
  std::vector<double> frontier(lists.size());
  std::vector<bool> seen(n, false);
  // Frontier initialised to each list's best (first-in-access-order) value.
  auto access_value = [&](std::size_t li, std::size_t pos) {
    const std::size_t f = lists[li];
    const auto& asc = ascending_[f];
    ItemId id = weights[f] > 0.0 ? asc[n - 1 - pos] : asc[pos];
    double v = table_->is_null(id, f) ? 0.0 : table_->value(id, f);
    return std::pair<ItemId, double>(id, v / max_value_[f]);
  };
  for (std::size_t li = 0; li < lists.size(); ++li) {
    frontier[li] = access_value(li, 0).second;
  }

  std::size_t accessed = 0;
  while (accessed < n) {
    for (std::size_t li = 0; li < lists.size(); ++li) {
      if (cursor[li] >= n) continue;
      auto [id, norm_v] = access_value(li, cursor[li]);
      frontier[li] = norm_v;
      ++cursor[li];
      if (stats != nullptr) ++stats->sorted_accesses;
      if (!seen[id]) {
        seen[id] = true;
        ++accessed;
        add(ScoredItem{id, ItemScore(id, weights)});
      }
      // Threshold: best possible score of an unseen item.
      double tau = 0.0;
      for (std::size_t lj = 0; lj < lists.size(); ++lj) {
        tau += weights[lists[lj]] * frontier[lj];
      }
      if (best.size() >= std::min(k, n) && !best.empty() &&
          tau <= best.back().utility + 1e-12) {
        return best;
      }
    }
  }
  return best;
}

}  // namespace topkpkg::topk
