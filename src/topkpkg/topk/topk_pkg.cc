#include "topkpkg/topk/topk_pkg.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "topkpkg/model/aggregate_kernel.h"

namespace topkpkg::topk {

namespace {

constexpr double kEps = 1e-12;
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

using model::AggregateOp;
using model::AggregatePlan;
using model::AggregateState;
using model::IsNull;
using model::ItemId;
using model::Package;
using model::PackageEvaluator;

// Keeps the k best ScoredPackages seen so far as a bounded max-heap whose
// root is the current k-th best (the next element to be displaced), so Add
// is O(log k) and the large-k "serve whole result pages" regime doesn't pay
// the O(k) insertion-sorted-vector memmove per candidate. Ordering is
// extracted once at Take(). CanEnter / KthUtility / the surviving set are
// identical to the old sorted-vector collector — both derive from the same
// strict BetterThan order — so search results, tie-breaks and truncation
// points are unchanged.
class TopKCollector {
 public:
  explicit TopKCollector(std::size_t k) : k_(k) {}

  // False when a candidate with this utility cannot possibly enter the
  // current top-k, so callers can skip materializing (and filtering) it
  // entirely. Equal-to-k-th utilities must still be tried: the ascending
  // item-id tie-break may place them above the current k-th.
  bool CanEnter(double utility) const {
    return best_.size() < k_ || utility >= best_.front().utility;
  }

  void Add(ScoredPackage sp) {
    // Heap comparator: BetterThan is a strict "less" whose maximum — the
    // heap root — is therefore the *worst* retained package.
    if (best_.size() < k_) {
      best_.push_back(std::move(sp));
      std::push_heap(best_.begin(), best_.end(), BetterThan);
      return;
    }
    if (!BetterThan(sp, best_.front())) return;
    std::pop_heap(best_.begin(), best_.end(), BetterThan);
    best_.back() = std::move(sp);
    std::push_heap(best_.begin(), best_.end(), BetterThan);
  }

  // η_lo: utility of the current k-th best (−∞ while fewer than k known).
  double KthUtility() const {
    return best_.size() < k_ ? kNegInf : best_.front().utility;
  }

  // Ordered extraction, best first.
  std::vector<ScoredPackage> Take() && {
    std::sort_heap(best_.begin(), best_.end(), BetterThan);
    return std::move(best_);
  }

 private:
  std::size_t k_;
  std::vector<ScoredPackage> best_;
};

// Effective per-list value of an item on feature f: the value that both
// drives the sorted-list access order and enters the boundary item τ. Nulls
// behave like 0 for sum/avg/max (they contribute nothing) and like the
// feature maximum for min (they leave the minimum untouched, which is the
// best possible behaviour when a large minimum is desired and the worst when
// a small one is).
double EffectiveValue(double v, AggregateOp op, double max_value) {
  if (!IsNull(v)) return v;
  return op == AggregateOp::kMin ? max_value : 0.0;
}

}  // namespace

// The per-call search kernel over a SearchScratch. Aggregate states are
// packed [count,sum,min,max] blocks over the active features only, stored in
// the scratch's flat slab; every arithmetic step (fold, utility, τ pad)
// delegates to model/aggregate_kernel.h — the same implementation behind
// AggregateState and the reference UpperExp — so the kernel's comparisons,
// tie-breaks and truncation points cannot drift from the model layer's.
// Bounds additionally honor the null-aware relaxation (`relax_any`): on
// nullable min-aggregated features with negative weight, a package with no
// non-null contribution is worth exactly 0 there, which no τ padding
// represents, so such features are floored at 0 in bound evaluations.
class SearchKernel {
 public:
  SearchKernel(SearchScratch& s, std::size_t phi, bool set_monotone,
               bool relax_any)
      : s_(s),
        na_(s.active_.size()),
        stride_(model::kAggStripeWidth * s.active_.size()),
        phi_(phi),
        set_monotone_(set_monotone),
        relax_any_(relax_any) {}

  double* Block(std::int32_t idx) { return s_.agg_.data() + idx * stride_; }

  // Acquires an arena slot (recycled or new). May grow the slab, so callers
  // must (re)fetch Block() pointers after acquiring.
  std::int32_t Acquire() {
    if (!s_.free_.empty()) {
      std::int32_t idx = s_.free_.back();
      s_.free_.pop_back();
      return idx;
    }
    std::int32_t idx = static_cast<std::int32_t>(s_.meta_.size());
    s_.meta_.emplace_back();
    s_.agg_.resize(s_.agg_.size() + stride_);
    return idx;
  }

  // Returns a slot that was acquired but never linked into the tree.
  void DiscardUnlinked(std::int32_t idx) { s_.free_.push_back(idx); }

  // Drops a node from Q+. Slots are recycled up the parent chain as long as
  // no live child (and no queue membership) still references them.
  void ReleaseFromQueue(std::int32_t idx) {
    while (idx >= 0) {
      SearchScratch::NodeMeta& nm = s_.meta_[idx];
      if (--nm.refs > 0) break;
      s_.free_.push_back(idx);
      idx = nm.parent;
    }
  }

  void InitBlock(double* blk) const { model::AggInitStripes(blk, na_); }

  // AggregateState::Add over the active columns of a raw item row.
  void FoldRow(double* blk, const double* row) const {
    model::AggFoldRowActive(blk, row, s_.active_.data(), na_);
  }

  // The exact-utility plan over the active features; bounds swap in the
  // null-aware resolved weights via BoundPlan().
  AggregatePlan Plan() const {
    return AggregatePlan{s_.op_.data(), s_.weight_.data(), s_.scale_.data(),
                         na_};
  }

  // The plan a bound over `blk` must be evaluated under: exact weights when
  // no feature needs the null relaxation, otherwise the resolved copy with
  // count-0 relaxed features zeroed (their bound contribution is the count-0
  // value, exactly 0). `blk == nullptr` = the empty package.
  AggregatePlan BoundPlan(const double* blk) const {
    AggregatePlan plan = Plan();
    if (relax_any_) {
      model::AggResolveBoundWeights(plan, blk, s_.relax_.data(),
                                    s_.bound_weight_.data());
      plan.weights = s_.bound_weight_.data();
    }
    return plan;
  }

  // AggregateState::Utility over an arena block — the exact utility of a
  // real package, never relaxed.
  double UtilityOf(const double* blk, std::size_t size) const {
    return model::AggUtility(Plan(), blk, size);
  }

  // Utility after one more τ pad, without committing it. The named twin of
  // AggPeekTauUtility over this scratch's τ; the empty-package bound's
  // greedy stop runs the same peek inside AggEmptyTauBound (under the
  // bound-resolved plan).
  double PeekPadUtility(const double* blk, std::size_t padded_size) const {
    return model::AggPeekTauUtility(Plan(), blk, s_.tau_.data(), padded_size);
  }

  // Algorithm 3 over an arena block: pads `slots` copies of τ into the
  // scratch pad accumulators and never touches an AggregateState.
  // Value-identical to UpperExp() over the equivalent state.
  double PaddedBound(const double* blk, std::size_t size,
                     std::size_t slots) const {
    return model::AggTauPaddedBound(BoundPlan(blk), blk, size, s_.tau_.data(),
                                    slots, set_monotone_, s_.pad_.data());
  }

  // Upper bound for packages made purely of unseen items: pad τ into an
  // empty package, forcing at least one item (packages are non-empty) and
  // taking the best prefix. Marginals are non-increasing (Lemma 3); once a
  // pad stops helping, further pads cannot.
  double EmptyUpper() const {
    return model::AggEmptyTauBound(BoundPlan(nullptr), s_.tau_.data(), phi_,
                                   set_monotone_, s_.pad_.data());
  }

 private:
  SearchScratch& s_;
  const std::size_t na_;
  const std::size_t stride_;
  const std::size_t phi_;
  const bool set_monotone_;
  const bool relax_any_;
};

bool BetterThan(const ScoredPackage& a, const ScoredPackage& b) {
  if (a.utility != b.utility) return a.utility > b.utility;
  return a.package.items() < b.package.items();
}

double UpperExp(const AggregateState& state, const Vec& tau_row,
                const Vec& weights, std::size_t slots, bool set_monotone,
                const std::vector<std::uint8_t>* nullable_columns) {
  const model::Profile& profile = state.profile();
  const model::Normalizer& norm = state.normalizer();
  const std::size_t m = profile.num_features();
  // Pad accumulators, [count,sum,min,max] per feature. This reference entry
  // point serves tests and cold callers, so small allocations are fine; the
  // search kernel's PaddedBound runs the same AggTauPaddedBound over its
  // scratch-resident slab with none.
  Vec pad(model::kAggStripeWidth * m);
  AggregatePlan plan{profile.ops().data(), weights.data(), norm.scale.data(),
                     m};
  Vec bound_weights;
  if (nullable_columns != nullptr) {
    std::vector<std::uint8_t> relax(m, 0);
    for (std::size_t f = 0; f < m; ++f) {
      relax[f] = model::AggNeedsNullRelaxation(profile.op(f), weights[f],
                                               (*nullable_columns)[f] != 0)
                     ? 1
                     : 0;
    }
    bound_weights.resize(m);
    model::AggResolveBoundWeights(plan, state.stripes(), relax.data(),
                                  bound_weights.data());
    plan.weights = bound_weights.data();
  }
  return model::AggTauPaddedBound(plan, state.stripes(), state.size(),
                                  tau_row.data(), slots, set_monotone,
                                  pad.data());
}

TopKPkgSearch::TopKPkgSearch(const model::PackageEvaluator* evaluator)
    : evaluator_(evaluator) {
  const model::ItemTable& table = evaluator->table();
  const model::Profile& profile = evaluator->profile();
  const std::size_t m = profile.num_features();
  const std::size_t n = table.num_items();
  ascending_ids_.resize(m);
  ascending_values_.resize(m);
  feature_has_null_.assign(m, 0);
  for (std::size_t f = 0; f < m; ++f) {
    for (std::size_t i = 0; i < n; ++i) {
      if (table.is_null(static_cast<ItemId>(i), f)) {
        feature_has_null_[f] = 1;
        break;
      }
    }
    if (profile.op(f) == AggregateOp::kNull) continue;
    const double max_value = table.MaxFeatureValue(f);
    std::vector<ItemId> ids(n);
    Vec evals(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids[i] = static_cast<ItemId>(i);
      evals[i] = EffectiveValue(table.value(static_cast<ItemId>(i), f),
                                profile.op(f), max_value);
    }
    std::sort(ids.begin(), ids.end(), [&](ItemId a, ItemId b) {
      if (evals[a] != evals[b]) return evals[a] < evals[b];
      return a < b;
    });
    Vec sorted_vals(n);
    for (std::size_t i = 0; i < n; ++i) sorted_vals[i] = evals[ids[i]];
    ascending_ids_[f] = std::move(ids);
    ascending_values_[f] = std::move(sorted_vals);
  }
}

Result<SearchResult> TopKPkgSearch::Search(const Vec& weights, std::size_t k,
                                           const SearchLimits& limits,
                                           const PackageFilter* filter,
                                           SearchScratch* scratch) const {
  const PackageEvaluator& ev = *evaluator_;
  const model::ItemTable& table = ev.table();
  const model::Profile& profile = ev.profile();
  const std::size_t m = profile.num_features();
  const std::size_t n = table.num_items();
  const std::size_t phi = ev.phi();

  if (k == 0) return Status::InvalidArgument("TopKPkgSearch: k must be >= 1");
  if (weights.size() != m) {
    return Status::InvalidArgument("TopKPkgSearch: weight dimension mismatch");
  }
  if (phi == 0) {
    return Status::InvalidArgument("TopKPkgSearch: phi must be >= 1");
  }

  // The default scratch: one arena per thread, reused by every search this
  // thread runs (pool workers included), for all evaluators and dimensions.
  // A busy scratch means this call is nested inside another Search on the
  // same scratch (a filter callback that searches, say); fall back to a
  // private scratch — results are scratch-independent, only reuse is lost.
  static thread_local SearchScratch tls_scratch;
  SearchScratch* chosen = scratch != nullptr ? scratch : &tls_scratch;
  SearchScratch local_scratch;
  if (chosen->in_use_) chosen = &local_scratch;
  SearchScratch& s = *chosen;
  s.in_use_ = true;
  struct InUseReset {
    SearchScratch* s;
    ~InUseReset() { s->in_use_ = false; }
  } in_use_reset{&s};

  SearchResult result;

  // Active features: nonzero weight and a real aggregation.
  s.active_.clear();
  for (std::size_t f = 0; f < m; ++f) {
    if (weights[f] != 0.0 && profile.op(f) != AggregateOp::kNull) {
      s.active_.push_back(f);
    }
  }
  if (s.active_.empty()) {
    // Utility is identically 0, so the ranking is decided purely by the
    // deterministic tie-break: ascending item-id sequence (Sec. 2.1). That
    // makes the top-k the first k filter-passing packages of size <= φ in
    // the shared lexicographic walk (model/package.h) — by construction the
    // exact order the oracle (NaivePackageEnumerator) ranks ties in.
    // Exactness under ties is a contract, not a caveat.
    model::ForEachPackageLexicographic(
        n, phi, [&](const std::vector<ItemId>& current) {
          ++result.expansions;
          if (result.expansions > limits.max_expansions) {
            // A filter that rejects nearly everything can otherwise force a
            // full walk of the exponential package space.
            result.truncated = true;
            return false;
          }
          ++result.packages_generated;
          Package p = Package::Of(current);
          if (filter == nullptr || !*filter || (*filter)(p)) {
            result.packages.push_back(ScoredPackage{std::move(p), 0.0});
          }
          return result.packages.size() < k;
        });
    return result;
  }

  // Per-call plan + arena reset. clear() keeps every capacity, so the warm
  // steady state allocates nothing.
  const std::size_t na = s.active_.size();
  s.op_.resize(na);
  s.weight_.resize(na);
  s.scale_.resize(na);
  s.tau_.resize(na);
  s.cursor_.assign(na, 0);
  s.relax_.resize(na);
  s.bound_weight_.resize(na);
  bool relax_any = false;
  for (std::size_t a = 0; a < na; ++a) {
    const std::size_t f = s.active_[a];
    s.op_[a] = profile.op(f);
    s.weight_[a] = weights[f];
    s.scale_[a] = ev.normalizer().scale[f];
    // Null-aware bound relaxation (see model/aggregate_kernel.h): on a
    // nullable min-aggregated column with negative weight, a package with no
    // non-null value contributes exactly 0 — better than any τ-padded
    // minimum — so bounds must carry that count-0 contribution explicitly.
    // Null-free columns keep the tighter plain τ arithmetic bit-for-bit.
    s.relax_[a] = model::AggNeedsNullRelaxation(s.op_[a], s.weight_[a],
                                                feature_has_null_[f] != 0)
                      ? 1
                      : 0;
    relax_any = relax_any || s.relax_[a] != 0;
  }
  s.meta_.clear();
  s.agg_.clear();
  s.free_.clear();
  s.q_.clear();
  s.next_q_.clear();
  s.pad_.resize(model::kAggStripeWidth * na);
  s.refold_.resize(model::kAggStripeWidth * na);
  // Seen set: grow (zeroed) when this table is the largest yet, then clear
  // by generation bump; on counter wraparound re-zero once.
  if (s.seen_.size() < n) {
    s.seen_.assign(n, 0);
    s.generation_ = 0;
  }
  if (++s.generation_ == 0) {
    std::fill(s.seen_.begin(), s.seen_.end(), 0u);
    s.generation_ = 1;
  }

  // Sorted lists L: the precomputed ascending per-feature orders, walked
  // backwards for positive weights (descending desirability) and forwards
  // for negative ones ("a sorted list can be accessed both forwards and
  // backwards", Sec. 4).
  auto order_id = [&](std::size_t li, std::size_t pos) {
    const std::size_t f = s.active_[li];
    return weights[f] > 0.0 ? ascending_ids_[f][n - 1 - pos]
                            : ascending_ids_[f][pos];
  };
  auto order_value = [&](std::size_t li, std::size_t pos) {
    const std::size_t f = s.active_[li];
    return weights[f] > 0.0 ? ascending_values_[f][n - 1 - pos]
                            : ascending_values_[f][pos];
  };

  // Boundary item τ: per active feature the effective value at the list
  // frontier (initialized to the best value, an upper bound on every item).
  for (std::size_t li = 0; li < na; ++li) s.tau_[li] = order_value(li, 0);

  const bool set_monotone = model::IsSetMonotone(profile, weights);
  SearchKernel kernel(s, phi, set_monotone, relax_any);

  TopKCollector collector(k);
  // Scores a generated candidate: the package p ∪ {t} encoded as `t` on top
  // of the arena chain ending at `parent` (-1 for the singleton {t}). The
  // item-id vector is materialized — and the filter consulted — only when
  // the utility can still enter the current top-k. `utility` is the chain
  // fold's (access-order) value; the utility the candidate is ranked by is
  // re-folded below in ascending item-id order, the oracle's fold order, so
  // exact-real ties round identically in both and the deterministic item-id
  // tie-break agrees with the oracle on any data (decimal inputs included).
  // The admission pre-check keeps a slack *relative* to the utility
  // magnitude (plus kEps absolutely) because the two fold orders can
  // differ in the last bits — an absolute epsilon alone under-admits when
  // unnormalized caller weights push utilities far above O(1).
  auto collect_candidate = [&](std::int32_t parent, ItemId t, double utility) {
    ++result.packages_generated;
    if (!collector.CanEnter(utility + kEps * (1.0 + std::fabs(utility)))) {
      return;
    }
    s.items_.clear();
    s.items_.push_back(t);
    for (std::int32_t i = parent; i >= 0; i = s.meta_[i].parent) {
      s.items_.push_back(s.meta_[i].item);
    }
    Package pkg = Package::Of(s.items_);  // Of() sorts the chain order.
    if (filter != nullptr && *filter && !(*filter)(pkg)) return;
    double* rb = s.refold_.data();
    kernel.InitBlock(rb);
    for (ItemId id : pkg.items()) kernel.FoldRow(rb, table.RowSpan(id));
    const double canonical = kernel.UtilityOf(rb, pkg.size());
    collector.Add(ScoredPackage{std::move(pkg), canonical});
  };

  bool exhausted = false;
  while (!exhausted) {
    for (std::size_t li = 0; li < na && !exhausted; ++li) {
      if (s.cursor_[li] >= n) {
        // Every item appears in every list, so one exhausted list means all
        // items were accessed.
        exhausted = true;
        break;
      }
      if (result.items_accessed >= limits.max_items_accessed) {
        result.truncated = true;
        exhausted = true;
        break;
      }
      const ItemId t = order_id(li, s.cursor_[li]);
      s.tau_[li] = order_value(li, s.cursor_[li]);
      ++s.cursor_[li];
      ++result.items_accessed;
      if (s.seen_[t] == s.generation_) continue;
      s.seen_[t] = s.generation_;

      // --- Algorithm 4: expandPackages(U, Q, t, τ) — with one fix and one
      // strengthening over the paper's pseudo-code:
      //   * every child p ∪ {t} becomes a result candidate, not only
      //     utility-improving ones (with non-monotone aggregates such as avg
      //     a true rank-2+ package can score below its own prefix, so the
      //     strict-improvement filter of Alg. 4 line 3 loses it);
      //   * a package stays in Q+ only while its upper-exp bound can still
      //     beat the current k-th best η_lo. This subsumes the paper's
      //     Q− test (τ-padding no longer improves) and is what keeps Q+
      //     from growing exponentially with the accessed-item count.
      const double* row = table.RowSpan(t);
      double eta_up = kernel.EmptyUpper();
      s.next_q_.clear();
      auto retain = [&](double bound) {
        double lo = collector.KthUtility();
        return limits.expand_on_ties ? bound >= lo - kEps : bound > lo + kEps;
      };

      // Expansion of the (implicit) empty package: singletons are always
      // generated, since every non-empty package descends from one.
      {
        const std::int32_t c = kernel.Acquire();
        double* cb = kernel.Block(c);
        kernel.InitBlock(cb);
        kernel.FoldRow(cb, row);
        const double u = kernel.UtilityOf(cb, 1);
        collect_candidate(-1, t, u);
        bool kept = false;
        if (phi > 1) {
          const double bound = kernel.PaddedBound(cb, 1, phi - 1);
          if (retain(bound)) {
            s.meta_[c] = SearchScratch::NodeMeta{t, -1, 1, 1};
            eta_up = std::max(eta_up, bound);
            s.next_q_.push_back(c);
            kept = true;
          }
        }
        if (!kept) kernel.DiscardUnlinked(c);
      }

      for (std::size_t qi = 0; qi < s.q_.size(); ++qi) {
        const std::int32_t idx = s.q_[qi];
        ++result.expansions;
        if (result.expansions > limits.max_expansions) {
          result.truncated = true;
          exhausted = true;
          break;  // Unprocessed Q+ nodes are dropped; the search is ending.
        }
        const std::uint32_t depth = s.meta_[idx].depth;
        // Extend node with the new item t (t is new, so never contained).
        if (depth < phi) {
          const std::int32_t c = kernel.Acquire();
          double* cb = kernel.Block(c);
          std::memcpy(cb, kernel.Block(idx),
                      model::kAggStripeWidth * na * sizeof(double));
          kernel.FoldRow(cb, row);
          const double child_u = kernel.UtilityOf(cb, depth + 1);
          collect_candidate(idx, t, child_u);
          bool kept = false;
          if (depth + 1 < phi) {
            const double bound =
                kernel.PaddedBound(cb, depth + 1, phi - (depth + 1));
            if (retain(bound)) {
              s.meta_[c] = SearchScratch::NodeMeta{
                  t, idx, depth + 1, 1};
              ++s.meta_[idx].refs;
              eta_up = std::max(eta_up, bound);
              s.next_q_.push_back(c);
              kept = true;
            }
          }
          if (!kept) kernel.DiscardUnlinked(c);
        }
        // Re-evaluate node itself against the (tightened) τ and η_lo.
        const double bound =
            kernel.PaddedBound(kernel.Block(idx), depth, phi - depth);
        if (retain(bound)) {
          eta_up = std::max(eta_up, bound);
          s.next_q_.push_back(idx);
        } else {
          kernel.ReleaseFromQueue(idx);
        }
      }
      std::swap(s.q_, s.next_q_);

      if (s.q_.size() > limits.max_queue) {
        // Degrade gracefully: keep the packages with the largest upper
        // bounds. The result may no longer be exact. Bounds are computed
        // once per node, then the selection works on cached values.
        result.truncated = true;
        s.bounds_.clear();
        for (std::size_t i = 0; i < s.q_.size(); ++i) {
          const std::int32_t idx = s.q_[i];
          s.bounds_.emplace_back(
              kernel.PaddedBound(kernel.Block(idx), s.meta_[idx].depth,
                                 phi - s.meta_[idx].depth),
              i);
        }
        std::nth_element(
            s.bounds_.begin(),
            s.bounds_.begin() + static_cast<long>(limits.max_queue),
            s.bounds_.end(), std::greater<>());
        s.bounds_.resize(limits.max_queue);
        s.marks_.assign(s.q_.size(), 0);
        s.next_q_.clear();
        for (const auto& [bound, i] : s.bounds_) {
          s.next_q_.push_back(s.q_[i]);
          s.marks_[i] = 1;
        }
        for (std::size_t i = 0; i < s.q_.size(); ++i) {
          if (!s.marks_[i]) kernel.ReleaseFromQueue(s.q_[i]);
        }
        std::swap(s.q_, s.next_q_);
      }

      // Termination test (Algorithm 2 line 8): no package that still
      // involves an unseen item can beat the current k-th best. In
      // expand_on_ties mode equal-bound packages must still be surfaced, so
      // the test is strict (exhaustion of the lists bounds the search).
      double lo = collector.KthUtility();
      if (limits.expand_on_ties ? eta_up < lo - kEps : eta_up <= lo + kEps) {
        exhausted = true;
        break;
      }
    }
  }

  result.packages = std::move(collector).Take();
  return result;
}

}  // namespace topkpkg::topk
