#include "topkpkg/topk/topk_pkg.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "topkpkg/model/aggregate_kernel.h"
#include "topkpkg/obs/metrics.h"
#include "topkpkg/obs/trace.h"

namespace topkpkg::topk {

namespace {

constexpr double kEps = 1e-12;
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Search-kernel metrics, flushed once per Search() call / per batched
// group walk from function-local tallies — the B&B inner loops never touch
// an atomic, so the guarded benches stay within their regression budget
// with instrumentation enabled.
struct SearchMetricsT {
  obs::Counter* searches;
  obs::Counter* expansions;
  obs::Counter* pruned;
  obs::Counter* packages;
  obs::Counter* truncations;
  obs::Counter* batch_walks;
  obs::Counter* batch_lanes;
  obs::Histogram* lane_occupancy;
};

SearchMetricsT& SearchMetrics() {
  static SearchMetricsT* const m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    auto* out = new SearchMetricsT();
    out->searches = reg.GetCounter("topkpkg_search_searches_total",
                                   "Scalar Search() calls");
    out->expansions =
        reg.GetCounter("topkpkg_search_expansions_total",
                       "Branch-and-bound node expansions (all lanes)");
    out->pruned = reg.GetCounter(
        "topkpkg_search_pruned_total",
        "Nodes (or batch lane-slots) cut by the Lemma-3 bound test");
    out->packages = reg.GetCounter("topkpkg_search_packages_generated_total",
                                   "Candidate packages generated");
    out->truncations = reg.GetCounter(
        "topkpkg_search_truncated_total",
        "Searches or batch lanes that hit an expansion/queue/item limit");
    out->batch_walks = reg.GetCounter("topkpkg_search_batch_walks_total",
                                      "Shared batched frontier walks");
    out->batch_lanes = reg.GetCounter("topkpkg_search_batch_lanes_total",
                                      "Weight-vector lanes served batched");
    out->lane_occupancy = reg.GetHistogram(
        "topkpkg_search_batch_lane_occupancy",
        "Lanes sharing one batched walk (max 64)");
    return out;
  }();
  return *m;
}

using model::AggregateOp;
using model::AggregatePlan;
using model::AggregateState;
using model::IsNull;
using model::ItemId;
using model::Package;
using model::PackageEvaluator;

// Keeps the k best ScoredPackages seen so far as a bounded max-heap whose
// root is the current k-th best (the next element to be displaced), so Add
// is O(log k) and the large-k "serve whole result pages" regime doesn't pay
// the O(k) insertion-sorted-vector memmove per candidate. Ordering is
// extracted once at Take(). CanEnter / KthUtility / the surviving set are
// identical to the old sorted-vector collector — both derive from the same
// strict BetterThan order — so search results, tie-breaks and truncation
// points are unchanged.
class TopKCollector {
 public:
  explicit TopKCollector(std::size_t k) : k_(k) {}

  // False when a candidate with this utility cannot possibly enter the
  // current top-k, so callers can skip materializing (and filtering) it
  // entirely. Equal-to-k-th utilities must still be tried: the ascending
  // item-id tie-break may place them above the current k-th.
  bool CanEnter(double utility) const {
    return best_.size() < k_ || utility >= best_.front().utility;
  }

  void Add(ScoredPackage sp) {
    // Heap comparator: BetterThan is a strict "less" whose maximum — the
    // heap root — is therefore the *worst* retained package.
    if (best_.size() < k_) {
      best_.push_back(std::move(sp));
      std::push_heap(best_.begin(), best_.end(), BetterThan);
      return;
    }
    if (!BetterThan(sp, best_.front())) return;
    std::pop_heap(best_.begin(), best_.end(), BetterThan);
    best_.back() = std::move(sp);
    std::push_heap(best_.begin(), best_.end(), BetterThan);
  }

  // η_lo: utility of the current k-th best (−∞ while fewer than k known).
  double KthUtility() const {
    return best_.size() < k_ ? kNegInf : best_.front().utility;
  }

  // True once k packages are held; CanEnter is unconditionally true before.
  bool Saturated() const { return best_.size() >= k_; }

  // Ordered extraction, best first.
  std::vector<ScoredPackage> Take() && {
    std::sort_heap(best_.begin(), best_.end(), BetterThan);
    return std::move(best_);
  }

 private:
  std::size_t k_;
  std::vector<ScoredPackage> best_;
};

// Effective per-list value of an item on feature f: the value that both
// drives the sorted-list access order and enters the boundary item τ. Nulls
// behave like 0 for sum/avg/max (they contribute nothing) and like the
// feature maximum for min (they leave the minimum untouched, which is the
// best possible behaviour when a large minimum is desired and the worst when
// a small one is).
double EffectiveValue(double v, AggregateOp op, double max_value) {
  if (!IsNull(v)) return v;
  return op == AggregateOp::kMin ? max_value : 0.0;
}

}  // namespace

// The per-call search kernel over a SearchScratch. Aggregate states are
// packed [count,sum,min,max] blocks over the active features only, stored in
// the scratch's flat slab; every arithmetic step (fold, utility, τ pad)
// delegates to model/aggregate_kernel.h — the same implementation behind
// AggregateState and the reference UpperExp — so the kernel's comparisons,
// tie-breaks and truncation points cannot drift from the model layer's.
// Bounds additionally honor the null-aware relaxation (`relax_any`): on
// nullable min-aggregated features with negative weight, a package with no
// non-null contribution is worth exactly 0 there, which no τ padding
// represents, so such features are floored at 0 in bound evaluations.
class SearchKernel {
 public:
  SearchKernel(SearchScratch& s, std::size_t phi, bool set_monotone)
      : s_(s),
        na_(s.active_.size()),
        stride_(model::kAggStripeWidth * s.active_.size()),
        phi_(phi),
        set_monotone_(set_monotone) {}

  double* Block(std::int32_t idx) { return s_.agg_.data() + idx * stride_; }

  // Acquires an arena slot (recycled or new). May grow the slab, so callers
  // must (re)fetch Block() pointers after acquiring.
  std::int32_t Acquire() {
    if (!s_.free_.empty()) {
      std::int32_t idx = s_.free_.back();
      s_.free_.pop_back();
      return idx;
    }
    std::int32_t idx = static_cast<std::int32_t>(s_.meta_.size());
    s_.meta_.emplace_back();
    s_.agg_.resize(s_.agg_.size() + stride_);
    return idx;
  }

  // Returns a slot that was acquired but never linked into the tree.
  void DiscardUnlinked(std::int32_t idx) { s_.free_.push_back(idx); }

  // Drops a node from Q+. Slots are recycled up the parent chain as long as
  // no live child (and no queue membership) still references them.
  void ReleaseFromQueue(std::int32_t idx) {
    while (idx >= 0) {
      SearchScratch::NodeMeta& nm = s_.meta_[idx];
      if (--nm.refs > 0) break;
      s_.free_.push_back(idx);
      idx = nm.parent;
    }
  }

  void InitBlock(double* blk) const { model::AggInitStripes(blk, na_); }

  // AggregateState::Add over the active columns of a raw item row.
  void FoldRow(double* blk, const double* row) const {
    model::AggFoldRowActive(blk, row, s_.active_.data(), na_);
  }

  // The exact-utility plan over the active features; bounds swap in the
  // null-aware resolved weights via BoundPlan().
  AggregatePlan Plan() const {
    return AggregatePlan{s_.op_.data(), s_.weight_.data(), s_.scale_.data(),
                         na_};
  }

  // The plan a bound over `blk` must be evaluated under: exact weights when
  // no feature currently needs the null relaxation, otherwise the resolved
  // copy with count-0 relaxed features zeroed (their bound contribution is
  // the count-0 value, exactly 0). `blk == nullptr` = the empty package.
  // Reads the scratch's live relax state, which RetightenNulls() shrinks as
  // the walk exhausts each relaxed feature's null items.
  AggregatePlan BoundPlan(const double* blk) const {
    AggregatePlan plan = Plan();
    if (s_.relaxed_active_ > 0) {
      model::AggResolveBoundWeights(plan, blk, s_.relax_.data(),
                                    s_.bound_weight_.data());
      plan.weights = s_.bound_weight_.data();
    }
    return plan;
  }

  // Null-aware bound re-tightening, called when the newly accessed item `t`
  // first enters the seen set. Every item still unseen then sits after the
  // cursor on every list, so once a relaxed feature's last null item has
  // been seen, any extension of any open package folds a real (non-null)
  // value there — the count-0 case the relaxation guards against can no
  // longer arise from unseen items, and the plain τ-padded arithmetic is
  // admissible again. Clearing the bit tightens every later bound; on
  // null-heavy min/negative workloads this is what stops the walk from
  // paying relaxed (loose) bounds long after the nulls are all behind it.
  void RetightenNulls(const model::ItemTable& table, ItemId t) {
    for (std::size_t a = 0; a < na_; ++a) {
      if (s_.relax_[a] == 0) continue;
      if (!table.is_null(t, s_.active_[a])) continue;
      if (--s_.null_left_[a] == 0) {
        s_.relax_[a] = 0;
        --s_.relaxed_active_;
      }
    }
  }

  // AggregateState::Utility over an arena block — the exact utility of a
  // real package, never relaxed.
  double UtilityOf(const double* blk, std::size_t size) const {
    return model::AggUtility(Plan(), blk, size);
  }

  // Utility after one more τ pad, without committing it. The named twin of
  // AggPeekTauUtility over this scratch's τ; the empty-package bound's
  // greedy stop runs the same peek inside AggEmptyTauBound (under the
  // bound-resolved plan).
  double PeekPadUtility(const double* blk, std::size_t padded_size) const {
    return model::AggPeekTauUtility(Plan(), blk, s_.tau_.data(), padded_size);
  }

  // Algorithm 3 over an arena block: pads `slots` copies of τ into the
  // scratch pad accumulators and never touches an AggregateState.
  // Value-identical to UpperExp() over the equivalent state.
  double PaddedBound(const double* blk, std::size_t size,
                     std::size_t slots) const {
    return model::AggTauPaddedBound(BoundPlan(blk), blk, size, s_.tau_.data(),
                                    slots, set_monotone_, s_.pad_.data());
  }

  // Upper bound for packages made purely of unseen items: pad τ into an
  // empty package, forcing at least one item (packages are non-empty) and
  // taking the best prefix. Marginals are non-increasing (Lemma 3); once a
  // pad stops helping, further pads cannot.
  double EmptyUpper() const {
    return model::AggEmptyTauBound(BoundPlan(nullptr), s_.tau_.data(), phi_,
                                   set_monotone_, s_.pad_.data());
  }

 private:
  SearchScratch& s_;
  const std::size_t na_;
  const std::size_t stride_;
  const std::size_t phi_;
  const bool set_monotone_;
};

bool BetterThan(const ScoredPackage& a, const ScoredPackage& b) {
  if (a.utility != b.utility) return a.utility > b.utility;
  return a.package.items() < b.package.items();
}

double UpperExp(const AggregateState& state, const Vec& tau_row,
                const Vec& weights, std::size_t slots, bool set_monotone,
                const std::vector<std::uint8_t>* nullable_columns) {
  const model::Profile& profile = state.profile();
  const model::Normalizer& norm = state.normalizer();
  const std::size_t m = profile.num_features();
  // Pad accumulators, [count,sum,min,max] per feature. This reference entry
  // point serves tests and cold callers, so small allocations are fine; the
  // search kernel's PaddedBound runs the same AggTauPaddedBound over its
  // scratch-resident slab with none.
  Vec pad(model::kAggStripeWidth * m);
  AggregatePlan plan{profile.ops().data(), weights.data(), norm.scale.data(),
                     m};
  Vec bound_weights;
  if (nullable_columns != nullptr) {
    std::vector<std::uint8_t> relax(m, 0);
    for (std::size_t f = 0; f < m; ++f) {
      relax[f] = model::AggNeedsNullRelaxation(profile.op(f), weights[f],
                                               (*nullable_columns)[f] != 0)
                     ? 1
                     : 0;
    }
    bound_weights.resize(m);
    model::AggResolveBoundWeights(plan, state.stripes(), relax.data(),
                                  bound_weights.data());
    plan.weights = bound_weights.data();
  }
  return model::AggTauPaddedBound(plan, state.stripes(), state.size(),
                                  tau_row.data(), slots, set_monotone,
                                  pad.data());
}

TopKPkgSearch::TopKPkgSearch(const model::PackageEvaluator* evaluator)
    : evaluator_(evaluator) {
  const model::ItemTable& table = evaluator->table();
  const model::Profile& profile = evaluator->profile();
  const std::size_t m = profile.num_features();
  const std::size_t n = table.num_items();
  ascending_ids_.resize(m);
  ascending_values_.resize(m);
  feature_has_null_.assign(m, 0);
  feature_null_count_.assign(m, 0);
  for (std::size_t f = 0; f < m; ++f) {
    for (std::size_t i = 0; i < n; ++i) {
      if (table.is_null(static_cast<ItemId>(i), f)) ++feature_null_count_[f];
    }
    feature_has_null_[f] = feature_null_count_[f] > 0 ? 1 : 0;
    if (profile.op(f) == AggregateOp::kNull) continue;
    const double max_value = table.MaxFeatureValue(f);
    std::vector<ItemId> ids(n);
    Vec evals(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids[i] = static_cast<ItemId>(i);
      evals[i] = EffectiveValue(table.value(static_cast<ItemId>(i), f),
                                profile.op(f), max_value);
    }
    std::sort(ids.begin(), ids.end(), [&](ItemId a, ItemId b) {
      if (evals[a] != evals[b]) return evals[a] < evals[b];
      return a < b;
    });
    Vec sorted_vals(n);
    for (std::size_t i = 0; i < n; ++i) sorted_vals[i] = evals[ids[i]];
    ascending_ids_[f] = std::move(ids);
    ascending_values_[f] = std::move(sorted_vals);
  }
}

Result<SearchResult> TopKPkgSearch::Search(const Vec& weights, std::size_t k,
                                           const SearchLimits& limits,
                                           const PackageFilter* filter,
                                           SearchScratch* scratch) const {
  const PackageEvaluator& ev = *evaluator_;
  const model::ItemTable& table = ev.table();
  const model::Profile& profile = ev.profile();
  const std::size_t m = profile.num_features();
  const std::size_t n = table.num_items();
  const std::size_t phi = ev.phi();

  if (k == 0) return Status::InvalidArgument("TopKPkgSearch: k must be >= 1");
  if (weights.size() != m) {
    return Status::InvalidArgument("TopKPkgSearch: weight dimension mismatch");
  }
  if (phi == 0) {
    return Status::InvalidArgument("TopKPkgSearch: phi must be >= 1");
  }

  // The default scratch: one arena per thread, reused by every search this
  // thread runs (pool workers included), for all evaluators and dimensions.
  // A busy scratch means this call is nested inside another Search on the
  // same scratch (a filter callback that searches, say); fall back to a
  // private scratch — results are scratch-independent, only reuse is lost.
  static thread_local SearchScratch tls_scratch;
  SearchScratch* chosen = scratch != nullptr ? scratch : &tls_scratch;
  SearchScratch local_scratch;
  if (chosen->in_use_) chosen = &local_scratch;
  SearchScratch& s = *chosen;
  s.in_use_ = true;
  struct InUseReset {
    SearchScratch* s;
    ~InUseReset() { s->in_use_ = false; }
  } in_use_reset{&s};

  SearchResult result;
  // Lemma-3 tally, local so the walk stays atomic-free; flushed on return.
  [[maybe_unused]] std::uint64_t lemma3_pruned = 0;

  // Active features: nonzero weight and a real aggregation.
  s.active_.clear();
  for (std::size_t f = 0; f < m; ++f) {
    if (weights[f] != 0.0 && profile.op(f) != AggregateOp::kNull) {
      s.active_.push_back(f);
    }
  }
  if (s.active_.empty()) {
    // Utility is identically 0, so the ranking is decided purely by the
    // deterministic tie-break: ascending item-id sequence (Sec. 2.1). That
    // makes the top-k the first k filter-passing packages of size <= φ in
    // the shared lexicographic walk (model/package.h) — by construction the
    // exact order the oracle (NaivePackageEnumerator) ranks ties in.
    // Exactness under ties is a contract, not a caveat.
    model::ForEachPackageLexicographic(
        n, phi, [&](const std::vector<ItemId>& current) {
          ++result.expansions;
          if (result.expansions > limits.max_expansions) {
            // A filter that rejects nearly everything can otherwise force a
            // full walk of the exponential package space.
            result.truncated = true;
            return false;
          }
          ++result.packages_generated;
          Package p = Package::Of(current);
          if (filter == nullptr || !*filter || (*filter)(p)) {
            result.packages.push_back(ScoredPackage{std::move(p), 0.0});
          }
          return result.packages.size() < k;
        });
    if constexpr (obs::kMetricsEnabled) {
      auto& sm = SearchMetrics();
      sm.searches->Increment();
      sm.expansions->Increment(result.expansions);
      sm.packages->Increment(result.packages_generated);
      if (result.truncated) sm.truncations->Increment();
    }
    return result;
  }

  // Per-call plan + arena reset. clear() keeps every capacity, so the warm
  // steady state allocates nothing.
  const std::size_t na = s.active_.size();
  s.op_.resize(na);
  s.weight_.resize(na);
  s.scale_.resize(na);
  s.tau_.resize(na);
  s.cursor_.assign(na, 0);
  s.relax_.resize(na);
  s.bound_weight_.resize(na);
  s.null_left_.resize(na);
  s.relaxed_active_ = 0;
  for (std::size_t a = 0; a < na; ++a) {
    const std::size_t f = s.active_[a];
    s.op_[a] = profile.op(f);
    s.weight_[a] = weights[f];
    s.scale_[a] = ev.normalizer().scale[f];
    // Null-aware bound relaxation (see model/aggregate_kernel.h): on a
    // nullable min-aggregated column with negative weight, a package with no
    // non-null value contributes exactly 0 — better than any τ-padded
    // minimum — so bounds must carry that count-0 contribution explicitly.
    // Null-free columns keep the tighter plain τ arithmetic bit-for-bit, and
    // a relaxed feature re-tightens mid-walk once its nulls are all seen
    // (SearchKernel::RetightenNulls), seeded from the per-feature null
    // census here.
    s.relax_[a] = model::AggNeedsNullRelaxation(s.op_[a], s.weight_[a],
                                                feature_has_null_[f] != 0)
                      ? 1
                      : 0;
    s.null_left_[a] = s.relax_[a] != 0 ? feature_null_count_[f] : 0;
    if (s.relax_[a] != 0) ++s.relaxed_active_;
  }
  s.meta_.clear();
  s.agg_.clear();
  s.free_.clear();
  s.q_.clear();
  s.next_q_.clear();
  s.pad_.resize(model::kAggStripeWidth * na);
  s.refold_.resize(model::kAggStripeWidth * na);
  // Seen set: grow (zeroed) when this table is the largest yet, then clear
  // by generation bump; on counter wraparound re-zero once.
  if (s.seen_.size() < n) {
    s.seen_.assign(n, 0);
    s.generation_ = 0;
  }
  if (++s.generation_ == 0) {
    std::fill(s.seen_.begin(), s.seen_.end(), 0u);
    s.generation_ = 1;
  }

  // Sorted lists L: the precomputed ascending per-feature orders, walked
  // backwards for positive weights (descending desirability) and forwards
  // for negative ones ("a sorted list can be accessed both forwards and
  // backwards", Sec. 4).
  auto order_id = [&](std::size_t li, std::size_t pos) {
    const std::size_t f = s.active_[li];
    return weights[f] > 0.0 ? ascending_ids_[f][n - 1 - pos]
                            : ascending_ids_[f][pos];
  };
  auto order_value = [&](std::size_t li, std::size_t pos) {
    const std::size_t f = s.active_[li];
    return weights[f] > 0.0 ? ascending_values_[f][n - 1 - pos]
                            : ascending_values_[f][pos];
  };

  // Boundary item τ: per active feature the effective value at the list
  // frontier (initialized to the best value, an upper bound on every item).
  for (std::size_t li = 0; li < na; ++li) s.tau_[li] = order_value(li, 0);

  const bool set_monotone = model::IsSetMonotone(profile, weights);
  SearchKernel kernel(s, phi, set_monotone);

  TopKCollector collector(k);
  // Scores a generated candidate: the package p ∪ {t} encoded as `t` on top
  // of the arena chain ending at `parent` (-1 for the singleton {t}). The
  // item-id vector is materialized — and the filter consulted — only when
  // the utility can still enter the current top-k. `utility` is the chain
  // fold's (access-order) value; the utility the candidate is ranked by is
  // re-folded below in ascending item-id order, the oracle's fold order, so
  // exact-real ties round identically in both and the deterministic item-id
  // tie-break agrees with the oracle on any data (decimal inputs included).
  // The admission pre-check keeps a slack *relative* to the utility
  // magnitude (plus kEps absolutely) because the two fold orders can
  // differ in the last bits — an absolute epsilon alone under-admits when
  // unnormalized caller weights push utilities far above O(1).
  auto collect_candidate = [&](std::int32_t parent, ItemId t, double utility) {
    ++result.packages_generated;
    if (!collector.CanEnter(utility + kEps * (1.0 + std::fabs(utility)))) {
      return;
    }
    s.items_.clear();
    s.items_.push_back(t);
    for (std::int32_t i = parent; i >= 0; i = s.meta_[i].parent) {
      s.items_.push_back(s.meta_[i].item);
    }
    Package pkg = Package::Of(s.items_);  // Of() sorts the chain order.
    if (filter != nullptr && *filter && !(*filter)(pkg)) return;
    double* rb = s.refold_.data();
    kernel.InitBlock(rb);
    for (ItemId id : pkg.items()) kernel.FoldRow(rb, table.RowSpan(id));
    const double canonical = kernel.UtilityOf(rb, pkg.size());
    collector.Add(ScoredPackage{std::move(pkg), canonical});
  };

  bool exhausted = false;
  while (!exhausted) {
    for (std::size_t li = 0; li < na && !exhausted; ++li) {
      if (s.cursor_[li] >= n) {
        // Every item appears in every list, so one exhausted list means all
        // items were accessed.
        exhausted = true;
        break;
      }
      if (result.items_accessed >= limits.max_items_accessed) {
        result.truncated = true;
        exhausted = true;
        break;
      }
      const ItemId t = order_id(li, s.cursor_[li]);
      s.tau_[li] = order_value(li, s.cursor_[li]);
      ++s.cursor_[li];
      ++result.items_accessed;
      if (s.seen_[t] == s.generation_) continue;
      s.seen_[t] = s.generation_;
      if (s.relaxed_active_ > 0) kernel.RetightenNulls(table, t);

      // --- Algorithm 4: expandPackages(U, Q, t, τ) — with one fix and one
      // strengthening over the paper's pseudo-code:
      //   * every child p ∪ {t} becomes a result candidate, not only
      //     utility-improving ones (with non-monotone aggregates such as avg
      //     a true rank-2+ package can score below its own prefix, so the
      //     strict-improvement filter of Alg. 4 line 3 loses it);
      //   * a package stays in Q+ only while its upper-exp bound can still
      //     beat the current k-th best η_lo. This subsumes the paper's
      //     Q− test (τ-padding no longer improves) and is what keeps Q+
      //     from growing exponentially with the accessed-item count.
      const double* row = table.RowSpan(t);
      double eta_up = kernel.EmptyUpper();
      s.next_q_.clear();
      auto retain = [&](double bound) {
        double lo = collector.KthUtility();
        return limits.expand_on_ties ? bound >= lo - kEps : bound > lo + kEps;
      };

      // Expansion of the (implicit) empty package: singletons are always
      // generated, since every non-empty package descends from one.
      {
        const std::int32_t c = kernel.Acquire();
        double* cb = kernel.Block(c);
        kernel.InitBlock(cb);
        kernel.FoldRow(cb, row);
        const double u = kernel.UtilityOf(cb, 1);
        collect_candidate(-1, t, u);
        bool kept = false;
        if (phi > 1) {
          const double bound = kernel.PaddedBound(cb, 1, phi - 1);
          if (retain(bound)) {
            s.meta_[c] = SearchScratch::NodeMeta{t, -1, 1, 1};
            eta_up = std::max(eta_up, bound);
            s.next_q_.push_back(c);
            kept = true;
          } else {
            ++lemma3_pruned;
          }
        }
        if (!kept) kernel.DiscardUnlinked(c);
      }

      for (std::size_t qi = 0; qi < s.q_.size(); ++qi) {
        const std::int32_t idx = s.q_[qi];
        ++result.expansions;
        if (result.expansions > limits.max_expansions) {
          result.truncated = true;
          exhausted = true;
          break;  // Unprocessed Q+ nodes are dropped; the search is ending.
        }
        const std::uint32_t depth = s.meta_[idx].depth;
        // Extend node with the new item t (t is new, so never contained).
        if (depth < phi) {
          const std::int32_t c = kernel.Acquire();
          double* cb = kernel.Block(c);
          std::memcpy(cb, kernel.Block(idx),
                      model::kAggStripeWidth * na * sizeof(double));
          kernel.FoldRow(cb, row);
          const double child_u = kernel.UtilityOf(cb, depth + 1);
          collect_candidate(idx, t, child_u);
          bool kept = false;
          if (depth + 1 < phi) {
            const double bound =
                kernel.PaddedBound(cb, depth + 1, phi - (depth + 1));
            if (retain(bound)) {
              s.meta_[c] = SearchScratch::NodeMeta{
                  t, idx, depth + 1, 1};
              ++s.meta_[idx].refs;
              eta_up = std::max(eta_up, bound);
              s.next_q_.push_back(c);
              kept = true;
            } else {
              ++lemma3_pruned;
            }
          }
          if (!kept) kernel.DiscardUnlinked(c);
        }
        // Re-evaluate node itself against the (tightened) τ and η_lo.
        const double bound =
            kernel.PaddedBound(kernel.Block(idx), depth, phi - depth);
        if (retain(bound)) {
          eta_up = std::max(eta_up, bound);
          s.next_q_.push_back(idx);
        } else {
          ++lemma3_pruned;
          kernel.ReleaseFromQueue(idx);
        }
      }
      std::swap(s.q_, s.next_q_);

      if (s.q_.size() > limits.max_queue) {
        // Degrade gracefully: keep the packages with the largest upper
        // bounds. The result may no longer be exact. Bounds are computed
        // once per node, then the selection works on cached values. The
        // keep SET is determined by the (bound, position) total order —
        // positions are distinct, so nth_element's pivot choice cannot
        // change it — and the survivors are re-queued in their original
        // relative order, keeping the walk deterministic (and letting the
        // batched walk reproduce each lane's overflow exactly).
        result.truncated = true;
        s.bounds_.clear();
        for (std::size_t i = 0; i < s.q_.size(); ++i) {
          const std::int32_t idx = s.q_[i];
          s.bounds_.emplace_back(
              kernel.PaddedBound(kernel.Block(idx), s.meta_[idx].depth,
                                 phi - s.meta_[idx].depth),
              i);
        }
        std::nth_element(
            s.bounds_.begin(),
            s.bounds_.begin() + static_cast<long>(limits.max_queue),
            s.bounds_.end(), std::greater<>());
        s.bounds_.resize(limits.max_queue);
        s.marks_.assign(s.q_.size(), 0);
        for (const auto& kept : s.bounds_) s.marks_[kept.second] = 1;
        s.next_q_.clear();
        for (std::size_t i = 0; i < s.q_.size(); ++i) {
          if (s.marks_[i]) {
            s.next_q_.push_back(s.q_[i]);
          } else {
            kernel.ReleaseFromQueue(s.q_[i]);
          }
        }
        std::swap(s.q_, s.next_q_);
      }

      // Termination test (Algorithm 2 line 8): no package that still
      // involves an unseen item can beat the current k-th best. In
      // expand_on_ties mode equal-bound packages must still be surfaced, so
      // the test is strict (exhaustion of the lists bounds the search).
      double lo = collector.KthUtility();
      if (limits.expand_on_ties ? eta_up < lo - kEps : eta_up <= lo + kEps) {
        exhausted = true;
        break;
      }
    }
  }

  result.packages = std::move(collector).Take();
  if constexpr (obs::kMetricsEnabled) {
    auto& sm = SearchMetrics();
    sm.searches->Increment();
    sm.expansions->Increment(result.expansions);
    sm.packages->Increment(result.packages_generated);
    sm.pruned->Increment(lemma3_pruned);
    if (result.truncated) sm.truncations->Increment();
  }
  return result;
}

// ---------------------------------------------------------------------------
// Batched search: one shared branch-and-bound walk, many weight vectors.
//
// Correctness rests on the access-signature grouping. Per feature, a weight
// falls in one of four classes — inactive (zero weight or null-profiled),
// positive, negative, NaN — and that class alone determines everything the
// walk's *structure* depends on: the active feature set, each list's walk
// direction (and therefore the item access order and the boundary vector τ),
// the relax mask, and set-monotonicity. Lanes sharing a signature therefore
// share one identical walk skeleton; only utilities, bounds, η_lo and the
// retain/termination decisions are per-lane. The shared Q+ holds the union
// of the lanes' queues, per-node masks record membership, and because nodes
// are appended in the same order a scalar walk appends them, each lane's
// masked view of the shared queue is exactly its scalar queue — including
// after a per-lane max_queue overflow, which re-queues survivors in their
// original relative order just like the scalar path. Every per-lane value
// (chain-fold utility, canonical re-fold, τ-padded bound, η_up) is computed
// by the batched aggregate kernels, whose arithmetic is operation-for-
// operation the scalar kernels' — so each lane's packages, utilities, tie
// order, truncation flags and counters are bit-identical to Search().
// ---------------------------------------------------------------------------

namespace {

inline int LowestLane(std::uint64_t mask) {
  return __builtin_ctzll(mask);  // Callers guarantee mask != 0.
}

}  // namespace

Result<std::vector<SearchResult>> TopKPkgSearch::SearchBatch(
    const std::vector<const Vec*>& weights, std::size_t k,
    const SearchLimits& limits, const PackageFilter* filter,
    BatchScratch* scratch, const ExecutionOptions& exec) const {
  const PackageEvaluator& ev = *evaluator_;
  const model::ItemTable& table = ev.table();
  const model::Profile& profile = ev.profile();
  const std::size_t m = profile.num_features();
  const std::size_t n = table.num_items();
  const std::size_t phi = ev.phi();
  const std::size_t W = weights.size();

  if (k == 0) return Status::InvalidArgument("TopKPkgSearch: k must be >= 1");
  if (phi == 0) {
    return Status::InvalidArgument("TopKPkgSearch: phi must be >= 1");
  }
  for (const Vec* w : weights) {
    if (w == nullptr) {
      return Status::InvalidArgument("SearchBatch: null weight vector");
    }
    if (w->size() != m) {
      return Status::InvalidArgument(
          "TopKPkgSearch: weight dimension mismatch");
    }
  }

  std::vector<SearchResult> results(W);
  if (W == 0) return results;

  // Records under the bound request's trace when one flows through the
  // serving path; a no-op measurement otherwise.
  obs::ScopedSpan batch_span("search_batch");

  static thread_local BatchScratch tls_scratch;
  BatchScratch* chosen = scratch != nullptr ? scratch : &tls_scratch;
  BatchScratch local_scratch;
  if (chosen->in_use_) chosen = &local_scratch;
  BatchScratch& b = *chosen;
  b.in_use_ = true;
  b.s_.in_use_ = true;
  struct InUseReset {
    BatchScratch* b;
    ~InUseReset() {
      b->in_use_ = false;
      b->s_.in_use_ = false;
    }
  } in_use_reset{&b};

  // Group lanes by access signature. NaN weights get their own class: they
  // activate a feature but are neither > 0 nor < 0, so their walk direction
  // matches negative weights while their relax eligibility and monotonicity
  // contribution do not — mixing them with true negatives would break the
  // group invariants above.
  auto signature_of = [&](const Vec& w) {
    std::string sig(m, '0');
    for (std::size_t f = 0; f < m; ++f) {
      if (profile.op(f) == AggregateOp::kNull || w[f] == 0.0) continue;
      sig[f] = w[f] > 0.0 ? '+' : (w[f] < 0.0 ? '-' : 'n');
    }
    return sig;
  };
  std::map<std::string, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < W; ++i) {
    groups[signature_of(*weights[i])].push_back(i);
  }

  // One shared walk over the lanes `lane_ids[0 .. L)` of one signature group.
  auto run_group = [&](const std::size_t* lane_ids, std::size_t L) {
    SearchScratch& s = b.s_;
    const Vec& w0 = *weights[lane_ids[0]];

    // Shared per-call plan: the walk skeleton derives from w0, which is
    // interchangeable with any lane of the group by the signature invariant.
    s.active_.clear();
    for (std::size_t f = 0; f < m; ++f) {
      if (w0[f] != 0.0 && profile.op(f) != AggregateOp::kNull) {
        s.active_.push_back(f);
      }
    }
    const std::size_t na = s.active_.size();  // Never 0 (scalar path above).
    s.op_.resize(na);
    s.weight_.resize(na);
    s.scale_.resize(na);
    s.tau_.resize(na);
    s.cursor_.assign(na, 0);
    s.relax_.resize(na);
    s.bound_weight_.resize(na);
    s.null_left_.resize(na);
    s.relaxed_active_ = 0;
    for (std::size_t a = 0; a < na; ++a) {
      const std::size_t f = s.active_[a];
      s.op_[a] = profile.op(f);
      s.weight_[a] = w0[f];
      s.scale_[a] = ev.normalizer().scale[f];
      s.relax_[a] = model::AggNeedsNullRelaxation(s.op_[a], w0[f],
                                                  feature_has_null_[f] != 0)
                        ? 1
                        : 0;
      s.null_left_[a] = s.relax_[a] != 0 ? feature_null_count_[f] : 0;
      if (s.relax_[a] != 0) ++s.relaxed_active_;
    }
    s.meta_.clear();
    s.agg_.clear();
    s.free_.clear();
    s.q_.clear();
    s.next_q_.clear();
    s.pad_.resize(model::kAggStripeWidth * na);
    s.refold_.resize(model::kAggStripeWidth * na);
    if (s.seen_.size() < n) {
      s.seen_.assign(n, 0);
      s.generation_ = 0;
    }
    if (++s.generation_ == 0) {
      std::fill(s.seen_.begin(), s.seen_.end(), 0u);
      s.generation_ = 1;
    }
    b.mask_.clear();

    // Lane-dimension buffers + the column-major lane weights.
    b.wcol_.resize(na * L);
    for (std::size_t a = 0; a < na; ++a) {
      const std::size_t f = s.active_[a];
      for (std::size_t j = 0; j < L; ++j) {
        b.wcol_[a * L + j] = (*weights[lane_ids[j]])[f];
      }
    }
    const model::AggBatchPlan plan{s.op_.data(), s.scale_.data(),
                                   b.wcol_.data(), na, L};
    // The SIMD suite every lane dot runs through (bit-identical per lane
    // whichever backend is picked) and the live-lane compaction threshold:
    // a sparse node whose live-lane count drops below thr·L re-packs those
    // lanes dense and takes the SIMD kernels instead of scalar gathers.
    const model::AggBatchKernels& kern = model::AggBatchKernelsFor(exec.simd);
    const double thr =
        std::min(1.0, std::max(0.0, exec.lane_compact_threshold));
    auto should_compact = [thr, L](std::size_t nl) {
      return static_cast<double>(nl) < thr * static_cast<double>(L);
    };
    b.raw_norm_.resize(na);
    b.peek_norm_.resize(na);
    b.skip_.resize(na);
    b.lane_u_.resize(L);
    b.lane_peek_.resize(L);
    b.lane_bound_.resize(L);
    b.lane_eta_.resize(L);
    b.lane_stop_.resize(L);
    b.lane_qlen_.resize(L);
    b.cwcol_.resize(na * L);
    b.cu_.resize(L);
    b.cbound_.resize(L);
    b.cstop_.resize(L);
    b.cu0_.resize(L);

    // Re-packs the listed lanes' weight columns into the dense compaction
    // block: compacted lane t is original lane lidx[t], so a compacted
    // kernel's column reads are unit-stride over exactly the same doubles
    // the gather would have strided over — same per-lane accumulation
    // order, bit-identical values.
    auto compact_plan = [&](const std::uint32_t* lidx, std::size_t nl) {
      for (std::size_t a = 0; a < na; ++a) {
        const double* src = b.wcol_.data() + a * L;
        double* dst = b.cwcol_.data() + a * nl;
        for (std::size_t t = 0; t < nl; ++t) dst[t] = src[lidx[t]];
      }
      return model::AggBatchPlan{s.op_.data(), s.scale_.data(),
                                 b.cwcol_.data(), na, nl};
    };

    auto order_id = [&](std::size_t li, std::size_t pos) {
      const std::size_t f = s.active_[li];
      return w0[f] > 0.0 ? ascending_ids_[f][n - 1 - pos]
                         : ascending_ids_[f][pos];
    };
    auto order_value = [&](std::size_t li, std::size_t pos) {
      const std::size_t f = s.active_[li];
      return w0[f] > 0.0 ? ascending_values_[f][n - 1 - pos]
                         : ascending_values_[f][pos];
    };
    for (std::size_t li = 0; li < na; ++li) s.tau_[li] = order_value(li, 0);

    const bool set_monotone = model::IsSetMonotone(profile, w0);
    SearchKernel kernel(s, phi, set_monotone);
    const std::size_t stride_bytes =
        model::kAggStripeWidth * na * sizeof(double);

    std::vector<TopKCollector> collectors;
    collectors.reserve(L);
    for (std::size_t j = 0; j < L; ++j) collectors.emplace_back(k);
    std::vector<SearchResult> res(L);
    const std::uint64_t full_mask =
        L >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << L) - 1);
    std::uint64_t live = full_mask;
    std::size_t items_accessed = 0;
    // Cached collector state + flat counters so the hot per-node lane loops
    // are straight passes over arrays instead of per-lane collector calls.
    // lane_kth_[j] mirrors collectors[j].KthUtility() (refreshed after each
    // Add); `unsat` has bit j set while collector j holds fewer than k, so
    // CanEnter(x) ≡ unsat-bit | (x >= lane_kth_[j]) exactly, NaNs included.
    b.lane_kth_.assign(L, kNegInf);
    b.lane_exp_.assign(L, 0);
    b.lane_gen_.assign(L, 0);
    b.lane_idx_.resize(L);
    b.lane_idx2_.resize(L);
    std::uint64_t unsat = live;

    // Bit-sliced counter accumulation (see BatchScratch): carry-save add of
    // a lane mask into 64 bit planes, amortized O(1) per add, and the exact
    // extraction that folds the planes back into per-lane counts.
    b.exp_planes_.assign(64, 0);
    b.qlen_planes_.assign(64, 0);
    auto plane_add = [](std::uint64_t* planes, std::uint64_t mask) {
      std::uint64_t carry = mask;
      for (std::size_t p = 0; carry != 0; ++p) {
        const std::uint64_t t = planes[p];
        planes[p] = t ^ carry;
        carry = t & carry;
      }
    };
    auto plane_counts = [](std::uint64_t* planes, std::size_t* out) {
      for (std::size_t p = 0; p < 64; ++p) {
        std::uint64_t bits = planes[p];
        planes[p] = 0;
        while (bits != 0) {
          out[LowestLane(bits)] += std::size_t{1} << p;
          bits &= bits - 1;
        }
      }
    };
    // While exp_hi (an upper bound on every lane's expansion count — each
    // node charges a lane at most once) is under the budget, no lane can
    // have crossed it and the per-lane check is skipped entirely; the first
    // node that could cross switches to exact per-lane counters for good.
    std::size_t exp_hi = 0;
    bool exp_exact = false;
    std::size_t qlen_adds = 0;  // Per item step: retain calls that kept lanes.

    // Lane j leaves the walk: freeze its access counter at the shared count
    // (the streams are identical, so this is what its scalar walk read).
    auto finish_lanes = [&](std::uint64_t lanes, bool truncated) {
      while (lanes != 0) {
        const int j = LowestLane(lanes);
        lanes &= lanes - 1;
        res[j].items_accessed = items_accessed;
        if (truncated) res[j].truncated = true;
      }
    };

    auto acquire = [&]() {
      const std::int32_t c = kernel.Acquire();
      if (b.mask_.size() < s.meta_.size()) b.mask_.resize(s.meta_.size(), 0);
      if (b.base_u_.size() < s.meta_.size() * L) {
        b.base_u_.resize(s.meta_.size() * L, 0.0);
      }
      return c;
    };

    // τ-padded bound of arena node `node` for the lanes of `mask`, into
    // b.lane_bound_ (other entries stay stale — callers only read masked
    // lanes). The skip set (count-0 relaxed stripes) depends only on the
    // shared block, so it is lane-uniform — the scalar BoundPlan resolve,
    // batched; an all-zero skip set is dropped to null (no stripe skipped
    // either way) so the common case below can seed. With a null skip the
    // bound's pre-pad dot is exactly the node's cached creation utility
    // (b.base_u_), so the kernels start from the cache instead of
    // re-normalizing and re-dotting the block — the dominant per-call cost
    // on re-evaluations. Sparse masks route through the gather kernel so
    // bound work scales with the node's live-lane count, not the batch
    // width.
    auto eval_bounds = [&](std::int32_t node, std::size_t size,
                           std::size_t slots, std::uint64_t mask) {
      const double* blk = kernel.Block(node);
      const std::uint8_t* skip = nullptr;
      if (s.relaxed_active_ > 0) {
        bool any = false;
        for (std::size_t a = 0; a < na; ++a) {
          b.skip_[a] =
              (s.relax_[a] != 0 && blk[model::kAggStripeWidth * a] == 0.0)
                  ? 1
                  : 0;
          any = any || b.skip_[a] != 0;
        }
        if (any) skip = b.skip_.data();
      }
      const double* u0 =
          skip == nullptr ? b.base_u_.data() + static_cast<std::size_t>(node) * L
                          : nullptr;
      std::size_t nl;
      if (mask == full_mask) {
        nl = L;  // Skip the lane-list build: every lane is live.
      } else {
        nl = 0;
        for (std::uint64_t mm = mask; mm != 0; mm &= mm - 1) {
          b.lane_idx_[nl++] = static_cast<std::uint32_t>(LowestLane(mm));
        }
      }
      if (nl == L) {
        kern.tau_padded_bound_batch(
            plan, blk, size, s.tau_.data(), slots, set_monotone, skip, u0,
            s.pad_.data(), b.raw_norm_.data(), b.lane_u_.data(),
            b.lane_stop_.data(), b.lane_bound_.data());
      } else if (!should_compact(nl)) {
        kern.tau_padded_bound_batch_gather(
            plan, blk, size, s.tau_.data(), slots, set_monotone, skip, u0,
            b.lane_idx_.data(), nl, s.pad_.data(), b.raw_norm_.data(),
            b.lane_u_.data(), b.lane_bound_.data());
      } else {
        // Live-lane compaction: the dense SIMD kernel at width nl, bounds
        // scattered back to the lanes' slots. The shared τ folds run while
        // any compacted lane still gains — exactly the gather twin's
        // stopping rule over the same lane set — and each lane's per-fold
        // bookkeeping is unchanged, so the bound is bit-identical.
        const model::AggBatchPlan cplan = compact_plan(b.lane_idx_.data(), nl);
        const double* cu0 = nullptr;
        if (u0 != nullptr) {
          for (std::size_t t = 0; t < nl; ++t) b.cu0_[t] = u0[b.lane_idx_[t]];
          cu0 = b.cu0_.data();
        }
        kern.tau_padded_bound_batch(
            cplan, blk, size, s.tau_.data(), slots, set_monotone, skip, cu0,
            s.pad_.data(), b.raw_norm_.data(), b.cu_.data(), b.cstop_.data(),
            b.cbound_.data());
        for (std::size_t t = 0; t < nl; ++t) {
          b.lane_bound_[b.lane_idx_[t]] = b.cbound_[t];
        }
      }
    };

    // Dot of the shared normalized raws (already in b.raw_norm_) for the
    // lanes listed in `lidx`, written to out[lidx[t]] — the one routing
    // point between the dense SIMD kernel (full batch), the strided gather
    // (mostly-live nodes), and compact-then-scatter (sparse nodes).
    auto dot_subset = [&](const std::uint32_t* lidx, std::size_t nl,
                          double* out) {
      if (nl == L) {
        kern.dot_batch(plan, b.raw_norm_.data(), nullptr, out);
      } else if (!should_compact(nl)) {
        kern.dot_batch_gather(plan, b.raw_norm_.data(), nullptr, lidx, nl,
                              out);
      } else {
        const model::AggBatchPlan cplan = compact_plan(lidx, nl);
        kern.dot_batch(cplan, b.raw_norm_.data(), nullptr, b.cu_.data());
        for (std::size_t t = 0; t < nl; ++t) out[lidx[t]] = b.cu_[t];
      }
    };

    // Chain-fold utilities of `blk` for the lanes of `mask`, into b.lane_u_.
    auto eval_utilities = [&](const double* blk, std::size_t size,
                              std::uint64_t mask) {
      model::AggRawNormalized(plan, blk, size, b.raw_norm_.data());
      std::size_t nl;
      if (mask == full_mask) {
        nl = L;  // dot_subset's dense path never reads the lane list.
      } else {
        nl = 0;
        for (std::uint64_t mm = mask; mm != 0; mm &= mm - 1) {
          b.lane_idx2_[nl++] = static_cast<std::uint32_t>(LowestLane(mm));
        }
      }
      dot_subset(b.lane_idx2_.data(), nl, b.lane_u_.data());
    };

    // Empty-package η_up seed for every lane, into b.lane_eta_. All counts
    // are 0, so the skip set is the relax mask itself.
    auto eval_empty = [&]() {
      const std::uint8_t* skip =
          s.relaxed_active_ > 0 ? s.relax_.data() : nullptr;
      kern.empty_tau_bound_batch(
          plan, s.tau_.data(), phi, set_monotone, skip, s.pad_.data(),
          b.raw_norm_.data(), b.peek_norm_.data(), b.lane_u_.data(),
          b.lane_peek_.data(), b.lane_stop_.data(), b.lane_eta_.data());
    };

    // Scores the candidate `parent ∪ {t}` for the lanes in `gen` from the
    // chain-fold utilities already in b.lane_u_ — the batched twin of the
    // scalar collect_candidate, per-lane admission and all.
    auto collect = [&](std::int32_t parent, ItemId t, std::uint64_t gen) {
      std::uint64_t enter = 0;
      for (std::uint64_t mm = gen; mm != 0; mm &= mm - 1) {
        const int j = LowestLane(mm);
        ++b.lane_gen_[j];
        const double u = b.lane_u_[j];
        const double x = u + kEps * (1.0 + std::fabs(u));
        // CanEnter, from the cached state: unconditionally true while the
        // lane's collector is unsaturated, else x >= its k-th utility.
        if (((unsat >> j) & 1u) != 0 || x >= b.lane_kth_[j]) {
          enter |= std::uint64_t{1} << j;
        }
      }
      if (enter == 0) return;
      s.items_.clear();
      s.items_.push_back(t);
      for (std::int32_t i = parent; i >= 0; i = s.meta_[i].parent) {
        s.items_.push_back(s.meta_[i].item);
      }
      Package pkg = Package::Of(s.items_);
      if (filter != nullptr && *filter && !(*filter)(pkg)) return;
      double* rb = s.refold_.data();
      kernel.InitBlock(rb);
      for (ItemId id : pkg.items()) kernel.FoldRow(rb, table.RowSpan(id));
      // Canonical ascending-item-id re-fold, normalized once and dotted for
      // the admitted lanes only (b.lane_peek_ doubles as the canonical-
      // utility buffer here).
      model::AggRawNormalized(plan, rb, pkg.size(), b.raw_norm_.data());
      std::size_t nl;
      if (enter == full_mask) {
        nl = L;
      } else {
        nl = 0;
        for (std::uint64_t mm = enter; mm != 0; mm &= mm - 1) {
          b.lane_idx2_[nl++] = static_cast<std::uint32_t>(LowestLane(mm));
        }
      }
      dot_subset(b.lane_idx2_.data(), nl, b.lane_peek_.data());
      for (std::uint64_t mm = enter; mm != 0; mm &= mm - 1) {
        const int j = LowestLane(mm);
        collectors[j].Add(ScoredPackage{pkg, b.lane_peek_[j]});
        b.lane_kth_[j] = collectors[j].KthUtility();
        if (collectors[j].Saturated()) unsat &= ~(std::uint64_t{1} << j);
      }
    };

    // Lemma-3 tally for this group walk, flushed with the group's other
    // counters at finalize.
    [[maybe_unused]] std::uint64_t lemma3_pruned = 0;

    // Q+ retention for every lane of `mset` in one pass: returns the kept
    // mask and folds the node's bound into η_up and |Q+| for kept lanes.
    // Reads the cached k-th utilities, never the collectors.
    auto retain_mask = [&](std::uint64_t mset) {
      std::uint64_t kept = 0;
      const bool ties = limits.expand_on_ties;
      for (std::uint64_t mm = mset; mm != 0; mm &= mm - 1) {
        const int j = LowestLane(mm);
        const double bound = b.lane_bound_[j];
        const double lo = b.lane_kth_[j];
        if (ties ? bound >= lo - kEps : bound > lo + kEps) {
          kept |= std::uint64_t{1} << j;
          if (bound > b.lane_eta_[j]) b.lane_eta_[j] = bound;
        }
      }
      // Each lane bit present in mset but not kept is one Lemma-3 prune —
      // the batched twin of the scalar walk's retain() misses.
      lemma3_pruned += static_cast<std::uint64_t>(
          __builtin_popcountll(mset) - __builtin_popcountll(kept));
      // |Q+| accounting, bit-sliced: the per-lane counts are only consulted
      // by the max_queue overflow check once per item step.
      if (kept != 0) {
        plane_add(b.qlen_planes_.data(), kept);
        ++qlen_adds;
      }
      return kept;
    };

    while (live != 0) {
      for (std::size_t li = 0; li < na && live != 0; ++li) {
        if (s.cursor_[li] >= n) {
          finish_lanes(live, false);
          live = 0;
          break;
        }
        if (items_accessed >= limits.max_items_accessed) {
          finish_lanes(live, true);
          live = 0;
          break;
        }
        const ItemId t = order_id(li, s.cursor_[li]);
        s.tau_[li] = order_value(li, s.cursor_[li]);
        ++s.cursor_[li];
        ++items_accessed;
        if (s.seen_[t] == s.generation_) continue;
        s.seen_[t] = s.generation_;
        if (s.relaxed_active_ > 0) kernel.RetightenNulls(table, t);

        const double* row = table.RowSpan(t);
        eval_empty();
        s.next_q_.clear();
        std::fill_n(b.qlen_planes_.data(), 64, std::uint64_t{0});
        qlen_adds = 0;

        // Expansion of the (implicit) empty package: the singleton {t}.
        {
          const std::int32_t c = acquire();
          double* cb = kernel.Block(c);
          kernel.InitBlock(cb);
          kernel.FoldRow(cb, row);
          eval_utilities(cb, 1, live);
          // The node's bound seed: its lanes' creation utilities (see
          // BatchScratch::base_u_). A full-L copy — dead lanes' stale values
          // are never read.
          std::memcpy(b.base_u_.data() + static_cast<std::size_t>(c) * L,
                      b.lane_u_.data(), L * sizeof(double));
          collect(-1, t, live);
          std::uint64_t kept = 0;
          if (phi > 1) {
            eval_bounds(c, 1, phi - 1, live);
            kept = retain_mask(live);
            if (kept != 0) {
              s.meta_[c] = SearchScratch::NodeMeta{t, -1, 1, 1};
              b.mask_[c] = kept;
              s.next_q_.push_back(c);
            }
          }
          if (kept == 0) kernel.DiscardUnlinked(c);
        }

        for (std::size_t qi = 0; qi < s.q_.size(); ++qi) {
          const std::int32_t idx = s.q_[qi];
          std::uint64_t mset = b.mask_[idx] & live;
          // Per-lane expansion accounting and the max_expansions valve: a
          // lane over budget exits mid-sweep without processing this node,
          // exactly where its scalar walk would have broken off. Until the
          // budget is within reach of exp_hi the accounting is one carry-
          // save plane add; the exact loop takes over permanently from the
          // first node where a lane could cross.
          if (!exp_exact) {
            if (exp_hi < limits.max_expansions) {
              plane_add(b.exp_planes_.data(), mset);
              ++exp_hi;
            } else {
              plane_counts(b.exp_planes_.data(), b.lane_exp_.data());
              exp_exact = true;
            }
          }
          if (exp_exact) {
            for (std::uint64_t mm = mset; mm != 0; mm &= mm - 1) {
              const int j = LowestLane(mm);
              if (++b.lane_exp_[j] > limits.max_expansions) {
                res[j].truncated = true;
                res[j].items_accessed = items_accessed;
                live &= ~(std::uint64_t{1} << j);
                mset &= ~(std::uint64_t{1} << j);
              }
            }
          }
          if (mset == 0) {
            kernel.ReleaseFromQueue(idx);
            continue;
          }
          const std::uint32_t depth = s.meta_[idx].depth;
          if (depth < phi) {
            const std::int32_t c = acquire();
            double* cb = kernel.Block(c);
            std::memcpy(cb, kernel.Block(idx), stride_bytes);
            kernel.FoldRow(cb, row);
            eval_utilities(cb, depth + 1, mset);
            std::memcpy(b.base_u_.data() + static_cast<std::size_t>(c) * L,
                        b.lane_u_.data(), L * sizeof(double));
            collect(idx, t, mset);
            std::uint64_t kept = 0;
            if (depth + 1 < phi) {
              eval_bounds(c, depth + 1, phi - (depth + 1), mset);
              kept = retain_mask(mset);
              if (kept != 0) {
                s.meta_[c] = SearchScratch::NodeMeta{t, idx, depth + 1, 1};
                ++s.meta_[idx].refs;
                b.mask_[c] = kept;
                s.next_q_.push_back(c);
              }
            }
            if (kept == 0) kernel.DiscardUnlinked(c);
          }
          // Re-evaluate the node itself against the tightened τ and η_lo.
          eval_bounds(idx, depth, phi - depth, mset);
          const std::uint64_t keep = retain_mask(mset);
          if (keep != 0) {
            b.mask_[idx] = keep;
            s.next_q_.push_back(idx);
          } else {
            kernel.ReleaseFromQueue(idx);
          }
        }
        std::swap(s.q_, s.next_q_);

        // Per-lane max_queue overflow. Each over-budget lane keeps its
        // max_queue best-bounded nodes under the same (bound, lane-local
        // position) total order the scalar walk selects with, and survivors
        // stay in original order — the shared queue drops a node only when
        // no live lane holds it anymore.
        std::uint64_t over = 0;
        if (qlen_adds > limits.max_queue) {
          // Only now can any lane's |Q+| exceed the cap — materialize the
          // exact counts from the planes and test per lane.
          std::fill(b.lane_qlen_.begin(), b.lane_qlen_.end(), 0);
          plane_counts(b.qlen_planes_.data(), b.lane_qlen_.data());
          for (std::uint64_t mm = live; mm != 0; mm &= mm - 1) {
            const int j = LowestLane(mm);
            if (b.lane_qlen_[j] > limits.max_queue) {
              over |= std::uint64_t{1} << j;
            }
          }
        }
        if (over != 0) {
          std::vector<std::vector<std::pair<double, std::size_t>>> lane_pairs(
              L);
          std::vector<std::vector<std::size_t>> lane_qpos(L);
          for (std::size_t i = 0; i < s.q_.size(); ++i) {
            const std::int32_t idx = s.q_[i];
            const std::uint64_t mm0 = b.mask_[idx] & over;
            if (mm0 == 0) continue;
            eval_bounds(idx, s.meta_[idx].depth,
                        phi - s.meta_[idx].depth, mm0);
            for (std::uint64_t mm = mm0; mm != 0; mm &= mm - 1) {
              const int j = LowestLane(mm);
              lane_pairs[j].emplace_back(b.lane_bound_[j],
                                         lane_pairs[j].size());
              lane_qpos[j].push_back(i);
            }
          }
          for (std::uint64_t mm = over; mm != 0; mm &= mm - 1) {
            const int j = LowestLane(mm);
            res[j].truncated = true;
            auto& pairs = lane_pairs[j];
            std::nth_element(pairs.begin(),
                             pairs.begin() +
                                 static_cast<long>(limits.max_queue),
                             pairs.end(), std::greater<>());
            pairs.resize(limits.max_queue);
            std::vector<std::uint8_t> keep_local(lane_qpos[j].size(), 0);
            for (const auto& kept : pairs) keep_local[kept.second] = 1;
            for (std::size_t p = 0; p < keep_local.size(); ++p) {
              if (!keep_local[p]) {
                b.mask_[s.q_[lane_qpos[j][p]]] &= ~(std::uint64_t{1} << j);
              }
            }
            b.lane_qlen_[j] = limits.max_queue;
          }
          s.next_q_.clear();
          for (std::size_t i = 0; i < s.q_.size(); ++i) {
            const std::int32_t idx = s.q_[i];
            if ((b.mask_[idx] & live) != 0) {
              s.next_q_.push_back(idx);
            } else {
              kernel.ReleaseFromQueue(idx);
            }
          }
          std::swap(s.q_, s.next_q_);
        }

        // Per-lane termination (Algorithm 2 line 8): a saturated lane
        // retires from every further bound check and expansion.
        for (std::uint64_t mm = live; mm != 0; mm &= mm - 1) {
          const int j = LowestLane(mm);
          const double lo = b.lane_kth_[j];
          const double eta = b.lane_eta_[j];
          if (limits.expand_on_ties ? eta < lo - kEps : eta <= lo + kEps) {
            res[j].items_accessed = items_accessed;
            live &= ~(std::uint64_t{1} << j);
          }
        }
      }
    }

    if (!exp_exact) plane_counts(b.exp_planes_.data(), b.lane_exp_.data());
    if constexpr (obs::kMetricsEnabled) {
      auto& sm = SearchMetrics();
      std::uint64_t exp_sum = 0;
      std::uint64_t gen_sum = 0;
      std::uint64_t trunc_sum = 0;
      for (std::size_t j = 0; j < L; ++j) {
        exp_sum += b.lane_exp_[j];
        gen_sum += b.lane_gen_[j];
        if (res[j].truncated) ++trunc_sum;
      }
      sm.batch_walks->Increment();
      sm.batch_lanes->Increment(L);
      sm.lane_occupancy->Observe(static_cast<double>(L));
      sm.expansions->Increment(exp_sum);
      sm.packages->Increment(gen_sum);
      sm.pruned->Increment(lemma3_pruned);
      sm.truncations->Increment(trunc_sum);
    }
    for (std::size_t j = 0; j < L; ++j) {
      res[j].expansions = b.lane_exp_[j];
      res[j].packages_generated = b.lane_gen_[j];
      res[j].packages = std::move(collectors[j]).Take();
      results[lane_ids[j]] = std::move(res[j]);
    }
  };

  for (const auto& group : groups) {
    const std::string& sig = group.first;
    const std::vector<std::size_t>& lanes = group.second;
    if (sig.find_first_not_of('0') == std::string::npos) {
      // No active feature: utility is identically 0 and the result is the
      // deterministic lexicographic head — delegate to the scalar path,
      // which owns that contract.
      for (std::size_t idx : lanes) {
        auto r = Search(*weights[idx], k, limits, filter);
        if (!r.ok()) return r.status();
        results[idx] = std::move(*r);
      }
      continue;
    }
    for (std::size_t start = 0; start < lanes.size();
         start += kMaxBatchLanes) {
      const std::size_t count =
          std::min(kMaxBatchLanes, lanes.size() - start);
      run_group(lanes.data() + start, count);
    }
  }
  return results;
}

}  // namespace topkpkg::topk