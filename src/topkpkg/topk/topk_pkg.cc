#include "topkpkg/topk/topk_pkg.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace topkpkg::topk {

namespace {

constexpr double kEps = 1e-12;
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

using model::AggregateOp;
using model::AggregateState;
using model::IsNull;
using model::ItemId;
using model::Package;
using model::PackageEvaluator;

// A candidate package in the expandable queue Q+.
struct Node {
  Package pkg;
  AggregateState state;
  double utility = 0.0;
};

// Keeps the k best ScoredPackages seen so far (sorted, best first). k is
// small, so insertion into a sorted vector is cheap.
class TopKCollector {
 public:
  explicit TopKCollector(std::size_t k) : k_(k) {}

  void Add(ScoredPackage sp) {
    auto pos = std::upper_bound(
        best_.begin(), best_.end(), sp,
        [](const ScoredPackage& a, const ScoredPackage& b) {
          return BetterThan(a, b);
        });
    best_.insert(pos, std::move(sp));
    if (best_.size() > k_) best_.pop_back();
  }

  // η_lo: utility of the current k-th best (−∞ while fewer than k known).
  double KthUtility() const {
    return best_.size() < k_ ? kNegInf : best_.back().utility;
  }

  std::vector<ScoredPackage> Take() && { return std::move(best_); }

 private:
  std::size_t k_;
  std::vector<ScoredPackage> best_;
};

// Effective per-list value of an item on feature f: the value that both
// drives the sorted-list access order and enters the boundary item τ. Nulls
// behave like 0 for sum/avg/max (they contribute nothing) and like the
// feature maximum for min (they leave the minimum untouched, which is the
// best possible behaviour when a large minimum is desired and the worst when
// a small one is).
double EffectiveValue(double v, AggregateOp op, double max_value) {
  if (!IsNull(v)) return v;
  return op == AggregateOp::kMin ? max_value : 0.0;
}

}  // namespace

bool BetterThan(const ScoredPackage& a, const ScoredPackage& b) {
  if (a.utility != b.utility) return a.utility > b.utility;
  return a.package.items() < b.package.items();
}

double UpperExp(const AggregateState& state, const Vec& tau_row,
                const Vec& weights, std::size_t slots, bool set_monotone) {
  AggregateState padded = state;
  double best = padded.Utility(weights);
  for (std::size_t i = 0; i < slots; ++i) {
    padded.Add(tau_row);
    double u = padded.Utility(weights);
    if (!set_monotone && u <= best) return best;  // Lemma 3: greedy stop.
    best = std::max(best, u);
  }
  return best;
}

TopKPkgSearch::TopKPkgSearch(const model::PackageEvaluator* evaluator)
    : evaluator_(evaluator) {
  const model::ItemTable& table = evaluator->table();
  const model::Profile& profile = evaluator->profile();
  const std::size_t m = profile.num_features();
  const std::size_t n = table.num_items();
  ascending_ids_.resize(m);
  ascending_values_.resize(m);
  for (std::size_t f = 0; f < m; ++f) {
    if (profile.op(f) == AggregateOp::kNull) continue;
    const double max_value = table.MaxFeatureValue(f);
    std::vector<ItemId> ids(n);
    Vec evals(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids[i] = static_cast<ItemId>(i);
      evals[i] = EffectiveValue(table.value(static_cast<ItemId>(i), f),
                                profile.op(f), max_value);
    }
    std::sort(ids.begin(), ids.end(), [&](ItemId a, ItemId b) {
      if (evals[a] != evals[b]) return evals[a] < evals[b];
      return a < b;
    });
    Vec sorted_vals(n);
    for (std::size_t i = 0; i < n; ++i) sorted_vals[i] = evals[ids[i]];
    ascending_ids_[f] = std::move(ids);
    ascending_values_[f] = std::move(sorted_vals);
  }
}

Result<SearchResult> TopKPkgSearch::Search(const Vec& weights, std::size_t k,
                                           const SearchLimits& limits,
                                           const PackageFilter* filter) const {
  const PackageEvaluator& ev = *evaluator_;
  const model::ItemTable& table = ev.table();
  const model::Profile& profile = ev.profile();
  const std::size_t m = profile.num_features();
  const std::size_t n = table.num_items();
  const std::size_t phi = ev.phi();

  if (k == 0) return Status::InvalidArgument("TopKPkgSearch: k must be >= 1");
  if (weights.size() != m) {
    return Status::InvalidArgument("TopKPkgSearch: weight dimension mismatch");
  }
  if (phi == 0) {
    return Status::InvalidArgument("TopKPkgSearch: phi must be >= 1");
  }

  SearchResult result;

  // Active features: nonzero weight and a real aggregation.
  std::vector<std::size_t> active;
  for (std::size_t f = 0; f < m; ++f) {
    if (weights[f] != 0.0 && profile.op(f) != AggregateOp::kNull) {
      active.push_back(f);
    }
  }
  if (active.empty()) {
    // Utility is identically 0; any k packages are top-k. Return the first
    // k singletons for determinism.
    for (std::size_t i = 0; i < n && result.packages.size() < k; ++i) {
      Package p = Package::Of({static_cast<ItemId>(i)});
      ++result.packages_generated;
      if (filter != nullptr && *filter && !(*filter)(p)) continue;
      result.packages.push_back(ScoredPackage{std::move(p), 0.0});
    }
    return result;
  }

  // Sorted lists L: the precomputed ascending per-feature orders, walked
  // backwards for positive weights (descending desirability) and forwards
  // for negative ones ("a sorted list can be accessed both forwards and
  // backwards", Sec. 4).
  auto order_id = [&](std::size_t li, std::size_t pos) {
    const std::size_t f = active[li];
    return weights[f] > 0.0 ? ascending_ids_[f][n - 1 - pos]
                            : ascending_ids_[f][pos];
  };
  auto order_value = [&](std::size_t li, std::size_t pos) {
    const std::size_t f = active[li];
    return weights[f] > 0.0 ? ascending_values_[f][n - 1 - pos]
                            : ascending_values_[f][pos];
  };

  // Boundary item τ: per active feature the effective value at the list
  // frontier (initialized to the best value, an upper bound on every item);
  // inactive features are null and never contribute.
  Vec tau_row(m, model::kNullValue);
  for (std::size_t li = 0; li < active.size(); ++li) {
    tau_row[active[li]] = order_value(li, 0);
  }

  const bool set_monotone = model::IsSetMonotone(profile, weights);

  TopKCollector collector(k);
  auto collect = [&](const Package& pkg, double utility) {
    if (filter != nullptr && *filter && !(*filter)(pkg)) return;
    collector.Add(ScoredPackage{pkg, utility});
  };
  std::vector<Node> q_plus;  // Expandable non-empty packages.
  std::vector<bool> seen(n, false);

  // Upper bound for packages made purely of unseen items: pad τ into an
  // empty package, forcing at least one item (packages are non-empty) and
  // taking the best prefix.
  auto empty_upper = [&]() {
    AggregateState state = ev.NewState();
    double best = kNegInf;
    for (std::size_t i = 0; i < phi; ++i) {
      state.Add(tau_row);
      best = std::max(best, state.Utility(weights));
      if (!set_monotone && i > 0) {
        // Marginals are non-increasing (Lemma 3); once a pad stops helping,
        // further pads cannot.
        AggregateState next = state;
        next.Add(tau_row);
        if (next.Utility(weights) <= state.Utility(weights)) break;
      }
    }
    return best;
  };

  std::vector<std::size_t> cursor(active.size(), 0);
  bool exhausted = false;
  while (!exhausted) {
    for (std::size_t li = 0; li < active.size() && !exhausted; ++li) {
      if (cursor[li] >= n) {
        // Every item appears in every list, so one exhausted list means all
        // items were accessed.
        exhausted = true;
        break;
      }
      if (result.items_accessed >= limits.max_items_accessed) {
        result.truncated = true;
        exhausted = true;
        break;
      }
      const ItemId t = order_id(li, cursor[li]);
      tau_row[active[li]] = order_value(li, cursor[li]);
      ++cursor[li];
      ++result.items_accessed;
      if (seen[t]) continue;
      seen[t] = true;

      // --- Algorithm 4: expandPackages(U, Q, t, τ) — with one fix and one
      // strengthening over the paper's pseudo-code:
      //   * every child p ∪ {t} becomes a result candidate, not only
      //     utility-improving ones (with non-monotone aggregates such as avg
      //     a true rank-2+ package can score below its own prefix, so the
      //     strict-improvement filter of Alg. 4 line 3 loses it);
      //   * a package stays in Q+ only while its upper-exp bound can still
      //     beat the current k-th best η_lo. This subsumes the paper's
      //     Q− test (τ-padding no longer improves) and is what keeps Q+
      //     from growing exponentially with the accessed-item count.
      const Vec row = table.Row(t);
      double eta_up = empty_upper();
      std::vector<Node> next_q_plus;
      next_q_plus.reserve(q_plus.size() + 8);
      auto retain = [&](double bound) {
        double lo = collector.KthUtility();
        return limits.expand_on_ties ? bound >= lo - kEps : bound > lo + kEps;
      };

      // Expansion of the (implicit) empty package: singletons are always
      // generated, since every non-empty package descends from one.
      {
        Node child{Package::Of({t}), ev.NewState(), 0.0};
        child.state.Add(row);
        child.utility = child.state.Utility(weights);
        collect(child.pkg, child.utility);
        ++result.packages_generated;
        if (phi > 1) {
          double bound = UpperExp(child.state, tau_row, weights, phi - 1,
                                  set_monotone);
          if (retain(bound)) {
            eta_up = std::max(eta_up, bound);
            next_q_plus.push_back(std::move(child));
          }
        }
      }

      for (Node& node : q_plus) {
        ++result.expansions;
        if (result.expansions > limits.max_expansions) {
          result.truncated = true;
          exhausted = true;
          break;
        }
        // Extend node with the new item t (t is new, so never contained).
        if (node.pkg.size() < phi) {
          AggregateState child_state = node.state;
          child_state.Add(row);
          const double child_u = child_state.Utility(weights);
          Node child{node.pkg.With(t), std::move(child_state), child_u};
          collect(child.pkg, child.utility);
          ++result.packages_generated;
          if (child.pkg.size() < phi) {
            double bound = UpperExp(child.state, tau_row, weights,
                                    phi - child.pkg.size(), set_monotone);
            if (retain(bound)) {
              eta_up = std::max(eta_up, bound);
              next_q_plus.push_back(std::move(child));
            }
          }
        }
        // Re-evaluate node itself against the (tightened) τ and η_lo.
        double bound = UpperExp(node.state, tau_row, weights,
                                phi - node.pkg.size(), set_monotone);
        if (retain(bound)) {
          eta_up = std::max(eta_up, bound);
          next_q_plus.push_back(std::move(node));
        }
      }
      q_plus = std::move(next_q_plus);

      if (q_plus.size() > limits.max_queue) {
        // Degrade gracefully: keep the packages with the largest upper
        // bounds. The result may no longer be exact. Bounds are computed
        // once per node, then the selection works on cached values.
        result.truncated = true;
        std::vector<std::pair<double, std::size_t>> bounds;
        bounds.reserve(q_plus.size());
        for (std::size_t i = 0; i < q_plus.size(); ++i) {
          bounds.emplace_back(
              UpperExp(q_plus[i].state, tau_row, weights,
                       phi - q_plus[i].pkg.size(), set_monotone),
              i);
        }
        std::nth_element(bounds.begin(),
                         bounds.begin() + static_cast<long>(limits.max_queue),
                         bounds.end(), std::greater<>());
        bounds.resize(limits.max_queue);
        std::vector<Node> kept;
        kept.reserve(limits.max_queue);
        for (const auto& [bound, i] : bounds) {
          kept.push_back(std::move(q_plus[i]));
        }
        q_plus = std::move(kept);
      }

      // Termination test (Algorithm 2 line 8): no package that still
      // involves an unseen item can beat the current k-th best. In
      // expand_on_ties mode equal-bound packages must still be surfaced, so
      // the test is strict (exhaustion of the lists bounds the search).
      double lo = collector.KthUtility();
      if (limits.expand_on_ties ? eta_up < lo - kEps : eta_up <= lo + kEps) {
        exhausted = true;
        break;
      }
    }
  }

  result.packages = std::move(collector).Take();
  return result;
}

}  // namespace topkpkg::topk
