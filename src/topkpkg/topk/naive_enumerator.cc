#include "topkpkg/topk/naive_enumerator.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace topkpkg::topk {

namespace {

using model::AggregateState;
using model::ItemId;
using model::Package;

}  // namespace

std::size_t NaivePackageEnumerator::PackageSpaceSize(std::size_t n,
                                                     std::size_t phi) {
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  std::size_t total = 0;
  std::size_t binom = 1;  // C(n, 0)
  for (std::size_t i = 1; i <= std::min(n, phi); ++i) {
    // binom = C(n, i); watch for overflow.
    if (binom > kMax / (n - i + 1)) return kMax;
    binom = binom * (n - i + 1) / i;
    if (total > kMax - binom) return kMax;
    total += binom;
  }
  return total;
}

Result<SearchResult> NaivePackageEnumerator::Search(
    const Vec& weights, std::size_t k, std::size_t max_packages) const {
  const model::PackageEvaluator& ev = *evaluator_;
  const std::size_t n = ev.table().num_items();
  const std::size_t phi = ev.phi();
  if (k == 0) {
    return Status::InvalidArgument("NaivePackageEnumerator: k must be >= 1");
  }
  if (PackageSpaceSize(n, phi) > max_packages) {
    return Status::ResourceExhausted(
        "NaivePackageEnumerator: package space too large (" +
        std::to_string(n) + " items, phi=" + std::to_string(phi) + ")");
  }

  SearchResult result;
  std::vector<ScoredPackage> best;

  auto add_candidate = [&](const std::vector<ItemId>& current,
                           double utility) {
    ScoredPackage sp{Package::Of(current), utility};
    auto pos = std::upper_bound(best.begin(), best.end(), sp,
                                [](const ScoredPackage& a,
                                   const ScoredPackage& b) {
                                  return BetterThan(a, b);
                                });
    best.insert(pos, std::move(sp));
    if (best.size() > k) best.pop_back();
  };

  // The shared lexicographic walk (model/package.h), reusing the
  // incremental aggregate state along the recursion spine: states[d] is the
  // aggregate of the current chain's length-d prefix, trimmed on backtrack
  // (pre-order guarantees the prefix states stay valid).
  std::vector<AggregateState> states;
  states.push_back(ev.NewState());
  model::ForEachPackageLexicographic(
      n, phi, [&](const std::vector<ItemId>& current) {
        while (states.size() > current.size()) states.pop_back();
        AggregateState state = states.back();
        state.Add(ev.table().Row(current.back()));
        ++result.packages_generated;
        add_candidate(current, state.Utility(weights));
        states.push_back(std::move(state));
        return true;
      });

  result.packages = std::move(best);
  return result;
}

}  // namespace topkpkg::topk
