#include "topkpkg/topk/naive_enumerator.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace topkpkg::topk {

namespace {

using model::AggregateState;
using model::ItemId;
using model::Package;

}  // namespace

std::size_t NaivePackageEnumerator::PackageSpaceSize(std::size_t n,
                                                     std::size_t phi) {
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  std::size_t total = 0;
  std::size_t binom = 1;  // C(n, 0)
  for (std::size_t i = 1; i <= std::min(n, phi); ++i) {
    // binom = C(n, i); watch for overflow.
    if (binom > kMax / (n - i + 1)) return kMax;
    binom = binom * (n - i + 1) / i;
    if (total > kMax - binom) return kMax;
    total += binom;
  }
  return total;
}

Result<SearchResult> NaivePackageEnumerator::Search(
    const Vec& weights, std::size_t k, std::size_t max_packages) const {
  const model::PackageEvaluator& ev = *evaluator_;
  const std::size_t n = ev.table().num_items();
  const std::size_t phi = ev.phi();
  if (k == 0) {
    return Status::InvalidArgument("NaivePackageEnumerator: k must be >= 1");
  }
  if (PackageSpaceSize(n, phi) > max_packages) {
    return Status::ResourceExhausted(
        "NaivePackageEnumerator: package space too large (" +
        std::to_string(n) + " items, phi=" + std::to_string(phi) + ")");
  }

  SearchResult result;
  std::vector<ScoredPackage> best;

  // Depth-first enumeration of subsets in lexicographic item order, reusing
  // the incremental aggregate state along the recursion spine.
  std::vector<ItemId> current;
  std::vector<AggregateState> states;
  states.push_back(ev.NewState());

  auto add_candidate = [&](double utility) {
    ScoredPackage sp{Package::Of(current), utility};
    auto pos = std::upper_bound(best.begin(), best.end(), sp,
                                [](const ScoredPackage& a,
                                   const ScoredPackage& b) {
                                  return BetterThan(a, b);
                                });
    best.insert(pos, std::move(sp));
    if (best.size() > k) best.pop_back();
  };

  // Iterative DFS over the first-item index to avoid deep recursion.
  struct Frame {
    std::size_t next;  // Next item id to try adding.
  };
  std::vector<Frame> stack{{0}};
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= n || current.size() >= phi) {
      stack.pop_back();
      if (!current.empty()) current.pop_back();
      states.pop_back();
      continue;
    }
    const ItemId t = static_cast<ItemId>(frame.next++);
    AggregateState state = states.back();
    state.Add(ev.table().Row(t));
    current.push_back(t);
    ++result.packages_generated;
    add_candidate(state.Utility(weights));
    states.push_back(std::move(state));
    stack.push_back(Frame{static_cast<std::size_t>(t) + 1});
  }

  result.packages = std::move(best);
  return result;
}

}  // namespace topkpkg::topk
