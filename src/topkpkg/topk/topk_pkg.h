#ifndef TOPKPKG_TOPK_TOPK_PKG_H_
#define TOPKPKG_TOPK_TOPK_PKG_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "topkpkg/common/execution_options.h"
#include "topkpkg/common/status.h"
#include "topkpkg/common/vec.h"
#include "topkpkg/model/package.h"
#include "topkpkg/model/utility.h"

namespace topkpkg::topk {

// Safety valves for the branch-and-bound search. With the defaults the
// search is exact; `max_expansions` bounds the total number of
// package-expansion steps so a pathological instance degrades into a
// truncated (best-effort) result instead of an out-of-memory run.
struct SearchLimits {
  std::size_t max_expansions = 50'000'000;
  // Budget on sorted-list accesses. The paper's composite boundary item τ
  // (the per-feature frontier maxima) can stay far above any real package
  // when several independent features carry weight, forcing the exact search
  // to walk most of the lists before η_up collapses; interactive callers cap
  // the walk and accept a truncated (head-of-lists) result instead.
  std::size_t max_items_accessed = std::numeric_limits<std::size_t>::max();
  // Upper bound on |Q+|; when exceeded, the least-promising expandable
  // packages (smallest upper bound) are dropped and the result is marked
  // truncated.
  std::size_t max_queue = 1'000'000;
  // Packages are kept expandable only while their upper bound strictly
  // beats the current k-th best utility. When aggregates plateau (max/min
  // tie constantly) a package tied exactly at the boundary may then resolve
  // differently from the brute-force oracle's deterministic tie-break.
  // Setting this retains and surfaces boundary ties too — exact for every
  // profile including ties — at the cost of a larger search frontier.
  bool expand_on_ties = false;
};

// One ranked package.
struct ScoredPackage {
  model::Package package;
  double utility = 0.0;
};

struct SearchResult {
  // Top-k packages, best first; ties broken by ascending item-id sequence
  // (the deterministic package-ID tie-breaker of Sec. 2.1).
  std::vector<ScoredPackage> packages;
  bool truncated = false;          // A safety valve fired; may be inexact.
  std::size_t items_accessed = 0;  // Sorted-list getNext() calls.
  std::size_t packages_generated = 0;
  std::size_t expansions = 0;      // Q+ iterations (work measure).
};

// Deterministic ordering used everywhere packages are ranked: higher utility
// first, then lexicographically smaller item-id sequence.
bool BetterThan(const ScoredPackage& a, const ScoredPackage& b);

// Internal per-call kernel over a SearchScratch (defined in topk_pkg.cc);
// named here only so SearchScratch can befriend it.
class SearchKernel;

// Reusable working memory of one TopKPkgSearch::Search call. Everything the
// steady-state inner loop touches lives here: the slab node arena (packages
// encoded as parent-pointer chains, aggregates as flat [count,sum,min,max]
// stripes), the ping-pong Q+ index buffers, the UpperExp pad accumulators,
// and the generation-counter seen bitset. Capacities persist across calls —
// even across calls against different search objects, evaluators, or
// dimensions — so after warm-up a Search() performs zero heap allocations
// per expansion. Not thread-safe: use one scratch per thread (Search()
// defaults to a thread_local instance when none is passed).
class SearchScratch {
 public:
  SearchScratch() = default;
  SearchScratch(const SearchScratch&) = delete;
  SearchScratch& operator=(const SearchScratch&) = delete;

 private:
  friend class TopKPkgSearch;
  friend class SearchKernel;

  // One arena node: the package is the item chain to the root, its
  // aggregates live in the parallel slab `agg_` at the same index. `refs`
  // counts live children plus one while the node sits in Q+; a node's slot
  // is recycled (cascading up the chain) when it leaves Q+ with no live
  // descendants, so the arena's footprint tracks the live frontier, not the
  // total number of packages generated.
  struct NodeMeta {
    model::ItemId item = 0;
    std::int32_t parent = -1;  // Arena index of the parent; -1 = root.
    std::uint32_t depth = 0;   // Package size along the chain.
    std::uint32_t refs = 0;
  };

  std::vector<NodeMeta> meta_;
  std::vector<double> agg_;  // meta_[i]'s block at agg_[i * 4 * #active].
  std::vector<std::int32_t> free_;

  // Per-call evaluation plan over the active features (nonzero weight, real
  // aggregation), ascending by feature id.
  std::vector<std::size_t> active_;
  std::vector<model::AggregateOp> op_;
  std::vector<double> weight_;
  std::vector<double> scale_;
  std::vector<double> tau_;  // Boundary item τ, effective values.
  std::vector<std::size_t> cursor_;

  // Null-aware bound relaxation: flags the min-aggregated negative-weight
  // features over nullable columns whose count-0 contribution (exactly 0)
  // must be carried explicitly in upper bounds, and the per-bound resolved
  // weight scratch (see AggResolveBoundWeights in model/aggregate_kernel.h).
  // The relaxation re-tightens mid-walk: `null_left_` counts each relaxed
  // feature's not-yet-accessed null items, and once it hits 0 every package
  // extension folds a real value there, so the plain τ arithmetic is
  // admissible again and the relax bit is cleared (`relaxed_active_` is the
  // number of still-relaxed features, the bound code's fast-path gate).
  std::vector<std::uint8_t> relax_;
  std::vector<double> bound_weight_;
  std::vector<std::size_t> null_left_;
  std::size_t relaxed_active_ = 0;

  // Q+ double buffer: each round-robin step drains q_ into next_q_ and
  // swaps, reproducing the reference rebuild order without reallocating.
  std::vector<std::int32_t> q_;
  std::vector<std::int32_t> next_q_;

  // UpperExp pad accumulators (one [count,sum,min,max] block).
  std::vector<double> pad_;

  // Seen-items set cleared in O(1) by bumping generation_ instead of
  // re-zeroing n bits per Search() call.
  std::vector<std::uint32_t> seen_;
  std::uint32_t generation_ = 0;

  // max_queue overflow selection + keep markers.
  std::vector<std::pair<double, std::size_t>> bounds_;
  std::vector<std::uint8_t> marks_;

  // Item-id assembly buffer for materializing collected packages.
  std::vector<model::ItemId> items_;

  // Aggregate block for the canonical re-fold of collected candidates: the
  // chain folds accumulate in access order, but the utility a candidate is
  // *ranked* by is re-folded in ascending item-id order — the oracle's fold
  // order — so tied-as-exact-reals utilities round to the same bits in both
  // and the tie order matches the oracle on any data, not just when the
  // utilities happen to be FP-identical.
  std::vector<double> refold_;

  // True while a Search() call is running on this scratch. A nested call
  // that lands on a busy scratch (e.g. a PackageFilter callback invoking
  // another Search with the default thread_local scratch) falls back to a
  // private one instead of corrupting the outer call's live arena.
  bool in_use_ = false;
};

// A batched walk scores at most this many weight vectors ("lanes") per
// shared frontier: per-node lane membership is one 64-bit mask word.
// SearchBatch chunks wider pools internally.
inline constexpr std::size_t kMaxBatchLanes = 64;

// Reusable working memory of one TopKPkgSearch::SearchBatch call. The shared
// walk reuses the scalar SearchScratch wholesale (slab arena, per-call plan,
// τ/cursors, seen set, ping-pong queue buffers); the members below add the
// lane dimension: per-node active-lane masks, the column-major lane weights,
// and the lane-wide evaluation buffers the batched aggregate kernels write
// into. Same reuse and thread-safety contract as SearchScratch.
class BatchScratch {
 public:
  BatchScratch() = default;
  BatchScratch(const BatchScratch&) = delete;
  BatchScratch& operator=(const BatchScratch&) = delete;

 private:
  friend class TopKPkgSearch;

  SearchScratch s_;
  std::vector<std::uint64_t> mask_;      // Per arena node: active-lane bits.
  std::vector<double> wcol_;             // Column-major lane weights, na × W.
  std::vector<double> raw_norm_;         // Shared normalized raws, na.
  std::vector<double> peek_norm_;        // Shared normalized peek raws, na.
  std::vector<std::uint8_t> skip_;       // Shared bound skip set, na.
  std::vector<double> lane_u_;           // Per-lane utilities, W.
  std::vector<double> lane_peek_;        // Per-lane peek/canonical values, W.
  std::vector<double> lane_bound_;       // Per-lane τ-padded bounds, W.
  std::vector<double> lane_eta_;         // Per-lane η_up, W.
  std::vector<std::uint8_t> lane_stop_;  // Per-lane greedy-stop flags, W.
  std::vector<std::size_t> lane_qlen_;   // Per-lane |Q+|, W.
  // Cached per-lane collector state + flat work counters: the sweep's
  // per-node lane loops read/increment these branchlessly instead of
  // calling into the collectors per (node, lane).
  std::vector<double> lane_kth_;         // collectors[j].KthUtility(), W.
  std::vector<std::size_t> lane_exp_;    // Per-lane expansions, W.
  std::vector<std::size_t> lane_gen_;    // Per-lane packages generated, W.
  // Compact live-lane index lists for the gather kernels (masks thin out as
  // lanes prune, so most nodes touch a fraction of the batch width). Two
  // buffers because a node's bound evaluation and its candidate's admission
  // subset are live at the same time.
  std::vector<std::uint32_t> lane_idx_;  // Node-mask lane list, W.
  std::vector<std::uint32_t> lane_idx2_; // Admission-subset lane list, W.
  // Live-lane compaction staging (ExecutionOptions::lane_compact_threshold):
  // sparse nodes re-pack their live lanes' wcol columns into this dense
  // block and evaluate through the unit-stride SIMD kernels at the
  // compacted width, scattering results back through the lane index list.
  std::vector<double> cwcol_;            // Compacted lane weights, na × W.
  std::vector<double> cu_;               // Compacted utilities, W.
  std::vector<double> cbound_;           // Compacted bounds, W.
  std::vector<std::uint8_t> cstop_;      // Compacted stop flags, W.
  std::vector<double> cu0_;              // Compacted bound seeds, W.
  // Bit-sliced per-lane counters: plane p holds bit p of every lane's count,
  // so charging a node to all lanes of its mask is an amortized-O(1)
  // carry-save add instead of a pop-every-bit loop. The exact per-lane
  // counts are materialized only when a budget (max_expansions / max_queue)
  // comes within reach — until then no lane can have crossed it, because a
  // lane's count is bounded by the number of adds.
  std::vector<std::uint64_t> exp_planes_;   // Expansion counts, 64 planes.
  std::vector<std::uint64_t> qlen_planes_;  // |Q+| counts, 64 planes.
  // Per arena node: the lanes' chain-fold utilities at creation (W doubles
  // per node, parallel to mask_). A node's τ-padded bound starts from its
  // plain utility — a τ-independent value — so every re-evaluation of the
  // node against a tightened τ seeds the bound kernels from this cache
  // instead of re-normalizing and re-dotting the block. Lanes outside the
  // node's creation mask hold stale values, which is fine: eval masks only
  // ever shrink, so a lane's seed is read only if it was evaluated at
  // creation.
  std::vector<double> base_u_;
  bool in_use_ = false;
};

// Algorithm 2 (Top-k-Pkg): top-k packages of size <= evaluator.phi() for a
// fixed weight vector. Items are sorted per active feature by marginal
// desirability (descending value for positive weight, ascending for
// negative; nulls last), accessed round-robin; the boundary vector τ of
// last-accessed values yields an upper bound on every package still
// containing unseen items (Algorithm 3, `upper-exp`), and candidate packages
// are expanded with each newly accessed item (Algorithm 4) using the
// improvement test U(p ∪ {t}) > U(p) and the two-queue Q+/Q− pruning. The
// search stops as soon as the upper bound η_up falls to the current k-th
// best utility η_lo.
class TopKPkgSearch {
 public:
  // `evaluator` must outlive the search object. The constructor pre-sorts
  // the per-feature item lists once (Sec. 4: "to facilitate efficient
  // processing over different weight vectors, we order items based on their
  // utility w.r.t. each individual feature"); Search() then walks them
  // forwards or backwards depending on the weight signs, so repeated
  // searches over many sampled weight vectors pay no re-sorting cost.
  explicit TopKPkgSearch(const model::PackageEvaluator* evaluator);

  // Sec. 7 extension: an optional schema predicate over candidate packages
  // ("at least two books must be novels"). Non-passing packages are still
  // expanded — a failing package can extend into a passing one — but never
  // enter the result.
  using PackageFilter = std::function<bool(const model::Package&)>;

  // `scratch` is the call's working memory; pass one to pin reuse to a
  // caller-owned arena (e.g. one per worker thread, or in tests), or leave
  // it null to reuse a thread_local scratch automatically. The result is
  // identical either way, and independent of any state a previous Search()
  // left in the scratch.
  Result<SearchResult> Search(const Vec& weights, std::size_t k,
                              const SearchLimits& limits = {},
                              const PackageFilter* filter = nullptr,
                              SearchScratch* scratch = nullptr) const;

  // Batched Algorithm 2: the top-k searches of many weight vectors run as
  // shared branch-and-bound walks. Weight vectors are grouped by access
  // signature (per feature: inactive / positive / negative), because a
  // group's members share the exact item access order, boundary vector τ,
  // and relax mask; each group then runs ONE walk that expands every
  // frontier node once and evaluates utilities and bounds for all its lanes
  // through the batched aggregate kernels (model/aggregate_kernel.h). A node
  // stays in the shared Q+ while any lane's bound admits it, and per-node
  // lane masks keep each lane's view of the queue exactly the subsequence
  // its scalar walk would hold — so results[i] is bit-identical to
  // Search(*weights[i], ...): packages, utilities, tie order, truncation
  // flags and all counters (search_batch_property_test enforces this).
  // Groups wider than kMaxBatchLanes are chunked; entries must be non-null.
  //
  // `exec` selects only how the lane arithmetic runs — the SIMD kernel
  // suite (ExecutionOptions::simd) and the live-lane compaction threshold
  // (ExecutionOptions::lane_compact_threshold); its threading fields are
  // ignored here. Every setting is bit-identical per lane.
  Result<std::vector<SearchResult>> SearchBatch(
      const std::vector<const Vec*>& weights, std::size_t k,
      const SearchLimits& limits = {}, const PackageFilter* filter = nullptr,
      BatchScratch* scratch = nullptr,
      const ExecutionOptions& exec = {}) const;

 private:
  const model::PackageEvaluator* evaluator_;
  // Per feature: item ids ascending by "effective" value (nulls folded per
  // aggregate semantics) plus the parallel value array.
  std::vector<std::vector<model::ItemId>> ascending_ids_;
  std::vector<Vec> ascending_values_;
  // Per feature: 1 iff the column contains any null value. Nullable
  // min-aggregated features with negative weight need the null-aware bound
  // relaxation (a count-0 min contributes 0, which no τ padding represents);
  // null-free columns keep the tighter plain τ arithmetic.
  std::vector<std::uint8_t> feature_has_null_;
  // Per feature: total null items, seeding the walk's remaining-unseen-null
  // counters so the relaxation can re-tighten once the last null is accessed.
  std::vector<std::size_t> feature_null_count_;
};

// Algorithm 3 (`upper-exp`): upper-bounds the utility achievable by
// extending `state` with up to `slots` copies of the imaginary boundary item
// `tau_row`; for set-monotone U all slots are filled, otherwise padding
// stops at the first non-positive marginal gain (Lemma 3 makes the greedy
// stop correct). This is the public reference entry point over a full
// AggregateState; it and the search kernel's scratch-resident twin both
// delegate to the one implementation in model/aggregate_kernel.h
// (AggTauPaddedBound), so their arithmetic cannot drift.
//
// `nullable_columns`, when provided (per-feature: 1 iff the column may hold
// nulls), enables the null-aware relaxation for min-aggregated features with
// negative weight: a package with no non-null value on such a feature
// contributes exactly 0 there — more than any τ-padded minimum under a
// negative weight — so those features' bound contribution is floored at the
// count-0 value. Without it the bound is NOT admissible for packages of
// null items on such features (the pre-kernel exactness gap).
double UpperExp(const model::AggregateState& state, const Vec& tau_row,
                const Vec& weights, std::size_t slots, bool set_monotone,
                const std::vector<std::uint8_t>* nullable_columns = nullptr);

}  // namespace topkpkg::topk

#endif  // TOPKPKG_TOPK_TOPK_PKG_H_
