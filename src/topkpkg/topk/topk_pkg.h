#ifndef TOPKPKG_TOPK_TOPK_PKG_H_
#define TOPKPKG_TOPK_TOPK_PKG_H_

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "topkpkg/common/status.h"
#include "topkpkg/common/vec.h"
#include "topkpkg/model/package.h"
#include "topkpkg/model/utility.h"

namespace topkpkg::topk {

// Safety valves for the branch-and-bound search. With the defaults the
// search is exact; `max_expansions` bounds the total number of
// package-expansion steps so a pathological instance degrades into a
// truncated (best-effort) result instead of an out-of-memory run.
struct SearchLimits {
  std::size_t max_expansions = 50'000'000;
  // Budget on sorted-list accesses. The paper's composite boundary item τ
  // (the per-feature frontier maxima) can stay far above any real package
  // when several independent features carry weight, forcing the exact search
  // to walk most of the lists before η_up collapses; interactive callers cap
  // the walk and accept a truncated (head-of-lists) result instead.
  std::size_t max_items_accessed = std::numeric_limits<std::size_t>::max();
  // Upper bound on |Q+|; when exceeded, the least-promising expandable
  // packages (smallest upper bound) are dropped and the result is marked
  // truncated.
  std::size_t max_queue = 1'000'000;
  // Packages are kept expandable only while their upper bound strictly
  // beats the current k-th best utility. When aggregates plateau (max/min
  // tie constantly) a package tied exactly at the boundary may then resolve
  // differently from the brute-force oracle's deterministic tie-break.
  // Setting this retains and surfaces boundary ties too — exact for every
  // profile including ties — at the cost of a larger search frontier.
  bool expand_on_ties = false;
};

// One ranked package.
struct ScoredPackage {
  model::Package package;
  double utility = 0.0;
};

struct SearchResult {
  // Top-k packages, best first; ties broken by ascending item-id sequence
  // (the deterministic package-ID tie-breaker of Sec. 2.1).
  std::vector<ScoredPackage> packages;
  bool truncated = false;          // A safety valve fired; may be inexact.
  std::size_t items_accessed = 0;  // Sorted-list getNext() calls.
  std::size_t packages_generated = 0;
  std::size_t expansions = 0;      // Q+ iterations (work measure).
};

// Deterministic ordering used everywhere packages are ranked: higher utility
// first, then lexicographically smaller item-id sequence.
bool BetterThan(const ScoredPackage& a, const ScoredPackage& b);

// Algorithm 2 (Top-k-Pkg): top-k packages of size <= evaluator.phi() for a
// fixed weight vector. Items are sorted per active feature by marginal
// desirability (descending value for positive weight, ascending for
// negative; nulls last), accessed round-robin; the boundary vector τ of
// last-accessed values yields an upper bound on every package still
// containing unseen items (Algorithm 3, `upper-exp`), and candidate packages
// are expanded with each newly accessed item (Algorithm 4) using the
// improvement test U(p ∪ {t}) > U(p) and the two-queue Q+/Q− pruning. The
// search stops as soon as the upper bound η_up falls to the current k-th
// best utility η_lo.
class TopKPkgSearch {
 public:
  // `evaluator` must outlive the search object. The constructor pre-sorts
  // the per-feature item lists once (Sec. 4: "to facilitate efficient
  // processing over different weight vectors, we order items based on their
  // utility w.r.t. each individual feature"); Search() then walks them
  // forwards or backwards depending on the weight signs, so repeated
  // searches over many sampled weight vectors pay no re-sorting cost.
  explicit TopKPkgSearch(const model::PackageEvaluator* evaluator);

  // Sec. 7 extension: an optional schema predicate over candidate packages
  // ("at least two books must be novels"). Non-passing packages are still
  // expanded — a failing package can extend into a passing one — but never
  // enter the result.
  using PackageFilter = std::function<bool(const model::Package&)>;

  Result<SearchResult> Search(const Vec& weights, std::size_t k,
                              const SearchLimits& limits = {},
                              const PackageFilter* filter = nullptr) const;

 private:
  const model::PackageEvaluator* evaluator_;
  // Per feature: item ids ascending by "effective" value (nulls folded per
  // aggregate semantics) plus the parallel value array.
  std::vector<std::vector<model::ItemId>> ascending_ids_;
  std::vector<Vec> ascending_values_;
};

// Algorithm 3 (`upper-exp`): upper-bounds the utility achievable by
// extending `state` with up to `slots` copies of the imaginary boundary item
// `tau_row`; for set-monotone U all slots are filled, otherwise padding
// stops at the first non-positive marginal gain (Lemma 3 makes the greedy
// stop correct).
double UpperExp(const model::AggregateState& state, const Vec& tau_row,
                const Vec& weights, std::size_t slots, bool set_monotone);

}  // namespace topkpkg::topk

#endif  // TOPKPKG_TOPK_TOPK_PKG_H_
