#ifndef TOPKPKG_TOPK_NAIVE_ENUMERATOR_H_
#define TOPKPKG_TOPK_NAIVE_ENUMERATOR_H_

#include <cstddef>

#include "topkpkg/common/status.h"
#include "topkpkg/common/vec.h"
#include "topkpkg/model/package.h"
#include "topkpkg/topk/topk_pkg.h"

namespace topkpkg::topk {

// Exhaustive top-k package search: enumerates every package of size 1..φ,
// evaluates its utility, and keeps the k best (same deterministic ordering
// as TopKPkgSearch). Exponential — usable only on small instances — but it
// is the exact oracle the property tests compare the branch-and-bound
// search against, and the "na¨ıve solution" the paper dismisses in Sec. 4.
// All aggregate arithmetic runs through AggregateState, i.e. the shared
// model/aggregate_kernel.h — the oracle and the search can only disagree in
// search logic, never in scoring.
class NaivePackageEnumerator {
 public:
  explicit NaivePackageEnumerator(const model::PackageEvaluator* evaluator)
      : evaluator_(evaluator) {}

  // Fails with ResourceExhausted if the package space exceeds
  // `max_packages`.
  Result<SearchResult> Search(const Vec& weights, std::size_t k,
                              std::size_t max_packages = 5'000'000) const;

  // Number of packages of size 1..phi over n items (saturates at SIZE_MAX).
  static std::size_t PackageSpaceSize(std::size_t n, std::size_t phi);

 private:
  const model::PackageEvaluator* evaluator_;
};

}  // namespace topkpkg::topk

#endif  // TOPKPKG_TOPK_NAIVE_ENUMERATOR_H_
