#ifndef TOPKPKG_RECSYS_SIMULATED_USER_H_
#define TOPKPKG_RECSYS_SIMULATED_USER_H_

#include <cstddef>
#include <vector>

#include "topkpkg/common/random.h"
#include "topkpkg/common/vec.h"

namespace topkpkg::recsys {

// The Sec. 5.6 user model: a hidden ground-truth utility weight vector w*
// unknown to the recommender; when presented with packages the user clicks
// the one maximizing U*(p) = w*·p̂. With `noise_psi < 1`, each interaction is
// "correct" with probability ψ and otherwise a uniformly random click —
// the Sec. 7 noisy-feedback model.
class SimulatedUser {
 public:
  explicit SimulatedUser(Vec hidden_weights, double noise_psi = 1.0)
      : hidden_weights_(std::move(hidden_weights)), noise_psi_(noise_psi) {}

  const Vec& hidden_weights() const { return hidden_weights_; }

  // Index into `presented_vectors` (normalized package feature vectors) of
  // the clicked package. Ties broken by the earlier index.
  std::size_t Click(const std::vector<Vec>& presented_vectors, Rng& rng) const;

  // True utility of a feature vector under w*.
  double TrueUtility(const Vec& features) const {
    return Dot(hidden_weights_, features);
  }

 private:
  Vec hidden_weights_;
  double noise_psi_;
};

}  // namespace topkpkg::recsys

#endif  // TOPKPKG_RECSYS_SIMULATED_USER_H_
