#include "topkpkg/recsys/recommender.h"

#include <algorithm>
#include <utility>

#include "topkpkg/pref/preference.h"
#include "topkpkg/sampling/parallel_sampler.h"

namespace topkpkg::recsys {

namespace {

// Shards `sampler`'s draw across sampling::SamplerOptions::num_threads
// workers; `seed` feeds the deterministic per-chunk RNG streams.
template <typename Sampler>
Result<std::vector<sampling::WeightedSample>> DrawSharded(
    const Sampler& sampler, std::size_t n, std::size_t num_threads,
    uint64_t seed, sampling::SampleStats* stats) {
  sampling::ParallelSamplerOptions popts;
  popts.num_threads = num_threads;
  sampling::ParallelSampler parallel(
      [&sampler](std::size_t count, Rng& rng, sampling::SampleStats* st) {
        return sampler.Draw(count, rng, st);
      },
      popts);
  return parallel.Draw(n, seed, stats);
}

}  // namespace

const char* SamplerKindName(SamplerKind s) {
  switch (s) {
    case SamplerKind::kRejection:
      return "RS";
    case SamplerKind::kImportance:
      return "IS";
    case SamplerKind::kMcmc:
      return "MS";
  }
  return "?";
}

PackageRecommender::PackageRecommender(const model::PackageEvaluator* evaluator,
                                       const prob::GaussianMixture* prior,
                                       RecommenderOptions options,
                                       uint64_t seed)
    : evaluator_(evaluator),
      prior_(prior),
      options_(std::move(options)),
      rng_(seed) {}

Result<std::vector<sampling::WeightedSample>> PackageRecommender::DrawSamples(
    const sampling::ConstraintChecker& checker, sampling::SampleStats* stats) {
  // num_threads == 1 draws straight from rng_, bit-identical to the classic
  // serial path; > 1 consumes one value from rng_ as the base seed of the
  // sharded draw (reproducible for a fixed recommender seed).
  const std::size_t threads = options_.sampler_base.num_threads;
  switch (options_.sampler) {
    case SamplerKind::kRejection: {
      sampling::RejectionSampler sampler(prior_, &checker,
                                         options_.sampler_base);
      if (threads <= 1) return sampler.Draw(options_.num_samples, rng_, stats);
      return DrawSharded(sampler, options_.num_samples, threads,
                         rng_.engine()(), stats);
    }
    case SamplerKind::kImportance: {
      sampling::ImportanceSamplerOptions opts = options_.importance;
      opts.base = options_.sampler_base;
      TOPKPKG_ASSIGN_OR_RETURN(
          sampling::ImportanceSampler sampler,
          sampling::ImportanceSampler::Create(prior_, &checker, opts));
      if (threads <= 1) return sampler.Draw(options_.num_samples, rng_, stats);
      return DrawSharded(sampler, options_.num_samples, threads,
                         rng_.engine()(), stats);
    }
    case SamplerKind::kMcmc: {
      sampling::McmcSamplerOptions opts = options_.mcmc;
      opts.base = options_.sampler_base;
      sampling::McmcSampler sampler(prior_, &checker, opts);
      if (threads <= 1) return sampler.Draw(options_.num_samples, rng_, stats);
      return DrawSharded(sampler, options_.num_samples, threads,
                         rng_.engine()(), stats);
    }
  }
  return Status::InvalidArgument("PackageRecommender: unknown sampler kind");
}

Result<RoundLog> PackageRecommender::RunRound(const SimulatedUser& user) {
  RoundLog log;

  // 1. Regenerate the sample pool from (prior, feedback).
  sampling::ConstraintChecker checker =
      options_.prune_constraints
          ? sampling::ConstraintChecker::FromReduced(feedback_)
          : sampling::ConstraintChecker::FromAll(feedback_);
  Result<std::vector<sampling::WeightedSample>> drawn =
      DrawSamples(checker, &log.sampling_stats);
  if (!drawn.ok() && drawn.status().code() == StatusCode::kResourceExhausted) {
    // Noisy feedback can accumulate into a practically unreachable region
    // (every sample violates something and 1-(1-ψ)^x rejection fires almost
    // surely). Degrade gracefully: fall back to the prior for this round —
    // exploration continues and future consistent clicks re-tighten things.
    sampling::ConstraintChecker unconstrained({});
    drawn = DrawSamples(unconstrained, &log.sampling_stats);
  }
  if (!drawn.ok()) return drawn.status();
  std::vector<sampling::WeightedSample> samples = std::move(drawn).value();

  // 2. Rank packages under the configured semantics.
  ranking::PackageRanker ranker(evaluator_);
  ranking::RankingOptions ropts = options_.ranking;
  ropts.k = std::max<std::size_t>(ropts.k, options_.num_recommended);
  ropts.package_filter = options_.package_filter;
  TOPKPKG_ASSIGN_OR_RETURN(
      ranking::RankingResult ranked,
      ranker.Rank(samples, options_.semantics, ropts));

  std::vector<model::Package> top_k;
  for (const auto& rp : ranked.packages) {
    if (options_.package_filter && !options_.package_filter(rp.package)) {
      continue;
    }
    top_k.push_back(rp.package);
  }
  log.top_k_changed = top_k != current_top_k_;
  current_top_k_ = top_k;
  log.top_k = std::move(top_k);

  // 3. Present: exploit slots (current best) + explore slots (random).
  for (std::size_t i = 0;
       i < std::min(options_.num_recommended, log.top_k.size()); ++i) {
    log.presented.push_back(log.top_k[i]);
  }
  log.num_recommended = log.presented.size();
  const std::size_t n = evaluator_->table().num_items();
  while (log.presented.size() < log.num_recommended + options_.num_random) {
    model::Package p =
        pref::RandomPackage(n, evaluator_->phi(), rng_);
    if (options_.package_filter && !options_.package_filter(p)) continue;
    // Avoid presenting duplicates.
    bool dup = false;
    for (const auto& q : log.presented) {
      if (q == p) {
        dup = true;
        break;
      }
    }
    if (!dup) log.presented.push_back(std::move(p));
  }
  log.presented_vectors.reserve(log.presented.size());
  for (const auto& p : log.presented) {
    log.presented_vectors.push_back(evaluator_->FeatureVector(p));
  }

  // 4. Collect the click and fold it into the preference DAG.
  log.clicked = user.Click(log.presented_vectors, rng_);
  std::vector<std::string> keys;
  keys.reserve(log.presented.size());
  for (const auto& p : log.presented) keys.push_back(p.Key());
  // Cyclic feedback (possible under noise) is skipped — the paper resolves
  // cycles by re-eliciting, which the next round effectively does.
  Status st = feedback_.AddClickFeedback(log.presented_vectors[log.clicked],
                                         keys[log.clicked],
                                         log.presented_vectors, keys);
  if (!st.ok() && st.code() != StatusCode::kFailedPrecondition) return st;
  return log;
}

namespace {

double ListOverlap(const std::vector<model::Package>& a,
                   const std::vector<model::Package>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t common = 0;
  for (const auto& p : a) {
    for (const auto& q : b) {
      if (p == q) {
        ++common;
        break;
      }
    }
  }
  std::size_t uni = a.size() + b.size() - common;
  return uni == 0 ? 1.0 : static_cast<double>(common) /
                              static_cast<double>(uni);
}

}  // namespace

Result<std::size_t> PackageRecommender::RunUntilConverged(
    const SimulatedUser& user, std::size_t stable_rounds,
    std::size_t max_rounds, double min_overlap) {
  std::size_t clicks = 0;
  std::size_t stable = 0;
  std::vector<model::Package> previous;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    TOPKPKG_ASSIGN_OR_RETURN(RoundLog log, RunRound(user));
    ++clicks;
    bool is_stable =
        round > 0 && ListOverlap(previous, log.top_k) >= min_overlap;
    stable = is_stable ? stable + 1 : 0;
    previous = log.top_k;
    if (stable >= stable_rounds) break;
  }
  return clicks;
}

}  // namespace topkpkg::recsys
