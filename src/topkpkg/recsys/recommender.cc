#include "topkpkg/recsys/recommender.h"

#include <algorithm>
#include <utility>

#include "topkpkg/common/serde.h"
#include "topkpkg/obs/metrics.h"
#include "topkpkg/obs/trace.h"
#include "topkpkg/pref/preference.h"
#include "topkpkg/sampling/parallel_sampler.h"
#include "topkpkg/storage/codec.h"
#include "topkpkg/storage/session_store.h"

namespace topkpkg::recsys {

namespace {

// Shards `sampler`'s draw across SamplerOptions::exec.num_threads workers
// borrowed from `workers`; `seed` feeds the deterministic per-chunk RNG
// streams.
template <typename Sampler>
Result<std::vector<sampling::WeightedSample>> DrawSharded(
    const Sampler& sampler, std::size_t n, std::size_t num_threads,
    uint64_t seed, sampling::SampleStats* stats, ThreadPool* workers) {
  sampling::ParallelSamplerOptions popts;
  popts.num_threads = num_threads;
  sampling::ParallelSampler parallel(
      [&sampler](std::size_t count, Rng& rng, sampling::SampleStats* st) {
        return sampler.Draw(count, rng, st);
      },
      popts);
  return parallel.Draw(n, seed, stats, workers);
}

// Round-level registry handles. Phase histograms share one family keyed by
// a phase label so a scrape shows the round's time budget side by side.
struct RecsysMetrics {
  obs::Counter* rounds;
  obs::Counter* pool_scanned;
  obs::Counter* pool_violators;
  obs::Histogram* phase_sample;
  obs::Histogram* phase_maintain;
  obs::Histogram* phase_rank;
};

const RecsysMetrics& Metrics() {
  static const RecsysMetrics* m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    auto* mm = new RecsysMetrics();
    mm->rounds =
        reg.GetCounter("topkpkg_recsys_rounds_total", "Feedback rounds run");
    mm->pool_scanned =
        reg.GetCounter("topkpkg_recsys_pool_scanned_total",
                       "Pool samples scanned during Sec. 3.4 maintenance");
    mm->pool_violators =
        reg.GetCounter("topkpkg_recsys_pool_violators_total",
                       "Pool samples marked for replacement as constraint "
                       "violators (before target-shedding)");
    const char* help = "Per-round phase wall time";
    mm->phase_sample = reg.GetHistogram("topkpkg_round_phase_seconds", help,
                                        "phase=\"sample\"");
    mm->phase_maintain = reg.GetHistogram("topkpkg_round_phase_seconds", help,
                                          "phase=\"maintain\"");
    mm->phase_rank = reg.GetHistogram("topkpkg_round_phase_seconds", help,
                                      "phase=\"rank\"");
    return mm;
  }();
  return *m;
}

}  // namespace

const char* SamplerKindName(SamplerKind s) {
  switch (s) {
    case SamplerKind::kRejection:
      return "RS";
    case SamplerKind::kImportance:
      return "IS";
    case SamplerKind::kMcmc:
      return "MS";
  }
  return "?";
}

double TopKOverlap(const std::vector<model::Package>& a,
                   const std::vector<model::Package>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t common = 0;
  for (const auto& p : a) {
    for (const auto& q : b) {
      if (p == q) {
        ++common;
        break;
      }
    }
  }
  std::size_t uni = a.size() + b.size() - common;
  return uni == 0 ? 1.0 : static_cast<double>(common) /
                              static_cast<double>(uni);
}

PackageRecommender::PackageRecommender(const model::PackageEvaluator* evaluator,
                                       const prob::GaussianMixture* prior,
                                       RecommenderOptions options,
                                       uint64_t seed)
    : evaluator_(evaluator),
      prior_(prior),
      options_(std::move(options)),
      rng_(seed),
      ranker_(evaluator) {}

Result<std::unique_ptr<PackageRecommender>> PackageRecommender::Create(
    const model::PackageEvaluator* evaluator,
    const prob::GaussianMixture* prior, RecommenderOptions options,
    uint64_t seed) {
  auto bad = [](const std::string& field, const std::string& why) {
    return Status::InvalidArgument("RecommenderOptions." + field + ": " + why);
  };
  if (evaluator == nullptr) {
    return Status::InvalidArgument(
        "PackageRecommender::Create: evaluator must not be null");
  }
  if (prior == nullptr) {
    return Status::InvalidArgument(
        "PackageRecommender::Create: prior must not be null");
  }
  if (prior->dim() != evaluator->table().num_features()) {
    return Status::InvalidArgument(
        "PackageRecommender::Create: prior dimensionality " +
        std::to_string(prior->dim()) + " != the item table's " +
        std::to_string(evaluator->table().num_features()) + " features");
  }
  if (evaluator->phi() == 0) {
    return Status::InvalidArgument(
        "PackageRecommender::Create: evaluator phi (max package size) "
        "must be at least 1");
  }
  if (options.num_samples == 0) {
    return bad("num_samples", "the sample pool must hold at least 1 sample");
  }
  if (options.num_recommended + options.num_random == 0) {
    return bad("num_recommended/num_random",
               "a round must present at least 1 package to click");
  }
  if (options.ranking.k == 0) return bad("ranking.k", "must be at least 1");
  if (options.semantics == ranking::Semantics::kTkp &&
      options.ranking.sigma == 0) {
    return bad("ranking.sigma",
               "TKP ranks by top-sigma membership; sigma must be at least 1");
  }
  const sampling::SamplerOptions& base = options.sampler_base;
  if (!(base.box_lo < base.box_hi)) {
    return bad("sampler_base.box_lo/box_hi",
               "weight box is empty (box_lo must be < box_hi)");
  }
  if (base.max_attempts_per_sample == 0) {
    return bad("sampler_base.max_attempts_per_sample", "must be at least 1");
  }
  if (!(base.noise.psi > 0.0) || base.noise.psi > 1.0) {
    return bad("sampler_base.noise.psi", "must be in (0, 1]");
  }
  if (options.sampler == SamplerKind::kImportance &&
      options.importance.grid_resolution == 0) {
    return bad("importance.grid_resolution", "must be at least 1");
  }
  // History must cover at least the current round when retention is on —
  // 0 stays the documented "disable" value, so nothing to check there.
  return std::make_unique<PackageRecommender>(evaluator, prior,
                                              std::move(options), seed);
}

ThreadPool* PackageRecommender::Workers() {
  if (options_.exec.pool != nullptr) return options_.exec.pool;
  std::size_t threads = options_.exec.num_threads;
  if (threads == 0) {
    threads = std::max(options_.sampler_base.exec.num_threads,
                       options_.ranking.exec.num_threads);
  }
  if (threads <= 1) return nullptr;
  if (workers_ == nullptr) workers_ = std::make_unique<ThreadPool>(threads);
  return workers_.get();
}

Result<std::vector<sampling::WeightedSample>> PackageRecommender::DrawSamples(
    const sampling::ConstraintChecker& checker, std::size_t n,
    sampling::SampleStats* stats) {
  // exec.num_threads == 1 draws straight from rng_, bit-identical to the
  // classic serial path; > 1 consumes one value from rng_ as the base seed
  // of the sharded draw (reproducible for a fixed recommender seed).
  const std::size_t threads = options_.sampler_base.exec.num_threads;
  switch (options_.sampler) {
    case SamplerKind::kRejection: {
      sampling::RejectionSampler sampler(prior_, &checker,
                                         options_.sampler_base);
      if (threads <= 1) return sampler.Draw(n, rng_, stats);
      return DrawSharded(sampler, n, threads, rng_.engine()(), stats,
                         Workers());
    }
    case SamplerKind::kImportance: {
      sampling::ImportanceSamplerOptions opts = options_.importance;
      opts.base = options_.sampler_base;
      TOPKPKG_ASSIGN_OR_RETURN(
          sampling::ImportanceSampler sampler,
          sampling::ImportanceSampler::Create(prior_, &checker, opts));
      // Stash the sampler (and the grid decomposition it paid for) so this
      // round's survivor reweighting can reuse it instead of re-running
      // Create(). A failed Draw below still leaves the stash valid: the
      // fallback path re-enters here with the unconstrained checker and
      // overwrites it with the sampler of whichever draw actually ran last.
      round_is_sampler_ = std::move(sampler);
      if (threads <= 1) return round_is_sampler_->Draw(n, rng_, stats);
      return DrawSharded(*round_is_sampler_, n, threads, rng_.engine()(),
                         stats, Workers());
    }
    case SamplerKind::kMcmc: {
      sampling::McmcSamplerOptions opts = options_.mcmc;
      opts.base = options_.sampler_base;
      sampling::McmcSampler sampler(prior_, &checker, opts);
      if (threads <= 1) return sampler.Draw(n, rng_, stats);
      return DrawSharded(sampler, n, threads, rng_.engine()(), stats,
                         Workers());
    }
  }
  return Status::InvalidArgument("PackageRecommender: unknown sampler kind");
}

Result<std::vector<sampling::WeightedSample>>
PackageRecommender::DrawSamplesWithFallback(
    const sampling::ConstraintChecker& checker, std::size_t n,
    sampling::SampleStats* stats, bool* used_fallback) {
  if (used_fallback != nullptr) *used_fallback = false;
  Result<std::vector<sampling::WeightedSample>> drawn =
      DrawSamples(checker, n, stats);
  if (!drawn.ok() && drawn.status().code() == StatusCode::kResourceExhausted) {
    // Noisy feedback can accumulate into a practically unreachable region
    // (every sample violates something and 1-(1-ψ)^x rejection fires almost
    // surely). Degrade gracefully: fall back to the prior for these draws —
    // exploration continues and future consistent clicks re-tighten things.
    // Static (immutable, read-only) so a stashed round_is_sampler_ built
    // against it never outlives its checker.
    static const sampling::ConstraintChecker unconstrained({});
    drawn = DrawSamples(unconstrained, n, stats);
    if (used_fallback != nullptr) *used_fallback = drawn.ok();
  }
  return drawn;
}

Result<ranking::RankingResult> PackageRecommender::RankFromScratch(
    const sampling::ConstraintChecker& checker,
    const ranking::RankingOptions& ropts, RoundLog* log) {
  obs::ScopedSpan sample_span("sample");
  TOPKPKG_ASSIGN_OR_RETURN(
      std::vector<sampling::WeightedSample> samples,
      DrawSamplesWithFallback(checker, options_.num_samples,
                              &log->sampling_stats));
  log->sample_seconds = sample_span.Close();
  log->samples_resampled = samples.size();

  obs::ScopedSpan rank_span("rank");
  ranking::PackageRanker ranker(evaluator_);
  ranking::SearchDedupStats dedup;
  Result<ranking::RankingResult> ranked =
      ranker.Rank(samples, options_.semantics, ropts, Workers(), &dedup);
  log->rank_seconds = rank_span.Close();
  log->searches_deduped = dedup.dedup_hits;
  log->searches_unique = dedup.unique_searches;
  return ranked;
}

Result<ranking::RankingResult> PackageRecommender::RankIncremental(
    const sampling::ConstraintChecker& checker,
    const ranking::RankingOptions& ropts, RoundLog* log) {
  const std::size_t target = options_.num_samples;
  // Constraints entering the checker for the first time (the reduced set
  // only ever loses members as the DAG grows, so membership by key pair is
  // a faithful "new since last round" test). Keys are committed to
  // seen_constraint_keys_ only after the pool mutation below succeeds — a
  // failed round must leave the constraints "fresh" so the next round still
  // maintains the pool against them.
  std::vector<const pref::Preference*> fresh_constraints;
  std::vector<std::string> fresh_keys;
  for (const auto& c : checker.constraints()) {
    std::string key = c.better_key + '|' + c.worse_key;
    if (seen_constraint_keys_.find(key) == seen_constraint_keys_.end()) {
      fresh_constraints.push_back(&c);
      fresh_keys.push_back(std::move(key));
    }
  }
  sampling::PoolDelta delta;
  if (pool_.size() == 0) {
    // First round: fill the pool from the (prior, feedback) posterior.
    obs::ScopedSpan sample_span("sample");
    bool used_fallback = false;
    TOPKPKG_ASSIGN_OR_RETURN(
        std::vector<sampling::WeightedSample> fresh,
        DrawSamplesWithFallback(checker, target, &log->sampling_stats,
                                &used_fallback));
    log->sample_seconds = sample_span.Close();
    delta = pool_.Append(std::move(fresh));
    fallback_sample_ids_.clear();
    if (used_fallback) {
      fallback_sample_ids_.insert(delta.added_ids.begin(),
                                  delta.added_ids.end());
    }
  } else {
    // Sec. 3.4 maintenance: scan the pool against the full current
    // constraint set and replace only the violators. Survivors were drawn
    // from a posterior this feedback refines, so they still follow it.
    // (Rejection/MCMC samples carry weight 1 and are unaffected;
    // importance-pool survivors get their weights rescaled under the new
    // proposal after the Replace below.)
    obs::ScopedSpan maintain_span("maintain");
    std::vector<std::size_t> violators;
    const bool is_pool = options_.sampler == SamplerKind::kImportance;
    if (is_pool && !fallback_sample_ids_.empty()) {
      // Unconstrained fallback draws carry prior-only proposal weights and
      // were never validated; an importance pool holding them redraws fully
      // (the reweighting below assumes survivors were accepted under a
      // constraint-built proposal near the new one).
      violators.reserve(pool_.size());
      for (std::size_t i = 0; i < pool_.size(); ++i) violators.push_back(i);
    } else if (options_.sampler_base.noise.psi < 1.0) {
      // Sec. 7 noise: a sample violating x of the *new* constraints is
      // evicted with the same probability 1-(1-ψ)^x a sampler would reject
      // it. Old constraints already had their coin flipped when they
      // arrived (or at draw time), so they are not re-tested — survivors by
      // noise luck stay, exactly as a fresh noisy draw would keep them.
      // Exception: unconstrained fallback draws never had any acceptance
      // applied, so those samples (and only those — a second coin flip for
      // already-accepted survivors would compound) are checked against the
      // full constraint set once.
      const std::vector<pref::Preference>& all = checker.constraints();
      std::vector<const pref::Preference*> full_scan;
      if (!fallback_sample_ids_.empty()) {
        full_scan.reserve(all.size());
        for (const auto& c : all) full_scan.push_back(&c);
      }
      for (std::size_t i = 0; i < pool_.size(); ++i) {
        const bool tainted =
            !fallback_sample_ids_.empty() &&
            fallback_sample_ids_.count(pool_.id(i)) > 0;
        const std::vector<const pref::Preference*>& to_check =
            tainted ? full_scan : fresh_constraints;
        std::size_t x = 0;
        for (const pref::Preference* c : to_check) {
          ++log->sampling_stats.constraint_checks;
          if (!pref::Satisfies(pool_.sample(i).w, *c)) ++x;
        }
        if (x > 0 && options_.sampler_base.noise.ShouldReject(x, rng_)) {
          violators.push_back(i);
        }
      }
    } else {
      // Hard constraints: scan against the full current set, not just the
      // new preferences. This costs O(pool × constraints) dot products —
      // noise next to the per-sample searches being avoided — and keeps the
      // pool self-healing when unconstrained fallback draws (or a psi
      // change) left samples that violate older constraints.
      std::vector<std::uint8_t> valid = checker.IsValidBatch(
          pool_.batch(), Workers(), &log->sampling_stats.constraint_checks);
      for (std::size_t i = 0; i < valid.size(); ++i) {
        if (!valid[i]) violators.push_back(i);
      }
    }
    // Violator rate is counted before the target-shedding extension below:
    // shed survivors are healthy samples evicted for capacity, not
    // constraint violations.
    if constexpr (obs::kMetricsEnabled) {
      Metrics().pool_scanned->Increment(pool_.size());
      Metrics().pool_violators->Increment(violators.size());
    }
    // Track a changed num_samples target: shed surplus survivors from the
    // pool's tail, or draw extra fresh samples below.
    std::size_t keep = pool_.size() - violators.size();
    if (keep > target) {
      std::vector<bool> marked(pool_.size(), false);
      for (std::size_t i : violators) marked[i] = true;
      for (std::size_t i = pool_.size(); i-- > 0 && keep > target;) {
        if (!marked[i]) {
          violators.push_back(i);
          --keep;
        }
      }
    }
    log->maintain_seconds = maintain_span.Close();

    std::vector<sampling::WeightedSample> fresh;
    bool used_fallback = false;
    if (target > keep) {
      obs::ScopedSpan sample_span("sample");
      TOPKPKG_ASSIGN_OR_RETURN(
          fresh, DrawSamplesWithFallback(checker, target - keep,
                                         &log->sampling_stats,
                                         &used_fallback));
      log->sample_seconds = sample_span.Close();
    }
    delta = pool_.Replace(std::move(violators), std::move(fresh));
    if (is_pool && !delta.surviving_ids.empty() &&
        (!fresh_constraints.empty() || used_fallback)) {
      // Sec. 3.4 reuse for importance pools: survivors still follow the
      // posterior, but their stored weights q = P/Q_old are relative to the
      // proposal they were drawn under, and this round's replacement draws
      // carry weights under the proposal *they* came from — aggregating
      // two scales together would bias the ranking. Rescale every survivor
      // under the replacement draw's proposal: the constraint-built one
      // normally, or the unconstrained (prior-only) one when this round's
      // draw degraded to the fallback — the same deterministic Create()
      // either draw path ran, so both subpopulations share one weight
      // scale. (Exact as Q_old → Q_new, the incremental-feedback regime —
      // is_reweight_test checks the resulting accepted distribution
      // against the full-redraw path's.) Cached top lists depend only on
      // the weight *vector* and stay valid; only their aggregation-side
      // weight is updated.
      // The reweight span folds into maintain_seconds (it is Sec. 3.4 pool
      // upkeep, not fresh sampling) while still appearing as its own span
      // in a sampled trace.
      obs::ScopedSpan reweight_span("reweight", &log->maintain_seconds);
      // The round's replacement draw already built the sampler — grid
      // decomposition included — against exactly the proposal survivors
      // must be rescaled under (the constraint-built one normally, the
      // unconstrained one when the draw degraded to the fallback), so reuse
      // it. Only a round that replaced without drawing (a shrunken
      // num_samples target) reaches here without one; Create() is
      // deterministic, so building it now yields the identical proposal the
      // draw would have.
      if (!round_is_sampler_.has_value()) {
        sampling::ImportanceSamplerOptions opts = options_.importance;
        opts.base = options_.sampler_base;
        TOPKPKG_ASSIGN_OR_RETURN(
            sampling::ImportanceSampler rebuilt,
            sampling::ImportanceSampler::Create(prior_, &checker, opts));
        round_is_sampler_ = std::move(rebuilt);
      }
      const sampling::ImportanceSampler& reweighter = *round_is_sampler_;
      // Replace() compacts survivors to the front in pool order; fresh
      // draws sit behind them with their draw-time weights already.
      for (std::size_t i = 0; i < delta.surviving_ids.size(); ++i) {
        const double q = reweighter.ImportanceWeight(pool_.sample(i).w);
        pool_.set_weight(i, q);
        ranker_.UpdateWeight(pool_.id(i), q);
      }
    }
    // Every maintenance branch above validated or evicted any previously
    // tainted survivor, so only this round's draw can (re-)taint the pool
    // with unvalidated fallback samples.
    fallback_sample_ids_.clear();
    if (used_fallback) {
      fallback_sample_ids_.insert(delta.added_ids.begin(),
                                  delta.added_ids.end());
    }
  }
  for (std::string& key : fresh_keys) {
    seen_constraint_keys_.insert(std::move(key));
  }
  log->samples_reused = delta.surviving_ids.size();
  log->samples_resampled = delta.added_ids.size();

  obs::ScopedSpan rank_span("rank");
  ranking::IncrementalRankStats rstats;
  Result<ranking::RankingResult> ranked =
      ranker_.Rank(pool_, delta, options_.semantics, ropts, &rstats,
                   Workers());
  log->rank_seconds = rank_span.Close();
  log->searches_skipped = rstats.searches_skipped;
  log->searches_deduped = rstats.searches_deduped;
  log->searches_unique = rstats.searches_run - rstats.searches_deduped;
  return ranked;
}

Result<RoundLog> PackageRecommender::RunRound(const SimulatedUser& user) {
  obs::ScopedSpan round_span("round");
  RoundLog log;
  // The IS-sampler stash is strictly round-scoped: a new round means a
  // possibly-new constraint set, so last round's proposal must never leak
  // into this round's reweighting.
  round_is_sampler_.reset();

  // 1. Bring the sample pool in line with (prior, feedback) — incrementally
  // (replace violators only) or from scratch — and rank packages under the
  // configured semantics.
  sampling::ConstraintChecker checker =
      options_.prune_constraints
          ? sampling::ConstraintChecker::FromReduced(feedback_)
          : sampling::ConstraintChecker::FromAll(feedback_);
  ranking::RankingOptions ropts = options_.ranking;
  ropts.k = std::max<std::size_t>(ropts.k, options_.num_recommended);
  ropts.package_filter = options_.package_filter;
  TOPKPKG_ASSIGN_OR_RETURN(ranking::RankingResult ranked,
                           options_.incremental
                               ? RankIncremental(checker, ropts, &log)
                               : RankFromScratch(checker, ropts, &log));
  if constexpr (obs::kMetricsEnabled) {
    const RecsysMetrics& m = Metrics();
    m.rounds->Increment();
    m.phase_sample->Observe(log.sample_seconds);
    // From-scratch (and first incremental) rounds have no maintain phase;
    // a zero observation would only skew the distribution's low tail.
    if (log.maintain_seconds > 0.0) {
      m.phase_maintain->Observe(log.maintain_seconds);
    }
    m.phase_rank->Observe(log.rank_seconds);
  }

  std::vector<model::Package> top_k;
  for (const auto& rp : ranked.packages) {
    if (options_.package_filter && !options_.package_filter(rp.package)) {
      continue;
    }
    top_k.push_back(rp.package);
  }
  log.top_k_overlap = TopKOverlap(current_top_k_, top_k);
  log.top_k_changed = log.top_k_overlap < 1.0;
  current_top_k_ = top_k;
  log.top_k = std::move(top_k);

  // 2. Present: exploit slots (current best) + explore slots (random).
  for (std::size_t i = 0;
       i < std::min(options_.num_recommended, log.top_k.size()); ++i) {
    log.presented.push_back(log.top_k[i]);
  }
  log.num_recommended = log.presented.size();
  const std::size_t n = evaluator_->table().num_items();
  while (log.presented.size() < log.num_recommended + options_.num_random) {
    model::Package p =
        pref::RandomPackage(n, evaluator_->phi(), rng_);
    if (options_.package_filter && !options_.package_filter(p)) continue;
    // Avoid presenting duplicates.
    bool dup = false;
    for (const auto& q : log.presented) {
      if (q == p) {
        dup = true;
        break;
      }
    }
    if (!dup) log.presented.push_back(std::move(p));
  }
  log.presented_vectors.reserve(log.presented.size());
  for (const auto& p : log.presented) {
    log.presented_vectors.push_back(evaluator_->FeatureVector(p));
  }

  // 3. Collect the click and fold it into the preference DAG.
  log.clicked = user.Click(log.presented_vectors, rng_);
  std::vector<std::string> keys;
  keys.reserve(log.presented.size());
  for (const auto& p : log.presented) keys.push_back(p.Key());
  // Cyclic feedback (possible under noise) is skipped — the paper resolves
  // cycles by re-eliciting, which the next round effectively does.
  Status st = feedback_.AddClickFeedback(log.presented_vectors[log.clicked],
                                         keys[log.clicked],
                                         log.presented_vectors, keys);
  if (!st.ok() && st.code() != StatusCode::kFailedPrecondition) return st;

  if (options_.max_round_history > 0) {
    history_.push_back(log);
    if (history_.size() > options_.max_round_history) {
      history_.erase(history_.begin(),
                     history_.begin() + static_cast<std::ptrdiff_t>(
                                            history_.size() -
                                            options_.max_round_history));
    }
  }
  return log;
}

namespace {

constexpr std::uint8_t kMetaVersion = 1;

void PutPackageList(ByteWriter& w, const std::vector<model::Package>& list) {
  w.PutU32(static_cast<std::uint32_t>(list.size()));
  for (const model::Package& p : list) storage::PutPackage(w, p);
}

Result<std::vector<model::Package>> GetPackageList(ByteReader& r) {
  TOPKPKG_ASSIGN_OR_RETURN(std::uint32_t count, r.GetU32());
  std::vector<model::Package> list;
  list.reserve(std::min<std::size_t>(count, r.remaining()));
  for (std::uint32_t i = 0; i < count; ++i) {
    TOPKPKG_ASSIGN_OR_RETURN(model::Package p, storage::GetPackage(r));
    list.push_back(std::move(p));
  }
  return list;
}

}  // namespace

std::string PackageRecommender::ConfigFingerprint() const {
  // Everything the checkpointed state's *meaning* depends on. Restoring
  // into a recommender whose configuration disagrees would silently change
  // the session's semantics, so Restore refuses on mismatch.
  std::string f;
  f += "m=" + std::to_string(prior_->dim());
  f += ";items=" + std::to_string(evaluator_->table().num_items());
  f += ";phi=" + std::to_string(evaluator_->phi());
  f += ";profile=" + evaluator_->profile().ToString();
  f += ";sampler=" + std::string(SamplerKindName(options_.sampler));
  f += ";semantics=" +
       std::string(ranking::SemanticsName(options_.semantics));
  f += ";num_samples=" + std::to_string(options_.num_samples);
  f += ";num_recommended=" + std::to_string(options_.num_recommended);
  f += ";num_random=" + std::to_string(options_.num_random);
  f += ";k=" + std::to_string(options_.ranking.k);
  f += ";sigma=" + std::to_string(options_.ranking.sigma);
  f += ";psi=" + std::to_string(options_.sampler_base.noise.psi);
  f += ";prune=" + std::to_string(options_.prune_constraints ? 1 : 0);
  f += ";incremental=" + std::to_string(options_.incremental ? 1 : 0);
  // Draw parallelism selects serial-stream vs sharded-stream sampling,
  // which is a semantic property of the session's RNG consumption — a host
  // on the other mode would silently diverge from the checkpointed
  // trajectory. The worker *count* is absent on purpose: sharded output
  // depends only on (seed, chunk_size), and ranking parallelism never
  // changes results at all.
  f += ";sharded_draw=" +
       std::to_string(options_.sampler_base.exec.num_threads > 1 ? 1 : 0);
  return f;
}

Status PackageRecommender::Checkpoint(storage::SessionStore& store,
                                      std::uint64_t session_id) const {
  const std::uint64_t seq = ++checkpoint_seq_;
  // Crash-atomicity: the state records alternate between two kind slots by
  // sequence parity (storage::GenSlotKind) and carry the sequence as a
  // payload prefix; the meta record — one atomic append, written last —
  // commits the sequence and thereby selects the slot. A crash anywhere
  // mid-checkpoint only ever dirties the slot the *next* generation owns,
  // so Restore always finds the last committed generation intact.
  auto wrap = [seq](std::string payload) {
    ByteWriter w;
    w.PutU64(seq);
    std::string out = std::move(w).Take();
    out += payload;
    return out;
  };
  TOPKPKG_RETURN_IF_ERROR(
      store.Put(session_id,
                storage::GenSlotKind(storage::kKindPreferenceSet, seq),
                wrap(storage::EncodePreferenceSet(feedback_))));
  TOPKPKG_RETURN_IF_ERROR(
      store.Put(session_id,
                storage::GenSlotKind(storage::kKindSamplePool, seq),
                wrap(storage::EncodeSamplePool(pool_))));
  TOPKPKG_RETURN_IF_ERROR(
      store.Put(session_id,
                storage::GenSlotKind(storage::kKindTopListCache, seq),
                wrap(storage::EncodeTopListCache(ranker_))));
  TOPKPKG_RETURN_IF_ERROR(
      store.Put(session_id,
                storage::GenSlotKind(storage::kKindRoundHistory, seq),
                wrap(storage::EncodeRoundHistory(history_))));
  ByteWriter meta;
  meta.PutU8(kMetaVersion);
  meta.PutU64(seq);
  meta.PutString(ConfigFingerprint());
  meta.PutString(rng_.SaveState());
  PutPackageList(meta, current_top_k_);
  // Sets serialize sorted so equal states checkpoint to equal bytes.
  std::vector<std::string> seen(seen_constraint_keys_.begin(),
                                seen_constraint_keys_.end());
  std::sort(seen.begin(), seen.end());
  meta.PutU32(static_cast<std::uint32_t>(seen.size()));
  for (const std::string& key : seen) meta.PutString(key);
  std::vector<sampling::SampleId> fallback(fallback_sample_ids_.begin(),
                                           fallback_sample_ids_.end());
  std::sort(fallback.begin(), fallback.end());
  meta.PutU32(static_cast<std::uint32_t>(fallback.size()));
  for (sampling::SampleId id : fallback) meta.PutU64(id);
  TOPKPKG_RETURN_IF_ERROR(store.Put(session_id, storage::kKindRecommenderMeta,
                                    std::move(meta).Take()));
  return store.Flush();
}

Status PackageRecommender::Restore(const storage::SessionStore& store,
                                   std::uint64_t session_id) {
  TOPKPKG_ASSIGN_OR_RETURN(
      std::string meta_bytes,
      store.Get(session_id, storage::kKindRecommenderMeta));
  ByteReader meta(meta_bytes);
  TOPKPKG_ASSIGN_OR_RETURN(std::uint8_t version, meta.GetU8());
  if (version != kMetaVersion) {
    return Status::Unimplemented(
        "PackageRecommender::Restore: meta record version " +
        std::to_string(version) + "; this build reads version " +
        std::to_string(kMetaVersion));
  }
  TOPKPKG_ASSIGN_OR_RETURN(std::uint64_t seq, meta.GetU64());
  TOPKPKG_ASSIGN_OR_RETURN(std::string fingerprint, meta.GetString());
  if (fingerprint != ConfigFingerprint()) {
    return Status::InvalidArgument(
        "PackageRecommender::Restore: checkpoint was written by a "
        "differently configured recommender (" +
        fingerprint + " vs " + ConfigFingerprint() + ")");
  }
  TOPKPKG_ASSIGN_OR_RETURN(std::string rng_state, meta.GetString());
  TOPKPKG_ASSIGN_OR_RETURN(std::vector<model::Package> top_k,
                           GetPackageList(meta));
  TOPKPKG_ASSIGN_OR_RETURN(std::uint32_t num_seen, meta.GetU32());
  std::vector<std::string> seen;
  seen.reserve(std::min<std::size_t>(num_seen, meta.remaining()));
  for (std::uint32_t i = 0; i < num_seen; ++i) {
    TOPKPKG_ASSIGN_OR_RETURN(std::string key, meta.GetString());
    seen.push_back(std::move(key));
  }
  TOPKPKG_ASSIGN_OR_RETURN(std::uint32_t num_fallback, meta.GetU32());
  std::vector<sampling::SampleId> fallback;
  fallback.reserve(std::min<std::size_t>(num_fallback, meta.remaining()));
  for (std::uint32_t i = 0; i < num_fallback; ++i) {
    TOPKPKG_ASSIGN_OR_RETURN(sampling::SampleId id, meta.GetU64());
    fallback.push_back(id);
  }

  // The state records live in the kind slot the meta's sequence selects; a
  // torn later checkpoint only dirtied the other slot, so these are the
  // committed generation. A sequence prefix disagreeing with the meta
  // record can therefore only mean an externally damaged store.
  auto unwrap = [&](storage::RecordKind kind,
                    const char* what) -> Result<std::string> {
    TOPKPKG_ASSIGN_OR_RETURN(
        std::string bytes,
        store.Get(session_id, storage::GenSlotKind(kind, seq)));
    ByteReader r(bytes);
    TOPKPKG_ASSIGN_OR_RETURN(std::uint64_t got, r.GetU64());
    if (got != seq) {
      return Status::FailedPrecondition(
          std::string("PackageRecommender::Restore: inconsistent store — ") +
          what + " record is from checkpoint " + std::to_string(got) +
          " but the meta record committed checkpoint " + std::to_string(seq));
    }
    return bytes.substr(sizeof(std::uint64_t));
  };
  TOPKPKG_ASSIGN_OR_RETURN(
      std::string pref_bytes,
      unwrap(storage::kKindPreferenceSet, "preference-set"));
  TOPKPKG_ASSIGN_OR_RETURN(pref::PreferenceSet feedback,
                           storage::DecodePreferenceSet(pref_bytes));
  TOPKPKG_ASSIGN_OR_RETURN(std::string pool_bytes,
                           unwrap(storage::kKindSamplePool, "sample-pool"));
  TOPKPKG_ASSIGN_OR_RETURN(sampling::SamplePool pool,
                           storage::DecodeSamplePool(pool_bytes));
  TOPKPKG_ASSIGN_OR_RETURN(
      std::string cache_bytes,
      unwrap(storage::kKindTopListCache, "top-list-cache"));
  TOPKPKG_ASSIGN_OR_RETURN(
      std::string history_bytes,
      unwrap(storage::kKindRoundHistory, "round-history"));
  TOPKPKG_ASSIGN_OR_RETURN(std::vector<RoundLog> history,
                           storage::DecodeRoundHistory(history_bytes));

  // Everything parsed; commit. The rng state is validated into a local
  // first and the cache decode (the last step that can fail — it parses
  // fully before touching the ranker) runs before any member is
  // overwritten, so a failed Restore leaves the recommender exactly as it
  // was — never a mix of two sessions.
  Rng restored_rng(0);
  TOPKPKG_RETURN_IF_ERROR(restored_rng.LoadState(rng_state));
  TOPKPKG_RETURN_IF_ERROR(
      storage::DecodeTopListCacheInto(cache_bytes, ranker_));
  rng_ = restored_rng;
  feedback_ = std::move(feedback);
  pool_ = std::move(pool);
  current_top_k_ = std::move(top_k);
  history_ = std::move(history);
  seen_constraint_keys_.clear();
  seen_constraint_keys_.insert(seen.begin(), seen.end());
  fallback_sample_ids_.clear();
  fallback_sample_ids_.insert(fallback.begin(), fallback.end());
  checkpoint_seq_ = seq;
  return Status::OK();
}

Result<std::size_t> PackageRecommender::RunUntilConverged(
    const SimulatedUser& user, std::size_t stable_rounds,
    std::size_t max_rounds, double min_overlap) {
  std::size_t clicks = 0;
  std::size_t stable = 0;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    TOPKPKG_ASSIGN_OR_RETURN(RoundLog log, RunRound(user));
    ++clicks;
    bool is_stable = round > 0 && log.top_k_overlap >= min_overlap;
    stable = is_stable ? stable + 1 : 0;
    if (stable >= stable_rounds) break;
  }
  return clicks;
}

}  // namespace topkpkg::recsys
