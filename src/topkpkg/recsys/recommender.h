#ifndef TOPKPKG_RECSYS_RECOMMENDER_H_
#define TOPKPKG_RECSYS_RECOMMENDER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "topkpkg/common/execution_options.h"
#include "topkpkg/common/random.h"
#include "topkpkg/common/status.h"
#include "topkpkg/common/thread_pool.h"
#include "topkpkg/model/package.h"
#include "topkpkg/pref/preference_set.h"
#include "topkpkg/prob/gaussian_mixture.h"
#include "topkpkg/ranking/incremental_ranker.h"
#include "topkpkg/ranking/rankers.h"
#include "topkpkg/recsys/simulated_user.h"
#include "topkpkg/sampling/importance_sampler.h"
#include "topkpkg/sampling/mcmc_sampler.h"
#include "topkpkg/sampling/rejection_sampler.h"
#include "topkpkg/sampling/sample_pool.h"

namespace topkpkg::storage {
class SessionStore;
}

namespace topkpkg::recsys {

enum class SamplerKind { kRejection, kImportance, kMcmc };

const char* SamplerKindName(SamplerKind s);

struct RecommenderOptions {
  // Presentation mix (Sec. 2.2): exploit with the current best packages,
  // explore with random ones.
  std::size_t num_recommended = 5;
  std::size_t num_random = 5;
  // Target sample pool size per round.
  std::size_t num_samples = 300;
  SamplerKind sampler = SamplerKind::kMcmc;
  ranking::Semantics semantics = ranking::Semantics::kExp;
  ranking::RankingOptions ranking;
  sampling::SamplerOptions sampler_base;
  sampling::McmcSamplerOptions mcmc;
  sampling::ImportanceSamplerOptions importance;
  // Use the transitively reduced constraint set (Sec. 3.3 pruning).
  bool prune_constraints = true;
  // Optional Sec. 7 schema predicate applied to recommended packages.
  topk::TopKPkgSearch::PackageFilter package_filter;
  // Round engine. true (default) = the incremental serving loop: the sample
  // pool persists across rounds, each round scans it against the accumulated
  // feedback, replaces only the violators with fresh posterior draws
  // (Sec. 3.4 — survivors still follow the posterior), and re-searches only
  // the replacements, serving the rest from the ranking layer's top-list
  // cache. false = the classic from-scratch oracle: regenerate all
  // num_samples samples and recompute every top list each round. Both paths
  // draw from the same RNG stream but consume different amounts of it, so
  // their sample pools (and hence recommendations) differ per round; the
  // incremental path's correctness is instead asserted by ranking the same
  // pool both incrementally and from scratch (see incremental_ranker_test).
  bool incremental = true;
  // RoundLog history the recommender retains — newest rounds win — and
  // Checkpoint() persists alongside the session state. 0 disables retention.
  std::size_t max_round_history = 64;
  // Recommender-level execution seam. exec.pool, when set, is the shared
  // caller-owned pool every phase borrows (the SessionManager injects its
  // one pool here so N sessions never spawn N pools); phases still honor
  // their own exec.num_threads caps. exec.num_threads == 0 (the default)
  // derives the owned-pool size from the phase knobs as before.
  ExecutionOptions exec{/*num_threads=*/0, /*pool=*/nullptr};
};

// One elicitation round's record.
struct RoundLog {
  std::vector<model::Package> presented;
  std::vector<Vec> presented_vectors;
  std::size_t num_recommended = 0;  // First entries are the exploit slots.
  std::size_t clicked = 0;
  std::vector<model::Package> top_k;  // Current best list after sampling.
  // Overlap (TopKOverlap) between this round's top-k and the previous one;
  // top_k_changed is overlap < 1.0. RunUntilConverged's stability check
  // reads the same field, so the two never disagree.
  double top_k_overlap = 0.0;
  bool top_k_changed = true;
  sampling::SampleStats sampling_stats;
  // Incremental-engine reuse accounting (from-scratch rounds report
  // samples_resampled = pool size and zero reuse).
  std::size_t samples_reused = 0;     // Pool survivors kept this round.
  std::size_t samples_resampled = 0;  // Fresh posterior draws this round.
  std::size_t searches_skipped = 0;   // Top lists served from the cache.
  // Unique-weight dedup inside this round's search phase: of the samples
  // that needed a search, how many were duplicates served by the ranker's
  // in-call memo vs distinct weight vectors actually walked. What makes the
  // batched-search (and memo) wins attributable per round.
  std::size_t searches_deduped = 0;
  std::size_t searches_unique = 0;
  // Per-phase wall-clock (seconds).
  double maintain_seconds = 0.0;  // Violator scan + pool surgery.
  double sample_seconds = 0.0;    // Fresh sample draws.
  double rank_seconds = 0.0;      // Per-sample searches + aggregation.
};

// Overlap |a ∩ b| / |a ∪ b| of two top-k package lists (1.0 when both are
// empty) — the single stability metric behind RoundLog::top_k_overlap,
// RoundLog::top_k_changed, and RunUntilConverged's convergence test.
double TopKOverlap(const std::vector<model::Package>& a,
                   const std::vector<model::Package>& b);

// The interactive package recommender (Sec. 2): maintains the Gaussian
// mixture prior plus the elicited PreferenceSet, keeps a posterior sample
// pool alive across rounds (replacing only feedback violators per round,
// unless options.incremental is off), ranks packages under the configured
// semantics, presents top + random packages, and folds the user's click back
// into the preference DAG as "clicked ≻ every other presented package".
class PackageRecommender {
 public:
  // The supported construction path: validates `options` (and the evaluator
  // / prior wiring) and returns InvalidArgument naming the offending field
  // instead of asserting or misbehaving later. `evaluator` and `prior` must
  // outlive the recommender; so must `options.exec.pool` when set.
  static Result<std::unique_ptr<PackageRecommender>> Create(
      const model::PackageEvaluator* evaluator,
      const prob::GaussianMixture* prior, RecommenderOptions options,
      uint64_t seed);

  // Deprecated: unvalidated construction, kept as a thin wrapper for one
  // release. Invalid options surface later and less clearly (empty draws,
  // degenerate rounds); new code should call Create() and handle the typed
  // error.
  PackageRecommender(const model::PackageEvaluator* evaluator,
                     const prob::GaussianMixture* prior,
                     RecommenderOptions options, uint64_t seed);

  // Executes one full round against a simulated user. On cyclic feedback the
  // conflicting click is skipped (the paper re-elicits in that case).
  Result<RoundLog> RunRound(const SimulatedUser& user);

  // Runs rounds until the recommended top-k list is stable for
  // `stable_rounds` consecutive rounds (or `max_rounds` is hit); returns the
  // number of clicks (= rounds) consumed, the Fig. 8 metric. A round counts
  // as stable when RoundLog::top_k_overlap is at least `min_overlap`
  // (1.0 = lists must be identical; lower values tolerate the jitter of
  // sampling + budgeted search).
  Result<std::size_t> RunUntilConverged(const SimulatedUser& user,
                                        std::size_t stable_rounds,
                                        std::size_t max_rounds,
                                        double min_overlap = 1.0);

  const pref::PreferenceSet& feedback() const { return feedback_; }
  const std::vector<model::Package>& current_top_k() const {
    return current_top_k_;
  }
  // The persistent sample pool (empty until the first incremental round).
  const sampling::SamplePool& pool() const { return pool_; }
  // Retained RoundLogs, oldest first (at most options.max_round_history).
  const std::vector<RoundLog>& round_history() const { return history_; }

  // --- durable sessions (storage/session_store.h) ------------------------
  //
  // Checkpoint writes the session's full serving state — feedback DAG,
  // sample pool with its stable SampleIds, the ranking layer's top-list
  // cache, RoundLog history, RNG stream position and the noise/fallback
  // bookkeeping — under `session_id`. Restore loads it back into a
  // recommender constructed with the *same* evaluator, prior, options and
  // code version (a config fingerprint is verified), after which the next
  // RunRound continues exactly as the uninterrupted session would:
  // bit-identical recommendations, survivors reused, top lists served from
  // the warm cache instead of a cold full redraw.
  //
  // Checkpoints are crash-atomic as a unit: the state records alternate
  // between two kind slots by checkpoint parity and the meta record — one
  // atomic append, written last — commits the sequence that selects the
  // slot, so a crash anywhere mid-Checkpoint only dirties the slot the
  // *next* generation owns and Restore falls back to the last committed
  // checkpoint. FailedPrecondition is reserved for stores whose committed
  // slot was damaged externally.
  Status Checkpoint(storage::SessionStore& store,
                    std::uint64_t session_id) const;
  Status Restore(const storage::SessionStore& store,
                 std::uint64_t session_id);

 private:
  Result<std::vector<sampling::WeightedSample>> DrawSamples(
      const sampling::ConstraintChecker& checker, std::size_t n,
      sampling::SampleStats* stats);
  // DrawSamples with the unreachable-region fallback: on ResourceExhausted
  // the draw retries unconstrained (prior-only) so a noisy, practically
  // empty valid region degrades gracefully instead of failing the round.
  // `used_fallback`, when provided, reports whether the fallback fired.
  Result<std::vector<sampling::WeightedSample>> DrawSamplesWithFallback(
      const sampling::ConstraintChecker& checker, std::size_t n,
      sampling::SampleStats* stats, bool* used_fallback = nullptr);

  Result<ranking::RankingResult> RankFromScratch(
      const sampling::ConstraintChecker& checker,
      const ranking::RankingOptions& ropts, RoundLog* log);
  Result<ranking::RankingResult> RankIncremental(
      const sampling::ConstraintChecker& checker,
      const ranking::RankingOptions& ropts, RoundLog* log);

  // The recommender's worker pool: options.exec.pool when the caller
  // injected a shared one (the SessionManager seam), else a pool created
  // lazily on first use and kept for the recommender's lifetime; sample
  // draws, per-sample searches and the batched violator scan all borrow it,
  // so incremental rounds stop paying a pool spawn/join per phase. Returns
  // nullptr (= run serial) when no pool is injected and every
  // exec.num_threads knob is 1.
  ThreadPool* Workers();

  // Compact fingerprint of the construction-time configuration, stamped
  // into checkpoints so Restore can reject a differently-configured host.
  std::string ConfigFingerprint() const;

  const model::PackageEvaluator* evaluator_;
  const prob::GaussianMixture* prior_;
  RecommenderOptions options_;
  Rng rng_;
  pref::PreferenceSet feedback_;
  std::vector<model::Package> current_top_k_;
  std::vector<RoundLog> history_;
  // Monotone per-session checkpoint counter (the torn-checkpoint detector).
  mutable std::uint64_t checkpoint_seq_ = 0;
  // Incremental-engine state: the cross-round sample pool and the stateful
  // ranker holding the SampleId-keyed top-list cache.
  sampling::SamplePool pool_;
  ranking::IncrementalRanker ranker_;
  std::unique_ptr<ThreadPool> workers_;
  // The ImportanceSampler the current round's draw built (reset per round).
  // Survivor reweighting reuses it instead of re-running Create()'s grid
  // decomposition — the round's replacement draw already paid that cost and
  // Create() is deterministic, so the proposal is identical either way.
  std::optional<sampling::ImportanceSampler> round_is_sampler_;
  // Constraints (by "better|worse" key pair) the pool has already been
  // maintained against. Under the Sec. 7 noise model the per-round eviction
  // coin is flipped only for constraints *not* in this set — re-flipping for
  // old constraints every round would compound survivor eviction to
  // 1-(1-ψ)^(x·rounds) and drain the pool toward the hard posterior.
  std::unordered_set<std::string> seen_constraint_keys_;
  // Ids of pool samples that came from an unconstrained fallback draw and
  // have not been validated since. Those never had any (noise-)acceptance
  // applied, so the next noisy maintenance pass scans them (and only them)
  // against the full constraint set; importance-sampler pools holding such
  // samples redraw fully (their weights are relative to the prior-only
  // proposal). The hard-constraint batched scan self-heals regardless.
  std::unordered_set<sampling::SampleId> fallback_sample_ids_;
};

}  // namespace topkpkg::recsys

#endif  // TOPKPKG_RECSYS_RECOMMENDER_H_
