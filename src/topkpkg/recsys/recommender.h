#ifndef TOPKPKG_RECSYS_RECOMMENDER_H_
#define TOPKPKG_RECSYS_RECOMMENDER_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "topkpkg/common/random.h"
#include "topkpkg/common/status.h"
#include "topkpkg/model/package.h"
#include "topkpkg/pref/preference_set.h"
#include "topkpkg/prob/gaussian_mixture.h"
#include "topkpkg/ranking/rankers.h"
#include "topkpkg/recsys/simulated_user.h"
#include "topkpkg/sampling/importance_sampler.h"
#include "topkpkg/sampling/mcmc_sampler.h"
#include "topkpkg/sampling/rejection_sampler.h"

namespace topkpkg::recsys {

enum class SamplerKind { kRejection, kImportance, kMcmc };

const char* SamplerKindName(SamplerKind s);

struct RecommenderOptions {
  // Presentation mix (Sec. 2.2): exploit with the current best packages,
  // explore with random ones.
  std::size_t num_recommended = 5;
  std::size_t num_random = 5;
  // Samples regenerated per round from the (prior, feedback) posterior.
  std::size_t num_samples = 300;
  SamplerKind sampler = SamplerKind::kMcmc;
  ranking::Semantics semantics = ranking::Semantics::kExp;
  ranking::RankingOptions ranking;
  sampling::SamplerOptions sampler_base;
  sampling::McmcSamplerOptions mcmc;
  sampling::ImportanceSamplerOptions importance;
  // Use the transitively reduced constraint set (Sec. 3.3 pruning).
  bool prune_constraints = true;
  // Optional Sec. 7 schema predicate applied to recommended packages.
  topk::TopKPkgSearch::PackageFilter package_filter;
};

// One elicitation round's record.
struct RoundLog {
  std::vector<model::Package> presented;
  std::vector<Vec> presented_vectors;
  std::size_t num_recommended = 0;  // First entries are the exploit slots.
  std::size_t clicked = 0;
  std::vector<model::Package> top_k;  // Current best list after sampling.
  bool top_k_changed = true;
  sampling::SampleStats sampling_stats;
};

// The interactive package recommender (Sec. 2): maintains the Gaussian
// mixture prior plus the elicited PreferenceSet, regenerates a constrained
// sample pool each round, ranks packages under the configured semantics,
// presents top + random packages, and folds the user's click back into the
// preference DAG as "clicked ≻ every other presented package".
class PackageRecommender {
 public:
  // `evaluator` and `prior` must outlive the recommender.
  PackageRecommender(const model::PackageEvaluator* evaluator,
                     const prob::GaussianMixture* prior,
                     RecommenderOptions options, uint64_t seed);

  // Executes one full round against a simulated user. On cyclic feedback the
  // conflicting click is skipped (the paper re-elicits in that case).
  Result<RoundLog> RunRound(const SimulatedUser& user);

  // Runs rounds until the recommended top-k list is stable for
  // `stable_rounds` consecutive rounds (or `max_rounds` is hit); returns the
  // number of clicks (= rounds) consumed, the Fig. 8 metric. A round counts
  // as stable when the overlap |old ∩ new| / |old ∪ new| of the top-k lists
  // is at least `min_overlap` (1.0 = lists must be identical; lower values
  // tolerate the jitter of sampling + budgeted search).
  Result<std::size_t> RunUntilConverged(const SimulatedUser& user,
                                        std::size_t stable_rounds,
                                        std::size_t max_rounds,
                                        double min_overlap = 1.0);

  const pref::PreferenceSet& feedback() const { return feedback_; }
  const std::vector<model::Package>& current_top_k() const {
    return current_top_k_;
  }

 private:
  Result<std::vector<sampling::WeightedSample>> DrawSamples(
      const sampling::ConstraintChecker& checker,
      sampling::SampleStats* stats);

  const model::PackageEvaluator* evaluator_;
  const prob::GaussianMixture* prior_;
  RecommenderOptions options_;
  Rng rng_;
  pref::PreferenceSet feedback_;
  std::vector<model::Package> current_top_k_;
};

}  // namespace topkpkg::recsys

#endif  // TOPKPKG_RECSYS_RECOMMENDER_H_
