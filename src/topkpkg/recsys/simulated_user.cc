#include "topkpkg/recsys/simulated_user.h"

namespace topkpkg::recsys {

std::size_t SimulatedUser::Click(const std::vector<Vec>& presented_vectors,
                                 Rng& rng) const {
  if (presented_vectors.empty()) return 0;
  if (noise_psi_ < 1.0 && !rng.Bernoulli(noise_psi_)) {
    return static_cast<std::size_t>(
        rng.UniformInt(presented_vectors.size()));
  }
  std::size_t best = 0;
  double best_u = TrueUtility(presented_vectors[0]);
  for (std::size_t i = 1; i < presented_vectors.size(); ++i) {
    double u = TrueUtility(presented_vectors[i]);
    if (u > best_u) {
      best_u = u;
      best = i;
    }
  }
  return best;
}

}  // namespace topkpkg::recsys
