#include "topkpkg/data/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "topkpkg/common/vec.h"

namespace topkpkg::data {

Status SaveCsv(const model::ItemTable& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("SaveCsv: cannot open " + path);
  for (std::size_t f = 0; f < table.num_features(); ++f) {
    if (f > 0) out << ',';
    out << table.feature_name(f);
  }
  out << '\n';
  out.precision(17);
  for (std::size_t i = 0; i < table.num_items(); ++i) {
    for (std::size_t f = 0; f < table.num_features(); ++f) {
      if (f > 0) out << ',';
      if (!table.is_null(static_cast<model::ItemId>(i), f)) {
        out << table.value(static_cast<model::ItemId>(i), f);
      }
    }
    out << '\n';
  }
  if (!out) return Status::Internal("SaveCsv: write failed for " + path);
  return Status::OK();
}

Result<model::ItemTable> LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("LoadCsv: cannot open " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("LoadCsv: empty file " + path);
  }
  std::vector<std::string> names;
  {
    std::stringstream ss(line);
    std::string tok;
    while (std::getline(ss, tok, ',')) names.push_back(tok);
  }
  std::vector<Vec> rows;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Vec row;
    row.reserve(names.size());
    std::stringstream ss(line);
    std::string tok;
    // getline drops a trailing empty cell; pad below.
    while (std::getline(ss, tok, ',')) {
      if (tok.empty()) {
        row.push_back(model::kNullValue);
      } else {
        char* end = nullptr;
        double v = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str()) {
          return Status::InvalidArgument("LoadCsv: bad number '" + tok +
                                         "' at line " +
                                         std::to_string(line_no));
        }
        row.push_back(v);
      }
    }
    while (row.size() < names.size()) row.push_back(model::kNullValue);
    if (row.size() != names.size()) {
      return Status::InvalidArgument("LoadCsv: wrong column count at line " +
                                     std::to_string(line_no));
    }
    rows.push_back(std::move(row));
  }
  return model::ItemTable::Create(std::move(rows), std::move(names));
}

}  // namespace topkpkg::data
