#ifndef TOPKPKG_DATA_CSV_H_
#define TOPKPKG_DATA_CSV_H_

#include <string>

#include "topkpkg/common/status.h"
#include "topkpkg/model/item_table.h"

namespace topkpkg::data {

// Writes `table` as CSV with a header row of feature names; null values
// become empty cells.
Status SaveCsv(const model::ItemTable& table, const std::string& path);

// Reads a CSV produced by SaveCsv (or any numeric CSV with a header row).
// Empty cells load as nulls.
Result<model::ItemTable> LoadCsv(const std::string& path);

}  // namespace topkpkg::data

#endif  // TOPKPKG_DATA_CSV_H_
