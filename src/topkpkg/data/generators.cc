#include "topkpkg/data/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "topkpkg/common/random.h"
#include "topkpkg/common/vec.h"

namespace topkpkg::data {

namespace {

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

const char* SyntheticKindName(SyntheticKind kind) {
  switch (kind) {
    case SyntheticKind::kUniform:
      return "UNI";
    case SyntheticKind::kPowerLaw:
      return "PWR";
    case SyntheticKind::kCorrelated:
      return "COR";
    case SyntheticKind::kAntiCorrelated:
      return "ANT";
  }
  return "?";
}

Result<model::ItemTable> GenerateUniform(std::size_t num_items,
                                         std::size_t num_features,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> rows(num_items);
  for (auto& row : rows) row = rng.UniformVector(num_features, 0.0, 1.0);
  return model::ItemTable::Create(std::move(rows));
}

Result<model::ItemTable> GeneratePowerLaw(std::size_t num_items,
                                          std::size_t num_features,
                                          std::uint64_t seed, double alpha) {
  Rng rng(seed);
  std::vector<Vec> rows(num_items, Vec(num_features));
  Vec col_max(num_features, 0.0);
  for (auto& row : rows) {
    for (std::size_t f = 0; f < num_features; ++f) {
      // Pareto minimum is 1; shift to start at 0 so small values exist.
      row[f] = rng.Pareto(alpha) - 1.0;
      col_max[f] = std::max(col_max[f], row[f]);
    }
  }
  for (auto& row : rows) {
    for (std::size_t f = 0; f < num_features; ++f) {
      row[f] = col_max[f] > 0.0 ? row[f] / col_max[f] : 0.0;
    }
  }
  return model::ItemTable::Create(std::move(rows));
}

Result<model::ItemTable> GenerateCorrelated(std::size_t num_items,
                                            std::size_t num_features,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> rows(num_items, Vec(num_features));
  for (auto& row : rows) {
    // A per-item level plus small independent jitter: all features track the
    // level, so they are positively correlated across items.
    double level = Clamp01(rng.Gaussian(0.5, 0.18));
    for (std::size_t f = 0; f < num_features; ++f) {
      row[f] = Clamp01(level + rng.Gaussian(0.0, 0.06));
    }
  }
  return model::ItemTable::Create(std::move(rows));
}

Result<model::ItemTable> GenerateAntiCorrelated(std::size_t num_items,
                                                std::size_t num_features,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> rows(num_items, Vec(num_features));
  for (auto& row : rows) {
    // Zero-sum perturbation around 0.5 keeps Σ row ≈ m/2: a good value in
    // one dimension is paid for in the others (the classic hard case for
    // skylines).
    Vec noise(num_features);
    double mean = 0.0;
    for (auto& x : noise) {
      x = rng.Gaussian(0.0, 0.25);
      mean += x;
    }
    mean /= static_cast<double>(num_features);
    for (std::size_t f = 0; f < num_features; ++f) {
      row[f] = Clamp01(0.5 + (noise[f] - mean));
    }
  }
  return model::ItemTable::Create(std::move(rows));
}

Result<model::ItemTable> GenerateSynthetic(SyntheticKind kind,
                                           std::size_t num_items,
                                           std::size_t num_features,
                                           std::uint64_t seed) {
  switch (kind) {
    case SyntheticKind::kUniform:
      return GenerateUniform(num_items, num_features, seed);
    case SyntheticKind::kPowerLaw:
      return GeneratePowerLaw(num_items, num_features, seed);
    case SyntheticKind::kCorrelated:
      return GenerateCorrelated(num_items, num_features, seed);
    case SyntheticKind::kAntiCorrelated:
      return GenerateAntiCorrelated(num_items, num_features, seed);
  }
  return Status::InvalidArgument("GenerateSynthetic: unknown kind");
}

}  // namespace topkpkg::data
