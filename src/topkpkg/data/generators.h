#ifndef TOPKPKG_DATA_GENERATORS_H_
#define TOPKPKG_DATA_GENERATORS_H_

#include <cstddef>
#include <cstdint>

#include "topkpkg/common/status.h"
#include "topkpkg/model/item_table.h"

namespace topkpkg::data {

// The four synthetic dataset families of Sec. 5, re-implementing the
// standard skyline-benchmark recipes of Börzsönyi et al. [4]:
//   UNI — independent uniform feature values in [0,1];
//   PWR — independent power-law (Pareto, α = 2.5) values normalized to [0,1];
//   COR — correlated: values cluster around a shared per-item level;
//   ANT — anti-correlated: values trade off against each other around a
//         constant per-item sum.
enum class SyntheticKind { kUniform, kPowerLaw, kCorrelated, kAntiCorrelated };

const char* SyntheticKindName(SyntheticKind kind);

Result<model::ItemTable> GenerateUniform(std::size_t num_items,
                                         std::size_t num_features,
                                         std::uint64_t seed);

// Pareto(alpha) per value, then each feature column is normalized by its
// maximum (the paper: "normalized into the range [0,1]").
Result<model::ItemTable> GeneratePowerLaw(std::size_t num_items,
                                          std::size_t num_features,
                                          std::uint64_t seed,
                                          double alpha = 2.5);

Result<model::ItemTable> GenerateCorrelated(std::size_t num_items,
                                            std::size_t num_features,
                                            std::uint64_t seed);

Result<model::ItemTable> GenerateAntiCorrelated(std::size_t num_items,
                                                std::size_t num_features,
                                                std::uint64_t seed);

Result<model::ItemTable> GenerateSynthetic(SyntheticKind kind,
                                           std::size_t num_items,
                                           std::size_t num_features,
                                           std::uint64_t seed);

}  // namespace topkpkg::data

#endif  // TOPKPKG_DATA_GENERATORS_H_
