#include "topkpkg/data/nba_like.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "topkpkg/common/random.h"
#include "topkpkg/common/vec.h"

namespace topkpkg::data {

namespace {

const char* const kFeatureNames[kNbaNumFeatures] = {
    "games",    "minutes",  "points",    "rebounds", "assists",  "steals",
    "blocks",   "turnovers", "fouls",    "fgm",      "ftm",      "tpm",
    "fg_pct",   "ft_pct",   "tp_pct",    "seasons",  "per36_pts",
};

double Positive(double v) { return v > 0.0 ? v : 0.0; }

}  // namespace

Result<model::ItemTable> GenerateNbaLike(const NbaLikeOptions& options) {
  Rng rng(options.seed);
  std::vector<Vec> rows;
  rows.reserve(options.num_players);
  for (std::size_t i = 0; i < options.num_players; ++i) {
    // Latent factors: skill (talent level) and longevity (career length).
    // Longevity is log-normal-ish and correlates positively with skill —
    // better players stay in the league longer.
    double skill = rng.Gaussian(0.0, 1.0);
    double longevity = std::exp(rng.Gaussian(0.0, 0.8) + 0.35 * skill);

    double seasons = std::clamp(2.0 + 3.0 * longevity, 1.0, 21.0);
    double games = std::clamp(
        seasons * (35.0 + 25.0 * rng.Uniform()) + 40.0 * skill, 5.0, 1611.0);
    double mins_per_game =
        std::clamp(14.0 + 7.0 * skill + rng.Gaussian(0.0, 4.0), 2.0, 43.0);
    double minutes = games * mins_per_game;

    // Scoring/volume stats scale with minutes and skill; per-minute rates
    // carry independent role noise (scorers vs defenders vs playmakers).
    double score_rate =
        Positive(0.38 + 0.10 * skill + rng.Gaussian(0.0, 0.08));
    double points = minutes * score_rate;
    double reb_rate = Positive(0.18 + rng.Gaussian(0.0, 0.07));
    double rebounds = minutes * reb_rate;
    double ast_rate = Positive(0.10 + rng.Gaussian(0.0, 0.05));
    double assists = minutes * ast_rate;
    double steals = minutes * Positive(0.030 + rng.Gaussian(0.0, 0.012));
    double blocks = minutes * Positive(0.020 + rng.Gaussian(0.0, 0.015));
    double turnovers = minutes * Positive(0.055 + rng.Gaussian(0.0, 0.015));
    double fouls = minutes * Positive(0.085 + rng.Gaussian(0.0, 0.02));

    double fg_pct =
        std::clamp(0.44 + 0.03 * skill + rng.Gaussian(0.0, 0.05), 0.2, 0.65);
    double ft_pct =
        std::clamp(0.72 + 0.04 * skill + rng.Gaussian(0.0, 0.08), 0.3, 0.95);
    double tp_pct = std::clamp(0.30 + rng.Gaussian(0.0, 0.09), 0.0, 0.5);

    double fgm = points * 0.42 * fg_pct / 0.45;
    double ftm = points * 0.20 * ft_pct / 0.72;
    double tpm = points * 0.08 * tp_pct / 0.30;
    double per36_pts = 36.0 * score_rate;

    rows.push_back(Vec{games, minutes, points, rebounds, assists, steals,
                       blocks, turnovers, fouls, fgm, ftm, tpm, fg_pct,
                       ft_pct, tp_pct, seasons, per36_pts});
  }
  std::vector<std::string> names(kFeatureNames,
                                 kFeatureNames + kNbaNumFeatures);
  return model::ItemTable::Create(std::move(rows), std::move(names));
}

Result<model::ItemTable> GenerateNbaLikeExperiment(
    std::size_t num_features, std::uint64_t selection_seed,
    const NbaLikeOptions& options) {
  if (num_features == 0 || num_features > kNbaNumFeatures) {
    return Status::InvalidArgument(
        "GenerateNbaLikeExperiment: need 1..17 features");
  }
  TOPKPKG_ASSIGN_OR_RETURN(model::ItemTable full, GenerateNbaLike(options));
  Rng rng(selection_seed);
  std::vector<std::size_t> chosen =
      rng.SampleWithoutReplacement(kNbaNumFeatures, num_features);
  std::sort(chosen.begin(), chosen.end());
  return full.SelectFeatures(chosen);
}

}  // namespace topkpkg::data
