#ifndef TOPKPKG_DATA_NBA_LIKE_H_
#define TOPKPKG_DATA_NBA_LIKE_H_

#include <cstddef>
#include <cstdint>

#include "topkpkg/common/status.h"
#include "topkpkg/model/item_table.h"

namespace topkpkg::data {

// Deterministic synthesizer standing in for the paper's NBA career-statistics
// dataset (databasebasketball.com, 3705 players, 17 features; the original
// site is defunct). Rows are built from two latent per-player factors —
// skill and longevity — so that volume statistics (games, minutes, points,
// rebounds, ...) are heavy-tailed and strongly positively correlated, while
// efficiency percentages are bounded and weakly correlated, matching the
// statistical shape that drives the paper's experiments. See DESIGN.md's
// substitution table.
struct NbaLikeOptions {
  std::size_t num_players = 3705;
  std::uint64_t seed = 1977;  // Deterministic default roster.
};

inline constexpr std::size_t kNbaNumFeatures = 17;

// Full 17-feature table (career totals + percentages), all non-negative.
Result<model::ItemTable> GenerateNbaLike(const NbaLikeOptions& options = {});

// The experimental table: `num_features` (the paper uses 10) columns chosen
// pseudo-randomly from the 17 by `selection_seed`.
Result<model::ItemTable> GenerateNbaLikeExperiment(
    std::size_t num_features, std::uint64_t selection_seed,
    const NbaLikeOptions& options = {});

}  // namespace topkpkg::data

#endif  // TOPKPKG_DATA_NBA_LIKE_H_
