#ifndef TOPKPKG_PREF_PREFERENCE_H_
#define TOPKPKG_PREF_PREFERENCE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "topkpkg/common/random.h"
#include "topkpkg/common/vec.h"
#include "topkpkg/model/package.h"

namespace topkpkg::pref {

// One elicited pairwise preference ρ := p₁ ≻ p₂ over packages, stored as the
// difference of the packages' normalized feature vectors. A weight vector w
// satisfies ρ iff w · (p₁ - p₂) ≥ 0 — each preference is a closed linear
// half-space constraint, so the valid region is a convex polytope (Lemma 2).
struct Preference {
  Vec diff;                // better − worse (normalized feature space).
  std::string better_key;  // Canonical package keys; used by the DAG.
  std::string worse_key;

  static Preference FromVectors(const Vec& better, const Vec& worse,
                                std::string better_key = "",
                                std::string worse_key = "");
};

// Default slack for Satisfies(); shared by the batched constraint kernels so
// batch and per-sample verdicts agree exactly.
inline constexpr double kSatisfiesEps = 1e-12;

// True iff w satisfies ρ (w · diff ≥ -eps; the tiny slack guards against
// floating-point jitter on boundary constraints).
bool Satisfies(const Vec& w, const Preference& pref, double eps = kSatisfiesEps);

// Number of preferences in `prefs` violated by `w`.
std::size_t CountViolations(const Vec& w, const std::vector<Preference>& prefs);

// True iff `w` satisfies every preference.
bool SatisfiesAll(const Vec& w, const std::vector<Preference>& prefs);

// Sec. 7 noise model: each feedback is independently "correct" with
// probability ψ. A sample violating x preferences is rejected with
// probability 1 - (1-ψ)^x, the probability that at least one violated
// preference is correct. ψ = 1 recovers hard constraints.
struct NoiseModel {
  double psi = 1.0;

  bool ShouldReject(std::size_t violations, Rng& rng) const;
};

// Generates `count` random pairwise package preferences over random packages
// of size ≤ max_size, each oriented consistently with `hidden_w`. Because
// every generated constraint is satisfied by hidden_w, the valid region is
// guaranteed non-empty (it contains hidden_w). Degenerate pairs with equal
// utility are skipped.
std::vector<Preference> GenerateConsistentPreferences(
    const model::PackageEvaluator& evaluator, const Vec& hidden_w,
    std::size_t count, std::size_t max_size, Rng& rng);

// Draws a uniformly random package with size in [1, max_size].
model::Package RandomPackage(std::size_t num_items, std::size_t max_size,
                             Rng& rng);

}  // namespace topkpkg::pref

#endif  // TOPKPKG_PREF_PREFERENCE_H_
