#ifndef TOPKPKG_PREF_PREFERENCE_SET_H_
#define TOPKPKG_PREF_PREFERENCE_SET_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "topkpkg/common/status.h"
#include "topkpkg/common/vec.h"
#include "topkpkg/pref/preference.h"

namespace topkpkg::pref {

// The set S_ρ of elicited pairwise preferences, organized as a DAG G_ρ over
// the distinct packages seen in feedback (Sec. 3.3): an edge (p_i, p_j)
// records p_i ≻ p_j. The DAG enables
//   * cycle detection (cyclic feedback is rejected so the caller can
//     re-elicit, exactly as the paper suggests),
//   * transitive reduction (Aho–Garey–Ullman) to drop redundant constraints —
//     the "pruning" whose benefit Fig. 5 measures.
class PreferenceSet {
 public:
  // Records `better ≻ worse` (vectors are the packages' normalized feature
  // vectors; keys identify the packages, e.g. Package::Key()). Returns
  // FailedPrecondition if the edge would create a preference cycle, and
  // AlreadyExists-like OK-no-op if the edge is already present.
  Status Add(const Vec& better, const Vec& worse,
             const std::string& better_key, const std::string& worse_key);

  // Convenience for feedback "clicked ≻ every other presented package".
  Status AddClickFeedback(const Vec& clicked, const std::string& clicked_key,
                          const std::vector<Vec>& others,
                          const std::vector<std::string>& other_keys);

  std::size_t num_nodes() const { return vectors_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  // Every recorded constraint (one per DAG edge).
  std::vector<Preference> AllConstraints() const;

  // Constraints surviving transitive reduction: an edge (u,v) is dropped iff
  // v is reachable from u via another path, in which case transitivity of ≻
  // under additive utilities makes the direct constraint redundant.
  std::vector<Preference> ReducedConstraints() const;

  // True iff w satisfies all constraints (reduction does not change this).
  bool Satisfies(const Vec& w) const;

  // Storage-layer snapshot access: the interned nodes (in insertion order)
  // and the adjacency lists adj()[u] = successors of u. Together they are
  // the set's whole state; FromSnapshot below inverts them.
  const std::vector<Vec>& node_vectors() const { return vectors_; }
  const std::vector<std::string>& node_keys() const { return keys_; }
  const std::vector<std::vector<std::size_t>>& adjacency() const {
    return adj_;
  }

  // Rebuilds a set bit-identical to the snapshotted one — same node order,
  // hence the same AllConstraints/ReducedConstraints enumeration order (a
  // restored session must consume feedback exactly as the original would).
  // Validates shape, key uniqueness, index bounds and acyclicity.
  static Result<PreferenceSet> FromSnapshot(
      std::vector<Vec> vectors, std::vector<std::string> keys,
      std::vector<std::vector<std::size_t>> adj);

 private:
  std::size_t InternNode(const Vec& vec, const std::string& key);
  bool Reaches(std::size_t from, std::size_t to) const;

  std::unordered_map<std::string, std::size_t> key_to_node_;
  std::vector<Vec> vectors_;
  std::vector<std::string> keys_;
  std::vector<std::vector<std::size_t>> adj_;  // adj_[u] = successors of u.
  std::size_t num_edges_ = 0;
};

}  // namespace topkpkg::pref

#endif  // TOPKPKG_PREF_PREFERENCE_SET_H_
