#include "topkpkg/pref/preference.h"

#include <cmath>
#include <utility>

namespace topkpkg::pref {

Preference Preference::FromVectors(const Vec& better, const Vec& worse,
                                   std::string better_key,
                                   std::string worse_key) {
  Preference p;
  p.diff = Sub(better, worse);
  p.better_key = std::move(better_key);
  p.worse_key = std::move(worse_key);
  return p;
}

bool Satisfies(const Vec& w, const Preference& pref, double eps) {
  return Dot(w, pref.diff) >= -eps;
}

std::size_t CountViolations(const Vec& w,
                            const std::vector<Preference>& prefs) {
  std::size_t count = 0;
  for (const Preference& p : prefs) {
    if (!Satisfies(w, p)) ++count;
  }
  return count;
}

bool SatisfiesAll(const Vec& w, const std::vector<Preference>& prefs) {
  for (const Preference& p : prefs) {
    if (!Satisfies(w, p)) return false;
  }
  return true;
}

bool NoiseModel::ShouldReject(std::size_t violations, Rng& rng) const {
  if (violations == 0) return false;
  if (psi >= 1.0) return true;
  double keep_prob = std::pow(1.0 - psi, static_cast<double>(violations));
  return !rng.Bernoulli(keep_prob);
}

model::Package RandomPackage(std::size_t num_items, std::size_t max_size,
                             Rng& rng) {
  std::size_t size = 1 + rng.UniformInt(max_size);
  size = std::min(size, num_items);
  std::vector<model::ItemId> items;
  items.reserve(size);
  for (std::size_t idx : rng.SampleWithoutReplacement(num_items, size)) {
    items.push_back(static_cast<model::ItemId>(idx));
  }
  return model::Package::Of(std::move(items));
}

std::vector<Preference> GenerateConsistentPreferences(
    const model::PackageEvaluator& evaluator, const Vec& hidden_w,
    std::size_t count, std::size_t max_size, Rng& rng) {
  std::vector<Preference> prefs;
  prefs.reserve(count);
  const std::size_t n = evaluator.table().num_items();
  while (prefs.size() < count) {
    model::Package a = RandomPackage(n, max_size, rng);
    model::Package b = RandomPackage(n, max_size, rng);
    if (a == b) continue;
    Vec va = evaluator.FeatureVector(a);
    Vec vb = evaluator.FeatureVector(b);
    double ua = Dot(va, hidden_w);
    double ub = Dot(vb, hidden_w);
    if (ua == ub) continue;
    if (ua > ub) {
      prefs.push_back(Preference::FromVectors(va, vb, a.Key(), b.Key()));
    } else {
      prefs.push_back(Preference::FromVectors(vb, va, b.Key(), a.Key()));
    }
  }
  return prefs;
}

}  // namespace topkpkg::pref
