#include "topkpkg/pref/preference_set.h"

#include <algorithm>

namespace topkpkg::pref {

std::size_t PreferenceSet::InternNode(const Vec& vec, const std::string& key) {
  auto it = key_to_node_.find(key);
  if (it != key_to_node_.end()) return it->second;
  std::size_t id = vectors_.size();
  key_to_node_.emplace(key, id);
  vectors_.push_back(vec);
  keys_.push_back(key);
  adj_.emplace_back();
  return id;
}

bool PreferenceSet::Reaches(std::size_t from, std::size_t to) const {
  if (from == to) return true;
  std::vector<std::size_t> stack = {from};
  std::vector<bool> seen(adj_.size(), false);
  seen[from] = true;
  while (!stack.empty()) {
    std::size_t u = stack.back();
    stack.pop_back();
    for (std::size_t v : adj_[u]) {
      if (v == to) return true;
      if (!seen[v]) {
        seen[v] = true;
        stack.push_back(v);
      }
    }
  }
  return false;
}

Status PreferenceSet::Add(const Vec& better, const Vec& worse,
                          const std::string& better_key,
                          const std::string& worse_key) {
  if (better_key == worse_key) {
    return Status::InvalidArgument("PreferenceSet: self-preference");
  }
  std::size_t u = InternNode(better, better_key);
  std::size_t v = InternNode(worse, worse_key);
  if (std::find(adj_[u].begin(), adj_[u].end(), v) != adj_[u].end()) {
    return Status::OK();  // Duplicate feedback is a no-op.
  }
  // Adding u ≻ v creates a cycle iff u is already reachable from v.
  if (Reaches(v, u)) {
    return Status::FailedPrecondition(
        "PreferenceSet: feedback would create a preference cycle (" +
        better_key + " > " + worse_key +
        "); re-elicit by presenting the cycle to the user");
  }
  adj_[u].push_back(v);
  ++num_edges_;
  return Status::OK();
}

Status PreferenceSet::AddClickFeedback(
    const Vec& clicked, const std::string& clicked_key,
    const std::vector<Vec>& others, const std::vector<std::string>& other_keys) {
  for (std::size_t i = 0; i < others.size(); ++i) {
    if (other_keys[i] == clicked_key) continue;
    TOPKPKG_RETURN_IF_ERROR(
        Add(clicked, others[i], clicked_key, other_keys[i]));
  }
  return Status::OK();
}

std::vector<Preference> PreferenceSet::AllConstraints() const {
  std::vector<Preference> out;
  out.reserve(num_edges_);
  for (std::size_t u = 0; u < adj_.size(); ++u) {
    for (std::size_t v : adj_[u]) {
      out.push_back(Preference::FromVectors(vectors_[u], vectors_[v],
                                            keys_[u], keys_[v]));
    }
  }
  return out;
}

std::vector<Preference> PreferenceSet::ReducedConstraints() const {
  // Aho–Garey–Ullman on a DAG: process nodes in reverse topological order,
  // maintaining reach-sets; edge (u,v) is redundant iff v is reachable from
  // some other successor of u.
  const std::size_t n = adj_.size();
  // Topological order via DFS post-order.
  std::vector<int> state(n, 0);  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::size_t> topo;
  topo.reserve(n);
  for (std::size_t root = 0; root < n; ++root) {
    if (state[root] != 0) continue;
    std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
    state[root] = 1;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < adj_[u].size()) {
        std::size_t v = adj_[u][next++];
        if (state[v] == 0) {
          state[v] = 1;
          stack.push_back({v, 0});
        }
      } else {
        state[u] = 2;
        topo.push_back(u);
        stack.pop_back();
      }
    }
  }
  // topo is in post-order: all successors of u appear before u.
  const std::size_t words = (n + 63) / 64;
  std::vector<std::vector<std::uint64_t>> reach(
      n, std::vector<std::uint64_t>(words, 0));
  auto test = [&](const std::vector<std::uint64_t>& bits, std::size_t i) {
    return (bits[i / 64] >> (i % 64)) & 1u;
  };
  auto set = [&](std::vector<std::uint64_t>& bits, std::size_t i) {
    bits[i / 64] |= std::uint64_t{1} << (i % 64);
  };
  std::vector<Preference> out;
  for (std::size_t u : topo) {
    for (std::size_t v : adj_[u]) {
      bool redundant = false;
      for (std::size_t s : adj_[u]) {
        if (s != v && test(reach[s], v)) {
          redundant = true;
          break;
        }
      }
      if (!redundant) {
        out.push_back(Preference::FromVectors(vectors_[u], vectors_[v],
                                              keys_[u], keys_[v]));
      }
    }
    // reach[u] = ∪_{v ∈ adj[u]} ({v} ∪ reach[v]).
    for (std::size_t v : adj_[u]) {
      set(reach[u], v);
      for (std::size_t wIdx = 0; wIdx < words; ++wIdx) {
        reach[u][wIdx] |= reach[v][wIdx];
      }
    }
  }
  return out;
}

Result<PreferenceSet> PreferenceSet::FromSnapshot(
    std::vector<Vec> vectors, std::vector<std::string> keys,
    std::vector<std::vector<std::size_t>> adj) {
  const std::size_t n = vectors.size();
  if (keys.size() != n || adj.size() != n) {
    return Status::InvalidArgument(
        "PreferenceSet::FromSnapshot: nodes/keys/adjacency size mismatch");
  }
  PreferenceSet set;
  std::size_t edges = 0;
  for (std::size_t u = 0; u < n; ++u) {
    auto [it, inserted] = set.key_to_node_.emplace(keys[u], u);
    if (!inserted) {
      return Status::InvalidArgument(
          "PreferenceSet::FromSnapshot: duplicate node key " + keys[u]);
    }
    for (std::size_t v : adj[u]) {
      if (v >= n) {
        return Status::InvalidArgument(
            "PreferenceSet::FromSnapshot: edge target out of range");
      }
      ++edges;
    }
  }
  set.vectors_ = std::move(vectors);
  set.keys_ = std::move(keys);
  set.adj_ = std::move(adj);
  set.num_edges_ = edges;
  // The invariant every caller relies on (cycle-free ≻): reject snapshots
  // that encode a cycle. Any node on a cycle reaches itself through at
  // least one of its successors.
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v : set.adj_[u]) {
      if (set.Reaches(v, u) && u != v) {
        return Status::FailedPrecondition(
            "PreferenceSet::FromSnapshot: snapshot encodes a preference "
            "cycle");
      }
      if (u == v) {
        return Status::InvalidArgument(
            "PreferenceSet::FromSnapshot: self-preference edge");
      }
    }
  }
  return set;
}

bool PreferenceSet::Satisfies(const Vec& w) const {
  for (std::size_t u = 0; u < adj_.size(); ++u) {
    for (std::size_t v : adj_[u]) {
      Vec diff = Sub(vectors_[u], vectors_[v]);
      if (Dot(w, diff) < -1e-12) return false;
    }
  }
  return true;
}

}  // namespace topkpkg::pref
