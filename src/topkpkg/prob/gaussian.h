#ifndef TOPKPKG_PROB_GAUSSIAN_H_
#define TOPKPKG_PROB_GAUSSIAN_H_

#include <cstddef>
#include <vector>

#include "topkpkg/common/random.h"
#include "topkpkg/common/status.h"
#include "topkpkg/common/vec.h"

namespace topkpkg::prob {

// Multivariate Gaussian with dense covariance, stored via its lower-triangular
// Cholesky factor L (covariance = L Lᵀ). Sampling is mean + L·z for standard
// normal z; density evaluation solves the triangular system.
class Gaussian {
 public:
  // Isotropic covariance stddev²·I. Fails if stddev <= 0 or mean is empty.
  static Result<Gaussian> Spherical(Vec mean, double stddev);

  // Diagonal covariance diag(stddevs²). Fails on nonpositive stddevs or a
  // dimension mismatch.
  static Result<Gaussian> Diagonal(Vec mean, Vec stddevs);

  // Full covariance (row-major, dim x dim). Fails if the matrix is not
  // symmetric positive definite.
  static Result<Gaussian> Full(Vec mean, std::vector<Vec> covariance);

  std::size_t dim() const { return mean_.size(); }
  const Vec& mean() const { return mean_; }

  // One draw from the distribution.
  Vec Sample(Rng& rng) const;

  double LogPdf(const Vec& x) const;
  double Pdf(const Vec& x) const;

 private:
  Gaussian(Vec mean, std::vector<double> chol, double log_norm)
      : mean_(std::move(mean)),
        chol_(std::move(chol)),
        log_norm_(log_norm) {}

  // Lower-triangular factor, row-major packed as a dim x dim matrix.
  double L(std::size_t r, std::size_t c) const {
    return chol_[r * mean_.size() + c];
  }

  Vec mean_;
  std::vector<double> chol_;
  double log_norm_;  // -(dim/2)·log(2π) - Σᵢ log Lᵢᵢ
};

}  // namespace topkpkg::prob

#endif  // TOPKPKG_PROB_GAUSSIAN_H_
