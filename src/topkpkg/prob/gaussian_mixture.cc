#include "topkpkg/prob/gaussian_mixture.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace topkpkg::prob {

Result<GaussianMixture> GaussianMixture::Create(
    std::vector<Gaussian> components, std::vector<double> weights) {
  if (components.empty()) {
    return Status::InvalidArgument("GaussianMixture: no components");
  }
  if (weights.size() != components.size()) {
    return Status::InvalidArgument(
        "GaussianMixture: weights/components size mismatch");
  }
  const std::size_t dim = components[0].dim();
  for (const auto& c : components) {
    if (c.dim() != dim) {
      return Status::InvalidArgument(
          "GaussianMixture: component dimension mismatch");
    }
  }
  double total = 0.0;
  for (double w : weights) {
    if (w <= 0.0) {
      return Status::InvalidArgument("GaussianMixture: nonpositive weight");
    }
    total += w;
  }
  for (double& w : weights) w /= total;
  return GaussianMixture(std::move(components), std::move(weights));
}

Result<GaussianMixture> GaussianMixture::Uniform(
    std::vector<Gaussian> components) {
  std::vector<double> weights(components.size(), 1.0);
  return Create(std::move(components), std::move(weights));
}

GaussianMixture GaussianMixture::Random(std::size_t dim,
                                        std::size_t num_components,
                                        double stddev, Rng& rng) {
  std::vector<Gaussian> components;
  components.reserve(num_components);
  for (std::size_t i = 0; i < num_components; ++i) {
    Vec mean = rng.UniformVector(dim, -1.0, 1.0);
    components.push_back(
        std::move(Gaussian::Spherical(std::move(mean), stddev)).value());
  }
  std::vector<double> weights(num_components);
  for (auto& w : weights) w = 0.25 + rng.Uniform();  // Bounded away from 0.
  return std::move(Create(std::move(components), std::move(weights))).value();
}

Vec GaussianMixture::Sample(Rng& rng) const {
  double u = rng.Uniform();
  double acc = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    acc += weights_[i];
    if (u <= acc) return components_[i].Sample(rng);
  }
  return components_.back().Sample(rng);
}

double GaussianMixture::Pdf(const Vec& x) const {
  double p = 0.0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    p += weights_[i] * components_[i].Pdf(x);
  }
  return p;
}

double GaussianMixture::LogPdf(const Vec& x) const {
  // log-sum-exp over component log densities for numerical stability.
  double max_term = -1e300;
  std::vector<double> terms(components_.size());
  for (std::size_t i = 0; i < components_.size(); ++i) {
    terms[i] = std::log(weights_[i]) + components_[i].LogPdf(x);
    max_term = std::max(max_term, terms[i]);
  }
  double sum = 0.0;
  for (double t : terms) sum += std::exp(t - max_term);
  return max_term + std::log(sum);
}

}  // namespace topkpkg::prob
