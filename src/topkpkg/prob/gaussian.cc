#include "topkpkg/prob/gaussian.h"

#include <cmath>
#include <numbers>
#include <utility>

namespace topkpkg::prob {

namespace {

constexpr double kLog2Pi = 1.8378770664093454836;  // log(2π)

// In-place Cholesky decomposition of a row-major symmetric matrix `a`
// (dim x dim). On success `a` holds the lower factor (upper part zeroed).
// Returns false if the matrix is not positive definite.
bool CholeskyInPlace(std::vector<double>& a, std::size_t dim) {
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a[i * dim + j];
      for (std::size_t k = 0; k < j; ++k) {
        sum -= a[i * dim + k] * a[j * dim + k];
      }
      if (i == j) {
        if (sum <= 0.0) return false;
        a[i * dim + i] = std::sqrt(sum);
      } else {
        a[i * dim + j] = sum / a[j * dim + j];
      }
    }
    for (std::size_t j = i + 1; j < dim; ++j) a[i * dim + j] = 0.0;
  }
  return true;
}

double LogNormFromChol(const std::vector<double>& chol, std::size_t dim) {
  double log_det_half = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    log_det_half += std::log(chol[i * dim + i]);
  }
  return -0.5 * static_cast<double>(dim) * kLog2Pi - log_det_half;
}

}  // namespace

Result<Gaussian> Gaussian::Spherical(Vec mean, double stddev) {
  Vec stddevs(mean.size(), stddev);
  return Diagonal(std::move(mean), std::move(stddevs));
}

Result<Gaussian> Gaussian::Diagonal(Vec mean, Vec stddevs) {
  const std::size_t dim = mean.size();
  if (dim == 0) return Status::InvalidArgument("Gaussian: empty mean");
  if (stddevs.size() != dim) {
    return Status::InvalidArgument("Gaussian: stddevs/mean dimension mismatch");
  }
  std::vector<double> chol(dim * dim, 0.0);
  for (std::size_t i = 0; i < dim; ++i) {
    if (stddevs[i] <= 0.0) {
      return Status::InvalidArgument("Gaussian: nonpositive stddev");
    }
    chol[i * dim + i] = stddevs[i];
  }
  double log_norm = LogNormFromChol(chol, dim);
  return Gaussian(std::move(mean), std::move(chol), log_norm);
}

Result<Gaussian> Gaussian::Full(Vec mean, std::vector<Vec> covariance) {
  const std::size_t dim = mean.size();
  if (dim == 0) return Status::InvalidArgument("Gaussian: empty mean");
  if (covariance.size() != dim) {
    return Status::InvalidArgument("Gaussian: covariance row count mismatch");
  }
  std::vector<double> a(dim * dim);
  for (std::size_t i = 0; i < dim; ++i) {
    if (covariance[i].size() != dim) {
      return Status::InvalidArgument("Gaussian: covariance not square");
    }
    for (std::size_t j = 0; j < dim; ++j) {
      if (std::abs(covariance[i][j] - covariance[j][i]) > 1e-9) {
        return Status::InvalidArgument("Gaussian: covariance not symmetric");
      }
      a[i * dim + j] = covariance[i][j];
    }
  }
  if (!CholeskyInPlace(a, dim)) {
    return Status::InvalidArgument(
        "Gaussian: covariance not positive definite");
  }
  double log_norm = LogNormFromChol(a, dim);
  return Gaussian(std::move(mean), std::move(a), log_norm);
}

Vec Gaussian::Sample(Rng& rng) const {
  const std::size_t dim = mean_.size();
  Vec z(dim);
  for (auto& v : z) v = rng.Gaussian();
  Vec out(mean_);
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = 0; j <= i; ++j) out[i] += L(i, j) * z[j];
  }
  return out;
}

double Gaussian::LogPdf(const Vec& x) const {
  const std::size_t dim = mean_.size();
  // Solve L y = (x - mean) by forward substitution; quadratic form = |y|².
  Vec y(dim);
  double quad = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    double sum = x[i] - mean_[i];
    for (std::size_t j = 0; j < i; ++j) sum -= L(i, j) * y[j];
    y[i] = sum / L(i, i);
    quad += y[i] * y[i];
  }
  return log_norm_ - 0.5 * quad;
}

double Gaussian::Pdf(const Vec& x) const { return std::exp(LogPdf(x)); }

}  // namespace topkpkg::prob
