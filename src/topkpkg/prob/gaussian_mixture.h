#ifndef TOPKPKG_PROB_GAUSSIAN_MIXTURE_H_
#define TOPKPKG_PROB_GAUSSIAN_MIXTURE_H_

#include <cstddef>
#include <vector>

#include "topkpkg/common/random.h"
#include "topkpkg/common/status.h"
#include "topkpkg/common/vec.h"
#include "topkpkg/prob/gaussian.h"

namespace topkpkg::prob {

// Finite mixture of multivariate Gaussians. This is the prior P_w over a
// user's hidden weight vector (Sec. 2.1 of the paper): a mixture of Gaussians
// can approximate any density, and the paper deliberately never refits it —
// the posterior is represented implicitly as (prior, feedback constraints).
class GaussianMixture {
 public:
  // Builds a mixture; `weights` must be positive and are normalized to sum
  // to 1. Component dimensions must agree.
  static Result<GaussianMixture> Create(std::vector<Gaussian> components,
                                        std::vector<double> weights);

  // Equal-weight convenience constructor.
  static Result<GaussianMixture> Uniform(std::vector<Gaussian> components);

  // A reproducible random mixture of `num_components` spherical Gaussians
  // whose means lie in [-1,1]^dim — the default experimental prior
  // ("number of Gaussians" axis in Fig. 5).
  static GaussianMixture Random(std::size_t dim, std::size_t num_components,
                                double stddev, Rng& rng);

  std::size_t dim() const { return components_[0].dim(); }
  std::size_t num_components() const { return components_.size(); }
  const std::vector<Gaussian>& components() const { return components_; }
  const std::vector<double>& weights() const { return weights_; }

  Vec Sample(Rng& rng) const;
  double Pdf(const Vec& x) const;
  double LogPdf(const Vec& x) const;

 private:
  GaussianMixture(std::vector<Gaussian> components, std::vector<double> weights)
      : components_(std::move(components)), weights_(std::move(weights)) {}

  std::vector<Gaussian> components_;
  std::vector<double> weights_;
};

}  // namespace topkpkg::prob

#endif  // TOPKPKG_PROB_GAUSSIAN_MIXTURE_H_
