#ifndef TOPKPKG_STORAGE_CODEC_H_
#define TOPKPKG_STORAGE_CODEC_H_

// Versioned binary codecs for the session state the durable store persists:
// the elicited PreferenceSet DAG, the SamplePool (with its process-unique
// SampleIds — identity is part of the state, the incremental ranker's cache
// is keyed by it), the ranking layer's TopListCache, and the RoundLog
// history. Each payload starts with a one-byte format version so kinds can
// evolve independently; decoders reject unknown versions with
// Unimplemented and malformed bytes with OutOfRange/InvalidArgument —
// never UB (every read is bounds-checked through ByteReader).
//
// The contract is *bit-identical* restore: doubles round-trip as IEEE-754
// bit patterns, orders are preserved (pool order, node order, adjacency
// order), so a restored session's next round replays exactly as the
// uninterrupted one would.

#include <string>
#include <vector>

#include "topkpkg/common/serde.h"
#include "topkpkg/common/status.h"
#include "topkpkg/pref/preference_set.h"
#include "topkpkg/ranking/incremental_ranker.h"
#include "topkpkg/recsys/recommender.h"
#include "topkpkg/sampling/sample_pool.h"
#include "topkpkg/storage/record_log.h"

namespace topkpkg::storage {

// Record kinds a checkpointed PackageRecommender session occupies. The
// tombstone bit (session_store.h) is reserved; kinds here must stay below
// it.
inline constexpr RecordKind kKindPreferenceSet = 1;
inline constexpr RecordKind kKindSamplePool = 2;
inline constexpr RecordKind kKindTopListCache = 3;
inline constexpr RecordKind kKindRoundHistory = 4;
inline constexpr RecordKind kKindRecommenderMeta = 5;

// Checkpoints alternate their state records between two kind slots by
// sequence parity (base kind for odd sequences, base + this offset for
// even ones); the meta record — a single atomic append, written last —
// names the sequence and thereby selects the slot. A checkpoint torn by a
// crash mid-write only ever dirties the *other* slot, so Restore falls
// back to the last committed generation instead of losing the session.
inline constexpr RecordKind kKindGenSlotOffset = 8;

inline RecordKind GenSlotKind(RecordKind base, std::uint64_t seq) {
  return seq % 2 == 0 ? base + kKindGenSlotOffset : base;
}

// The single wire format for one model::Package (u32 item count + u32
// item ids), shared by the codecs here and the recommender's meta record.
void PutPackage(ByteWriter& w, const model::Package& p);
Result<model::Package> GetPackage(ByteReader& r);

// --- PreferenceSet -------------------------------------------------------

std::string EncodePreferenceSet(const pref::PreferenceSet& set);
Result<pref::PreferenceSet> DecodePreferenceSet(const std::string& payload);

// --- SamplePool ----------------------------------------------------------

// Decode rebuilds the pool via SamplePool::FromSnapshot, which also raises
// the process-wide id mint past the restored ids.
std::string EncodeSamplePool(const sampling::SamplePool& pool);
Result<sampling::SamplePool> DecodeSamplePool(const std::string& payload);

// --- IncrementalRanker's TopListCache ------------------------------------

std::string EncodeTopListCache(const ranking::IncrementalRanker& ranker);
Status DecodeTopListCacheInto(const std::string& payload,
                              ranking::IncrementalRanker& ranker);

// --- RoundLog history ----------------------------------------------------

std::string EncodeRoundHistory(const std::vector<recsys::RoundLog>& history);
Result<std::vector<recsys::RoundLog>> DecodeRoundHistory(
    const std::string& payload);

}  // namespace topkpkg::storage

#endif  // TOPKPKG_STORAGE_CODEC_H_
