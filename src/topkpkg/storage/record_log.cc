#include "topkpkg/storage/record_log.h"

#include <cstring>
#include <fstream>
#include <utility>

#include "topkpkg/common/crc32.h"
#include "topkpkg/common/serde.h"

namespace topkpkg::storage {

namespace {

// CRC over the record's identity and body: session_id ‖ kind ‖ payload.
std::uint32_t RecordCrc(std::uint64_t session_id, RecordKind kind,
                        const std::string& payload) {
  ByteWriter id_bytes;
  id_bytes.PutU64(session_id);
  id_bytes.PutU32(kind);
  std::uint32_t crc =
      Crc32(id_bytes.bytes().data(), id_bytes.bytes().size());
  return Crc32(payload.data(), payload.size(), crc);
}

Result<std::uint64_t> StreamSize(std::ifstream& in, const std::string& path) {
  in.seekg(0, std::ios::end);
  if (!in.good()) {
    return Status::Internal("record log: cannot seek to end of " + path);
  }
  return static_cast<std::uint64_t>(in.tellg());
}

Status CheckFileHeader(std::ifstream& in, const std::string& path) {
  char header[kFileHeaderSize];
  in.seekg(0, std::ios::beg);
  in.read(header, sizeof(header));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    return Status::Internal("record log: " + path +
                            " is shorter than its file header");
  }
  if (std::memcmp(header, kLogMagic, sizeof(kLogMagic)) != 0) {
    return Status::InvalidArgument("record log: " + path +
                                   " has no TKPS magic (not a session store)");
  }
  const std::uint32_t version = ReadU32Le(header + 4);
  if (version != kLogFormatVersion) {
    return Status::Unimplemented(
        "record log: " + path + " has format version " +
        std::to_string(version) + "; this build reads version " +
        std::to_string(kLogFormatVersion));
  }
  return Status::OK();
}

}  // namespace

Result<RecordLogWriter> RecordLogWriter::Open(const std::string& path,
                                              bool truncate, Env* env) {
  if (env == nullptr) env = Env::Default();
  std::uint64_t existing = 0;
  if (!truncate) {
    std::ifstream probe(path, std::ios::binary);
    if (probe.is_open()) {
      TOPKPKG_ASSIGN_OR_RETURN(existing, StreamSize(probe, path));
      if (existing < kFileHeaderSize) {
        // A crash during store creation can leave a partial file header;
        // nothing after it can have committed, so start the log over.
        existing = 0;
      } else {
        // Appending to a real log: verify it is one.
        TOPKPKG_RETURN_IF_ERROR(CheckFileHeader(probe, path));
      }
    }
  }
  const bool fresh = truncate || existing == 0;
  TOPKPKG_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                           env->NewWritableFile(path, fresh));
  std::uint64_t end = existing;
  if (fresh) {
    std::string header(kLogMagic, sizeof(kLogMagic));
    ByteWriter version;
    version.PutU32(kLogFormatVersion);
    header += version.bytes();
    TOPKPKG_RETURN_IF_ERROR(file->Append(header.data(), header.size()));
    end = kFileHeaderSize;
  }
  return RecordLogWriter(path, env, std::move(file), end);
}

Status RecordLogWriter::RequireUsable() const {
  if (file_ == nullptr) {
    return Status::Internal("record log: writer for " + path_ + " is closed");
  }
  if (poisoned_) {
    return Status::Internal(
        "record log: writer for " + path_ +
        " is poisoned after a partial append it could not undo; reopen the "
        "store to recover the record boundary");
  }
  return Status::OK();
}

Result<std::uint64_t> RecordLogWriter::Append(std::uint64_t session_id,
                                              RecordKind kind,
                                              const std::string& payload) {
  TOPKPKG_RETURN_IF_ERROR(RequireUsable());
  const std::uint64_t offset = end_offset_;
  ByteWriter header;
  header.PutU32(static_cast<std::uint32_t>(payload.size()));
  header.PutU32(RecordCrc(session_id, kind, payload));
  header.PutU64(session_id);
  header.PutU32(kind);
  std::string buf = std::move(header).Take();
  buf.append(payload);
  Status st = file_->Append(buf.data(), buf.size());
  if (!st.ok()) {
    // The append may have pushed a prefix of the record before failing
    // (short write / injected crash). Restore the record boundary so a
    // still-running process that retries does not interleave torn bytes
    // mid-log; if the boundary cannot be restored, poison the writer —
    // reopening the store truncates the torn tail instead.
    Result<std::uint64_t> size = env_->FileSize(path_);
    if (!size.ok() || *size != end_offset_) {
      if (!env_->TruncateFile(path_, end_offset_).ok()) poisoned_ = true;
    }
    return st;
  }
  end_offset_ += buf.size();
  return offset;
}

Status RecordLogWriter::Flush() { return RequireUsable(); }

Status RecordLogWriter::Sync() {
  TOPKPKG_RETURN_IF_ERROR(RequireUsable());
  return file_->Sync();
}

Status RecordLogWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  Status st = file_->Close();
  file_.reset();
  return st;
}

Status RecordLogReader::Replay(
    const std::function<Status(const Record&)>& visit, ReplayStats* stats,
    bool strict) const {
  ReplayStats local;
  std::ifstream in(path_, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("record log: " + path_ + " does not exist");
  }
  TOPKPKG_ASSIGN_OR_RETURN(const std::uint64_t size, StreamSize(in, path_));
  TOPKPKG_RETURN_IF_ERROR(CheckFileHeader(in, path_));

  std::uint64_t pos = kFileHeaderSize;
  char header[kRecordHeaderSize];
  while (pos + kRecordHeaderSize <= size) {
    in.seekg(static_cast<std::streamoff>(pos));
    in.read(header, sizeof(header));
    if (in.gcount() != static_cast<std::streamsize>(sizeof(header))) break;
    Record rec;
    const std::uint32_t payload_len = ReadU32Le(header);
    const std::uint32_t stored_crc = ReadU32Le(header + 4);
    rec.session_id = ReadU64Le(header + 8);
    rec.kind = ReadU32Le(header + 16);
    rec.offset = pos;
    if (pos + kRecordHeaderSize + payload_len > size) {
      // Declared payload runs past EOF: torn tail, never committed.
      break;
    }
    rec.payload.resize(payload_len);
    in.read(rec.payload.data(), static_cast<std::streamsize>(payload_len));
    if (in.gcount() != static_cast<std::streamsize>(payload_len)) break;
    if (RecordCrc(rec.session_id, rec.kind, rec.payload) != stored_crc) {
      // The record is complete but its bytes are damaged — unlike a torn
      // tail this is not a crash shape the append protocol produces, so in
      // strict mode (every consumer but fsck) it poisons the whole log.
      if (strict) {
        if (stats != nullptr) *stats = local;
        return Status::Internal("record log: CRC mismatch at offset " +
                                std::to_string(pos) + " of " + path_);
      }
      ++local.crc_failures;
      pos += kRecordHeaderSize + payload_len;
      continue;
    }
    pos += rec.StoredSize();
    ++local.records;
    local.payload_bytes += payload_len;
    TOPKPKG_RETURN_IF_ERROR(visit(rec));
  }
  local.tail_offset = pos;
  local.torn_tail = pos != size;
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Result<Record> RecordLogReader::ReadAt(std::uint64_t offset) const {
  std::ifstream in(path_, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("record log: " + path_ + " does not exist");
  }
  in.seekg(static_cast<std::streamoff>(offset));
  char header[kRecordHeaderSize];
  in.read(header, sizeof(header));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    return Status::OutOfRange("record log: no record header at offset " +
                              std::to_string(offset) + " of " + path_);
  }
  Record rec;
  const std::uint32_t payload_len = ReadU32Le(header);
  const std::uint32_t stored_crc = ReadU32Le(header + 4);
  rec.session_id = ReadU64Le(header + 8);
  rec.kind = ReadU32Le(header + 16);
  rec.offset = offset;
  rec.payload.resize(payload_len);
  in.read(rec.payload.data(), static_cast<std::streamsize>(payload_len));
  if (in.gcount() != static_cast<std::streamsize>(payload_len)) {
    return Status::OutOfRange("record log: truncated record at offset " +
                              std::to_string(offset) + " of " + path_);
  }
  if (RecordCrc(rec.session_id, rec.kind, rec.payload) != stored_crc) {
    return Status::Internal("record log: CRC mismatch at offset " +
                            std::to_string(offset) + " of " + path_);
  }
  return rec;
}

}  // namespace topkpkg::storage
