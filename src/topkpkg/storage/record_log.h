#ifndef TOPKPKG_STORAGE_RECORD_LOG_H_
#define TOPKPKG_STORAGE_RECORD_LOG_H_

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <functional>
#include <string>

#include "topkpkg/common/status.h"

namespace topkpkg::storage {

// The durable-session layer's on-disk unit: an append-only sequence of
// length-prefixed, CRC32-checksummed records (the LogBase / Bitcask shape —
// the log *is* the database; everything else is an in-memory index rebuilt
// by replay). Layout, all integers little-endian:
//
//   file   := header record*
//   header := magic "TKPS" (4) | format_version u32
//   record := payload_len u32 | crc u32 | session_id u64 | kind u32 | payload
//
// `crc` is CRC-32 (IEEE) over session_id ‖ kind ‖ payload, so a flipped bit
// anywhere in a record's identity or body is rejected at read time, while a
// record cut short by a crash ("torn tail") is recognized by running out of
// bytes and treated as never-written.
using RecordKind = std::uint32_t;

inline constexpr char kLogMagic[4] = {'T', 'K', 'P', 'S'};
inline constexpr std::uint32_t kLogFormatVersion = 1;
inline constexpr std::size_t kFileHeaderSize = 8;
// payload_len + crc + session_id + kind.
inline constexpr std::size_t kRecordHeaderSize = 4 + 4 + 8 + 4;

struct Record {
  std::uint64_t session_id = 0;
  RecordKind kind = 0;
  std::string payload;
  std::uint64_t offset = 0;  // File offset of the record's header.

  // header + payload footprint in the file.
  std::uint64_t StoredSize() const {
    return kRecordHeaderSize + payload.size();
  }
};

// Sequential appender. One record is one buffered write, so a crash leaves
// at most one torn record — always at the tail, where replay stops cleanly.
// Flush() pushes the stream buffer to the OS (process-crash durability; the
// store does not fsync, power-loss durability is out of scope).
class RecordLogWriter {
 public:
  // Opens `path` for appending, creating it (with the file header) when
  // missing or empty. `truncate` starts a fresh empty log regardless of any
  // existing content (the compaction rewrite path).
  static Result<RecordLogWriter> Open(const std::string& path,
                                      bool truncate = false);

  RecordLogWriter(RecordLogWriter&&) = default;
  RecordLogWriter& operator=(RecordLogWriter&&) = default;

  // Appends one record and returns the file offset its header landed at.
  Result<std::uint64_t> Append(std::uint64_t session_id, RecordKind kind,
                               const std::string& payload);

  Status Flush();

  // Offset one past the last appended byte (== current file size).
  std::uint64_t end_offset() const { return end_offset_; }
  const std::string& path() const { return path_; }

 private:
  RecordLogWriter(std::string path, std::ofstream out,
                  std::uint64_t end_offset)
      : path_(std::move(path)),
        out_(std::move(out)),
        end_offset_(end_offset) {}

  std::string path_;
  std::ofstream out_;
  std::uint64_t end_offset_ = 0;
};

// What a replay pass observed. `torn_tail` flags an incomplete record at the
// end of the file; `tail_offset` is where the intact prefix ends (== file
// size on a clean log) — the offset an opener should truncate to before
// appending again. `crc_failures` counts complete-but-corrupt records, which
// only a scan-mode replay (store_fsck) tolerates.
struct ReplayStats {
  std::size_t records = 0;
  std::uint64_t payload_bytes = 0;
  std::size_t crc_failures = 0;
  bool torn_tail = false;
  std::uint64_t tail_offset = 0;
};

// Replay / point-read access to a record log. Stateless: every call opens
// its own read handle, so a reader never observes a stale length for a file
// some writer is appending to.
class RecordLogReader {
 public:
  explicit RecordLogReader(std::string path) : path_(std::move(path)) {}

  // Replays records in append order, invoking `visit` for each intact one.
  // A torn tail stops the replay cleanly (OK status, stats->torn_tail set).
  // A complete record failing its CRC is Internal ("corruption") in strict
  // mode; with `strict` false it is counted, skipped by its declared length,
  // and the replay continues — the fsck behaviour.
  Status Replay(const std::function<Status(const Record&)>& visit,
                ReplayStats* stats = nullptr, bool strict = true) const;

  // Reads and CRC-verifies the single record whose header starts at
  // `offset` (a keydir entry).
  Result<Record> ReadAt(std::uint64_t offset) const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace topkpkg::storage

#endif  // TOPKPKG_STORAGE_RECORD_LOG_H_
