#ifndef TOPKPKG_STORAGE_RECORD_LOG_H_
#define TOPKPKG_STORAGE_RECORD_LOG_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "topkpkg/common/status.h"
#include "topkpkg/storage/env.h"

namespace topkpkg::storage {

// The storage engine's on-disk unit: an append-only sequence of
// length-prefixed, CRC32-checksummed records (the LogBase / Bitcask shape —
// the log *is* the database; everything else is an in-memory index rebuilt
// by replay). One such file is one *segment* of a SessionStore. Layout, all
// integers little-endian:
//
//   file   := header record*
//   header := magic "TKPS" (4) | format_version u32
//   record := payload_len u32 | crc u32 | session_id u64 | kind u32 | payload
//
// `crc` is CRC-32 (IEEE) over session_id ‖ kind ‖ payload, so a flipped bit
// anywhere in a record's identity or body is rejected at read time, while a
// record cut short by a crash ("torn tail") is recognized by running out of
// bytes and treated as never-written.
using RecordKind = std::uint32_t;

inline constexpr char kLogMagic[4] = {'T', 'K', 'P', 'S'};
inline constexpr std::uint32_t kLogFormatVersion = 1;
inline constexpr std::size_t kFileHeaderSize = 8;
// payload_len + crc + session_id + kind.
inline constexpr std::size_t kRecordHeaderSize = 4 + 4 + 8 + 4;

struct Record {
  std::uint64_t session_id = 0;
  RecordKind kind = 0;
  std::string payload;
  std::uint64_t offset = 0;  // File offset of the record's header.

  // header + payload footprint in the file.
  std::uint64_t StoredSize() const {
    return kRecordHeaderSize + payload.size();
  }
};

// Sequential appender over an Env file. One record is one Append, so a
// crash leaves at most one torn record — always at the tail, where replay
// stops cleanly.
//
// Durability is the *caller's* policy, expressed through two levels:
// Append() pushes bytes to the OS (write(2)) — they survive a process
// crash but sit in the page cache until the kernel flushes them, so power
// loss can take them; Sync() fsyncs — bytes acknowledged by a successful
// Sync survive power loss. SessionStore maps its FsyncPolicy onto this:
// kEveryPut syncs inside every Put, kInterval group-commits one Sync per N
// puts (bounded loss window, and note the page cache may persist unsynced
// records out of order — a mid-log corruption replay treats as a hard
// error), kNone never syncs (process-crash durability only). See
// session_store.h for the policy-by-policy contract.
class RecordLogWriter {
 public:
  // Opens `path` for appending, creating it (with the file header) when
  // missing or empty. `truncate` starts a fresh empty log regardless of any
  // existing content (the compaction / segment-creation path). `env` null
  // means Env::Default().
  static Result<RecordLogWriter> Open(const std::string& path,
                                      bool truncate = false,
                                      Env* env = nullptr);

  RecordLogWriter(RecordLogWriter&&) = default;
  RecordLogWriter& operator=(RecordLogWriter&&) = default;

  // Appends one record and returns the file offset its header landed at.
  // On a failed append the writer restores the record boundary (truncating
  // any partial bytes); if even that fails it poisons itself and every
  // later call fails — the file may hold a torn record mid-log otherwise.
  Result<std::uint64_t> Append(std::uint64_t session_id, RecordKind kind,
                               const std::string& payload);

  // Bytes already reach the OS per Append; kept as a cheap no-op seam so
  // call sites read naturally. Fails only on a poisoned writer.
  Status Flush();

  // fsync: everything appended so far survives power loss once this
  // returns OK.
  Status Sync();

  Status Close();

  // Offset one past the last appended byte (== current file size).
  std::uint64_t end_offset() const { return end_offset_; }
  const std::string& path() const { return path_; }

 private:
  RecordLogWriter(std::string path, Env* env,
                  std::unique_ptr<WritableFile> file, std::uint64_t end_offset)
      : path_(std::move(path)),
        env_(env),
        file_(std::move(file)),
        end_offset_(end_offset) {}

  Status RequireUsable() const;

  std::string path_;
  Env* env_;
  std::unique_ptr<WritableFile> file_;
  std::uint64_t end_offset_ = 0;
  bool poisoned_ = false;
};

// What a replay pass observed. `torn_tail` flags an incomplete record at the
// end of the file; `tail_offset` is where the intact prefix ends (== file
// size on a clean log) — the offset an opener should truncate to before
// appending again. `crc_failures` counts complete-but-corrupt records, which
// only a scan-mode replay (store_fsck) tolerates.
struct ReplayStats {
  std::size_t records = 0;
  std::uint64_t payload_bytes = 0;
  std::size_t crc_failures = 0;
  bool torn_tail = false;
  std::uint64_t tail_offset = 0;
};

// Replay / point-read access to a record log. Stateless: every call opens
// its own read handle, so a reader never observes a stale length for a file
// some writer is appending to. Reads go straight to the filesystem (not
// through an Env): crash injection only needs to control what reaches the
// disk, and recovery always reads real state.
class RecordLogReader {
 public:
  explicit RecordLogReader(std::string path) : path_(std::move(path)) {}

  // Replays records in append order, invoking `visit` for each intact one.
  // A torn tail stops the replay cleanly (OK status, stats->torn_tail set).
  // A complete record failing its CRC is Internal ("corruption") in strict
  // mode; with `strict` false it is counted, skipped by its declared length,
  // and the replay continues — the fsck behaviour.
  Status Replay(const std::function<Status(const Record&)>& visit,
                ReplayStats* stats = nullptr, bool strict = true) const;

  // Reads and CRC-verifies the single record whose header starts at
  // `offset` (a keydir entry).
  Result<Record> ReadAt(std::uint64_t offset) const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace topkpkg::storage

#endif  // TOPKPKG_STORAGE_RECORD_LOG_H_
