#ifndef TOPKPKG_STORAGE_ENV_H_
#define TOPKPKG_STORAGE_ENV_H_

// The storage engine's seam to the operating system. Every *mutating*
// filesystem operation the engine performs — appending to a segment,
// fsyncing, creating/renaming/removing files, syncing a directory — goes
// through an Env, so the whole engine can be run over a fault-injecting
// implementation (fault_env.h) that kills it at any write/sync/rename
// boundary and provably recovers. The default Env is raw POSIX fds:
// std::ofstream has no fsync, and the durability contract (FsyncPolicy,
// session_store.h) is meaningless without one.
//
// Reads deliberately stay outside the Env (RecordLogReader uses plain
// ifstreams): crash injection only needs to control what *reaches* the
// disk, and recovery always runs over the real filesystem state.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "topkpkg/common/status.h"

namespace topkpkg::storage {

// A single append-only file handle. Append pushes bytes to the OS (write(2)
// on the default Env — durable against process crash, not power loss);
// Sync() additionally fsyncs, after which the bytes survive power loss.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const char* data, std::size_t n) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

// An exclusive advisory lock on a path, released by destruction. flock(2)
// on the default Env: held per open file description, so a second Open of
// the same store — same process or another — is rejected.
class FileLock {
 public:
  virtual ~FileLock() = default;
};

class Env {
 public:
  virtual ~Env() = default;

  // Opens `path` for appending, creating it when missing; `truncate`
  // discards any existing content first.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status TruncateFile(const std::string& path,
                              std::uint64_t size) = 0;
  // Creates `path` as a directory; OK if it already exists as one.
  virtual Status CreateDir(const std::string& path) = 0;
  // Names (not paths) of the entries in `path`, unsorted.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& path) = 0;
  // fsyncs the directory itself so entry creations/renames/removals under
  // it survive power loss.
  virtual Status SyncDir(const std::string& path) = 0;
  virtual Result<std::uint64_t> FileSize(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  // Takes the single-writer lock: creates `path` if missing and flocks it
  // exclusively, non-blocking. FailedPrecondition when another handle —
  // this process or any other — already holds it.
  virtual Result<std::unique_ptr<FileLock>> LockFile(
      const std::string& path) = 0;

  // The process-wide POSIX Env. Thread-safe (stateless).
  static Env* Default();
};

}  // namespace topkpkg::storage

#endif  // TOPKPKG_STORAGE_ENV_H_
