#ifndef TOPKPKG_STORAGE_SESSION_STORE_H_
#define TOPKPKG_STORAGE_SESSION_STORE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "topkpkg/common/status.h"
#include "topkpkg/storage/record_log.h"

namespace topkpkg::storage {

// Bitcask-style durable key-value store over one record log: the log is the
// database, and an in-memory *keydir* maps (session_id, record_kind) to the
// offset of the latest record for that key. Put appends (the old record
// becomes dead bytes), Get does one point read through the keydir, Open
// rebuilds the keydir by replaying the log (stopping cleanly at — and
// truncating — a torn tail), and Compact rewrites only the live records
// into a fresh log that atomically replaces the old one, dropping every
// superseded record and tombstone.
//
// Concurrency: one SessionStore owns its file; calls are not thread-safe.
class SessionStore {
 public:
  // Per-key index entry: where the latest record lives and how big it is.
  struct KeydirEntry {
    std::uint64_t offset = 0;
    std::uint64_t stored_size = 0;  // header + payload bytes.
  };

  struct Stats {
    std::size_t live_records = 0;
    std::uint64_t live_bytes = 0;  // Stored size of the live records.
    std::uint64_t dead_bytes = 0;  // Superseded records + tombstones.
    std::uint64_t file_bytes = 0;  // Total log size incl. file header.
    bool recovered_torn_tail = false;  // Open() truncated a torn record.
  };

  // Opens (or creates) the store at `path`, replaying the log to rebuild
  // the keydir. A torn tail is truncated away and flagged in stats(); a
  // CRC-corrupt record anywhere else fails the open (Internal).
  static Result<SessionStore> Open(const std::string& path);

  SessionStore(SessionStore&&) = default;
  SessionStore& operator=(SessionStore&&) = default;

  // Upserts the value for (session_id, kind). Kinds with the tombstone bit
  // (top bit) set are reserved for the store itself.
  Status Put(std::uint64_t session_id, RecordKind kind,
             const std::string& payload);

  // Latest value for (session_id, kind); NotFound when absent or deleted.
  Result<std::string> Get(std::uint64_t session_id, RecordKind kind) const;

  bool Contains(std::uint64_t session_id, RecordKind kind) const;

  // Appends a tombstone hiding (session_id, kind) until the next Put.
  // Deleting an absent key is an OK no-op (the tombstone still lands in the
  // log so a replay after an older checkpoint converges).
  Status Delete(std::uint64_t session_id, RecordKind kind);

  // Tombstones every kind of `session_id` in one record.
  Status DeleteSession(std::uint64_t session_id);

  // Distinct session ids with at least one live record, ascending.
  std::vector<std::uint64_t> SessionIds() const;

  // Live kinds of one session, ascending.
  std::vector<RecordKind> KindsOf(std::uint64_t session_id) const;

  // Rewrites live records (keydir order: ascending session, kind) into
  // `path + ".compact"`, then atomically renames it over the log. After a
  // successful compaction dead_bytes is 0. Crash-safe: the original log
  // stays intact until the rename.
  Status Compact();

  Status Flush();

  const Stats& stats() const { return stats_; }
  const std::string& path() const { return path_; }
  std::size_t keydir_size() const { return keydir_.size(); }

 private:
  using Key = std::pair<std::uint64_t, RecordKind>;

  SessionStore(std::string path, RecordLogWriter writer)
      : path_(std::move(path)),
        writer_(std::make_unique<RecordLogWriter>(std::move(writer))) {}

  // Applies one replayed/appended record to the keydir and stats.
  void Apply(std::uint64_t session_id, RecordKind kind, std::uint64_t offset,
             std::uint64_t stored_size);
  void RecountLiveBytes();
  // OK while the log writer is open; Internal after a failed compaction
  // reopen (reads still work, mutations must not dereference null).
  Status RequireWriter() const;

  std::string path_;
  // unique_ptr keeps the store movable while RecordLogWriter holds a stream.
  std::unique_ptr<RecordLogWriter> writer_;
  std::map<Key, KeydirEntry> keydir_;
  Stats stats_;
};

// Record kinds carrying the tombstone bit mark deletions; the payload is
// empty. kSessionTombstone (all ones) deletes every kind of its session.
inline constexpr RecordKind kTombstoneBit = 0x80000000u;
inline constexpr RecordKind kSessionTombstone = 0xFFFFFFFFu;

}  // namespace topkpkg::storage

#endif  // TOPKPKG_STORAGE_SESSION_STORE_H_
