#ifndef TOPKPKG_STORAGE_SESSION_STORE_H_
#define TOPKPKG_STORAGE_SESSION_STORE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "topkpkg/common/status.h"
#include "topkpkg/storage/env.h"
#include "topkpkg/storage/hint_file.h"
#include "topkpkg/storage/record_log.h"

namespace topkpkg::storage {

// When a Put is allowed to return OK relative to the disk. The store always
// write(2)s every record before acknowledging it (process-crash durability
// at every level); the policies differ in when fsync pins the bytes against
// *power loss*:
//
//   kEveryPut — fsync inside every mutation. An OK Put survives power loss.
//     The checkpoint gen-slot protocol's atomicity proof assumes this level.
//   kInterval — group commit: one fsync per `group_commit_puts` mutations
//     (and on Flush/Sync/segment-seal/compaction). Bounded loss window — at
//     most `group_commit_puts - 1` acknowledged mutations can vanish. Assumes the page cache
//     persists in write order; real disks may persist out of order, in
//     which case a lost *middle* record surfaces as a CRC error on replay
//     rather than silently wrong data.
//   kNone — never fsync on the put path (seals, compactions, and explicit
//     Sync still do). Process-crash durability only.
enum class FsyncPolicy { kNone, kInterval, kEveryPut };

struct SessionStoreOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kInterval;
  // kInterval: mutations acknowledged between fsyncs (the group-commit
  // window). A checkpoint burst of N puts + Flush costs one fsync, not N.
  std::size_t group_commit_puts = 32;
  // kInterval: an open group-commit window is also flushed once it has been
  // open this long, so a trickle of puts that never reaches
  // group_commit_puts still hits disk within a bounded time. 0 disables the
  // timer (count-only group commit). The store spawns no thread: the
  // deadline is checked on the mutation path and by MaybeFlush(), which a
  // caller's writeback loop polls (SessionManager's does).
  std::uint64_t flush_interval_ms = 0;
  // Monotonic milliseconds for the flush timer; null means steady_clock.
  // Tests inject a fake clock to step time deterministically.
  std::function<std::uint64_t()> clock_ms;
  // Roll to a fresh segment once the active one reaches this size.
  std::uint64_t segment_max_bytes = 8ull << 20;
  // Auto-compact when any sealed segment's dead/(dead+live) payload ratio
  // reaches this.
  double compact_dead_ratio = 0.6;
  bool auto_compact = true;
  // Filesystem seam; null means Env::Default(). Tests inject
  // FaultInjectingEnv here.
  Env* env = nullptr;
};

// Bitcask-style durable key-value store over a *directory of segments*: the
// logs are the database, and an in-memory *keydir* maps (session_id,
// record_kind) to the segment + offset of the latest record for that key.
//
//   dir/
//     LOCK                  flock'd for the store's lifetime (single writer)
//     segment-000001.tkps   sealed segment (record log)
//     segment-000001.hint   its hint file — O(keydir) startup replay
//     segment-000002.tkps   active segment (highest id without a valid hint)
//
// Put appends to the active segment (the superseded record becomes dead
// bytes), rolling to a new segment at `segment_max_bytes`; sealing writes a
// hint file so Open replays hints instead of scanning logs (any bad hint
// falls back to a scan and is rewritten). Compaction merges the live
// records of *cold* (sealed) segments into one and deletes the rest — the
// active segment is never touched, and every step is ordered (fsync,
// directory sync, rename) so a crash anywhere leaves a recoverable store.
//
// Concurrency: one SessionStore owns its directory (enforced by the LOCK
// file — a second Open fails FailedPrecondition); calls are not
// thread-safe.
class SessionStore {
 public:
  // Per-key index entry: which segment the latest record lives in, where,
  // and how big it is.
  struct KeydirEntry {
    std::uint64_t segment_id = 0;
    std::uint64_t offset = 0;
    std::uint64_t stored_size = 0;  // header + payload bytes.
  };

  struct Stats {
    std::size_t live_records = 0;
    std::uint64_t live_bytes = 0;  // Stored size of the live records.
    std::uint64_t dead_bytes = 0;  // Superseded records + tombstones.
    std::uint64_t file_bytes = 0;  // Total across segments incl. headers.
    bool recovered_torn_tail = false;  // Open() truncated a torn record.
    std::size_t segments = 0;
    // Record-log fsyncs issued (put path, Flush/Sync, seals, compaction
    // rewrites) — the number the FsyncPolicy sweep in the bench compares.
    std::uint64_t fsyncs = 0;
    std::uint64_t segment_rolls = 0;
    std::uint64_t compactions = 0;       // Includes auto_compactions.
    std::uint64_t auto_compactions = 0;
    std::uint64_t failed_auto_compactions = 0;
    // How Open rebuilt the keydir, per sealed segment.
    std::size_t hint_startup_segments = 0;
    std::size_t scanned_startup_segments = 0;
  };

  // Opens (or creates) the store directory at `path`, acquires its writer
  // lock, and rebuilds the keydir — from hint files where valid, by
  // scanning otherwise. A torn tail on a scanned segment is truncated away
  // and flagged in stats(); a CRC-corrupt record anywhere else fails the
  // open (Internal). A second writer on a live store fails
  // FailedPrecondition, as does pointing Open at a regular file (the
  // pre-segmented single-file format, which this version does not read).
  static Result<SessionStore> Open(const std::string& path,
                                   SessionStoreOptions options = {});

  SessionStore(SessionStore&&) = default;
  SessionStore& operator=(SessionStore&&) = default;

  // Upserts the value for (session_id, kind), durable per the store's
  // FsyncPolicy. Kinds with the tombstone bit (top bit) set are reserved
  // for the store itself.
  Status Put(std::uint64_t session_id, RecordKind kind,
             const std::string& payload);

  // Latest value for (session_id, kind); NotFound when absent or deleted.
  Result<std::string> Get(std::uint64_t session_id, RecordKind kind) const;

  bool Contains(std::uint64_t session_id, RecordKind kind) const;

  // Appends a tombstone hiding (session_id, kind) until the next Put.
  // Deleting an absent key is an OK no-op (the tombstone still lands in the
  // log so a replay after an older checkpoint converges).
  Status Delete(std::uint64_t session_id, RecordKind kind);

  // Tombstones every kind of `session_id` in one record.
  Status DeleteSession(std::uint64_t session_id);

  // Distinct session ids with at least one live record, ascending.
  std::vector<std::uint64_t> SessionIds() const;

  // Live kinds of one session, ascending.
  std::vector<RecordKind> KindsOf(std::uint64_t session_id) const;

  // Seals the active segment (when it has records) and merges every cold
  // segment's live records into one, dropping superseded records and
  // tombstones. Crash-safe: the merge builds a `.compact` file, fsyncs it,
  // and renames it into place with directory syncs ordering each step.
  Status Compact();

  // Makes every acknowledged mutation durable per the policy: under
  // kInterval this drains the group-commit window (one fsync); under
  // kEveryPut it is a no-op (already durable); under kNone it stays a
  // no-op by contract.
  Status Flush();

  // Flushes the open group-commit window iff its flush_interval_ms deadline
  // has passed: a cheap poll for writeback loops. No-op (OK) under other
  // policies, with the timer disabled, with no acknowledged mutations
  // pending, or before the deadline.
  Status MaybeFlush();

  // Unconditional fsync of the active segment, regardless of policy.
  Status Sync();

  const Stats& stats() const { return stats_; }
  const std::string& path() const { return path_; }
  std::size_t keydir_size() const { return keydir_.size(); }
  std::uint64_t active_segment_id() const { return active_id_; }

 private:
  using Key = std::pair<std::uint64_t, RecordKind>;

  struct SegmentInfo {
    std::uint64_t data_bytes = 0;  // File size incl. its header.
    std::uint64_t live_bytes = 0;  // Stored size of its live records.
  };

  // Accumulates the active segment's future hint file as records land:
  // the latest event per key plus every whole-session tombstone.
  struct PendingHint {
    std::map<Key, HintEvent> latest;
    std::vector<HintEvent> session_tombs;  // Ascending offset.

    void Track(const HintEvent& ev);
    std::vector<HintEvent> CollectSorted() const;
    void Clear();
  };

  SessionStore(std::string path, SessionStoreOptions options,
               std::unique_ptr<FileLock> lock)
      : path_(std::move(path)), opts_(options), lock_(std::move(lock)) {}

  std::string SegmentPath(std::uint64_t id) const;
  std::string HintPath(std::uint64_t id) const;
  Env* env() const { return opts_.env; }

  // Startup replay of one sealed segment: its hint when valid, a scan
  // (rewriting the hint) otherwise.
  Status RecoverSealedSegment(std::uint64_t id);
  // Full scan of segment `id`, truncating a torn tail. Sealed scans rewrite
  // the hint; an active scan seeds pending_hint_ instead.
  Status ScanSegment(std::uint64_t id, bool sealed);

  // Applies one replayed/appended record to the keydir and the per-segment
  // live-byte accounting.
  void Apply(std::uint64_t session_id, RecordKind kind,
             std::uint64_t segment_id, std::uint64_t offset,
             std::uint64_t stored_size);
  void DropLive(const KeydirEntry& entry);
  void RefreshDerivedStats();

  // Shared mutation tail: policy fsync + keydir apply + auto-compaction
  // probe.
  Status CommitMutation(std::uint64_t session_id, RecordKind kind,
                        std::uint64_t offset, std::uint64_t stored_size);

  // Rolls when the active segment has outgrown segment_max_bytes.
  Status MaybeRoll();
  // Seals the active segment (sync + hint) and starts the next one.
  Status Roll();
  // Merges all cold segments into the lowest cold id (replacing the oldest
  // data keeps dropped tombstones crash-safe). `automatic` only tags the
  // stats.
  Status CompactCold(bool automatic);
  bool ColdSegmentWantsCompaction() const;

  // OK while the log writer is open; Internal after a failed roll left the
  // store writer-less (reads still work, mutations must not dereference
  // null).
  Status RequireWriter() const;

  std::string path_;
  SessionStoreOptions opts_;
  std::unique_ptr<FileLock> lock_;
  // unique_ptr keeps the store movable while RecordLogWriter holds a file.
  std::unique_ptr<RecordLogWriter> writer_;
  std::uint64_t active_id_ = 0;
  std::map<Key, KeydirEntry> keydir_;
  std::map<std::uint64_t, SegmentInfo> segments_;
  PendingHint pending_hint_;
  std::size_t puts_since_sync_ = 0;
  // When the open group-commit window's first put landed (flush-timer
  // clock); meaningful only while puts_since_sync_ > 0 and the timer is on.
  std::uint64_t window_opened_ms_ = 0;
  Stats stats_;
};

// Record kinds carrying the tombstone bit mark deletions; the payload is
// empty. kSessionTombstone (all ones) deletes every kind of its session.
inline constexpr RecordKind kTombstoneBit = 0x80000000u;
inline constexpr RecordKind kSessionTombstone = 0xFFFFFFFFu;

// Segment file naming, shared with store_fsck and the tests.
std::string SegmentFileName(std::uint64_t id);
std::string SegmentHintName(std::uint64_t id);
// Parses "segment-NNNNNN.tkps" → id; 0 when `name` is not a segment file.
std::uint64_t ParseSegmentFileName(const std::string& name);

}  // namespace topkpkg::storage

#endif  // TOPKPKG_STORAGE_SESSION_STORE_H_
