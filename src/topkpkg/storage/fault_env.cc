#include "topkpkg/storage/fault_env.h"

#include <algorithm>
#include <utility>

namespace topkpkg::storage {

namespace {

// Wraps a real WritableFile; every Append/Sync consults the env's failpoint
// counter and keeps its durability bookkeeping current.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultInjectingEnv* env, std::string path,
                    std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(const char* data, std::size_t n) override {
    return env_->AppendThroughFault(path_, base_.get(), data, n);
  }

  Status Sync() override {
    return env_->SyncThroughFault(path_, base_.get());
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectingEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

}  // namespace

void FaultInjectingEnv::set_crash_at(std::int64_t op) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_ = op;
}

void FaultInjectingEnv::set_fail_writes(bool fail) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_writes_ = fail;
}

void FaultInjectingEnv::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  op_counter_ = 0;
  syncs_ok_ = 0;
  crashed_ = false;
}

std::uint64_t FaultInjectingEnv::ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_counter_;
}

std::uint64_t FaultInjectingEnv::sync_successes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return syncs_ok_;
}

bool FaultInjectingEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

FaultInjectingEnv::OpVerdict FaultInjectingEnv::NextOpLocked() {
  const std::uint64_t op = op_counter_++;
  if (crashed_ || fail_writes_) return OpVerdict::kFail;
  if (crash_at_ >= 0 && op == static_cast<std::uint64_t>(crash_at_)) {
    return OpVerdict::kCrashNow;
  }
  return OpVerdict::kProceed;
}

Status FaultInjectingEnv::FailStatusLocked() const {
  return crashed_ ? DeadStatus() : OutageStatus();
}

Status FaultInjectingEnv::AppendThroughFault(const std::string& path,
                                             WritableFile* base,
                                             const char* data,
                                             std::size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (NextOpLocked()) {
    case OpVerdict::kFail:
      return FailStatusLocked();
    case OpVerdict::kCrashNow: {
      // The torn-tail shape: a deterministic *prefix* of the buffer reaches
      // the OS before the "process" dies. Deriving the cut from the
      // failpoint index makes a crash sweep cover many torn boundaries.
      const std::size_t keep =
          n == 0 ? 0
                 : static_cast<std::size_t>(
                       static_cast<std::uint64_t>(crash_at_) % (n + 1));
      if (keep > 0 && base->Append(data, keep).ok()) {
        files_[path].size += keep;
      }
      crashed_ = true;
      return DeadStatus();
    }
    case OpVerdict::kProceed:
      break;
  }
  TOPKPKG_RETURN_IF_ERROR(base->Append(data, n));
  files_[path].size += n;
  return Status::OK();
}

Status FaultInjectingEnv::SyncThroughFault(const std::string& path,
                                           WritableFile* base) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (NextOpLocked()) {
    case OpVerdict::kFail:
      return FailStatusLocked();
    case OpVerdict::kCrashNow:
      crashed_ = true;
      return DeadStatus();
    case OpVerdict::kProceed:
      break;
  }
  TOPKPKG_RETURN_IF_ERROR(base->Sync());
  FileState& state = files_[path];
  state.synced = state.size;
  ++syncs_ok_;
  return Status::OK();
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (NextOpLocked()) {
      case OpVerdict::kFail:
        return FailStatusLocked();
      case OpVerdict::kCrashNow:
        crashed_ = true;
        return DeadStatus();
      case OpVerdict::kProceed:
        break;
    }
  }
  TOPKPKG_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                           base_->NewWritableFile(path, truncate));
  std::lock_guard<std::mutex> lock(mu_);
  FileState& state = files_[path];
  if (truncate) {
    state = FileState{};
  } else if (state.size == 0) {
    // Append-opening a file from a previous process lifetime: its on-disk
    // bytes are the durable baseline.
    Result<std::uint64_t> existing = base_->FileSize(path);
    state.size = existing.ok() ? *existing : 0;
    state.synced = state.size;
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultWritableFile>(this, path, std::move(base)));
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (NextOpLocked()) {
    case OpVerdict::kFail:
      return FailStatusLocked();
    case OpVerdict::kCrashNow:
      crashed_ = true;
      return DeadStatus();
    case OpVerdict::kProceed:
      break;
  }
  TOPKPKG_RETURN_IF_ERROR(base_->RenameFile(from, to));
  auto it = files_.find(from);
  if (it != files_.end()) {
    files_[to] = it->second;
    files_.erase(it);
  } else {
    files_.erase(to);
  }
  return Status::OK();
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (NextOpLocked()) {
    case OpVerdict::kFail:
      return FailStatusLocked();
    case OpVerdict::kCrashNow:
      crashed_ = true;
      return DeadStatus();
    case OpVerdict::kProceed:
      break;
  }
  TOPKPKG_RETURN_IF_ERROR(base_->RemoveFile(path));
  files_.erase(path);
  return Status::OK();
}

Status FaultInjectingEnv::TruncateFile(const std::string& path,
                                       std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (NextOpLocked()) {
    case OpVerdict::kFail:
      return FailStatusLocked();
    case OpVerdict::kCrashNow:
      crashed_ = true;
      return DeadStatus();
    case OpVerdict::kProceed:
      break;
  }
  TOPKPKG_RETURN_IF_ERROR(base_->TruncateFile(path, size));
  auto it = files_.find(path);
  if (it != files_.end()) {
    it->second.size = size;
    it->second.synced = std::min(it->second.synced, size);
  }
  return Status::OK();
}

Status FaultInjectingEnv::SyncDir(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (NextOpLocked()) {
      case OpVerdict::kFail:
        return FailStatusLocked();
      case OpVerdict::kCrashNow:
        crashed_ = true;
        return DeadStatus();
      case OpVerdict::kProceed:
        break;
    }
  }
  return base_->SyncDir(path);
}

Status FaultInjectingEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

Result<std::vector<std::string>> FaultInjectingEnv::ListDir(
    const std::string& path) {
  return base_->ListDir(path);
}

Result<std::uint64_t> FaultInjectingEnv::FileSize(const std::string& path) {
  return base_->FileSize(path);
}

bool FaultInjectingEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<std::unique_ptr<FileLock>> FaultInjectingEnv::LockFile(
    const std::string& path) {
  return base_->LockFile(path);
}

Status FaultInjectingEnv::LoseUnsyncedData(std::uint64_t keep_unsynced_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [path, state] : files_) {
    if (state.size <= state.synced) continue;
    if (!base_->FileExists(path)) continue;
    const std::uint64_t target =
        state.synced + std::min(keep_unsynced_bytes, state.size - state.synced);
    TOPKPKG_RETURN_IF_ERROR(base_->TruncateFile(path, target));
    state.size = target;
  }
  return Status::OK();
}

}  // namespace topkpkg::storage
