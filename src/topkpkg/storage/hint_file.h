#ifndef TOPKPKG_STORAGE_HINT_FILE_H_
#define TOPKPKG_STORAGE_HINT_FILE_H_

// Per-segment hint files (the Bitcask idea): when a segment is sealed, the
// store writes `segment-N.hint` next to it — a compressed replay of the
// segment holding, in offset order, the *latest* event per key plus every
// whole-session tombstone. Replaying the hint produces the exact keydir
// contribution a full scan of the segment would, so startup is O(keydir),
// not O(log). Hints are pure cache: a missing, torn, stale, or corrupt hint
// file makes the opener fall back to scanning the segment (and rewrite the
// hint), never fail.
//
// Layout, little-endian:
//
//   hint    := magic "TKPH" (4) | version u32 | segment_file_size u64
//              | count u64 | entry{count} | crc u32
//   entry   := session_id u64 | kind u32 | offset u64 | stored_size u64
//
// `segment_file_size` is the staleness check: a roll can write the hint and
// then fail, after which the store keeps appending to the segment — the
// hint then disagrees with the file size and is ignored. `crc` is CRC-32
// (IEEE) over every preceding byte, magic included.

#include <cstdint>
#include <string>
#include <vector>

#include "topkpkg/common/status.h"
#include "topkpkg/storage/env.h"
#include "topkpkg/storage/record_log.h"

namespace topkpkg::storage {

inline constexpr char kHintMagic[4] = {'T', 'K', 'P', 'H'};
inline constexpr std::uint32_t kHintFormatVersion = 1;

// One keydir event of a sealed segment: a put or a tombstone (the kind
// carries the tombstone bit) at `offset`, occupying `stored_size` bytes.
struct HintEvent {
  std::uint64_t session_id = 0;
  RecordKind kind = 0;
  std::uint64_t offset = 0;
  std::uint64_t stored_size = 0;
};

struct HintFileContents {
  std::uint64_t segment_file_size = 0;
  std::vector<HintEvent> events;  // Ascending offset.
};

// Serializes a hint for a segment whose file is `segment_file_size` bytes.
// `events` must already be in ascending offset order.
std::string EncodeHintFile(std::uint64_t segment_file_size,
                           const std::vector<HintEvent>& events);

// Reads and fully validates a hint file (magic, version, CRC, exact size).
// Any defect is an error — callers treat every error the same way: scan the
// segment instead.
Result<HintFileContents> LoadHintFile(const std::string& path);

// Writes (truncating) and fsyncs the hint file through `env`.
Status WriteHintFile(Env* env, const std::string& path,
                     std::uint64_t segment_file_size,
                     const std::vector<HintEvent>& events);

}  // namespace topkpkg::storage

#endif  // TOPKPKG_STORAGE_HINT_FILE_H_
