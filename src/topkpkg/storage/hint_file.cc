#include "topkpkg/storage/hint_file.h"

#include <cstring>
#include <fstream>

#include "topkpkg/common/crc32.h"
#include "topkpkg/common/serde.h"

namespace topkpkg::storage {

namespace {

// magic + version + segment_file_size + count.
constexpr std::size_t kHintHeaderSize = 4 + 4 + 8 + 8;
// session_id + kind + offset + stored_size.
constexpr std::size_t kHintEntrySize = 8 + 4 + 8 + 8;
constexpr std::size_t kHintTrailerSize = 4;

}  // namespace

std::string EncodeHintFile(std::uint64_t segment_file_size,
                           const std::vector<HintEvent>& events) {
  std::string out(kHintMagic, sizeof(kHintMagic));
  ByteWriter body;
  body.PutU32(kHintFormatVersion);
  body.PutU64(segment_file_size);
  body.PutU64(events.size());
  for (const HintEvent& ev : events) {
    body.PutU64(ev.session_id);
    body.PutU32(ev.kind);
    body.PutU64(ev.offset);
    body.PutU64(ev.stored_size);
  }
  out += body.bytes();
  ByteWriter trailer;
  trailer.PutU32(Crc32(out.data(), out.size()));
  out += trailer.bytes();
  return out;
}

Result<HintFileContents> LoadHintFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("hint file: " + path + " does not exist");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::Internal("hint file: cannot read " + path);
  }
  if (bytes.size() < kHintHeaderSize + kHintTrailerSize) {
    return Status::OutOfRange("hint file: " + path + " is truncated");
  }
  if (std::memcmp(bytes.data(), kHintMagic, sizeof(kHintMagic)) != 0) {
    return Status::InvalidArgument("hint file: " + path + " has no TKPH magic");
  }
  const std::size_t body_size = bytes.size() - kHintTrailerSize;
  const std::uint32_t stored_crc = ReadU32Le(bytes.data() + body_size);
  if (Crc32(bytes.data(), body_size) != stored_crc) {
    return Status::Internal("hint file: CRC mismatch in " + path);
  }
  const std::uint32_t version = ReadU32Le(bytes.data() + 4);
  if (version != kHintFormatVersion) {
    return Status::Unimplemented("hint file: " + path + " has version " +
                                 std::to_string(version) +
                                 "; this build reads version " +
                                 std::to_string(kHintFormatVersion));
  }
  HintFileContents contents;
  contents.segment_file_size = ReadU64Le(bytes.data() + 8);
  const std::uint64_t count = ReadU64Le(bytes.data() + 16);
  if (bytes.size() !=
      kHintHeaderSize + count * kHintEntrySize + kHintTrailerSize) {
    return Status::OutOfRange("hint file: " + path +
                              " size disagrees with its entry count");
  }
  contents.events.reserve(count);
  const char* p = bytes.data() + kHintHeaderSize;
  for (std::uint64_t i = 0; i < count; ++i, p += kHintEntrySize) {
    HintEvent ev;
    ev.session_id = ReadU64Le(p);
    ev.kind = ReadU32Le(p + 8);
    ev.offset = ReadU64Le(p + 12);
    ev.stored_size = ReadU64Le(p + 20);
    contents.events.push_back(ev);
  }
  return contents;
}

Status WriteHintFile(Env* env, const std::string& path,
                     std::uint64_t segment_file_size,
                     const std::vector<HintEvent>& events) {
  const std::string bytes = EncodeHintFile(segment_file_size, events);
  TOPKPKG_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                           env->NewWritableFile(path, /*truncate=*/true));
  TOPKPKG_RETURN_IF_ERROR(file->Append(bytes.data(), bytes.size()));
  TOPKPKG_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

}  // namespace topkpkg::storage
