#include "topkpkg/storage/codec.h"

#include <utility>

#include "topkpkg/common/serde.h"

namespace topkpkg::storage {

namespace {

constexpr std::uint8_t kPreferenceSetVersion = 1;
constexpr std::uint8_t kSamplePoolVersion = 1;
constexpr std::uint8_t kTopListCacheVersion = 1;
constexpr std::uint8_t kRoundHistoryVersion = 2;

Status CheckVersion(std::uint8_t got, std::uint8_t expect, const char* what) {
  if (got == expect) return Status::OK();
  return Status::Unimplemented(std::string("codec: ") + what +
                               " payload version " + std::to_string(got) +
                               "; this build reads version " +
                               std::to_string(expect));
}

// Guards count-prefixed loops against corrupt counts: every element holds
// at least one byte, so a count exceeding the remaining payload is
// malformed and must not drive the allocation it sizes.
Status CheckCount(std::uint64_t n, const ByteReader& r, const char* what) {
  if (n <= r.remaining()) return Status::OK();
  return Status::OutOfRange(std::string("codec: ") + what + " count " +
                            std::to_string(n) + " exceeds the " +
                            std::to_string(r.remaining()) +
                            " remaining payload bytes");
}

void PutTopList(ByteWriter& w, const ranking::SampleTopList& list) {
  w.PutU32(static_cast<std::uint32_t>(list.packages.size()));
  for (const topk::ScoredPackage& sp : list.packages) {
    PutPackage(w, sp.package);
    w.PutF64(sp.utility);
  }
  w.PutVec(list.w);
  w.PutF64(list.weight);
  w.PutU8(list.truncated ? 1 : 0);
}

Result<ranking::SampleTopList> GetTopList(ByteReader& r) {
  ranking::SampleTopList list;
  TOPKPKG_ASSIGN_OR_RETURN(std::uint32_t n, r.GetU32());
  TOPKPKG_RETURN_IF_ERROR(CheckCount(n, r, "top-list package"));
  list.packages.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    topk::ScoredPackage sp;
    TOPKPKG_ASSIGN_OR_RETURN(sp.package, GetPackage(r));
    TOPKPKG_ASSIGN_OR_RETURN(sp.utility, r.GetF64());
    list.packages.push_back(std::move(sp));
  }
  TOPKPKG_ASSIGN_OR_RETURN(list.w, r.GetVec());
  TOPKPKG_ASSIGN_OR_RETURN(list.weight, r.GetF64());
  TOPKPKG_ASSIGN_OR_RETURN(std::uint8_t truncated, r.GetU8());
  list.truncated = truncated != 0;
  return list;
}

void PutSampleStats(ByteWriter& w, const sampling::SampleStats& s) {
  w.PutU64(s.proposed);
  w.PutU64(s.accepted);
  w.PutU64(s.rejected_constraint);
  w.PutU64(s.rejected_box);
  w.PutU64(s.rejected_mh);
  w.PutU64(s.constraint_checks);
  w.PutF64(s.seconds);
}

Result<sampling::SampleStats> GetSampleStats(ByteReader& r) {
  sampling::SampleStats s;
  TOPKPKG_ASSIGN_OR_RETURN(s.proposed, r.GetU64());
  TOPKPKG_ASSIGN_OR_RETURN(s.accepted, r.GetU64());
  TOPKPKG_ASSIGN_OR_RETURN(s.rejected_constraint, r.GetU64());
  TOPKPKG_ASSIGN_OR_RETURN(s.rejected_box, r.GetU64());
  TOPKPKG_ASSIGN_OR_RETURN(s.rejected_mh, r.GetU64());
  TOPKPKG_ASSIGN_OR_RETURN(s.constraint_checks, r.GetU64());
  TOPKPKG_ASSIGN_OR_RETURN(s.seconds, r.GetF64());
  return s;
}

}  // namespace

void PutPackage(ByteWriter& w, const model::Package& p) {
  w.PutU32(static_cast<std::uint32_t>(p.items().size()));
  for (model::ItemId id : p.items()) w.PutU32(id);
}

Result<model::Package> GetPackage(ByteReader& r) {
  TOPKPKG_ASSIGN_OR_RETURN(std::uint32_t n, r.GetU32());
  TOPKPKG_RETURN_IF_ERROR(CheckCount(n, r, "package item"));
  std::vector<model::ItemId> items(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TOPKPKG_ASSIGN_OR_RETURN(items[i], r.GetU32());
  }
  return model::Package::Of(std::move(items));
}

std::string EncodePreferenceSet(const pref::PreferenceSet& set) {
  ByteWriter w;
  w.PutU8(kPreferenceSetVersion);
  const auto& vectors = set.node_vectors();
  const auto& keys = set.node_keys();
  const auto& adj = set.adjacency();
  w.PutU32(static_cast<std::uint32_t>(vectors.size()));
  for (std::size_t u = 0; u < vectors.size(); ++u) {
    w.PutString(keys[u]);
    w.PutVec(vectors[u]);
  }
  for (std::size_t u = 0; u < adj.size(); ++u) {
    w.PutU32(static_cast<std::uint32_t>(adj[u].size()));
    for (std::size_t v : adj[u]) w.PutU32(static_cast<std::uint32_t>(v));
  }
  return std::move(w).Take();
}

Result<pref::PreferenceSet> DecodePreferenceSet(const std::string& payload) {
  ByteReader r(payload);
  TOPKPKG_ASSIGN_OR_RETURN(std::uint8_t version, r.GetU8());
  TOPKPKG_RETURN_IF_ERROR(
      CheckVersion(version, kPreferenceSetVersion, "PreferenceSet"));
  TOPKPKG_ASSIGN_OR_RETURN(std::uint32_t n, r.GetU32());
  TOPKPKG_RETURN_IF_ERROR(CheckCount(n, r, "preference node"));
  std::vector<Vec> vectors(n);
  std::vector<std::string> keys(n);
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    TOPKPKG_ASSIGN_OR_RETURN(keys[u], r.GetString());
    TOPKPKG_ASSIGN_OR_RETURN(vectors[u], r.GetVec());
  }
  for (std::uint32_t u = 0; u < n; ++u) {
    TOPKPKG_ASSIGN_OR_RETURN(std::uint32_t deg, r.GetU32());
    TOPKPKG_RETURN_IF_ERROR(CheckCount(deg, r, "adjacency"));
    adj[u].reserve(deg);
    for (std::uint32_t i = 0; i < deg; ++i) {
      TOPKPKG_ASSIGN_OR_RETURN(std::uint32_t v, r.GetU32());
      adj[u].push_back(v);
    }
  }
  return pref::PreferenceSet::FromSnapshot(std::move(vectors),
                                           std::move(keys), std::move(adj));
}

std::string EncodeSamplePool(const sampling::SamplePool& pool) {
  ByteWriter w;
  w.PutU8(kSamplePoolVersion);
  w.PutU32(static_cast<std::uint32_t>(pool.size()));
  for (const sampling::WeightedSample& s : pool.samples()) {
    w.PutU64(s.id);
    w.PutF64(s.weight);
    w.PutVec(s.w);
  }
  return std::move(w).Take();
}

Result<sampling::SamplePool> DecodeSamplePool(const std::string& payload) {
  ByteReader r(payload);
  TOPKPKG_ASSIGN_OR_RETURN(std::uint8_t version, r.GetU8());
  TOPKPKG_RETURN_IF_ERROR(
      CheckVersion(version, kSamplePoolVersion, "SamplePool"));
  TOPKPKG_ASSIGN_OR_RETURN(std::uint32_t n, r.GetU32());
  TOPKPKG_RETURN_IF_ERROR(CheckCount(n, r, "pool sample"));
  std::vector<sampling::WeightedSample> samples(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TOPKPKG_ASSIGN_OR_RETURN(samples[i].id, r.GetU64());
    TOPKPKG_ASSIGN_OR_RETURN(samples[i].weight, r.GetF64());
    TOPKPKG_ASSIGN_OR_RETURN(samples[i].w, r.GetVec());
  }
  return sampling::SamplePool::FromSnapshot(std::move(samples));
}

std::string EncodeTopListCache(const ranking::IncrementalRanker& ranker) {
  const ranking::IncrementalRanker::CacheSnapshot snap = ranker.Snapshot();
  ByteWriter w;
  w.PutU8(kTopListCacheVersion);
  w.PutU8(snap.has_options ? 1 : 0);
  w.PutU64(snap.options.list_size);
  w.PutU64(snap.options.limits.max_expansions);
  w.PutU64(snap.options.limits.max_items_accessed);
  w.PutU64(snap.options.limits.max_queue);
  w.PutU8(snap.options.limits.expand_on_ties ? 1 : 0);
  w.PutU8(snap.options.has_filter ? 1 : 0);
  w.PutU64(snap.epoch);
  w.PutU32(static_cast<std::uint32_t>(snap.entries.size()));
  for (const auto& [id, list] : snap.entries) {
    w.PutU64(id);
    PutTopList(w, *list);
  }
  return std::move(w).Take();
}

Status DecodeTopListCacheInto(const std::string& payload,
                              ranking::IncrementalRanker& ranker) {
  ByteReader r(payload);
  TOPKPKG_ASSIGN_OR_RETURN(std::uint8_t version, r.GetU8());
  TOPKPKG_RETURN_IF_ERROR(
      CheckVersion(version, kTopListCacheVersion, "TopListCache"));
  TOPKPKG_ASSIGN_OR_RETURN(std::uint8_t has_options, r.GetU8());
  ranking::IncrementalRanker::CacheKeyOptions options;
  TOPKPKG_ASSIGN_OR_RETURN(std::uint64_t list_size, r.GetU64());
  options.list_size = static_cast<std::size_t>(list_size);
  TOPKPKG_ASSIGN_OR_RETURN(std::uint64_t max_expansions, r.GetU64());
  options.limits.max_expansions = static_cast<std::size_t>(max_expansions);
  TOPKPKG_ASSIGN_OR_RETURN(std::uint64_t max_items, r.GetU64());
  options.limits.max_items_accessed = static_cast<std::size_t>(max_items);
  TOPKPKG_ASSIGN_OR_RETURN(std::uint64_t max_queue, r.GetU64());
  options.limits.max_queue = static_cast<std::size_t>(max_queue);
  TOPKPKG_ASSIGN_OR_RETURN(std::uint8_t expand_on_ties, r.GetU8());
  options.limits.expand_on_ties = expand_on_ties != 0;
  TOPKPKG_ASSIGN_OR_RETURN(std::uint8_t has_filter, r.GetU8());
  options.has_filter = has_filter != 0;
  TOPKPKG_ASSIGN_OR_RETURN(std::uint64_t epoch, r.GetU64());
  TOPKPKG_ASSIGN_OR_RETURN(std::uint32_t n, r.GetU32());
  TOPKPKG_RETURN_IF_ERROR(CheckCount(n, r, "cache entry"));
  std::vector<std::pair<sampling::SampleId, ranking::SampleTopList>> entries;
  entries.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    TOPKPKG_ASSIGN_OR_RETURN(std::uint64_t id, r.GetU64());
    TOPKPKG_ASSIGN_OR_RETURN(ranking::SampleTopList list, GetTopList(r));
    entries.emplace_back(id, std::move(list));
  }
  ranker.RestoreSnapshot(has_options != 0, options, epoch,
                         std::move(entries));
  return Status::OK();
}

std::string EncodeRoundHistory(const std::vector<recsys::RoundLog>& history) {
  ByteWriter w;
  w.PutU8(kRoundHistoryVersion);
  w.PutU32(static_cast<std::uint32_t>(history.size()));
  for (const recsys::RoundLog& log : history) {
    w.PutU32(static_cast<std::uint32_t>(log.presented.size()));
    for (const model::Package& p : log.presented) PutPackage(w, p);
    w.PutU32(static_cast<std::uint32_t>(log.presented_vectors.size()));
    for (const Vec& v : log.presented_vectors) w.PutVec(v);
    w.PutU64(log.num_recommended);
    w.PutU64(log.clicked);
    w.PutU32(static_cast<std::uint32_t>(log.top_k.size()));
    for (const model::Package& p : log.top_k) PutPackage(w, p);
    w.PutF64(log.top_k_overlap);
    w.PutU8(log.top_k_changed ? 1 : 0);
    PutSampleStats(w, log.sampling_stats);
    w.PutU64(log.samples_reused);
    w.PutU64(log.samples_resampled);
    w.PutU64(log.searches_skipped);
    w.PutU64(log.searches_deduped);
    w.PutU64(log.searches_unique);
    w.PutF64(log.maintain_seconds);
    w.PutF64(log.sample_seconds);
    w.PutF64(log.rank_seconds);
  }
  return std::move(w).Take();
}

Result<std::vector<recsys::RoundLog>> DecodeRoundHistory(
    const std::string& payload) {
  ByteReader r(payload);
  TOPKPKG_ASSIGN_OR_RETURN(std::uint8_t version, r.GetU8());
  TOPKPKG_RETURN_IF_ERROR(
      CheckVersion(version, kRoundHistoryVersion, "RoundHistory"));
  TOPKPKG_ASSIGN_OR_RETURN(std::uint32_t n, r.GetU32());
  TOPKPKG_RETURN_IF_ERROR(CheckCount(n, r, "round log"));
  std::vector<recsys::RoundLog> history;
  history.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    recsys::RoundLog log;
    TOPKPKG_ASSIGN_OR_RETURN(std::uint32_t presented, r.GetU32());
    for (std::uint32_t j = 0; j < presented; ++j) {
      TOPKPKG_ASSIGN_OR_RETURN(model::Package p, GetPackage(r));
      log.presented.push_back(std::move(p));
    }
    TOPKPKG_ASSIGN_OR_RETURN(std::uint32_t vectors, r.GetU32());
    for (std::uint32_t j = 0; j < vectors; ++j) {
      TOPKPKG_ASSIGN_OR_RETURN(Vec v, r.GetVec());
      log.presented_vectors.push_back(std::move(v));
    }
    TOPKPKG_ASSIGN_OR_RETURN(log.num_recommended, r.GetU64());
    TOPKPKG_ASSIGN_OR_RETURN(log.clicked, r.GetU64());
    TOPKPKG_ASSIGN_OR_RETURN(std::uint32_t top_k, r.GetU32());
    for (std::uint32_t j = 0; j < top_k; ++j) {
      TOPKPKG_ASSIGN_OR_RETURN(model::Package p, GetPackage(r));
      log.top_k.push_back(std::move(p));
    }
    TOPKPKG_ASSIGN_OR_RETURN(log.top_k_overlap, r.GetF64());
    TOPKPKG_ASSIGN_OR_RETURN(std::uint8_t changed, r.GetU8());
    log.top_k_changed = changed != 0;
    TOPKPKG_ASSIGN_OR_RETURN(log.sampling_stats, GetSampleStats(r));
    TOPKPKG_ASSIGN_OR_RETURN(log.samples_reused, r.GetU64());
    TOPKPKG_ASSIGN_OR_RETURN(log.samples_resampled, r.GetU64());
    TOPKPKG_ASSIGN_OR_RETURN(log.searches_skipped, r.GetU64());
    TOPKPKG_ASSIGN_OR_RETURN(log.searches_deduped, r.GetU64());
    TOPKPKG_ASSIGN_OR_RETURN(log.searches_unique, r.GetU64());
    TOPKPKG_ASSIGN_OR_RETURN(log.maintain_seconds, r.GetF64());
    TOPKPKG_ASSIGN_OR_RETURN(log.sample_seconds, r.GetF64());
    TOPKPKG_ASSIGN_OR_RETURN(log.rank_seconds, r.GetF64());
    history.push_back(std::move(log));
  }
  return history;
}

}  // namespace topkpkg::storage
