#include "topkpkg/storage/session_store.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "topkpkg/obs/metrics.h"

namespace topkpkg::storage {

namespace {

// The flush timer's clock: injected (tests), else steady_clock.
std::uint64_t NowMs(const SessionStoreOptions& opts) {
  if (opts.clock_ms) return opts.clock_ms();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Process-global storage metrics (LogBase-style per-component counters for
// the log-structured machinery). Unlabeled: counters are monotone across
// every store the process opens; gauges are last-writer-wins, which matches
// the SessionManager invariant of one live store per manager. The
// SessionStore::Stats struct stays the per-store source of truth — these
// series are the scrape surface, registered lazily on first touch.
struct StoreMetrics {
  obs::Counter* puts;
  obs::Counter* fsyncs;
  obs::Counter* rolls;
  obs::Counter* compactions;
  obs::Counter* compact_bytes_reclaimed;
  obs::Gauge* segments;
  obs::Gauge* active_bytes;
  obs::Gauge* live_bytes;
  obs::Gauge* dead_bytes;
  obs::Histogram* put_latency;
  obs::Histogram* fsync_latency;
  obs::Histogram* flush_latency;
  obs::Histogram* commit_window;
};

StoreMetrics& Metrics() {
  static StoreMetrics* const m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    auto* out = new StoreMetrics();
    out->puts = reg.GetCounter("topkpkg_store_puts_total",
                               "Record mutations appended to the log");
    out->fsyncs = reg.GetCounter("topkpkg_store_fsyncs_total",
                                 "fsync calls issued by the store");
    out->rolls = reg.GetCounter("topkpkg_store_segment_rolls_total",
                                "Active segments sealed and rolled");
    out->compactions =
        reg.GetCounter("topkpkg_store_compactions_total",
                       "Cold-segment merge compactions committed");
    out->compact_bytes_reclaimed = reg.GetCounter(
        "topkpkg_store_compaction_bytes_reclaimed_total",
        "On-disk bytes freed by compaction (cold inputs minus merge output)");
    out->segments = reg.GetGauge("topkpkg_store_segments",
                                 "Segment files in the store directory");
    out->active_bytes = reg.GetGauge("topkpkg_store_active_segment_bytes",
                                     "Size of the segment being appended to");
    out->live_bytes = reg.GetGauge("topkpkg_store_live_bytes",
                                   "Payload bytes the keydir still points at");
    out->dead_bytes = reg.GetGauge(
        "topkpkg_store_dead_bytes",
        "Superseded payload bytes awaiting compaction");
    out->put_latency = reg.GetHistogram("topkpkg_store_put_seconds",
                                        "Put latency, append through commit");
    out->fsync_latency =
        reg.GetHistogram("topkpkg_store_fsync_seconds", "fsync latency");
    out->flush_latency = reg.GetHistogram("topkpkg_store_flush_seconds",
                                          "Explicit Flush latency");
    out->commit_window = reg.GetHistogram(
        "topkpkg_store_group_commit_puts",
        "Acknowledged puts covered by one group-commit fsync");
    return out;
  }();
  return *m;
}

// Group-commit occupancy: how many acknowledged puts one drain covers.
// Call immediately before resetting puts_since_sync_.
void ObserveWindowDrain(std::uint64_t puts_in_window) {
  if constexpr (obs::kMetricsEnabled) {
    if (puts_in_window > 0) {
      Metrics().commit_window->Observe(
          static_cast<double>(puts_in_window));
    }
  }
}

// All of the store's fsyncs funnel through here so each one lands in the
// fsync latency histogram and counter alongside the per-store stats_.
Status TimedSync(RecordLogWriter& w) {
  if constexpr (obs::kMetricsEnabled) {
    obs::ScopedLatency lat(Metrics().fsync_latency);
    Status st = w.Sync();
    if (st.ok()) Metrics().fsyncs->Increment();
    return st;
  } else {
    return w.Sync();
  }
}

}  // namespace

std::string SegmentFileName(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "segment-%06" PRIu64 ".tkps", id);
  return buf;
}

std::string SegmentHintName(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "segment-%06" PRIu64 ".hint", id);
  return buf;
}

std::uint64_t ParseSegmentFileName(const std::string& name) {
  constexpr char kPrefix[] = "segment-";
  constexpr char kSuffix[] = ".tkps";
  constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  constexpr std::size_t kSuffixLen = sizeof(kSuffix) - 1;
  if (name.size() <= kPrefixLen + kSuffixLen) return 0;
  if (name.compare(0, kPrefixLen, kPrefix) != 0) return 0;
  if (name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) != 0) {
    return 0;
  }
  std::uint64_t id = 0;
  for (std::size_t i = kPrefixLen; i < name.size() - kSuffixLen; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    id = id * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return id;
}

std::string SessionStore::SegmentPath(std::uint64_t id) const {
  return path_ + "/" + SegmentFileName(id);
}

std::string SessionStore::HintPath(std::uint64_t id) const {
  return path_ + "/" + SegmentHintName(id);
}

void SessionStore::PendingHint::Track(const HintEvent& ev) {
  if (ev.kind == kSessionTombstone) {
    // Whole-session tombstones all go in the hint: each one erases exactly
    // the keys whose latest event precedes it, which only replay order can
    // reconstruct.
    session_tombs.push_back(ev);
    return;
  }
  latest[Key{ev.session_id, ev.kind & ~kTombstoneBit}] = ev;
}

std::vector<HintEvent> SessionStore::PendingHint::CollectSorted() const {
  std::vector<HintEvent> out;
  out.reserve(latest.size() + session_tombs.size());
  for (const auto& [key, ev] : latest) out.push_back(ev);
  out.insert(out.end(), session_tombs.begin(), session_tombs.end());
  std::sort(out.begin(), out.end(),
            [](const HintEvent& a, const HintEvent& b) {
              return a.offset < b.offset;
            });
  return out;
}

void SessionStore::PendingHint::Clear() {
  latest.clear();
  session_tombs.clear();
}

Result<SessionStore> SessionStore::Open(const std::string& path,
                                        SessionStoreOptions options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  options.env = env;
  Status created = env->CreateDir(path);
  if (!created.ok()) {
    if (created.code() == StatusCode::kFailedPrecondition) {
      return Status::FailedPrecondition(
          "session store: " + path +
          " is a regular file — the pre-segmented single-file format; this "
          "version keeps a directory of segments and does not migrate old "
          "stores");
    }
    return created;
  }
  TOPKPKG_ASSIGN_OR_RETURN(std::unique_ptr<FileLock> lock,
                           env->LockFile(path + "/LOCK"));
  SessionStore store(path, options, std::move(lock));

  TOPKPKG_ASSIGN_OR_RETURN(std::vector<std::string> names, env->ListDir(path));
  std::vector<std::uint64_t> ids;
  for (const std::string& name : names) {
    constexpr char kCompactSuffix[] = ".compact";
    constexpr std::size_t kCompactLen = sizeof(kCompactSuffix) - 1;
    if (name.size() > kCompactLen &&
        name.compare(name.size() - kCompactLen, kCompactLen,
                     kCompactSuffix) == 0) {
      // A compaction died before its rename; the merge never committed.
      TOPKPKG_RETURN_IF_ERROR(env->RemoveFile(path + "/" + name));
      continue;
    }
    if (const std::uint64_t id = ParseSegmentFileName(name); id != 0) {
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());

  // The active segment is the highest id *without* a valid hint. A valid
  // hint on the highest means the previous process sealed it but crashed
  // before (or while) creating the next segment — finish its roll here.
  std::uint64_t active_id = 1;
  if (!ids.empty()) {
    const std::uint64_t highest = ids.back();
    bool highest_sealed = false;
    Result<HintFileContents> hint = LoadHintFile(store.HintPath(highest));
    if (hint.ok()) {
      Result<std::uint64_t> size = env->FileSize(store.SegmentPath(highest));
      highest_sealed = size.ok() && hint->segment_file_size == *size;
    }
    active_id = highest_sealed ? highest + 1 : highest;
  }

  for (const std::uint64_t id : ids) {
    if (id == active_id) continue;
    TOPKPKG_RETURN_IF_ERROR(store.RecoverSealedSegment(id));
  }

  const std::string active_path = store.SegmentPath(active_id);
  const bool active_existed = env->FileExists(active_path);
  if (active_existed) {
    TOPKPKG_RETURN_IF_ERROR(store.ScanSegment(active_id, /*sealed=*/false));
  }
  TOPKPKG_ASSIGN_OR_RETURN(RecordLogWriter writer,
                           RecordLogWriter::Open(active_path,
                                                 /*truncate=*/false, env));
  if (!active_existed) {
    // Pin the new segment's directory entry before acknowledging anything
    // into it (kEveryPut's guarantee covers the entry, not just the bytes).
    TOPKPKG_RETURN_IF_ERROR(env->SyncDir(path));
  }
  store.active_id_ = active_id;
  store.segments_[active_id].data_bytes = writer.end_offset();
  store.writer_ = std::make_unique<RecordLogWriter>(std::move(writer));
  store.RefreshDerivedStats();
  return store;
}

Status SessionStore::RecoverSealedSegment(std::uint64_t id) {
  TOPKPKG_ASSIGN_OR_RETURN(const std::uint64_t size,
                           env()->FileSize(SegmentPath(id)));
  Result<HintFileContents> hint = LoadHintFile(HintPath(id));
  if (hint.ok() && hint->segment_file_size == size) {
    segments_[id].data_bytes = size;
    for (const HintEvent& ev : hint->events) {
      Apply(ev.session_id, ev.kind, id, ev.offset, ev.stored_size);
    }
    ++stats_.hint_startup_segments;
    return Status::OK();
  }
  // Missing, torn, corrupt, or stale (a roll failed after writing it and
  // the segment grew) — scan the log instead and rewrite the hint.
  return ScanSegment(id, /*sealed=*/true);
}

Status SessionStore::ScanSegment(std::uint64_t id, bool sealed) {
  const std::string seg = SegmentPath(id);
  TOPKPKG_ASSIGN_OR_RETURN(std::uint64_t size, env()->FileSize(seg));
  PendingHint builder;
  if (size >= kFileHeaderSize) {
    ReplayStats rstats;
    RecordLogReader reader(seg);
    TOPKPKG_RETURN_IF_ERROR(reader.Replay(
        [this, id, &builder](const Record& rec) {
          Apply(rec.session_id, rec.kind, id, rec.offset, rec.StoredSize());
          builder.Track(HintEvent{rec.session_id, rec.kind, rec.offset,
                                  rec.StoredSize()});
          return Status::OK();
        },
        &rstats));
    if (rstats.torn_tail) {
      // The torn record was never committed; cut it away so appends (or
      // the sealed size) start on a record boundary.
      TOPKPKG_RETURN_IF_ERROR(env()->TruncateFile(seg, rstats.tail_offset));
      stats_.recovered_torn_tail = true;
      size = rstats.tail_offset;
    }
  } else if (size > 0) {
    // Cut inside the file header (crash during segment creation): nothing
    // committed; the writer will start the header over.
    TOPKPKG_RETURN_IF_ERROR(env()->TruncateFile(seg, 0));
    stats_.recovered_torn_tail = true;
    size = 0;
  }
  segments_[id].data_bytes = size;
  if (sealed) {
    ++stats_.scanned_startup_segments;
    // Self-heal: the next open gets a hint again. Best-effort — a failure
    // just means another scan.
    Status ignored =
        WriteHintFile(env(), HintPath(id), size, builder.CollectSorted());
    (void)ignored;
  } else {
    pending_hint_ = std::move(builder);
  }
  return Status::OK();
}

void SessionStore::Apply(std::uint64_t session_id, RecordKind kind,
                         std::uint64_t segment_id, std::uint64_t offset,
                         std::uint64_t stored_size) {
  if (kind == kSessionTombstone) {
    const auto begin = keydir_.lower_bound(Key{session_id, 0});
    const auto end = keydir_.upper_bound(Key{session_id, kSessionTombstone});
    for (auto it = begin; it != end; ++it) DropLive(it->second);
    keydir_.erase(begin, end);
  } else if ((kind & kTombstoneBit) != 0) {
    const auto it = keydir_.find(Key{session_id, kind & ~kTombstoneBit});
    if (it != keydir_.end()) {
      DropLive(it->second);
      keydir_.erase(it);
    }
  } else {
    auto [it, inserted] = keydir_.try_emplace(Key{session_id, kind});
    if (!inserted) DropLive(it->second);
    it->second = KeydirEntry{segment_id, offset, stored_size};
    segments_[segment_id].live_bytes += stored_size;
    stats_.live_bytes += stored_size;
  }
}

void SessionStore::DropLive(const KeydirEntry& entry) {
  const auto it = segments_.find(entry.segment_id);
  if (it != segments_.end()) it->second.live_bytes -= entry.stored_size;
  stats_.live_bytes -= entry.stored_size;
}

void SessionStore::RefreshDerivedStats() {
  stats_.live_records = keydir_.size();
  stats_.segments = segments_.size();
  std::uint64_t files = 0;
  std::uint64_t payload = 0;
  for (const auto& [id, info] : segments_) {
    files += info.data_bytes;
    if (info.data_bytes > kFileHeaderSize) {
      payload += info.data_bytes - kFileHeaderSize;
    }
  }
  stats_.file_bytes = files;
  stats_.dead_bytes = payload - stats_.live_bytes;
  if constexpr (obs::kMetricsEnabled) {
    Metrics().segments->Set(static_cast<double>(stats_.segments));
    Metrics().live_bytes->Set(static_cast<double>(stats_.live_bytes));
    Metrics().dead_bytes->Set(static_cast<double>(stats_.dead_bytes));
    const auto active = segments_.find(active_id_);
    if (active != segments_.end()) {
      Metrics().active_bytes->Set(
          static_cast<double>(active->second.data_bytes));
    }
  }
}

Status SessionStore::RequireWriter() const {
  if (writer_ != nullptr) return Status::OK();
  return Status::Internal(
      "session store: log writer unavailable after a failed segment roll "
      "in " +
      path_ + "; reopen the store");
}

Status SessionStore::CommitMutation(std::uint64_t session_id, RecordKind kind,
                                    std::uint64_t offset,
                                    std::uint64_t stored_size) {
  // Bookkeeping first, durability second: the record is in the log either
  // way, so the keydir must reflect it even when the fsync below fails —
  // otherwise a retry of the "failed" put would leave memory and disk
  // telling different stories after a recovery.
  pending_hint_.Track(HintEvent{session_id, kind, offset, stored_size});
  Apply(session_id, kind, active_id_, offset, stored_size);
  segments_[active_id_].data_bytes = writer_->end_offset();
  RefreshDerivedStats();
  switch (opts_.fsync_policy) {
    case FsyncPolicy::kEveryPut:
      TOPKPKG_RETURN_IF_ERROR(TimedSync(*writer_));
      ++stats_.fsyncs;
      break;
    case FsyncPolicy::kInterval: {
      const bool timer_on = opts_.flush_interval_ms > 0;
      if (timer_on && puts_since_sync_ == 0) {
        // First put of a fresh group-commit window: start its flush clock.
        window_opened_ms_ = NowMs(opts_);
      }
      const bool count_due = ++puts_since_sync_ >= opts_.group_commit_puts;
      const bool timer_due =
          timer_on &&
          NowMs(opts_) - window_opened_ms_ >= opts_.flush_interval_ms;
      if (count_due || timer_due) {
        // Group commit: this fsync covers the whole window of acknowledged
        // mutations since the last one. On failure the window stays open,
        // so the next mutation retries the sync.
        TOPKPKG_RETURN_IF_ERROR(TimedSync(*writer_));
        ++stats_.fsyncs;
        ObserveWindowDrain(puts_since_sync_);
        puts_since_sync_ = 0;
      }
      break;
    }
    case FsyncPolicy::kNone:
      break;
  }
  if (opts_.auto_compact && ColdSegmentWantsCompaction()) {
    // Auto-compaction is advisory: a failure (say, a transient store
    // outage) must not fail the Put that tripped it.
    Status st = CompactCold(/*automatic=*/true);
    if (!st.ok()) ++stats_.failed_auto_compactions;
  }
  return Status::OK();
}

Status SessionStore::Put(std::uint64_t session_id, RecordKind kind,
                         const std::string& payload) {
  obs::ScopedLatency put_lat(obs::kMetricsEnabled ? Metrics().put_latency
                                                  : nullptr);
  if constexpr (obs::kMetricsEnabled) Metrics().puts->Increment();
  TOPKPKG_RETURN_IF_ERROR(RequireWriter());
  if ((kind & kTombstoneBit) != 0) {
    return Status::InvalidArgument(
        "session store: record kinds with the tombstone bit are reserved");
  }
  TOPKPKG_RETURN_IF_ERROR(MaybeRoll());
  TOPKPKG_ASSIGN_OR_RETURN(const std::uint64_t offset,
                           writer_->Append(session_id, kind, payload));
  return CommitMutation(session_id, kind, offset,
                        kRecordHeaderSize + payload.size());
}

Result<std::string> SessionStore::Get(std::uint64_t session_id,
                                      RecordKind kind) const {
  const auto it = keydir_.find(Key{session_id, kind});
  if (it == keydir_.end()) {
    return Status::NotFound("session store: no record for session " +
                            std::to_string(session_id) + " kind " +
                            std::to_string(kind));
  }
  RecordLogReader reader(SegmentPath(it->second.segment_id));
  TOPKPKG_ASSIGN_OR_RETURN(Record rec, reader.ReadAt(it->second.offset));
  if (rec.session_id != session_id || rec.kind != kind) {
    return Status::Internal(
        "session store: keydir offset " + std::to_string(it->second.offset) +
        " of segment " + std::to_string(it->second.segment_id) +
        " holds a record for a different key");
  }
  return std::move(rec.payload);
}

bool SessionStore::Contains(std::uint64_t session_id, RecordKind kind) const {
  return keydir_.find(Key{session_id, kind}) != keydir_.end();
}

Status SessionStore::Delete(std::uint64_t session_id, RecordKind kind) {
  TOPKPKG_RETURN_IF_ERROR(RequireWriter());
  TOPKPKG_RETURN_IF_ERROR(MaybeRoll());
  TOPKPKG_ASSIGN_OR_RETURN(
      const std::uint64_t offset,
      writer_->Append(session_id, kind | kTombstoneBit, std::string()));
  return CommitMutation(session_id, kind | kTombstoneBit, offset,
                        kRecordHeaderSize);
}

Status SessionStore::DeleteSession(std::uint64_t session_id) {
  TOPKPKG_RETURN_IF_ERROR(RequireWriter());
  TOPKPKG_RETURN_IF_ERROR(MaybeRoll());
  TOPKPKG_ASSIGN_OR_RETURN(
      const std::uint64_t offset,
      writer_->Append(session_id, kSessionTombstone, std::string()));
  return CommitMutation(session_id, kSessionTombstone, offset,
                        kRecordHeaderSize);
}

std::vector<std::uint64_t> SessionStore::SessionIds() const {
  std::vector<std::uint64_t> ids;
  for (const auto& [key, entry] : keydir_) {
    if (ids.empty() || ids.back() != key.first) ids.push_back(key.first);
  }
  return ids;
}

std::vector<RecordKind> SessionStore::KindsOf(std::uint64_t session_id) const {
  std::vector<RecordKind> kinds;
  for (auto it = keydir_.lower_bound(Key{session_id, 0});
       it != keydir_.end() && it->first.first == session_id; ++it) {
    kinds.push_back(it->first.second);
  }
  return kinds;
}

Status SessionStore::MaybeRoll() {
  if (writer_->end_offset() < opts_.segment_max_bytes ||
      writer_->end_offset() <= kFileHeaderSize) {
    return Status::OK();
  }
  return Roll();
}

Status SessionStore::Roll() {
  // Seal: everything in the active segment becomes durable before the hint
  // claims to describe it.
  TOPKPKG_RETURN_IF_ERROR(TimedSync(*writer_));
  ++stats_.fsyncs;
  const std::uint64_t sealed_id = active_id_;
  const std::uint64_t sealed_size = writer_->end_offset();
  TOPKPKG_RETURN_IF_ERROR(WriteHintFile(env(), HintPath(sealed_id),
                                        sealed_size,
                                        pending_hint_.CollectSorted()));
  {
    Status closed = writer_->Close();
    if (!closed.ok()) {
      writer_.reset();
      return closed;
    }
  }
  Result<RecordLogWriter> next = RecordLogWriter::Open(
      SegmentPath(sealed_id + 1), /*truncate=*/true, env());
  Status dir_synced = next.ok() ? env()->SyncDir(path_) : next.status();
  if (!next.ok() || !dir_synced.ok()) {
    // Abort the roll: drop the half-made segment and resume appending to
    // the sealed one. Its hint goes stale the moment a new record lands —
    // the size check at the next open detects that and falls back to a
    // scan, so the stale hint is harmless.
    if (next.ok()) {
      Status ignored = std::move(next).value().Close();
      (void)ignored;
    }
    Status removed = env()->RemoveFile(SegmentPath(sealed_id + 1));
    (void)removed;
    Result<RecordLogWriter> reopened = RecordLogWriter::Open(
        SegmentPath(sealed_id), /*truncate=*/false, env());
    if (reopened.ok()) {
      writer_ =
          std::make_unique<RecordLogWriter>(std::move(reopened).value());
    } else {
      writer_.reset();
    }
    return dir_synced;
  }
  segments_[sealed_id].data_bytes = sealed_size;
  writer_ = std::make_unique<RecordLogWriter>(std::move(next).value());
  active_id_ = sealed_id + 1;
  segments_[active_id_].data_bytes = writer_->end_offset();
  pending_hint_.Clear();
  // The seal's fsync drained the group-commit window.
  ObserveWindowDrain(puts_since_sync_);
  puts_since_sync_ = 0;
  ++stats_.segment_rolls;
  if constexpr (obs::kMetricsEnabled) Metrics().rolls->Increment();
  RefreshDerivedStats();
  return Status::OK();
}

bool SessionStore::ColdSegmentWantsCompaction() const {
  for (const auto& [id, info] : segments_) {
    if (id == active_id_) continue;
    if (info.data_bytes <= kFileHeaderSize) continue;
    const std::uint64_t payload = info.data_bytes - kFileHeaderSize;
    const std::uint64_t dead = payload - info.live_bytes;
    if (dead > 0 && static_cast<double>(dead) / static_cast<double>(payload) >=
                        opts_.compact_dead_ratio) {
      return true;
    }
  }
  return false;
}

Status SessionStore::CompactCold(bool automatic) {
  std::vector<std::uint64_t> cold;
  for (const auto& [id, info] : segments_) {
    if (id != active_id_) cold.push_back(id);
  }
  if (cold.empty()) return Status::OK();
  // Pin the active segment first, whatever the FsyncPolicy: the merge drops
  // cold records that newer active records supersede, so those newer
  // records must be durable before the merge commits — otherwise power loss
  // could erase the new version *and* the compaction already erased the
  // old, recovering to a state that never existed.
  TOPKPKG_RETURN_IF_ERROR(RequireWriter());
  TOPKPKG_RETURN_IF_ERROR(TimedSync(*writer_));
  ++stats_.fsyncs;
  ObserveWindowDrain(puts_since_sync_);
  puts_since_sync_ = 0;
  // Sum the cold inputs up front: once the merge commits, reclaimed space
  // is their on-disk footprint minus the single merged output.
  std::uint64_t cold_bytes_before = 0;
  if constexpr (obs::kMetricsEnabled) {
    for (const std::uint64_t id : cold) {
      cold_bytes_before += segments_[id].data_bytes;
    }
  }
  // The merge replaces the LOWEST cold id. That choice is what makes
  // dropping tombstones crash-safe: the rename atomically swaps out the
  // oldest data (the only records a dropped tombstone could have shadowed),
  // so a crash during the later deletions leaves only a *suffix* of newer
  // original segments — and replaying the merge followed by a suffix of the
  // cold set (which still carries its own tombstones) converges to the same
  // keydir as the full original replay.
  const std::uint64_t merged_id = cold.front();  // Ascending map order.
  const std::string merged_tmp = SegmentPath(merged_id) + ".compact";

  // Merge every cold segment's live records (keydir order — deterministic,
  // so equal stores compact to byte-identical segments). Tombstones are
  // dropped: everything they could shadow is cold and merged here too, and
  // the active segment only holds newer records.
  std::map<Key, KeydirEntry> patch;
  std::vector<HintEvent> hint_events;
  std::uint64_t merged_size = 0;
  {
    TOPKPKG_ASSIGN_OR_RETURN(
        RecordLogWriter rewriter,
        RecordLogWriter::Open(merged_tmp, /*truncate=*/true, env()));
    for (const auto& [key, entry] : keydir_) {
      if (entry.segment_id == active_id_) continue;
      RecordLogReader reader(SegmentPath(entry.segment_id));
      TOPKPKG_ASSIGN_OR_RETURN(Record rec, reader.ReadAt(entry.offset));
      TOPKPKG_ASSIGN_OR_RETURN(
          const std::uint64_t offset,
          rewriter.Append(rec.session_id, rec.kind, rec.payload));
      patch[key] = KeydirEntry{merged_id, offset, rec.StoredSize()};
      hint_events.push_back(
          HintEvent{rec.session_id, rec.kind, offset, rec.StoredSize()});
    }
    TOPKPKG_RETURN_IF_ERROR(TimedSync(rewriter));
    ++stats_.fsyncs;
    merged_size = rewriter.end_offset();
    TOPKPKG_RETURN_IF_ERROR(rewriter.Close());
  }
  // Drop the merged segment's old hint *before* the rename (with a
  // directory sync between): no state ever pairs the merged file with the
  // hint of the bytes it replaced. A crash in the window just means a scan.
  TOPKPKG_RETURN_IF_ERROR(env()->RemoveFile(HintPath(merged_id)));
  TOPKPKG_RETURN_IF_ERROR(env()->SyncDir(path_));
  TOPKPKG_RETURN_IF_ERROR(env()->RenameFile(merged_tmp, SegmentPath(merged_id)));

  // The rename committed — the merge *is* the store now, so the in-memory
  // view follows unconditionally and every remaining step is best-effort
  // (a failure here must not leave keydir_ pointing into replaced bytes).
  // The superseded segments go in ascending order, each pinned by a
  // directory sync, so a crash mid-cleanup leaves exactly the suffix shape
  // the tombstone-dropping argument above depends on.
  for (const auto& [key, entry] : patch) keydir_[key] = entry;
  segments_[merged_id] =
      SegmentInfo{merged_size,
                  merged_size > kFileHeaderSize
                      ? merged_size - kFileHeaderSize
                      : 0};
  Status pinned = env()->SyncDir(path_);
  (void)pinned;
  for (const std::uint64_t id : cold) {
    if (id == merged_id) continue;
    Status removed = env()->RemoveFile(SegmentPath(id));
    (void)removed;
    removed = env()->RemoveFile(HintPath(id));
    (void)removed;
    removed = env()->SyncDir(path_);
    (void)removed;
    segments_.erase(id);
  }
  Status hinted =
      WriteHintFile(env(), HintPath(merged_id), merged_size, hint_events);
  (void)hinted;
  Status dir_synced = env()->SyncDir(path_);
  (void)dir_synced;
  ++stats_.compactions;
  if (automatic) ++stats_.auto_compactions;
  if constexpr (obs::kMetricsEnabled) {
    Metrics().compactions->Increment();
    if (cold_bytes_before > merged_size) {
      Metrics().compact_bytes_reclaimed->Increment(cold_bytes_before -
                                                   merged_size);
    }
  }
  RefreshDerivedStats();
  return Status::OK();
}

Status SessionStore::Compact() {
  TOPKPKG_RETURN_IF_ERROR(RequireWriter());
  if (writer_->end_offset() > kFileHeaderSize) {
    TOPKPKG_RETURN_IF_ERROR(Roll());
  }
  return CompactCold(/*automatic=*/false);
}

Status SessionStore::Flush() {
  obs::ScopedLatency flush_lat(obs::kMetricsEnabled ? Metrics().flush_latency
                                                    : nullptr);
  TOPKPKG_RETURN_IF_ERROR(RequireWriter());
  if (opts_.fsync_policy == FsyncPolicy::kInterval && puts_since_sync_ > 0) {
    TOPKPKG_RETURN_IF_ERROR(TimedSync(*writer_));
    ++stats_.fsyncs;
    ObserveWindowDrain(puts_since_sync_);
    puts_since_sync_ = 0;
  }
  return writer_->Flush();
}

Status SessionStore::MaybeFlush() {
  if (opts_.fsync_policy != FsyncPolicy::kInterval) return Status::OK();
  if (opts_.flush_interval_ms == 0 || puts_since_sync_ == 0) {
    return Status::OK();
  }
  if (NowMs(opts_) - window_opened_ms_ < opts_.flush_interval_ms) {
    return Status::OK();
  }
  TOPKPKG_RETURN_IF_ERROR(RequireWriter());
  TOPKPKG_RETURN_IF_ERROR(TimedSync(*writer_));
  ++stats_.fsyncs;
  ObserveWindowDrain(puts_since_sync_);
  puts_since_sync_ = 0;
  return Status::OK();
}

Status SessionStore::Sync() {
  TOPKPKG_RETURN_IF_ERROR(RequireWriter());
  TOPKPKG_RETURN_IF_ERROR(TimedSync(*writer_));
  ++stats_.fsyncs;
  ObserveWindowDrain(puts_since_sync_);
  puts_since_sync_ = 0;
  return Status::OK();
}

}  // namespace topkpkg::storage
