#include "topkpkg/storage/session_store.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <utility>

namespace topkpkg::storage {

namespace {

// Keydir effect of one log record, shared by replay and the write path.
struct KeyEvent {
  std::uint64_t session_id = 0;
  RecordKind kind = 0;
  std::uint64_t offset = 0;
  std::uint64_t stored_size = 0;
};

}  // namespace

Result<SessionStore> SessionStore::Open(const std::string& path) {
  bool exists = false;
  {
    std::ifstream probe(path, std::ios::binary);
    if (probe.is_open()) {
      probe.seekg(0, std::ios::end);
      // A file cut inside its own header (crash during creation) committed
      // nothing; RecordLogWriter::Open below starts it over.
      exists = probe.good() &&
               static_cast<std::uint64_t>(probe.tellg()) >= kFileHeaderSize;
    }
  }
  std::vector<KeyEvent> events;
  ReplayStats rstats;
  if (exists) {
    RecordLogReader reader(path);
    TOPKPKG_RETURN_IF_ERROR(reader.Replay(
        [&events](const Record& rec) {
          events.push_back(KeyEvent{rec.session_id, rec.kind, rec.offset,
                                    rec.StoredSize()});
          return Status::OK();
        },
        &rstats));
    if (rstats.torn_tail) {
      // The torn record was never committed; cut it away so future appends
      // start on a record boundary instead of garbling the log mid-file.
      std::error_code ec;
      std::filesystem::resize_file(path, rstats.tail_offset, ec);
      if (ec) {
        return Status::Internal("session store: cannot truncate torn tail "
                                "of " +
                                path + ": " + ec.message());
      }
    }
  }
  TOPKPKG_ASSIGN_OR_RETURN(RecordLogWriter writer, RecordLogWriter::Open(path));
  SessionStore store(path, std::move(writer));
  for (const KeyEvent& ev : events) {
    store.Apply(ev.session_id, ev.kind, ev.offset, ev.stored_size);
  }
  store.stats_.recovered_torn_tail = rstats.torn_tail;
  return store;
}

void SessionStore::Apply(std::uint64_t session_id, RecordKind kind,
                         std::uint64_t offset, std::uint64_t stored_size) {
  if (kind == kSessionTombstone) {
    keydir_.erase(keydir_.lower_bound(Key{session_id, 0}),
                  keydir_.upper_bound(Key{session_id, kSessionTombstone}));
  } else if ((kind & kTombstoneBit) != 0) {
    auto it = keydir_.find(Key{session_id, kind & ~kTombstoneBit});
    if (it != keydir_.end()) {
      stats_.live_bytes -= it->second.stored_size;
      keydir_.erase(it);
    }
  } else {
    KeydirEntry& entry = keydir_[Key{session_id, kind}];
    stats_.live_bytes += stored_size - entry.stored_size;
    entry = KeydirEntry{offset, stored_size};
  }
  if (kind == kSessionTombstone) RecountLiveBytes();
  stats_.live_records = keydir_.size();
  stats_.file_bytes = writer_->end_offset();
  stats_.dead_bytes = stats_.file_bytes - kFileHeaderSize - stats_.live_bytes;
}

void SessionStore::RecountLiveBytes() {
  std::uint64_t live = 0;
  for (const auto& [key, entry] : keydir_) live += entry.stored_size;
  stats_.live_bytes = live;
}

// A failed compaction reopen leaves the store without a writer; reads
// still work (they go through the path), but mutations must fail cleanly
// instead of dereferencing null.
Status SessionStore::RequireWriter() const {
  if (writer_ != nullptr) return Status::OK();
  return Status::Internal(
      "session store: log writer unavailable after a failed compaction "
      "reopen of " +
      path_ + "; reopen the store");
}

Status SessionStore::Put(std::uint64_t session_id, RecordKind kind,
                         const std::string& payload) {
  TOPKPKG_RETURN_IF_ERROR(RequireWriter());
  if ((kind & kTombstoneBit) != 0) {
    return Status::InvalidArgument(
        "session store: record kinds with the tombstone bit are reserved");
  }
  TOPKPKG_ASSIGN_OR_RETURN(std::uint64_t offset,
                           writer_->Append(session_id, kind, payload));
  TOPKPKG_RETURN_IF_ERROR(writer_->Flush());
  Apply(session_id, kind, offset, kRecordHeaderSize + payload.size());
  return Status::OK();
}

Result<std::string> SessionStore::Get(std::uint64_t session_id,
                                      RecordKind kind) const {
  auto it = keydir_.find(Key{session_id, kind});
  if (it == keydir_.end()) {
    return Status::NotFound("session store: no record for session " +
                            std::to_string(session_id) + " kind " +
                            std::to_string(kind));
  }
  RecordLogReader reader(path_);
  TOPKPKG_ASSIGN_OR_RETURN(Record rec, reader.ReadAt(it->second.offset));
  if (rec.session_id != session_id || rec.kind != kind) {
    return Status::Internal("session store: keydir offset " +
                            std::to_string(it->second.offset) +
                            " holds a record for a different key");
  }
  return std::move(rec.payload);
}

bool SessionStore::Contains(std::uint64_t session_id, RecordKind kind) const {
  return keydir_.find(Key{session_id, kind}) != keydir_.end();
}

Status SessionStore::Delete(std::uint64_t session_id, RecordKind kind) {
  TOPKPKG_RETURN_IF_ERROR(RequireWriter());
  TOPKPKG_ASSIGN_OR_RETURN(
      std::uint64_t offset,
      writer_->Append(session_id, kind | kTombstoneBit, std::string()));
  TOPKPKG_RETURN_IF_ERROR(writer_->Flush());
  Apply(session_id, kind | kTombstoneBit, offset, kRecordHeaderSize);
  return Status::OK();
}

Status SessionStore::DeleteSession(std::uint64_t session_id) {
  TOPKPKG_RETURN_IF_ERROR(RequireWriter());
  TOPKPKG_ASSIGN_OR_RETURN(
      std::uint64_t offset,
      writer_->Append(session_id, kSessionTombstone, std::string()));
  TOPKPKG_RETURN_IF_ERROR(writer_->Flush());
  Apply(session_id, kSessionTombstone, offset, kRecordHeaderSize);
  return Status::OK();
}

std::vector<std::uint64_t> SessionStore::SessionIds() const {
  std::vector<std::uint64_t> ids;
  for (const auto& [key, entry] : keydir_) {
    if (ids.empty() || ids.back() != key.first) ids.push_back(key.first);
  }
  return ids;
}

std::vector<RecordKind> SessionStore::KindsOf(std::uint64_t session_id) const {
  std::vector<RecordKind> kinds;
  for (auto it = keydir_.lower_bound(Key{session_id, 0});
       it != keydir_.end() && it->first.first == session_id; ++it) {
    kinds.push_back(it->first.second);
  }
  return kinds;
}

Status SessionStore::Compact() {
  TOPKPKG_RETURN_IF_ERROR(RequireWriter());
  TOPKPKG_RETURN_IF_ERROR(writer_->Flush());
  const std::string tmp = path_ + ".compact";
  std::map<Key, KeydirEntry> fresh;
  {
    TOPKPKG_ASSIGN_OR_RETURN(RecordLogWriter rewriter,
                             RecordLogWriter::Open(tmp, /*truncate=*/true));
    RecordLogReader reader(path_);
    // Keydir order (ascending session, kind) — deterministic, so two
    // compactions of equal stores produce byte-identical files.
    for (const auto& [key, entry] : keydir_) {
      TOPKPKG_ASSIGN_OR_RETURN(Record rec, reader.ReadAt(entry.offset));
      TOPKPKG_ASSIGN_OR_RETURN(
          std::uint64_t offset,
          rewriter.Append(rec.session_id, rec.kind, rec.payload));
      fresh[key] = KeydirEntry{offset, rec.StoredSize()};
    }
    TOPKPKG_RETURN_IF_ERROR(rewriter.Flush());
  }
  // Atomic swap: the old log stays intact until the rename commits, so a
  // crash mid-compaction loses nothing.
  writer_.reset();
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    Result<RecordLogWriter> reopened = RecordLogWriter::Open(path_);
    if (reopened.ok()) {
      writer_ = std::make_unique<RecordLogWriter>(std::move(reopened).value());
    }
    return Status::Internal("session store: cannot rename " + tmp +
                            " over " + path_);
  }
  // The rename committed: the compacted layout is the store now, so the
  // keydir and stats switch over even if the writer reopen below fails
  // (in which case reads keep working and mutations fail cleanly via
  // RequireWriter until the store is reopened).
  keydir_ = std::move(fresh);
  stats_.live_records = keydir_.size();
  std::uint64_t live = 0;
  for (const auto& [key, entry] : keydir_) live += entry.stored_size;
  stats_.live_bytes = live;
  stats_.file_bytes = kFileHeaderSize + live;  // Compacted file = live only.
  stats_.dead_bytes = 0;
  TOPKPKG_ASSIGN_OR_RETURN(RecordLogWriter reopened,
                           RecordLogWriter::Open(path_));
  writer_ = std::make_unique<RecordLogWriter>(std::move(reopened));
  stats_.file_bytes = writer_->end_offset();
  stats_.dead_bytes = stats_.file_bytes - kFileHeaderSize - live;
  return Status::OK();
}

Status SessionStore::Flush() {
  TOPKPKG_RETURN_IF_ERROR(RequireWriter());
  return writer_->Flush();
}

}  // namespace topkpkg::storage
