#include "topkpkg/storage/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace topkpkg::storage {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const char* data, std::size_t n) override {
    if (fd_ < 0) return Status::Internal("env: append to closed " + path_);
    while (n > 0) {
      const ssize_t written = ::write(fd_, data, n);
      if (written < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(Errno("env: write to", path_));
      }
      data += written;
      n -= static_cast<std::size_t>(written);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fd_ < 0) return Status::Internal("env: sync of closed " + path_);
    if (::fsync(fd_) != 0) {
      return Status::Internal(Errno("env: fsync of", path_));
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) return Status::Internal(Errno("env: close of", path_));
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileLock final : public FileLock {
 public:
  explicit PosixFileLock(int fd) : fd_(fd) {}
  ~PosixFileLock() override {
    // close drops the flock with the open file description.
    if (fd_ >= 0) ::close(fd_);
  }

 private:
  int fd_;
};

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC;
    if (truncate) flags |= O_TRUNC;
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      return Status::Internal(Errno("env: cannot open", path));
    }
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::Internal(Errno("env: cannot rename", from + " -> " + to));
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::Internal(Errno("env: cannot remove", path));
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, std::uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Status::Internal(Errno("env: cannot truncate", path));
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0) {
      if (errno == EEXIST) {
        struct stat st;
        if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
          return Status::OK();
        }
        return Status::FailedPrecondition("env: " + path +
                                          " exists and is not a directory");
      }
      return Status::Internal(Errno("env: cannot mkdir", path));
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) {
      return Status::Internal(Errno("env: cannot list", path));
    }
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") names.push_back(name);
    }
    ::closedir(dir);
    return names;
  }

  Status SyncDir(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) {
      return Status::Internal(Errno("env: cannot open dir", path));
    }
    const int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0) {
      return Status::Internal(Errno("env: fsync of dir", path));
    }
    return Status::OK();
  }

  Result<std::uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return Status::NotFound(Errno("env: cannot stat", path));
    }
    return static_cast<std::uint64_t>(st.st_size);
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Result<std::unique_ptr<FileLock>> LockFile(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status::Internal(Errno("env: cannot open lock file", path));
    }
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
      const int err = errno;
      ::close(fd);
      if (err == EWOULDBLOCK) {
        return Status::FailedPrecondition(
            "store is locked by another writer: " + path +
            " (one SessionStore handle per path; close the other one first)");
      }
      errno = err;
      return Status::Internal(Errno("env: cannot flock", path));
    }
    return std::unique_ptr<FileLock>(std::make_unique<PosixFileLock>(fd));
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace topkpkg::storage
