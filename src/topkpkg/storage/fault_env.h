#ifndef TOPKPKG_STORAGE_FAULT_ENV_H_
#define TOPKPKG_STORAGE_FAULT_ENV_H_

// Failpoint Env for crash-recovery testing (the FaultInjectionTestFS idea:
// LevelDB/RocksDB prove their crash contract this way). Every mutating
// filesystem operation the storage engine performs — file creation, append,
// fsync, rename, remove, truncate, directory sync — passes through here and
// is numbered; a test can
//
//   - crash the store at failpoint N (`set_crash_at`): an append performs a
//     deterministic *short write* (a prefix of the buffer — the torn-tail
//     shape), any other op is skipped, and from then on every mutating op
//     fails as if the process were dead;
//   - simulate power loss (`LoseUnsyncedData`): each file written through
//     this env is truncated back to its last-fsynced size plus a
//     caller-chosen number of page-cache-survivor bytes, which sweeps every
//     torn-record boundary across a crash sweep;
//   - toggle a transient outage (`set_fail_writes`): mutating ops fail until
//     the flag clears, the store object stays alive — the shape the serving
//     layer's retry/backoff self-healing is tested against.
//
// The model persists renames/removes/creations immediately (the engine
// orders them with directory syncs on the real Env); what it loses is
// unsynced file *content*, which is exactly the contract FsyncPolicy
// documents. Thread-safe: all state sits behind one mutex, so a
// SessionManager driving a store over this env runs clean under TSan.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "topkpkg/storage/env.h"

namespace topkpkg::storage {

class FaultInjectingEnv final : public Env {
 public:
  // `base` must outlive this env (and any file handles it issued).
  explicit FaultInjectingEnv(Env* base) : base_(base) {}

  // --- failpoint controls -------------------------------------------------

  // Crash when the mutating-op counter reaches `op` (see ops()); negative
  // disarms. Reset the counter when re-arming a fresh run.
  void set_crash_at(std::int64_t op);
  // Transient outage: mutating ops fail Internal until cleared.
  void set_fail_writes(bool fail);
  void ResetCounters();

  // Mutating ops observed so far (a fault-free recording run of a workload
  // bounds the crash sweep).
  std::uint64_t ops() const;
  // fsync calls that completed successfully (the durability watermark a
  // recovery test acknowledges against).
  std::uint64_t sync_successes() const;
  bool crashed() const;

  // Simulates losing the page cache: truncates every file written through
  // this env back to its last-synced size, keeping at most
  // `keep_unsynced_bytes` of the unsynced tail (sweeping this sweeps torn
  // boundaries). Call after a crash, before recovery reopens the store.
  Status LoseUnsyncedData(std::uint64_t keep_unsynced_bytes);

  // --- Env ---------------------------------------------------------------

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, std::uint64_t size) override;
  Status CreateDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  Result<std::uint64_t> FileSize(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<std::unique_ptr<FileLock>> LockFile(const std::string& path) override;

  // Internal: the write path of the file handles this env issues (public
  // only because the wrapper lives in the .cc's anonymous namespace).
  Status AppendThroughFault(const std::string& path, WritableFile* base,
                            const char* data, std::size_t n);
  Status SyncThroughFault(const std::string& path, WritableFile* base);

 private:
  struct FileState {
    std::uint64_t size = 0;    // Bytes written through this env.
    std::uint64_t synced = 0;  // Durable watermark (last successful fsync).
  };

  enum class OpVerdict { kProceed, kFail, kCrashNow };

  // Counts one mutating op and decides its fate; mu_ must be held.
  OpVerdict NextOpLocked();
  Status FailStatusLocked() const;
  static Status DeadStatus() {
    return Status::Internal("fault_env: injected crash — the store is dead");
  }
  static Status OutageStatus() {
    return Status::Internal("fault_env: injected store outage");
  }

  Env* base_;
  mutable std::mutex mu_;
  std::uint64_t op_counter_ = 0;
  std::int64_t crash_at_ = -1;
  std::uint64_t syncs_ok_ = 0;
  bool crashed_ = false;
  bool fail_writes_ = false;
  std::map<std::string, FileState> files_;
};

}  // namespace topkpkg::storage

#endif  // TOPKPKG_STORAGE_FAULT_ENV_H_
