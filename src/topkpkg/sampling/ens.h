#ifndef TOPKPKG_SAMPLING_ENS_H_
#define TOPKPKG_SAMPLING_ENS_H_

#include <vector>

#include "topkpkg/sampling/sample.h"

namespace topkpkg::sampling {

// Empirical Effective Number of Samples (Kong, Liu & Wong 1994; Eq. 3 of the
// paper): ENS = (Σ qᵢ)² / Σ qᵢ². Equals N for unweighted samples and shrinks
// as importance weights become uneven. The paper's Theorems 1–2 predict
//   ENS(MCMC) ≥ ENS(importance) ≥ ENS(rejection)
// at a matched number of raw proposals; `bench_ablation_ens` and `ens_test`
// check that ordering empirically.
double EffectiveSampleSize(const std::vector<WeightedSample>& samples);

// ENS per raw proposal: EffectiveSampleSize(samples) / stats.proposed. This
// is the efficiency measure that exposes rejection sampling's wasted draws.
double EnsPerProposal(const std::vector<WeightedSample>& samples,
                      const SampleStats& stats);

}  // namespace topkpkg::sampling

#endif  // TOPKPKG_SAMPLING_ENS_H_
