#include "topkpkg/sampling/parallel_sampler.h"

#include <algorithm>
#include <utility>

#include "topkpkg/common/thread_pool.h"

namespace topkpkg::sampling {

ParallelSampler::ParallelSampler(ChunkDrawFn draw,
                                 ParallelSamplerOptions options)
    : draw_(std::move(draw)), options_(options) {}

uint64_t ParallelSampler::ChunkSeed(uint64_t seed, std::size_t index) {
  // Feed seed ^ golden-ratio-scrambled index through one SplitMix64 step so
  // consecutive chunk indices map to decorrelated seeds.
  uint64_t state =
      seed ^ (static_cast<uint64_t>(index) * 0x9E3779B97F4A7C15ULL + 1);
  return SplitMix64(state);
}

Result<std::vector<WeightedSample>> ParallelSampler::Draw(
    std::size_t n, uint64_t seed, SampleStats* stats,
    ThreadPool* workers) const {
  if (n == 0) return std::vector<WeightedSample>{};
  const std::size_t chunk_size = std::max<std::size_t>(1, options_.chunk_size);
  const std::size_t num_chunks = (n + chunk_size - 1) / chunk_size;

  std::vector<Result<std::vector<WeightedSample>>> chunk_results(
      num_chunks, Status::Internal("chunk not drawn"));
  std::vector<SampleStats> chunk_stats(num_chunks);

  auto draw_chunk = [&](std::size_t c) {
    const std::size_t lo = c * chunk_size;
    const std::size_t count = std::min(chunk_size, n - lo);
    Rng rng(ChunkSeed(seed, c));
    chunk_results[c] =
        draw_(count, rng, stats != nullptr ? &chunk_stats[c] : nullptr);
  };

  if (options_.num_threads <= 1 || num_chunks == 1) {
    for (std::size_t c = 0; c < num_chunks; ++c) draw_chunk(c);
  } else if (workers != nullptr) {
    // Borrowed pool, possibly sized for another phase: still honor this
    // sampler's own num_threads cap.
    workers->ParallelFor(num_chunks, options_.num_threads, draw_chunk);
  } else {
    ThreadPool pool(std::min(options_.num_threads, num_chunks));
    pool.ParallelFor(num_chunks, draw_chunk);
  }

  if (stats != nullptr) {
    for (const SampleStats& s : chunk_stats) stats->Merge(s);
  }
  std::vector<WeightedSample> out;
  out.reserve(n);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    if (!chunk_results[c].ok()) return chunk_results[c].status();
    for (WeightedSample& s : chunk_results[c].value()) {
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace topkpkg::sampling
