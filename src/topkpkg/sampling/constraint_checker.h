#ifndef TOPKPKG_SAMPLING_CONSTRAINT_CHECKER_H_
#define TOPKPKG_SAMPLING_CONSTRAINT_CHECKER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "topkpkg/common/vec.h"
#include "topkpkg/model/package.h"
#include "topkpkg/model/profile.h"
#include "topkpkg/pref/preference.h"
#include "topkpkg/pref/preference_set.h"
#include "topkpkg/sampling/sample.h"

namespace topkpkg {
class ThreadPool;
}

namespace topkpkg::sampling {

// Validates candidate weight vectors against the elicited preference
// constraints. Construct it from a PreferenceSet either with every raw
// constraint (`FromAll`) or with the transitively reduced set (`FromReduced`,
// the Sec. 3.3 pruning): both accept exactly the same weight vectors, but the
// reduced set performs fewer w·diff evaluations — the effect measured in
// Fig. 5.
class ConstraintChecker {
 public:
  explicit ConstraintChecker(std::vector<pref::Preference> constraints)
      : constraints_(std::move(constraints)) {}

  static ConstraintChecker FromAll(const pref::PreferenceSet& set) {
    return ConstraintChecker(set.AllConstraints());
  }
  static ConstraintChecker FromReduced(const pref::PreferenceSet& set) {
    return ConstraintChecker(set.ReducedConstraints());
  }

  std::size_t num_constraints() const { return constraints_.size(); }
  const std::vector<pref::Preference>& constraints() const {
    return constraints_;
  }

  // True iff w satisfies every constraint. `checks`, when provided, is
  // incremented once per dot-product evaluated (short-circuits on first
  // violation).
  bool IsValid(const Vec& w, std::size_t* checks = nullptr) const;

  // Number of violated constraints (no short-circuit; used by the noise
  // model, which needs the exact violation count x for 1-(1-ψ)^x).
  std::size_t Violations(const Vec& w, std::size_t* checks = nullptr) const;

  // Batched validity: entry i is 1 iff batch sample i satisfies every
  // constraint — the same verdicts as per-sample IsValid(). Iterates
  // constraints outer / samples inner over the struct-of-arrays view, and
  // compacts the surviving samples after each constraint, so a sample pays
  // for exactly the constraints IsValid() would evaluate before its first
  // violation. `checks`, when provided, counts those dot products — it
  // matches the sum of per-sample IsValid() check counts.
  std::vector<std::uint8_t> IsValidBatch(const WeightBatch& batch,
                                         std::size_t* checks = nullptr) const;

  // Same verdicts and check count, sharded into contiguous sample ranges on
  // a caller-owned pool (each sample's verdict and check count are
  // independent of the others, so sharding changes neither). Falls back to
  // the serial scan when `workers` is null or the batch is small.
  std::vector<std::uint8_t> IsValidBatch(const WeightBatch& batch,
                                         ThreadPool* workers,
                                         std::size_t* checks = nullptr) const;

 private:
  // The active-set scan of IsValidBatch restricted to samples [lo, hi).
  void ScanRange(const WeightBatch& batch, std::size_t lo, std::size_t hi,
                 std::uint8_t* valid, std::size_t* checks) const;

  std::vector<pref::Preference> constraints_;
};

// A hard aggregate-threshold constraint over packages (the Sec. 7 "schema
// constraint" family expressed over aggregates): the raw (unnormalized)
// aggregate of `feature` under `op` must lie in [lower, upper]. Defaults
// make either side optional.
struct AggregateThreshold {
  std::size_t feature = 0;
  model::AggregateOp op = model::AggregateOp::kSum;
  double lower = -std::numeric_limits<double>::infinity();
  double upper = std::numeric_limits<double>::infinity();
};

// Validates packages against a conjunction of aggregate thresholds. All
// aggregate arithmetic delegates to model/aggregate_kernel.h — the same
// fold/normalize rules the model, search and oracle layers score packages
// with (null skipping, count-0 min/max = 0, avg over the full package size)
// — so a threshold verdict can never disagree with the aggregates a package
// is ranked under. `table` must outlive the checker.
class PackageConstraintChecker {
 public:
  PackageConstraintChecker(const model::ItemTable* table,
                           std::vector<AggregateThreshold> thresholds);

  std::size_t num_thresholds() const { return thresholds_.size(); }
  const std::vector<AggregateThreshold>& thresholds() const {
    return thresholds_;
  }

  // True iff every threshold holds for `package` (short-circuits on the
  // first violation).
  bool IsValid(const model::Package& package) const;

  // Raw aggregate of one threshold's feature over `package` (diagnostics,
  // and the single evaluation IsValid folds per threshold).
  double RawAggregate(const model::Package& package,
                      const AggregateThreshold& t) const;

  // Adapter usable as a TopKPkgSearch::PackageFilter ("at least…/at most…"
  // schema predicates pushed into the search). Captures `this`; the checker
  // must outlive the returned filter.
  std::function<bool(const model::Package&)> AsFilter() const;

 private:
  const model::ItemTable* table_;
  std::vector<AggregateThreshold> thresholds_;
};

}  // namespace topkpkg::sampling

#endif  // TOPKPKG_SAMPLING_CONSTRAINT_CHECKER_H_
