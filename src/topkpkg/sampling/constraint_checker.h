#ifndef TOPKPKG_SAMPLING_CONSTRAINT_CHECKER_H_
#define TOPKPKG_SAMPLING_CONSTRAINT_CHECKER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "topkpkg/common/vec.h"
#include "topkpkg/pref/preference.h"
#include "topkpkg/pref/preference_set.h"
#include "topkpkg/sampling/sample.h"

namespace topkpkg {
class ThreadPool;
}

namespace topkpkg::sampling {

// Validates candidate weight vectors against the elicited preference
// constraints. Construct it from a PreferenceSet either with every raw
// constraint (`FromAll`) or with the transitively reduced set (`FromReduced`,
// the Sec. 3.3 pruning): both accept exactly the same weight vectors, but the
// reduced set performs fewer w·diff evaluations — the effect measured in
// Fig. 5.
class ConstraintChecker {
 public:
  explicit ConstraintChecker(std::vector<pref::Preference> constraints)
      : constraints_(std::move(constraints)) {}

  static ConstraintChecker FromAll(const pref::PreferenceSet& set) {
    return ConstraintChecker(set.AllConstraints());
  }
  static ConstraintChecker FromReduced(const pref::PreferenceSet& set) {
    return ConstraintChecker(set.ReducedConstraints());
  }

  std::size_t num_constraints() const { return constraints_.size(); }
  const std::vector<pref::Preference>& constraints() const {
    return constraints_;
  }

  // True iff w satisfies every constraint. `checks`, when provided, is
  // incremented once per dot-product evaluated (short-circuits on first
  // violation).
  bool IsValid(const Vec& w, std::size_t* checks = nullptr) const;

  // Number of violated constraints (no short-circuit; used by the noise
  // model, which needs the exact violation count x for 1-(1-ψ)^x).
  std::size_t Violations(const Vec& w, std::size_t* checks = nullptr) const;

  // Batched validity: entry i is 1 iff batch sample i satisfies every
  // constraint — the same verdicts as per-sample IsValid(). Iterates
  // constraints outer / samples inner over the struct-of-arrays view, and
  // compacts the surviving samples after each constraint, so a sample pays
  // for exactly the constraints IsValid() would evaluate before its first
  // violation. `checks`, when provided, counts those dot products — it
  // matches the sum of per-sample IsValid() check counts.
  std::vector<std::uint8_t> IsValidBatch(const WeightBatch& batch,
                                         std::size_t* checks = nullptr) const;

  // Same verdicts and check count, sharded into contiguous sample ranges on
  // a caller-owned pool (each sample's verdict and check count are
  // independent of the others, so sharding changes neither). Falls back to
  // the serial scan when `workers` is null or the batch is small.
  std::vector<std::uint8_t> IsValidBatch(const WeightBatch& batch,
                                         ThreadPool* workers,
                                         std::size_t* checks = nullptr) const;

 private:
  // The active-set scan of IsValidBatch restricted to samples [lo, hi).
  void ScanRange(const WeightBatch& batch, std::size_t lo, std::size_t hi,
                 std::uint8_t* valid, std::size_t* checks) const;

  std::vector<pref::Preference> constraints_;
};

}  // namespace topkpkg::sampling

#endif  // TOPKPKG_SAMPLING_CONSTRAINT_CHECKER_H_
