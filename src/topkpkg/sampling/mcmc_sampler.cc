#include "topkpkg/sampling/mcmc_sampler.h"

#include <cmath>
#include <utility>

#include "topkpkg/common/timer.h"
#include "topkpkg/sampling/sampler_metrics.h"

namespace topkpkg::sampling {

McmcSampler::McmcSampler(const prob::GaussianMixture* prior,
                         const ConstraintChecker* checker,
                         McmcSamplerOptions options)
    : prior_(prior), checker_(checker), options_(options) {}

Result<std::vector<WeightedSample>> McmcSampler::Draw(
    std::size_t n, Rng& rng, SampleStats* stats) const {
  internal::ScopedDrawFlush flush("MS", &stats);
  Timer timer;
  // Find a first valid state with plain rejection sampling (Sec. 5.1: "during
  // this process we leverage the simple rejection sampling").
  RejectionSampler bootstrap(prior_, checker_, options_.base);
  TOPKPKG_ASSIGN_OR_RETURN(WeightedSample start, bootstrap.DrawOne(rng, stats));

  Vec w = std::move(start.w);
  double log_pw = prior_->LogPdf(w);
  const std::size_t dim = w.size();

  std::vector<WeightedSample> out;
  out.reserve(n);
  std::size_t step = 0;
  const std::size_t max_steps =
      options_.burn_in + options_.base.max_attempts_per_sample +
      n * options_.thinning;
  while (out.size() < n) {
    if (++step > max_steps) {
      if (stats != nullptr) stats->seconds += timer.ElapsedSeconds();
      return Status::ResourceExhausted("McmcSampler: chain failed to mix");
    }
    Vec delta = rng.UniformInBall(dim, options_.lmax);
    Vec proposal = Add(w, delta);
    if (stats != nullptr) ++stats->proposed;

    bool valid = InBox(proposal, options_.base.box_lo, options_.base.box_hi);
    if (!valid && stats != nullptr) ++stats->rejected_box;
    if (valid) {
      std::size_t checks = 0;
      if (options_.base.noise.psi >= 1.0) {
        valid = checker_->IsValid(proposal, &checks);
      } else {
        std::size_t violations = checker_->Violations(proposal, &checks);
        valid = !options_.base.noise.ShouldReject(violations, rng);
      }
      if (stats != nullptr) {
        stats->constraint_checks += checks;
        if (!valid) ++stats->rejected_constraint;
      }
    }

    if (valid) {
      // Symmetric proposal: α = min{1, P_w(w')/P_w(w)} (Eq. 7).
      double log_pw_new = prior_->LogPdf(proposal);
      double log_alpha = log_pw_new - log_pw;
      if (log_alpha >= 0.0 || std::log(rng.Uniform()) < log_alpha) {
        w = std::move(proposal);
        log_pw = log_pw_new;
      } else if (stats != nullptr) {
        ++stats->rejected_mh;
      }
    }
    // Whether moved or not, the current state is the next chain element;
    // collect every δ-th state after burn-in.
    if (step > options_.burn_in && step % options_.thinning == 0) {
      out.push_back(WeightedSample{w, 1.0});
      if (stats != nullptr) ++stats->accepted;
    }
  }
  if (stats != nullptr) stats->seconds += timer.ElapsedSeconds();
  return out;
}

}  // namespace topkpkg::sampling
