#include "topkpkg/sampling/sample_maintenance.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>

namespace topkpkg::sampling {

namespace {

constexpr double kEps = 1e-12;

// A sample w violates ρ := p₁ ≻ p₂ iff w·(p₂-p₁) > 0; `query` is p₂-p₁.
Vec QueryVector(const pref::Preference& pref) {
  Vec q(pref.diff.size());
  for (std::size_t i = 0; i < q.size(); ++i) q[i] = -pref.diff[i];
  return q;
}

MaintenanceResult NaiveScan(const SamplePool& pool, const Vec& query) {
  MaintenanceResult result;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    ++result.accesses;
    if (Dot(pool.sample(i).w, query) > kEps) result.violators.push_back(i);
  }
  return result;
}

// Walks one sorted list either ascending or descending depending on the sign
// of the query coordinate.
struct ListCursor {
  std::size_t feature;
  double coeff;     // query[feature], nonzero
  std::size_t pos;  // Entries consumed so far.

  // Value of the `pos`-th entry in access order.
  double ValueAt(const SamplePool::SortedList& list, std::size_t p) const {
    return coeff > 0.0 ? list[list.size() - 1 - p].first : list[p].first;
  }
  std::uint32_t IndexAt(const SamplePool::SortedList& list,
                        std::size_t p) const {
    return coeff > 0.0 ? list[list.size() - 1 - p].second : list[p].second;
  }
};

MaintenanceResult TaScan(const SamplePool& pool, const Vec& query,
                         bool hybrid, double gamma) {
  MaintenanceResult result;
  const auto& lists = pool.sorted_lists();
  const std::size_t n = pool.size();

  std::vector<ListCursor> cursors;
  for (std::size_t f = 0; f < query.size(); ++f) {
    if (query[f] != 0.0) cursors.push_back(ListCursor{f, query[f], 0});
  }
  if (cursors.empty() || n == 0) return result;  // w·query == 0 for all w.

  std::vector<bool> seen(n, false);
  std::size_t num_seen = 0;
  auto visit = [&](std::uint32_t idx) {
    if (seen[idx]) return;
    seen[idx] = true;
    ++num_seen;
    if (Dot(pool.sample(idx).w, query) > kEps) {
      result.violators.push_back(idx);
    }
  };

  // Round-robin threshold-algorithm scan with an incrementally maintained
  // threshold: τ = Σ coeff_f · frontier_f starts from each list's extreme
  // value and only the accessed list's term changes per step, so one access
  // costs O(1) bookkeeping. Any unseen sample is coordinate-wise no better
  // than τ in the query direction.
  double tau = 0.0;
  for (const ListCursor& c : cursors) {
    tau += c.coeff * c.ValueAt(lists[c.feature], 0);
  }
  bool done = false;
  while (!done) {
    done = true;
    for (ListCursor& cur : cursors) {
      const auto& list = lists[cur.feature];
      if (cur.pos >= list.size()) continue;
      if (hybrid) {
        // Algorithm 1 line 9: if the accesses already made plus those left in
        // the current list reach (1+γ)|S|, finish by scanning directly.
        std::size_t remain = list.size() - cur.pos;
        if (result.accesses + remain >=
            static_cast<std::size_t>((1.0 + gamma) * static_cast<double>(n))) {
          for (std::uint32_t idx = 0; idx < n; ++idx) {
            if (!seen[idx]) {
              ++result.accesses;
              visit(idx);
            }
          }
          result.fell_back = true;
          return result;
        }
      }
      done = false;
      ++result.accesses;
      visit(cur.IndexAt(list, cur.pos));
      tau -= cur.coeff * cur.ValueAt(list, cur.pos);
      ++cur.pos;
      if (cur.pos < list.size()) {
        tau += cur.coeff * cur.ValueAt(list, cur.pos);
      }
      // Threshold test: τ·query ≤ 0 means no unseen sample can violate.
      if (tau <= kEps || num_seen == n) return result;
    }
  }
  return result;
}

}  // namespace

const char* MaintenanceStrategyName(MaintenanceStrategy s) {
  switch (s) {
    case MaintenanceStrategy::kNaive:
      return "naive";
    case MaintenanceStrategy::kTa:
      return "ta";
    case MaintenanceStrategy::kHybrid:
      return "hybrid";
  }
  return "?";
}

MaintenanceResult FindViolatorsParallel(const SamplePool& pool,
                                        const pref::Preference& pref,
                                        ThreadPool& threads) {
  const Vec query = QueryVector(pref);
  const WeightBatch& batch = pool.batch();
  const std::size_t n = batch.size();
  MaintenanceResult result;
  result.accesses = n;
  if (n == 0) return result;

  // One contiguous block per worker; each sweeps its index range
  // feature-outer over the batch columns and collects local violators
  // (already ascending). Keyed by `lo` so the merge is in index order no
  // matter which worker ran which block.
  std::map<std::size_t, std::vector<std::size_t>> block_violators;
  std::mutex mu;
  threads.ParallelForBlocks(n, [&](std::size_t lo, std::size_t hi) {
    std::vector<double> acc(hi - lo, 0.0);
    for (std::size_t f = 0; f < query.size(); ++f) {
      const double q = query[f];
      if (q == 0.0) continue;
      const double* col = batch.column(f) + lo;
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += q * col[i];
    }
    std::vector<std::size_t> violators;
    for (std::size_t i = 0; i < acc.size(); ++i) {
      if (acc[i] > kEps) violators.push_back(lo + i);
    }
    std::lock_guard<std::mutex> lock(mu);
    block_violators.emplace(lo, std::move(violators));
  });
  for (auto& [lo, violators] : block_violators) {
    result.violators.insert(result.violators.end(), violators.begin(),
                            violators.end());
  }
  return result;
}

MaintenanceResult FindViolators(const SamplePool& pool,
                                const pref::Preference& pref,
                                MaintenanceStrategy strategy, double gamma) {
  Vec query = QueryVector(pref);
  switch (strategy) {
    case MaintenanceStrategy::kNaive:
      return NaiveScan(pool, query);
    case MaintenanceStrategy::kTa:
      return TaScan(pool, query, /*hybrid=*/false, gamma);
    case MaintenanceStrategy::kHybrid:
      return TaScan(pool, query, /*hybrid=*/true, gamma);
  }
  return NaiveScan(pool, query);
}

}  // namespace topkpkg::sampling
