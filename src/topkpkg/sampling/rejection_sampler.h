#ifndef TOPKPKG_SAMPLING_REJECTION_SAMPLER_H_
#define TOPKPKG_SAMPLING_REJECTION_SAMPLER_H_

#include <cstddef>
#include <vector>

#include "topkpkg/common/execution_options.h"
#include "topkpkg/common/random.h"
#include "topkpkg/common/status.h"
#include "topkpkg/pref/preference.h"
#include "topkpkg/prob/gaussian_mixture.h"
#include "topkpkg/sampling/constraint_checker.h"
#include "topkpkg/sampling/sample.h"

namespace topkpkg::sampling {

// Shared sampler knobs.
struct SamplerOptions {
  // Weight-vector box (Sec. 2.1 assumes w ∈ [-1, 1]^m).
  double box_lo = -1.0;
  double box_hi = 1.0;
  // Gives up (ResourceExhausted) if this many consecutive proposals fail to
  // produce a valid sample — the symptom of an (almost) empty valid region.
  std::size_t max_attempts_per_sample = 200000;
  // Sec. 7 noise model; psi = 1 keeps constraints hard.
  pref::NoiseModel noise;
  // Execution seam for pool regeneration (see ParallelSampler).
  // exec.num_threads == 1 keeps the classic single-stream serial path,
  // bit-identical to prior releases; > 1 shards the draw into deterministic
  // per-chunk RNG streams, so results are reproducible for a fixed seed but
  // differ from the serial stream.
  ExecutionOptions exec;
};

// Sec. 3.1: sample w from the prior P_w, reject any sample violating the
// feedback. By Lemma 1 the accepted samples follow the posterior
// P_w(w | S_ρ) exactly, but as feedback accumulates the acceptance region
// shrinks and more and more proposals are wasted.
class RejectionSampler {
 public:
  // `prior` and `checker` must outlive the sampler.
  RejectionSampler(const prob::GaussianMixture* prior,
                   const ConstraintChecker* checker,
                   SamplerOptions options = {});

  // Draws `n` valid samples (each with weight 1). `stats`, when provided, is
  // accumulated into.
  Result<std::vector<WeightedSample>> Draw(std::size_t n, Rng& rng,
                                           SampleStats* stats = nullptr) const;

  // Draws a single valid sample; used by the MCMC sampler to find a starting
  // point inside the polytope.
  Result<WeightedSample> DrawOne(Rng& rng, SampleStats* stats = nullptr) const;

 private:
  const prob::GaussianMixture* prior_;
  const ConstraintChecker* checker_;
  SamplerOptions options_;
};

}  // namespace topkpkg::sampling

#endif  // TOPKPKG_SAMPLING_REJECTION_SAMPLER_H_
