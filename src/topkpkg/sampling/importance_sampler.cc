#include "topkpkg/sampling/importance_sampler.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "topkpkg/common/timer.h"
#include "topkpkg/sampling/sampler_metrics.h"

namespace topkpkg::sampling {

bool CellMayContainValid(const Vec& cell_lo, const Vec& cell_hi,
                         const Vec& diff) {
  double best = 0.0;
  for (std::size_t i = 0; i < diff.size(); ++i) {
    best += std::max(diff[i] * cell_lo[i], diff[i] * cell_hi[i]);
  }
  return best >= 0.0;
}

ImportanceSampler::ImportanceSampler(const prob::GaussianMixture* prior,
                                     const ConstraintChecker* checker,
                                     ImportanceSamplerOptions options,
                                     Vec center, prob::Gaussian proposal,
                                     double center_seconds,
                                     std::size_t feasible_cells)
    : prior_(prior),
      checker_(checker),
      options_(options),
      center_(std::move(center)),
      proposal_(std::move(proposal)),
      center_seconds_(center_seconds),
      feasible_cells_(feasible_cells) {}

Result<ImportanceSampler> ImportanceSampler::Create(
    const prob::GaussianMixture* prior, const ConstraintChecker* checker,
    ImportanceSamplerOptions options) {
  const std::size_t m = prior->dim();
  if (m > options.max_dim) {
    return Status::Unimplemented(
        "ImportanceSampler: the grid decomposition is exponential in the "
        "number of features; " +
        std::to_string(m) + " > max_dim=" + std::to_string(options.max_dim) +
        " (see Sec. 5.3 of the paper)");
  }
  const std::size_t g = std::max<std::size_t>(2, options.grid_resolution);
  const double lo = options.base.box_lo;
  const double hi = options.base.box_hi;
  const double cell_width = (hi - lo) / static_cast<double>(g);

  Timer timer;
  // Enumerate the g^m cells with an odometer; keep centers of cells that may
  // intersect the valid region.
  std::size_t total_cells = 1;
  for (std::size_t i = 0; i < m; ++i) total_cells *= g;
  std::vector<std::size_t> idx(m, 0);
  Vec cell_lo(m), cell_hi(m), cell_center(m);
  // Two approximations of the valid region, from fine to coarse: cells whose
  // center satisfies every constraint (clearly inside), and cells that
  // merely may intersect the region (the paper's overlap test). The center
  // and proposal spread come from the finest non-empty set.
  struct Stats {
    Vec sum, sq_sum;
    std::size_t count = 0;
  };
  Stats inside{Vec(m, 0.0), Vec(m, 0.0), 0};
  Stats overlap{Vec(m, 0.0), Vec(m, 0.0), 0};
  for (std::size_t cell = 0; cell < total_cells; ++cell) {
    for (std::size_t i = 0; i < m; ++i) {
      cell_lo[i] = lo + static_cast<double>(idx[i]) * cell_width;
      cell_hi[i] = cell_lo[i] + cell_width;
      cell_center[i] = cell_lo[i] + 0.5 * cell_width;
    }
    bool may = true;
    for (const pref::Preference& p : checker->constraints()) {
      if (!CellMayContainValid(cell_lo, cell_hi, p.diff)) {
        may = false;
        break;
      }
    }
    if (may) {
      ++overlap.count;
      for (std::size_t i = 0; i < m; ++i) {
        overlap.sum[i] += cell_center[i];
        overlap.sq_sum[i] += cell_center[i] * cell_center[i];
      }
      if (checker->IsValid(cell_center)) {
        ++inside.count;
        for (std::size_t i = 0; i < m; ++i) {
          inside.sum[i] += cell_center[i];
          inside.sq_sum[i] += cell_center[i] * cell_center[i];
        }
      }
    }
    // Odometer increment.
    for (std::size_t i = 0; i < m; ++i) {
      if (++idx[i] < g) break;
      idx[i] = 0;
    }
  }

  const Stats& best = inside.count > 0 ? inside : overlap;
  std::size_t feasible = overlap.count;
  Vec center(m, 0.0);
  double stddev = options.proposal_stddev;
  if (best.count > 0) {
    for (std::size_t i = 0; i < m; ++i) {
      center[i] = best.sum[i] / static_cast<double>(best.count);
    }
    if (stddev <= 0.0) {
      // Spread of the chosen cell centers plus half a cell of slack, so the
      // proposal covers the whole approximated region.
      double var = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        double mean = center[i];
        var += best.sq_sum[i] / static_cast<double>(best.count) - mean * mean;
      }
      var = std::max(var / static_cast<double>(m), 0.0);
      stddev = std::sqrt(var) + 0.5 * cell_width;
    }
  } else {
    // Empty approximation: fall back to a wide proposal over the box center.
    if (stddev <= 0.0) stddev = 0.5 * (hi - lo);
  }
  // Floor the spread: an over-tight proposal raises the acceptance rate but
  // makes the importance weights q = P/Q wildly uneven, which destroys the
  // effective sample size the method exists to improve (Theorem 1 implicitly
  // assumes the proposal tracks the prior inside the valid region).
  stddev = std::max(stddev, 0.25);
  double center_seconds = timer.ElapsedSeconds();

  TOPKPKG_ASSIGN_OR_RETURN(prob::Gaussian proposal,
                           prob::Gaussian::Spherical(center, stddev));
  return ImportanceSampler(prior, checker, options, center,
                           std::move(proposal), center_seconds, feasible);
}

double ImportanceSampler::ImportanceWeight(const Vec& w) const {
  return prior_->Pdf(w) / proposal_.Pdf(w);
}

Result<std::vector<WeightedSample>> ImportanceSampler::Draw(
    std::size_t n, Rng& rng, SampleStats* stats) const {
  internal::ScopedDrawFlush flush("IS", &stats);
  Timer timer;
  std::vector<WeightedSample> out;
  out.reserve(n);
  std::size_t attempts_since_accept = 0;
  while (out.size() < n) {
    if (++attempts_since_accept > options_.base.max_attempts_per_sample) {
      if (stats != nullptr) stats->seconds += timer.ElapsedSeconds();
      return Status::ResourceExhausted(
          "ImportanceSampler: proposal cannot reach the valid region");
    }
    Vec w = proposal_.Sample(rng);
    if (stats != nullptr) ++stats->proposed;
    if (!InBox(w, options_.base.box_lo, options_.base.box_hi)) {
      if (stats != nullptr) ++stats->rejected_box;
      continue;
    }
    std::size_t checks = 0;
    bool reject;
    if (options_.base.noise.psi >= 1.0) {
      reject = !checker_->IsValid(w, &checks);
    } else {
      std::size_t violations = checker_->Violations(w, &checks);
      reject = options_.base.noise.ShouldReject(violations, rng);
    }
    if (stats != nullptr) stats->constraint_checks += checks;
    if (reject) {
      if (stats != nullptr) ++stats->rejected_constraint;
      continue;
    }
    double q = ImportanceWeight(w);
    out.push_back(WeightedSample{std::move(w), q});
    if (stats != nullptr) ++stats->accepted;
    attempts_since_accept = 0;
  }
  if (stats != nullptr) stats->seconds += timer.ElapsedSeconds();
  return out;
}

}  // namespace topkpkg::sampling
