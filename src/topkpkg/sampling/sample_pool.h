#ifndef TOPKPKG_SAMPLING_SAMPLE_POOL_H_
#define TOPKPKG_SAMPLING_SAMPLE_POOL_H_

#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

#include "topkpkg/common/status.h"
#include "topkpkg/common/vec.h"
#include "topkpkg/sampling/sample.h"

namespace topkpkg {
class ThreadPool;
}

namespace topkpkg::sampling {

// What one pool mutation did, in terms of stable SampleIds. Downstream
// layers (the incremental ranker's TopListCache, reuse accounting in
// RoundLog) consume this instead of diffing the pool: `added_ids` entered
// with this mutation, `removed_ids` left, and `surviving_ids` were present
// before and still are. added ∪ surviving = the pool's current ids.
struct PoolDelta {
  std::vector<SampleId> added_ids;
  std::vector<SampleId> removed_ids;
  std::vector<SampleId> surviving_ids;
};

// The pool S of previously generated weight-vector samples, kept alive across
// feedback rounds (Sec. 3.4: valid samples still follow P_w after new
// feedback, so only violators need replacing). Mints a stable SampleId for
// every sample that enters, and reports each mutation as a PoolDelta.
// Maintains per-coordinate sorted index lists — the structure Algorithm 1's
// TA-based violator scan walks — rebuilding them lazily after mutations.
class SamplePool {
 public:
  SamplePool() = default;
  explicit SamplePool(std::vector<WeightedSample> samples)
      : samples_(std::move(samples)) {
    for (auto& s : samples_) s.id = MintId();
  }

  std::size_t size() const { return samples_.size(); }
  std::size_t dim() const {
    return samples_.empty() ? 0 : samples_[0].w.size();
  }
  const std::vector<WeightedSample>& samples() const { return samples_; }
  const WeightedSample& sample(std::size_t i) const { return samples_[i]; }
  SampleId id(std::size_t i) const { return samples_[i].id; }

  // Appends fresh samples (their `id` fields are overwritten with newly
  // minted ids). The returned delta lists the new ids as added and every
  // pre-existing sample as surviving.
  PoolDelta Append(std::vector<WeightedSample> fresh);

  // Removes the samples at `indices` (need not be sorted or unique) and
  // appends `fresh` — the Sec. 3.4 replace-violators maintenance step.
  PoolDelta Replace(std::vector<std::size_t> indices,
                    std::vector<WeightedSample> fresh);

  // Rebuilds a pool from checkpointed samples that carry their original
  // (non-zero) ids, in their original order, and advances the process-wide
  // id source past the largest restored id — a restored pool's identities
  // survive restart AND can never collide with ids minted afterwards.
  static Result<SamplePool> FromSnapshot(std::vector<WeightedSample> samples);

  // Overwrites sample i's importance weight in place (survivor reweighting
  // under a changed proposal). The weight feeds only the ranking
  // aggregation, so the sorted index lists and the SoA batch — both built
  // from the weight *vectors* — stay valid.
  void set_weight(std::size_t i, double weight) {
    samples_[i].weight = weight;
  }

  // Entry (value, sample index) lists, one per coordinate, ascending by
  // value. Built on first use and invalidated by mutations.
  using SortedList = std::vector<std::pair<double, std::uint32_t>>;
  const std::vector<SortedList>& sorted_lists() const;

  // Same lists, but rebuilt (when dirty) with one sort task per coordinate
  // on `threads` — the parallel half of the Sec. 3.4 maintenance step. The
  // result is identical to sorted_lists(); only the rebuild wall-clock
  // changes. Not safe to call concurrently with other pool methods.
  const std::vector<SortedList>& sorted_lists_parallel(ThreadPool& threads) const;

  // Struct-of-arrays view of the pool's weight vectors, built on first use
  // and invalidated by mutations; the batched violator scans sweep its
  // columns instead of the row-major samples.
  const WeightBatch& batch() const;

 private:
  // Process-wide monotone id source, so ids never collide across pool
  // instances (a warm TopListCache can therefore never serve another pool's
  // list for a colliding id).
  static SampleId MintId();
  // Raises the id source so every future MintId() exceeds `floor` (restore
  // path; monotone, never lowers it).
  static void EnsureMintAbove(SampleId floor);
  void BuildList(std::size_t f) const;

  std::vector<WeightedSample> samples_;
  mutable std::vector<SortedList> sorted_lists_;
  mutable bool lists_dirty_ = true;
  mutable WeightBatch batch_;
  mutable bool batch_dirty_ = true;
};

}  // namespace topkpkg::sampling

#endif  // TOPKPKG_SAMPLING_SAMPLE_POOL_H_
