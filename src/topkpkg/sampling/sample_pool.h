#ifndef TOPKPKG_SAMPLING_SAMPLE_POOL_H_
#define TOPKPKG_SAMPLING_SAMPLE_POOL_H_

#include <cstdint>
#include <cstddef>
#include <utility>
#include <vector>

#include "topkpkg/common/vec.h"
#include "topkpkg/sampling/sample.h"

namespace topkpkg {
class ThreadPool;
}

namespace topkpkg::sampling {

// The pool S of previously generated weight-vector samples, kept alive across
// feedback rounds (Sec. 3.4: valid samples still follow P_w after new
// feedback, so only violators need replacing). Maintains per-coordinate
// sorted index lists — the structure Algorithm 1's TA-based violator scan
// walks — rebuilding them lazily after mutations.
class SamplePool {
 public:
  SamplePool() = default;
  explicit SamplePool(std::vector<WeightedSample> samples)
      : samples_(std::move(samples)) {}

  std::size_t size() const { return samples_.size(); }
  std::size_t dim() const {
    return samples_.empty() ? 0 : samples_[0].w.size();
  }
  const std::vector<WeightedSample>& samples() const { return samples_; }
  const WeightedSample& sample(std::size_t i) const { return samples_[i]; }

  // Appends fresh samples.
  void Append(std::vector<WeightedSample> fresh);

  // Removes the samples at `indices` (need not be sorted) and appends
  // `fresh` — the Sec. 3.4 replace-violators maintenance step.
  void Replace(std::vector<std::size_t> indices,
               std::vector<WeightedSample> fresh);

  // Entry (value, sample index) lists, one per coordinate, ascending by
  // value. Built on first use and invalidated by mutations.
  using SortedList = std::vector<std::pair<double, std::uint32_t>>;
  const std::vector<SortedList>& sorted_lists() const;

  // Same lists, but rebuilt (when dirty) with one sort task per coordinate
  // on `threads` — the parallel half of the Sec. 3.4 maintenance step. The
  // result is identical to sorted_lists(); only the rebuild wall-clock
  // changes. Not safe to call concurrently with other pool methods.
  const std::vector<SortedList>& sorted_lists_parallel(ThreadPool& threads) const;

  // Struct-of-arrays view of the pool's weight vectors, built on first use
  // and invalidated by mutations; the batched violator scans sweep its
  // columns instead of the row-major samples.
  const WeightBatch& batch() const;

 private:
  void BuildList(std::size_t f) const;

  std::vector<WeightedSample> samples_;
  mutable std::vector<SortedList> sorted_lists_;
  mutable bool lists_dirty_ = true;
  mutable WeightBatch batch_;
  mutable bool batch_dirty_ = true;
};

}  // namespace topkpkg::sampling

#endif  // TOPKPKG_SAMPLING_SAMPLE_POOL_H_
