#ifndef TOPKPKG_SAMPLING_SAMPLE_H_
#define TOPKPKG_SAMPLING_SAMPLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "topkpkg/common/vec.h"

namespace topkpkg::sampling {

// Stable identity of a sample across pool mutations. Ids are minted by
// SamplePool when a sample enters a pool (0 = "not pooled yet") and are
// process-wide unique — never reused, not even across pool instances — so
// downstream per-sample state — e.g. the ranking layer's cached top lists —
// can be keyed by id, survives the index reshuffling that Replace()'s
// compaction performs, and cannot collide when one consumer outlives or
// serves several pools.
using SampleId = std::uint64_t;
inline constexpr SampleId kInvalidSampleId = 0;

// One accepted weight-vector sample. `weight` is the importance weight
// q(w) = P_w(w)/Q_w(w); plain rejection and MCMC samples carry weight 1.
struct WeightedSample {
  Vec w;
  double weight = 1.0;
  SampleId id = kInvalidSampleId;
};

// Struct-of-arrays view over a batch of weight vectors: coordinate f of all
// samples lives contiguously in `column(f)`. Batched kernels (constraint
// checking, violator scans) iterate features outer / samples inner, turning
// the per-sample dot products into stride-1 passes that vectorize.
class WeightBatch {
 public:
  WeightBatch() = default;

  static WeightBatch FromSamples(const std::vector<WeightedSample>& samples) {
    WeightBatch batch;
    batch.size_ = samples.size();
    batch.dim_ = samples.empty() ? 0 : samples[0].w.size();
    batch.columns_.resize(batch.size_ * batch.dim_);
    for (std::size_t i = 0; i < batch.size_; ++i) {
      for (std::size_t f = 0; f < batch.dim_; ++f) {
        batch.columns_[f * batch.size_ + i] = samples[i].w[f];
      }
    }
    return batch;
  }

  std::size_t size() const { return size_; }
  std::size_t dim() const { return dim_; }
  bool empty() const { return size_ == 0; }

  // Coordinate f of every sample, contiguous, length size().
  const double* column(std::size_t f) const {
    return columns_.data() + f * size_;
  }
  double at(std::size_t f, std::size_t i) const {
    return columns_[f * size_ + i];
  }

 private:
  std::size_t size_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> columns_;
};

// Bookkeeping reported by the samplers; benches print these to reproduce the
// acceptance-rate story of Fig. 4 and the timing curves of Fig. 6. When
// sampling runs sharded across workers, `seconds` accumulates per-worker
// time and therefore reports CPU-seconds, not wall-clock.
struct SampleStats {
  std::size_t proposed = 0;             // Raw proposals drawn.
  std::size_t accepted = 0;             // Samples returned.
  std::size_t rejected_constraint = 0;  // Violated some preference.
  std::size_t rejected_box = 0;         // Left the [-1,1]^m weight box.
  std::size_t rejected_mh = 0;          // MH density rejections (MCMC only).
  std::size_t constraint_checks = 0;    // Individual w·diff evaluations.
  double seconds = 0.0;

  double AcceptanceRate() const {
    return proposed == 0 ? 0.0
                         : static_cast<double>(accepted) /
                               static_cast<double>(proposed);
  }

  // Accumulates another shard's counters into this one.
  void Merge(const SampleStats& other) {
    proposed += other.proposed;
    accepted += other.accepted;
    rejected_constraint += other.rejected_constraint;
    rejected_box += other.rejected_box;
    rejected_mh += other.rejected_mh;
    constraint_checks += other.constraint_checks;
    seconds += other.seconds;
  }
};

}  // namespace topkpkg::sampling

#endif  // TOPKPKG_SAMPLING_SAMPLE_H_
