#ifndef TOPKPKG_SAMPLING_SAMPLE_H_
#define TOPKPKG_SAMPLING_SAMPLE_H_

#include <cstddef>
#include <vector>

#include "topkpkg/common/vec.h"

namespace topkpkg::sampling {

// One accepted weight-vector sample. `weight` is the importance weight
// q(w) = P_w(w)/Q_w(w); plain rejection and MCMC samples carry weight 1.
struct WeightedSample {
  Vec w;
  double weight = 1.0;
};

// Bookkeeping reported by the samplers; benches print these to reproduce the
// acceptance-rate story of Fig. 4 and the timing curves of Fig. 6.
struct SampleStats {
  std::size_t proposed = 0;             // Raw proposals drawn.
  std::size_t accepted = 0;             // Samples returned.
  std::size_t rejected_constraint = 0;  // Violated some preference.
  std::size_t rejected_box = 0;         // Left the [-1,1]^m weight box.
  std::size_t rejected_mh = 0;          // MH density rejections (MCMC only).
  std::size_t constraint_checks = 0;    // Individual w·diff evaluations.
  double seconds = 0.0;

  double AcceptanceRate() const {
    return proposed == 0 ? 0.0
                         : static_cast<double>(accepted) /
                               static_cast<double>(proposed);
  }
};

}  // namespace topkpkg::sampling

#endif  // TOPKPKG_SAMPLING_SAMPLE_H_
