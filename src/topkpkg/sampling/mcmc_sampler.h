#ifndef TOPKPKG_SAMPLING_MCMC_SAMPLER_H_
#define TOPKPKG_SAMPLING_MCMC_SAMPLER_H_

#include <cstddef>
#include <vector>

#include "topkpkg/common/random.h"
#include "topkpkg/common/status.h"
#include "topkpkg/prob/gaussian_mixture.h"
#include "topkpkg/sampling/constraint_checker.h"
#include "topkpkg/sampling/rejection_sampler.h"
#include "topkpkg/sampling/sample.h"

namespace topkpkg::sampling {

struct McmcSamplerOptions {
  SamplerOptions base;
  // Maximum random-walk step length l_max (Eq. 6); each proposal is uniform
  // in the ball of this radius around the current state.
  double lmax = 0.25;
  // Step length δ: keep one sample of every `thinning` chain steps to avoid
  // highly correlated samples (Sec. 3.2.2).
  std::size_t thinning = 5;
  // Chain steps discarded before collecting samples.
  std::size_t burn_in = 100;
};

// Sec. 3.2.2: Metropolis–Hastings random walk inside the valid convex
// region. The chain starts from one rejection-sampled valid point, proposes
// w' uniformly within distance l_max of w (a symmetric kernel, so the MH
// acceptance ratio reduces to min{1, P_w(w')/P_w(w)}), rejects any proposal
// leaving the valid region (keeping a copy of w, per the paper), and thins by
// δ. Its stationary distribution is the constrained posterior; Theorem 2
// shows it dominates importance sampling in effective sample size, and unlike
// the grid-based importance sampler it scales to high dimensionality.
class McmcSampler {
 public:
  McmcSampler(const prob::GaussianMixture* prior,
              const ConstraintChecker* checker, McmcSamplerOptions options = {});

  Result<std::vector<WeightedSample>> Draw(std::size_t n, Rng& rng,
                                           SampleStats* stats = nullptr) const;

 private:
  const prob::GaussianMixture* prior_;
  const ConstraintChecker* checker_;
  McmcSamplerOptions options_;
};

}  // namespace topkpkg::sampling

#endif  // TOPKPKG_SAMPLING_MCMC_SAMPLER_H_
