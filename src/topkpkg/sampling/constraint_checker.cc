#include "topkpkg/sampling/constraint_checker.h"

namespace topkpkg::sampling {

bool ConstraintChecker::IsValid(const Vec& w, std::size_t* checks) const {
  for (const pref::Preference& p : constraints_) {
    if (checks != nullptr) ++*checks;
    if (!pref::Satisfies(w, p)) return false;
  }
  return true;
}

std::size_t ConstraintChecker::Violations(const Vec& w,
                                          std::size_t* checks) const {
  std::size_t violations = 0;
  for (const pref::Preference& p : constraints_) {
    if (checks != nullptr) ++*checks;
    if (!pref::Satisfies(w, p)) ++violations;
  }
  return violations;
}

}  // namespace topkpkg::sampling
