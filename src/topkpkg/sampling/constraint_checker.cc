#include "topkpkg/sampling/constraint_checker.h"

#include <numeric>

namespace topkpkg::sampling {

bool ConstraintChecker::IsValid(const Vec& w, std::size_t* checks) const {
  for (const pref::Preference& p : constraints_) {
    if (checks != nullptr) ++*checks;
    if (!pref::Satisfies(w, p)) return false;
  }
  return true;
}

std::size_t ConstraintChecker::Violations(const Vec& w,
                                          std::size_t* checks) const {
  std::size_t violations = 0;
  for (const pref::Preference& p : constraints_) {
    if (checks != nullptr) ++*checks;
    if (!pref::Satisfies(w, p)) ++violations;
  }
  return violations;
}

std::vector<std::uint8_t> ConstraintChecker::IsValidBatch(
    const WeightBatch& batch, std::size_t* checks) const {
  const std::size_t n = batch.size();
  std::vector<std::uint8_t> valid(n, 1);
  if (n == 0 || constraints_.empty()) return valid;

  // Active-set scan: samples stay in play until their first violation. The
  // per-sample accumulation visits features in ascending order exactly like
  // Dot(), so the verdicts are bit-identical to IsValid()'s.
  std::vector<std::uint32_t> active(n);
  std::iota(active.begin(), active.end(), 0);
  std::vector<double> acc;
  for (const pref::Preference& p : constraints_) {
    if (active.empty()) break;
    acc.assign(active.size(), 0.0);
    for (std::size_t f = 0; f < p.diff.size(); ++f) {
      const double d = p.diff[f];
      if (d == 0.0) continue;
      const double* col = batch.column(f);
      for (std::size_t j = 0; j < active.size(); ++j) {
        acc[j] += d * col[active[j]];
      }
    }
    if (checks != nullptr) *checks += active.size();
    std::size_t write = 0;
    for (std::size_t j = 0; j < active.size(); ++j) {
      if (acc[j] >= -pref::kSatisfiesEps) {
        active[write++] = active[j];
      } else {
        valid[active[j]] = 0;
      }
    }
    active.resize(write);
  }
  return valid;
}

}  // namespace topkpkg::sampling
