#include "topkpkg/sampling/constraint_checker.h"

#include <atomic>
#include <numeric>
#include <utility>

#include "topkpkg/common/thread_pool.h"
#include "topkpkg/model/aggregate_kernel.h"

namespace topkpkg::sampling {

bool ConstraintChecker::IsValid(const Vec& w, std::size_t* checks) const {
  for (const pref::Preference& p : constraints_) {
    if (checks != nullptr) ++*checks;
    if (!pref::Satisfies(w, p)) return false;
  }
  return true;
}

std::size_t ConstraintChecker::Violations(const Vec& w,
                                          std::size_t* checks) const {
  std::size_t violations = 0;
  for (const pref::Preference& p : constraints_) {
    if (checks != nullptr) ++*checks;
    if (!pref::Satisfies(w, p)) ++violations;
  }
  return violations;
}

void ConstraintChecker::ScanRange(const WeightBatch& batch, std::size_t lo,
                                  std::size_t hi, std::uint8_t* valid,
                                  std::size_t* checks) const {
  // Active-set scan: samples stay in play until their first violation. The
  // per-sample accumulation visits features in ascending order exactly like
  // Dot(), so the verdicts are bit-identical to IsValid()'s.
  std::vector<std::uint32_t> active(hi - lo);
  std::iota(active.begin(), active.end(), static_cast<std::uint32_t>(lo));
  std::vector<double> acc;
  for (const pref::Preference& p : constraints_) {
    if (active.empty()) break;
    acc.assign(active.size(), 0.0);
    for (std::size_t f = 0; f < p.diff.size(); ++f) {
      const double d = p.diff[f];
      if (d == 0.0) continue;
      const double* col = batch.column(f);
      for (std::size_t j = 0; j < active.size(); ++j) {
        acc[j] += d * col[active[j]];
      }
    }
    if (checks != nullptr) *checks += active.size();
    std::size_t write = 0;
    for (std::size_t j = 0; j < active.size(); ++j) {
      if (acc[j] >= -pref::kSatisfiesEps) {
        active[write++] = active[j];
      } else {
        valid[active[j]] = 0;
      }
    }
    active.resize(write);
  }
}

std::vector<std::uint8_t> ConstraintChecker::IsValidBatch(
    const WeightBatch& batch, std::size_t* checks) const {
  const std::size_t n = batch.size();
  std::vector<std::uint8_t> valid(n, 1);
  if (n == 0 || constraints_.empty()) return valid;
  ScanRange(batch, 0, n, valid.data(), checks);
  return valid;
}

std::vector<std::uint8_t> ConstraintChecker::IsValidBatch(
    const WeightBatch& batch, ThreadPool* workers,
    std::size_t* checks) const {
  const std::size_t n = batch.size();
  // Below ~4k samples the shard setup costs more than the scan saves.
  constexpr std::size_t kMinParallelBatch = 4096;
  if (workers == nullptr || workers->num_threads() <= 1 ||
      n < kMinParallelBatch || constraints_.empty()) {
    return IsValidBatch(batch, checks);
  }
  std::vector<std::uint8_t> valid(n, 1);
  // One check counter per block, summed afterwards: each sample's scan is
  // independent, so the total matches the serial scan exactly.
  std::vector<std::size_t> block_checks(workers->num_threads(), 0);
  std::atomic<std::size_t> next_block{0};
  workers->ParallelForBlocks(n, [&](std::size_t lo, std::size_t hi) {
    const std::size_t slot = next_block.fetch_add(1);
    ScanRange(batch, lo, hi, valid.data(),
              checks != nullptr ? &block_checks[slot] : nullptr);
  });
  if (checks != nullptr) {
    for (std::size_t c : block_checks) *checks += c;
  }
  return valid;
}

PackageConstraintChecker::PackageConstraintChecker(
    const model::ItemTable* table, std::vector<AggregateThreshold> thresholds)
    : table_(table), thresholds_(std::move(thresholds)) {}

double PackageConstraintChecker::RawAggregate(
    const model::Package& package, const AggregateThreshold& t) const {
  return model::AggRawOverColumn(*table_, package.items(), t.feature, t.op);
}

bool PackageConstraintChecker::IsValid(const model::Package& package) const {
  for (const AggregateThreshold& t : thresholds_) {
    const double raw = RawAggregate(package, t);
    if (raw < t.lower || raw > t.upper) return false;
  }
  return true;
}

std::function<bool(const model::Package&)> PackageConstraintChecker::AsFilter()
    const {
  return [this](const model::Package& p) { return IsValid(p); };
}

}  // namespace topkpkg::sampling
