#ifndef TOPKPKG_SAMPLING_IMPORTANCE_SAMPLER_H_
#define TOPKPKG_SAMPLING_IMPORTANCE_SAMPLER_H_

#include <cstddef>
#include <vector>

#include "topkpkg/common/random.h"
#include "topkpkg/common/status.h"
#include "topkpkg/prob/gaussian.h"
#include "topkpkg/prob/gaussian_mixture.h"
#include "topkpkg/sampling/constraint_checker.h"
#include "topkpkg/sampling/rejection_sampler.h"
#include "topkpkg/sampling/sample.h"

namespace topkpkg::sampling {

struct ImportanceSamplerOptions {
  SamplerOptions base;
  // Cells per dimension in the geometric decomposition (Fig. 3 shows 3x3;
  // finer grids approximate the polytope center better and are still cheap
  // at the dimensionalities where the sampler is usable at all).
  std::size_t grid_resolution = 5;
  // The grid has grid_resolution^m cells, exponential in the feature count m.
  // Following the paper (Sec. 5.3, Fig. 6 f-j), Create() refuses m >
  // max_dim with Unimplemented; raise this only for ablation studies.
  std::size_t max_dim = 5;
  // Standard deviation of the Gaussian proposal around the approximate
  // center; 0 derives it from the spread of the feasible grid cells.
  double proposal_stddev = 0.0;
};

// Sec. 3.2.1: feedback-aware importance sampling. The valid region is a
// convex polytope (Lemma 2); finding its true (Chebyshev) center is
// expensive, so the region is approximated by a uniform grid over the weight
// box, cells that cannot contain a valid w are discarded, and the center is
// the mean of the surviving cell centers. Proposals come from a Gaussian
// Q ~ N(center, σ²I); accepted samples carry importance weight
// q(w) = P_w(w)/Q_w(w), which corrects the bias (Theorem 1: ENS(Q) ≥
// ENS(rejection)).
class ImportanceSampler {
 public:
  // Performs the grid decomposition eagerly (its cost is reported via
  // `center_seconds`, the quantity that explodes with dimensionality).
  static Result<ImportanceSampler> Create(const prob::GaussianMixture* prior,
                                          const ConstraintChecker* checker,
                                          ImportanceSamplerOptions options = {});

  Result<std::vector<WeightedSample>> Draw(std::size_t n, Rng& rng,
                                           SampleStats* stats = nullptr) const;

  // The importance weight q(w) = P_w(w)/Q_w(w) this sampler's Draw attaches
  // to an accepted w — exposed so pool maintenance can rescale *surviving*
  // samples under a rebuilt proposal when the constraint set changes
  // (Sec. 3.4 reuse for IS): survivors still follow the posterior, but
  // their stored weights are relative to the old proposal, and aggregating
  // mixed-scale weights would bias the ranking.
  double ImportanceWeight(const Vec& w) const;

  // The approximate polytope center the proposal is built around.
  const Vec& approximate_center() const { return center_; }
  // Wall-clock cost of the grid decomposition.
  double center_seconds() const { return center_seconds_; }
  // Number of grid cells that might intersect the valid region.
  std::size_t feasible_cells() const { return feasible_cells_; }

 private:
  ImportanceSampler(const prob::GaussianMixture* prior,
                    const ConstraintChecker* checker,
                    ImportanceSamplerOptions options, Vec center,
                    prob::Gaussian proposal, double center_seconds,
                    std::size_t feasible_cells);

  const prob::GaussianMixture* prior_;
  const ConstraintChecker* checker_;
  ImportanceSamplerOptions options_;
  Vec center_;
  prob::Gaussian proposal_;
  double center_seconds_;
  std::size_t feasible_cells_;
};

// True iff grid cell [lo, hi]^m (per-dim bounds) can contain a w with
// w · diff >= 0, i.e. max_{w in cell} w·diff >= 0. Linear in m (Sec. 3.2.1).
bool CellMayContainValid(const Vec& cell_lo, const Vec& cell_hi,
                         const Vec& diff);

}  // namespace topkpkg::sampling

#endif  // TOPKPKG_SAMPLING_IMPORTANCE_SAMPLER_H_
