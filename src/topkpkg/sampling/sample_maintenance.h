#ifndef TOPKPKG_SAMPLING_SAMPLE_MAINTENANCE_H_
#define TOPKPKG_SAMPLING_SAMPLE_MAINTENANCE_H_

#include <cstddef>
#include <vector>

#include "topkpkg/common/thread_pool.h"
#include "topkpkg/pref/preference.h"
#include "topkpkg/sampling/sample_pool.h"

namespace topkpkg::sampling {

// How to find the pool samples invalidated by one new preference (Sec. 3.4 /
// Algorithm 1 / Fig. 7).
enum class MaintenanceStrategy {
  // Scan every sample; cost is always |S| full dot products.
  kNaive,
  // Threshold-algorithm scan over the per-coordinate sorted lists: cheap when
  // few samples violate, but its overhead exceeds the naive scan when many
  // do.
  kTa,
  // Algorithm 1: start as TA; once the accesses already made plus those left
  // in the current list reach (1+γ)·|S|, fall back to scanning the remaining
  // unseen samples directly.
  kHybrid,
};

const char* MaintenanceStrategyName(MaintenanceStrategy s);

struct MaintenanceResult {
  // Pool indices of samples violating the new preference.
  std::vector<std::size_t> violators;
  // Sorted-list accesses + direct sample checks performed (work proxy).
  std::size_t accesses = 0;
  // True if the hybrid strategy triggered its fallback scan.
  bool fell_back = false;
};

// Finds all pool samples w that violate `pref`, i.e. w·(p₂-p₁) > 0 for
// ρ := p₁ ≻ p₂. `gamma` is Algorithm 1's fallback knob (only used by
// kHybrid; smaller γ falls back sooner, behaving like the naive scan, larger
// γ behaves like pure TA).
MaintenanceResult FindViolators(const SamplePool& pool,
                                const pref::Preference& pref,
                                MaintenanceStrategy strategy,
                                double gamma = 0.025);

// Parallel flavor of the naive scan: shards the pool's struct-of-arrays
// batch view across `threads` and sweeps each shard's columns. Returns the
// same violator set as kNaive (ascending order); accesses is always |S|.
// Wins over TA/hybrid when many samples violate — the regime right after an
// informative preference lands — while staying embarrassingly parallel.
// `pool` must not be mutated during the call.
MaintenanceResult FindViolatorsParallel(const SamplePool& pool,
                                        const pref::Preference& pref,
                                        ThreadPool& threads);

}  // namespace topkpkg::sampling

#endif  // TOPKPKG_SAMPLING_SAMPLE_MAINTENANCE_H_
