#include "topkpkg/sampling/ens.h"

#include <cassert>
#include <cmath>

namespace topkpkg::sampling {

double EffectiveSampleSize(const std::vector<WeightedSample>& samples) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const WeightedSample& s : samples) {
    const double q = s.weight;
    // Importance weights are densities and must be finite and non-negative;
    // a violating entry signals an upstream bug (e.g. a zero-density
    // proposal), so flag it in debug builds but keep the estimate finite by
    // ignoring the entry instead of poisoning the whole sum with NaN.
    if (!(std::isfinite(q) && q >= 0.0)) {
      assert(std::isfinite(q) && "non-finite importance weight");
      assert(q >= 0.0 && "negative importance weight");
      continue;
    }
    sum += q;
    sum_sq += q * q;
  }
  if (sum_sq == 0.0) return 0.0;
  return sum * sum / sum_sq;
}

double EnsPerProposal(const std::vector<WeightedSample>& samples,
                      const SampleStats& stats) {
  if (stats.proposed == 0) return 0.0;
  return EffectiveSampleSize(samples) / static_cast<double>(stats.proposed);
}

}  // namespace topkpkg::sampling
