#include "topkpkg/sampling/ens.h"

namespace topkpkg::sampling {

double EffectiveSampleSize(const std::vector<WeightedSample>& samples) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const WeightedSample& s : samples) {
    sum += s.weight;
    sum_sq += s.weight * s.weight;
  }
  if (sum_sq == 0.0) return 0.0;
  return sum * sum / sum_sq;
}

double EnsPerProposal(const std::vector<WeightedSample>& samples,
                      const SampleStats& stats) {
  if (stats.proposed == 0) return 0.0;
  return EffectiveSampleSize(samples) / static_cast<double>(stats.proposed);
}

}  // namespace topkpkg::sampling
