#include "topkpkg/sampling/sample_pool.h"

#include <algorithm>
#include <atomic>

#include "topkpkg/common/thread_pool.h"

namespace topkpkg::sampling {

namespace {
// 0 is kInvalidSampleId.
std::atomic<SampleId> g_next_sample_id{1};
}  // namespace

SampleId SamplePool::MintId() {
  return g_next_sample_id.fetch_add(1, std::memory_order_relaxed);
}

void SamplePool::EnsureMintAbove(SampleId floor) {
  SampleId current = g_next_sample_id.load(std::memory_order_relaxed);
  while (current <= floor &&
         !g_next_sample_id.compare_exchange_weak(current, floor + 1,
                                                 std::memory_order_relaxed)) {
  }
}

Result<SamplePool> SamplePool::FromSnapshot(
    std::vector<WeightedSample> samples) {
  SampleId max_id = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const SampleId id = samples[i].id;
    if (id == kInvalidSampleId) {
      return Status::InvalidArgument(
          "SamplePool::FromSnapshot: sample without an id");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (samples[j].id == id) {
        return Status::InvalidArgument(
            "SamplePool::FromSnapshot: duplicate sample id " +
            std::to_string(id));
      }
    }
    max_id = std::max(max_id, id);
  }
  EnsureMintAbove(max_id);
  SamplePool pool;
  pool.samples_ = std::move(samples);
  return pool;
}

PoolDelta SamplePool::Append(std::vector<WeightedSample> fresh) {
  PoolDelta delta;
  delta.surviving_ids.reserve(samples_.size());
  for (const auto& s : samples_) delta.surviving_ids.push_back(s.id);
  delta.added_ids.reserve(fresh.size());
  for (auto& s : fresh) {
    s.id = MintId();
    delta.added_ids.push_back(s.id);
    samples_.push_back(std::move(s));
  }
  lists_dirty_ = true;
  batch_dirty_ = true;
  return delta;
}

PoolDelta SamplePool::Replace(std::vector<std::size_t> indices,
                              std::vector<WeightedSample> fresh) {
  PoolDelta delta;
  if (!indices.empty()) {
    // Duplicate or unsorted violator indices (e.g. merged from several
    // constraint scans) must collapse to one removal each — dedup before the
    // compaction pass, which assumes strictly increasing removal positions.
    std::sort(indices.begin(), indices.end());
    indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
    std::size_t next_removed = 0;
    std::size_t write = 0;
    for (std::size_t read = 0; read < samples_.size(); ++read) {
      if (next_removed < indices.size() && indices[next_removed] == read) {
        delta.removed_ids.push_back(samples_[read].id);
        ++next_removed;
        continue;
      }
      delta.surviving_ids.push_back(samples_[read].id);
      if (write != read) samples_[write] = std::move(samples_[read]);
      ++write;
    }
    samples_.resize(write);
  } else {
    delta.surviving_ids.reserve(samples_.size());
    for (const auto& s : samples_) delta.surviving_ids.push_back(s.id);
  }
  delta.added_ids.reserve(fresh.size());
  for (auto& s : fresh) {
    s.id = MintId();
    delta.added_ids.push_back(s.id);
    samples_.push_back(std::move(s));
  }
  lists_dirty_ = true;
  batch_dirty_ = true;
  return delta;
}

void SamplePool::BuildList(std::size_t f) const {
  SortedList& list = sorted_lists_[f];
  list.clear();
  list.reserve(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    list.emplace_back(samples_[i].w[f], static_cast<std::uint32_t>(i));
  }
  std::sort(list.begin(), list.end());
}

const std::vector<SamplePool::SortedList>& SamplePool::sorted_lists() const {
  if (lists_dirty_) {
    sorted_lists_.assign(dim(), {});
    for (std::size_t f = 0; f < sorted_lists_.size(); ++f) BuildList(f);
    lists_dirty_ = false;
  }
  return sorted_lists_;
}

const std::vector<SamplePool::SortedList>& SamplePool::sorted_lists_parallel(
    ThreadPool& threads) const {
  if (lists_dirty_) {
    sorted_lists_.assign(dim(), {});
    threads.ParallelFor(sorted_lists_.size(),
                        [this](std::size_t f) { BuildList(f); });
    lists_dirty_ = false;
  }
  return sorted_lists_;
}

const WeightBatch& SamplePool::batch() const {
  if (batch_dirty_) {
    batch_ = WeightBatch::FromSamples(samples_);
    batch_dirty_ = false;
  }
  return batch_;
}

}  // namespace topkpkg::sampling
