#include "topkpkg/sampling/sample_pool.h"

#include <algorithm>

namespace topkpkg::sampling {

void SamplePool::Append(std::vector<WeightedSample> fresh) {
  for (auto& s : fresh) samples_.push_back(std::move(s));
  lists_dirty_ = true;
}

void SamplePool::Replace(std::vector<std::size_t> indices,
                         std::vector<WeightedSample> fresh) {
  if (!indices.empty()) {
    // Remove marked samples with a single compaction pass.
    std::sort(indices.begin(), indices.end());
    indices.erase(std::unique(indices.begin(), indices.end()), indices.end());
    std::size_t next_removed = 0;
    std::size_t write = 0;
    for (std::size_t read = 0; read < samples_.size(); ++read) {
      if (next_removed < indices.size() && indices[next_removed] == read) {
        ++next_removed;
        continue;
      }
      if (write != read) samples_[write] = std::move(samples_[read]);
      ++write;
    }
    samples_.resize(write);
  }
  for (auto& s : fresh) samples_.push_back(std::move(s));
  lists_dirty_ = true;
}

const std::vector<SamplePool::SortedList>& SamplePool::sorted_lists() const {
  if (lists_dirty_) {
    const std::size_t m = dim();
    sorted_lists_.assign(m, {});
    for (std::size_t f = 0; f < m; ++f) {
      SortedList& list = sorted_lists_[f];
      list.reserve(samples_.size());
      for (std::size_t i = 0; i < samples_.size(); ++i) {
        list.emplace_back(samples_[i].w[f], static_cast<std::uint32_t>(i));
      }
      std::sort(list.begin(), list.end());
    }
    lists_dirty_ = false;
  }
  return sorted_lists_;
}

}  // namespace topkpkg::sampling
