#ifndef TOPKPKG_SAMPLING_SAMPLER_METRICS_H_
#define TOPKPKG_SAMPLING_SAMPLER_METRICS_H_

// Internal: per-sampler registry counters, labeled sampler="RS"|"IS"|"MS"
// to match recsys::SamplerKindName. Each Draw() flushes one delta of its
// SampleStats tally on exit, so the proposal loops never touch an atomic.

#include <string>

#include "topkpkg/obs/metrics.h"
#include "topkpkg/sampling/sample.h"

namespace topkpkg::sampling::internal {

struct SamplerCounters {
  obs::Counter* draw_calls;
  obs::Counter* proposed;
  obs::Counter* accepted;
  obs::Counter* rejected_box;
  obs::Counter* rejected_constraint;
  obs::Counter* rejected_mh;
};

inline const SamplerCounters& CountersFor(const char* label) {
  auto make = [](const char* l) {
    auto& reg = obs::MetricsRegistry::Global();
    const std::string lab = std::string("sampler=\"") + l + "\"";
    SamplerCounters c;
    c.draw_calls = reg.GetCounter("topkpkg_sampling_draw_calls_total",
                                  "Draw() batches requested", lab);
    c.proposed = reg.GetCounter("topkpkg_sampling_proposed_total",
                                "Weight-vector proposals drawn", lab);
    c.accepted = reg.GetCounter("topkpkg_sampling_accepted_total",
                                "Proposals accepted into the pool", lab);
    c.rejected_box = reg.GetCounter("topkpkg_sampling_rejected_box_total",
                                    "Proposals outside the weight box", lab);
    c.rejected_constraint = reg.GetCounter(
        "topkpkg_sampling_rejected_constraint_total",
        "Proposals rejected by the feedback constraints", lab);
    c.rejected_mh = reg.GetCounter(
        "topkpkg_sampling_rejected_mh_total",
        "Metropolis-Hastings moves declined (MCMC only)", lab);
    return c;
  };
  static const SamplerCounters rs = make("RS");
  static const SamplerCounters is = make("IS");
  static const SamplerCounters ms = make("MS");
  switch (label[0]) {
    case 'R':
      return rs;
    case 'I':
      return is;
    default:
      return ms;
  }
}

// Scoped around a Draw() body. Redirects a null caller SampleStats at a
// private fallback so the body always tallies somewhere, snapshots the
// tally on entry, and flushes the scope's delta to the labeled counters on
// exit. Under TOPKPKG_NO_METRICS the redirection still happens (the tally
// is cheap arithmetic) but no registry counter is touched.
class ScopedDrawFlush {
 public:
  ScopedDrawFlush(const char* label, SampleStats** stats)
      : label_(label), out_(stats) {
    if (*stats == nullptr) *stats = &fallback_;
    before_ = **stats;
  }
  ~ScopedDrawFlush() {
    if constexpr (obs::kMetricsEnabled) {
      const SampleStats& now = **out_;
      const SamplerCounters& c = CountersFor(label_);
      c.draw_calls->Increment();
      c.proposed->Increment(now.proposed - before_.proposed);
      c.accepted->Increment(now.accepted - before_.accepted);
      c.rejected_box->Increment(now.rejected_box - before_.rejected_box);
      c.rejected_constraint->Increment(now.rejected_constraint -
                                       before_.rejected_constraint);
      c.rejected_mh->Increment(now.rejected_mh - before_.rejected_mh);
    }
  }
  ScopedDrawFlush(const ScopedDrawFlush&) = delete;
  ScopedDrawFlush& operator=(const ScopedDrawFlush&) = delete;

 private:
  const char* label_;
  SampleStats** out_;
  SampleStats fallback_;
  SampleStats before_;
};

}  // namespace topkpkg::sampling::internal

#endif  // TOPKPKG_SAMPLING_SAMPLER_METRICS_H_
