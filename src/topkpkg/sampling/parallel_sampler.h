#ifndef TOPKPKG_SAMPLING_PARALLEL_SAMPLER_H_
#define TOPKPKG_SAMPLING_PARALLEL_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "topkpkg/common/random.h"
#include "topkpkg/common/status.h"
#include "topkpkg/sampling/sample.h"

namespace topkpkg {
class ThreadPool;
}

namespace topkpkg::sampling {

struct ParallelSamplerOptions {
  // Worker threads drawing chunks; 1 runs the chunked loop inline (no pool)
  // and still produces the exact same output as any higher thread count.
  std::size_t num_threads = 1;
  // Samples per RNG stream. Each chunk draws from its own deterministic
  // stream, so the output depends on (seed, chunk_size) but NOT on
  // num_threads or scheduling. Smaller chunks balance load better when
  // acceptance rates vary across the region; larger chunks amortize
  // per-chunk sampler state (e.g. MCMC burn-in).
  std::size_t chunk_size = 32;
};

// Shards an n-sample draw into fixed-size chunks, hands each chunk a private
// RNG stream derived from (seed, chunk index) via SplitMix64, and runs the
// chunks across a ThreadPool. Determinism contract: for a fixed seed the
// returned sample vector is identical for every num_threads — chunk i's
// samples land at offset i * chunk_size regardless of which worker drew
// them. Works with any of the three samplers (rejection / importance /
// MCMC) through the `ChunkDrawFn` adapter; per-chunk MCMC chains burn in
// independently, which is exactly the classic multi-chain regime.
class ParallelSampler {
 public:
  // Draws `count` samples into the chunk's private stream. Must be callable
  // concurrently from multiple threads (the underlying samplers are const
  // and share only immutable state, so wrapping their Draw() is safe).
  using ChunkDrawFn = std::function<Result<std::vector<WeightedSample>>(
      std::size_t count, Rng& rng, SampleStats* stats)>;

  explicit ParallelSampler(ChunkDrawFn draw, ParallelSamplerOptions options = {});

  // Draws n samples. On failure returns the status of the lowest-index
  // failing chunk (deterministic). `stats` accumulates all chunks' counters
  // (its `seconds` field then measures CPU-seconds, not wall-clock).
  // `workers`, when non-null, is a caller-owned pool the chunks run on —
  // long-lived callers (the incremental serving loop) pass one so per-round
  // draws stop paying pool spawn/join; when null and num_threads > 1 a
  // temporary pool is spawned as before. The output is identical either way.
  Result<std::vector<WeightedSample>> Draw(std::size_t n, uint64_t seed,
                                           SampleStats* stats = nullptr,
                                           ThreadPool* workers = nullptr) const;

  // The RNG seed chunk `index` draws from: one SplitMix64 mix of the base
  // seed and the index, so nearby (seed, index) pairs are decorrelated.
  static uint64_t ChunkSeed(uint64_t seed, std::size_t index);

 private:
  ChunkDrawFn draw_;
  ParallelSamplerOptions options_;
};

}  // namespace topkpkg::sampling

#endif  // TOPKPKG_SAMPLING_PARALLEL_SAMPLER_H_
