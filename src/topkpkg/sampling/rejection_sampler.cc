#include "topkpkg/sampling/rejection_sampler.h"

#include <utility>

#include "topkpkg/common/timer.h"
#include "topkpkg/sampling/sampler_metrics.h"

namespace topkpkg::sampling {

RejectionSampler::RejectionSampler(const prob::GaussianMixture* prior,
                                   const ConstraintChecker* checker,
                                   SamplerOptions options)
    : prior_(prior), checker_(checker), options_(options) {}

Result<WeightedSample> RejectionSampler::DrawOne(Rng& rng,
                                                 SampleStats* stats) const {
  Timer timer;
  for (std::size_t attempt = 0; attempt < options_.max_attempts_per_sample;
       ++attempt) {
    Vec w = prior_->Sample(rng);
    if (stats != nullptr) ++stats->proposed;
    if (!InBox(w, options_.box_lo, options_.box_hi)) {
      if (stats != nullptr) ++stats->rejected_box;
      continue;
    }
    std::size_t checks = 0;
    bool reject;
    if (options_.noise.psi >= 1.0) {
      reject = !checker_->IsValid(w, &checks);
    } else {
      std::size_t violations = checker_->Violations(w, &checks);
      reject = options_.noise.ShouldReject(violations, rng);
    }
    if (stats != nullptr) stats->constraint_checks += checks;
    if (reject) {
      if (stats != nullptr) ++stats->rejected_constraint;
      continue;
    }
    if (stats != nullptr) {
      ++stats->accepted;
      stats->seconds += timer.ElapsedSeconds();
    }
    return WeightedSample{std::move(w), 1.0};
  }
  if (stats != nullptr) stats->seconds += timer.ElapsedSeconds();
  return Status::ResourceExhausted(
      "RejectionSampler: no valid sample found; the feedback region is "
      "(nearly) unreachable from the prior");
}

Result<std::vector<WeightedSample>> RejectionSampler::Draw(
    std::size_t n, Rng& rng, SampleStats* stats) const {
  internal::ScopedDrawFlush flush("RS", &stats);
  std::vector<WeightedSample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TOPKPKG_ASSIGN_OR_RETURN(WeightedSample s, DrawOne(rng, stats));
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace topkpkg::sampling
