#include "topkpkg/sampling/rejection_sampler.h"

#include <gtest/gtest.h>

#include "sampling_test_util.h"

namespace topkpkg::sampling {
namespace {

using sampling_test::DefaultPrior;
using sampling_test::RandomConstraints;

TEST(RejectionSamplerTest, SamplesSatisfyAllConstraintsAndBox) {
  Rng rng(1);
  Vec hidden = {0.6, -0.3, 0.2};
  auto prefs = RandomConstraints(20, hidden, rng);
  ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = DefaultPrior(3, 2);
  RejectionSampler sampler(&prior, &checker);
  SampleStats stats;
  auto samples = sampler.Draw(100, rng, &stats);
  ASSERT_TRUE(samples.ok()) << samples.status();
  EXPECT_EQ(samples->size(), 100u);
  for (const auto& s : *samples) {
    EXPECT_TRUE(checker.IsValid(s.w));
    EXPECT_TRUE(InBox(s.w, -1.0, 1.0));
    EXPECT_DOUBLE_EQ(s.weight, 1.0);
  }
  EXPECT_EQ(stats.accepted, 100u);
  EXPECT_EQ(stats.proposed,
            stats.accepted + stats.rejected_box + stats.rejected_constraint);
}

TEST(RejectionSamplerTest, DeterministicGivenSeed) {
  Vec hidden = {0.5, 0.5};
  Rng gen(3);
  auto prefs = RandomConstraints(5, hidden, gen);
  ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = DefaultPrior(2, 4);
  RejectionSampler sampler(&prior, &checker);
  Rng rng1(42);
  Rng rng2(42);
  auto s1 = sampler.Draw(20, rng1);
  auto s2 = sampler.Draw(20, rng2);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ((*s1)[i].w, (*s2)[i].w);
  }
}

TEST(RejectionSamplerTest, ContradictoryFeedbackExhaustsBudget) {
  // w·d ≥ 0 and w·(−d) ≥ 0 only on a measure-zero hyperplane: rejection
  // sampling must give up with ResourceExhausted rather than spin forever.
  std::vector<pref::Preference> prefs(2);
  prefs[0].diff = {1.0, 0.0};   // w0 >= 0
  prefs[1].diff = {-1.0, 0.0};  // w0 <= 0 — only the w0 = 0 plane remains.
  ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = DefaultPrior(2, 5);
  SamplerOptions opts;
  opts.max_attempts_per_sample = 2000;
  RejectionSampler sampler(&prior, &checker, opts);
  Rng rng(6);
  auto result = sampler.Draw(1, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(RejectionSamplerTest, NoConstraintsOnlyBoxRejections) {
  ConstraintChecker checker({});
  prob::GaussianMixture prior = DefaultPrior(2, 7);
  RejectionSampler sampler(&prior, &checker);
  Rng rng(8);
  SampleStats stats;
  auto samples = sampler.Draw(200, rng, &stats);
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(stats.rejected_constraint, 0u);
}

TEST(RejectionSamplerTest, NoisyFeedbackSometimesKeepsViolators) {
  Rng rng(9);
  Vec hidden = {0.9, 0.1};
  auto prefs = RandomConstraints(10, hidden, rng);
  ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = DefaultPrior(2, 10);
  SamplerOptions opts;
  opts.noise.psi = 0.3;  // Soft constraints.
  RejectionSampler sampler(&prior, &checker, opts);
  auto samples = sampler.Draw(300, rng);
  ASSERT_TRUE(samples.ok());
  std::size_t violating = 0;
  for (const auto& s : *samples) {
    if (!checker.IsValid(s.w)) ++violating;
  }
  EXPECT_GT(violating, 0u);  // ψ < 1 admits some violating samples...
  EXPECT_LT(violating, samples->size());  // ...but not only violators.
}

TEST(RejectionSamplerTest, AcceptanceRateDropsAsFeedbackAccumulates) {
  // The Sec. 3.1 problem: more feedback → more rejections.
  Rng rng(11);
  Vec hidden = {0.7, -0.5, 0.3};
  prob::GaussianMixture prior = DefaultPrior(3, 12);
  auto prefs_few = RandomConstraints(2, hidden, rng);
  auto prefs_many = RandomConstraints(60, hidden, rng);
  ConstraintChecker few(prefs_few);
  ConstraintChecker many(prefs_many);
  SampleStats stats_few;
  SampleStats stats_many;
  Rng r1(13);
  Rng r2(13);
  RejectionSampler s1(&prior, &few);
  RejectionSampler s2(&prior, &many);
  ASSERT_TRUE(s1.Draw(100, r1, &stats_few).ok());
  ASSERT_TRUE(s2.Draw(100, r2, &stats_many).ok());
  EXPECT_LE(stats_many.AcceptanceRate(), stats_few.AcceptanceRate());
}

}  // namespace
}  // namespace topkpkg::sampling
