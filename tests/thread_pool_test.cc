#include "topkpkg/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace topkpkg {
namespace {

TEST(ThreadPoolTest, SubmitReturnsValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([]() { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (std::size_t n : {0u, 1u, 3u, 4u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(n, [&hits](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ThreadPoolTest, CappedParallelForHonorsMaxBlocks) {
  ThreadPool pool(8);
  for (std::size_t cap : {1u, 2u, 3u, 8u, 100u}) {
    const std::size_t n = 97;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    std::atomic<std::size_t> blocks{0};
    pool.ParallelForBlocks(n, cap, [&](std::size_t lo, std::size_t hi) {
      ++blocks;
      for (std::size_t i = lo; i < hi; ++i) ++hits[i];
    });
    EXPECT_LE(blocks.load(), std::min<std::size_t>(cap, pool.num_threads()))
        << "cap " << cap;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " cap " << cap;
    }
    // Index flavor: same coverage under the same cap.
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(n, cap, [&hits](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " cap " << cap;
    }
  }
  // A zero cap clamps to one block rather than dropping the work.
  std::atomic<int> sum{0};
  pool.ParallelFor(5, 0, [&sum](std::size_t) { ++sum; });
  EXPECT_EQ(sum.load(), 5);
}

TEST(ThreadPoolTest, SubmittedExceptionReachesTheFuture) {
  ThreadPool pool(2);
  std::future<int> bad =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task is still alive and serving.
  EXPECT_EQ(pool.Submit([]() { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestBlockError) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(100, [&completed](std::size_t i) {
      if (i == 10) throw std::invalid_argument("low");
      if (i == 90) throw std::runtime_error("high");
      ++completed;
    });
    FAIL() << "ParallelFor should rethrow";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "low");  // Lowest-index block wins.
  }
  // An exception aborts only its own block's remaining indices; the other
  // blocks run to completion. With 100 indices over 4 blocks of 25: block 0
  // stops at i=10 (10 ran), block 3 stops at i=90 (15 ran), blocks 1 and 2
  // complete (50 ran).
  EXPECT_EQ(completed.load(), 75);
  // And the pool remains usable afterwards.
  EXPECT_EQ(pool.Submit([]() { return 3; }).get(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&ran]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++ran;
      });
    }
    // Destruction must wait for all 16, not drop the queue.
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerRunsInlineWithoutDeadlock) {
  // A task running on a pool worker that issues a ParallelFor on the *same*
  // pool must not block on futures its own busy pool can never serve. With
  // every worker occupied by such a task, only the inline-reentrant path
  // can make progress — a regression here hangs, so keep the pool small.
  ThreadPool pool(2);
  std::atomic<int> covered{0};
  std::vector<std::future<void>> outer;
  outer.reserve(4);
  for (int t = 0; t < 4; ++t) {
    outer.push_back(pool.Submit([&pool, &covered]() {
      EXPECT_TRUE(pool.OnWorkerThread());
      std::vector<std::uint8_t> hit(100, 0);
      pool.ParallelFor(hit.size(), [&hit](std::size_t i) { hit[i] = 1; });
      for (std::uint8_t h : hit) covered += h;
    }));
  }
  for (auto& f : outer) f.get();
  EXPECT_EQ(covered.load(), 400);
  EXPECT_FALSE(pool.OnWorkerThread());
}

TEST(ThreadPoolTest, DrainsAndJoinsCleanlyUnderExceptions) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 20; ++i) {
      futures.push_back(pool.Submit([&ran, i]() {
        ++ran;
        if (i % 3 == 0) throw std::runtime_error("spurious");
      }));
    }
    // Intentionally collect none of the futures: destruction alone must
    // drain the queue and join without terminate() despite stored
    // exceptions.
  }
  EXPECT_EQ(ran.load(), 20);
}

}  // namespace
}  // namespace topkpkg
