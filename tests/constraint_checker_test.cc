#include "topkpkg/sampling/constraint_checker.h"

#include <gtest/gtest.h>

#include "topkpkg/common/random.h"
#include "topkpkg/common/thread_pool.h"
#include "topkpkg/model/item_table.h"
#include "topkpkg/topk/topk_pkg.h"

namespace topkpkg::sampling {
namespace {

Vec V(double a, double b) { return Vec{a, b}; }

TEST(ConstraintCheckerTest, ValidityAndViolationCounts) {
  std::vector<pref::Preference> prefs = {
      pref::Preference::FromVectors(V(1, 0), V(0, 1)),   // w0 >= w1
      pref::Preference::FromVectors(V(0.5, 0), V(0, 0)),  // w0 >= 0
  };
  ConstraintChecker checker(prefs);
  EXPECT_EQ(checker.num_constraints(), 2u);
  EXPECT_TRUE(checker.IsValid({0.5, 0.1}));
  EXPECT_FALSE(checker.IsValid({0.1, 0.5}));
  EXPECT_EQ(checker.Violations({-0.5, 0.5}), 2u);
  EXPECT_EQ(checker.Violations({0.5, 0.1}), 0u);
}

TEST(ConstraintCheckerTest, IsValidShortCircuits) {
  std::vector<pref::Preference> prefs;
  for (int i = 0; i < 10; ++i) {
    prefs.push_back(pref::Preference::FromVectors(V(0, 0), V(1, 0)));
  }
  ConstraintChecker checker(prefs);
  std::size_t checks = 0;
  EXPECT_FALSE(checker.IsValid({1.0, 0.0}, &checks));
  EXPECT_EQ(checks, 1u);  // First constraint already fails.
  checks = 0;
  EXPECT_EQ(checker.Violations({1.0, 0.0}, &checks), 10u);
  EXPECT_EQ(checks, 10u);  // Violations never short-circuits.
}

TEST(ConstraintCheckerTest, FromReducedAcceptsSameRegionAsFromAll) {
  pref::PreferenceSet set;
  ASSERT_TRUE(set.Add(V(3, 0), V(2, 0), "a", "b").ok());
  ASSERT_TRUE(set.Add(V(2, 0), V(1, 0), "b", "c").ok());
  ASSERT_TRUE(set.Add(V(3, 0), V(1, 0), "a", "c").ok());
  ConstraintChecker all = ConstraintChecker::FromAll(set);
  ConstraintChecker reduced = ConstraintChecker::FromReduced(set);
  EXPECT_EQ(all.num_constraints(), 3u);
  EXPECT_EQ(reduced.num_constraints(), 2u);
  for (double x = -1.0; x <= 1.0; x += 0.25) {
    for (double y = -1.0; y <= 1.0; y += 0.25) {
      EXPECT_EQ(all.IsValid({x, y}), reduced.IsValid({x, y}));
    }
  }
}

TEST(ConstraintCheckerTest, EmptyCheckerAcceptsEverything) {
  ConstraintChecker checker({});
  EXPECT_TRUE(checker.IsValid({0.3, -0.9}));
  EXPECT_EQ(checker.Violations({0.3, -0.9}), 0u);
}

TEST(ConstraintCheckerTest, IsValidBatchAgreesWithIsValid) {
  Rng rng(17);
  const std::size_t dim = 4;
  const Vec hidden = {0.6, -0.3, 0.2, 0.1};
  // Constraints oriented by a hidden weight vector (all jointly satisfiable
  // near `hidden`), as the samplers produce them.
  std::vector<pref::Preference> prefs;
  while (prefs.size() < 12) {
    Vec a = rng.UniformVector(dim, 0.0, 1.0);
    Vec b = rng.UniformVector(dim, 0.0, 1.0);
    if (Dot(a, hidden) == Dot(b, hidden)) continue;
    prefs.push_back(Dot(a, hidden) > Dot(b, hidden)
                        ? pref::Preference::FromVectors(a, b)
                        : pref::Preference::FromVectors(b, a));
  }
  ConstraintChecker checker(prefs);
  // A mixed batch: random vectors (mostly violating something) plus
  // perturbations of `hidden` (mostly valid).
  std::vector<WeightedSample> samples;
  for (int i = 0; i < 150; ++i) {
    samples.push_back(WeightedSample{rng.UniformVector(dim, -1.0, 1.0), 1.0});
  }
  for (int i = 0; i < 50; ++i) {
    Vec w = hidden;
    for (double& x : w) x += rng.Gaussian(0.0, 0.02);
    samples.push_back(WeightedSample{std::move(w), 1.0});
  }
  WeightBatch batch = WeightBatch::FromSamples(samples);
  ASSERT_EQ(batch.size(), samples.size());
  ASSERT_EQ(batch.dim(), dim);

  std::size_t batch_checks = 0;
  std::vector<std::uint8_t> valid = checker.IsValidBatch(batch, &batch_checks);
  ASSERT_EQ(valid.size(), samples.size());
  std::size_t scalar_checks = 0;
  std::size_t num_valid = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const bool expect = checker.IsValid(samples[i].w, &scalar_checks);
    EXPECT_EQ(valid[i] != 0, expect) << "sample " << i;
    if (expect) ++num_valid;
  }
  // Sanity: the workload actually mixes verdicts, and the active-set scan
  // paid exactly the short-circuit cost of the per-sample path.
  EXPECT_GT(num_valid, 0u);
  EXPECT_LT(num_valid, samples.size());
  EXPECT_EQ(batch_checks, scalar_checks);
}

TEST(ConstraintCheckerTest, ParallelIsValidBatchMatchesSerial) {
  Rng rng(23);
  const std::size_t dim = 3;
  const Vec hidden = {0.5, -0.2, 0.3};
  std::vector<pref::Preference> prefs;
  while (prefs.size() < 8) {
    Vec a = rng.UniformVector(dim, 0.0, 1.0);
    Vec b = rng.UniformVector(dim, 0.0, 1.0);
    if (Dot(a, hidden) == Dot(b, hidden)) continue;
    prefs.push_back(Dot(a, hidden) > Dot(b, hidden)
                        ? pref::Preference::FromVectors(a, b)
                        : pref::Preference::FromVectors(b, a));
  }
  ConstraintChecker checker(prefs);
  // Large enough to clear the parallel overload's minimum-batch threshold.
  std::vector<WeightedSample> samples;
  for (int i = 0; i < 6000; ++i) {
    samples.push_back(WeightedSample{rng.UniformVector(dim, -1.0, 1.0), 1.0});
  }
  WeightBatch batch = WeightBatch::FromSamples(samples);

  std::size_t serial_checks = 0;
  std::vector<std::uint8_t> serial =
      checker.IsValidBatch(batch, &serial_checks);
  ThreadPool workers(4);
  std::size_t parallel_checks = 0;
  std::vector<std::uint8_t> parallel =
      checker.IsValidBatch(batch, &workers, &parallel_checks);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial_checks, parallel_checks);
  // Null pool falls back to the serial scan.
  std::size_t fallback_checks = 0;
  EXPECT_EQ(checker.IsValidBatch(batch, nullptr, &fallback_checks), serial);
  EXPECT_EQ(fallback_checks, serial_checks);
}

TEST(ConstraintCheckerTest, IsValidBatchHandlesEmptyInputs) {
  ConstraintChecker empty_checker({});
  std::vector<WeightedSample> samples = {{{0.1, 0.2}, 1.0}, {{0.3, 0.4}, 1.0}};
  WeightBatch batch = WeightBatch::FromSamples(samples);
  std::vector<std::uint8_t> valid = empty_checker.IsValidBatch(batch);
  EXPECT_EQ(valid, (std::vector<std::uint8_t>{1, 1}));

  pref::Preference p;
  p.diff = {1.0, 0.0};
  ConstraintChecker checker({p});
  EXPECT_TRUE(checker.IsValidBatch(WeightBatch()).empty());
}

// ---- Aggregate-threshold package constraints -----------------------------

// Items: {cost, rating}; item 2 has a null rating (skipped by folds, but it
// still counts toward the package size that `avg` divides by).
model::ItemTable ThresholdTable() {
  return std::move(model::ItemTable::Create({{10.0, 4.0},
                                             {20.0, 2.0},
                                             {5.0, model::kNullValue}}))
      .value();
}

TEST(PackageConstraintCheckerTest, ThresholdsUseKernelAggregateRules) {
  model::ItemTable table = ThresholdTable();
  AggregateThreshold budget;  // sum(cost) <= 25
  budget.feature = 0;
  budget.op = model::AggregateOp::kSum;
  budget.upper = 25.0;
  AggregateThreshold quality;  // min(rating) >= 3
  quality.feature = 1;
  quality.op = model::AggregateOp::kMin;
  quality.lower = 3.0;
  PackageConstraintChecker checker(&table, {budget, quality});
  EXPECT_EQ(checker.num_thresholds(), 2u);

  EXPECT_TRUE(checker.IsValid(model::Package::Of({0})));
  EXPECT_FALSE(checker.IsValid(model::Package::Of({1})));      // rating 2 < 3
  EXPECT_FALSE(checker.IsValid(model::Package::Of({0, 1})));   // cost 30 > 25
  // {0, 2}: cost 15; the null rating is skipped, min = 4.0 >= 3.
  EXPECT_TRUE(checker.IsValid(model::Package::Of({0, 2})));
  // {2}: no non-null rating — the kernel's count-0 rule makes min 0 < 3.
  EXPECT_FALSE(checker.IsValid(model::Package::Of({2})));
}

TEST(PackageConstraintCheckerTest, RawAggregateMatchesAggregateState) {
  // The checker's folds are the same kernel AggregateState runs on, so raw
  // aggregates must agree with a state fold over every op — including avg
  // dividing by the full package size despite the null entry.
  model::ItemTable table = ThresholdTable();
  auto profile = std::move(model::Profile::Parse("sum,avg")).value();
  model::PackageEvaluator ev(&table, &profile, 3);
  model::Package p = model::Package::Of({0, 1, 2});
  model::AggregateState state = ev.NewState();
  for (model::ItemId id : p.items()) state.Add(table.Row(id));

  AggregateThreshold sum_cost{0, model::AggregateOp::kSum, 0.0, 100.0};
  AggregateThreshold avg_rating{1, model::AggregateOp::kAvg, 0.0, 100.0};
  PackageConstraintChecker checker(&table, {sum_cost, avg_rating});
  EXPECT_DOUBLE_EQ(checker.RawAggregate(p, sum_cost), 35.0);
  EXPECT_DOUBLE_EQ(checker.RawAggregate(p, avg_rating), 2.0);  // 6.0 / 3
  EXPECT_DOUBLE_EQ(checker.RawAggregate(p, sum_cost),
                   state.sum(0));
  EXPECT_DOUBLE_EQ(checker.RawAggregate(p, avg_rating),
                   state.sum(1) / static_cast<double>(state.size()));
}

TEST(PackageConstraintCheckerTest, AsFilterRestrictsTheSearch) {
  // The AsFilter adapter pushes the threshold conjunction into the Top-k-Pkg
  // search as a Sec. 7 schema predicate.
  model::ItemTable table = ThresholdTable();
  auto profile = std::move(model::Profile::Parse("sum,avg")).value();
  model::PackageEvaluator ev(&table, &profile, 2);
  topk::TopKPkgSearch search(&ev);
  AggregateThreshold budget;
  budget.feature = 0;
  budget.op = model::AggregateOp::kSum;
  budget.upper = 16.0;
  PackageConstraintChecker checker(&table, {budget});
  topk::TopKPkgSearch::PackageFilter filter = checker.AsFilter();
  auto r = search.Search({0.9, 0.3}, 10, {}, &filter);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_FALSE(r->packages.empty());
  for (const auto& sp : r->packages) {
    EXPECT_TRUE(checker.IsValid(sp.package)) << sp.package.Key();
    EXPECT_LE(checker.RawAggregate(sp.package, budget), 16.0);
  }
  // Affordable: {0}, {2}, {0,2} (15), {1} is out (20), {0,1}, {1,2} are out.
  EXPECT_EQ(r->packages.size(), 3u);
}

}  // namespace
}  // namespace topkpkg::sampling
