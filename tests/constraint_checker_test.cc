#include "topkpkg/sampling/constraint_checker.h"

#include <gtest/gtest.h>

namespace topkpkg::sampling {
namespace {

Vec V(double a, double b) { return Vec{a, b}; }

TEST(ConstraintCheckerTest, ValidityAndViolationCounts) {
  std::vector<pref::Preference> prefs = {
      pref::Preference::FromVectors(V(1, 0), V(0, 1)),   // w0 >= w1
      pref::Preference::FromVectors(V(0.5, 0), V(0, 0)),  // w0 >= 0
  };
  ConstraintChecker checker(prefs);
  EXPECT_EQ(checker.num_constraints(), 2u);
  EXPECT_TRUE(checker.IsValid({0.5, 0.1}));
  EXPECT_FALSE(checker.IsValid({0.1, 0.5}));
  EXPECT_EQ(checker.Violations({-0.5, 0.5}), 2u);
  EXPECT_EQ(checker.Violations({0.5, 0.1}), 0u);
}

TEST(ConstraintCheckerTest, IsValidShortCircuits) {
  std::vector<pref::Preference> prefs;
  for (int i = 0; i < 10; ++i) {
    prefs.push_back(pref::Preference::FromVectors(V(0, 0), V(1, 0)));
  }
  ConstraintChecker checker(prefs);
  std::size_t checks = 0;
  EXPECT_FALSE(checker.IsValid({1.0, 0.0}, &checks));
  EXPECT_EQ(checks, 1u);  // First constraint already fails.
  checks = 0;
  EXPECT_EQ(checker.Violations({1.0, 0.0}, &checks), 10u);
  EXPECT_EQ(checks, 10u);  // Violations never short-circuits.
}

TEST(ConstraintCheckerTest, FromReducedAcceptsSameRegionAsFromAll) {
  pref::PreferenceSet set;
  ASSERT_TRUE(set.Add(V(3, 0), V(2, 0), "a", "b").ok());
  ASSERT_TRUE(set.Add(V(2, 0), V(1, 0), "b", "c").ok());
  ASSERT_TRUE(set.Add(V(3, 0), V(1, 0), "a", "c").ok());
  ConstraintChecker all = ConstraintChecker::FromAll(set);
  ConstraintChecker reduced = ConstraintChecker::FromReduced(set);
  EXPECT_EQ(all.num_constraints(), 3u);
  EXPECT_EQ(reduced.num_constraints(), 2u);
  for (double x = -1.0; x <= 1.0; x += 0.25) {
    for (double y = -1.0; y <= 1.0; y += 0.25) {
      EXPECT_EQ(all.IsValid({x, y}), reduced.IsValid({x, y}));
    }
  }
}

TEST(ConstraintCheckerTest, EmptyCheckerAcceptsEverything) {
  ConstraintChecker checker({});
  EXPECT_TRUE(checker.IsValid({0.3, -0.9}));
  EXPECT_EQ(checker.Violations({0.3, -0.9}), 0u);
}

}  // namespace
}  // namespace topkpkg::sampling
