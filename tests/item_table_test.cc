#include "topkpkg/model/item_table.h"

#include <gtest/gtest.h>

namespace topkpkg::model {
namespace {

TEST(ItemTableTest, BasicAccess) {
  auto t = ItemTable::Create({{1.0, 2.0}, {3.0, 4.0}}, {"cost", "rating"});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_items(), 2u);
  EXPECT_EQ(t->num_features(), 2u);
  EXPECT_DOUBLE_EQ(t->value(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(t->value(1, 0), 3.0);
  EXPECT_EQ(t->feature_name(0), "cost");
}

TEST(ItemTableTest, DefaultFeatureNames) {
  auto t = ItemTable::Create({{1.0, 2.0, 3.0}});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->feature_name(0), "f0");
  EXPECT_EQ(t->feature_name(2), "f2");
}

TEST(ItemTableTest, NullHandling) {
  auto t = ItemTable::Create({{kNullValue, 2.0}, {3.0, kNullValue}});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->is_null(0, 0));
  EXPECT_FALSE(t->is_null(0, 1));
  Vec row = t->Row(0);
  EXPECT_TRUE(IsNull(row[0]));
  EXPECT_DOUBLE_EQ(row[1], 2.0);
}

TEST(ItemTableTest, RejectsBadInputs) {
  EXPECT_FALSE(ItemTable::Create({}).ok());
  EXPECT_FALSE(ItemTable::Create({{}}).ok());
  EXPECT_FALSE(ItemTable::Create({{1.0}, {1.0, 2.0}}).ok());
  EXPECT_FALSE(ItemTable::Create({{-1.0}}).ok());
  EXPECT_FALSE(ItemTable::Create({{1.0, 2.0}}, {"only-one"}).ok());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(ItemTable::Create({{kInf}}).ok());
}

TEST(ItemTableTest, MaxFeatureValueSkipsNulls) {
  auto t = ItemTable::Create({{kNullValue, 5.0}, {2.0, 1.0}, {3.0, 4.0}});
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t->MaxFeatureValue(0), 3.0);
  EXPECT_DOUBLE_EQ(t->MaxFeatureValue(1), 5.0);
}

TEST(ItemTableTest, MaxFeatureValueAllNullIsZero) {
  auto t = ItemTable::Create({{kNullValue, 1.0}, {kNullValue, 2.0}});
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t->MaxFeatureValue(0), 0.0);
}

TEST(ItemTableTest, TopValuesSum) {
  auto t = ItemTable::Create({{5.0}, {1.0}, {3.0}, {kNullValue}});
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t->TopValuesSum(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(t->TopValuesSum(0, 2), 8.0);
  EXPECT_DOUBLE_EQ(t->TopValuesSum(0, 10), 9.0);  // Clamped to non-nulls.
}

TEST(ItemTableTest, SelectFeatures) {
  auto t = ItemTable::Create({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}},
                             {"a", "b", "c"});
  ASSERT_TRUE(t.ok());
  ItemTable sub = t->SelectFeatures({2, 0});
  EXPECT_EQ(sub.num_features(), 2u);
  EXPECT_EQ(sub.num_items(), 2u);
  EXPECT_EQ(sub.feature_name(0), "c");
  EXPECT_EQ(sub.feature_name(1), "a");
  EXPECT_DOUBLE_EQ(sub.value(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(sub.value(1, 1), 4.0);
}

}  // namespace
}  // namespace topkpkg::model
