#include "topkpkg/topk/item_topk.h"

#include <gtest/gtest.h>

#include "topkpkg/common/random.h"
#include "topkpkg/data/generators.h"

namespace topkpkg::topk {
namespace {

TEST(ItemTopKTest, SimpleRanking) {
  auto table = std::move(model::ItemTable::Create(
      {{1.0, 0.0}, {0.0, 1.0}, {0.8, 0.8}})).value();
  ItemTopK topk(&table);
  auto result = topk.Query({0.5, 0.5}, 2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].item, 2u);  // (0.8+0.8)/2 weighted: best.
  EXPECT_NEAR((*result)[0].utility, 0.8, 1e-12);
}

TEST(ItemTopKTest, NegativeWeightsPreferSmallValues) {
  auto table =
      std::move(model::ItemTable::Create({{10.0}, {1.0}, {5.0}})).value();
  ItemTopK topk(&table);
  auto result = topk.Query({-1.0}, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0].item, 1u);
}

TEST(ItemTopKTest, ValidatesArguments) {
  auto table = std::move(model::ItemTable::Create({{1.0}})).value();
  ItemTopK topk(&table);
  EXPECT_FALSE(topk.Query({1.0, 2.0}, 1).ok());
  EXPECT_FALSE(topk.Query({1.0}, 0).ok());
}

TEST(ItemTopKTest, ZeroWeightsReturnsFirstK) {
  auto table =
      std::move(model::ItemTable::Create({{1.0}, {2.0}, {3.0}})).value();
  ItemTopK topk(&table);
  auto result = topk.Query({0.0}, 2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].item, 0u);
}

TEST(ItemTopKTest, NullsScoreZeroOnThatFeature) {
  auto table = std::move(model::ItemTable::Create(
      {{model::kNullValue, 1.0}, {1.0, model::kNullValue}})).value();
  ItemTopK topk(&table);
  auto result = topk.Query({1.0, 0.2}, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ((*result)[0].item, 1u);  // 1.0 beats 0.2.
}

class ItemTopKEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ItemTopKEquivalence, ThresholdMatchesFullScan) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  auto table = std::move(data::GenerateUniform(300, 4, seed)).value();
  ItemTopK topk(&table);
  Rng rng(seed + 1000);
  for (int trial = 0; trial < 5; ++trial) {
    Vec w = rng.UniformVector(4, -1.0, 1.0);
    ItemTopKStats stats;
    auto fast = topk.Query(w, 10, &stats);
    ASSERT_TRUE(fast.ok());
    auto slow = topk.FullScan(w, 10);
    ASSERT_EQ(fast->size(), slow.size());
    for (std::size_t i = 0; i < slow.size(); ++i) {
      EXPECT_EQ((*fast)[i].item, slow[i].item) << "rank " << i;
      EXPECT_NEAR((*fast)[i].utility, slow[i].utility, 1e-12);
    }
    // The whole point: fewer accesses than m·n.
    EXPECT_LT(stats.sorted_accesses, 4u * 300u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ItemTopKEquivalence, ::testing::Range(0, 8));

}  // namespace
}  // namespace topkpkg::topk
