#include "topkpkg/model/utility.h"

#include <gtest/gtest.h>

namespace topkpkg::model {
namespace {

Profile P(const std::string& spec) {
  return std::move(Profile::Parse(spec)).value();
}

TEST(LinearUtilityTest, CreateValidates) {
  Profile p = P("sum,avg");
  EXPECT_TRUE(LinearUtility::Create({0.5, -0.5}, p).ok());
  EXPECT_FALSE(LinearUtility::Create({0.5}, p).ok());
  EXPECT_FALSE(LinearUtility::Create({1.5, 0.0}, p).ok());
  EXPECT_FALSE(LinearUtility::Create({0.0, -1.1}, p).ok());
}

TEST(LinearUtilityTest, ValueIsDotProduct) {
  LinearUtility u({0.5, -0.25});
  EXPECT_DOUBLE_EQ(u.Value({1.0, 1.0}), 0.25);
  EXPECT_DOUBLE_EQ(u.Value({0.0, 0.8}), -0.2);
}

TEST(SetMonotoneTest, PositiveWeightSumAndMaxAreMonotone) {
  EXPECT_TRUE(IsSetMonotone(P("sum,max"), {0.5, 0.7}));
}

TEST(SetMonotoneTest, PositiveWeightAvgIsNot) {
  EXPECT_FALSE(IsSetMonotone(P("avg"), {0.5}));
}

TEST(SetMonotoneTest, PositiveWeightMinIsNot) {
  EXPECT_FALSE(IsSetMonotone(P("min"), {0.5}));
}

TEST(SetMonotoneTest, NegativeWeightMinIsMonotone) {
  // Adding items can only lower the min; with negative weight that helps.
  EXPECT_TRUE(IsSetMonotone(P("min"), {-0.5}));
}

TEST(SetMonotoneTest, NegativeWeightSumIsNot) {
  EXPECT_FALSE(IsSetMonotone(P("sum"), {-0.5}));
}

TEST(SetMonotoneTest, ZeroWeightAndNullOpIgnored) {
  EXPECT_TRUE(IsSetMonotone(P("avg,sum"), {0.0, 0.5}));
  EXPECT_TRUE(IsSetMonotone(P("null,sum"), {-1.0, 0.5}));
}

TEST(SetMonotoneTest, PaperExampleFromSection41) {
  // "U(p) = 0.5·sum1(s) − 0.5·min2(s) is set-monotone."
  EXPECT_TRUE(IsSetMonotone(P("sum,min"), {0.5, -0.5}));
}

TEST(SetMonotoneTest, MixedOneBadFeatureBreaksMonotonicity) {
  EXPECT_FALSE(IsSetMonotone(P("sum,avg"), {0.5, 0.1}));
  EXPECT_FALSE(IsSetMonotone(P("sum,max"), {0.5, -0.1}));
}

}  // namespace
}  // namespace topkpkg::model
