#include "topkpkg/data/generators.h"

#include <cmath>

#include <gtest/gtest.h>

namespace topkpkg::data {
namespace {

double PearsonBetweenFirstTwoFeatures(const model::ItemTable& t) {
  double mx = 0.0;
  double my = 0.0;
  const std::size_t n = t.num_items();
  for (std::size_t i = 0; i < n; ++i) {
    mx += t.value(static_cast<model::ItemId>(i), 0);
    my += t.value(static_cast<model::ItemId>(i), 1);
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double dx = t.value(static_cast<model::ItemId>(i), 0) - mx;
    double dy = t.value(static_cast<model::ItemId>(i), 1) - my;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }
  return sxy / std::sqrt(sxx * syy);
}

class GeneratorShape : public ::testing::TestWithParam<SyntheticKind> {};

TEST_P(GeneratorShape, ValuesInUnitRangeAndDeterministic) {
  auto t1 = GenerateSynthetic(GetParam(), 500, 5, 42);
  auto t2 = GenerateSynthetic(GetParam(), 500, 5, 42);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t1->num_items(), 500u);
  EXPECT_EQ(t1->num_features(), 5u);
  for (std::size_t i = 0; i < t1->num_items(); ++i) {
    for (std::size_t f = 0; f < 5; ++f) {
      double v = t1->value(static_cast<model::ItemId>(i), f);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      EXPECT_DOUBLE_EQ(v, t2->value(static_cast<model::ItemId>(i), f));
    }
  }
}

TEST_P(GeneratorShape, DifferentSeedsProduceDifferentData) {
  auto t1 = GenerateSynthetic(GetParam(), 100, 3, 1);
  auto t2 = GenerateSynthetic(GetParam(), 100, 3, 2);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  int same = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    if (t1->value(static_cast<model::ItemId>(i), 0) ==
        t2->value(static_cast<model::ItemId>(i), 0)) {
      ++same;
    }
  }
  EXPECT_LT(same, 5);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GeneratorShape,
                         ::testing::Values(SyntheticKind::kUniform,
                                           SyntheticKind::kPowerLaw,
                                           SyntheticKind::kCorrelated,
                                           SyntheticKind::kAntiCorrelated));

TEST(GeneratorsTest, CorrelatedHasPositiveCorrelation) {
  auto t = GenerateCorrelated(3000, 4, 9);
  ASSERT_TRUE(t.ok());
  EXPECT_GT(PearsonBetweenFirstTwoFeatures(*t), 0.5);
}

TEST(GeneratorsTest, AntiCorrelatedHasNegativeCorrelation) {
  auto t = GenerateAntiCorrelated(3000, 4, 10);
  ASSERT_TRUE(t.ok());
  EXPECT_LT(PearsonBetweenFirstTwoFeatures(*t), -0.1);
}

TEST(GeneratorsTest, UniformHasNearZeroCorrelation) {
  auto t = GenerateUniform(3000, 4, 11);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(PearsonBetweenFirstTwoFeatures(*t), 0.0, 0.08);
}

TEST(GeneratorsTest, PowerLawIsHeavyTailed) {
  auto t = GeneratePowerLaw(5000, 2, 12);
  ASSERT_TRUE(t.ok());
  // Most mass near zero, a few large values: the median should be far below
  // the maximum (1.0 after normalization).
  std::vector<double> col;
  for (std::size_t i = 0; i < t->num_items(); ++i) {
    col.push_back(t->value(static_cast<model::ItemId>(i), 0));
  }
  std::sort(col.begin(), col.end());
  EXPECT_LT(col[col.size() / 2], 0.1);
  EXPECT_NEAR(col.back(), 1.0, 1e-12);
}

TEST(GeneratorsTest, KindNames) {
  EXPECT_STREQ(SyntheticKindName(SyntheticKind::kUniform), "UNI");
  EXPECT_STREQ(SyntheticKindName(SyntheticKind::kPowerLaw), "PWR");
  EXPECT_STREQ(SyntheticKindName(SyntheticKind::kCorrelated), "COR");
  EXPECT_STREQ(SyntheticKindName(SyntheticKind::kAntiCorrelated), "ANT");
}

}  // namespace
}  // namespace topkpkg::data
