// Cache-equivalence property tests for the incremental serving engine: across
// multiple feedback rounds of a persistent pool (violators replaced, the rest
// surviving), IncrementalRanker must produce a RankingResult bit-identical to
// the from-scratch PackageRanker oracle over the same pool — for all three
// semantics and for 1 vs N ranking threads.

#include "topkpkg/ranking/incremental_ranker.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sampling_test_util.h"
#include "topkpkg/data/generators.h"
#include "topkpkg/ranking/rankers.h"
#include "topkpkg/sampling/rejection_sampler.h"
#include "topkpkg/sampling/sample_maintenance.h"
#include "topkpkg/sampling/sample_pool.h"

namespace topkpkg::ranking {
namespace {

using sampling_test::DefaultPrior;
using sampling_test::RandomConstraints;

void ExpectSameResult(const RankingResult& got, const RankingResult& oracle,
                      const char* context) {
  EXPECT_EQ(got.any_truncated, oracle.any_truncated) << context;
  ASSERT_EQ(got.packages.size(), oracle.packages.size()) << context;
  for (std::size_t i = 0; i < got.packages.size(); ++i) {
    EXPECT_EQ(got.packages[i].package, oracle.packages[i].package)
        << context << " rank " << i;
    // Bitwise equality: the incremental path must aggregate the exact same
    // per-sample lists in the exact same order as the oracle.
    EXPECT_EQ(got.packages[i].score, oracle.packages[i].score)
        << context << " rank " << i;
  }
}

class IncrementalRankerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<model::ItemTable>(
        std::move(data::GenerateUniform(30, 3, 5)).value());
    profile_ = std::make_unique<model::Profile>(
        std::move(model::Profile::Parse("sum,avg,min")).value());
    evaluator_ = std::make_unique<model::PackageEvaluator>(table_.get(),
                                                           profile_.get(), 3);
  }

  std::unique_ptr<model::ItemTable> table_;
  std::unique_ptr<model::Profile> profile_;
  std::unique_ptr<model::PackageEvaluator> evaluator_;
};

TEST_F(IncrementalRankerFixture, MultiRoundEquivalenceAllSemanticsAndThreads) {
  Rng rng(71);
  Vec hidden = {0.8, -0.3, 0.5};
  prob::GaussianMixture prior = DefaultPrior(3, 72);
  sampling::ConstraintChecker empty({});
  auto initial = sampling::RejectionSampler(&prior, &empty).Draw(80, rng);
  ASSERT_TRUE(initial.ok()) << initial.status();
  sampling::SamplePool pool(std::move(initial).value());

  RankingOptions serial_opts;
  serial_opts.k = 4;
  serial_opts.sigma = 3;
  RankingOptions parallel_opts = serial_opts;
  parallel_opts.exec.num_threads = 4;

  PackageRanker oracle(evaluator_.get());
  IncrementalRanker serial(evaluator_.get());
  IncrementalRanker parallel(evaluator_.get());

  std::vector<pref::Preference> feedback;
  sampling::PoolDelta delta;
  for (const auto& s : pool.samples()) delta.added_ids.push_back(s.id);

  for (int round = 0; round < 6; ++round) {
    for (Semantics sem :
         {Semantics::kExp, Semantics::kTkp, Semantics::kMpo}) {
      auto from_scratch = oracle.Rank(pool.samples(), sem, serial_opts);
      ASSERT_TRUE(from_scratch.ok()) << from_scratch.status();

      IncrementalRankStats serial_stats;
      auto incr = serial.Rank(pool, delta, sem, serial_opts, &serial_stats);
      ASSERT_TRUE(incr.ok()) << incr.status();
      std::string ctx = std::string("round ") + std::to_string(round) + " " +
                        SemanticsName(sem) + " serial";
      ExpectSameResult(*incr, *from_scratch, ctx.c_str());

      auto incr_mt = parallel.Rank(pool, delta, sem, parallel_opts);
      ASSERT_TRUE(incr_mt.ok()) << incr_mt.status();
      ctx = std::string("round ") + std::to_string(round) + " " +
            SemanticsName(sem) + " parallel";
      ExpectSameResult(*incr_mt, *from_scratch, ctx.c_str());
    }

    // Next round: one new consistent preference invalidates some samples;
    // replace exactly the violators, as the serving engine does.
    auto fresh_pref = RandomConstraints(1, hidden, rng);
    feedback.push_back(fresh_pref[0]);
    auto found = sampling::FindViolators(
        pool, fresh_pref[0], sampling::MaintenanceStrategy::kHybrid);
    sampling::ConstraintChecker checker(feedback);
    std::vector<sampling::WeightedSample> fresh;
    if (!found.violators.empty()) {
      auto drawn = sampling::RejectionSampler(&prior, &checker)
                       .Draw(found.violators.size(), rng);
      ASSERT_TRUE(drawn.ok()) << drawn.status();
      fresh = std::move(drawn).value();
    }
    delta = pool.Replace(found.violators, std::move(fresh));
  }
}

TEST_F(IncrementalRankerFixture, ReuseStatsReflectDelta) {
  Rng rng(81);
  prob::GaussianMixture prior = DefaultPrior(3, 82);
  sampling::ConstraintChecker empty({});
  sampling::RejectionSampler sampler(&prior, &empty);
  auto initial = sampler.Draw(40, rng);
  ASSERT_TRUE(initial.ok());
  sampling::SamplePool pool(std::move(initial).value());

  RankingOptions opts;
  opts.k = 3;
  opts.sigma = 3;
  IncrementalRanker ranker(evaluator_.get());

  sampling::PoolDelta delta;
  for (const auto& s : pool.samples()) delta.added_ids.push_back(s.id);
  IncrementalRankStats stats;
  ASSERT_TRUE(ranker.Rank(pool, delta, Semantics::kTkp, opts, &stats).ok());
  EXPECT_EQ(stats.searches_run, 40u);
  EXPECT_EQ(stats.searches_skipped, 0u);
  EXPECT_EQ(ranker.cache_size(), 40u);

  auto fresh = sampler.Draw(5, rng);
  ASSERT_TRUE(fresh.ok());
  delta = pool.Replace({0, 7, 11, 23, 39}, std::move(fresh).value());
  ASSERT_TRUE(ranker.Rank(pool, delta, Semantics::kTkp, opts, &stats).ok());
  EXPECT_EQ(stats.evicted, 5u);
  EXPECT_EQ(stats.searches_run, 5u);
  EXPECT_EQ(stats.searches_skipped, 35u);
  EXPECT_FALSE(stats.cache_invalidated);
  EXPECT_EQ(ranker.cache_size(), 40u);
}

TEST_F(IncrementalRankerFixture, LimitChangeInvalidatesCache) {
  Rng rng(91);
  prob::GaussianMixture prior = DefaultPrior(3, 92);
  sampling::ConstraintChecker empty({});
  auto initial = sampling::RejectionSampler(&prior, &empty).Draw(20, rng);
  ASSERT_TRUE(initial.ok());
  sampling::SamplePool pool(std::move(initial).value());
  sampling::PoolDelta delta;
  for (const auto& s : pool.samples()) delta.added_ids.push_back(s.id);

  RankingOptions opts;
  opts.k = 3;
  opts.sigma = 3;
  IncrementalRanker ranker(evaluator_.get());
  ASSERT_TRUE(ranker.Rank(pool, delta, Semantics::kExp, opts).ok());
  const std::uint64_t epoch = ranker.ranking_epoch();

  // Same options: cache stays.
  sampling::PoolDelta noop;
  for (const auto& s : pool.samples()) noop.surviving_ids.push_back(s.id);
  IncrementalRankStats stats;
  ASSERT_TRUE(ranker.Rank(pool, noop, Semantics::kExp, opts, &stats).ok());
  EXPECT_EQ(ranker.ranking_epoch(), epoch);
  EXPECT_EQ(stats.searches_run, 0u);

  // Tighter search limits change every cached list's provenance: the whole
  // cache must go, and the fresh results must match a from-scratch oracle
  // under the new limits.
  opts.limits.max_items_accessed = 64;
  ASSERT_TRUE(ranker.Rank(pool, noop, Semantics::kExp, opts, &stats).ok());
  EXPECT_GT(ranker.ranking_epoch(), epoch);
  EXPECT_TRUE(stats.cache_invalidated);
  EXPECT_EQ(stats.searches_run, 20u);

  PackageRanker oracle(evaluator_.get());
  auto from_scratch = oracle.Rank(pool.samples(), Semantics::kExp, opts);
  auto incr = ranker.Rank(pool, noop, Semantics::kExp, opts);
  ASSERT_TRUE(from_scratch.ok());
  ASSERT_TRUE(incr.ok());
  ExpectSameResult(*incr, *from_scratch, "after limit change");
}

TEST_F(IncrementalRankerFixture, InvalidateAllClearsCache) {
  Rng rng(95);
  prob::GaussianMixture prior = DefaultPrior(3, 96);
  sampling::ConstraintChecker empty({});
  auto initial = sampling::RejectionSampler(&prior, &empty).Draw(10, rng);
  ASSERT_TRUE(initial.ok());
  sampling::SamplePool pool(std::move(initial).value());
  sampling::PoolDelta delta;
  for (const auto& s : pool.samples()) delta.added_ids.push_back(s.id);

  RankingOptions opts;
  IncrementalRanker ranker(evaluator_.get());
  ASSERT_TRUE(ranker.Rank(pool, delta, Semantics::kTkp, opts).ok());
  EXPECT_EQ(ranker.cache_size(), 10u);
  const std::uint64_t epoch = ranker.ranking_epoch();
  ranker.InvalidateAll();
  EXPECT_EQ(ranker.cache_size(), 0u);
  EXPECT_GT(ranker.ranking_epoch(), epoch);
}

}  // namespace
}  // namespace topkpkg::ranking
