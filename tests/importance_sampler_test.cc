#include "topkpkg/sampling/importance_sampler.h"

#include <gtest/gtest.h>

#include "sampling_test_util.h"

namespace topkpkg::sampling {
namespace {

using sampling_test::DefaultPrior;
using sampling_test::RandomConstraints;

TEST(CellMayContainValidTest, UsesCellCorners) {
  // Constraint diff = (1, -1): valid iff w0 >= w1.
  Vec diff = {1.0, -1.0};
  // Cell entirely above the diagonal (w1 > w0 everywhere): infeasible.
  EXPECT_FALSE(CellMayContainValid({-1.0, 0.5}, {-0.5, 1.0}, diff));
  // Cell straddling the diagonal: feasible.
  EXPECT_TRUE(CellMayContainValid({-0.2, -0.2}, {0.2, 0.2}, diff));
  // Cell entirely below: feasible.
  EXPECT_TRUE(CellMayContainValid({0.5, -1.0}, {1.0, -0.5}, diff));
}

TEST(ImportanceSamplerTest, RefusesHighDimensionality) {
  prob::GaussianMixture prior = DefaultPrior(6, 1);
  ConstraintChecker checker({});
  auto sampler = ImportanceSampler::Create(&prior, &checker);
  ASSERT_FALSE(sampler.ok());
  EXPECT_EQ(sampler.status().code(), StatusCode::kUnimplemented);
}

TEST(ImportanceSamplerTest, MaxDimOverridable) {
  prob::GaussianMixture prior = DefaultPrior(6, 2);
  ConstraintChecker checker({});
  ImportanceSamplerOptions opts;
  opts.max_dim = 8;
  opts.grid_resolution = 2;
  EXPECT_TRUE(ImportanceSampler::Create(&prior, &checker, opts).ok());
}

TEST(ImportanceSamplerTest, SamplesValidWithPositiveWeights) {
  Rng rng(3);
  Vec hidden = {0.5, -0.7};
  auto prefs = RandomConstraints(15, hidden, rng);
  ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = DefaultPrior(2, 4);
  auto sampler = ImportanceSampler::Create(&prior, &checker);
  ASSERT_TRUE(sampler.ok()) << sampler.status();
  SampleStats stats;
  auto samples = sampler->Draw(150, rng, &stats);
  ASSERT_TRUE(samples.ok()) << samples.status();
  EXPECT_EQ(samples->size(), 150u);
  for (const auto& s : *samples) {
    EXPECT_TRUE(checker.IsValid(s.w));
    EXPECT_TRUE(InBox(s.w, -1.0, 1.0));
    EXPECT_GT(s.weight, 0.0);
  }
  EXPECT_EQ(stats.accepted, 150u);
}

TEST(ImportanceSamplerTest, CenterSatisfiesEasyConstraints) {
  // Single constraint w0 >= w1: center of surviving cells must land on the
  // valid side.
  std::vector<pref::Preference> prefs = {
      pref::Preference::FromVectors({1.0, 0.0}, {0.0, 1.0})};
  ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = DefaultPrior(2, 5);
  auto sampler = ImportanceSampler::Create(&prior, &checker);
  ASSERT_TRUE(sampler.ok());
  const Vec& c = sampler->approximate_center();
  EXPECT_GE(c[0], c[1]);
  EXPECT_GT(sampler->feasible_cells(), 0u);
}

TEST(ImportanceSamplerTest, HigherAcceptanceThanRejectionOnTightRegion) {
  // The Fig. 4 story: with constraints cutting away most of the box, the
  // centered proposal wastes far fewer samples than the prior.
  Rng rng(6);
  Vec hidden = {0.8, -0.6, 0.4};
  auto prefs = RandomConstraints(40, hidden, rng);
  ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = DefaultPrior(3, 7);

  SampleStats is_stats;
  auto is = ImportanceSampler::Create(&prior, &checker);
  ASSERT_TRUE(is.ok());
  Rng r1(8);
  ASSERT_TRUE(is->Draw(100, r1, &is_stats).ok());

  SampleStats rs_stats;
  RejectionSampler rs(&prior, &checker);
  Rng r2(8);
  ASSERT_TRUE(rs.Draw(100, r2, &rs_stats).ok());

  EXPECT_GT(is_stats.AcceptanceRate(), rs_stats.AcceptanceRate());
}

TEST(ImportanceSamplerTest, GridResolutionRefinesCenter) {
  std::vector<pref::Preference> prefs = {
      pref::Preference::FromVectors({1.0, 0.0}, {0.0, 1.0})};
  ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = DefaultPrior(2, 9);
  ImportanceSamplerOptions coarse;
  coarse.grid_resolution = 2;
  ImportanceSamplerOptions fine;
  fine.grid_resolution = 16;
  auto s_coarse = ImportanceSampler::Create(&prior, &checker, coarse);
  auto s_fine = ImportanceSampler::Create(&prior, &checker, fine);
  ASSERT_TRUE(s_coarse.ok());
  ASSERT_TRUE(s_fine.ok());
  // Finer grids keep more cells and their center approximation is at least
  // as constrained-side as the coarse one.
  EXPECT_GT(s_fine->feasible_cells(), s_coarse->feasible_cells());
  EXPECT_GE(s_fine->approximate_center()[0],
            s_fine->approximate_center()[1]);
}

TEST(ImportanceSamplerTest, WeightsCorrectTowardPrior) {
  // With no constraints and a proposal centered at 0, the importance weight
  // must equal prior(w)/proposal(w) exactly.
  ConstraintChecker checker({});
  prob::GaussianMixture prior = DefaultPrior(2, 10);
  auto sampler = ImportanceSampler::Create(&prior, &checker);
  ASSERT_TRUE(sampler.ok());
  Rng rng(11);
  auto samples = sampler->Draw(50, rng);
  ASSERT_TRUE(samples.ok());
  for (const auto& s : *samples) {
    EXPECT_GT(s.weight, 0.0);
    EXPECT_TRUE(std::isfinite(s.weight));
  }
}

}  // namespace
}  // namespace topkpkg::sampling
