#include "topkpkg/common/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace topkpkg {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Uniform() == b.Uniform()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, UniformIntCoversDomain) {
  Rng rng(13);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ParetoAtLeastOneAndHeavyTailed) {
  Rng rng(19);
  int above_three = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Pareto(2.5);
    EXPECT_GE(v, 1.0);
    if (v > 3.0) ++above_three;
  }
  // P(X > 3) = 3^-2.5 ≈ 0.064 for Pareto(2.5).
  EXPECT_NEAR(static_cast<double>(above_three) / n, 0.064, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, UniformInBallStaysInBall) {
  Rng rng(29);
  for (int i = 0; i < 200; ++i) {
    auto v = rng.UniformInBall(4, 0.5);
    double norm2 = 0.0;
    for (double x : v) norm2 += x * x;
    EXPECT_LE(std::sqrt(norm2), 0.5 + 1e-12);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    auto idx = rng.SampleWithoutReplacement(20, 7);
    ASSERT_EQ(idx.size(), 7u);
    std::set<std::size_t> uniq(idx.begin(), idx.end());
    EXPECT_EQ(uniq.size(), 7u);
    EXPECT_LT(*std::max_element(idx.begin(), idx.end()), 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementCountClamped) {
  Rng rng(37);
  auto idx = rng.SampleWithoutReplacement(3, 10);
  EXPECT_EQ(idx.size(), 3u);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(41);
  Rng child = parent.Fork();
  // The fork must not replay the parent's stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Uniform() == child.Uniform()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 123;
  uint64_t s2 = 123;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  }
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace topkpkg
