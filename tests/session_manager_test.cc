// SessionManager contracts: evict→hydrate cycles are invisible (bit-identical
// RoundLogs to an always-resident — and to a bare, manager-free — session),
// requests to one session stay strictly ordered while distinct sessions
// progress concurrently, backpressure rejects with ResourceExhausted, and
// construction rejects invalid configuration with typed errors.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "topkpkg/data/generators.h"
#include "topkpkg/recsys/recommender.h"
#include "topkpkg/serving/session_manager.h"
#include "topkpkg/storage/codec.h"
#include "topkpkg/storage/fault_env.h"
#include "topkpkg/storage/session_store.h"

namespace topkpkg::serving {
namespace {

std::string TempStorePath(const std::string& name) {
  std::string path = ::testing::TempDir() + "topkpkg_serving_" + name + "_" +
                     std::to_string(::getpid()) + ".tkps";
  std::filesystem::remove_all(path);
  return path;
}

// Canonical bytes of a round sequence: everything the recommender computed,
// with only the wall-clock fields (legitimately run-dependent) zeroed.
std::string Canon(std::vector<recsys::RoundLog> logs) {
  for (recsys::RoundLog& log : logs) {
    log.maintain_seconds = 0.0;
    log.sample_seconds = 0.0;
    log.rank_seconds = 0.0;
    log.sampling_stats.seconds = 0.0;
  }
  return storage::EncodeRoundHistory(logs);
}

class SessionManagerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<model::ItemTable>(
        std::move(data::GenerateUniform(40, 3, 7)).value());
    profile_ = std::make_unique<model::Profile>(
        std::move(model::Profile::Parse("sum,avg,min")).value());
    evaluator_ = std::make_unique<model::PackageEvaluator>(table_.get(),
                                                           profile_.get(), 3);
    Rng rng(8);
    prior_ = std::make_unique<prob::GaussianMixture>(
        prob::GaussianMixture::Random(3, 2, 0.5, rng));
  }

  recsys::RecommenderOptions RecOptions() const {
    recsys::RecommenderOptions opts;
    opts.num_recommended = 3;
    opts.num_random = 3;
    opts.num_samples = 60;
    opts.ranking.k = 3;
    opts.ranking.sigma = 3;
    return opts;
  }

  SessionManagerOptions ManagerOptions(std::size_t max_hydrated,
                                       std::size_t workers = 2) const {
    SessionManagerOptions opts;
    opts.recommender = RecOptions();
    opts.max_hydrated_sessions = max_hydrated;
    opts.num_workers = workers;
    return opts;
  }

  // The ground truth nothing in serving may perturb: a bare recommender run
  // without any SessionManager, store, or shared pool.
  std::vector<recsys::RoundLog> BareRounds(std::uint64_t seed,
                                           const recsys::SimulatedUser& user,
                                           int rounds) const {
    auto rec = recsys::PackageRecommender::Create(evaluator_.get(),
                                                  prior_.get(), RecOptions(),
                                                  seed);
    EXPECT_TRUE(rec.ok()) << rec.status();
    std::vector<recsys::RoundLog> logs;
    for (int i = 0; i < rounds; ++i) {
      auto log = (*rec)->RunRound(user);
      EXPECT_TRUE(log.ok()) << log.status();
      logs.push_back(*log);
    }
    return logs;
  }

  std::unique_ptr<model::ItemTable> table_;
  std::unique_ptr<model::Profile> profile_;
  std::unique_ptr<model::PackageEvaluator> evaluator_;
  std::unique_ptr<prob::GaussianMixture> prior_;
};

// Three interleaved sessions served through an LRU of capacity 1 — every
// single request hydrates from the store and evicts a neighbor — must emit
// exactly the RoundLogs of (a) a capacity-8 manager that never evicts and
// (b) bare manager-free recommenders.
TEST_F(SessionManagerFixture, EvictHydrateCyclesAreBitIdentical) {
  const std::uint64_t seeds[] = {11, 77, 123};
  const recsys::SimulatedUser users[] = {
      recsys::SimulatedUser({0.8, 0.4, -0.2}),
      recsys::SimulatedUser({-0.3, 0.9, 0.1}),
      recsys::SimulatedUser({0.1, -0.6, 0.7})};
  constexpr int kRounds = 4;

  std::vector<std::string> want;
  for (int s = 0; s < 3; ++s) {
    want.push_back(Canon(BareRounds(seeds[s], users[s], kRounds)));
  }

  for (std::size_t capacity : {std::size_t{1}, std::size_t{8}}) {
    const std::string path =
        TempStorePath("identity_cap" + std::to_string(capacity));
    auto store = storage::SessionStore::Open(path);
    ASSERT_TRUE(store.ok()) << store.status();
    auto manager = SessionManager::Create(evaluator_.get(), prior_.get(),
                                          &*store, ManagerOptions(capacity));
    ASSERT_TRUE(manager.ok()) << manager.status();

    std::vector<SessionHandle> handles;
    for (int s = 0; s < 3; ++s) {
      auto handle = (*manager)->StartSession(static_cast<SessionId>(s + 1),
                                             seeds[s]);
      ASSERT_TRUE(handle.ok()) << handle.status();
      handles.push_back(*handle);
    }

    // Round-robin across sessions so a capacity-1 LRU thrashes maximally:
    // every feedback must restore its session and checkpoint another.
    std::vector<std::vector<recsys::RoundLog>> got(3);
    for (int round = 0; round < kRounds; ++round) {
      std::vector<std::future<Result<recsys::RoundLog>>> futures;
      for (int s = 0; s < 3; ++s) {
        futures.push_back(handles[static_cast<std::size_t>(s)].Feedback(
            &users[s]));
      }
      for (int s = 0; s < 3; ++s) {
        auto log = futures[static_cast<std::size_t>(s)].get();
        ASSERT_TRUE(log.ok()) << log.status();
        got[static_cast<std::size_t>(s)].push_back(*log);
      }
    }

    for (int s = 0; s < 3; ++s) {
      EXPECT_EQ(Canon(got[static_cast<std::size_t>(s)]),
                want[static_cast<std::size_t>(s)])
          << "session " << s << " capacity " << capacity;
    }

    const SessionManager::Stats stats = (*manager)->stats();
    if (capacity == 1) {
      // 3 sessions × 4 rounds through one slot: all but the very first
      // request found its session cold.
      EXPECT_EQ(stats.hydrations, 12u);
      EXPECT_EQ(stats.evictions, 11u);
      EXPECT_EQ(stats.hydrated, 1u);
    } else {
      EXPECT_EQ(stats.hydrations, 3u);  // One per session, never again.
      EXPECT_EQ(stats.evictions, 0u);
      EXPECT_EQ(stats.hydrated, 3u);
    }
    EXPECT_EQ(stats.completed, 12u);
    EXPECT_EQ(stats.rejected, 0u);
  }
}

// Fire a session's whole request stream without awaiting anything, across
// several sessions at once: per-session results must come out in submission
// order (same bytes as the serial reference), while the sessions share the
// pool concurrently.
TEST_F(SessionManagerFixture, ConcurrentSessionsStayOrderedPerSession) {
  constexpr int kSessions = 4;
  constexpr int kRounds = 5;
  const std::string path = TempStorePath("ordering");
  auto store = storage::SessionStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status();
  auto manager =
      SessionManager::Create(evaluator_.get(), prior_.get(), &*store,
                             ManagerOptions(/*max_hydrated=*/2,
                                            /*workers=*/4));
  ASSERT_TRUE(manager.ok()) << manager.status();

  std::vector<recsys::SimulatedUser> users;
  std::vector<std::string> want;
  for (int s = 0; s < kSessions; ++s) {
    users.emplace_back(Vec{0.2 * s - 0.3, 0.5, -0.1 * s});
  }
  for (int s = 0; s < kSessions; ++s) {
    want.push_back(Canon(
        BareRounds(static_cast<std::uint64_t>(100 + s), users[
            static_cast<std::size_t>(s)], kRounds)));
  }

  // Submit everything up front — kRounds feedbacks plus a trailing GetTopK
  // per session — before collecting a single future.
  std::vector<std::vector<std::future<Result<recsys::RoundLog>>>> feedback(
      kSessions);
  std::vector<std::future<Result<TopKSnapshot>>> snapshots;
  for (int s = 0; s < kSessions; ++s) {
    auto handle = (*manager)->StartSession(
        static_cast<SessionId>(s + 1), static_cast<std::uint64_t>(100 + s));
    ASSERT_TRUE(handle.ok()) << handle.status();
    for (int round = 0; round < kRounds; ++round) {
      feedback[static_cast<std::size_t>(s)].push_back(
          handle->Feedback(&users[static_cast<std::size_t>(s)]));
    }
    snapshots.push_back(handle->GetTopK());
  }

  for (int s = 0; s < kSessions; ++s) {
    std::vector<recsys::RoundLog> got;
    for (auto& f : feedback[static_cast<std::size_t>(s)]) {
      auto log = f.get();
      ASSERT_TRUE(log.ok()) << log.status();
      got.push_back(*log);
    }
    // FIFO per session: the i-th future resolves to the i-th round of the
    // serial reference, so the concatenation matches byte for byte.
    EXPECT_EQ(Canon(got), want[static_cast<std::size_t>(s)]) << "session "
                                                             << s;
    // The GetTopK queued behind the feedbacks observed all of them.
    auto snap = snapshots[static_cast<std::size_t>(s)].get();
    ASSERT_TRUE(snap.ok()) << snap.status();
    EXPECT_EQ(snap->rounds_served, static_cast<std::size_t>(kRounds));
    EXPECT_EQ(snap->top_k.size(), 3u);
  }
  EXPECT_EQ((*manager)->stats().completed,
            static_cast<std::uint64_t>(kSessions * (kRounds + 1)));
}

TEST_F(SessionManagerFixture, BackpressureRejectsWhenSessionQueueIsFull) {
  const std::string path = TempStorePath("backpressure");
  auto store = storage::SessionStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status();
  SessionManagerOptions opts = ManagerOptions(/*max_hydrated=*/2,
                                              /*workers=*/1);
  opts.max_queued_requests_per_session = 2;
  auto manager = SessionManager::Create(evaluator_.get(), prior_.get(),
                                        &*store, opts);
  ASSERT_TRUE(manager.ok()) << manager.status();
  auto handle = (*manager)->StartSession(1, 11);
  ASSERT_TRUE(handle.ok());

  // Hold the single worker hostage so nothing drains.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::future<void> hostage =
      (*manager)->pool()->Submit([released]() { released.wait(); });

  recsys::SimulatedUser user({0.8, 0.4, -0.2});
  auto first = handle->Feedback(&user);
  auto second = handle->GetTopK();
  auto rejected = handle->Feedback(&user);  // Queue holds 2: over capacity.
  auto status = rejected.get();
  EXPECT_EQ(status.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ((*manager)->stats().rejected, 1u);

  release.set_value();
  hostage.get();
  EXPECT_TRUE(first.get().ok());
  EXPECT_TRUE(second.get().ok());  // The accepted requests still complete.
}

TEST_F(SessionManagerFixture, LifecycleUnknownEndedAndReopenedSessions) {
  const std::string path = TempStorePath("lifecycle");
  auto store = storage::SessionStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status();
  auto manager = SessionManager::Create(evaluator_.get(), prior_.get(),
                                        &*store, ManagerOptions(2));
  ASSERT_TRUE(manager.ok()) << manager.status();
  recsys::SimulatedUser user({0.8, 0.4, -0.2});

  // Unknown sessions are NotFound, not implicitly created.
  EXPECT_EQ((*manager)->SubmitGetTopK(99).get().status().code(),
            StatusCode::kNotFound);

  auto handle = (*manager)->StartSession(1, 11);
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(handle->Feedback(&user).get().ok());
  ASSERT_TRUE(handle->Feedback(&user).get().ok());
  auto before_end = handle->GetTopK().get();
  ASSERT_TRUE(before_end.ok());

  // End checkpoints and drops the session; later submits fail, and a
  // feedback already queued behind the End fails the same way.
  auto end = handle->End();
  EXPECT_TRUE(end.get().ok());
  EXPECT_EQ(handle->Feedback(&user).get().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*manager)->stats().sessions, 0u);
  EXPECT_EQ((*manager)->stats().hydrated, 0u);

  // Re-opening resumes from the checkpoint: same top-k, fresh serving
  // counter, and the next feedback continues the old trajectory (survivor
  // reuse proves it restored rather than restarted).
  auto reopened = (*manager)->StartSession(1, 999);
  ASSERT_TRUE(reopened.ok());
  auto snap = reopened->GetTopK().get();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->top_k, before_end->top_k);
  EXPECT_EQ(snap->rounds_served, 0u);
  auto resumed = reopened->Feedback(&user).get();
  ASSERT_TRUE(resumed.ok());
  EXPECT_GT(resumed->samples_reused, 0u);
}

// Destroying the manager drains in-flight work and checkpoints every
// still-hydrated session, so a bare recommender can restore the full state
// from the store afterwards.
TEST_F(SessionManagerFixture, DestructorCheckpointsHydratedSessions) {
  const std::string path = TempStorePath("shutdown");
  auto store = storage::SessionStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status();
  recsys::SimulatedUser user({0.8, 0.4, -0.2});
  {
    auto manager = SessionManager::Create(evaluator_.get(), prior_.get(),
                                          &*store, ManagerOptions(4));
    ASSERT_TRUE(manager.ok()) << manager.status();
    auto handle = (*manager)->StartSession(7, 11);
    ASSERT_TRUE(handle.ok());
    // Fire and forget: the destructor must complete these, not drop them.
    handle->Feedback(&user);
    handle->Feedback(&user);
  }
  auto restored = recsys::PackageRecommender::Create(
      evaluator_.get(), prior_.get(), RecOptions(), /*seed=*/0);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE((*restored)->Restore(*store, 7).ok());
  EXPECT_EQ((*restored)->round_history().size(), 2u);
}

// A store outage must not drop a session or fail its requests: the evictor
// retries the checkpoint with backoff, gives up, keeps the victim resident,
// and hydrates the incoming session *over* capacity. Once the store heals,
// eviction drains the degraded set back under the limit and every round
// survives a restore.
TEST_F(SessionManagerFixture, StoreOutageDegradesWithoutDroppingSessions) {
  const std::string path = TempStorePath("outage");
  storage::FaultInjectingEnv env(storage::Env::Default());
  storage::SessionStoreOptions sopts;
  sopts.env = &env;
  auto store = storage::SessionStore::Open(path, sopts);
  ASSERT_TRUE(store.ok()) << store.status();

  SessionManagerOptions opts = ManagerOptions(/*max_hydrated=*/1);
  opts.store_retry_limit = 2;
  opts.store_retry_backoff_ms = 1;  // Keep the backoff sweep fast.
  auto manager = SessionManager::Create(evaluator_.get(), prior_.get(),
                                        &*store, opts);
  ASSERT_TRUE(manager.ok()) << manager.status();

  recsys::SimulatedUser user({0.8, 0.4, -0.2});
  auto first = (*manager)->StartSession(1, 11);
  auto second = (*manager)->StartSession(2, 77);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(first->Feedback(&user).get().ok());  // Session 1 is dirty.

  env.set_fail_writes(true);
  // Hydrating session 2 wants to evict session 1, whose checkpoint cannot
  // land. The request must still complete (degraded, over capacity).
  ASSERT_TRUE(second->Feedback(&user).get().ok());
  {
    const SessionManager::Stats stats = (*manager)->stats();
    EXPECT_EQ(stats.hydrated, 2u);  // Over the capacity of 1.
    EXPECT_GE(stats.degraded_hydrations, 1u);
    EXPECT_GE(stats.store_errors, 3u);   // 1 attempt + 2 retries, minimum.
    EXPECT_GE(stats.store_retries, 2u);
    EXPECT_EQ(stats.evictions, 0u);      // Nobody was dropped.
  }
  // Both sessions keep serving through the outage.
  ASSERT_TRUE(first->GetTopK().get().ok());
  ASSERT_TRUE(second->GetTopK().get().ok());

  env.set_fail_writes(false);
  // Healed: ending both sessions checkpoints cleanly, and each restores
  // with every round it served — nothing was lost to the outage.
  ASSERT_TRUE(first->End().get().ok());
  ASSERT_TRUE(second->End().get().ok());
  EXPECT_EQ((*manager)->stats().hydrated, 0u);
  for (const SessionId id : {SessionId{1}, SessionId{2}}) {
    auto restored = recsys::PackageRecommender::Create(
        evaluator_.get(), prior_.get(), RecOptions(), /*seed=*/0);
    ASSERT_TRUE(restored.ok());
    ASSERT_TRUE((*restored)->Restore(*store, id).ok());
    EXPECT_EQ((*restored)->round_history().size(), 1u) << "session " << id;
  }
}

// The background writeback thread checkpoints idle dirty sessions, so the
// eventual eviction is a free drop (clean_drops) instead of a synchronous
// store write on the request path.
TEST_F(SessionManagerFixture, BackgroundWritebackMakesEvictionsCleanDrops) {
  const std::string path = TempStorePath("writeback");
  auto store = storage::SessionStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status();
  SessionManagerOptions opts = ManagerOptions(/*max_hydrated=*/1);
  opts.writeback_interval_ms = 2;
  SessionManager::Stats stats;
  {
    auto manager = SessionManager::Create(evaluator_.get(), prior_.get(),
                                          &*store, opts);
    ASSERT_TRUE(manager.ok()) << manager.status();

    recsys::SimulatedUser user({0.8, 0.4, -0.2});
    auto handle = (*manager)->StartSession(1, 11);
    ASSERT_TRUE(handle.ok());
    ASSERT_TRUE(handle->Feedback(&user).get().ok());

    // The session is now idle and dirty; the writeback thread must pick it
    // up within a few ticks.
    for (int i = 0; i < 500 && (*manager)->stats().writebacks == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_GE((*manager)->stats().writebacks, 1u);

    // Evicting the now-clean session costs no store write.
    auto other = (*manager)->StartSession(2, 77);
    ASSERT_TRUE(other.ok());
    ASSERT_TRUE(other->Feedback(&user).get().ok());
    stats = (*manager)->stats();
  }  // Destroyed first: the store is single-owner, and the writeback
     // thread must not race the bare Restore below.
  EXPECT_GE(stats.clean_drops, 1u);
  EXPECT_EQ(stats.evictions, stats.clean_drops);

  // The write-back checkpoint is the real one: session 1 was clean-dropped,
  // so only the writeback thread ever wrote its round to the store.
  auto restored = recsys::PackageRecommender::Create(
      evaluator_.get(), prior_.get(), RecOptions(), /*seed=*/0);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE((*restored)->Restore(*store, 1).ok());
  EXPECT_EQ((*restored)->round_history().size(), 1u);
}

TEST_F(SessionManagerFixture, CreateRejectsInvalidConfiguration) {
  const std::string path = TempStorePath("validate");
  auto store = storage::SessionStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status();

  auto no_store = SessionManager::Create(evaluator_.get(), prior_.get(),
                                         nullptr, ManagerOptions(2));
  EXPECT_EQ(no_store.status().code(), StatusCode::kInvalidArgument);

  auto zero_lru = SessionManager::Create(evaluator_.get(), prior_.get(),
                                         &*store, ManagerOptions(0));
  EXPECT_EQ(zero_lru.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(zero_lru.status().message().find("max_hydrated_sessions"),
            std::string::npos);

  SessionManagerOptions zero_queue = ManagerOptions(2);
  zero_queue.max_queued_requests_per_session = 0;
  EXPECT_EQ(SessionManager::Create(evaluator_.get(), prior_.get(), &*store,
                                   zero_queue)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // A bad recommender template fails Create with the recommender
  // validator's own typed error, not at first hydration.
  SessionManagerOptions bad_template = ManagerOptions(2);
  bad_template.recommender.num_samples = 0;
  auto bad = SessionManager::Create(evaluator_.get(), prior_.get(), &*store,
                                    bad_template);
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("num_samples"), std::string::npos);
}

}  // namespace
}  // namespace topkpkg::serving
