#include "topkpkg/common/status.h"

#include <gtest/gtest.h>

namespace topkpkg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kResourceExhausted, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("too big"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  TOPKPKG_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  Status st = UseAssignOrReturn(3, &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace topkpkg
