#include "topkpkg/obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace topkpkg::obs {
namespace {

// Nearest-rank order statistic over a sorted copy — the oracle every
// histogram quantile is pinned against.
double OracleQuantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  rank = std::max<std::size_t>(1, std::min(rank, values.size()));
  return values[rank - 1];
}

// Quarter-octave buckets: upper/lower edge ratio <= 5/4, so a bucketed
// quantile may overestimate the oracle by at most 25% (and never
// underestimates, up to one final-bit rounding in BucketUpper's ldexp).
void ExpectQuantileWithinBucketBound(const Histogram& h,
                                     const std::vector<double>& values,
                                     double q) {
  const double oracle = OracleQuantile(values, q);
  const double got = h.Quantile(q);
  EXPECT_GE(got, oracle * (1.0 - 1e-12)) << "q=" << q;
  EXPECT_LE(got, oracle * 1.2501) << "q=" << q;
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
}

TEST(HistogramTest, OneSampleIsExactAtEveryQuantile) {
  Histogram h;
  h.Observe(0.0371);
  for (double q : {0.0, 0.01, 0.5, 0.95, 0.99, 1.0}) {
    // The min/max clamp collapses the bucket edge to the single value.
    EXPECT_DOUBLE_EQ(h.Quantile(q), 0.0371) << "q=" << q;
  }
}

TEST(HistogramTest, AllEqualIsExact) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Observe(2.5);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.5);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 2.5);
}

TEST(HistogramTest, OverflowBucketClampsToMax) {
  Histogram h;
  // Past the last octave (2^36 s): everything lands in the overflow bucket
  // whose upper edge is +inf, so only the max clamp keeps answers finite.
  // All ranks inside that one bucket collapse to max — exact at the top
  // quantiles, conservative below.
  const double big = std::ldexp(1.0, 40);
  h.Observe(big);
  h.Observe(2.0 * big);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 2.0 * big);
  EXPECT_DOUBLE_EQ(h.Quantile(0.01), 2.0 * big);
  // With a single overflow observation the max clamp makes it exact.
  Histogram one;
  one.Observe(big);
  EXPECT_DOUBLE_EQ(one.Quantile(0.5), big);
}

TEST(HistogramTest, UnderflowAndNonPositiveLandInFirstBucket) {
  Histogram h;
  h.Observe(0.0);
  h.Observe(-3.0);
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.bucket_count(0), 3u);
}

TEST(HistogramTest, QuantilesTrackSortedVectorOracle) {
  std::mt19937_64 rng(20260808);
  // Log-uniform latencies across nine decades — the shape the serving and
  // storage paths actually observe.
  std::uniform_real_distribution<double> exp_dist(-7.0, 2.0);
  Histogram h;
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = std::pow(10.0, exp_dist(rng));
    values.push_back(v);
    h.Observe(v);
  }
  for (double q : {0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 1.0}) {
    ExpectQuantileWithinBucketBound(h, values, q);
  }
  const double sum = h.sum();
  double expected_sum = 0.0;
  for (double v : values) expected_sum += v;
  EXPECT_NEAR(sum, expected_sum, 1e-6 * expected_sum);
}

TEST(HistogramTest, ConcurrentObserversLoseNothing) {
  // TSan hammer: the Observe path (bucket add, count add, sum/min/max CAS)
  // must be race-free and drop no observation.
  Histogram h;
  Counter c;
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &c, &g, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(1e-3 * (1 + (i + t) % 7));
        c.Increment();
        g.Add(1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 7e-3);
  std::uint64_t bucket_sum = 0;
  for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    bucket_sum += h.bucket_count(i);
  }
  EXPECT_EQ(bucket_sum, h.count());
}

TEST(MetricsRegistryTest, SameNameAndLabelsReturnsSameHandle) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("requests_total", "help", "path=\"a\"");
  Counter* b = reg.GetCounter("requests_total", "help", "path=\"a\"");
  Counter* other = reg.GetCounter("requests_total", "help", "path=\"b\"");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
}

TEST(MetricsRegistryTest, KindMismatchYieldsDetachedHandle) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("mixed_up", "as counter");
  // Same name as a gauge: the caller gets a usable handle that simply is
  // not wired into the family (an instrumentation typo must not crash).
  Gauge* g = reg.GetGauge("mixed_up", "as gauge");
  g->Set(5.0);
  c->Increment();
  EXPECT_EQ(c->value(), 1u);
  const std::string text = reg.RenderPrometheusText();
  EXPECT_NE(text.find("# TYPE mixed_up counter"), std::string::npos);
  EXPECT_EQ(text.find("mixed_up 5"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusTextGolden) {
  MetricsRegistry reg;
  reg.GetCounter("app_requests_total", "Requests served", "tenant=\"7\"")
      ->Increment(3);
  reg.GetGauge("app_queue_depth", "Requests waiting")->Set(2.0);
  Histogram* h = reg.GetHistogram("app_latency_seconds", "Request latency");
  h->Observe(0.5);   // Bucket upper edge 0.625.
  h->Observe(0.5);
  h->Observe(3.0);   // Bucket (frac 0.75, exp 2): upper edge 3.5.
  const std::string expected =
      "# HELP app_latency_seconds Request latency\n"
      "# TYPE app_latency_seconds histogram\n"
      "app_latency_seconds_bucket{le=\"0.625\"} 2\n"
      "app_latency_seconds_bucket{le=\"3.5\"} 3\n"
      "app_latency_seconds_bucket{le=\"+Inf\"} 3\n"
      "app_latency_seconds_sum 4\n"
      "app_latency_seconds_count 3\n"
      "# HELP app_queue_depth Requests waiting\n"
      "# TYPE app_queue_depth gauge\n"
      "app_queue_depth 2\n"
      "# HELP app_requests_total Requests served\n"
      "# TYPE app_requests_total counter\n"
      "app_requests_total{tenant=\"7\"} 3\n";
  EXPECT_EQ(reg.RenderPrometheusText(), expected);
}

TEST(MetricsRegistryTest, RenderSortsSeriesWithinFamily) {
  MetricsRegistry reg;
  reg.GetCounter("z_total", "zs", "k=\"b\"")->Increment(2);
  reg.GetCounter("z_total", "zs", "k=\"a\"")->Increment(1);
  const std::string text = reg.RenderPrometheusText();
  const std::size_t a = text.find("z_total{k=\"a\"} 1");
  const std::size_t b = text.find("z_total{k=\"b\"} 2");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
}

TEST(MetricsRegistryTest, GlobalRegistryCarriesLibraryFamilies) {
  // The library's instrumentation points register lazily; touching the
  // global here only proves the singleton is stable across calls.
  MetricsRegistry& a = MetricsRegistry::Global();
  MetricsRegistry& b = MetricsRegistry::Global();
  EXPECT_EQ(&a, &b);
}

TEST(ScopedLatencyTest, ObservesEnclosingScopeOnce) {
  if constexpr (!kMetricsEnabled) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  Histogram h;
  { ScopedLatency probe(&h); }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max(), 0.0);
}

TEST(HistogramTest, BucketEdgesAreMonotone) {
  double prev = 0.0;
  for (std::size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
    const double upper = Histogram::BucketUpper(i);
    EXPECT_GT(upper, prev) << "bucket " << i;
    prev = upper;
  }
  EXPECT_TRUE(std::isinf(Histogram::BucketUpper(Histogram::kNumBuckets - 1)));
}

TEST(HistogramTest, BucketIndexMatchesEdges) {
  // Every observed value must land in a bucket whose (lower, upper] range
  // contains it: v <= upper(bucket) and v > upper(bucket - 1).
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> exp_dist(-8.0, 10.0);
  for (int i = 0; i < 5000; ++i) {
    const double v = std::pow(2.0, exp_dist(rng));
    const std::size_t idx = Histogram::BucketIndex(v);
    EXPECT_LE(v, Histogram::BucketUpper(idx) * (1.0 + 1e-12));
    if (idx > 0) {
      EXPECT_GT(v, Histogram::BucketUpper(idx - 1) * (1.0 - 1e-12));
    }
  }
}

}  // namespace
}  // namespace topkpkg::obs
