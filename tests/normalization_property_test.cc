// Property sweeps for the Sec. 2 normalization contract: under any dataset,
// profile and package-size cap, every package's normalized aggregate vector
// lies in [0, 1]^m, and utilities are bounded by Σ|w_f|.

#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "topkpkg/common/random.h"
#include "topkpkg/data/generators.h"
#include "topkpkg/model/package.h"
#include "topkpkg/pref/preference.h"

namespace topkpkg::model {
namespace {

class NormalizationSweep
    : public ::testing::TestWithParam<
          std::tuple<const char*, int, data::SyntheticKind, int>> {};

TEST_P(NormalizationSweep, PackageVectorsInUnitBox) {
  auto [spec, phi, kind, seed] = GetParam();
  auto profile = std::move(Profile::Parse(spec)).value();
  auto table = std::move(data::GenerateSynthetic(
      kind, 60, profile.num_features(), static_cast<uint64_t>(seed)))
      .value();
  PackageEvaluator ev(&table, &profile, static_cast<std::size_t>(phi));
  Rng rng(static_cast<uint64_t>(seed) + 77);
  for (int trial = 0; trial < 50; ++trial) {
    Package p = pref::RandomPackage(table.num_items(),
                                    static_cast<std::size_t>(phi), rng);
    Vec v = ev.FeatureVector(p);
    for (std::size_t f = 0; f < v.size(); ++f) {
      EXPECT_GE(v[f], 0.0) << spec << " phi=" << phi << " f=" << f;
      EXPECT_LE(v[f], 1.0 + 1e-12) << spec << " phi=" << phi << " f=" << f
                                   << " pkg=" << p.Key();
    }
  }
}

TEST_P(NormalizationSweep, UtilityBoundedByWeightMass) {
  auto [spec, phi, kind, seed] = GetParam();
  auto profile = std::move(Profile::Parse(spec)).value();
  auto table = std::move(data::GenerateSynthetic(
      kind, 60, profile.num_features(), static_cast<uint64_t>(seed)))
      .value();
  PackageEvaluator ev(&table, &profile, static_cast<std::size_t>(phi));
  Rng rng(static_cast<uint64_t>(seed) + 99);
  for (int trial = 0; trial < 30; ++trial) {
    Vec w = rng.UniformVector(profile.num_features(), -1.0, 1.0);
    double mass = 0.0;
    for (double x : w) mass += std::abs(x);
    Package p = pref::RandomPackage(table.num_items(),
                                    static_cast<std::size_t>(phi), rng);
    double u = ev.Utility(p, w);
    EXPECT_LE(std::abs(u), mass + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesAndData, NormalizationSweep,
    ::testing::Combine(
        ::testing::Values("sum,avg", "min,max,sum", "avg,avg,avg",
                          "sum,null,min"),
        ::testing::Values(1, 3, 6),
        ::testing::Values(data::SyntheticKind::kUniform,
                          data::SyntheticKind::kPowerLaw,
                          data::SyntheticKind::kAntiCorrelated),
        ::testing::Values(1, 2)));

TEST(NormalizationTest, SumNormalizerMonotoneInPhi) {
  // A larger package-size cap can only raise the achievable sum, so the sum
  // scale grows (weakly) with φ, and normalized values shrink.
  auto table = std::move(data::GenerateUniform(40, 1, 5)).value();
  auto profile = std::move(Profile::Parse("sum")).value();
  double prev = 0.0;
  for (std::size_t phi = 1; phi <= 8; ++phi) {
    Normalizer norm = ComputeNormalizer(table, profile, phi);
    EXPECT_GE(norm.scale[0], prev);
    prev = norm.scale[0];
  }
}

TEST(NormalizationTest, SingletonOfBestItemHitsOne) {
  // The item with the max value achieves normalized 1.0 under max/avg/min.
  auto table =
      std::move(model::ItemTable::Create({{2.0}, {5.0}, {3.0}})).value();
  for (const char* spec : {"max", "avg", "min"}) {
    auto profile = std::move(Profile::Parse(spec)).value();
    PackageEvaluator ev(&table, &profile, 1);
    Vec v = ev.FeatureVector(Package::Of({1}));
    EXPECT_NEAR(v[0], 1.0, 1e-12) << spec;
  }
}

TEST(NormalizationTest, TopPhiPackageHitsOneForSum) {
  auto table =
      std::move(model::ItemTable::Create({{2.0}, {5.0}, {3.0}, {1.0}}))
          .value();
  auto profile = std::move(Profile::Parse("sum")).value();
  PackageEvaluator ev(&table, &profile, 2);
  // Best size-2 sum = 5 + 3; the normalizer divides by exactly that.
  Vec v = ev.FeatureVector(Package::Of({1, 2}));
  EXPECT_NEAR(v[0], 1.0, 1e-12);
}

// Preferences derived from normalized vectors are scale-free: multiplying
// all raw item values of a feature by a constant must not change any
// preference direction.
TEST(NormalizationTest, PreferencesInvariantToFeatureRescaling) {
  Rng rng(9);
  std::vector<Vec> rows;
  for (int i = 0; i < 12; ++i) rows.push_back(rng.UniformVector(2, 0.1, 1.0));
  std::vector<Vec> scaled = rows;
  for (auto& r : scaled) r[0] *= 37.5;

  auto t1 = std::move(model::ItemTable::Create(rows)).value();
  auto t2 = std::move(model::ItemTable::Create(scaled)).value();
  auto profile = std::move(Profile::Parse("sum,avg")).value();
  PackageEvaluator e1(&t1, &profile, 3);
  PackageEvaluator e2(&t2, &profile, 3);
  for (int trial = 0; trial < 40; ++trial) {
    Package a = pref::RandomPackage(12, 3, rng);
    Package b = pref::RandomPackage(12, 3, rng);
    Vec w = rng.UniformVector(2, -1.0, 1.0);
    double d1 = e1.Utility(a, w) - e1.Utility(b, w);
    double d2 = e2.Utility(a, w) - e2.Utility(b, w);
    EXPECT_NEAR(d1, d2, 1e-9);
  }
}

}  // namespace
}  // namespace topkpkg::model
