// Checkpoint → kill → Restore → RunRound round trips: a restored session
// must produce bit-identical recommendations to the uninterrupted one AND
// resume *incrementally* — same SampleIds, warm top-list cache, survivors
// reused — instead of paying a cold full redraw.

#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "topkpkg/common/serde.h"
#include "topkpkg/data/generators.h"
#include "topkpkg/recsys/recommender.h"
#include "topkpkg/storage/codec.h"
#include "topkpkg/storage/session_store.h"

namespace topkpkg::recsys {
namespace {

std::string TempStorePath(const std::string& name) {
  std::string path = ::testing::TempDir() + "topkpkg_ckpt_" + name + "_" +
                     std::to_string(::getpid()) + ".tkps";
  std::filesystem::remove_all(path);
  return path;
}

class CheckpointFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<model::ItemTable>(
        std::move(data::GenerateUniform(40, 3, 7)).value());
    profile_ = std::make_unique<model::Profile>(
        std::move(model::Profile::Parse("sum,avg,min")).value());
    evaluator_ = std::make_unique<model::PackageEvaluator>(table_.get(),
                                                           profile_.get(), 3);
    Rng rng(8);
    prior_ = std::make_unique<prob::GaussianMixture>(
        prob::GaussianMixture::Random(3, 2, 0.5, rng));
  }

  RecommenderOptions DefaultOptions() const {
    RecommenderOptions opts;
    opts.num_recommended = 3;
    opts.num_random = 3;
    opts.num_samples = 60;
    opts.ranking.k = 3;
    opts.ranking.sigma = 3;
    return opts;
  }

  static void ExpectSameRound(const RoundLog& a, const RoundLog& b) {
    EXPECT_EQ(a.top_k, b.top_k);
    EXPECT_EQ(a.presented, b.presented);
    EXPECT_EQ(a.clicked, b.clicked);
    EXPECT_EQ(a.top_k_overlap, b.top_k_overlap);
    EXPECT_EQ(a.samples_reused, b.samples_reused);
    EXPECT_EQ(a.samples_resampled, b.samples_resampled);
    EXPECT_EQ(a.searches_skipped, b.searches_skipped);
  }

  std::unique_ptr<model::ItemTable> table_;
  std::unique_ptr<model::Profile> profile_;
  std::unique_ptr<model::PackageEvaluator> evaluator_;
  std::unique_ptr<prob::GaussianMixture> prior_;
};

TEST_F(CheckpointFixture, RestoredSessionResumesBitIdenticallyAndWarm) {
  const std::string path = TempStorePath("roundtrip");
  SimulatedUser user({0.8, 0.4, -0.2});

  // The uninterrupted session: 3 rounds, checkpoint, 2 more rounds.
  PackageRecommender original(evaluator_.get(), prior_.get(),
                              DefaultOptions(), /*seed=*/11);
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(original.RunRound(user).ok());
  }
  {
    auto store = storage::SessionStore::Open(path);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(original.Checkpoint(*store, /*session_id=*/42).ok());
    // `store` closes here — the "kill".
  }
  std::set<sampling::SampleId> checkpoint_ids;
  for (std::size_t i = 0; i < original.pool().size(); ++i) {
    checkpoint_ids.insert(original.pool().id(i));
  }
  std::vector<RoundLog> want;
  for (int round = 0; round < 2; ++round) {
    auto log = original.RunRound(user);
    ASSERT_TRUE(log.ok()) << log.status();
    want.push_back(*log);
  }

  // The restored session: fresh store handle, fresh recommender (same
  // construction), Restore, same 2 rounds.
  auto store = storage::SessionStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status();
  PackageRecommender restored(evaluator_.get(), prior_.get(),
                              DefaultOptions(), /*seed=*/999);  // Seed is
  // irrelevant: Restore overwrites the RNG stream position.
  ASSERT_TRUE(restored.Restore(*store, 42).ok());

  // Restored identity: the full checkpoint-time pool and session history.
  EXPECT_EQ(restored.pool().size(), DefaultOptions().num_samples);
  EXPECT_EQ(restored.current_top_k().size(), 3u);
  EXPECT_EQ(restored.round_history().size(), 3u);

  for (int round = 0; round < 2; ++round) {
    auto log = restored.RunRound(user);
    ASSERT_TRUE(log.ok()) << log.status();
    ExpectSameRound(want[static_cast<std::size_t>(round)], *log);
    if (round == 0) {
      // The resumed round is incremental, not a cold redraw: survivors are
      // reused and cached top lists are served.
      EXPECT_GT(log->samples_reused, 0u);
      EXPECT_GT(log->searches_skipped, 0u);
      EXPECT_LT(log->samples_resampled, restored.pool().size());
    }
  }
  // Both sessions end in the same place. Sample *content* is bit-identical
  // throughout; identities match exactly for checkpoint-time survivors
  // (fresh post-restore draws mint new ids — in a real restart they would
  // continue right after the restored maximum, but inside one test process
  // the shared mint counter has already advanced past the original run's).
  EXPECT_EQ(original.current_top_k(), restored.current_top_k());
  ASSERT_EQ(original.pool().size(), restored.pool().size());
  for (std::size_t i = 0; i < original.pool().size(); ++i) {
    if (checkpoint_ids.count(original.pool().id(i)) > 0) {
      EXPECT_EQ(original.pool().id(i), restored.pool().id(i));
    }
    EXPECT_EQ(original.pool().sample(i).w, restored.pool().sample(i).w);
    EXPECT_EQ(original.pool().sample(i).weight,
              restored.pool().sample(i).weight);
  }
}

TEST_F(CheckpointFixture, SampleIdsSurviveRestartWithoutCollisions) {
  const std::string path = TempStorePath("mintfloor");
  SimulatedUser user({0.8, 0.4, -0.2});
  PackageRecommender original(evaluator_.get(), prior_.get(),
                              DefaultOptions(), 11);
  ASSERT_TRUE(original.RunRound(user).ok());
  std::vector<sampling::SampleId> ids;
  for (std::size_t i = 0; i < original.pool().size(); ++i) {
    ids.push_back(original.pool().id(i));
  }
  {
    auto store = storage::SessionStore::Open(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(original.Checkpoint(*store, 1).ok());
  }
  auto store = storage::SessionStore::Open(path);
  ASSERT_TRUE(store.ok());
  PackageRecommender restored(evaluator_.get(), prior_.get(),
                              DefaultOptions(), 11);
  ASSERT_TRUE(restored.Restore(*store, 1).ok());
  sampling::SampleId max_restored = 0;
  ASSERT_EQ(restored.pool().size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(restored.pool().id(i), ids[i]);
    max_restored = std::max(max_restored, ids[i]);
  }
  // Ids minted after the restore can never collide with restored ones.
  sampling::SamplePool fresh_pool;
  fresh_pool.Append({sampling::WeightedSample{{0.0, 0.0, 0.0}, 1.0, 0}});
  EXPECT_GT(fresh_pool.id(0), max_restored);
}

TEST_F(CheckpointFixture, RestoreRejectsMismatchedConfiguration) {
  const std::string path = TempStorePath("config");
  SimulatedUser user({0.8, 0.4, -0.2});
  PackageRecommender original(evaluator_.get(), prior_.get(),
                              DefaultOptions(), 11);
  ASSERT_TRUE(original.RunRound(user).ok());
  auto store = storage::SessionStore::Open(path);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(original.Checkpoint(*store, 7).ok());

  RecommenderOptions other = DefaultOptions();
  other.num_samples = 61;  // Any semantic knob disagreeing must reject.
  PackageRecommender mismatched(evaluator_.get(), prior_.get(), other, 11);
  EXPECT_EQ(mismatched.Restore(*store, 7).code(),
            StatusCode::kInvalidArgument);
  // And an absent session is NotFound, not a crash.
  PackageRecommender fresh(evaluator_.get(), prior_.get(), DefaultOptions(),
                           11);
  EXPECT_EQ(fresh.Restore(*store, 12345).code(), StatusCode::kNotFound);
}

TEST_F(CheckpointFixture, TornCheckpointFallsBackToPreviousGeneration) {
  const std::string path = TempStorePath("torn");
  SimulatedUser user({0.8, 0.4, -0.2});
  PackageRecommender original(evaluator_.get(), prior_.get(),
                              DefaultOptions(), 11);
  ASSERT_TRUE(original.RunRound(user).ok());
  auto store = storage::SessionStore::Open(path);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(original.Checkpoint(*store, 7).ok());  // seq 1, odd slot.
  ASSERT_TRUE(original.RunRound(user).ok());
  ASSERT_TRUE(original.Checkpoint(*store, 7).ok());  // seq 2, even slot.
  auto want = original.RunRound(user);
  ASSERT_TRUE(want.ok());

  // Simulate a crash in the middle of checkpoint #3: some seq-3 records
  // land in the odd slot (the one generation 1 used), the meta record
  // never commits. The committed generation 2 lives in the even slot and
  // must restore untouched.
  ByteWriter wrap;
  wrap.PutU64(3);
  ASSERT_TRUE(store
                  ->Put(7, storage::GenSlotKind(storage::kKindSamplePool, 3),
                        wrap.bytes() +
                            storage::EncodeSamplePool(original.pool()))
                  .ok());
  PackageRecommender restored(evaluator_.get(), prior_.get(),
                              DefaultOptions(), 11);
  ASSERT_TRUE(restored.Restore(*store, 7).ok());
  auto got = restored.RunRound(user);
  ASSERT_TRUE(got.ok());
  ExpectSameRound(*want, *got);

  // A wrong-sequence record in the *committed* slot is not a crash shape
  // the checkpoint protocol produces — that store is inconsistent and must
  // be refused.
  ByteWriter bad;
  bad.PutU64(99);
  ASSERT_TRUE(store
                  ->Put(7, storage::GenSlotKind(storage::kKindSamplePool, 2),
                        bad.bytes() +
                            storage::EncodeSamplePool(original.pool()))
                  .ok());
  PackageRecommender refused(evaluator_.get(), prior_.get(),
                             DefaultOptions(), 11);
  EXPECT_EQ(refused.Restore(*store, 7).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CheckpointFixture, InterleavedSessionsCheckpointAndRestore) {
  const std::string path = TempStorePath("multisession");
  SimulatedUser user_a({0.8, 0.4, -0.2});
  SimulatedUser user_b({-0.3, 0.9, 0.1});
  PackageRecommender a(evaluator_.get(), prior_.get(), DefaultOptions(), 11);
  PackageRecommender b(evaluator_.get(), prior_.get(), DefaultOptions(), 77);

  auto store = storage::SessionStore::Open(path);
  ASSERT_TRUE(store.ok());
  // Interleaved rounds and checkpoints of two sessions into one store.
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(a.RunRound(user_a).ok());
    ASSERT_TRUE(a.Checkpoint(*store, 1).ok());
    ASSERT_TRUE(b.RunRound(user_b).ok());
    ASSERT_TRUE(b.Checkpoint(*store, 2).ok());
  }
  auto next_a = a.RunRound(user_a);
  auto next_b = b.RunRound(user_b);
  ASSERT_TRUE(next_a.ok());
  ASSERT_TRUE(next_b.ok());

  // Release the first handle (and its writer lock) before reopening.
  store = Status::Internal("released");
  auto reopened = storage::SessionStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  PackageRecommender ra(evaluator_.get(), prior_.get(), DefaultOptions(), 0);
  PackageRecommender rb(evaluator_.get(), prior_.get(), DefaultOptions(), 0);
  ASSERT_TRUE(ra.Restore(*reopened, 1).ok());
  ASSERT_TRUE(rb.Restore(*reopened, 2).ok());
  auto got_a = ra.RunRound(user_a);
  auto got_b = rb.RunRound(user_b);
  ASSERT_TRUE(got_a.ok());
  ASSERT_TRUE(got_b.ok());
  ExpectSameRound(*next_a, *got_a);
  ExpectSameRound(*next_b, *got_b);
  EXPECT_GT(got_a->samples_reused, 0u);
  EXPECT_GT(got_b->samples_reused, 0u);
  EXPECT_GT(got_a->searches_skipped, 0u);
  EXPECT_GT(got_b->searches_skipped, 0u);
}

// Compaction across many checkpoints of a live session keeps only the
// newest generation; the restored state is unaffected.
TEST_F(CheckpointFixture, CompactionPreservesTheLatestCheckpoint) {
  const std::string path = TempStorePath("compact");
  SimulatedUser user({0.8, 0.4, -0.2});
  PackageRecommender original(evaluator_.get(), prior_.get(),
                              DefaultOptions(), 11);
  auto store = storage::SessionStore::Open(path);
  ASSERT_TRUE(store.ok());
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(original.RunRound(user).ok());
    ASSERT_TRUE(original.Checkpoint(*store, 3).ok());
  }
  EXPECT_GT(store->stats().dead_bytes, 0u);
  const auto before = store->stats().file_bytes;
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_LT(store->stats().file_bytes, before);
  EXPECT_EQ(store->stats().dead_bytes, 0u);

  auto want = original.RunRound(user);
  ASSERT_TRUE(want.ok());
  PackageRecommender restored(evaluator_.get(), prior_.get(),
                              DefaultOptions(), 0);
  ASSERT_TRUE(restored.Restore(*store, 3).ok());
  auto got = restored.RunRound(user);
  ASSERT_TRUE(got.ok());
  ExpectSameRound(*want, *got);
}

}  // namespace
}  // namespace topkpkg::recsys
