#include "topkpkg/baseline/skyline.h"

#include <memory>

#include <gtest/gtest.h>

#include "topkpkg/data/generators.h"
#include "topkpkg/model/profile.h"

namespace topkpkg::baseline {
namespace {

TEST(DominatesTest, DirectionsRespected) {
  std::vector<bool> max_max = {true, true};
  EXPECT_TRUE(Dominates({0.9, 0.5}, {0.8, 0.5}, max_max));
  EXPECT_FALSE(Dominates({0.9, 0.4}, {0.8, 0.5}, max_max));
  EXPECT_FALSE(Dominates({0.8, 0.5}, {0.8, 0.5}, max_max));  // Equal: no.
  std::vector<bool> min_max = {false, true};
  EXPECT_TRUE(Dominates({0.1, 0.9}, {0.2, 0.8}, min_max));  // Cheaper+better.
}

TEST(SkylineItemsTest, SimpleTwoDimensional) {
  auto t = model::ItemTable::Create(
      {{1.0, 1.0}, {2.0, 2.0}, {1.5, 0.5}, {0.5, 1.5}});
  ASSERT_TRUE(t.ok());
  auto sky = SkylineItems(*t, {true, true});
  // (2,2) dominates everything else.
  ASSERT_EQ(sky.size(), 1u);
  EXPECT_EQ(sky[0], 1u);
}

TEST(SkylineItemsTest, AntiCorrelatedKeepsMany) {
  auto anti = std::move(data::GenerateAntiCorrelated(500, 2, 3)).value();
  auto cor = std::move(data::GenerateCorrelated(500, 2, 3)).value();
  auto sky_anti = SkylineItems(anti, {true, true});
  auto sky_cor = SkylineItems(cor, {true, true});
  // The classic skyline result: anti-correlated data blows up the skyline.
  EXPECT_GT(sky_anti.size(), sky_cor.size());
  EXPECT_GT(sky_anti.size(), 5u);
}

TEST(SkylineItemsTest, SkylineMembersAreUndominated) {
  auto t = std::move(data::GenerateUniform(200, 3, 5)).value();
  std::vector<bool> dirs = {true, false, true};
  auto sky = SkylineItems(t, dirs);
  ASSERT_FALSE(sky.empty());
  for (model::ItemId s : sky) {
    for (std::size_t i = 0; i < t.num_items(); ++i) {
      EXPECT_FALSE(Dominates(t.Row(static_cast<model::ItemId>(i)),
                             t.Row(s), dirs))
          << "skyline item " << s << " dominated by " << i;
    }
  }
}

class SkylinePackagesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<model::ItemTable>(
        std::move(data::GenerateAntiCorrelated(12, 2, 7)).value());
    profile_ = std::make_unique<model::Profile>(
        std::move(model::Profile::Parse("sum,avg")).value());
    evaluator_ = std::make_unique<model::PackageEvaluator>(table_.get(),
                                                           profile_.get(), 2);
  }

  std::unique_ptr<model::ItemTable> table_;
  std::unique_ptr<model::Profile> profile_;
  std::unique_ptr<model::PackageEvaluator> evaluator_;
};

TEST_F(SkylinePackagesTest, AllResultsUndominatedAndFixedSize) {
  auto sky = SkylinePackages(*evaluator_, 2, {true, true});
  ASSERT_TRUE(sky.ok()) << sky.status();
  ASSERT_FALSE(sky->empty());
  for (const auto& p : *sky) EXPECT_EQ(p.size(), 2u);
  // Pairwise non-domination.
  for (const auto& a : *sky) {
    Vec va = evaluator_->FeatureVector(a);
    for (const auto& b : *sky) {
      if (a == b) continue;
      Vec vb = evaluator_->FeatureVector(b);
      EXPECT_FALSE(Dominates(va, vb, {true, true}));
    }
  }
}

TEST_F(SkylinePackagesTest, EveryNonSkylinePackageIsDominated) {
  auto sky = SkylinePackages(*evaluator_, 2, {true, true});
  ASSERT_TRUE(sky.ok());
  // Spot-check: a package not in the skyline must be dominated by some
  // skyline package.
  for (model::ItemId i = 0; i < 12; ++i) {
    for (model::ItemId j = i + 1; j < 12; ++j) {
      model::Package p = model::Package::Of({i, j});
      bool in_sky = false;
      for (const auto& s : *sky) {
        if (s == p) {
          in_sky = true;
          break;
        }
      }
      if (in_sky) continue;
      Vec vp = evaluator_->FeatureVector(p);
      bool dominated = false;
      for (const auto& s : *sky) {
        if (Dominates(evaluator_->FeatureVector(s), vp, {true, true})) {
          dominated = true;
          break;
        }
      }
      EXPECT_TRUE(dominated) << p.Key();
    }
  }
}

TEST_F(SkylinePackagesTest, ValidatesArguments) {
  EXPECT_FALSE(SkylinePackages(*evaluator_, 0, {true, true}).ok());
  EXPECT_FALSE(SkylinePackages(*evaluator_, 2, {true}).ok());
  EXPECT_FALSE(SkylinePackages(*evaluator_, 13, {true, true}).ok());
}

TEST_F(SkylinePackagesTest, RefusesHugeCandidateSpaces) {
  auto big = std::move(data::GenerateUniform(5000, 2, 8)).value();
  model::PackageEvaluator ev(&big, profile_.get(), 3);
  auto result = SkylinePackages(ev, 3, {true, true}, /*max_packages=*/100000);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace topkpkg::baseline
