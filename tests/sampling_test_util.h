#ifndef TOPKPKG_TESTS_SAMPLING_TEST_UTIL_H_
#define TOPKPKG_TESTS_SAMPLING_TEST_UTIL_H_

// Shared helpers for the sampler tests: random constraint workloads that are
// guaranteed satisfiable (oriented by a hidden weight vector), plus a default
// experimental prior.

#include <vector>

#include "topkpkg/common/random.h"
#include "topkpkg/common/vec.h"
#include "topkpkg/pref/preference.h"
#include "topkpkg/prob/gaussian_mixture.h"

namespace topkpkg::sampling_test {

// `count` random half-space constraints over [0,1]^dim package vectors, each
// satisfied by `hidden` (so the valid polytope contains `hidden`).
inline std::vector<pref::Preference> RandomConstraints(std::size_t count,
                                                       const Vec& hidden,
                                                       Rng& rng) {
  std::vector<pref::Preference> prefs;
  prefs.reserve(count);
  while (prefs.size() < count) {
    Vec a = rng.UniformVector(hidden.size(), 0.0, 1.0);
    Vec b = rng.UniformVector(hidden.size(), 0.0, 1.0);
    double ua = Dot(a, hidden);
    double ub = Dot(b, hidden);
    if (ua == ub) continue;
    if (ua > ub) {
      prefs.push_back(pref::Preference::FromVectors(a, b));
    } else {
      prefs.push_back(pref::Preference::FromVectors(b, a));
    }
  }
  return prefs;
}

// Equal-weight two-component spherical mixture prior centered in the box.
inline prob::GaussianMixture DefaultPrior(std::size_t dim, uint64_t seed) {
  Rng rng(seed);
  return prob::GaussianMixture::Random(dim, 2, 0.5, rng);
}

}  // namespace topkpkg::sampling_test

#endif  // TOPKPKG_TESTS_SAMPLING_TEST_UTIL_H_
