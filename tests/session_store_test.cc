// Crash-recovery property tests for the durable-session storage layer:
// record-log round trips, torn tails at every byte boundary of the final
// record, CRC rejection of flipped payload bits, keydir latest-wins
// semantics, tombstones, segment rolls + hint-file startup, cold-segment
// compaction, fsync-policy accounting, and the single-writer lock.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "topkpkg/storage/hint_file.h"
#include "topkpkg/storage/record_log.h"
#include "topkpkg/storage/session_store.h"

namespace topkpkg::storage {
namespace {

// A fresh path under the test temp dir; any previous leftover (file or
// store directory) is removed.
std::string TempStorePath(const std::string& name) {
  std::string path = ::testing::TempDir() + "topkpkg_" + name + "_" +
                     std::to_string(::getpid()) + ".tkps";
  std::filesystem::remove_all(path);
  return path;
}

std::uint64_t FileSize(const std::string& path) {
  return static_cast<std::uint64_t>(std::filesystem::file_size(path));
}

void TruncateFile(const std::string& path, std::uint64_t size) {
  std::filesystem::resize_file(path, size);
}

void FlipBit(const std::string& path, std::uint64_t byte_offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(byte_offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x40);
  f.seekp(static_cast<std::streamoff>(byte_offset));
  f.write(&c, 1);
}

// Path of segment `id` inside the store directory.
std::string SegPath(const std::string& dir, std::uint64_t id) {
  return dir + "/" + SegmentFileName(id);
}

TEST(RecordLogTest, AppendReplayRoundTrip) {
  const std::string path = TempStorePath("roundtrip");
  std::vector<Record> want;
  {
    auto writer = RecordLogWriter::Open(path);
    ASSERT_TRUE(writer.ok()) << writer.status();
    for (int i = 0; i < 20; ++i) {
      Record rec;
      rec.session_id = static_cast<std::uint64_t>(1 + i % 3);
      rec.kind = static_cast<RecordKind>(1 + i % 5);
      rec.payload = std::string(static_cast<std::size_t>(i * 7), 'a' + i % 26);
      auto offset = writer->Append(rec.session_id, rec.kind, rec.payload);
      ASSERT_TRUE(offset.ok()) << offset.status();
      rec.offset = *offset;
      want.push_back(std::move(rec));
    }
    ASSERT_TRUE(writer->Flush().ok());
  }
  RecordLogReader reader(path);
  std::vector<Record> got;
  ReplayStats stats;
  ASSERT_TRUE(reader
                  .Replay(
                      [&got](const Record& rec) {
                        got.push_back(rec);
                        return Status::OK();
                      },
                      &stats)
                  .ok());
  ASSERT_EQ(got.size(), want.size());
  EXPECT_FALSE(stats.torn_tail);
  EXPECT_EQ(stats.records, want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].session_id, want[i].session_id);
    EXPECT_EQ(got[i].kind, want[i].kind);
    EXPECT_EQ(got[i].payload, want[i].payload);
    EXPECT_EQ(got[i].offset, want[i].offset);
    // Point reads agree with the replay.
    auto point = reader.ReadAt(want[i].offset);
    ASSERT_TRUE(point.ok()) << point.status();
    EXPECT_EQ(point->payload, want[i].payload);
  }
}

// Property: cutting the file anywhere inside the LAST record — any byte of
// its header or payload — must replay the intact prefix and stop cleanly.
TEST(RecordLogTest, TornTailAtEveryByteBoundaryStopsCleanly) {
  const std::string path = TempStorePath("torntail");
  std::uint64_t last_offset = 0;
  {
    auto writer = RecordLogWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 4; ++i) {
      auto off = writer->Append(7, 1, "payload-" + std::to_string(i));
      ASSERT_TRUE(off.ok());
      last_offset = *off;
    }
    ASSERT_TRUE(writer->Flush().ok());
  }
  const std::uint64_t full = FileSize(path);
  for (std::uint64_t cut = last_offset + 1; cut < full; ++cut) {
    const std::string copy = TempStorePath("torntail_cut");
    std::filesystem::copy_file(
        path, copy, std::filesystem::copy_options::overwrite_existing);
    TruncateFile(copy, cut);
    RecordLogReader reader(copy);
    std::size_t seen = 0;
    ReplayStats stats;
    Status st = reader.Replay(
        [&seen](const Record&) {
          ++seen;
          return Status::OK();
        },
        &stats);
    ASSERT_TRUE(st.ok()) << "cut at " << cut << ": " << st;
    EXPECT_EQ(seen, 3u) << "cut at " << cut;
    EXPECT_TRUE(stats.torn_tail) << "cut at " << cut;
    EXPECT_EQ(stats.tail_offset, last_offset) << "cut at " << cut;
  }
}

TEST(RecordLogTest, FlippedPayloadBitIsRejectedByCrc) {
  const std::string path = TempStorePath("bitflip");
  std::uint64_t second_offset = 0;
  {
    auto writer = RecordLogWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(1, 1, "first-record-payload").ok());
    auto off = writer->Append(1, 2, "second-record-payload");
    ASSERT_TRUE(off.ok());
    second_offset = *off;
    ASSERT_TRUE(writer->Flush().ok());
  }
  // Flip one bit inside the second record's payload.
  FlipBit(path, second_offset + kRecordHeaderSize + 3);

  RecordLogReader reader(path);
  // Strict replay: hard error, first record still delivered.
  std::size_t seen = 0;
  Status st = reader.Replay([&seen](const Record&) {
    ++seen;
    return Status::OK();
  });
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(seen, 1u);
  // Point read of the damaged record: rejected.
  EXPECT_EQ(reader.ReadAt(second_offset).status().code(),
            StatusCode::kInternal);
  // Scan mode (fsck): counted, skipped, replay continues to a clean end.
  ReplayStats stats;
  seen = 0;
  st = reader.Replay(
      [&seen](const Record&) {
        ++seen;
        return Status::OK();
      },
      &stats, /*strict=*/false);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(seen, 1u);
  EXPECT_EQ(stats.crc_failures, 1u);
  EXPECT_FALSE(stats.torn_tail);
}

TEST(SessionStoreTest, FlippedBitInSegmentFailsOpen) {
  const std::string path = TempStorePath("storebitflip");
  std::uint64_t second_offset = 0;
  {
    auto store = SessionStore::Open(path);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(store->Put(1, 1, "first-record-payload").ok());
    ASSERT_TRUE(store->Put(1, 2, "second-record-payload").ok());
    second_offset = kFileHeaderSize + kRecordHeaderSize +
                    std::string("first-record-payload").size();
  }
  FlipBit(SegPath(path, 1), second_offset + kRecordHeaderSize + 3);
  // Mid-log damage is corruption, not a crash shape: the open refuses it.
  EXPECT_EQ(SessionStore::Open(path).status().code(), StatusCode::kInternal);
}

TEST(SessionStoreTest, OpenRejectsLegacySingleFileStore) {
  const std::string path = TempStorePath("legacy");
  {
    auto writer = RecordLogWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->Append(1, 1, "old-format").ok());
  }
  EXPECT_EQ(SessionStore::Open(path).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SessionStoreTest, SecondWriterIsRejectedWhileFirstHoldsTheLock) {
  const std::string path = TempStorePath("lock");
  auto store = SessionStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store->Put(1, 1, "held").ok());
  // flock is per open file description, so even a same-process second open
  // must bounce.
  auto second = SessionStore::Open(path);
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  // Dropping the first handle releases the lock.
  store = Status::Internal("released");
  auto third = SessionStore::Open(path);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_EQ(*third->Get(1, 1), "held");
}

TEST(SessionStoreTest, KeydirLatestWinsAndTombstones) {
  const std::string path = TempStorePath("keydir");
  {
    auto store = SessionStore::Open(path);
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(store->Put(1, 1, "v1").ok());
    ASSERT_TRUE(store->Put(1, 1, "v2").ok());
    ASSERT_TRUE(store->Put(1, 2, "other-kind").ok());
    ASSERT_TRUE(store->Put(2, 1, "session-2").ok());

    auto got = store->Get(1, 1);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "v2");
    EXPECT_TRUE(store->Contains(1, 2));
    EXPECT_EQ(store->Get(1, 3).status().code(), StatusCode::kNotFound);
    EXPECT_EQ(store->SessionIds(), (std::vector<std::uint64_t>{1, 2}));
    EXPECT_EQ(store->KindsOf(1), (std::vector<RecordKind>{1, 2}));

    ASSERT_TRUE(store->Delete(1, 1).ok());
    EXPECT_EQ(store->Get(1, 1).status().code(), StatusCode::kNotFound);
    ASSERT_TRUE(store->Put(1, 1, "v3").ok());
    EXPECT_EQ(*store->Get(1, 1), "v3");

    ASSERT_TRUE(store->DeleteSession(1).ok());
    EXPECT_TRUE(store->SessionIds() == std::vector<std::uint64_t>{2});
  }
  // Everything above replays to the same view.
  auto reopened = SessionStore::Open(path);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->SessionIds(), std::vector<std::uint64_t>{2});
  EXPECT_EQ(*reopened->Get(2, 1), "session-2");
  EXPECT_FALSE(reopened->Contains(1, 1));
  // Reserved kinds are rejected at the API.
  EXPECT_EQ(reopened->Put(1, kTombstoneBit | 1, "x").code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionStoreTest, OpenTruncatesTornTailAndKeepsAppending) {
  const std::string path = TempStorePath("recover");
  {
    auto store = SessionStore::Open(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Put(1, 1, "committed").ok());
    ASSERT_TRUE(store->Put(1, 2, "torn-away-below").ok());
  }
  // Simulate a crash mid-append of the second record (all records live in
  // the first, still-active segment).
  const std::string seg = SegPath(path, 1);
  TruncateFile(seg, FileSize(seg) - 5);
  {
    auto store = SessionStore::Open(path);
    ASSERT_TRUE(store.ok()) << store.status();
    EXPECT_TRUE(store->stats().recovered_torn_tail);
    EXPECT_EQ(*store->Get(1, 1), "committed");
    EXPECT_FALSE(store->Contains(1, 2));
    // Appending after recovery lands on a clean boundary.
    ASSERT_TRUE(store->Put(1, 2, "rewritten").ok());
  }
  auto store = SessionStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_FALSE(store->stats().recovered_torn_tail);
  EXPECT_EQ(*store->Get(1, 2), "rewritten");
}

TEST(SessionStoreTest, PartialFileHeaderIsStartedOver) {
  // A crash during segment *creation* can leave fewer bytes than the file
  // header; nothing committed, so Open starts the segment over.
  const std::string path = TempStorePath("partialheader");
  std::filesystem::create_directories(path);
  {
    std::ofstream f(SegPath(path, 1), std::ios::binary);
    f.write("TK", 2);
  }
  auto store = SessionStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ(store->keydir_size(), 0u);
  ASSERT_TRUE(store->Put(1, 1, "fresh-start").ok());
  store = Status::Internal("released");
  auto reopened = SessionStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(*reopened->Get(1, 1), "fresh-start");
}

TEST(SessionStoreTest, SegmentRollsAndHintFilesDriveStartup) {
  const std::string path = TempStorePath("segments");
  SessionStoreOptions opts;
  opts.segment_max_bytes = 256;  // Tiny: force frequent rolls.
  opts.auto_compact = false;     // Keep every sealed segment around.
  std::uint64_t rolls = 0;
  {
    auto store = SessionStore::Open(path, opts);
    ASSERT_TRUE(store.ok()) << store.status();
    for (int round = 0; round < 6; ++round) {
      for (std::uint64_t session = 1; session <= 4; ++session) {
        ASSERT_TRUE(store
                        ->Put(session, 1,
                              "s" + std::to_string(session) + "-r" +
                                  std::to_string(round) + std::string(48, 'p'))
                        .ok());
      }
    }
    ASSERT_TRUE(store->DeleteSession(4).ok());
    rolls = store->stats().segment_rolls;
    ASSERT_GT(rolls, 2u);
    EXPECT_EQ(store->stats().segments, rolls + 1);
    EXPECT_EQ(store->active_segment_id(), rolls + 1);
  }
  // Every sealed segment restarts from its hint file, none by scanning.
  auto reopened = SessionStore::Open(path, opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->stats().hint_startup_segments, rolls);
  EXPECT_EQ(reopened->stats().scanned_startup_segments, 0u);
  EXPECT_EQ(reopened->SessionIds(), (std::vector<std::uint64_t>{1, 2, 3}));
  for (std::uint64_t session = 1; session <= 3; ++session) {
    EXPECT_EQ(*reopened->Get(session, 1),
              "s" + std::to_string(session) + "-r5" + std::string(48, 'p'));
  }
  EXPECT_FALSE(reopened->Contains(4, 1));
}

TEST(SessionStoreTest, CorruptHintFallsBackToScanAndHealsItself) {
  const std::string path = TempStorePath("badhint");
  SessionStoreOptions opts;
  opts.segment_max_bytes = 256;
  opts.auto_compact = false;
  {
    auto store = SessionStore::Open(path, opts);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(
          store->Put(1, static_cast<RecordKind>(1 + i % 3),
                     "value-" + std::to_string(i) + std::string(60, 'h'))
              .ok());
    }
    ASSERT_GT(store->stats().segment_rolls, 0u);
  }
  const std::string hint = path + "/" + SegmentHintName(1);
  ASSERT_TRUE(std::filesystem::exists(hint));
  FlipBit(hint, 12);
  {
    // The damaged hint is ignored, the segment scanned, the hint rewritten.
    auto store = SessionStore::Open(path, opts);
    ASSERT_TRUE(store.ok()) << store.status();
    EXPECT_EQ(store->stats().scanned_startup_segments, 1u);
    EXPECT_EQ(*store->Get(1, 3), "value-11" + std::string(60, 'h'));
  }
  auto healed = SessionStore::Open(path, opts);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->stats().scanned_startup_segments, 0u);
}

TEST(SessionStoreTest, CompactionDropsSupersededRecordsAndShrinksFile) {
  const std::string path = TempStorePath("compact");
  SessionStoreOptions opts;
  opts.auto_compact = false;
  std::uint64_t before = 0;
  {
    auto store = SessionStore::Open(path, opts);
    ASSERT_TRUE(store.ok());
    // Multi-checkpoint shape: the same keys rewritten many times.
    for (int round = 0; round < 10; ++round) {
      for (std::uint64_t session = 1; session <= 3; ++session) {
        for (RecordKind kind = 1; kind <= 4; ++kind) {
          ASSERT_TRUE(store
                          ->Put(session, kind,
                                "round-" + std::to_string(round) +
                                    "-payload-" + std::string(64, 'x'))
                          .ok());
        }
      }
    }
    ASSERT_TRUE(store->Delete(3, 4).ok());
    before = store->stats().file_bytes;
    const std::uint64_t dead_before = store->stats().dead_bytes;
    EXPECT_GT(dead_before, 0u);

    ASSERT_TRUE(store->Compact().ok());
    EXPECT_LT(store->stats().file_bytes, before);
    EXPECT_EQ(store->stats().dead_bytes, 0u);
    EXPECT_EQ(store->stats().live_records, store->keydir_size());
    EXPECT_EQ(store->keydir_size(), 3u * 4u - 1u);

    // Every live value survives through the compacted handle.
    for (std::uint64_t session = 1; session <= 3; ++session) {
      for (RecordKind kind = 1; kind <= 4; ++kind) {
        if (session == 3 && kind == 4) {
          EXPECT_FALSE(store->Contains(session, kind));
          continue;
        }
        auto got = store->Get(session, kind);
        ASSERT_TRUE(got.ok()) << got.status();
        EXPECT_EQ(*got, "round-9-payload-" + std::string(64, 'x'));
      }
    }
    // The store keeps appending normally after a compaction.
    ASSERT_TRUE(store->Put(5, 1, "post-compact").ok());
    EXPECT_EQ(*store->Get(5, 1), "post-compact");
  }
  // ... and through a fresh replay of the compacted segments.
  auto reopened = SessionStore::Open(path, opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(reopened->keydir_size(), 12u);
  EXPECT_EQ(*reopened->Get(2, 3), "round-9-payload-" + std::string(64, 'x'));
  EXPECT_EQ(*reopened->Get(5, 1), "post-compact");
}

TEST(SessionStoreTest, AutoCompactionBoundsDeadBytes) {
  const std::string path = TempStorePath("autocompact");
  SessionStoreOptions opts;
  opts.segment_max_bytes = 512;
  opts.compact_dead_ratio = 0.5;
  auto store = SessionStore::Open(path, opts);
  ASSERT_TRUE(store.ok());
  // Rewriting one key over and over makes every sealed segment ~all dead.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store->Put(1, 1, std::string(100, 'a' + i % 26)).ok());
  }
  EXPECT_GT(store->stats().auto_compactions, 0u);
  EXPECT_EQ(store->stats().failed_auto_compactions, 0u);
  // Dead bytes stay bounded instead of growing with the 200 rewrites, and
  // old segment files actually disappear from disk.
  EXPECT_LT(store->stats().segments, 4u);
  EXPECT_LT(store->stats().file_bytes, 4u * 512u + 4096u);
  EXPECT_EQ(*store->Get(1, 1), std::string(100, 'a' + 199 % 26));
}

TEST(SessionStoreTest, FsyncPolicyControlsSyncCadence) {
  {
    SessionStoreOptions opts;
    opts.fsync_policy = FsyncPolicy::kEveryPut;
    auto store = SessionStore::Open(TempStorePath("policy_every"), opts);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(store->Put(1, 1, "v").ok());
    }
    EXPECT_EQ(store->stats().fsyncs, 10u);
  }
  {
    SessionStoreOptions opts;
    opts.fsync_policy = FsyncPolicy::kInterval;
    opts.group_commit_puts = 4;
    auto store = SessionStore::Open(TempStorePath("policy_interval"), opts);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(store->Put(1, 1, "v").ok());
    }
    // Two full group commits; Flush drains the remaining window of two.
    EXPECT_EQ(store->stats().fsyncs, 2u);
    ASSERT_TRUE(store->Flush().ok());
    EXPECT_EQ(store->stats().fsyncs, 3u);
    ASSERT_TRUE(store->Flush().ok());
    EXPECT_EQ(store->stats().fsyncs, 3u);  // Nothing pending: no fsync.
  }
  {
    SessionStoreOptions opts;
    opts.fsync_policy = FsyncPolicy::kNone;
    auto store = SessionStore::Open(TempStorePath("policy_none"), opts);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(store->Put(1, 1, "v").ok());
    }
    ASSERT_TRUE(store->Flush().ok());
    EXPECT_EQ(store->stats().fsyncs, 0u);
    // Explicit Sync works at every policy.
    ASSERT_TRUE(store->Sync().ok());
    EXPECT_EQ(store->stats().fsyncs, 1u);
  }
}

TEST(SessionStoreTest, FlushTimerDrainsAnOpenWindowDeterministically) {
  std::uint64_t now_ms = 1000;
  SessionStoreOptions opts;
  opts.fsync_policy = FsyncPolicy::kInterval;
  opts.group_commit_puts = 100;  // Count alone would never trigger here.
  opts.flush_interval_ms = 50;
  opts.clock_ms = [&now_ms]() { return now_ms; };
  auto store = SessionStore::Open(TempStorePath("flush_timer"), opts);
  ASSERT_TRUE(store.ok());

  // A trickle of puts inside the window: no fsync yet.
  ASSERT_TRUE(store->Put(1, 1, "a").ok());
  now_ms += 20;
  ASSERT_TRUE(store->Put(1, 2, "b").ok());
  EXPECT_EQ(store->stats().fsyncs, 0u);

  // Before the deadline MaybeFlush is a no-op; at the deadline it drains
  // the window with exactly one fsync.
  ASSERT_TRUE(store->MaybeFlush().ok());
  EXPECT_EQ(store->stats().fsyncs, 0u);
  now_ms += 30;  // 50ms since the window opened.
  ASSERT_TRUE(store->MaybeFlush().ok());
  EXPECT_EQ(store->stats().fsyncs, 1u);
  // Drained window: polling again does nothing.
  ASSERT_TRUE(store->MaybeFlush().ok());
  EXPECT_EQ(store->stats().fsyncs, 1u);

  // The next put opens a fresh window with a fresh deadline.
  ASSERT_TRUE(store->Put(1, 3, "c").ok());
  ASSERT_TRUE(store->MaybeFlush().ok());
  EXPECT_EQ(store->stats().fsyncs, 1u);
  now_ms += 50;
  ASSERT_TRUE(store->MaybeFlush().ok());
  EXPECT_EQ(store->stats().fsyncs, 2u);

  // An overdue window is also drained by the mutation path itself: a put
  // landing past the deadline syncs inline without waiting for a poll.
  ASSERT_TRUE(store->Put(1, 4, "d").ok());
  now_ms += 60;
  ASSERT_TRUE(store->Put(1, 5, "e").ok());
  EXPECT_EQ(store->stats().fsyncs, 3u);
}

TEST(SessionStoreTest, FlushTimerDisabledKeepsCountOnlyGroupCommit) {
  std::uint64_t now_ms = 0;
  SessionStoreOptions opts;
  opts.fsync_policy = FsyncPolicy::kInterval;
  opts.group_commit_puts = 4;
  opts.flush_interval_ms = 0;  // Timer off.
  opts.clock_ms = [&now_ms]() { return now_ms; };
  auto store = SessionStore::Open(TempStorePath("flush_timer_off"), opts);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put(1, 1, "a").ok());
  now_ms += 1000000;  // However much time passes...
  ASSERT_TRUE(store->MaybeFlush().ok());
  EXPECT_EQ(store->stats().fsyncs, 0u);  // ...the poll never syncs.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store->Put(1, 1, "b").ok());
  }
  EXPECT_EQ(store->stats().fsyncs, 1u);  // The count path still does.
}

TEST(SessionStoreTest, InterleavedSessionsRestoreIndependently) {
  const std::string path = TempStorePath("interleave");
  {
    auto store = SessionStore::Open(path);
    ASSERT_TRUE(store.ok());
    // Checkpoints from many sessions interleaved in one log.
    for (int round = 0; round < 5; ++round) {
      for (std::uint64_t session = 1; session <= 4; ++session) {
        ASSERT_TRUE(store
                        ->Put(session, 1,
                              "s" + std::to_string(session) + "-r" +
                                  std::to_string(round))
                        .ok());
      }
    }
  }
  auto reopened = SessionStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  for (std::uint64_t session = 1; session <= 4; ++session) {
    auto got = reopened->Get(session, 1);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "s" + std::to_string(session) + "-r4");
  }
}

}  // namespace
}  // namespace topkpkg::storage
