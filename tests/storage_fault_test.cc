// Crash-recovery property tests driven by FaultInjectingEnv: a recording
// run counts every mutating filesystem op a workload performs (appends,
// fsyncs, renames, removes, directory syncs — including those inside
// segment rolls and compactions), then the sweep kills the store at *every*
// one of those failpoints, simulates power loss (dropping unsynced bytes,
// keeping a varying torn tail), reopens, and checks the recovered store
// against a model:
//
//   recovered state == model snapshot j,  durable_floor ≤ j ≤ attempted
//
// where durable_floor is what the FsyncPolicy guarantees (every
// acknowledged op under kEveryPut; the last full group-commit window under
// kInterval; nothing under kNone) and `attempted` includes the op in
// flight at the crash — it may or may not have landed, but nothing outside
// the prefix may appear and no acknowledged-durable op may vanish.
//
// A separate two-process test proves the flock single-writer contract the
// same way a second real writer would hit it.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "topkpkg/storage/fault_env.h"
#include "topkpkg/storage/session_store.h"

namespace topkpkg::storage {
namespace {

using ModelKey = std::pair<std::uint64_t, RecordKind>;
using ModelState = std::map<ModelKey, std::string>;

constexpr int kWorkloadOps = 40;
constexpr int kCompactAtOp = 25;

std::string TempStorePath(const std::string& name) {
  std::string path = ::testing::TempDir() + "topkpkg_fault_" + name + "_" +
                     std::to_string(::getpid()) + ".tkps";
  std::filesystem::remove_all(path);
  return path;
}

SessionStoreOptions SmallSegmentOptions(FsyncPolicy policy, Env* env) {
  SessionStoreOptions opts;
  opts.fsync_policy = policy;
  opts.group_commit_puts = 5;
  opts.segment_max_bytes = 384;  // Tiny: the workload rolls several times.
  opts.compact_dead_ratio = 0.5;
  opts.env = env;
  return opts;
}

// Applies workload step `i` to the model. Step kCompactAtOp is a manual
// Compact — no logical change. Deterministic, overwrite-heavy (so sealed
// segments go mostly dead and auto-compaction fires mid-sweep).
void ApplyModelOp(int i, ModelState& state) {
  const std::uint64_t sid = 1 + static_cast<std::uint64_t>(i % 4);
  if (i == kCompactAtOp) return;
  if (i % 11 == 7) {
    for (auto it = state.lower_bound(ModelKey{sid, 0});
         it != state.end() && it->first.first == sid;) {
      it = state.erase(it);
    }
    return;
  }
  const RecordKind kind = 1 + static_cast<RecordKind>(i % 3);
  if (i % 7 == 3) {
    state.erase(ModelKey{sid, kind});
    return;
  }
  state[ModelKey{sid, kind}] =
      "op-" + std::to_string(i) + "-" +
      std::string(20 + static_cast<std::size_t>(i * 13 % 60), 'a' + i % 26);
}

// Applies workload step `i` to the store.
Status ApplyStoreOp(int i, SessionStore& store) {
  const std::uint64_t sid = 1 + static_cast<std::uint64_t>(i % 4);
  if (i == kCompactAtOp) return store.Compact();
  if (i % 11 == 7) return store.DeleteSession(sid);
  const RecordKind kind = 1 + static_cast<RecordKind>(i % 3);
  if (i % 7 == 3) return store.Delete(sid, kind);
  return store.Put(
      sid, kind,
      "op-" + std::to_string(i) + "-" +
          std::string(20 + static_cast<std::size_t>(i * 13 % 60), 'a' + i % 26));
}

bool StoreMatches(const SessionStore& store, const ModelState& snapshot) {
  if (store.keydir_size() != snapshot.size()) return false;
  for (const auto& [key, value] : snapshot) {
    auto got = store.Get(key.first, key.second);
    if (!got.ok() || *got != value) return false;
  }
  return true;
}

// Floor of provably durable workload steps after `acked` acknowledged ones.
int DurableFloor(FsyncPolicy policy, int acked, std::size_t group) {
  switch (policy) {
    case FsyncPolicy::kEveryPut:
      return acked;
    case FsyncPolicy::kInterval: {
      // The group-commit counter resets at every sync point (group
      // boundary, seal, compaction), so windows don't align to absolute op
      // counts — the guarantee is just that at most one window of
      // acknowledged mutations can vanish.
      const int floor = acked - static_cast<int>(group) + 1;
      return floor > 0 ? floor : 0;
    }
    case FsyncPolicy::kNone:
      return 0;
  }
  return 0;
}

// Runs the whole crash sweep for one fsync policy. `stride` thins the
// failpoint list (1 = every mutating op).
void RunCrashSweep(FsyncPolicy policy, const std::string& name, int stride) {
  const std::string path = TempStorePath(name);

  // Recording run: no faults, count the ops and snapshot the model.
  FaultInjectingEnv record_env(Env::Default());
  std::vector<ModelState> snapshots(1);
  {
    auto store =
        SessionStore::Open(path, SmallSegmentOptions(policy, &record_env));
    ASSERT_TRUE(store.ok()) << store.status();
    for (int i = 0; i < kWorkloadOps; ++i) {
      ASSERT_TRUE(ApplyStoreOp(i, *store).ok()) << "recording op " << i;
      snapshots.push_back(snapshots.back());
      ApplyModelOp(i, snapshots.back());
    }
    // The workload must actually exercise the multi-segment machinery, or
    // the sweep proves nothing about rolls and compactions.
    ASSERT_GE(store->stats().segment_rolls, 2u);
    ASSERT_GE(store->stats().compactions, 1u);
    ASSERT_TRUE(StoreMatches(*store, snapshots.back()));
  }
  const std::uint64_t total_ops = record_env.ops();
  ASSERT_GT(total_ops, 20u);

  for (std::uint64_t crash_at = 0; crash_at < total_ops;
       crash_at += static_cast<std::uint64_t>(stride)) {
    SCOPED_TRACE(name + ": crash at failpoint " +
                 std::to_string(crash_at) + "/" + std::to_string(total_ops));
    std::filesystem::remove_all(path);
    FaultInjectingEnv env(Env::Default());
    env.ResetCounters();
    env.set_crash_at(static_cast<std::int64_t>(crash_at));

    int acked = 0;
    int attempted = 0;
    {
      auto store = SessionStore::Open(path, SmallSegmentOptions(policy, &env));
      if (store.ok()) {
        for (int i = 0; i < kWorkloadOps; ++i) {
          attempted = i + 1;
          if (!ApplyStoreOp(i, *store).ok()) break;
          acked = i + 1;
        }
      }
      // else: the crash hit during Open itself — zero ops acknowledged.
    }
    if (!env.crashed()) {
      // This failpoint is beyond what the run needed (layout divergence);
      // nothing to recover.
      continue;
    }

    // Power loss: unsynced bytes vanish, except a deterministic sliver of
    // torn tail — sweeping the sliver sweeps torn-record boundaries.
    ASSERT_TRUE(env.LoseUnsyncedData(crash_at % 5).ok());

    // Reboot: disarm the failpoint, reopen, and compare against the model.
    env.set_crash_at(-1);
    env.ResetCounters();
    auto recovered =
        SessionStore::Open(path, SmallSegmentOptions(policy, &env));
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    const int floor =
        DurableFloor(policy, acked, SmallSegmentOptions(policy, &env).group_commit_puts);
    bool matched = false;
    for (int j = floor; j <= attempted && !matched; ++j) {
      matched = StoreMatches(*recovered, snapshots[static_cast<std::size_t>(j)]);
    }
    EXPECT_TRUE(matched) << "recovered state matches no model snapshot in ["
                         << floor << ", " << attempted << "]";
    // The recovered store must be fully writable again.
    ASSERT_TRUE(recovered->Put(99, 1, "post-recovery-probe").ok());
    EXPECT_EQ(*recovered->Get(99, 1), "post-recovery-probe");
  }
}

TEST(StorageFaultTest, CrashSweepEveryFailpointEveryPut) {
  RunCrashSweep(FsyncPolicy::kEveryPut, "sweep_everyput", /*stride=*/1);
}

TEST(StorageFaultTest, CrashSweepEveryFailpointInterval) {
  RunCrashSweep(FsyncPolicy::kInterval, "sweep_interval", /*stride=*/1);
}

TEST(StorageFaultTest, CrashSweepFailpointsNone) {
  RunCrashSweep(FsyncPolicy::kNone, "sweep_none", /*stride=*/1);
}

// A put acknowledged under kEveryPut survives even the harshest power loss
// (every unsynced byte dropped) — the policy's headline guarantee, checked
// directly rather than through the sweep's snapshot matching.
TEST(StorageFaultTest, AcknowledgedSyncedPutSurvivesTotalPageCacheLoss) {
  const std::string path = TempStorePath("acked");
  FaultInjectingEnv env(Env::Default());
  SessionStoreOptions opts;
  opts.fsync_policy = FsyncPolicy::kEveryPut;
  opts.env = &env;
  {
    auto store = SessionStore::Open(path, opts);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Put(7, 1, "must-survive").ok());
    ASSERT_TRUE(store->Put(7, 2, "also-durable").ok());
  }
  ASSERT_TRUE(env.LoseUnsyncedData(0).ok());
  auto recovered = SessionStore::Open(path, opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(*recovered->Get(7, 1), "must-survive");
  EXPECT_EQ(*recovered->Get(7, 2), "also-durable");
}

// Transient outage shape (the one SessionManager retries against): writes
// fail while the flag is up, and the same store object works again —
// without reopening — once it clears.
TEST(StorageFaultTest, TransientOutageFailsPutsThenHealsInPlace) {
  const std::string path = TempStorePath("outage");
  FaultInjectingEnv env(Env::Default());
  SessionStoreOptions opts;
  opts.env = &env;
  auto store = SessionStore::Open(path, opts);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Put(1, 1, "before").ok());

  env.set_fail_writes(true);
  EXPECT_FALSE(store->Put(1, 1, "during").ok());
  EXPECT_FALSE(store->Put(2, 1, "during-2").ok());
  // Reads keep working off the keydir through the outage.
  EXPECT_EQ(*store->Get(1, 1), "before");

  env.set_fail_writes(false);
  ASSERT_TRUE(store->Put(1, 1, "after").ok());
  EXPECT_EQ(*store->Get(1, 1), "after");
  ASSERT_TRUE(store->Sync().ok());
}

// The flock is held by the open file description, so it excludes other
// *processes* — the deployment shape the LOCK file exists for.
TEST(SessionStoreLockTest, SecondProcessOpenFailsFailedPrecondition) {
  const std::string path = TempStorePath("two_process_lock");
  auto store = SessionStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status();
  ASSERT_TRUE(store->Put(1, 1, "parent-owns-this").ok());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: the open must bounce off the parent's lock. _exit skips gtest
    // teardown in the forked copy.
    auto second = SessionStore::Open(path);
    ::_exit(second.status().code() == StatusCode::kFailedPrecondition ? 0
                                                                      : 1);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);

  // Parent's handle never noticed.
  ASSERT_TRUE(store->Put(1, 2, "still-writable").ok());
}

}  // namespace
}  // namespace topkpkg::storage
