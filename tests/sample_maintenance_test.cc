#include "topkpkg/sampling/sample_maintenance.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "topkpkg/common/random.h"

namespace topkpkg::sampling {
namespace {

SamplePool RandomPool(std::size_t n, std::size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<WeightedSample> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    samples.push_back(WeightedSample{rng.UniformVector(dim, -1.0, 1.0), 1.0});
  }
  return SamplePool(std::move(samples));
}

// A random homogeneous hyperplane preference: on a symmetric sample cloud it
// splits the pool into violators/non-violators roughly evenly.
pref::Preference RandomHyperplanePreference(std::size_t dim, uint64_t seed) {
  Rng rng(seed);
  Vec direction = rng.UniformVector(dim, -1.0, 1.0);
  pref::Preference p;
  p.diff = Vec(dim, 0.0);
  for (std::size_t f = 0; f < dim; ++f) p.diff[f] = -direction[f];
  return p;
}

TEST(SampleMaintenanceTest, NaiveFindsExactViolators) {
  SamplePool pool(std::vector<WeightedSample>{
      {{0.5, 0.5}, 1.0}, {{-0.5, 0.5}, 1.0}, {{0.5, -0.5}, 1.0}});
  // ρ: better=(1,0), worse=(0,1) → query = worse-better = (-1,1);
  // violators have w1 - w0 > 0, i.e. only sample 1.
  pref::Preference p = pref::Preference::FromVectors({1.0, 0.0}, {0.0, 1.0});
  auto res = FindViolators(pool, p, MaintenanceStrategy::kNaive);
  ASSERT_EQ(res.violators.size(), 1u);
  EXPECT_EQ(res.violators[0], 1u);
  EXPECT_EQ(res.accesses, pool.size());
}

TEST(SampleMaintenanceTest, ZeroQueryVectorMeansNoViolators) {
  SamplePool pool = RandomPool(100, 3, 1);
  pref::Preference p;
  p.diff = {0.0, 0.0, 0.0};
  for (auto strategy : {MaintenanceStrategy::kNaive, MaintenanceStrategy::kTa,
                        MaintenanceStrategy::kHybrid}) {
    auto res = FindViolators(pool, p, strategy);
    EXPECT_TRUE(res.violators.empty());
  }
}

class MaintenanceEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MaintenanceEquivalence, TaAndHybridMatchNaive) {
  auto [seed, dim] = GetParam();
  SamplePool pool = RandomPool(500, static_cast<std::size_t>(dim),
                               static_cast<uint64_t>(seed));
  Rng rng(static_cast<uint64_t>(seed) + 999);
  for (int trial = 0; trial < 10; ++trial) {
    Vec a = rng.UniformVector(static_cast<std::size_t>(dim), 0.0, 1.0);
    Vec b = rng.UniformVector(static_cast<std::size_t>(dim), 0.0, 1.0);
    pref::Preference p = pref::Preference::FromVectors(a, b);
    auto naive = FindViolators(pool, p, MaintenanceStrategy::kNaive);
    auto ta = FindViolators(pool, p, MaintenanceStrategy::kTa);
    auto hybrid = FindViolators(pool, p, MaintenanceStrategy::kHybrid, 0.025);
    auto sorted = [](std::vector<std::size_t> v) {
      std::sort(v.begin(), v.end());
      return v;
    };
    EXPECT_EQ(sorted(naive.violators), sorted(ta.violators));
    EXPECT_EQ(sorted(naive.violators), sorted(hybrid.violators));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MaintenanceEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(2, 4, 7)));

TEST(SampleMaintenanceTest, TaCheapWhenNoViolators) {
  // All samples deep inside the valid half-space: the TA threshold collapses
  // almost immediately.
  std::vector<WeightedSample> samples;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    Vec w = rng.UniformVector(2, 0.1, 1.0);
    w[1] = -w[1];  // w0 > 0 > w1.
    samples.push_back(WeightedSample{w, 1.0});
  }
  SamplePool pool(std::move(samples));
  // query = (-1, 1): w·query = w1 - w0 < 0 always → no violators.
  pref::Preference p = pref::Preference::FromVectors({1.0, 0.0}, {0.0, 1.0});
  auto ta = FindViolators(pool, p, MaintenanceStrategy::kTa);
  auto naive = FindViolators(pool, p, MaintenanceStrategy::kNaive);
  EXPECT_TRUE(ta.violators.empty());
  EXPECT_LT(ta.accesses, naive.accesses / 10);
}

TEST(SampleMaintenanceTest, HybridFallsBackWhenManyViolators) {
  // Everything violates: hybrid must abandon TA quickly.
  std::vector<WeightedSample> samples;
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    Vec w = rng.UniformVector(2, 0.1, 1.0);  // All positive coords.
    samples.push_back(WeightedSample{w, 1.0});
  }
  SamplePool pool(std::move(samples));
  // query = (1, 1) → w·query > 0 for every sample.
  pref::Preference p;
  p.diff = {-1.0, -1.0};
  auto hybrid = FindViolators(pool, p, MaintenanceStrategy::kHybrid, 0.025);
  EXPECT_EQ(hybrid.violators.size(), pool.size());
  EXPECT_TRUE(hybrid.fell_back);
  // Cost stays within (1+γ)|S| plus the fallback scan.
  EXPECT_LE(hybrid.accesses, static_cast<std::size_t>(2.1 * pool.size()));
}

TEST(SampleMaintenanceTest, HybridGammaControlsFallback) {
  SamplePool pool = RandomPool(2000, 4, 9);
  Rng rng(10);
  Vec a = rng.UniformVector(4, 0.0, 1.0);
  Vec b = rng.UniformVector(4, 0.0, 1.0);
  pref::Preference p = pref::Preference::FromVectors(a, b);
  auto tight = FindViolators(pool, p, MaintenanceStrategy::kHybrid, 0.0);
  auto loose = FindViolators(pool, p, MaintenanceStrategy::kHybrid, 5.0);
  auto naive = FindViolators(pool, p, MaintenanceStrategy::kNaive);
  auto ta = FindViolators(pool, p, MaintenanceStrategy::kTa);
  auto sorted = [](std::vector<std::size_t> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  // Same answers regardless of γ.
  EXPECT_EQ(sorted(tight.violators), sorted(naive.violators));
  EXPECT_EQ(sorted(loose.violators), sorted(naive.violators));
  // γ large enough never falls back, matching pure TA's access count.
  EXPECT_EQ(loose.accesses, ta.accesses);
}

TEST(SampleMaintenanceTest, RandomHyperplaneSplitsPool) {
  SamplePool pool = RandomPool(200, 3, 11);
  pref::Preference p = RandomHyperplanePreference(3, 12);
  auto res = FindViolators(pool, p, MaintenanceStrategy::kNaive);
  // Roughly half the pool on a random symmetric distribution.
  EXPECT_GT(res.violators.size(), pool.size() / 5);
  EXPECT_LT(res.violators.size(), pool.size() * 4 / 5);
}

TEST(SampleMaintenanceTest, ParallelScanMatchesNaiveForAnyThreadCount) {
  SamplePool pool = RandomPool(333, 4, 21);
  for (uint64_t pref_seed : {22u, 23u, 24u}) {
    pref::Preference p = RandomHyperplanePreference(4, pref_seed);
    auto naive = FindViolators(pool, p, MaintenanceStrategy::kNaive);
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      ThreadPool workers(threads);
      auto parallel = FindViolatorsParallel(pool, p, workers);
      EXPECT_EQ(parallel.violators, naive.violators)
          << "threads=" << threads << " seed=" << pref_seed;
      EXPECT_EQ(parallel.accesses, pool.size());
      EXPECT_FALSE(parallel.fell_back);
      // Naive scan emits ascending indices; the shard merge must too.
      EXPECT_TRUE(std::is_sorted(parallel.violators.begin(),
                                 parallel.violators.end()));
    }
  }
}

TEST(SampleMaintenanceTest, ParallelScanOnEmptyPool) {
  SamplePool pool;
  pref::Preference p = RandomHyperplanePreference(3, 2);
  ThreadPool workers(4);
  auto res = FindViolatorsParallel(pool, p, workers);
  EXPECT_TRUE(res.violators.empty());
  EXPECT_EQ(res.accesses, 0u);
}

TEST(SampleMaintenanceTest, ParallelSortedListRebuildMatchesSerial) {
  SamplePool serial_pool = RandomPool(500, 5, 31);
  SamplePool parallel_pool = RandomPool(500, 5, 31);
  ThreadPool workers(4);
  const auto& serial_lists = serial_pool.sorted_lists();
  const auto& parallel_lists = parallel_pool.sorted_lists_parallel(workers);
  ASSERT_EQ(serial_lists.size(), parallel_lists.size());
  for (std::size_t f = 0; f < serial_lists.size(); ++f) {
    EXPECT_EQ(serial_lists[f], parallel_lists[f]) << "feature " << f;
  }
  // Mutation dirties the lists; the parallel rebuild must notice.
  parallel_pool.Replace({0, 1}, {});
  EXPECT_EQ(parallel_pool.sorted_lists_parallel(workers)[0].size(), 498u);
}

TEST(SampleMaintenanceTest, PoolBatchViewTracksMutations) {
  SamplePool pool = RandomPool(10, 3, 41);
  const WeightBatch& batch = pool.batch();
  EXPECT_EQ(batch.size(), 10u);
  EXPECT_EQ(batch.dim(), 3u);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t f = 0; f < 3; ++f) {
      EXPECT_EQ(batch.at(f, i), pool.sample(i).w[f]);
    }
  }
  pool.Append({WeightedSample{{0.1, 0.2, 0.3}, 1.0}});
  EXPECT_EQ(pool.batch().size(), 11u);
  EXPECT_EQ(pool.batch().at(2, 10), 0.3);
}

}  // namespace
}  // namespace topkpkg::sampling
