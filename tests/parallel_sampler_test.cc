#include "topkpkg/sampling/parallel_sampler.h"

#include <gtest/gtest.h>

#include <vector>

#include "sampling_test_util.h"
#include "topkpkg/sampling/mcmc_sampler.h"
#include "topkpkg/sampling/rejection_sampler.h"

namespace topkpkg::sampling {
namespace {

using sampling_test::DefaultPrior;
using sampling_test::RandomConstraints;

ParallelSampler MakeParallelRejection(const prob::GaussianMixture* prior,
                                      const ConstraintChecker* checker,
                                      std::size_t num_threads,
                                      SamplerOptions base = {}) {
  ParallelSamplerOptions opts;
  opts.num_threads = num_threads;
  return ParallelSampler(
      [prior, checker, base](std::size_t count, Rng& rng, SampleStats* stats) {
        RejectionSampler sampler(prior, checker, base);
        return sampler.Draw(count, rng, stats);
      },
      opts);
}

TEST(ParallelSamplerTest, OutputIdenticalAcrossThreadCounts) {
  Rng gen(1);
  Vec hidden = {0.6, -0.3, 0.2};
  auto prefs = RandomConstraints(15, hidden, gen);
  ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = DefaultPrior(3, 2);

  auto reference = MakeParallelRejection(&prior, &checker, 1)
                       .Draw(257, /*seed=*/42);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_EQ(reference->size(), 257u);
  for (std::size_t threads : {2u, 3u, 4u, 8u}) {
    auto run = MakeParallelRejection(&prior, &checker, threads)
                   .Draw(257, /*seed=*/42);
    ASSERT_TRUE(run.ok()) << run.status();
    ASSERT_EQ(run->size(), reference->size());
    for (std::size_t i = 0; i < run->size(); ++i) {
      EXPECT_EQ((*run)[i].w, (*reference)[i].w)
          << "sample " << i << " with " << threads << " threads";
      EXPECT_DOUBLE_EQ((*run)[i].weight, (*reference)[i].weight);
    }
  }
}

TEST(ParallelSamplerTest, McmcChunksAreThreadCountInvariantToo) {
  Rng gen(5);
  Vec hidden = {0.5, 0.4};
  auto prefs = RandomConstraints(8, hidden, gen);
  ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = DefaultPrior(2, 3);
  McmcSamplerOptions mopts;
  mopts.burn_in = 20;

  auto make = [&](std::size_t threads) {
    ParallelSamplerOptions opts;
    opts.num_threads = threads;
    return ParallelSampler(
        [&prior, &checker, mopts](std::size_t count, Rng& rng,
                                  SampleStats* stats) {
          McmcSampler sampler(&prior, &checker, mopts);
          return sampler.Draw(count, rng, stats);
        },
        opts);
  };
  auto serial = make(1).Draw(100, /*seed=*/7);
  auto parallel = make(4).Draw(100, /*seed=*/7);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->size(), parallel->size());
  for (std::size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ((*serial)[i].w, (*parallel)[i].w) << "sample " << i;
  }
}

TEST(ParallelSamplerTest, SamplesSatisfyConstraintsAndStatsAddUp) {
  Rng gen(9);
  Vec hidden = {0.7, -0.2, 0.1};
  auto prefs = RandomConstraints(10, hidden, gen);
  ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = DefaultPrior(3, 4);

  SampleStats stats;
  auto samples =
      MakeParallelRejection(&prior, &checker, 4).Draw(200, /*seed=*/3, &stats);
  ASSERT_TRUE(samples.ok()) << samples.status();
  EXPECT_EQ(samples->size(), 200u);
  for (const auto& s : *samples) {
    EXPECT_TRUE(checker.IsValid(s.w));
    EXPECT_TRUE(InBox(s.w, -1.0, 1.0));
  }
  EXPECT_EQ(stats.accepted, 200u);
  EXPECT_EQ(stats.proposed,
            stats.accepted + stats.rejected_box + stats.rejected_constraint);
}

TEST(ParallelSamplerTest, ChunkFailurePropagatesDeterministically) {
  // Contradictory constraints: every chunk exhausts its attempt budget; the
  // reported status must be ResourceExhausted no matter the thread count.
  std::vector<pref::Preference> prefs(2);
  prefs[0].diff = {1.0, 0.0};
  prefs[1].diff = {-1.0, 0.0};
  ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = DefaultPrior(2, 5);
  SamplerOptions base;
  base.max_attempts_per_sample = 500;
  for (std::size_t threads : {1u, 4u}) {
    auto result = MakeParallelRejection(&prior, &checker, threads, base)
                      .Draw(64, /*seed=*/11);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(ParallelSamplerTest, DistinctChunksUseDecorrelatedStreams) {
  ConstraintChecker checker({});
  prob::GaussianMixture prior = DefaultPrior(2, 6);
  const std::size_t chunk = ParallelSamplerOptions{}.chunk_size;
  auto samples = MakeParallelRejection(&prior, &checker, 2)
                     .Draw(4 * chunk, /*seed=*/1);
  ASSERT_TRUE(samples.ok());
  // Chunked streams must not repeat each other: compare the first sample of
  // each chunk.
  for (std::size_t c = 1; c < 4; ++c) {
    EXPECT_NE((*samples)[0].w, (*samples)[c * chunk].w);
  }
  // And the chunk-seed mixer itself separates nearby inputs.
  EXPECT_NE(ParallelSampler::ChunkSeed(1, 0), ParallelSampler::ChunkSeed(1, 1));
  EXPECT_NE(ParallelSampler::ChunkSeed(1, 0), ParallelSampler::ChunkSeed(2, 0));
}

TEST(ParallelSamplerTest, ZeroSamplesIsEmptyOk) {
  ConstraintChecker checker({});
  prob::GaussianMixture prior = DefaultPrior(2, 8);
  auto samples = MakeParallelRejection(&prior, &checker, 4).Draw(0, 1);
  ASSERT_TRUE(samples.ok());
  EXPECT_TRUE(samples->empty());
}

}  // namespace
}  // namespace topkpkg::sampling
