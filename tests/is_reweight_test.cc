// Importance-sampler survivor reweighting (Sec. 3.4 reuse for IS): when the
// constraint set changes, surviving pool samples are kept and their
// importance weights recomputed under the rebuilt proposal instead of
// redrawing the whole pool. These tests check (a) the reweighted survivor
// population is statistically equivalent to the full-redraw path's accepted
// distribution, (b) reweighted weights are exactly the q = P/Q_new the new
// sampler would attach, and (c) the recommender actually reuses importance
// pools across constraint-changing rounds now.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "topkpkg/data/generators.h"
#include "topkpkg/pref/preference.h"
#include "topkpkg/recsys/recommender.h"
#include "topkpkg/sampling/importance_sampler.h"

namespace topkpkg::sampling {
namespace {

// Half-space constraint w · diff >= 0 from an explicit difference vector.
pref::Preference HalfSpace(const Vec& diff, const std::string& name) {
  pref::Preference p;
  p.diff = diff;
  p.better_key = name + "+";
  p.worse_key = name + "-";
  return p;
}

// Weighted per-coordinate mean of a sample set.
Vec WeightedMean(const std::vector<WeightedSample>& samples) {
  Vec mean(samples.empty() ? 0 : samples[0].w.size(), 0.0);
  double total = 0.0;
  for (const WeightedSample& s : samples) {
    total += s.weight;
    for (std::size_t i = 0; i < mean.size(); ++i) {
      mean[i] += s.weight * s.w[i];
    }
  }
  for (double& x : mean) x /= total;
  return mean;
}

TEST(IsReweightTest, SurvivorReweightingMatchesRedrawDistribution) {
  Rng rng(424242);
  prob::GaussianMixture prior = prob::GaussianMixture::Random(3, 2, 0.5, rng);

  const pref::Preference a = HalfSpace({1.0, 0.0, 0.0}, "a");
  const pref::Preference b = HalfSpace({0.4, 1.0, 0.0}, "b");
  ConstraintChecker old_checker({a});
  ConstraintChecker new_checker({a, b});

  auto old_sampler = ImportanceSampler::Create(&prior, &old_checker);
  auto new_sampler = ImportanceSampler::Create(&prior, &new_checker);
  ASSERT_TRUE(old_sampler.ok()) << old_sampler.status();
  ASSERT_TRUE(new_sampler.ok()) << new_sampler.status();

  const std::size_t n = 4000;
  auto pool = old_sampler->Draw(n, rng);
  ASSERT_TRUE(pool.ok()) << pool.status();

  // Maintenance path: keep the survivors of the new constraint set,
  // reweighted under the new proposal.
  std::vector<WeightedSample> survivors;
  for (const WeightedSample& s : *pool) {
    if (!new_checker.IsValid(s.w)) continue;
    WeightedSample kept = s;
    kept.weight = new_sampler->ImportanceWeight(kept.w);
    survivors.push_back(std::move(kept));
  }
  // The scenario must actually exercise reuse: a meaningful survivor
  // fraction, and a meaningful evicted fraction.
  ASSERT_GT(survivors.size(), n / 4);
  ASSERT_LT(survivors.size(), n);

  // Redraw path: a fresh accepted population under the new constraint set.
  auto redraw = new_sampler->Draw(n, rng);
  ASSERT_TRUE(redraw.ok()) << redraw.status();

  // Deterministic Create(): reweighted survivor weights are exactly the
  // q = P/Q_new an independently created new-proposal sampler attaches.
  auto new_sampler_again = ImportanceSampler::Create(&prior, &new_checker);
  ASSERT_TRUE(new_sampler_again.ok());
  for (const WeightedSample& s : survivors) {
    EXPECT_EQ(s.weight, new_sampler_again->ImportanceWeight(s.w));
    EXPECT_TRUE(std::isfinite(s.weight));
    EXPECT_GT(s.weight, 0.0);
  }

  // Statistical equivalence of the two accepted, weighted populations
  // (both estimate the posterior restricted to the new polytope; exact as
  // Q_old → Q_new, and already close here where one constraint shifted the
  // proposal). Fixed seeds — no flake.
  const Vec mean_survivors = WeightedMean(survivors);
  const Vec mean_redraw = WeightedMean(*redraw);
  for (std::size_t i = 0; i < mean_survivors.size(); ++i) {
    EXPECT_NEAR(mean_survivors[i], mean_redraw[i], 0.08)
        << "coordinate " << i;
  }
}

class IsRecommenderFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<model::ItemTable>(
        std::move(data::GenerateUniform(40, 3, 7)).value());
    profile_ = std::make_unique<model::Profile>(
        std::move(model::Profile::Parse("sum,avg,min")).value());
    evaluator_ = std::make_unique<model::PackageEvaluator>(table_.get(),
                                                           profile_.get(), 3);
    Rng rng(8);
    prior_ = std::make_unique<prob::GaussianMixture>(
        prob::GaussianMixture::Random(3, 2, 0.5, rng));
  }

  recsys::RecommenderOptions Options(double psi) const {
    recsys::RecommenderOptions opts;
    opts.sampler = recsys::SamplerKind::kImportance;
    opts.num_recommended = 3;
    opts.num_random = 3;
    opts.num_samples = 60;
    opts.ranking.k = 3;
    opts.ranking.sigma = 3;
    opts.sampler_base.noise.psi = psi;
    return opts;
  }

  // Runs `rounds` rounds and returns true iff some round that entered with
  // *fresh* constraints (feedback grew in the previous round) still reused
  // pool survivors — exactly what the pre-reweighting engine could never do
  // (it full-redrew importance pools on any constraint change).
  bool SawReuseAcrossConstraintChange(recsys::PackageRecommender& rec,
                                      const recsys::SimulatedUser& user,
                                      int rounds) {
    bool saw = false;
    std::size_t edges_before = 0;
    bool grew_last_round = false;
    for (int round = 0; round < rounds; ++round) {
      auto log = rec.RunRound(user);
      EXPECT_TRUE(log.ok()) << log.status();
      if (!log.ok()) return false;
      if (round > 0 && grew_last_round && log->samples_reused > 0) {
        saw = true;
      }
      grew_last_round = rec.feedback().num_edges() > edges_before;
      edges_before = rec.feedback().num_edges();
    }
    return saw;
  }

  std::unique_ptr<model::ItemTable> table_;
  std::unique_ptr<model::Profile> profile_;
  std::unique_ptr<model::PackageEvaluator> evaluator_;
  std::unique_ptr<prob::GaussianMixture> prior_;
};

TEST_F(IsRecommenderFixture, ImportancePoolReusesSurvivorsAcrossFeedback) {
  recsys::PackageRecommender rec(evaluator_.get(), prior_.get(),
                                 Options(/*psi=*/1.0), /*seed=*/11);
  recsys::SimulatedUser user({0.8, 0.4, -0.2});
  EXPECT_TRUE(SawReuseAcrossConstraintChange(rec, user, 5));
  // Weights stay a coherent importance-weighted pool.
  for (std::size_t i = 0; i < rec.pool().size(); ++i) {
    EXPECT_TRUE(std::isfinite(rec.pool().sample(i).weight));
    EXPECT_GT(rec.pool().sample(i).weight, 0.0);
  }
}

TEST_F(IsRecommenderFixture, NoisyImportancePoolAlsoReuses) {
  recsys::PackageRecommender rec(evaluator_.get(), prior_.get(),
                                 Options(/*psi=*/0.9), /*seed=*/13);
  recsys::SimulatedUser user({0.8, 0.4, -0.2});
  EXPECT_TRUE(SawReuseAcrossConstraintChange(rec, user, 5));
}

}  // namespace
}  // namespace topkpkg::sampling
