#include "topkpkg/topk/naive_enumerator.h"

#include <gtest/gtest.h>

namespace topkpkg::topk {
namespace {

TEST(PackageSpaceSizeTest, SmallCounts) {
  // n=3, phi=2: C(3,1)+C(3,2) = 3+3 = 6 (the p1..p6 of Fig. 1).
  EXPECT_EQ(NaivePackageEnumerator::PackageSpaceSize(3, 2), 6u);
  EXPECT_EQ(NaivePackageEnumerator::PackageSpaceSize(3, 3), 7u);
  EXPECT_EQ(NaivePackageEnumerator::PackageSpaceSize(5, 1), 5u);
  EXPECT_EQ(NaivePackageEnumerator::PackageSpaceSize(4, 10), 15u);
}

TEST(PackageSpaceSizeTest, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(NaivePackageEnumerator::PackageSpaceSize(100000, 20),
            std::numeric_limits<std::size_t>::max());
}

class NaiveEnumeratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<model::ItemTable>(std::move(
        model::ItemTable::Create({{0.6, 0.2}, {0.4, 0.4}, {0.2, 0.4}}))
        .value());
    profile_ = std::make_unique<model::Profile>(
        std::move(model::Profile::Parse("sum,avg")).value());
    evaluator_ = std::make_unique<model::PackageEvaluator>(table_.get(),
                                                           profile_.get(), 2);
  }

  std::unique_ptr<model::ItemTable> table_;
  std::unique_ptr<model::Profile> profile_;
  std::unique_ptr<model::PackageEvaluator> evaluator_;
};

TEST_F(NaiveEnumeratorTest, Figure2Top2UnderW1) {
  NaivePackageEnumerator oracle(evaluator_.get());
  auto result = oracle.Search({0.5, 0.1}, 2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->packages.size(), 2u);
  // Fig. 2(d), w1: top-2 = p4 {t1,t2} (0.575), p6 {t1,t3} (0.475).
  EXPECT_EQ(result->packages[0].package, model::Package::Of({0, 1}));
  EXPECT_NEAR(result->packages[0].utility, 0.575, 1e-12);
  EXPECT_EQ(result->packages[1].package, model::Package::Of({0, 2}));
  EXPECT_NEAR(result->packages[1].utility, 0.475, 1e-12);
}

TEST_F(NaiveEnumeratorTest, Figure2Top2UnderW2AndW3) {
  NaivePackageEnumerator oracle(evaluator_.get());
  auto r2 = oracle.Search({0.1, 0.5}, 2);
  ASSERT_TRUE(r2.ok());
  // w2: p5 {t2,t3} (0.56), p2 {t2} (0.54).
  EXPECT_EQ(r2->packages[0].package, model::Package::Of({1, 2}));
  EXPECT_EQ(r2->packages[1].package, model::Package::Of({1}));
  auto r3 = oracle.Search({0.1, 0.1}, 2);
  ASSERT_TRUE(r3.ok());
  // w3: p4 (0.175), p5 (0.16).
  EXPECT_EQ(r3->packages[0].package, model::Package::Of({0, 1}));
  EXPECT_EQ(r3->packages[1].package, model::Package::Of({1, 2}));
}

TEST_F(NaiveEnumeratorTest, GeneratesWholePackageSpace) {
  NaivePackageEnumerator oracle(evaluator_.get());
  auto result = oracle.Search({0.5, 0.1}, 100);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->packages_generated, 6u);
  EXPECT_EQ(result->packages.size(), 6u);
}

TEST_F(NaiveEnumeratorTest, RejectsHugeSpaces) {
  NaivePackageEnumerator oracle(evaluator_.get());
  auto result = oracle.Search({0.5, 0.1}, 2, /*max_packages=*/3);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(NaiveEnumeratorTest, RejectsZeroK) {
  NaivePackageEnumerator oracle(evaluator_.get());
  EXPECT_FALSE(oracle.Search({0.5, 0.1}, 0).ok());
}

TEST_F(NaiveEnumeratorTest, DeterministicTieBreakByItemSequence) {
  // With zero weights every package ties at utility 0; ordering must be the
  // lexicographic item sequence.
  NaivePackageEnumerator oracle(evaluator_.get());
  auto result = oracle.Search({0.0, 0.0}, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->packages[0].package, model::Package::Of({0}));
  EXPECT_EQ(result->packages[1].package, model::Package::Of({0, 1}));
  EXPECT_EQ(result->packages[2].package, model::Package::Of({0, 2}));
}

}  // namespace
}  // namespace topkpkg::topk
