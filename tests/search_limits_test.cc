// Behaviour of the search safety valves (SearchLimits) and the ranking
// layer's memoization — the production knobs the interactive recommender
// relies on.

#include <memory>

#include <gtest/gtest.h>

#include "topkpkg/common/random.h"
#include "topkpkg/data/generators.h"
#include "topkpkg/ranking/rankers.h"
#include "topkpkg/topk/naive_enumerator.h"
#include "topkpkg/topk/topk_pkg.h"

namespace topkpkg::topk {
namespace {

using topkpkg::Rng;

struct Fixture {
  std::unique_ptr<model::ItemTable> table;
  std::unique_ptr<model::Profile> profile;
  std::unique_ptr<model::PackageEvaluator> evaluator;
};

Fixture Make(std::size_t n, const char* spec, std::size_t phi,
             uint64_t seed) {
  Fixture f;
  auto profile = std::move(model::Profile::Parse(spec)).value();
  f.table = std::make_unique<model::ItemTable>(
      std::move(data::GenerateUniform(n, profile.num_features(), seed))
          .value());
  f.profile = std::make_unique<model::Profile>(std::move(profile));
  f.evaluator = std::make_unique<model::PackageEvaluator>(f.table.get(),
                                                          f.profile.get(),
                                                          phi);
  return f;
}

TEST(SearchLimitsTest, ItemsAccessedBudgetTruncates) {
  Fixture f = Make(2000, "sum,avg", 3, 1);
  TopKPkgSearch search(f.evaluator.get());
  SearchLimits limits;
  limits.max_items_accessed = 50;
  auto r = search.Search({0.4, 0.6}, 5, limits);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->items_accessed, 50u);
  EXPECT_TRUE(r->truncated);
  EXPECT_EQ(r->packages.size(), 5u);  // Still returns a best-effort list.
}

TEST(SearchLimitsTest, BudgetedHeadMatchesExactOnEasyInstances) {
  // When the exact search finishes within the budget anyway, the budgeted
  // result is identical.
  Fixture f = Make(40, "sum,avg", 3, 2);
  TopKPkgSearch search(f.evaluator.get());
  SearchLimits tight;
  tight.max_items_accessed = 1000;  // Far above what 40 items need.
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Vec w = rng.UniformVector(2, -1.0, 1.0);
    auto exact = search.Search(w, 4);
    auto budgeted = search.Search(w, 4, tight);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(budgeted.ok());
    EXPECT_FALSE(budgeted->truncated);
    ASSERT_EQ(exact->packages.size(), budgeted->packages.size());
    for (std::size_t i = 0; i < exact->packages.size(); ++i) {
      EXPECT_EQ(exact->packages[i].package, budgeted->packages[i].package);
    }
  }
}

TEST(SearchLimitsTest, TruncatedTopUtilityCloseToExact) {
  // The head-of-lists heuristic: even under a tight access budget the top
  // package's utility should be a large fraction of the exact optimum
  // (items are accessed in desirability order).
  Fixture f = Make(150, "sum,avg", 3, 4);
  TopKPkgSearch search(f.evaluator.get());
  NaivePackageEnumerator oracle(f.evaluator.get());
  SearchLimits tight;
  tight.max_items_accessed = 40;
  tight.max_queue = 200;
  Rng rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    Vec w = rng.UniformVector(2, 0.1, 1.0);  // Positive weights.
    auto budgeted = search.Search(w, 1, tight);
    auto exact = oracle.Search(w, 1);
    ASSERT_TRUE(budgeted.ok());
    ASSERT_TRUE(exact.ok());
    EXPECT_GE(budgeted->packages[0].utility,
              0.9 * exact->packages[0].utility);
  }
}

TEST(SearchLimitsTest, MaxQueueBoundsFrontier) {
  Fixture f = Make(300, "sum,sum,sum", 5, 6);
  TopKPkgSearch search(f.evaluator.get());
  SearchLimits limits;
  limits.max_queue = 50;
  limits.max_items_accessed = 500;
  auto r = search.Search({0.9, 0.8, 0.7}, 3, limits);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truncated);
  EXPECT_EQ(r->packages.size(), 3u);
  // All returned packages respect φ.
  for (const auto& sp : r->packages) EXPECT_LE(sp.package.size(), 5u);
}

TEST(RankerMemoizationTest, DuplicateSamplesProduceIdenticalLists) {
  Fixture f = Make(100, "sum,avg", 3, 7);
  ranking::PackageRanker ranker(f.evaluator.get());
  Rng rng(8);
  Vec w = rng.UniformVector(2, -1.0, 1.0);
  // An MCMC-style pool: the same state repeated plus one distinct state.
  std::vector<sampling::WeightedSample> samples(6, {w, 1.0});
  samples.push_back(sampling::WeightedSample{rng.UniformVector(2, -1.0, 1.0), 1.0});
  ranking::RankingOptions opts;
  opts.k = 3;
  opts.sigma = 3;
  auto lists = ranker.ComputeSampleLists(samples, opts);
  ASSERT_TRUE(lists.ok());
  ASSERT_EQ(lists->size(), 7u);
  for (std::size_t i = 1; i < 6; ++i) {
    ASSERT_EQ((*lists)[i].packages.size(), (*lists)[0].packages.size());
    for (std::size_t j = 0; j < (*lists)[0].packages.size(); ++j) {
      EXPECT_EQ((*lists)[i].packages[j].package,
                (*lists)[0].packages[j].package);
    }
  }
}

TEST(RankerMemoizationTest, MemoizationDoesNotChangeAggregates) {
  // Ranking a pool with duplicates must equal ranking the same pool where
  // duplicates were pre-merged into one sample with summed weight.
  Fixture f = Make(80, "sum,avg", 3, 9);
  ranking::PackageRanker ranker(f.evaluator.get());
  Rng rng(10);
  Vec a = rng.UniformVector(2, -1.0, 1.0);
  Vec b = rng.UniformVector(2, -1.0, 1.0);
  std::vector<sampling::WeightedSample> duplicated = {
      {a, 1.0}, {a, 1.0}, {a, 1.0}, {b, 1.0}};
  std::vector<sampling::WeightedSample> merged = {{a, 3.0}, {b, 1.0}};
  ranking::RankingOptions opts;
  opts.k = 4;
  opts.sigma = 4;
  for (auto sem : {ranking::Semantics::kExp, ranking::Semantics::kTkp,
                   ranking::Semantics::kMpo}) {
    auto r1 = ranker.Rank(duplicated, sem, opts);
    auto r2 = ranker.Rank(merged, sem, opts);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    ASSERT_EQ(r1->packages.size(), r2->packages.size());
    for (std::size_t i = 0; i < r1->packages.size(); ++i) {
      EXPECT_EQ(r1->packages[i].package, r2->packages[i].package);
      EXPECT_NEAR(r1->packages[i].score, r2->packages[i].score, 1e-9);
    }
  }
}

}  // namespace
}  // namespace topkpkg::topk
