#include "topkpkg/baseline/hard_constraint.h"

#include <memory>

#include <gtest/gtest.h>

#include "topkpkg/data/generators.h"
#include "topkpkg/model/profile.h"

namespace topkpkg::baseline {
namespace {

// Cost/rating shopping scenario: feature 0 = cost (sum-budgeted), feature 1
// = rating (avg-maximized), mirroring the paper's Amazon example.
class HardConstraintFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<model::ItemTable>(std::move(
        model::ItemTable::Create({{10.0, 4.5},
                                  {20.0, 5.0},
                                  {5.0, 2.0},
                                  {15.0, 4.8},
                                  {8.0, 4.0}})).value());
    profile_ = std::make_unique<model::Profile>(
        std::move(model::Profile::Parse("sum,avg")).value());
    evaluator_ = std::make_unique<model::PackageEvaluator>(table_.get(),
                                                           profile_.get(), 3);
  }

  HardConstraintQuery Query(double budget) const {
    HardConstraintQuery q;
    q.objective_feature = 1;  // Maximize avg rating.
    q.budget_feature = 0;     // Subject to total cost.
    q.budget = budget;
    return q;
  }

  std::unique_ptr<model::ItemTable> table_;
  std::unique_ptr<model::Profile> profile_;
  std::unique_ptr<model::PackageEvaluator> evaluator_;
};

TEST_F(HardConstraintFixture, ExactFindsBestWithinBudget) {
  auto best = SolveHardConstraintExact(*evaluator_, Query(25.0));
  ASSERT_TRUE(best.ok()) << best.status();
  // Highest avg rating within cost 25: {1} alone (rating 5.0, cost 20).
  EXPECT_EQ(best->package, model::Package::Of({1}));
  EXPECT_NEAR(best->utility, 1.0, 1e-12);  // 5.0 normalized by max 5.0.
}

TEST_F(HardConstraintFixture, TightBudgetForcesCheapItems) {
  auto best = SolveHardConstraintExact(*evaluator_, Query(9.0));
  ASSERT_TRUE(best.ok());
  // Only items 2 (cost 5) and 4 (cost 8) fit; best single = item 4.
  EXPECT_EQ(best->package, model::Package::Of({4}));
}

TEST_F(HardConstraintFixture, ImpossibleBudgetReportsNotFound) {
  auto best = SolveHardConstraintExact(*evaluator_, Query(1.0));
  ASSERT_FALSE(best.ok());
  EXPECT_EQ(best.status().code(), StatusCode::kNotFound);
}

TEST_F(HardConstraintFixture, GreedyWithinBudgetAndFeasible) {
  auto greedy = SolveHardConstraintGreedy(*evaluator_, Query(25.0));
  ASSERT_TRUE(greedy.ok()) << greedy.status();
  double cost = 0.0;
  for (model::ItemId id : greedy->package.items()) {
    cost += table_->value(id, 0);
  }
  EXPECT_LE(cost, 25.0);
  EXPECT_LE(greedy->package.size(), 3u);
}

TEST_F(HardConstraintFixture, GreedyNeverBeatsExact) {
  for (double budget : {10.0, 20.0, 30.0, 60.0}) {
    auto exact = SolveHardConstraintExact(*evaluator_, Query(budget));
    auto greedy = SolveHardConstraintGreedy(*evaluator_, Query(budget));
    if (!exact.ok()) continue;
    ASSERT_TRUE(greedy.ok());
    EXPECT_LE(greedy->utility, exact->utility + 1e-12) << "budget " << budget;
  }
}

TEST_F(HardConstraintFixture, ValidatesFeatureIndices) {
  HardConstraintQuery q;
  q.objective_feature = 9;
  EXPECT_FALSE(SolveHardConstraintExact(*evaluator_, q).ok());
  EXPECT_FALSE(SolveHardConstraintGreedy(*evaluator_, q).ok());
}

TEST_F(HardConstraintFixture, ExactRefusesHugeSpaces) {
  auto big = std::move(data::GenerateUniform(10000, 2, 3)).value();
  model::PackageEvaluator ev(&big, profile_.get(), 5);
  auto result = SolveHardConstraintExact(ev, Query(1.0), 1000);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(HardConstraintFixture, PaperCritiqueLowBudgetGivesSubOptimal) {
  // The paper's argument against hard constraints: a too-low budget locks
  // the user out of the package they would actually prefer.
  auto tight = SolveHardConstraintExact(*evaluator_, Query(9.0));
  auto loose = SolveHardConstraintExact(*evaluator_, Query(60.0));
  ASSERT_TRUE(tight.ok());
  ASSERT_TRUE(loose.ok());
  EXPECT_LT(tight->utility, loose->utility);
}

TEST(HardConstraintGreedyScaleTest, HandlesLargeTables) {
  auto big = std::move(data::GenerateUniform(50000, 2, 4)).value();
  auto profile = std::move(model::Profile::Parse("sum,avg")).value();
  model::PackageEvaluator ev(&big, &profile, 10);
  HardConstraintQuery q;
  q.objective_feature = 1;
  q.budget_feature = 0;
  q.budget = 0.5;
  auto greedy = SolveHardConstraintGreedy(ev, q);
  ASSERT_TRUE(greedy.ok()) << greedy.status();
  EXPECT_GE(greedy->package.size(), 1u);
}

}  // namespace
}  // namespace topkpkg::baseline
