#include "topkpkg/pref/preference_set.h"

#include <algorithm>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "topkpkg/common/random.h"

namespace topkpkg::pref {
namespace {

Vec V(double a, double b) { return Vec{a, b}; }

TEST(PreferenceSetTest, AddAndCount) {
  PreferenceSet set;
  EXPECT_TRUE(set.Add(V(0.8, 0.1), V(0.2, 0.5), "a", "b").ok());
  EXPECT_TRUE(set.Add(V(0.2, 0.5), V(0.1, 0.1), "b", "c").ok());
  EXPECT_EQ(set.num_nodes(), 3u);
  EXPECT_EQ(set.num_edges(), 2u);
  EXPECT_EQ(set.AllConstraints().size(), 2u);
}

TEST(PreferenceSetTest, DuplicateEdgeIsNoOp) {
  PreferenceSet set;
  EXPECT_TRUE(set.Add(V(1, 0), V(0, 1), "a", "b").ok());
  EXPECT_TRUE(set.Add(V(1, 0), V(0, 1), "a", "b").ok());
  EXPECT_EQ(set.num_edges(), 1u);
}

TEST(PreferenceSetTest, SelfPreferenceRejected) {
  PreferenceSet set;
  EXPECT_EQ(set.Add(V(1, 0), V(1, 0), "a", "a").code(),
            StatusCode::kInvalidArgument);
}

TEST(PreferenceSetTest, DirectCycleRejected) {
  PreferenceSet set;
  ASSERT_TRUE(set.Add(V(1, 0), V(0, 1), "a", "b").ok());
  Status st = set.Add(V(0, 1), V(1, 0), "b", "a");
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(set.num_edges(), 1u);
}

TEST(PreferenceSetTest, TransitiveCycleRejected) {
  PreferenceSet set;
  ASSERT_TRUE(set.Add(V(3, 0), V(2, 0), "a", "b").ok());
  ASSERT_TRUE(set.Add(V(2, 0), V(1, 0), "b", "c").ok());
  EXPECT_EQ(set.Add(V(1, 0), V(3, 0), "c", "a").code(),
            StatusCode::kFailedPrecondition);
}

TEST(PreferenceSetTest, TransitiveReductionDropsImpliedEdge) {
  PreferenceSet set;
  // a ≻ b, b ≻ c, a ≻ c: the last is implied by transitivity.
  ASSERT_TRUE(set.Add(V(3, 0), V(2, 0), "a", "b").ok());
  ASSERT_TRUE(set.Add(V(2, 0), V(1, 0), "b", "c").ok());
  ASSERT_TRUE(set.Add(V(3, 0), V(1, 0), "a", "c").ok());
  EXPECT_EQ(set.AllConstraints().size(), 3u);
  auto reduced = set.ReducedConstraints();
  EXPECT_EQ(reduced.size(), 2u);
  for (const auto& p : reduced) {
    EXPECT_FALSE(p.better_key == "a" && p.worse_key == "c");
  }
}

TEST(PreferenceSetTest, ReductionKeepsNonRedundantEdges) {
  PreferenceSet set;
  ASSERT_TRUE(set.Add(V(3, 0), V(2, 0), "a", "b").ok());
  ASSERT_TRUE(set.Add(V(3, 0), V(1, 0), "a", "c").ok());
  EXPECT_EQ(set.ReducedConstraints().size(), 2u);
}

TEST(PreferenceSetTest, ClickFeedbackAddsOneEdgePerAlternative) {
  PreferenceSet set;
  std::vector<Vec> shown = {V(0.9, 0.1), V(0.5, 0.5), V(0.1, 0.9)};
  std::vector<std::string> keys = {"p0", "p1", "p2"};
  ASSERT_TRUE(set.AddClickFeedback(shown[1], "p1", shown, keys).ok());
  EXPECT_EQ(set.num_edges(), 2u);  // p1 ≻ p0 and p1 ≻ p2; no self edge.
}

TEST(PreferenceSetTest, SatisfiesChecksEveryEdge) {
  PreferenceSet set;
  ASSERT_TRUE(set.Add(V(1.0, 0.0), V(0.0, 1.0), "a", "b").ok());
  EXPECT_TRUE(set.Satisfies({1.0, 0.0}));
  EXPECT_FALSE(set.Satisfies({-1.0, 0.0}));
}

// Property: the reduced constraint set accepts exactly the same weight
// vectors as the full set, across random DAGs and random probes.
class ReductionEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ReductionEquivalence, SameValidRegion) {
  Rng rng(1000 + GetParam());
  PreferenceSet set;
  const int num_nodes = 12;
  std::vector<Vec> vecs;
  for (int i = 0; i < num_nodes; ++i) {
    vecs.push_back(rng.UniformVector(3, 0.0, 1.0));
  }
  // Random edges oriented by a hidden weight so the DAG stays acyclic.
  Vec hidden = rng.UniformVector(3, -1.0, 1.0);
  for (int e = 0; e < 30; ++e) {
    int a = static_cast<int>(rng.UniformInt(num_nodes));
    int b = static_cast<int>(rng.UniformInt(num_nodes));
    if (a == b) continue;
    double ua = Dot(vecs[a], hidden);
    double ub = Dot(vecs[b], hidden);
    if (ua == ub) continue;
    if (ua < ub) std::swap(a, b);
    // Edge a ≻ b consistent with hidden; cycles cannot arise.
    Status st = set.Add(vecs[a], vecs[b], "n" + std::to_string(a),
                        "n" + std::to_string(b));
    ASSERT_TRUE(st.ok()) << st;
  }
  auto all = set.AllConstraints();
  auto reduced = set.ReducedConstraints();
  EXPECT_LE(reduced.size(), all.size());
  for (int probe = 0; probe < 300; ++probe) {
    Vec w = rng.UniformVector(3, -1.0, 1.0);
    EXPECT_EQ(SatisfiesAll(w, all), SatisfiesAll(w, reduced));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDags, ReductionEquivalence,
                         ::testing::Range(0, 10));

// Property: reduction preserves reachability (transitive closure).
TEST(PreferenceSetTest, ReductionPreservesReachability) {
  Rng rng(55);
  PreferenceSet set;
  const int num_nodes = 10;
  // Chain with extra shortcut edges: many redundancies.
  std::vector<Vec> vecs;
  for (int i = 0; i < num_nodes; ++i) {
    vecs.push_back(V(num_nodes - i, 0));
  }
  for (int i = 0; i + 1 < num_nodes; ++i) {
    ASSERT_TRUE(set.Add(vecs[i], vecs[i + 1], "n" + std::to_string(i),
                        "n" + std::to_string(i + 1))
                    .ok());
  }
  for (int e = 0; e < 15; ++e) {
    int a = static_cast<int>(rng.UniformInt(num_nodes));
    int b = static_cast<int>(rng.UniformInt(num_nodes));
    if (a >= b) continue;
    ASSERT_TRUE(set.Add(vecs[a], vecs[b], "n" + std::to_string(a),
                        "n" + std::to_string(b))
                    .ok());
  }
  // The chain edges alone connect everything; the reduction of this DAG must
  // be exactly the chain.
  auto reduced = set.ReducedConstraints();
  EXPECT_EQ(reduced.size(), static_cast<std::size_t>(num_nodes - 1));
  std::set<std::pair<std::string, std::string>> edges;
  for (const auto& p : reduced) edges.insert({p.better_key, p.worse_key});
  for (int i = 0; i + 1 < num_nodes; ++i) {
    EXPECT_TRUE(edges.count(
        {"n" + std::to_string(i), "n" + std::to_string(i + 1)}));
  }
}

}  // namespace
}  // namespace topkpkg::pref
