#include "topkpkg/pref/preference.h"

#include <memory>

#include <gtest/gtest.h>

#include "topkpkg/model/profile.h"

namespace topkpkg::pref {
namespace {

TEST(PreferenceTest, FromVectorsStoresDifference) {
  Preference p = Preference::FromVectors({0.8, 0.2}, {0.5, 0.4}, "a", "b");
  EXPECT_NEAR(p.diff[0], 0.3, 1e-12);
  EXPECT_NEAR(p.diff[1], -0.2, 1e-12);
  EXPECT_EQ(p.better_key, "a");
  EXPECT_EQ(p.worse_key, "b");
}

TEST(PreferenceTest, SatisfiesHalfSpace) {
  Preference p = Preference::FromVectors({1.0, 0.0}, {0.0, 1.0});
  EXPECT_TRUE(Satisfies({1.0, 0.0}, p));    // w·diff = 1.
  EXPECT_TRUE(Satisfies({0.5, 0.5}, p));    // Boundary: 0.
  EXPECT_FALSE(Satisfies({0.0, 1.0}, p));   // -1.
}

TEST(PreferenceTest, CountViolations) {
  std::vector<Preference> prefs = {
      Preference::FromVectors({1.0, 0.0}, {0.0, 1.0}),
      Preference::FromVectors({0.0, 1.0}, {1.0, 0.0}),
  };
  // Opposing constraints: exactly one is violated by any non-boundary w.
  EXPECT_EQ(CountViolations({1.0, 0.0}, prefs), 1u);
  EXPECT_EQ(CountViolations({0.5, 0.5}, prefs), 0u);  // Boundary of both.
  EXPECT_FALSE(SatisfiesAll({0.9, 0.0}, prefs));
  EXPECT_TRUE(SatisfiesAll({0.5, 0.5}, prefs));
}

TEST(NoiseModelTest, HardConstraintsWithPsiOne) {
  NoiseModel noise;  // psi = 1.
  Rng rng(1);
  EXPECT_FALSE(noise.ShouldReject(0, rng));
  EXPECT_TRUE(noise.ShouldReject(1, rng));
  EXPECT_TRUE(noise.ShouldReject(5, rng));
}

TEST(NoiseModelTest, SoftRejectionProbabilityMatchesFormula) {
  NoiseModel noise{0.3};  // Reject prob for x violations: 1-(1-ψ)^x.
  Rng rng(2);
  const int n = 40000;
  int rejected1 = 0;
  int rejected3 = 0;
  for (int i = 0; i < n; ++i) {
    if (noise.ShouldReject(1, rng)) ++rejected1;
    if (noise.ShouldReject(3, rng)) ++rejected3;
  }
  EXPECT_NEAR(rejected1 / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(rejected3 / static_cast<double>(n), 1.0 - 0.7 * 0.7 * 0.7,
              0.01);
}

TEST(NoiseModelTest, NeverRejectsWithoutViolations) {
  NoiseModel noise{0.01};
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(noise.ShouldReject(0, rng));
}

TEST(RandomPackageTest, SizeWithinBounds) {
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    model::Package p = RandomPackage(50, 6, rng);
    EXPECT_GE(p.size(), 1u);
    EXPECT_LE(p.size(), 6u);
    for (model::ItemId id : p.items()) EXPECT_LT(id, 50u);
  }
}

TEST(RandomPackageTest, SizeClampedToItemCount) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    model::Package p = RandomPackage(3, 10, rng);
    EXPECT_LE(p.size(), 3u);
  }
}

class GeneratePreferencesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<model::ItemTable>(std::move(
        model::ItemTable::Create({{0.9, 0.1},
                                  {0.2, 0.8},
                                  {0.5, 0.5},
                                  {0.7, 0.3},
                                  {0.1, 0.9}})).value());
    profile_ = std::make_unique<model::Profile>(
        std::move(model::Profile::Parse("sum,avg")).value());
    evaluator_ = std::make_unique<model::PackageEvaluator>(table_.get(),
                                                           profile_.get(), 3);
  }

  std::unique_ptr<model::ItemTable> table_;
  std::unique_ptr<model::Profile> profile_;
  std::unique_ptr<model::PackageEvaluator> evaluator_;
};

TEST_F(GeneratePreferencesTest, HiddenWeightSatisfiesAllGenerated) {
  Rng rng(6);
  Vec hidden = {0.7, -0.4};
  auto prefs = GenerateConsistentPreferences(*evaluator_, hidden, 50, 3, rng);
  EXPECT_EQ(prefs.size(), 50u);
  EXPECT_TRUE(SatisfiesAll(hidden, prefs));
}

TEST_F(GeneratePreferencesTest, KeysIdentifyDistinctPackages) {
  Rng rng(7);
  auto prefs =
      GenerateConsistentPreferences(*evaluator_, {0.5, 0.5}, 20, 3, rng);
  for (const auto& p : prefs) {
    EXPECT_NE(p.better_key, p.worse_key);
    EXPECT_FALSE(p.better_key.empty());
  }
}

}  // namespace
}  // namespace topkpkg::pref
