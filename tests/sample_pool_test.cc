#include "topkpkg/sampling/sample_pool.h"

#include <gtest/gtest.h>

namespace topkpkg::sampling {
namespace {

std::vector<WeightedSample> MakeSamples(std::initializer_list<Vec> ws) {
  std::vector<WeightedSample> out;
  for (const Vec& w : ws) out.push_back(WeightedSample{w, 1.0});
  return out;
}

TEST(SamplePoolTest, BasicAccessors) {
  SamplePool pool(MakeSamples({{0.1, 0.9}, {0.5, 0.5}}));
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.dim(), 2u);
  EXPECT_DOUBLE_EQ(pool.sample(1).w[0], 0.5);
}

TEST(SamplePoolTest, SortedListsAscendingPerFeature) {
  SamplePool pool(MakeSamples({{0.3, 0.9}, {0.1, 0.5}, {0.2, 0.7}}));
  const auto& lists = pool.sorted_lists();
  ASSERT_EQ(lists.size(), 2u);
  EXPECT_DOUBLE_EQ(lists[0][0].first, 0.1);
  EXPECT_EQ(lists[0][0].second, 1u);
  EXPECT_DOUBLE_EQ(lists[0][2].first, 0.3);
  EXPECT_DOUBLE_EQ(lists[1][0].first, 0.5);
}

TEST(SamplePoolTest, AppendInvalidatesLists) {
  SamplePool pool(MakeSamples({{0.5}}));
  EXPECT_EQ(pool.sorted_lists()[0].size(), 1u);
  pool.Append(MakeSamples({{0.1}}));
  const auto& lists = pool.sorted_lists();
  ASSERT_EQ(lists[0].size(), 2u);
  EXPECT_DOUBLE_EQ(lists[0][0].first, 0.1);
}

TEST(SamplePoolTest, ReplaceRemovesAndAppends) {
  SamplePool pool(MakeSamples({{0.1}, {0.2}, {0.3}, {0.4}}));
  pool.Replace({1, 3}, MakeSamples({{0.9}}));
  ASSERT_EQ(pool.size(), 3u);
  EXPECT_DOUBLE_EQ(pool.sample(0).w[0], 0.1);
  EXPECT_DOUBLE_EQ(pool.sample(1).w[0], 0.3);
  EXPECT_DOUBLE_EQ(pool.sample(2).w[0], 0.9);
}

TEST(SamplePoolTest, ReplaceHandlesUnsortedDuplicateIndices) {
  SamplePool pool(MakeSamples({{0.1}, {0.2}, {0.3}}));
  pool.Replace({2, 0, 2}, {});
  ASSERT_EQ(pool.size(), 1u);
  EXPECT_DOUBLE_EQ(pool.sample(0).w[0], 0.2);
}

TEST(SamplePoolTest, EmptyPool) {
  SamplePool pool;
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.dim(), 0u);
  pool.Append(MakeSamples({{0.5, 0.5}}));
  EXPECT_EQ(pool.dim(), 2u);
}

}  // namespace
}  // namespace topkpkg::sampling
