#include "topkpkg/sampling/sample_pool.h"

#include <gtest/gtest.h>

namespace topkpkg::sampling {
namespace {

std::vector<WeightedSample> MakeSamples(std::initializer_list<Vec> ws) {
  std::vector<WeightedSample> out;
  for (const Vec& w : ws) out.push_back(WeightedSample{w, 1.0});
  return out;
}

TEST(SamplePoolTest, BasicAccessors) {
  SamplePool pool(MakeSamples({{0.1, 0.9}, {0.5, 0.5}}));
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.dim(), 2u);
  EXPECT_DOUBLE_EQ(pool.sample(1).w[0], 0.5);
}

TEST(SamplePoolTest, SortedListsAscendingPerFeature) {
  SamplePool pool(MakeSamples({{0.3, 0.9}, {0.1, 0.5}, {0.2, 0.7}}));
  const auto& lists = pool.sorted_lists();
  ASSERT_EQ(lists.size(), 2u);
  EXPECT_DOUBLE_EQ(lists[0][0].first, 0.1);
  EXPECT_EQ(lists[0][0].second, 1u);
  EXPECT_DOUBLE_EQ(lists[0][2].first, 0.3);
  EXPECT_DOUBLE_EQ(lists[1][0].first, 0.5);
}

TEST(SamplePoolTest, AppendInvalidatesLists) {
  SamplePool pool(MakeSamples({{0.5}}));
  EXPECT_EQ(pool.sorted_lists()[0].size(), 1u);
  pool.Append(MakeSamples({{0.1}}));
  const auto& lists = pool.sorted_lists();
  ASSERT_EQ(lists[0].size(), 2u);
  EXPECT_DOUBLE_EQ(lists[0][0].first, 0.1);
}

TEST(SamplePoolTest, ReplaceRemovesAndAppends) {
  SamplePool pool(MakeSamples({{0.1}, {0.2}, {0.3}, {0.4}}));
  pool.Replace({1, 3}, MakeSamples({{0.9}}));
  ASSERT_EQ(pool.size(), 3u);
  EXPECT_DOUBLE_EQ(pool.sample(0).w[0], 0.1);
  EXPECT_DOUBLE_EQ(pool.sample(1).w[0], 0.3);
  EXPECT_DOUBLE_EQ(pool.sample(2).w[0], 0.9);
}

TEST(SamplePoolTest, ReplaceHandlesUnsortedDuplicateIndices) {
  // Regression: without dedup before the compaction pass, a duplicated
  // violator index would erase the wrong sample (and over-shrink the pool).
  SamplePool pool(MakeSamples({{0.1}, {0.2}, {0.3}}));
  PoolDelta delta = pool.Replace({2, 0, 2}, {});
  ASSERT_EQ(pool.size(), 1u);
  EXPECT_DOUBLE_EQ(pool.sample(0).w[0], 0.2);
  // The delta reports each removal once, even for the duplicated index.
  EXPECT_EQ(delta.removed_ids.size(), 2u);
  EXPECT_EQ(delta.surviving_ids.size(), 1u);
  EXPECT_EQ(delta.surviving_ids[0], pool.id(0));
}

TEST(SamplePoolTest, MintsStableUniqueIds) {
  SamplePool pool(MakeSamples({{0.1}, {0.2}, {0.3}}));
  EXPECT_NE(pool.id(0), kInvalidSampleId);
  EXPECT_NE(pool.id(0), pool.id(1));
  EXPECT_NE(pool.id(1), pool.id(2));
  const SampleId survivor = pool.id(2);
  // Ids travel with samples through Replace's compaction and are never
  // reused for fresh samples.
  PoolDelta delta = pool.Replace({0, 1}, MakeSamples({{0.9}}));
  ASSERT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.id(0), survivor);
  EXPECT_NE(pool.id(1), survivor);
  ASSERT_EQ(delta.added_ids.size(), 1u);
  EXPECT_EQ(delta.added_ids[0], pool.id(1));
  EXPECT_EQ(delta.surviving_ids, (std::vector<SampleId>{survivor}));
}

TEST(SamplePoolTest, AppendReportsDelta) {
  SamplePool pool(MakeSamples({{0.1}, {0.2}}));
  PoolDelta delta = pool.Append(MakeSamples({{0.3}, {0.4}}));
  EXPECT_EQ(delta.surviving_ids.size(), 2u);
  ASSERT_EQ(delta.added_ids.size(), 2u);
  EXPECT_TRUE(delta.removed_ids.empty());
  EXPECT_EQ(delta.added_ids[0], pool.id(2));
  EXPECT_EQ(delta.added_ids[1], pool.id(3));
  // added ∪ surviving covers the whole pool.
  EXPECT_EQ(delta.added_ids.size() + delta.surviving_ids.size(), pool.size());
}

TEST(SamplePoolTest, AppendOverwritesIncomingIds) {
  SamplePool pool(MakeSamples({{0.1}}));
  std::vector<WeightedSample> fresh = MakeSamples({{0.2}});
  fresh[0].id = 12345;  // A stale id from another pool must not leak in.
  pool.Append(std::move(fresh));
  EXPECT_NE(pool.id(1), 12345u);
  EXPECT_NE(pool.id(1), pool.id(0));
}

TEST(SamplePoolTest, EmptyPool) {
  SamplePool pool;
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.dim(), 0u);
  pool.Append(MakeSamples({{0.5, 0.5}}));
  EXPECT_EQ(pool.dim(), 2u);
}

}  // namespace
}  // namespace topkpkg::sampling
