#include "topkpkg/topk/topk_pkg.h"

#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "topkpkg/common/random.h"
#include "topkpkg/data/generators.h"
#include "topkpkg/topk/naive_enumerator.h"

namespace topkpkg::topk {
namespace {

using model::ItemTable;
using model::Package;
using model::PackageEvaluator;
using model::Profile;

struct Workload {
  std::unique_ptr<ItemTable> table;
  std::unique_ptr<Profile> profile;
  std::unique_ptr<PackageEvaluator> evaluator;
};

Workload MakeWorkload(ItemTable table, const std::string& profile_spec,
                      std::size_t phi) {
  Workload w;
  w.table = std::make_unique<ItemTable>(std::move(table));
  w.profile =
      std::make_unique<Profile>(std::move(Profile::Parse(profile_spec)).value());
  w.evaluator =
      std::make_unique<PackageEvaluator>(w.table.get(), w.profile.get(), phi);
  return w;
}

Workload Fig1Workload() {
  return MakeWorkload(
      std::move(ItemTable::Create({{0.6, 0.2}, {0.4, 0.4}, {0.2, 0.4}}))
          .value(),
      "sum,avg", 2);
}

TEST(TopKPkgTest, Figure2Top2UnderEachWeightVector) {
  Workload w = Fig1Workload();
  TopKPkgSearch search(w.evaluator.get());
  auto r1 = search.Search({0.5, 0.1}, 2);
  ASSERT_TRUE(r1.ok()) << r1.status();
  ASSERT_EQ(r1->packages.size(), 2u);
  EXPECT_EQ(r1->packages[0].package, Package::Of({0, 1}));
  EXPECT_NEAR(r1->packages[0].utility, 0.575, 1e-12);
  EXPECT_EQ(r1->packages[1].package, Package::Of({0, 2}));

  auto r2 = search.Search({0.1, 0.5}, 2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->packages[0].package, Package::Of({1, 2}));
  EXPECT_EQ(r2->packages[1].package, Package::Of({1}));

  auto r3 = search.Search({0.1, 0.1}, 2);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->packages[0].package, Package::Of({0, 1}));
  EXPECT_EQ(r3->packages[1].package, Package::Of({1, 2}));
}

TEST(TopKPkgTest, ValidatesArguments) {
  Workload w = Fig1Workload();
  TopKPkgSearch search(w.evaluator.get());
  EXPECT_FALSE(search.Search({0.5, 0.1}, 0).ok());
  EXPECT_FALSE(search.Search({0.5}, 1).ok());
}

TEST(TopKPkgTest, AllNegativeWeightsReturnsLeastBadSingleton) {
  // With purely negative weights the empty package would be "best", but
  // packages must be non-empty: the top package is the cheapest singleton.
  auto w = MakeWorkload(
      std::move(ItemTable::Create({{5.0}, {1.0}, {3.0}})).value(), "sum", 2);
  TopKPkgSearch search(w.evaluator.get());
  auto r = search.Search({-1.0}, 2);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->packages.size(), 2u);
  EXPECT_EQ(r->packages[0].package, Package::Of({1}));
  EXPECT_EQ(r->packages[1].package, Package::Of({2}));
  EXPECT_LT(r->packages[0].utility, 0.0);
}

TEST(TopKPkgTest, ZeroWeightsReturnLexicographicTieBreak) {
  // All utilities are 0, so the deterministic tie-break decides: ascending
  // item-id sequence, i.e. the oracle's lexicographic DFS order — not the
  // first-k-singletons shortcut this path used to take.
  auto w = MakeWorkload(
      std::move(ItemTable::Create({{5.0}, {1.0}})).value(), "sum", 2);
  TopKPkgSearch search(w.evaluator.get());
  auto r = search.Search({0.0}, 2);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->packages.size(), 2u);
  EXPECT_EQ(r->packages[0].package, Package::Of({0}));
  EXPECT_EQ(r->packages[1].package, Package::Of({0, 1}));
  EXPECT_DOUBLE_EQ(r->packages[0].utility, 0.0);
}

TEST(TopKPkgTest, SetMonotoneSumFillsToPhi) {
  auto w = MakeWorkload(
      std::move(ItemTable::Create({{4.0}, {3.0}, {2.0}, {1.0}})).value(),
      "sum", 3);
  TopKPkgSearch search(w.evaluator.get());
  auto r = search.Search({1.0}, 1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->packages[0].package, Package::Of({0, 1, 2}));
  EXPECT_NEAR(r->packages[0].utility, 1.0, 1e-12);  // Normalized top-3 sum.
}

TEST(TopKPkgTest, AccessesFewItemsOnLargeEasyInstance) {
  auto table = std::move(data::GenerateUniform(20000, 3, 77)).value();
  auto w = MakeWorkload(std::move(table), "sum,avg,min", 3);
  TopKPkgSearch search(w.evaluator.get());
  // A dominant-feature utility: the boundary item τ tightens quickly, so
  // the branch-and-bound touches only the head of each list. (With several
  // equally-weighted independent features the composite τ bound is loose —
  // see DESIGN.md — and far more of the lists must be scanned.)
  auto r = search.Search({0.9, 0.15, 0.1}, 5);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->truncated);
  EXPECT_LT(r->items_accessed, 20000u);
  EXPECT_EQ(r->packages.size(), 5u);
}

TEST(TopKPkgTest, FilterRestrictsResults) {
  Workload w = Fig1Workload();
  TopKPkgSearch search(w.evaluator.get());
  TopKPkgSearch::PackageFilter only_pairs = [](const Package& p) {
    return p.size() == 2;
  };
  auto r = search.Search({0.5, 0.1}, 3, {}, &only_pairs);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->packages.size(), 3u);
  for (const auto& sp : r->packages) EXPECT_EQ(sp.package.size(), 2u);
  EXPECT_EQ(r->packages[0].package, Package::Of({0, 1}));
}

TEST(TopKPkgTest, MaxExpansionsTruncatesGracefully) {
  auto table = std::move(data::GenerateUniform(500, 2, 5)).value();
  auto w = MakeWorkload(std::move(table), "sum,sum", 4);
  TopKPkgSearch search(w.evaluator.get());
  SearchLimits limits;
  limits.max_expansions = 50;
  auto r = search.Search({0.8, 0.6}, 3, limits);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->truncated);
  EXPECT_FALSE(r->packages.empty());
}

// ---- Oracle equivalence sweeps -------------------------------------------

// Profiles without systematic ties (sum/avg on continuous random data): the
// branch-and-bound must return exactly the oracle's list.
class ExactEquivalence
    : public ::testing::TestWithParam<
          std::tuple<int, const char*, int, data::SyntheticKind>> {};

TEST_P(ExactEquivalence, MatchesOracle) {
  auto [seed, spec, phi, kind] = GetParam();
  auto profile = std::move(Profile::Parse(spec)).value();
  auto table = std::move(data::GenerateSynthetic(
      kind, 12, profile.num_features(), static_cast<uint64_t>(seed)))
      .value();
  auto w = MakeWorkload(std::move(table), spec,
                        static_cast<std::size_t>(phi));
  TopKPkgSearch search(w.evaluator.get());
  NaivePackageEnumerator oracle(w.evaluator.get());
  Rng rng(static_cast<uint64_t>(seed) + 500);
  const std::size_t m = w.profile->num_features();
  for (int trial = 0; trial < 6; ++trial) {
    Vec weights = rng.UniformVector(m, -1.0, 1.0);
    auto fast = search.Search(weights, 4);
    auto slow = oracle.Search(weights, 4);
    ASSERT_TRUE(fast.ok()) << fast.status();
    ASSERT_TRUE(slow.ok()) << slow.status();
    ASSERT_EQ(fast->packages.size(), slow->packages.size());
    for (std::size_t i = 0; i < slow->packages.size(); ++i) {
      EXPECT_EQ(fast->packages[i].package, slow->packages[i].package)
          << "seed=" << seed << " spec=" << spec << " phi=" << phi
          << " trial=" << trial << " rank=" << i;
      EXPECT_NEAR(fast->packages[i].utility, slow->packages[i].utility,
                  1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SumAvgProfiles, ExactEquivalence,
    ::testing::Combine(
        ::testing::Values(1, 2, 3),
        ::testing::Values("sum,avg", "sum,sum,avg", "avg,avg"),
        ::testing::Values(1, 2, 3),
        ::testing::Values(data::SyntheticKind::kUniform,
                          data::SyntheticKind::kAntiCorrelated)));

// Profiles with plateauing aggregates (max/min) tie frequently; the paper's
// strict-improvement expansion is exact for the top-1 utility, and with
// expand_on_ties the full list matches the oracle exactly.
class TieingProfiles
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(TieingProfiles, Top1UtilityExactAndTiesModeMatchesOracle) {
  auto [seed, spec] = GetParam();
  auto profile = std::move(Profile::Parse(spec)).value();
  auto table = std::move(data::GenerateUniform(
      10, profile.num_features(), static_cast<uint64_t>(seed) + 40)).value();
  auto w = MakeWorkload(std::move(table), spec, 3);
  TopKPkgSearch search(w.evaluator.get());
  NaivePackageEnumerator oracle(w.evaluator.get());
  Rng rng(static_cast<uint64_t>(seed) + 900);
  const std::size_t m = w.profile->num_features();
  for (int trial = 0; trial < 5; ++trial) {
    Vec weights = rng.UniformVector(m, -1.0, 1.0);
    auto slow = oracle.Search(weights, 4);
    ASSERT_TRUE(slow.ok());

    auto strict = search.Search(weights, 4);
    ASSERT_TRUE(strict.ok()) << strict.status();
    EXPECT_NEAR(strict->packages[0].utility, slow->packages[0].utility, 1e-9)
        << "top-1 utility must be exact even in strict mode";

    SearchLimits ties;
    ties.expand_on_ties = true;
    auto exact = search.Search(weights, 4, ties);
    ASSERT_TRUE(exact.ok()) << exact.status();
    ASSERT_EQ(exact->packages.size(), slow->packages.size());
    for (std::size_t i = 0; i < slow->packages.size(); ++i) {
      EXPECT_EQ(exact->packages[i].package, slow->packages[i].package)
          << "seed=" << seed << " spec=" << spec << " rank=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MinMaxProfiles, TieingProfiles,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values("max,min", "max,sum", "min,avg",
                                         "max,max,sum")));

// Null-valued features must not break the bound.
TEST(TopKPkgTest, NullValuesStillMatchOracle) {
  Rng rng(321);
  std::vector<Vec> rows;
  for (int i = 0; i < 10; ++i) {
    Vec row = rng.UniformVector(3, 0.0, 1.0);
    if (rng.Bernoulli(0.3)) row[rng.UniformInt(3)] = model::kNullValue;
    rows.push_back(std::move(row));
  }
  auto w = MakeWorkload(std::move(model::ItemTable::Create(rows)).value(),
                        "sum,avg,sum", 3);
  TopKPkgSearch search(w.evaluator.get());
  NaivePackageEnumerator oracle(w.evaluator.get());
  for (int trial = 0; trial < 10; ++trial) {
    Vec weights = rng.UniformVector(3, -1.0, 1.0);
    auto fast = search.Search(weights, 3);
    auto slow = oracle.Search(weights, 3);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    for (std::size_t i = 0; i < slow->packages.size(); ++i) {
      EXPECT_NEAR(fast->packages[i].utility, slow->packages[i].utility, 1e-9)
          << "trial " << trial << " rank " << i;
    }
  }
}

TEST(UpperExpTest, NullAwareBoundDominatesNullMinNegativeExtensions) {
  // The closed exactness gap, at the reference entry point: a min-aggregated
  // feature with negative weight over a nullable column. The plain τ-padded
  // bound under-bounds the all-null extension (count-0 min contributes 0);
  // with `nullable_columns` the relaxation floors that feature's bound
  // contribution at the count-0 value, restoring admissibility.
  auto w = MakeWorkload(
      std::move(ItemTable::Create(
                    {{0.5, 0.3}, {0.8, 0.6}, {model::kNullValue, 0.9}}))
          .value(),
      "min,sum", 2);
  const Vec weights = {-0.7, 0.4};
  const Vec tau = {0.5, 0.9};  // Frontier of the negative/positive walks.
  model::AggregateState empty = w.evaluator->NewState();
  const bool mono = model::IsSetMonotone(*w.profile, weights);
  const std::vector<std::uint8_t> nullable = {1, 0};
  const double plain = UpperExp(empty, tau, weights, 2, mono);
  const double aware = UpperExp(empty, tau, weights, 2, mono, &nullable);
  // Package {2} is null on the min feature, so it contributes 0 there and
  // 0.4 * (0.9 / 1.5) = 0.24 on the sum feature (scale = top-2 sum).
  const double true_best = w.evaluator->Utility(Package::Of({2}), weights);
  EXPECT_NEAR(true_best, 0.24, 1e-12);
  EXPECT_LT(plain + 1e-12, true_best);  // The plain bound is NOT admissible.
  EXPECT_GE(aware + 1e-12, true_best);  // The null-aware bound is.
  // On a state that already holds a non-null min value the relaxation must
  // not fire: both bounds agree bit-for-bit.
  model::AggregateState nonempty = w.evaluator->NewState();
  nonempty.Add(w.table->Row(0));
  EXPECT_EQ(UpperExp(nonempty, tau, weights, 1, mono),
            UpperExp(nonempty, tau, weights, 1, mono, &nullable));
}

TEST(UpperExpTest, DominatesBruteForceExtensions) {
  // Theorem 3: upper-exp(p) bounds the utility of any extension of p with
  // τ-dominated items.
  auto w = MakeWorkload(
      std::move(ItemTable::Create({{0.9, 0.1}, {0.5, 0.5}, {0.1, 0.9}}))
          .value(),
      "sum,avg", 3);
  Vec weights = {0.7, -0.4};
  Vec tau = {0.9, 0.9};  // Dominates every item in the desirable direction...
  model::AggregateState state = w.evaluator->NewState();
  state.Add(w.table->Row(0));
  bool mono = model::IsSetMonotone(*w.profile, weights);
  double bound = UpperExp(state, tau, weights, 2, mono);
  // ... so it must bound every true extension of {0}.
  NaivePackageEnumerator oracle(w.evaluator.get());
  auto all = oracle.Search(weights, 100);
  ASSERT_TRUE(all.ok());
  for (const auto& sp : all->packages) {
    if (sp.package.Contains(0)) {
      EXPECT_GE(bound + 1e-12, sp.utility) << sp.package.Key();
    }
  }
}

}  // namespace
}  // namespace topkpkg::topk
