#include "topkpkg/data/nba_like.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace topkpkg::data {
namespace {

TEST(NbaLikeTest, MatchesPaperDatasetShape) {
  auto t = GenerateNbaLike();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_items(), 3705u);   // Player count from Sec. 5.
  EXPECT_EQ(t->num_features(), 17u);  // Feature count from Sec. 5.
}

TEST(NbaLikeTest, DeterministicBySeed) {
  NbaLikeOptions opts;
  opts.num_players = 100;
  auto t1 = GenerateNbaLike(opts);
  auto t2 = GenerateNbaLike(opts);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  for (std::size_t f = 0; f < 17; ++f) {
    EXPECT_DOUBLE_EQ(t1->value(3, f), t2->value(3, f));
  }
}

TEST(NbaLikeTest, AllValuesNonNegative) {
  NbaLikeOptions opts;
  opts.num_players = 500;
  auto t = GenerateNbaLike(opts);
  ASSERT_TRUE(t.ok());
  for (std::size_t i = 0; i < t->num_items(); ++i) {
    for (std::size_t f = 0; f < t->num_features(); ++f) {
      EXPECT_GE(t->value(static_cast<model::ItemId>(i), f), 0.0);
    }
  }
}

TEST(NbaLikeTest, VolumeStatsPositivelyCorrelated) {
  // Career minutes and points must track each other strongly, as in real
  // career statistics.
  NbaLikeOptions opts;
  opts.num_players = 2000;
  auto t = GenerateNbaLike(opts);
  ASSERT_TRUE(t.ok());
  // minutes = feature 1, points = feature 2.
  double mx = 0.0;
  double my = 0.0;
  const std::size_t n = t->num_items();
  for (std::size_t i = 0; i < n; ++i) {
    mx += t->value(static_cast<model::ItemId>(i), 1);
    my += t->value(static_cast<model::ItemId>(i), 2);
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double dx = t->value(static_cast<model::ItemId>(i), 1) - mx;
    double dy = t->value(static_cast<model::ItemId>(i), 2) - my;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }
  EXPECT_GT(sxy / std::sqrt(sxx * syy), 0.8);
}

TEST(NbaLikeTest, CareerTotalsAreHeavyTailed) {
  NbaLikeOptions opts;
  opts.num_players = 3000;
  auto t = GenerateNbaLike(opts);
  ASSERT_TRUE(t.ok());
  std::vector<double> points;
  for (std::size_t i = 0; i < t->num_items(); ++i) {
    points.push_back(t->value(static_cast<model::ItemId>(i), 2));
  }
  std::sort(points.begin(), points.end());
  double median = points[points.size() / 2];
  double p99 = points[points.size() * 99 / 100];
  EXPECT_GT(p99, 5.0 * median) << "top players should dwarf the median";
}

TEST(NbaLikeTest, PercentagesBounded) {
  NbaLikeOptions opts;
  opts.num_players = 1000;
  auto t = GenerateNbaLike(opts);
  ASSERT_TRUE(t.ok());
  // fg_pct = 12, ft_pct = 13, tp_pct = 14.
  for (std::size_t i = 0; i < t->num_items(); ++i) {
    for (std::size_t f : {12u, 13u, 14u}) {
      EXPECT_LE(t->value(static_cast<model::ItemId>(i), f), 1.0);
    }
  }
}

TEST(NbaLikeExperimentTest, SelectsRequestedFeatureCount) {
  NbaLikeOptions opts;
  opts.num_players = 200;
  auto t = GenerateNbaLikeExperiment(10, 5, opts);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_features(), 10u);
  EXPECT_EQ(t->num_items(), 200u);
}

TEST(NbaLikeExperimentTest, SelectionSeedChangesColumns) {
  NbaLikeOptions opts;
  opts.num_players = 50;
  auto t1 = GenerateNbaLikeExperiment(5, 1, opts);
  auto t2 = GenerateNbaLikeExperiment(5, 2, opts);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  bool any_name_differs = false;
  for (std::size_t f = 0; f < 5; ++f) {
    if (t1->feature_name(f) != t2->feature_name(f)) any_name_differs = true;
  }
  EXPECT_TRUE(any_name_differs);
}

TEST(NbaLikeExperimentTest, ValidatesFeatureCount) {
  EXPECT_FALSE(GenerateNbaLikeExperiment(0, 1).ok());
  EXPECT_FALSE(GenerateNbaLikeExperiment(18, 1).ok());
}

}  // namespace
}  // namespace topkpkg::data
