// Property tests for TopKPkgSearch::SearchBatch: one shared branch-and-bound
// walk scoring a whole pool of weight vectors must be bit-identical *per
// sample* to the scalar Search — packages, utilities, tie order, truncation
// flag, and every work counter (items_accessed, packages_generated,
// expansions) — across profiles × signs × nulls × filters × truncating
// limits × batch widths, including widths above kMaxBatchLanes (internal
// chunking) and mixed-signature pools (internal grouping). A BatchScratch
// reused across heterogeneous calls must leak no state, and the ranker-level
// batched path must reproduce the scalar ranking exactly.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "topkpkg/common/random.h"
#include "topkpkg/data/generators.h"
#include "topkpkg/model/package.h"
#include "topkpkg/ranking/rankers.h"
#include "topkpkg/topk/topk_pkg.h"

namespace topkpkg::topk {
namespace {

using model::ItemTable;
using model::Package;
using model::PackageEvaluator;
using model::Profile;

struct Workload {
  std::unique_ptr<ItemTable> table;
  std::unique_ptr<Profile> profile;
  std::unique_ptr<PackageEvaluator> evaluator;
};

Workload MakeWorkload(ItemTable table, const std::string& profile_spec,
                      std::size_t phi) {
  Workload w;
  w.table = std::make_unique<ItemTable>(std::move(table));
  w.profile = std::make_unique<Profile>(
      std::move(Profile::Parse(profile_spec)).value());
  w.evaluator =
      std::make_unique<PackageEvaluator>(w.table.get(), w.profile.get(), phi);
  return w;
}

ItemTable RandomTable(std::size_t n, std::size_t m, double null_prob,
                      Rng& rng) {
  std::vector<Vec> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vec row = rng.UniformVector(m, 0.0, 1.0);
    for (double& v : row) {
      if (rng.Bernoulli(null_prob)) v = model::kNullValue;
    }
    rows.push_back(std::move(row));
  }
  return std::move(ItemTable::Create(std::move(rows))).value();
}

// Mixed signs with occasional exact zeros — zeros deactivate features, so a
// pool drawn this way spans several access signatures and exercises
// SearchBatch's internal grouping as well as its shared walks.
Vec RandomWeights(std::size_t m, Rng& rng) {
  Vec w = rng.UniformVector(m, -1.0, 1.0);
  for (double& v : w) {
    if (rng.Bernoulli(0.2)) v = 0.0;
  }
  return w;
}

// A pool of `width` weight vectors sharing one sign pattern (one access
// signature): the regime where the whole pool rides a single shared walk.
std::vector<Vec> SignCoherentPool(std::size_t m, std::size_t width, Rng& rng) {
  Vec signs = rng.UniformVector(m, -1.0, 1.0);
  std::vector<Vec> pool;
  pool.reserve(width);
  for (std::size_t j = 0; j < width; ++j) {
    Vec w(m);
    for (std::size_t f = 0; f < m; ++f) {
      double mag = 0.05 + 0.95 * rng.Uniform();
      w[f] = signs[f] < 0.0 ? -mag : mag;
    }
    pool.push_back(std::move(w));
  }
  return pool;
}

// Full bit-equivalence: same packages, bitwise-equal utilities, same
// truncation flag and work counters.
void ExpectSameResult(const SearchResult& batch, const SearchResult& scalar,
                      const std::string& label) {
  EXPECT_EQ(batch.truncated, scalar.truncated) << label;
  EXPECT_EQ(batch.items_accessed, scalar.items_accessed) << label;
  EXPECT_EQ(batch.packages_generated, scalar.packages_generated) << label;
  EXPECT_EQ(batch.expansions, scalar.expansions) << label;
  ASSERT_EQ(batch.packages.size(), scalar.packages.size()) << label;
  for (std::size_t i = 0; i < batch.packages.size(); ++i) {
    EXPECT_EQ(batch.packages[i].package, scalar.packages[i].package)
        << label << " rank=" << i;
    EXPECT_EQ(batch.packages[i].utility, scalar.packages[i].utility)
        << label << " rank=" << i;
  }
}

void ExpectBatchMatchesScalar(const TopKPkgSearch& search,
                              const std::vector<Vec>& pool, std::size_t k,
                              const SearchLimits& limits,
                              const TopKPkgSearch::PackageFilter* filter,
                              const std::string& label,
                              const ExecutionOptions& exec = {}) {
  std::vector<const Vec*> ptrs;
  ptrs.reserve(pool.size());
  for (const Vec& w : pool) ptrs.push_back(&w);
  auto batch = search.SearchBatch(ptrs, k, limits, filter, nullptr, exec);
  ASSERT_TRUE(batch.ok()) << label << ": " << batch.status();
  ASSERT_EQ(batch->size(), pool.size()) << label;
  for (std::size_t j = 0; j < pool.size(); ++j) {
    SearchScratch fresh;
    auto scalar = search.Search(pool[j], k, limits, filter, &fresh);
    ASSERT_TRUE(scalar.ok()) << label << ": " << scalar.status();
    ExpectSameResult((*batch)[j], *scalar,
                     label + " lane=" + std::to_string(j));
  }
}

// ---- Per-sample bit-equivalence sweep ------------------------------------
//
// (seed, profile spec, batch width) × {exact, tie-expanding, and each
// truncating limit} × {null-free, nullable} tables. Widths 1, 2, 7 exercise
// partial masks; 64 fills a whole mask word.
class BatchEquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<int, const char*, int>> {};

TEST_P(BatchEquivalenceSweep, EveryLaneMatchesItsScalarSearch) {
  auto [seed, spec, width] = GetParam();
  auto profile = std::move(Profile::Parse(spec)).value();
  const std::size_t m = profile.num_features();
  Rng rng(static_cast<uint64_t>(seed) * 104729 + 7 * width);
  const double null_prob = (seed % 2 == 0) ? 0.25 : 0.0;
  auto w = MakeWorkload(RandomTable(12, m, null_prob, rng), spec, 3);
  TopKPkgSearch search(w.evaluator.get());

  SearchLimits exact;
  SearchLimits ties;
  ties.expand_on_ties = true;
  SearchLimits tiny_expansions;
  tiny_expansions.max_expansions = 20;
  SearchLimits tiny_queue;
  tiny_queue.max_queue = 3;
  SearchLimits tiny_access;
  tiny_access.max_items_accessed = 7;
  const std::vector<std::pair<const char*, const SearchLimits*>> limit_set = {
      {"exact", &exact},
      {"ties", &ties},
      {"tiny_expansions", &tiny_expansions},
      {"tiny_queue", &tiny_queue},
      {"tiny_access", &tiny_access},
  };

  for (const auto& [limit_name, limits] : limit_set) {
    std::vector<Vec> pool = SignCoherentPool(
        m, static_cast<std::size_t>(width), rng);
    const std::size_t k = 1 + static_cast<std::size_t>(rng.UniformInt(5));
    ExpectBatchMatchesScalar(
        search, pool, k, *limits, nullptr,
        std::string("spec=") + spec + " width=" + std::to_string(width) +
            " limits=" + limit_name + " nulls=" + std::to_string(null_prob));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesTimesWidths, BatchEquivalenceSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values("sum,avg", "max,min", "sum,max,min",
                                         "avg,min", "min,avg,min"),
                       ::testing::Values(1, 2, 7, 64)));

// ---- Mixed signatures, duplicates, and zero-weight lanes -----------------

// A pool mixing sign patterns, exact duplicates, all-zero vectors (the
// lexicographic tie-break path runs scalar per lane), and NaN weights must
// still be per-lane identical: SearchBatch groups by access signature
// internally and shares a walk only within a group.
TEST(BatchHeterogeneousPoolTest, MixedSignaturesDuplicatesAndZeroLanes) {
  Rng rng(2026);
  auto w = MakeWorkload(RandomTable(12, 3, 0.2, rng), "sum,min,avg", 3);
  TopKPkgSearch search(w.evaluator.get());
  std::vector<Vec> pool = {
      {0.8, 0.2, 0.5},   {0.6, 0.9, 0.1},  // Same signature (+,+,+).
      {0.8, 0.2, 0.5},                     // Exact duplicate of lane 0.
      {-0.4, 0.7, 0.3},  {0.5, -0.6, 0.2},  // Two more signatures.
      {0.0, 0.0, 0.0},                      // Zero-active: tie-break walk.
      {0.3, 0.0, -0.9},                     // Deactivated middle feature.
      {-0.1, -0.2, -0.3},                   // All-negative.
  };
  SearchLimits ties;
  ties.expand_on_ties = true;
  for (const SearchLimits& limits : {SearchLimits{}, ties}) {
    ExpectBatchMatchesScalar(search, pool, 4, limits, nullptr,
                             "heterogeneous-pool");
  }
}

// Filters apply inside the shared walk exactly as in the scalar one.
TEST(BatchHeterogeneousPoolTest, FilterMatchesScalarPerLane) {
  Rng rng(31);
  auto w = MakeWorkload(RandomTable(11, 2, 0.0, rng), "sum,avg", 3);
  TopKPkgSearch search(w.evaluator.get());
  TopKPkgSearch::PackageFilter only_pairs = [](const Package& p) {
    return p.size() == 2;
  };
  std::vector<Vec> pool;
  for (int j = 0; j < 9; ++j) pool.push_back(RandomWeights(2, rng));
  ExpectBatchMatchesScalar(search, pool, 3, {}, &only_pairs, "filtered");
}

// Widths beyond kMaxBatchLanes are chunked internally; the seam must not
// change any lane's result.
TEST(BatchHeterogeneousPoolTest, WidthAboveMaxLanesIsChunked) {
  Rng rng(97);
  auto w = MakeWorkload(RandomTable(10, 2, 0.15, rng), "sum,min", 3);
  TopKPkgSearch search(w.evaluator.get());
  std::vector<Vec> pool = SignCoherentPool(2, kMaxBatchLanes + 7, rng);
  ExpectBatchMatchesScalar(search, pool, 3, {}, nullptr, "chunked");
}

// ---- SIMD suite × lane-compaction sweep ----------------------------------
//
// ExecutionOptions::simd and ::lane_compact_threshold claim to never change
// any result. Sweep {auto-dispatched vector suite, forced scalar reference}
// × {never compact, compact below half occupancy, compact every partial
// mask} and require every combination to stay per-lane bit-identical to the
// scalar Search — packages, utilities, truncation, and all work counters.
// Widths: 64 fills a whole mask word (full-mask fast paths + vector
// bodies), 7 and 37 keep partial masks and vector tails in play, and the
// tiny_access/tiny_queue limits retire lanes early so compaction and the
// gather kernels both see thinned masks.
class SimdCompactionSweep
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(SimdCompactionSweep, EveryExecCombinationMatchesScalarSearch) {
  auto [simd_raw, threshold, width] = GetParam();
  ExecutionOptions exec;
  exec.simd = static_cast<SimdMode>(simd_raw);
  exec.lane_compact_threshold = threshold;

  Rng rng(4242 + width);
  auto w = MakeWorkload(RandomTable(12, 3, 0.2, rng), "sum,avg,min", 3);
  TopKPkgSearch search(w.evaluator.get());

  SearchLimits exact;
  SearchLimits tiny_access;
  tiny_access.max_items_accessed = 7;
  SearchLimits tiny_queue;
  tiny_queue.max_queue = 3;
  const std::vector<std::pair<const char*, const SearchLimits*>> limit_set = {
      {"exact", &exact},
      {"tiny_access", &tiny_access},
      {"tiny_queue", &tiny_queue},
  };

  const std::string exec_label =
      std::string(exec.simd == SimdMode::kScalar ? "simd=scalar" :
                                                   "simd=auto") +
      " thr=" + std::to_string(threshold);
  for (const auto& [limit_name, limits] : limit_set) {
    std::vector<Vec> pool =
        SignCoherentPool(3, static_cast<std::size_t>(width), rng);
    ExpectBatchMatchesScalar(search, pool, 4, *limits, nullptr,
                             exec_label + " width=" + std::to_string(width) +
                                 " limits=" + limit_name,
                             exec);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SuitesTimesThresholds, SimdCompactionSweep,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(SimdMode::kAuto),
                          static_cast<int>(SimdMode::kScalar)),
        ::testing::Values(0.0, 0.5, 1.0),
        ::testing::Values(7, 37, 64)));

// The sweep above proves every suite matches Search(); this pins the
// stronger cross-suite statement directly: the auto-dispatched vector
// kernels and the forced scalar reference produce bitwise-equal lane
// results on the same pool, including on a heterogeneous pool whose
// signatures split into several sub-width walks.
TEST(SimdCompactionSweepTest, AutoAndForcedScalarAgreeLaneForLane) {
  Rng rng(90210);
  auto w = MakeWorkload(RandomTable(14, 3, 0.15, rng), "sum,max,min", 3);
  TopKPkgSearch search(w.evaluator.get());
  std::vector<Vec> pool;
  for (int j = 0; j < 23; ++j) pool.push_back(RandomWeights(3, rng));
  std::vector<const Vec*> ptrs;
  for (const Vec& v : pool) ptrs.push_back(&v);

  ExecutionOptions auto_exec;   // simd=kAuto, thr=0 (defaults).
  ExecutionOptions scalar_exec;
  scalar_exec.simd = SimdMode::kScalar;
  scalar_exec.lane_compact_threshold = 1.0;  // Maximally different path.

  auto a = search.SearchBatch(ptrs, 3, {}, nullptr, nullptr, auto_exec);
  auto s = search.SearchBatch(ptrs, 3, {}, nullptr, nullptr, scalar_exec);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(s.ok()) << s.status();
  ASSERT_EQ(a->size(), s->size());
  for (std::size_t j = 0; j < a->size(); ++j) {
    ExpectSameResult((*a)[j], (*s)[j], "lane=" + std::to_string(j));
  }
}

// ---- BatchScratch reuse ---------------------------------------------------

// One explicit BatchScratch serves interleaved calls over two evaluators of
// different dimensionality, width, k, and limits; every call must match the
// same call against a fresh scratch.
TEST(BatchScratchReuseTest, HeterogeneousCallsLeakNoState) {
  auto small = MakeWorkload(
      std::move(data::GenerateUniform(10, 2, 91)).value(), "sum,avg", 3);
  auto large = MakeWorkload(
      std::move(data::GenerateAntiCorrelated(40, 4, 92)).value(),
      "sum,max,min,avg", 4);
  TopKPkgSearch small_search(small.evaluator.get());
  TopKPkgSearch large_search(large.evaluator.get());

  SearchLimits exact;
  SearchLimits tiny_queue;
  tiny_queue.max_queue = 3;

  struct Call {
    const TopKPkgSearch* search;
    std::size_t m;
    std::size_t width;
    std::size_t k;
    const SearchLimits* limits;
  };
  const std::vector<Call> calls = {
      {&small_search, 2, 5, 2, &exact},
      {&large_search, 4, 3, 4, &tiny_queue},
      {&small_search, 2, 8, 3, &tiny_queue},
      {&large_search, 4, 6, 1, &exact},
  };

  Rng rng(616);
  BatchScratch shared;
  for (int round = 0; round < 3; ++round) {
    for (const Call& call : calls) {
      std::vector<Vec> pool;
      for (std::size_t j = 0; j < call.width; ++j) {
        pool.push_back(RandomWeights(call.m, rng));
      }
      std::vector<const Vec*> ptrs;
      for (const Vec& v : pool) ptrs.push_back(&v);
      auto reused = call.search->SearchBatch(ptrs, call.k, *call.limits,
                                             nullptr, &shared);
      BatchScratch fresh;
      auto clean = call.search->SearchBatch(ptrs, call.k, *call.limits,
                                            nullptr, &fresh);
      ASSERT_TRUE(reused.ok()) << reused.status();
      ASSERT_TRUE(clean.ok()) << clean.status();
      ASSERT_EQ(reused->size(), clean->size());
      for (std::size_t j = 0; j < reused->size(); ++j) {
        ExpectSameResult((*reused)[j], (*clean)[j],
                         "round=" + std::to_string(round) +
                             " lane=" + std::to_string(j));
      }
    }
  }
}

// ---- Ranker-level equivalence ---------------------------------------------

// The batched ComputeSampleLists path (signature-sorted chunks through
// SearchBatch) must produce exactly the scalar path's ranking — per-sample
// lists are bit-identical, so aggregation is too — for every semantics and
// for duplicate-heavy pools (the MCMC shape the unique-weight memo serves).
TEST(RankerBatchedEquivalenceTest, BatchedRankingMatchesScalarExactly) {
  Rng rng(1234);
  auto w = MakeWorkload(RandomTable(14, 3, 0.2, rng), "sum,avg,min", 3);
  ranking::PackageRanker ranker(w.evaluator.get());

  std::vector<sampling::WeightedSample> samples;
  for (int i = 0; i < 24; ++i) {
    sampling::WeightedSample s;
    s.w = RandomWeights(3, rng);
    s.weight = 0.5 + rng.Uniform();
    s.id = static_cast<sampling::SampleId>(i);
    samples.push_back(std::move(s));
    if (i % 3 == 0) {  // Metropolis-rejection shape: exact repeats.
      sampling::WeightedSample dup = samples.back();
      dup.id = static_cast<sampling::SampleId>(100 + i);
      samples.push_back(std::move(dup));
    }
  }

  for (auto semantics : {ranking::Semantics::kExp, ranking::Semantics::kTkp,
                         ranking::Semantics::kMpo}) {
    for (std::size_t batch_width : {4u, 64u}) {
      ranking::RankingOptions scalar_opts;
      scalar_opts.k = 4;
      scalar_opts.sigma = 3;
      scalar_opts.batched = false;
      ranking::RankingOptions batch_opts = scalar_opts;
      batch_opts.batched = true;
      batch_opts.exec.batch_width = batch_width;

      ranking::SearchDedupStats scalar_dedup, batch_dedup;
      auto scalar =
          ranker.Rank(samples, semantics, scalar_opts, nullptr, &scalar_dedup);
      auto batched =
          ranker.Rank(samples, semantics, batch_opts, nullptr, &batch_dedup);
      ASSERT_TRUE(scalar.ok()) << scalar.status();
      ASSERT_TRUE(batched.ok()) << batched.status();

      EXPECT_EQ(scalar_dedup.unique_searches, batch_dedup.unique_searches);
      EXPECT_GT(batch_dedup.dedup_hits, 0u);  // The dup lanes above.
      EXPECT_EQ(batched->any_truncated, scalar->any_truncated);
      ASSERT_EQ(batched->packages.size(), scalar->packages.size())
          << ranking::SemanticsName(semantics);
      for (std::size_t i = 0; i < scalar->packages.size(); ++i) {
        EXPECT_EQ(batched->packages[i].package, scalar->packages[i].package)
            << ranking::SemanticsName(semantics) << " rank=" << i;
        EXPECT_EQ(batched->packages[i].score, scalar->packages[i].score)
            << ranking::SemanticsName(semantics) << " rank=" << i;
      }
    }
  }
}

// Thread count must not change the batched output either: the chunk grid is
// fixed by (unique samples, batch_width), so sharding it is order-free.
TEST(RankerBatchedEquivalenceTest, ParallelBatchedMatchesSerialBatched) {
  Rng rng(555);
  auto w = MakeWorkload(RandomTable(12, 2, 0.0, rng), "sum,min", 3);
  ranking::PackageRanker ranker(w.evaluator.get());
  std::vector<sampling::WeightedSample> samples;
  for (int i = 0; i < 30; ++i) {
    sampling::WeightedSample s;
    s.w = RandomWeights(2, rng);
    s.id = static_cast<sampling::SampleId>(i);
    samples.push_back(std::move(s));
  }
  ranking::RankingOptions serial_opts;
  serial_opts.k = 3;
  serial_opts.exec.batch_width = 8;
  ranking::RankingOptions parallel_opts = serial_opts;
  parallel_opts.exec.num_threads = 4;
  auto serial = ranker.ComputeSampleLists(samples, serial_opts);
  auto parallel = ranker.ComputeSampleLists(samples, parallel_opts);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  ASSERT_EQ(serial->size(), parallel->size());
  for (std::size_t i = 0; i < serial->size(); ++i) {
    const auto& a = (*serial)[i];
    const auto& b = (*parallel)[i];
    EXPECT_EQ(a.truncated, b.truncated);
    ASSERT_EQ(a.packages.size(), b.packages.size()) << "sample " << i;
    for (std::size_t r = 0; r < a.packages.size(); ++r) {
      EXPECT_EQ(a.packages[r].package, b.packages[r].package);
      EXPECT_EQ(a.packages[r].utility, b.packages[r].utility);
    }
  }
}

}  // namespace
}  // namespace topkpkg::topk
