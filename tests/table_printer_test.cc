#include "topkpkg/common/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace topkpkg {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "2.5"});
  std::ostringstream os;
  t.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 2.5   |"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"x"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("| x |"), std::string::npos);
}

TEST(TablePrinterTest, FmtPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(2.0, 0), "2");
}

}  // namespace
}  // namespace topkpkg
