// Regression coverage for the canonical-order candidate re-fold: the search
// accumulates a candidate's aggregates in sorted-list access order, but
// ranks it by a re-fold in ascending item-id order — the oracle's fold
// order. Decimal data whose package utilities tie as exact reals (the
// classic 0.1+0.2+0.3 vs 0.35+0.25) used to round to different last bits
// under the two orders and swap tie ranks; after the re-fold the contract
// is oracle-exact on any data, not only bit-identical-utility ties.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "topkpkg/common/random.h"
#include "topkpkg/model/item_table.h"
#include "topkpkg/topk/naive_enumerator.h"
#include "topkpkg/topk/topk_pkg.h"

namespace topkpkg::topk {
namespace {

using model::ItemTable;
using model::Package;
using model::PackageEvaluator;
using model::Profile;

struct Workload {
  std::unique_ptr<ItemTable> table;
  std::unique_ptr<Profile> profile;
  std::unique_ptr<PackageEvaluator> evaluator;
};

Workload MakeWorkload(ItemTable table, const std::string& profile_spec,
                      std::size_t phi) {
  Workload w;
  w.table = std::make_unique<ItemTable>(std::move(table));
  w.profile = std::make_unique<Profile>(
      std::move(Profile::Parse(profile_spec)).value());
  w.evaluator =
      std::make_unique<PackageEvaluator>(w.table.get(), w.profile.get(), phi);
  return w;
}

void ExpectBitIdentical(const SearchResult& got, const SearchResult& want) {
  ASSERT_EQ(got.packages.size(), want.packages.size());
  for (std::size_t i = 0; i < got.packages.size(); ++i) {
    EXPECT_EQ(got.packages[i].package, want.packages[i].package)
        << "rank " << i;
    EXPECT_EQ(got.packages[i].utility, want.packages[i].utility)
        << "rank " << i;
  }
}

// The distilled decimal tie: items 0,1 form the pair {0.35, 0.25}, items
// 2,3,4 the triple {0.1, 0.2, 0.3}. As exact reals both sum to 0.6, but in
// FP the ascending-id fold of the triple lands one ulp above 0.6 while its
// access-order fold (descending desirability: 0.3, 0.2, 0.1) lands exactly
// on it. Pre-refold the search therefore tied the two and the item-id
// tie-break put the pair first; the oracle (which folds ascending) ranks
// the triple first. The whole 25-package ranking must now match the oracle
// bit for bit.
TEST(RefoldTieOrderTest, DecimalSumTieMatchesOracle) {
  Workload w = MakeWorkload(
      std::move(ItemTable::Create({{0.35}, {0.25}, {0.1}, {0.2}, {0.3}}))
          .value(),
      "sum", 3);
  // Sanity-check the FP premise the regression encodes.
  ASSERT_NE(0.1 + 0.2 + 0.3, 0.3 + 0.2 + 0.1);
  ASSERT_EQ(0.35 + 0.25, 0.3 + 0.2 + 0.1);

  TopKPkgSearch search(w.evaluator.get());
  NaivePackageEnumerator oracle(w.evaluator.get());
  const std::size_t k = 25;  // The whole package space: C(5,1..3).
  auto got = search.Search({1.0}, k);
  auto want = oracle.Search({1.0}, k);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(want.ok()) << want.status();
  ExpectBitIdentical(*got, *want);

  // The pair/triple order is the point of the regression: if the division
  // by the normalizer scale keeps the one-ulp gap (it does for this data),
  // the triple must rank strictly above the pair exactly as the oracle's
  // canonical fold decides, not tie-break below it.
  std::size_t pair_rank = k, triple_rank = k;
  for (std::size_t i = 0; i < want->packages.size(); ++i) {
    if (want->packages[i].package == Package::Of({0, 1})) pair_rank = i;
    if (want->packages[i].package == Package::Of({2, 3, 4})) triple_rank = i;
  }
  ASSERT_LT(pair_rank, k);
  ASSERT_LT(triple_rank, k);
  EXPECT_LT(triple_rank, pair_rank);
}

// Same shape under negative weight: the fold-order ulp flips sides, the
// search must still agree with the oracle bit for bit.
TEST(RefoldTieOrderTest, DecimalSumTieNegativeWeightMatchesOracle) {
  Workload w = MakeWorkload(
      std::move(ItemTable::Create({{0.35}, {0.25}, {0.1}, {0.2}, {0.3}}))
          .value(),
      "sum", 3);
  TopKPkgSearch search(w.evaluator.get());
  NaivePackageEnumerator oracle(w.evaluator.get());
  auto got = search.Search({-1.0}, 25);
  auto want = oracle.Search({-1.0}, 25);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(want.ok()) << want.status();
  ExpectBitIdentical(*got, *want);
}

// Decimal data over a multi-feature sum/avg profile with random weights:
// oracle bit-equivalence as a property, k covering the whole space.
TEST(RefoldTieOrderTest, DecimalGridPropertySweep) {
  Rng rng(20260731);
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 5 + rng.UniformInt(3);  // 5..7 items
    std::vector<Vec> rows;
    rows.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Values on the 0.05 grid — decimal, not binary-exact, so fold order
      // matters for sums.
      rows.push_back({0.05 * static_cast<double>(1 + rng.UniformInt(19)),
                      0.05 * static_cast<double>(1 + rng.UniformInt(19))});
    }
    Workload w =
        MakeWorkload(std::move(ItemTable::Create(rows)).value(), "sum,avg", 3);
    TopKPkgSearch search(w.evaluator.get());
    NaivePackageEnumerator oracle(w.evaluator.get());
    Vec weights = {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
    const std::size_t k =
        NaivePackageEnumerator::PackageSpaceSize(n, 3);
    SearchLimits limits;
    auto got = search.Search(weights, k, limits);
    auto want = oracle.Search(weights, k);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_TRUE(want.ok()) << want.status();
    ASSERT_EQ(got->packages.size(), want->packages.size()) << "round " << round;
    for (std::size_t i = 0; i < got->packages.size(); ++i) {
      ASSERT_EQ(got->packages[i].package, want->packages[i].package)
          << "round " << round << " rank " << i;
      ASSERT_EQ(got->packages[i].utility, want->packages[i].utility)
          << "round " << round << " rank " << i;
    }
  }
}

}  // namespace
}  // namespace topkpkg::topk
