#include "topkpkg/model/profile.h"

#include <gtest/gtest.h>

namespace topkpkg::model {
namespace {

TEST(ProfileTest, ParseRoundTrip) {
  auto p = Profile::Parse("sum,avg,null,max,min");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_features(), 5u);
  EXPECT_EQ(p->op(0), AggregateOp::kSum);
  EXPECT_EQ(p->op(1), AggregateOp::kAvg);
  EXPECT_EQ(p->op(2), AggregateOp::kNull);
  EXPECT_EQ(p->op(3), AggregateOp::kMax);
  EXPECT_EQ(p->op(4), AggregateOp::kMin);
  EXPECT_EQ(p->ToString(), "sum,avg,null,max,min");
}

TEST(ProfileTest, ParseRejectsUnknown) {
  EXPECT_FALSE(Profile::Parse("sum,median").ok());
  EXPECT_FALSE(Profile::Parse("").ok());
}

TEST(ProfileTest, CreateRejectsEmpty) {
  EXPECT_FALSE(Profile::Create({}).ok());
}

TEST(NormalizerTest, SumScaledByTopPhiValues) {
  auto table = ItemTable::Create({{0.6, 0.2}, {0.4, 0.4}, {0.2, 0.4}});
  ASSERT_TRUE(table.ok());
  auto profile = Profile::Parse("sum,avg");
  ASSERT_TRUE(profile.ok());
  Normalizer norm = ComputeNormalizer(*table, *profile, 2);
  // Fig. 1/Example 1: max size-2 sum on f1 is 0.6+0.4 = 1.0; max avg on f2
  // is the max item value 0.4.
  EXPECT_DOUBLE_EQ(norm.scale[0], 1.0);
  EXPECT_DOUBLE_EQ(norm.scale[1], 0.4);
}

TEST(NormalizerTest, MinMaxScaledByMaxValue) {
  auto table = ItemTable::Create({{2.0, 8.0}, {4.0, 6.0}});
  ASSERT_TRUE(table.ok());
  auto profile = Profile::Parse("min,max");
  ASSERT_TRUE(profile.ok());
  Normalizer norm = ComputeNormalizer(*table, *profile, 2);
  EXPECT_DOUBLE_EQ(norm.scale[0], 4.0);
  EXPECT_DOUBLE_EQ(norm.scale[1], 8.0);
}

TEST(NormalizerTest, NullAndZeroColumnsGetUnitScale) {
  auto table = ItemTable::Create({{0.0, 1.0}, {0.0, 2.0}});
  ASSERT_TRUE(table.ok());
  auto profile = Profile::Parse("sum,null");
  ASSERT_TRUE(profile.ok());
  Normalizer norm = ComputeNormalizer(*table, *profile, 2);
  EXPECT_DOUBLE_EQ(norm.scale[0], 1.0);  // All-zero column: avoid div by 0.
  EXPECT_DOUBLE_EQ(norm.scale[1], 1.0);  // Ignored feature.
}

TEST(NormalizerTest, PhiOneUsesSingleBestForSum) {
  auto table = ItemTable::Create({{3.0}, {5.0}, {1.0}});
  ASSERT_TRUE(table.ok());
  auto profile = Profile::Parse("sum");
  ASSERT_TRUE(profile.ok());
  EXPECT_DOUBLE_EQ(ComputeNormalizer(*table, *profile, 1).scale[0], 5.0);
  EXPECT_DOUBLE_EQ(ComputeNormalizer(*table, *profile, 3).scale[0], 9.0);
}

TEST(ProfileTest, AggregateOpNames) {
  EXPECT_STREQ(AggregateOpName(AggregateOp::kSum), "sum");
  EXPECT_STREQ(AggregateOpName(AggregateOp::kNull), "null");
}

}  // namespace
}  // namespace topkpkg::model
