#include "topkpkg/sampling/mcmc_sampler.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sampling_test_util.h"

namespace topkpkg::sampling {
namespace {

using sampling_test::DefaultPrior;
using sampling_test::RandomConstraints;

TEST(McmcSamplerTest, SamplesValidAndUnweighted) {
  Rng rng(1);
  Vec hidden = {0.4, -0.6, 0.5, 0.2};
  auto prefs = RandomConstraints(30, hidden, rng);
  ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = DefaultPrior(4, 2);
  McmcSampler sampler(&prior, &checker);
  SampleStats stats;
  auto samples = sampler.Draw(200, rng, &stats);
  ASSERT_TRUE(samples.ok()) << samples.status();
  EXPECT_EQ(samples->size(), 200u);
  for (const auto& s : *samples) {
    EXPECT_TRUE(checker.IsValid(s.w));
    EXPECT_TRUE(InBox(s.w, -1.0, 1.0));
    EXPECT_DOUBLE_EQ(s.weight, 1.0);
  }
}

TEST(McmcSamplerTest, ScalesToHighDimensionality) {
  // The whole point of MCMC in the paper (Fig. 6 f-j): it works where the
  // importance sampler's grid is intractable.
  Rng rng(3);
  Vec hidden = rng.UniformVector(10, -1.0, 1.0);
  auto prefs = RandomConstraints(20, hidden, rng);
  ConstraintChecker checker(prefs);
  // In 10 dimensions a diffuse prior has negligible mass inside 20 random
  // half-spaces, so give the prior a component near the region (a stand-in
  // for a fitted long-run prior); the MH chain then explores it cheaply.
  std::vector<prob::Gaussian> comps;
  comps.push_back(
      std::move(prob::Gaussian::Spherical(Scale(hidden, 0.9), 0.3)).value());
  comps.push_back(
      std::move(prob::Gaussian::Spherical(Vec(10, 0.0), 0.6)).value());
  auto prior =
      std::move(prob::GaussianMixture::Uniform(std::move(comps))).value();
  McmcSampler sampler(&prior, &checker);
  auto samples = sampler.Draw(100, rng);
  ASSERT_TRUE(samples.ok()) << samples.status();
  EXPECT_EQ(samples->size(), 100u);
  for (const auto& s : *samples) EXPECT_TRUE(checker.IsValid(s.w));
}

TEST(McmcSamplerTest, ChainMovesAroundTheRegion) {
  Rng rng(5);
  ConstraintChecker checker({});
  prob::GaussianMixture prior = DefaultPrior(2, 6);
  McmcSamplerOptions opts;
  opts.thinning = 3;
  McmcSampler sampler(&prior, &checker, opts);
  auto samples = sampler.Draw(300, rng);
  ASSERT_TRUE(samples.ok());
  // Not all samples equal (the chain mixes), and consecutive kept samples
  // are not forced to be identical.
  std::size_t distinct_from_first = 0;
  for (const auto& s : *samples) {
    if (s.w != (*samples)[0].w) ++distinct_from_first;
  }
  EXPECT_GT(distinct_from_first, samples->size() / 2);
}

TEST(McmcSamplerTest, StationaryMassFollowsPrior) {
  // Unconstrained chain over a mixture with two separated modes: the visit
  // frequency near each mode should match the component weights (0.5/0.5
  // within tolerance).
  std::vector<prob::Gaussian> comps;
  comps.push_back(std::move(prob::Gaussian::Spherical({-0.25, -0.25}, 0.25))
                      .value());
  comps.push_back(
      std::move(prob::Gaussian::Spherical({0.25, 0.25}, 0.25)).value());
  auto prior =
      std::move(prob::GaussianMixture::Uniform(std::move(comps))).value();
  ConstraintChecker checker({});
  McmcSamplerOptions opts;
  opts.lmax = 1.0;  // Long steps so the chain can hop between modes.
  opts.thinning = 2;
  McmcSampler sampler(&prior, &checker, opts);
  Rng rng(7);
  auto samples = sampler.Draw(6000, rng);
  ASSERT_TRUE(samples.ok());
  std::size_t near_positive = 0;
  for (const auto& s : *samples) {
    if (s.w[0] + s.w[1] > 0.0) ++near_positive;
  }
  double frac = static_cast<double>(near_positive) / samples->size();
  EXPECT_NEAR(frac, 0.5, 0.15);
}

TEST(McmcSamplerTest, ContradictoryFeedbackFailsCleanly) {
  std::vector<pref::Preference> prefs(2);
  prefs[0].diff = {1.0, 0.0};   // w0 >= 0
  prefs[1].diff = {-1.0, 0.0};  // w0 <= 0 — measure-zero valid region.
  ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = DefaultPrior(2, 8);
  McmcSamplerOptions opts;
  opts.base.max_attempts_per_sample = 2000;
  McmcSampler sampler(&prior, &checker, opts);
  Rng rng(9);
  auto result = sampler.Draw(10, rng);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(McmcSamplerTest, ThinningReducesAutocorrelation) {
  Rng rng(10);
  Vec hidden = {0.5, 0.5};
  auto prefs = RandomConstraints(10, hidden, rng);
  ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = DefaultPrior(2, 11);

  auto lag1_autocorr = [](const std::vector<WeightedSample>& s) {
    double mean = 0.0;
    for (const auto& x : s) mean += x.w[0];
    mean /= static_cast<double>(s.size());
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      double d = s[i].w[0] - mean;
      den += d * d;
      if (i + 1 < s.size()) num += d * (s[i + 1].w[0] - mean);
    }
    return den > 0.0 ? num / den : 0.0;
  };

  McmcSamplerOptions dense;
  dense.thinning = 1;
  McmcSamplerOptions thin;
  thin.thinning = 10;
  Rng r1(12);
  Rng r2(12);
  auto s_dense = McmcSampler(&prior, &checker, dense).Draw(800, r1);
  auto s_thin = McmcSampler(&prior, &checker, thin).Draw(800, r2);
  ASSERT_TRUE(s_dense.ok());
  ASSERT_TRUE(s_thin.ok());
  EXPECT_LT(lag1_autocorr(*s_thin), lag1_autocorr(*s_dense));
}

}  // namespace
}  // namespace topkpkg::sampling
