#include "topkpkg/obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "topkpkg/data/generators.h"
#include "topkpkg/recsys/recommender.h"
#include "topkpkg/recsys/simulated_user.h"

namespace topkpkg::obs {
namespace {

const SpanRecord* FindSpan(const TraceContext& ctx, const std::string& name) {
  for (const SpanRecord& s : ctx.spans()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(TraceTest, SamplingIsDeterministicOneInN) {
  Tracer tracer(/*sample_every=*/3);
  for (std::uint64_t i = 0; i < 9; ++i) {
    std::unique_ptr<TraceContext> ctx = tracer.StartTrace();
    EXPECT_EQ(ctx->trace_id(), i);
    EXPECT_EQ(ctx->sampled(), i % 3 == 0) << "trace " << i;
    tracer.FinishTrace(std::move(ctx));
  }
}

TEST(TraceTest, SampleEveryZeroDisablesRecording) {
  Tracer tracer(/*sample_every=*/0);
  std::unique_ptr<TraceContext> ctx = tracer.StartTrace();
  EXPECT_FALSE(ctx->sampled());
  ScopedTraceBinding binding(ctx.get());
  { ScopedSpan span("noop"); }
  EXPECT_TRUE(ctx->spans().empty());
  EXPECT_EQ(ctx->depth(), 0);  // Nesting bookkeeping still balances.
}

TEST(TraceTest, SpansNestWithDepthAndCloseInnerFirst) {
  Tracer tracer(/*sample_every=*/1);
  std::unique_ptr<TraceContext> ctx = tracer.StartTrace();
  ASSERT_TRUE(ctx->sampled());
  {
    ScopedTraceBinding binding(ctx.get());
    ScopedSpan outer("outer");
    {
      ScopedSpan inner("inner");
    }
    ScopedSpan sibling("sibling");
  }
  // Spans are recorded at close: inner first, then sibling, then outer.
  ASSERT_EQ(ctx->spans().size(), 3u);
  EXPECT_EQ(ctx->spans()[0].name, "inner");
  EXPECT_EQ(ctx->spans()[0].depth, 1);
  EXPECT_EQ(ctx->spans()[1].name, "sibling");
  EXPECT_EQ(ctx->spans()[1].depth, 1);
  EXPECT_EQ(ctx->spans()[2].name, "outer");
  EXPECT_EQ(ctx->spans()[2].depth, 0);
  // The outer span starts at (or before) the inner ones and outlasts them.
  EXPECT_LE(ctx->spans()[2].start_ns, ctx->spans()[0].start_ns);
  EXPECT_GE(ctx->spans()[2].start_ns + ctx->spans()[2].dur_ns,
            ctx->spans()[1].start_ns + ctx->spans()[1].dur_ns);
}

TEST(TraceTest, CloseReturnsSecondsExactlyMatchingRecord) {
  Tracer tracer(/*sample_every=*/1);
  std::unique_ptr<TraceContext> ctx = tracer.StartTrace();
  ScopedTraceBinding binding(ctx.get());
  ScopedSpan span("timed");
  const double seconds = span.Close();
  ASSERT_EQ(ctx->spans().size(), 1u);
  // Close() computes the nanosecond duration once and derives both the
  // return value and the record from it — bit-exact agreement, no drift.
  EXPECT_EQ(seconds,
            static_cast<double>(ctx->spans()[0].dur_ns) * 1e-9);
  // Idempotent: closing again neither re-records nor re-measures.
  EXPECT_EQ(span.Close(), seconds);
  EXPECT_EQ(ctx->spans().size(), 1u);
}

TEST(TraceTest, AccumulateSecondsSumsSpans) {
  Tracer tracer(/*sample_every=*/1);
  std::unique_ptr<TraceContext> ctx = tracer.StartTrace();
  ScopedTraceBinding binding(ctx.get());
  double total = 0.0;
  double first;
  {
    ScopedSpan a("part", &total);
    first = a.Close();
  }
  EXPECT_EQ(total, first);
  double second;
  {
    ScopedSpan b("part", &total);
    second = b.Close();
  }
  EXPECT_EQ(total, first + second);
}

TEST(TraceTest, SpansWithoutBoundContextMeasureButRecordNothing) {
  ASSERT_EQ(CurrentTraceContext(), nullptr);
  ScopedSpan span("unbound");
  EXPECT_GE(span.Close(), 0.0);
}

TEST(TraceTest, FinishTraceWritesJsonl) {
  const std::string path = ::testing::TempDir() + "trace_test_out.jsonl";
  std::remove(path.c_str());
  {
    Tracer tracer(/*sample_every=*/2, path);
    for (int i = 0; i < 4; ++i) {  // ids 0..3; 0 and 2 sampled.
      std::unique_ptr<TraceContext> ctx = tracer.StartTrace();
      ScopedTraceBinding binding(ctx.get());
      { ScopedSpan span("work"); }
      tracer.FinishTrace(std::move(ctx));
    }
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].rfind("{\"trace_id\":0,\"spans\":[", 0), 0u);
  EXPECT_EQ(lines[1].rfind("{\"trace_id\":2,\"spans\":[", 0), 0u);
  EXPECT_NE(lines[0].find("\"name\":\"work\""), std::string::npos);
  EXPECT_EQ(lines[0].back(), '}');
  std::remove(path.c_str());
}

TEST(TraceTest, ToJsonLineEscapesSpanNames) {
  TraceContext ctx(/*trace_id=*/7, /*sampled=*/true);
  ctx.EnterSpan();
  ctx.ExitSpan(SpanRecord{"quo\"te\\back\nline", 1, 2, 0});
  const std::string json = Tracer::ToJsonLine(ctx);
  EXPECT_NE(json.find("quo\\\"te\\\\back\\nline"), std::string::npos);
  EXPECT_EQ(json.rfind("{\"trace_id\":7,", 0), 0u);
}

// The satellite contract: RoundLog phase timings are produced by the same
// ScopedSpan measurements that feed the trace, so a sampled trace's span
// durations equal the log's phase seconds bit-for-bit.
class RoundLogSpanFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<model::ItemTable>(
        std::move(data::GenerateUniform(40, 3, 7)).value());
    profile_ = std::make_unique<model::Profile>(
        std::move(model::Profile::Parse("sum,avg,min")).value());
    evaluator_ = std::make_unique<model::PackageEvaluator>(table_.get(),
                                                           profile_.get(), 3);
    Rng rng(8);
    prior_ = std::make_unique<prob::GaussianMixture>(
        prob::GaussianMixture::Random(3, 2, 0.5, rng));
  }

  recsys::RecommenderOptions Options(bool incremental) const {
    recsys::RecommenderOptions opts;
    opts.num_recommended = 3;
    opts.num_random = 3;
    opts.num_samples = 40;
    opts.ranking.k = 3;
    opts.ranking.sigma = 3;
    opts.incremental = incremental;
    return opts;
  }

  std::unique_ptr<model::ItemTable> table_;
  std::unique_ptr<model::Profile> profile_;
  std::unique_ptr<model::PackageEvaluator> evaluator_;
  std::unique_ptr<prob::GaussianMixture> prior_;
};

TEST_F(RoundLogSpanFixture, FromScratchPhaseSecondsEqualSpanDurations) {
  recsys::PackageRecommender rec(evaluator_.get(), prior_.get(),
                                 Options(/*incremental=*/false), /*seed=*/11);
  recsys::SimulatedUser user({0.8, 0.4, -0.2});
  Tracer tracer(/*sample_every=*/1);
  std::unique_ptr<TraceContext> ctx = tracer.StartTrace();
  recsys::RoundLog log;
  {
    ScopedTraceBinding binding(ctx.get());
    auto result = rec.RunRound(user);
    ASSERT_TRUE(result.ok()) << result.status();
    log = *result;
  }
  const SpanRecord* sample = FindSpan(*ctx, "sample");
  const SpanRecord* rank = FindSpan(*ctx, "rank");
  const SpanRecord* round = FindSpan(*ctx, "round");
  ASSERT_NE(sample, nullptr);
  ASSERT_NE(rank, nullptr);
  ASSERT_NE(round, nullptr);
  EXPECT_EQ(log.sample_seconds, static_cast<double>(sample->dur_ns) * 1e-9);
  EXPECT_EQ(log.rank_seconds, static_cast<double>(rank->dur_ns) * 1e-9);
  EXPECT_EQ(log.maintain_seconds, 0.0);  // From-scratch: no maintenance.
  EXPECT_EQ(round->depth, 0);
  EXPECT_EQ(sample->depth, 1);
  EXPECT_EQ(rank->depth, 1);
  EXPECT_GE(round->dur_ns, sample->dur_ns + rank->dur_ns);
}

TEST_F(RoundLogSpanFixture, IncrementalMaintainSecondsEqualSpanDuration) {
  recsys::PackageRecommender rec(evaluator_.get(), prior_.get(),
                                 Options(/*incremental=*/true), /*seed=*/13);
  recsys::SimulatedUser user({0.8, 0.4, -0.2});
  Tracer tracer(/*sample_every=*/1);

  // Round 1 fills the pool — no maintain span yet.
  {
    std::unique_ptr<TraceContext> ctx = tracer.StartTrace();
    ScopedTraceBinding binding(ctx.get());
    auto r1 = rec.RunRound(user);
    ASSERT_TRUE(r1.ok()) << r1.status();
    EXPECT_EQ(FindSpan(*ctx, "maintain"), nullptr);
    const SpanRecord* sample = FindSpan(*ctx, "sample");
    ASSERT_NE(sample, nullptr);
    EXPECT_EQ(r1->sample_seconds,
              static_cast<double>(sample->dur_ns) * 1e-9);
  }

  // Round 2 maintains it; only the importance sampler reweights, so with
  // the default MCMC sampler maintain_seconds is the maintain span alone.
  std::unique_ptr<TraceContext> ctx = tracer.StartTrace();
  recsys::RoundLog log;
  {
    ScopedTraceBinding binding(ctx.get());
    auto r2 = rec.RunRound(user);
    ASSERT_TRUE(r2.ok()) << r2.status();
    log = *r2;
  }
  const SpanRecord* maintain = FindSpan(*ctx, "maintain");
  const SpanRecord* rank = FindSpan(*ctx, "rank");
  ASSERT_NE(maintain, nullptr);
  ASSERT_NE(rank, nullptr);
  EXPECT_EQ(log.maintain_seconds,
            static_cast<double>(maintain->dur_ns) * 1e-9);
  EXPECT_EQ(log.rank_seconds, static_cast<double>(rank->dur_ns) * 1e-9);
  EXPECT_EQ(FindSpan(*ctx, "reweight"), nullptr);
}

}  // namespace
}  // namespace topkpkg::obs
