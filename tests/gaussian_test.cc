#include "topkpkg/prob/gaussian.h"

#include <cmath>

#include <gtest/gtest.h>

#include "topkpkg/common/random.h"

namespace topkpkg::prob {
namespace {

TEST(GaussianTest, SphericalPdfMatchesClosedForm1D) {
  auto g = Gaussian::Spherical({0.0}, 1.0);
  ASSERT_TRUE(g.ok());
  // Standard normal density at 0 is 1/sqrt(2π).
  EXPECT_NEAR(g->Pdf({0.0}), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(g->Pdf({1.0}), 0.24197072451914337, 1e-12);
}

TEST(GaussianTest, DiagonalPdfFactorizes) {
  auto g = Gaussian::Diagonal({0.5, -0.5}, {0.2, 0.4});
  ASSERT_TRUE(g.ok());
  auto gx = Gaussian::Diagonal({0.5}, {0.2});
  auto gy = Gaussian::Diagonal({-0.5}, {0.4});
  ASSERT_TRUE(gx.ok());
  ASSERT_TRUE(gy.ok());
  Vec p = {0.3, 0.1};
  EXPECT_NEAR(g->Pdf(p), gx->Pdf({p[0]}) * gy->Pdf({p[1]}), 1e-12);
}

TEST(GaussianTest, FullCovarianceLogPdfMatchesKnownValue) {
  // Covariance [[1, 0.5], [0.5, 1]]: det = 0.75, inverse known.
  auto g = Gaussian::Full({0.0, 0.0}, {{1.0, 0.5}, {0.5, 1.0}});
  ASSERT_TRUE(g.ok());
  Vec x = {1.0, -1.0};
  // quad = xᵀΣ⁻¹x with Σ⁻¹ = (1/0.75)[[1,-0.5],[-0.5,1]] → quad = 4.
  double expected =
      -std::log(2 * M_PI) - 0.5 * std::log(0.75) - 0.5 * 4.0;
  EXPECT_NEAR(g->LogPdf(x), expected, 1e-12);
}

TEST(GaussianTest, RejectsBadInputs) {
  EXPECT_FALSE(Gaussian::Spherical({}, 1.0).ok());
  EXPECT_FALSE(Gaussian::Spherical({0.0}, 0.0).ok());
  EXPECT_FALSE(Gaussian::Diagonal({0.0, 0.0}, {1.0}).ok());
  EXPECT_FALSE(Gaussian::Full({0.0, 0.0}, {{1.0, 0.9}, {0.2, 1.0}}).ok());
  // Not positive definite.
  EXPECT_FALSE(Gaussian::Full({0.0, 0.0}, {{1.0, 2.0}, {2.0, 1.0}}).ok());
}

TEST(GaussianTest, SampleMomentsMatch) {
  auto g = Gaussian::Full({1.0, -1.0}, {{0.5, 0.2}, {0.2, 0.3}});
  ASSERT_TRUE(g.ok());
  Rng rng(99);
  const int n = 40000;
  double mx = 0.0;
  double my = 0.0;
  double cxx = 0.0;
  double cyy = 0.0;
  double cxy = 0.0;
  for (int i = 0; i < n; ++i) {
    Vec s = g->Sample(rng);
    mx += s[0];
    my += s[1];
  }
  mx /= n;
  my /= n;
  Rng rng2(99);
  for (int i = 0; i < n; ++i) {
    Vec s = g->Sample(rng2);
    cxx += (s[0] - mx) * (s[0] - mx);
    cyy += (s[1] - my) * (s[1] - my);
    cxy += (s[0] - mx) * (s[1] - my);
  }
  EXPECT_NEAR(mx, 1.0, 0.02);
  EXPECT_NEAR(my, -1.0, 0.02);
  EXPECT_NEAR(cxx / n, 0.5, 0.03);
  EXPECT_NEAR(cyy / n, 0.3, 0.02);
  EXPECT_NEAR(cxy / n, 0.2, 0.02);
}

TEST(GaussianTest, PdfIsExpOfLogPdf) {
  auto g = Gaussian::Diagonal({0.1, 0.2, 0.3}, {1.0, 0.5, 2.0});
  ASSERT_TRUE(g.ok());
  Vec x = {0.4, -0.1, 1.0};
  EXPECT_NEAR(g->Pdf(x), std::exp(g->LogPdf(x)), 1e-15);
}

}  // namespace
}  // namespace topkpkg::prob
