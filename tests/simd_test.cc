// Unit tests for the portable SIMD layer (common/simd.h) and the batched
// aggregate kernel suites built on it (model/aggregate_kernel_lanes.inc via
// AggBatchKernelsFor).
//
// Two levels:
//   1. Lane-op semantics — every vector backend this TU can instantiate
//      (scalar always, plus the baseline-ISA backend `simd::best`) must
//      match the scalar reference ternaries bit-for-bit on every lane,
//      including the NaN / signed-zero / infinity cases the header comment
//      specifies (Max's first-operand-wins rule, CmpLE's quiet-ordered
//      NaN→false, sign-bit MoveMask, GatherIdx as pure loads).
//   2. Kernel suites — the runtime-dispatched suites (kAuto may be AVX2,
//      SSE2, NEON or scalar depending on machine; kScalar is the header
//      reference) must reproduce the header-inlined reference kernels
//      bit-for-bit: dense dot + bound, the gather twins over sparse lane
//      sets, tail widths that don't fill a vector register, widths past the
//      64-lane fallback seam, the u0-seeded bound path, skip sets, and both
//      Lemma-3 regimes (set-monotone and greedy-stop).
//
// The batched search's bit-identity contract with Search() rides on these
// invariants; search_batch_property_test checks the same thing end-to-end.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "topkpkg/common/random.h"
#include "topkpkg/common/simd.h"
#include "topkpkg/model/aggregate_kernel.h"
#include "topkpkg/model/item_table.h"

namespace topkpkg {
namespace {

using model::AggBatchKernels;
using model::AggBatchKernelsFor;
using model::AggBatchPlan;
using model::AggregateOp;
using model::kAggStripeWidth;

std::uint64_t BitsOf(double x) {
  std::uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

// Bitwise double equality: distinguishes -0.0 from +0.0 and compares NaN
// patterns exactly (EXPECT_EQ on doubles does neither).
::testing::AssertionResult BitEq(double a, double b) {
  if (BitsOf(a) == BitsOf(b)) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " (0x" << std::hex << BitsOf(a) << ") != " << std::dec << b
         << " (0x" << std::hex << BitsOf(b) << ")";
}

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// The special-value pool every lane-op sweep draws from: both zeros, both
// infinities, NaN, a denormal, and ordinary magnitudes on both sides of 1.
const double kSpecials[] = {0.0,   -0.0, 1.0,  -1.0, 0.5,
                            -2.25, kInf, -kInf, kNaN, 5e-324};
constexpr std::size_t kNumSpecials = sizeof(kSpecials) / sizeof(kSpecials[0]);

// ---- Level 1: lane ops vs the scalar reference ----------------------------

// Exercises one backend's ops against simd::scalar on every pair drawn from
// the specials pool, at every lane position (so a NaN in lane 1 of a 4-wide
// register is checked independently of lane 0).
template <typename V>
void CheckLaneOpsAgainstScalar() {
  using S = simd::scalar::F64x;
  constexpr std::size_t W = V::kWidth;
  double a_mem[W], b_mem[W], out[W], want[W];

  for (std::size_t ia = 0; ia < kNumSpecials; ++ia) {
    for (std::size_t ib = 0; ib < kNumSpecials; ++ib) {
      // Rotate the pair through the lanes; remaining lanes take staggered
      // pool entries so no two lanes of one register are forced equal.
      for (std::size_t rot = 0; rot < W; ++rot) {
        for (std::size_t t = 0; t < W; ++t) {
          a_mem[t] = kSpecials[(ia + t + rot) % kNumSpecials];
          b_mem[t] = kSpecials[(ib + 2 * t + rot) % kNumSpecials];
        }
        a_mem[rot] = kSpecials[ia];
        b_mem[rot] = kSpecials[ib];
        const V a = V::Load(a_mem), b = V::Load(b_mem);
        const std::string label = std::string(V::Name()) + " a=" +
                                  std::to_string(a_mem[rot]) + " b=" +
                                  std::to_string(b_mem[rot]) + " lane=" +
                                  std::to_string(rot);

        // Max: (a < b) ? b : a — first operand wins on NaN and on equality
        // (including -0.0 vs +0.0).
        V::Max(a, b).Store(out);
        for (std::size_t t = 0; t < W; ++t) {
          want[t] = S::Max({a_mem[t]}, {b_mem[t]}).v;
          EXPECT_TRUE(BitEq(out[t], want[t])) << label << " Max t=" << t;
        }

        // CmpLE: all-ones where a <= b, zero otherwise; NaN compares false.
        V::CmpLE(a, b).Store(out);
        for (std::size_t t = 0; t < W; ++t) {
          want[t] = S::CmpLE({a_mem[t]}, {b_mem[t]}).v;
          EXPECT_TRUE(BitEq(out[t], want[t])) << label << " CmpLE t=" << t;
        }

        // Mul/add: plain IEEE ops, no contraction.
        (a * b).Store(out);
        for (std::size_t t = 0; t < W; ++t) {
          EXPECT_TRUE(BitEq(out[t], a_mem[t] * b_mem[t])) << label << " mul";
        }
        (a + b).Store(out);
        for (std::size_t t = 0; t < W; ++t) {
          EXPECT_TRUE(BitEq(out[t], a_mem[t] + b_mem[t])) << label << " add";
        }

        // Bitwise ops on the lane patterns.
        V::Or(a, b).Store(out);
        for (std::size_t t = 0; t < W; ++t) {
          want[t] = S::Or({a_mem[t]}, {b_mem[t]}).v;
          EXPECT_TRUE(BitEq(out[t], want[t])) << label << " Or t=" << t;
        }
        V::AndNot(a, b).Store(out);
        for (std::size_t t = 0; t < W; ++t) {
          want[t] = S::AndNot({a_mem[t]}, {b_mem[t]}).v;
          EXPECT_TRUE(BitEq(out[t], want[t])) << label << " AndNot t=" << t;
        }

        // MoveMask: one sign bit per lane.
        int mm = V::MoveMask(a);
        for (std::size_t t = 0; t < W; ++t) {
          EXPECT_EQ((mm >> t) & 1, static_cast<int>(BitsOf(a_mem[t]) >> 63))
              << label << " MoveMask t=" << t;
        }
      }
    }
  }

  // Blend with the masks the kernels actually use: all-ones / all-zero per
  // lane, NaN payloads included on both sides.
  {
    const V ones = V::AllOnes();
    double ones_mem[W];
    ones.Store(ones_mem);
    for (std::size_t t = 0; t < W; ++t) {
      EXPECT_EQ(BitsOf(ones_mem[t]), ~std::uint64_t{0})
          << V::Name() << " AllOnes t=" << t;
    }
    double m_mem[W], x_mem[W], y_mem[W];
    for (std::size_t t = 0; t < W; ++t) {
      m_mem[t] = (t % 2 == 0) ? ones_mem[0] : 0.0;
      x_mem[t] = kSpecials[t % kNumSpecials];
      y_mem[t] = kSpecials[(t + 4) % kNumSpecials];
    }
    V::Blend(V::Load(m_mem), V::Load(x_mem), V::Load(y_mem)).Store(out);
    for (std::size_t t = 0; t < W; ++t) {
      EXPECT_TRUE(BitEq(out[t], (t % 2 == 0) ? x_mem[t] : y_mem[t]))
          << V::Name() << " Blend t=" << t;
    }
  }

  // GatherIdx: lane t = p[idx[t]], bit-identical to scalar indexing even
  // when the gathered values are NaN / -0.0 and indices repeat.
  {
    double table[16];
    for (std::size_t i = 0; i < 16; ++i) {
      table[i] = kSpecials[i % kNumSpecials];
    }
    const std::uint32_t idx_sets[][4] = {
        {0, 1, 2, 3}, {15, 0, 15, 0}, {8, 8, 8, 8}, {3, 14, 9, 6}};
    for (const auto& idx : idx_sets) {
      V::GatherIdx(table, idx).Store(out);
      for (std::size_t t = 0; t < W; ++t) {
        EXPECT_TRUE(BitEq(out[t], table[idx[t]]))
            << V::Name() << " GatherIdx idx=" << idx[t] << " t=" << t;
      }
    }
  }
}

TEST(SimdLaneOpsTest, ScalarBackendIsSelfConsistent) {
  CheckLaneOpsAgainstScalar<simd::scalar::F64x>();
}

TEST(SimdLaneOpsTest, BestBaselineBackendMatchesScalar) {
  // On x86-64 this is sse2, on aarch64 neon, elsewhere scalar again. The
  // AVX2 backend is exercised through the kernel-suite tests below (this TU
  // is not compiled with -mavx2, so it cannot instantiate avx2::F64x).
  CheckLaneOpsAgainstScalar<simd::best::F64x>();
}

// ---- Level 2: kernel suites vs the header reference ------------------------

// A randomized batched plan plus the scratch the kernels need. Stripe ops
// cycle through sum/avg/min/max; a slice of stripes is left count-0 in the
// block (min/max there evaluate to 0 through AggRaw's count-0 rule) and tau
// gets occasional nulls.
struct PlanFixture {
  std::vector<AggregateOp> ops;
  std::vector<double> scales;
  std::vector<double> wcol;   // [a * lanes + j]
  std::vector<double> blk;    // nf stripes
  std::vector<double> tau;
  std::vector<std::uint8_t> skip;
  AggBatchPlan plan;

  PlanFixture(std::size_t nf, std::size_t lanes, Rng& rng) {
    ops.resize(nf);
    scales.resize(nf);
    wcol.resize(nf * lanes);
    blk.resize(nf * kAggStripeWidth);
    tau.resize(nf);
    skip.assign(nf, 0);
    model::AggInitStripes(blk.data(), nf);
    const AggregateOp cycle[] = {AggregateOp::kSum, AggregateOp::kAvg,
                                 AggregateOp::kMin, AggregateOp::kMax};
    for (std::size_t a = 0; a < nf; ++a) {
      ops[a] = cycle[a % 4];
      scales[a] = 0.5 + rng.Uniform();
      tau[a] = rng.Bernoulli(0.2) ? model::kNullValue
                                  : rng.Uniform() * 2.0 - 0.5;
      skip[a] = rng.Bernoulli(0.25) ? 1 : 0;
      // Fold 0..3 values; 0 leaves the stripe count-0.
      const int folds = rng.UniformInt(4);
      for (int i = 0; i < folds; ++i) {
        model::AggFoldValue(blk.data() + kAggStripeWidth * a,
                            rng.Uniform() * 2.0 - 1.0);
      }
      for (std::size_t j = 0; j < lanes; ++j) {
        wcol[a * lanes + j] = rng.Uniform() * 2.0 - 1.0;
      }
    }
    plan.ops = ops.data();
    plan.scales = scales.data();
    plan.wcol = wcol.data();
    plan.num_features = nf;
    plan.lanes = lanes;
  }
};

void ExpectLanesBitEq(const std::vector<double>& got,
                      const std::vector<double>& want, std::size_t lanes,
                      const std::string& label) {
  for (std::size_t j = 0; j < lanes; ++j) {
    EXPECT_TRUE(BitEq(got[j], want[j])) << label << " lane=" << j;
  }
}

// Sweeps one suite against the header reference across widths that cover
// vector tails (1..9), one full mask word (64), and the >64 fallback seam
// (65, 80) — for the dense kernels, both Lemma-3 regimes and both skip/u0
// configurations.
void CheckSuiteAgainstReference(const AggBatchKernels& kern,
                                const std::string& suite) {
  Rng rng(20260808);
  const std::size_t widths[] = {1, 2, 3, 4, 5, 7, 8, 9, 64, 65, 80};
  for (std::size_t lanes : widths) {
    for (std::size_t nf : {1u, 3u, 6u, 11u}) {
      PlanFixture fx(nf, lanes, rng);
      const std::string label =
          suite + " lanes=" + std::to_string(lanes) + " nf=" +
          std::to_string(nf);
      std::vector<double> raw_norm(nf), ref_norm(nf);
      model::AggRawNormalized(fx.plan, fx.blk.data(), 2, raw_norm.data());

      // dot_batch, with and without a skip set.
      const std::uint8_t* skip_sets[] = {nullptr, fx.skip.data()};
      for (const std::uint8_t* skip : skip_sets) {
        std::vector<double> got(lanes, kNaN), want(lanes, kNaN);
        kern.dot_batch(fx.plan, raw_norm.data(), skip, got.data());
        model::AggDotBatch(fx.plan, raw_norm.data(), skip, want.data());
        ExpectLanesBitEq(got, want, lanes, label + " dot_batch");
      }

      // dot_batch_gather over a strided sparse lane set; untouched entries
      // must keep their sentinel. Above 64 lanes the set goes dense so the
      // gather kernels' 64-lane chunking seam is crossed.
      {
        const std::size_t dstride = lanes > 64 ? 1 : 3;
        std::vector<std::uint32_t> lidx;
        for (std::size_t j = 0; j < lanes; j += dstride) {
          lidx.push_back(static_cast<std::uint32_t>(j));
        }
        std::vector<double> got(lanes, kNaN), want(lanes, kNaN);
        kern.dot_batch_gather(fx.plan, raw_norm.data(), fx.skip.data(),
                              lidx.data(), lidx.size(), got.data());
        model::AggDotBatchGather(fx.plan, raw_norm.data(), fx.skip.data(),
                                 lidx.data(), lidx.size(), want.data());
        ExpectLanesBitEq(got, want, lanes, label + " dot_gather");
      }

      // tau_padded_bound_batch: {greedy-stop, set-monotone} × {ref-computed
      // u0, caller-seeded u0} × {skip, no skip} (u0 requires null skip).
      std::vector<double> pad(nf * kAggStripeWidth);
      std::vector<double> u0(lanes);
      model::AggRawNormalized(fx.plan, fx.blk.data(), 2, ref_norm.data());
      model::AggDotBatch(fx.plan, ref_norm.data(), nullptr, u0.data());
      for (bool set_monotone : {false, true}) {
        for (int cfg = 0; cfg < 3; ++cfg) {  // 0: plain, 1: skip, 2: u0.
          const std::uint8_t* skip = cfg == 1 ? fx.skip.data() : nullptr;
          const double* seed = cfg == 2 ? u0.data() : nullptr;
          std::vector<double> got_b(lanes, kNaN), want_b(lanes, kNaN);
          std::vector<double> got_u(lanes), want_u(lanes);
          std::vector<std::uint8_t> got_s(lanes), want_s(lanes);
          kern.tau_padded_bound_batch(
              fx.plan, fx.blk.data(), 2, fx.tau.data(), 3, set_monotone, skip,
              seed, pad.data(), raw_norm.data(), got_u.data(), got_s.data(),
              got_b.data());
          model::AggTauPaddedBoundBatch(
              fx.plan, fx.blk.data(), 2, fx.tau.data(), 3, set_monotone, skip,
              seed, pad.data(), ref_norm.data(), want_u.data(), want_s.data(),
              want_b.data());
          ExpectLanesBitEq(got_b, want_b, lanes,
                           label + " tau_bound mono=" +
                               std::to_string(set_monotone) + " cfg=" +
                               std::to_string(cfg));
        }
      }

      // tau_padded_bound_batch_gather: sparse lane set (every other lane),
      // same config sweep. The reference reorders its lidx in place and the
      // suites may not, so each side gets its own copy and only the bound
      // values at the originally-listed lanes are compared.
      {
        const std::size_t tstride = lanes > 64 ? 1 : 2;  // nl>64 fallback.
        std::vector<std::uint32_t> base_lidx;
        for (std::size_t j = 0; j < lanes; j += tstride) {
          base_lidx.push_back(static_cast<std::uint32_t>(j));
        }
        const std::size_t nl = base_lidx.size();
        for (bool set_monotone : {false, true}) {
          for (int cfg = 0; cfg < 3; ++cfg) {
            const std::uint8_t* skip = cfg == 1 ? fx.skip.data() : nullptr;
            const double* seed = cfg == 2 ? u0.data() : nullptr;
            std::vector<std::uint32_t> lidx_a = base_lidx, lidx_b = base_lidx;
            std::vector<double> got_b(lanes, kNaN), want_b(lanes, kNaN);
            std::vector<double> got_u(lanes), want_u(lanes);
            kern.tau_padded_bound_batch_gather(
                fx.plan, fx.blk.data(), 2, fx.tau.data(), 3, set_monotone,
                skip, seed, lidx_a.data(), nl, pad.data(), raw_norm.data(),
                got_u.data(), got_b.data());
            model::AggTauPaddedBoundBatchGather(
                fx.plan, fx.blk.data(), 2, fx.tau.data(), 3, set_monotone,
                skip, seed, lidx_b.data(), nl, pad.data(), ref_norm.data(),
                want_u.data(), want_b.data());
            for (std::uint32_t j : base_lidx) {
              EXPECT_TRUE(BitEq(got_b[j], want_b[j]))
                  << label << " tau_gather mono=" << set_monotone
                  << " cfg=" << cfg << " lane=" << j;
            }
            // Unlisted lanes stay stale on both sides.
            for (std::size_t j = 1; j < lanes && tstride == 2; j += 2) {
              EXPECT_TRUE(std::isnan(got_b[j]))
                  << label << " tau_gather wrote unlisted lane " << j;
            }
          }
        }
      }

      // empty_tau_bound_batch, both regimes.
      {
        std::vector<double> peek_norm(nf), ref_peek(nf);
        for (bool set_monotone : {false, true}) {
          std::vector<double> got_b(lanes, kNaN), want_b(lanes, kNaN);
          std::vector<double> got_u(lanes), want_u(lanes);
          std::vector<double> got_p(lanes), want_p(lanes);
          std::vector<std::uint8_t> got_s(lanes), want_s(lanes);
          kern.empty_tau_bound_batch(fx.plan, fx.tau.data(), 4, set_monotone,
                                     fx.skip.data(), pad.data(),
                                     raw_norm.data(), peek_norm.data(),
                                     got_u.data(), got_p.data(), got_s.data(),
                                     got_b.data());
          model::AggEmptyTauBoundBatch(
              fx.plan, fx.tau.data(), 4, set_monotone, fx.skip.data(),
              pad.data(), ref_norm.data(), ref_peek.data(), want_u.data(),
              want_p.data(), want_s.data(), want_b.data());
          ExpectLanesBitEq(got_b, want_b, lanes,
                           label + " empty_bound mono=" +
                               std::to_string(set_monotone));
        }
      }
    }
  }
}

TEST(AggBatchSuiteTest, ScalarSuiteIsTheReference) {
  const AggBatchKernels& kern = AggBatchKernelsFor(SimdMode::kScalar);
  EXPECT_STREQ(kern.backend, "scalar");
  CheckSuiteAgainstReference(kern, "scalar");
}

TEST(AggBatchSuiteTest, AutoSuiteMatchesReferenceBitForBit) {
  // Whatever kAuto dispatched to on this machine — avx2, sse2, neon, or
  // scalar — it must be bit-identical to the reference kernels.
  const AggBatchKernels& kern = AggBatchKernelsFor(SimdMode::kAuto);
  SCOPED_TRACE(std::string("auto backend: ") + kern.backend);
  CheckSuiteAgainstReference(kern, std::string("auto/") + kern.backend);
}

TEST(AggBatchSuiteTest, EverySuiteEntryIsPopulated) {
  for (SimdMode mode : {SimdMode::kAuto, SimdMode::kScalar}) {
    const AggBatchKernels& kern = AggBatchKernelsFor(mode);
    EXPECT_NE(kern.dot_batch, nullptr);
    EXPECT_NE(kern.tau_padded_bound_batch, nullptr);
    EXPECT_NE(kern.empty_tau_bound_batch, nullptr);
    EXPECT_NE(kern.dot_batch_gather, nullptr);
    EXPECT_NE(kern.tau_padded_bound_batch_gather, nullptr);
    EXPECT_NE(std::string(kern.backend), "");
  }
}

}  // namespace
}  // namespace topkpkg
