#include "topkpkg/prob/gaussian_mixture.h"

#include <cmath>

#include <gtest/gtest.h>

namespace topkpkg::prob {
namespace {

GaussianMixture TwoComponent() {
  std::vector<Gaussian> comps;
  comps.push_back(std::move(Gaussian::Spherical({-0.5, -0.5}, 0.2)).value());
  comps.push_back(std::move(Gaussian::Spherical({0.5, 0.5}, 0.3)).value());
  return std::move(GaussianMixture::Create(std::move(comps), {1.0, 3.0}))
      .value();
}

TEST(GaussianMixtureTest, WeightsNormalized) {
  GaussianMixture gm = TwoComponent();
  ASSERT_EQ(gm.num_components(), 2u);
  EXPECT_NEAR(gm.weights()[0], 0.25, 1e-12);
  EXPECT_NEAR(gm.weights()[1], 0.75, 1e-12);
}

TEST(GaussianMixtureTest, PdfIsConvexCombination) {
  GaussianMixture gm = TwoComponent();
  Vec x = {0.1, -0.2};
  double expected = 0.25 * gm.components()[0].Pdf(x) +
                    0.75 * gm.components()[1].Pdf(x);
  EXPECT_NEAR(gm.Pdf(x), expected, 1e-12);
  EXPECT_NEAR(gm.LogPdf(x), std::log(expected), 1e-10);
}

TEST(GaussianMixtureTest, CreateValidatesInputs) {
  EXPECT_FALSE(GaussianMixture::Create({}, {}).ok());
  std::vector<Gaussian> comps;
  comps.push_back(std::move(Gaussian::Spherical({0.0}, 1.0)).value());
  EXPECT_FALSE(GaussianMixture::Create(std::move(comps), {1.0, 2.0}).ok());
  std::vector<Gaussian> comps2;
  comps2.push_back(std::move(Gaussian::Spherical({0.0}, 1.0)).value());
  EXPECT_FALSE(GaussianMixture::Create(std::move(comps2), {-1.0}).ok());
  std::vector<Gaussian> comps3;
  comps3.push_back(std::move(Gaussian::Spherical({0.0}, 1.0)).value());
  comps3.push_back(std::move(Gaussian::Spherical({0.0, 0.0}, 1.0)).value());
  EXPECT_FALSE(GaussianMixture::Create(std::move(comps3), {1.0, 1.0}).ok());
}

TEST(GaussianMixtureTest, SampleFollowsComponentWeights) {
  GaussianMixture gm = TwoComponent();
  Rng rng(5);
  const int n = 20000;
  int near_second = 0;
  for (int i = 0; i < n; ++i) {
    Vec s = gm.Sample(rng);
    // Components are well separated; classify by nearest mean.
    double d1 = (s[0] + 0.5) * (s[0] + 0.5) + (s[1] + 0.5) * (s[1] + 0.5);
    double d2 = (s[0] - 0.5) * (s[0] - 0.5) + (s[1] - 0.5) * (s[1] - 0.5);
    if (d2 < d1) ++near_second;
  }
  EXPECT_NEAR(static_cast<double>(near_second) / n, 0.75, 0.02);
}

TEST(GaussianMixtureTest, RandomMixtureShape) {
  Rng rng(77);
  GaussianMixture gm = GaussianMixture::Random(4, 3, 0.3, rng);
  EXPECT_EQ(gm.dim(), 4u);
  EXPECT_EQ(gm.num_components(), 3u);
  double total = 0.0;
  for (double w : gm.weights()) {
    EXPECT_GT(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  for (const auto& c : gm.components()) {
    for (double v : c.mean()) {
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(GaussianMixtureTest, LogPdfStableFarFromMass) {
  GaussianMixture gm = TwoComponent();
  // Far in the tail both Pdf terms underflow, but LogPdf must stay finite.
  double lp = gm.LogPdf({50.0, -50.0});
  EXPECT_TRUE(std::isfinite(lp));
  EXPECT_LT(lp, -1000.0);
}

}  // namespace
}  // namespace topkpkg::prob
