#include "topkpkg/ranking/rankers.h"

#include <memory>

#include <gtest/gtest.h>

#include "topkpkg/common/thread_pool.h"

namespace topkpkg::ranking {
namespace {

using model::Package;

// The full worked example of Sec. 2.2 / Fig. 2: three items, profile
// (sum1, avg2), φ=2, and three discrete weight vectors w1..w3 with
// probabilities 0.3/0.4/0.3 standing in for the sample pool.
class Fig2Fixture : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<model::ItemTable>(std::move(
        model::ItemTable::Create({{0.6, 0.2}, {0.4, 0.4}, {0.2, 0.4}}))
        .value());
    profile_ = std::make_unique<model::Profile>(
        std::move(model::Profile::Parse("sum,avg")).value());
    evaluator_ = std::make_unique<model::PackageEvaluator>(table_.get(),
                                                           profile_.get(), 2);
    samples_ = {
        {{0.5, 0.1}, 0.3},
        {{0.1, 0.5}, 0.4},
        {{0.1, 0.1}, 0.3},
    };
  }

  std::unique_ptr<model::ItemTable> table_;
  std::unique_ptr<model::Profile> profile_;
  std::unique_ptr<model::PackageEvaluator> evaluator_;
  std::vector<sampling::WeightedSample> samples_;
};

TEST_F(Fig2Fixture, ExpTop2IsP4ThenP5) {
  PackageRanker ranker(evaluator_.get());
  RankingOptions opts;
  // Per-sample lists long enough to cover the whole 6-package space, so the
  // paper's conditional-mean estimator equals the exact expectation.
  opts.k = 6;
  opts.sigma = 2;
  auto result = ranker.Rank(samples_, Semantics::kExp, opts);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GE(result->packages.size(), 2u);
  // Example 1: p4 = {t1,t2} has the largest expected utility (0.415),
  // followed by p5 = {t2,t3} (0.392).
  EXPECT_EQ(result->packages[0].package, Package::Of({0, 1}));
  EXPECT_NEAR(result->packages[0].score, 0.415, 1e-9);
  EXPECT_EQ(result->packages[1].package, Package::Of({1, 2}));
  EXPECT_NEAR(result->packages[1].score, 0.392, 1e-9);
}

TEST_F(Fig2Fixture, ExpExpectedUtilityOfP1Is0262) {
  PackageRanker ranker(evaluator_.get());
  RankingOptions opts;
  opts.k = 6;
  auto result = ranker.Rank(samples_, Semantics::kExp, opts);
  ASSERT_TRUE(result.ok());
  for (const auto& rp : result->packages) {
    if (rp.package == Package::Of({0})) {
      EXPECT_NEAR(rp.score, 0.262, 1e-9);  // Example 1's hand computation.
    }
  }
}

TEST_F(Fig2Fixture, TkpTop2IsP5ThenP4) {
  PackageRanker ranker(evaluator_.get());
  RankingOptions opts;
  opts.k = 2;
  opts.sigma = 2;
  auto result = ranker.Rank(samples_, Semantics::kTkp, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->packages.size(), 2u);
  // Example 2: P(p5 in top-2) = 0.7, P(p4 in top-2) = 0.6.
  EXPECT_EQ(result->packages[0].package, Package::Of({1, 2}));
  EXPECT_NEAR(result->packages[0].score, 0.7, 1e-9);
  EXPECT_EQ(result->packages[1].package, Package::Of({0, 1}));
  EXPECT_NEAR(result->packages[1].score, 0.6, 1e-9);
}

TEST_F(Fig2Fixture, MpoWinningListIsP5P2) {
  PackageRanker ranker(evaluator_.get());
  RankingOptions opts;
  opts.k = 2;
  opts.sigma = 2;
  auto result = ranker.Rank(samples_, Semantics::kMpo, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->packages.size(), 2u);
  // Example 3: the most probable top-2 list is w2's list p5, p2 (prob 0.4).
  EXPECT_EQ(result->packages[0].package, Package::Of({1, 2}));
  EXPECT_EQ(result->packages[1].package, Package::Of({1}));
  EXPECT_NEAR(result->packages[0].score, 0.4, 1e-9);
  EXPECT_NEAR(result->packages[1].score, 0.4, 1e-9);
}

TEST_F(Fig2Fixture, DifferentSemanticsDisagreeOnThisExample) {
  // The punchline of Sec. 2.2: EXP, TKP and MPO produce three different
  // top-2 lists on the same distribution.
  PackageRanker ranker(evaluator_.get());
  RankingOptions exp_opts;
  exp_opts.k = 6;
  auto exp = ranker.Rank(samples_, Semantics::kExp, exp_opts);
  RankingOptions opts;
  opts.k = 2;
  opts.sigma = 2;
  auto tkp = ranker.Rank(samples_, Semantics::kTkp, opts);
  auto mpo = ranker.Rank(samples_, Semantics::kMpo, opts);
  ASSERT_TRUE(exp.ok());
  ASSERT_TRUE(tkp.ok());
  ASSERT_TRUE(mpo.ok());
  EXPECT_NE(exp->packages[0].package, tkp->packages[0].package);
  EXPECT_NE(tkp->packages[1].package, mpo->packages[1].package);
}

TEST_F(Fig2Fixture, AggregateReusableAcrossSemantics) {
  PackageRanker ranker(evaluator_.get());
  RankingOptions opts;
  opts.k = 2;
  opts.sigma = 2;
  auto lists = ranker.ComputeSampleLists(samples_, opts);
  ASSERT_TRUE(lists.ok());
  ASSERT_EQ(lists->size(), 3u);
  RankingResult tkp = ranker.Aggregate(*lists, Semantics::kTkp, opts);
  RankingResult mpo = ranker.Aggregate(*lists, Semantics::kMpo, opts);
  EXPECT_EQ(tkp.packages[0].package, Package::Of({1, 2}));
  EXPECT_EQ(mpo.packages[1].package, Package::Of({1}));
}

TEST_F(Fig2Fixture, ImportanceWeightsScaleCounts) {
  // Doubling every weight must not change any ranking (scores are
  // normalized by total weight).
  PackageRanker ranker(evaluator_.get());
  RankingOptions opts;
  opts.k = 2;
  opts.sigma = 2;
  std::vector<sampling::WeightedSample> doubled = samples_;
  for (auto& s : doubled) s.weight *= 2.0;
  auto a = ranker.Rank(samples_, Semantics::kTkp, opts);
  auto b = ranker.Rank(doubled, Semantics::kTkp, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->packages.size(), b->packages.size());
  for (std::size_t i = 0; i < a->packages.size(); ++i) {
    EXPECT_EQ(a->packages[i].package, b->packages[i].package);
    EXPECT_NEAR(a->packages[i].score, b->packages[i].score, 1e-12);
  }
}

TEST_F(Fig2Fixture, ParallelSearchMatchesSerial) {
  // The per-sample searches are independent; any thread count must produce
  // the exact same lists, scores and order (including memoized duplicates).
  PackageRanker ranker(evaluator_.get());
  std::vector<sampling::WeightedSample> pool = samples_;
  pool.push_back(samples_[1]);  // Duplicate state, as MCMC pools have.
  pool.push_back(samples_[0]);
  for (Semantics semantics :
       {Semantics::kExp, Semantics::kTkp, Semantics::kMpo}) {
    RankingOptions serial_opts;
    serial_opts.k = 6;
    serial_opts.sigma = 2;
    RankingOptions parallel_opts = serial_opts;
    parallel_opts.exec.num_threads = 4;
    auto a = ranker.Rank(pool, semantics, serial_opts);
    auto b = ranker.Rank(pool, semantics, parallel_opts);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->packages.size(), b->packages.size());
    for (std::size_t i = 0; i < a->packages.size(); ++i) {
      EXPECT_EQ(a->packages[i].package, b->packages[i].package);
      EXPECT_DOUBLE_EQ(a->packages[i].score, b->packages[i].score);
    }
  }
}

TEST_F(Fig2Fixture, CallerOwnedThreadPoolMatchesSpawnPerCall) {
  // A persistent caller-owned worker pool (the recommender's round loop
  // reuses one across phases) must produce exactly what the spawn-per-call
  // path produces, across repeated calls on the same pool.
  PackageRanker ranker(evaluator_.get());
  RankingOptions opts;
  opts.k = 6;
  opts.sigma = 2;
  opts.exec.num_threads = 3;
  ThreadPool workers(3);
  for (int round = 0; round < 3; ++round) {
    for (Semantics semantics :
         {Semantics::kExp, Semantics::kTkp, Semantics::kMpo}) {
      auto spawned = ranker.Rank(samples_, semantics, opts);
      auto borrowed = ranker.Rank(samples_, semantics, opts, &workers);
      ASSERT_TRUE(spawned.ok());
      ASSERT_TRUE(borrowed.ok());
      ASSERT_EQ(spawned->packages.size(), borrowed->packages.size());
      for (std::size_t i = 0; i < spawned->packages.size(); ++i) {
        EXPECT_EQ(spawned->packages[i].package, borrowed->packages[i].package);
        EXPECT_DOUBLE_EQ(spawned->packages[i].score,
                         borrowed->packages[i].score);
      }
    }
  }
}

TEST(RankersTest, EmptySamplePoolYieldsEmptyResult) {
  auto table = std::move(model::ItemTable::Create({{1.0}})).value();
  auto profile = std::move(model::Profile::Parse("sum")).value();
  model::PackageEvaluator ev(&table, &profile, 1);
  PackageRanker ranker(&ev);
  auto result = ranker.Rank({}, Semantics::kExp, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->packages.empty());
}

TEST(RankersTest, SemanticsNames) {
  EXPECT_STREQ(SemanticsName(Semantics::kExp), "EXP");
  EXPECT_STREQ(SemanticsName(Semantics::kTkp), "TKP");
  EXPECT_STREQ(SemanticsName(Semantics::kMpo), "MPO");
}

}  // namespace
}  // namespace topkpkg::ranking
