#include "topkpkg/recsys/recommender.h"

#include <memory>

#include <gtest/gtest.h>

#include "topkpkg/data/generators.h"
#include "topkpkg/topk/naive_enumerator.h"

namespace topkpkg::recsys {
namespace {

class RecsysFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<model::ItemTable>(
        std::move(data::GenerateUniform(40, 3, 7)).value());
    profile_ = std::make_unique<model::Profile>(
        std::move(model::Profile::Parse("sum,avg,min")).value());
    evaluator_ = std::make_unique<model::PackageEvaluator>(table_.get(),
                                                           profile_.get(), 3);
    Rng rng(8);
    prior_ = std::make_unique<prob::GaussianMixture>(
        prob::GaussianMixture::Random(3, 2, 0.5, rng));
  }

  RecommenderOptions DefaultOptions() const {
    RecommenderOptions opts;
    opts.num_recommended = 3;
    opts.num_random = 3;
    opts.num_samples = 60;
    opts.ranking.k = 3;
    opts.ranking.sigma = 3;
    return opts;
  }

  std::unique_ptr<model::ItemTable> table_;
  std::unique_ptr<model::Profile> profile_;
  std::unique_ptr<model::PackageEvaluator> evaluator_;
  std::unique_ptr<prob::GaussianMixture> prior_;
};

TEST_F(RecsysFixture, SimulatedUserClicksTrueBest) {
  SimulatedUser user({1.0, 0.0, 0.0});
  Rng rng(1);
  std::vector<Vec> shown = {{0.2, 0.9, 0.9}, {0.8, 0.0, 0.0}, {0.5, 0.5, 0.5}};
  EXPECT_EQ(user.Click(shown, rng), 1u);
}

TEST_F(RecsysFixture, NoisyUserSometimesClicksRandomly) {
  SimulatedUser user({1.0, 0.0, 0.0}, /*noise_psi=*/0.4);
  Rng rng(2);
  std::vector<Vec> shown = {{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
  int non_best = 0;
  for (int i = 0; i < 500; ++i) {
    if (user.Click(shown, rng) != 1u) ++non_best;
  }
  // With ψ=0.4, 60% of clicks are uniform over 2 → ~30% land on index 0.
  EXPECT_GT(non_best, 80);
  EXPECT_LT(non_best, 250);
}

TEST_F(RecsysFixture, RoundPresentsRecommendedPlusRandom) {
  PackageRecommender rec(evaluator_.get(), prior_.get(), DefaultOptions(),
                         /*seed=*/11);
  SimulatedUser user({0.8, 0.4, -0.2});
  auto log = rec.RunRound(user);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(log->presented.size(), 6u);
  EXPECT_EQ(log->num_recommended, 3u);
  EXPECT_LT(log->clicked, log->presented.size());
  EXPECT_EQ(log->presented_vectors.size(), 6u);
  // Feedback recorded: clicked ≻ the other five (minus any cycle skips).
  EXPECT_GE(rec.feedback().num_edges(), 1u);
}

TEST_F(RecsysFixture, FeedbackAccumulatesAcrossRounds) {
  PackageRecommender rec(evaluator_.get(), prior_.get(), DefaultOptions(), 12);
  SimulatedUser user({0.8, 0.4, -0.2});
  std::size_t prev_edges = 0;
  for (int round = 0; round < 3; ++round) {
    auto log = rec.RunRound(user);
    ASSERT_TRUE(log.ok()) << log.status();
    EXPECT_GE(rec.feedback().num_edges(), prev_edges);
    prev_edges = rec.feedback().num_edges();
  }
  EXPECT_GE(prev_edges, 5u);
}

TEST_F(RecsysFixture, ConvergesForNoiselessUser) {
  PackageRecommender rec(evaluator_.get(), prior_.get(), DefaultOptions(), 13);
  SimulatedUser user({0.9, 0.3, -0.4});
  auto clicks = rec.RunUntilConverged(user, /*stable_rounds=*/2,
                                      /*max_rounds=*/25);
  ASSERT_TRUE(clicks.ok()) << clicks.status();
  EXPECT_GE(*clicks, 2u);
  EXPECT_LE(*clicks, 25u);
  EXPECT_FALSE(rec.current_top_k().empty());
}

TEST_F(RecsysFixture, LearnedTopPackageHasHighTrueUtility) {
  // After elicitation the recommended top package should be close in true
  // utility to the global optimum under the hidden weights.
  PackageRecommender rec(evaluator_.get(), prior_.get(), DefaultOptions(), 14);
  Vec hidden = {0.9, 0.5, -0.3};
  SimulatedUser user(hidden);
  ASSERT_TRUE(rec.RunUntilConverged(user, 2, 20).ok());
  ASSERT_FALSE(rec.current_top_k().empty());
  double got = evaluator_->Utility(rec.current_top_k()[0], hidden);

  topk::NaivePackageEnumerator oracle(evaluator_.get());
  auto best = oracle.Search(hidden, 1);
  ASSERT_TRUE(best.ok());
  double optimum = best->packages[0].utility;
  EXPECT_GT(got, 0.5 * optimum)
      << "learned " << got << " vs optimum " << optimum;
}

TEST_F(RecsysFixture, PackageFilterRespected) {
  RecommenderOptions opts = DefaultOptions();
  opts.package_filter = [](const model::Package& p) { return p.size() >= 2; };
  PackageRecommender rec(evaluator_.get(), prior_.get(), opts, 15);
  SimulatedUser user({0.5, 0.5, 0.5});
  auto log = rec.RunRound(user);
  ASSERT_TRUE(log.ok()) << log.status();
  for (const auto& p : log->presented) EXPECT_GE(p.size(), 2u);
}

TEST_F(RecsysFixture, NoisyFeedbackStillRuns) {
  RecommenderOptions opts = DefaultOptions();
  opts.sampler_base.noise.psi = 0.7;
  PackageRecommender rec(evaluator_.get(), prior_.get(), opts, 16);
  SimulatedUser user({0.8, 0.2, -0.5}, /*noise_psi=*/0.7);
  for (int round = 0; round < 4; ++round) {
    auto log = rec.RunRound(user);
    ASSERT_TRUE(log.ok()) << log.status();
  }
}

TEST_F(RecsysFixture, RejectionAndImportanceSamplersWorkToo) {
  for (SamplerKind kind :
       {SamplerKind::kRejection, SamplerKind::kImportance}) {
    RecommenderOptions opts = DefaultOptions();
    opts.sampler = kind;
    opts.num_samples = 40;
    PackageRecommender rec(evaluator_.get(), prior_.get(), opts, 17);
    SimulatedUser user({0.6, 0.3, 0.1});
    auto log = rec.RunRound(user);
    ASSERT_TRUE(log.ok()) << SamplerKindName(kind) << ": " << log.status();
  }
}

TEST_F(RecsysFixture, ParallelSamplingRoundIsSeedDeterministic) {
  // Two recommenders with the same seed and num_threads > 1 must walk the
  // exact same rounds (the sharded draw is seeded from the recommender's
  // RNG, not from scheduling), and the round must behave like any other.
  SimulatedUser user({0.9, -0.2, 0.3});
  RecommenderOptions opts = DefaultOptions();
  opts.sampler = SamplerKind::kRejection;
  opts.sampler_base.exec.num_threads = 4;
  opts.ranking.exec.num_threads = 4;
  PackageRecommender a(evaluator_.get(), prior_.get(), opts, /*seed=*/31);
  PackageRecommender b(evaluator_.get(), prior_.get(), opts, /*seed=*/31);
  for (int round = 0; round < 3; ++round) {
    auto la = a.RunRound(user);
    auto lb = b.RunRound(user);
    ASSERT_TRUE(la.ok()) << la.status();
    ASSERT_TRUE(lb.ok()) << lb.status();
    EXPECT_EQ(la->presented, lb->presented) << "round " << round;
    EXPECT_EQ(la->clicked, lb->clicked) << "round " << round;
    EXPECT_EQ(la->top_k, lb->top_k) << "round " << round;
    EXPECT_EQ(la->presented.size(), opts.num_recommended + opts.num_random);
  }
  EXPECT_EQ(a.feedback().num_edges(), b.feedback().num_edges());
}

TEST_F(RecsysFixture, IncrementalEngineReusesPoolAcrossRounds) {
  PackageRecommender rec(evaluator_.get(), prior_.get(), DefaultOptions(),
                         /*seed=*/41);
  SimulatedUser user({0.7, 0.3, -0.2});
  std::size_t total_reused = 0;
  for (int round = 0; round < 4; ++round) {
    auto log = rec.RunRound(user);
    ASSERT_TRUE(log.ok()) << log.status();
    // The pool always lands on its target size, partitioned into survivors
    // and fresh replacements.
    EXPECT_EQ(log->samples_reused + log->samples_resampled, 60u)
        << "round " << round;
    EXPECT_EQ(rec.pool().size(), 60u);
    // Reused samples' searches are served from the top-list cache.
    EXPECT_EQ(log->searches_skipped, log->samples_reused) << "round " << round;
    if (round == 0) {
      EXPECT_EQ(log->samples_reused, 0u);
      EXPECT_EQ(log->samples_resampled, 60u);
    }
    total_reused += log->samples_reused;
  }
  // Sec. 3.4's whole point: consistent feedback invalidates only part of the
  // pool, so later rounds reuse survivors instead of redrawing everything.
  EXPECT_GT(total_reused, 0u);
}

TEST_F(RecsysFixture, ImportanceSamplerReusesSurvivorsAcrossConstraintChange) {
  // Importance weights are relative to the proposal built from the
  // constraint set; since PR 5 a constraint change no longer forces a full
  // redraw — survivors are kept and their weights rescaled under the new
  // proposal, so the pool partitions into reused + resampled like the
  // other samplers (is_reweight_test covers the distributional side).
  RecommenderOptions opts = DefaultOptions();
  opts.sampler = SamplerKind::kImportance;
  opts.num_samples = 40;
  PackageRecommender rec(evaluator_.get(), prior_.get(), opts, /*seed=*/45);
  SimulatedUser user({0.6, 0.3, 0.1});
  std::size_t reused_after_feedback = 0;
  for (int round = 0; round < 3; ++round) {
    std::size_t edges_before = rec.feedback().num_edges();
    auto log = rec.RunRound(user);
    ASSERT_TRUE(log.ok()) << log.status();
    EXPECT_EQ(log->samples_reused + log->samples_resampled, 40u)
        << "round " << round;
    EXPECT_EQ(log->searches_skipped, log->samples_reused)
        << "round " << round;
    if (round > 0 && edges_before > 0) {
      reused_after_feedback += log->samples_reused;
    }
  }
  EXPECT_GT(reused_after_feedback, 0u);
}

TEST_F(RecsysFixture, FromScratchOraclePathStillWorks) {
  RecommenderOptions opts = DefaultOptions();
  opts.incremental = false;
  PackageRecommender rec(evaluator_.get(), prior_.get(), opts, /*seed=*/42);
  SimulatedUser user({0.7, 0.3, -0.2});
  for (int round = 0; round < 3; ++round) {
    auto log = rec.RunRound(user);
    ASSERT_TRUE(log.ok()) << log.status();
    EXPECT_EQ(log->samples_resampled, 60u);
    EXPECT_EQ(log->samples_reused, 0u);
    EXPECT_EQ(log->searches_skipped, 0u);
    EXPECT_EQ(rec.pool().size(), 0u);  // No persistent pool on this path.
  }
  EXPECT_FALSE(rec.current_top_k().empty());
}

TEST_F(RecsysFixture, FromScratchEngineIsSeedDeterministic) {
  RecommenderOptions opts = DefaultOptions();
  opts.incremental = false;
  PackageRecommender a(evaluator_.get(), prior_.get(), opts, /*seed=*/43);
  PackageRecommender b(evaluator_.get(), prior_.get(), opts, /*seed=*/43);
  SimulatedUser user({0.8, -0.1, 0.4});
  for (int round = 0; round < 3; ++round) {
    auto la = a.RunRound(user);
    auto lb = b.RunRound(user);
    ASSERT_TRUE(la.ok());
    ASSERT_TRUE(lb.ok());
    EXPECT_EQ(la->top_k, lb->top_k) << "round " << round;
    EXPECT_EQ(la->clicked, lb->clicked) << "round " << round;
  }
}

TEST_F(RecsysFixture, TopKChangedMatchesSharedOverlapMetric) {
  PackageRecommender rec(evaluator_.get(), prior_.get(), DefaultOptions(),
                         /*seed=*/44);
  SimulatedUser user({0.6, 0.5, -0.3});
  std::vector<model::Package> previous;
  for (int round = 0; round < 4; ++round) {
    auto log = rec.RunRound(user);
    ASSERT_TRUE(log.ok()) << log.status();
    // top_k_changed and top_k_overlap must be two views of one metric, and
    // that metric must be TopKOverlap against the previous round's list.
    EXPECT_EQ(log->top_k_changed, log->top_k_overlap < 1.0)
        << "round " << round;
    EXPECT_DOUBLE_EQ(log->top_k_overlap, TopKOverlap(previous, log->top_k))
        << "round " << round;
    previous = log->top_k;
  }
}

TEST(TopKOverlapTest, JaccardOverlap) {
  model::Package a = model::Package::Of({1, 2});
  model::Package b = model::Package::Of({2, 3});
  model::Package c = model::Package::Of({3, 4});
  EXPECT_DOUBLE_EQ(TopKOverlap({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(TopKOverlap({a}, {}), 0.0);
  EXPECT_DOUBLE_EQ(TopKOverlap({a, b}, {a, b}), 1.0);
  EXPECT_DOUBLE_EQ(TopKOverlap({a, b}, {b, a}), 1.0);  // Order-insensitive.
  EXPECT_DOUBLE_EQ(TopKOverlap({a, b}, {b, c}), 1.0 / 3.0);
}

TEST(SamplerKindTest, Names) {
  EXPECT_STREQ(SamplerKindName(SamplerKind::kRejection), "RS");
  EXPECT_STREQ(SamplerKindName(SamplerKind::kImportance), "IS");
  EXPECT_STREQ(SamplerKindName(SamplerKind::kMcmc), "MS");
}

TEST_F(RecsysFixture, CreateAcceptsValidOptionsAndRunsARound) {
  auto rec = PackageRecommender::Create(evaluator_.get(), prior_.get(),
                                        DefaultOptions(), /*seed=*/11);
  ASSERT_TRUE(rec.ok()) << rec.status();
  SimulatedUser user({0.8, 0.4, -0.2});
  auto log = (*rec)->RunRound(user);
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_EQ(log->presented.size(), 6u);
}

// Each rejection must be typed (kInvalidArgument) and name the offending
// field in the message, so callers can surface actionable configuration
// errors instead of crashing mid-round.
TEST_F(RecsysFixture, CreateRejectsInvalidOptionsWithTypedErrors) {
  const auto expect_rejects = [&](RecommenderOptions opts,
                                  const std::string& field) {
    auto rec = PackageRecommender::Create(evaluator_.get(), prior_.get(),
                                          std::move(opts), /*seed=*/11);
    ASSERT_FALSE(rec.ok()) << "expected rejection naming " << field;
    EXPECT_EQ(rec.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(rec.status().message().find(field), std::string::npos)
        << rec.status();
  };

  // Class 1: null dependencies.
  auto no_eval = PackageRecommender::Create(nullptr, prior_.get(),
                                            DefaultOptions(), /*seed=*/11);
  ASSERT_FALSE(no_eval.ok());
  EXPECT_EQ(no_eval.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(no_eval.status().message().find("evaluator"), std::string::npos);
  auto no_prior = PackageRecommender::Create(evaluator_.get(), nullptr,
                                             DefaultOptions(), /*seed=*/11);
  ASSERT_FALSE(no_prior.ok());
  EXPECT_EQ(no_prior.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(no_prior.status().message().find("prior"), std::string::npos);

  // Class 2: dimensional mismatch between the prior and the item table.
  Rng rng(3);
  prob::GaussianMixture wrong_dim =
      prob::GaussianMixture::Random(/*dim=*/5, 2, 0.5, rng);
  auto mismatch = PackageRecommender::Create(evaluator_.get(), &wrong_dim,
                                             DefaultOptions(), /*seed=*/11);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(mismatch.status().message().find("dimensionality"),
            std::string::npos);

  // Class 3: degenerate round shape.
  {
    RecommenderOptions opts = DefaultOptions();
    opts.num_samples = 0;
    expect_rejects(std::move(opts), "num_samples");
  }
  {
    RecommenderOptions opts = DefaultOptions();
    opts.num_recommended = 0;
    opts.num_random = 0;
    expect_rejects(std::move(opts), "num_recommended/num_random");
  }
  {
    RecommenderOptions opts = DefaultOptions();
    opts.ranking.k = 0;
    expect_rejects(std::move(opts), "ranking.k");
  }
  {
    RecommenderOptions opts = DefaultOptions();
    opts.semantics = ranking::Semantics::kTkp;  // Ranks by top-σ membership.
    opts.ranking.sigma = 0;
    expect_rejects(std::move(opts), "ranking.sigma");
  }

  // Class 4: unusable sampler configuration.
  {
    RecommenderOptions opts = DefaultOptions();
    opts.sampler_base.box_lo = 1.0;
    opts.sampler_base.box_hi = -1.0;
    expect_rejects(std::move(opts), "box_lo");
  }
  {
    RecommenderOptions opts = DefaultOptions();
    opts.sampler_base.noise.psi = 0.0;
    expect_rejects(std::move(opts), "psi");
  }
  {
    RecommenderOptions opts = DefaultOptions();
    opts.sampler = SamplerKind::kImportance;
    opts.importance.grid_resolution = 0;
    expect_rejects(std::move(opts), "grid_resolution");
  }
}

}  // namespace
}  // namespace topkpkg::recsys
