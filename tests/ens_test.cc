#include "topkpkg/sampling/ens.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sampling_test_util.h"
#include "topkpkg/sampling/importance_sampler.h"
#include "topkpkg/sampling/mcmc_sampler.h"
#include "topkpkg/sampling/rejection_sampler.h"

namespace topkpkg::sampling {
namespace {

using sampling_test::DefaultPrior;
using sampling_test::RandomConstraints;

TEST(EnsTest, UnweightedSamplesGiveN) {
  std::vector<WeightedSample> samples(50, WeightedSample{{0.0}, 1.0});
  EXPECT_DOUBLE_EQ(EffectiveSampleSize(samples), 50.0);
}

TEST(EnsTest, UniformScalingInvariant) {
  std::vector<WeightedSample> samples(50, WeightedSample{{0.0}, 7.5});
  EXPECT_NEAR(EffectiveSampleSize(samples), 50.0, 1e-9);
}

TEST(EnsTest, SkewedWeightsShrinkEns) {
  std::vector<WeightedSample> samples(50, WeightedSample{{0.0}, 1.0});
  samples[0].weight = 100.0;
  double ens = EffectiveSampleSize(samples);
  EXPECT_LT(ens, 10.0);
  EXPECT_GT(ens, 1.0);
}

TEST(EnsTest, EmptyPoolIsZero) {
  EXPECT_DOUBLE_EQ(EffectiveSampleSize({}), 0.0);
}

TEST(EnsTest, OneDominantWeightApproachesOne) {
  std::vector<WeightedSample> samples(10, WeightedSample{{0.0}, 1e-9});
  samples[3].weight = 5.0;
  EXPECT_NEAR(EffectiveSampleSize(samples), 1.0, 1e-6);
}

struct SamplerEff {
  double rs = 0.0;
  double is = 0.0;
  double ms = 0.0;
};

SamplerEff MeasureEff(std::size_t num_constraints, uint64_t seed) {
  Rng gen(seed);
  Vec hidden = {0.8, -0.5, 0.6};
  auto prefs = RandomConstraints(num_constraints, hidden, gen);
  ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = DefaultPrior(3, seed + 1);
  const std::size_t n = 400;
  SamplerEff eff;

  SampleStats rs_stats;
  Rng r1(seed + 2);
  auto rs = RejectionSampler(&prior, &checker).Draw(n, r1, &rs_stats);
  EXPECT_TRUE(rs.ok()) << rs.status();
  if (rs.ok()) eff.rs = EnsPerProposal(*rs, rs_stats);

  SampleStats is_stats;
  auto is_sampler = ImportanceSampler::Create(&prior, &checker);
  EXPECT_TRUE(is_sampler.ok());
  Rng r2(seed + 2);
  auto is = is_sampler->Draw(n, r2, &is_stats);
  EXPECT_TRUE(is.ok()) << is.status();
  if (is.ok()) eff.is = EnsPerProposal(*is, is_stats);

  SampleStats ms_stats;
  Rng r3(seed + 2);
  auto ms = McmcSampler(&prior, &checker).Draw(n, r3, &ms_stats);
  EXPECT_TRUE(ms.ok()) << ms.status();
  if (ms.ok()) eff.ms = EnsPerProposal(*ms, ms_stats);
  return eff;
}

// Theorems 1-2 on a moderately constrained workload, where the proposal can
// track the prior inside the valid region as the proofs assume: strictly,
// ENS(IS) >= ENS(RS), and MCMC stays competitive (it pays a fixed thinning
// factor but wastes no proposals on invalid regions).
TEST(EnsTest, TheoremOrderingOnModerateWorkload) {
  SamplerEff eff = MeasureEff(/*num_constraints=*/10, /*seed=*/21);
  EXPECT_GE(eff.is, eff.rs);
  EXPECT_GE(eff.ms, eff.is * 0.5)
      << "MCMC pays thinning overhead but must stay competitive";
  EXPECT_GE(eff.ms, eff.rs);
}

// On an extremely constrained workload (tiny valid region, multi-modal
// prior) the idealized assumption behind Theorem 1 — proposal ∝ prior inside
// the region — no longer holds exactly: importance-weight variance eats part
// of the acceptance gain. The ordering still holds up to a small constant,
// and MCMC (Theorem 2) remains clearly ahead of plain rejection. This
// documents the deviation rather than hiding it (see EXPERIMENTS.md).
TEST(EnsTest, TheoremOrderingDegradesGracefullyWhenRegionIsTiny) {
  SamplerEff eff = MeasureEff(/*num_constraints=*/50, /*seed=*/21);
  EXPECT_GE(eff.is, 0.5 * eff.rs);
  EXPECT_GE(eff.ms, eff.rs);
}

// Importance weights are densities: negative or non-finite entries are
// upstream bugs. Debug builds assert on them; release builds ignore the bad
// entries so one poisoned weight cannot turn the whole estimate into NaN.
TEST(EnsTest, MalformedWeightsAssertInDebugAndAreIgnoredInRelease) {
  std::vector<WeightedSample> bad(10, WeightedSample{{0.0}, 1.0});
  bad[3].weight = -2.0;
  bad[7].weight = std::numeric_limits<double>::quiet_NaN();
#ifdef NDEBUG
  // The 8 well-formed unit weights remain.
  EXPECT_DOUBLE_EQ(EffectiveSampleSize(bad), 8.0);
  EXPECT_TRUE(std::isfinite(EffectiveSampleSize(bad)));
  SampleStats stats;
  stats.proposed = 16;
  EXPECT_DOUBLE_EQ(EnsPerProposal(bad, stats), 0.5);
#else
  EXPECT_DEBUG_DEATH(EffectiveSampleSize(bad), "importance weight");
#endif
}

TEST(EnsTest, InfiniteWeightDoesNotPoisonTheEstimate) {
  std::vector<WeightedSample> bad(4, WeightedSample{{0.0}, 1.0});
  bad[0].weight = std::numeric_limits<double>::infinity();
#ifdef NDEBUG
  EXPECT_DOUBLE_EQ(EffectiveSampleSize(bad), 3.0);
#else
  EXPECT_DEBUG_DEATH(EffectiveSampleSize(bad), "importance weight");
#endif
}

}  // namespace
}  // namespace topkpkg::sampling
