// Cross-sampler statistical agreement: all three constrained samplers target
// the same posterior P_w(w | S_ρ), so (importance-weighted) expectations of
// test functions must agree within Monte-Carlo tolerance. This is the
// strongest correctness check we have on the samplers — each validates the
// other two.

#include <cmath>

#include <gtest/gtest.h>

#include "sampling_test_util.h"
#include "topkpkg/sampling/importance_sampler.h"
#include "topkpkg/sampling/mcmc_sampler.h"
#include "topkpkg/sampling/rejection_sampler.h"

namespace topkpkg::sampling {
namespace {

using sampling_test::DefaultPrior;
using sampling_test::RandomConstraints;

// Weighted mean of a coordinate.
double WeightedMean(const std::vector<WeightedSample>& samples,
                    std::size_t coord) {
  double num = 0.0;
  double den = 0.0;
  for (const auto& s : samples) {
    num += s.weight * s.w[coord];
    den += s.weight;
  }
  return num / den;
}

class SamplerAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SamplerAgreement, PosteriorMeansAgreeAcrossSamplers) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Rng gen(seed);
  Vec hidden = gen.UniformVector(3, -1.0, 1.0);
  auto prefs = RandomConstraints(6, hidden, gen);
  ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = DefaultPrior(3, seed + 50);

  const std::size_t n = 3000;
  Rng r1(seed + 1);
  auto rs = RejectionSampler(&prior, &checker).Draw(n, r1, nullptr);
  ASSERT_TRUE(rs.ok()) << rs.status();

  auto is_sampler = ImportanceSampler::Create(&prior, &checker);
  ASSERT_TRUE(is_sampler.ok());
  Rng r2(seed + 2);
  auto is = is_sampler->Draw(n, r2, nullptr);
  ASSERT_TRUE(is.ok()) << is.status();

  McmcSamplerOptions mopts;
  mopts.thinning = 7;
  mopts.burn_in = 300;
  Rng r3(seed + 3);
  auto ms = McmcSampler(&prior, &checker, mopts).Draw(n, r3, nullptr);
  ASSERT_TRUE(ms.ok()) << ms.status();

  for (std::size_t coord = 0; coord < 3; ++coord) {
    double m_rs = WeightedMean(*rs, coord);
    double m_is = WeightedMean(*is, coord);
    double m_ms = WeightedMean(*ms, coord);
    // RS is unbiased by construction (Lemma 1); IS must agree through its
    // importance weights, MCMC through its stationary distribution.
    EXPECT_NEAR(m_is, m_rs, 0.12) << "coord " << coord << " seed " << seed;
    EXPECT_NEAR(m_ms, m_rs, 0.12) << "coord " << coord << " seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerAgreement, ::testing::Range(1, 5));

TEST(SamplerDistributionTest, RejectionPreservesPriorShapeInsideRegion) {
  // Lemma 1(2): for valid w, the posterior is the prior up to a constant.
  // Empirically: among accepted samples, the ratio of counts in two regions
  // A, B inside the valid cone matches the prior-mass ratio restricted to
  // validity (estimated by direct prior sampling).
  std::vector<pref::Preference> prefs(1);
  prefs[0].diff = {1.0, 0.0};  // Valid iff w0 >= 0.
  ConstraintChecker checker(prefs);
  prob::GaussianMixture prior = DefaultPrior(2, 7);

  // Direct estimate of P(w1 > 0 | w0 >= 0, box) from raw prior draws.
  Rng rng(8);
  std::size_t valid = 0;
  std::size_t valid_and_up = 0;
  for (int i = 0; i < 200000; ++i) {
    Vec w = {rng.Gaussian(), rng.Gaussian()};
    w = prior.Sample(rng);
    if (!InBox(w, -1.0, 1.0) || w[0] < 0.0) continue;
    ++valid;
    if (w[1] > 0.0) ++valid_and_up;
  }
  double direct = static_cast<double>(valid_and_up) /
                  static_cast<double>(valid);

  Rng rng2(9);
  auto samples = RejectionSampler(&prior, &checker).Draw(20000, rng2);
  ASSERT_TRUE(samples.ok());
  std::size_t up = 0;
  for (const auto& s : *samples) {
    if (s.w[1] > 0.0) ++up;
  }
  double via_sampler = static_cast<double>(up) /
                       static_cast<double>(samples->size());
  EXPECT_NEAR(via_sampler, direct, 0.02);
}

TEST(SamplerDistributionTest, ImportanceWeightsIntegrateToPriorMass) {
  // The self-normalized IS estimator of E[1] is trivially 1; a sharper
  // check: the IS estimate of P(w0 > median) under no constraints matches
  // direct prior sampling.
  ConstraintChecker checker({});
  prob::GaussianMixture prior = DefaultPrior(2, 17);
  auto sampler = ImportanceSampler::Create(&prior, &checker);
  ASSERT_TRUE(sampler.ok());
  Rng rng(18);
  auto samples = sampler->Draw(20000, rng);
  ASSERT_TRUE(samples.ok());
  double num = 0.0;
  double den = 0.0;
  for (const auto& s : *samples) {
    den += s.weight;
    if (s.w[0] > 0.2) num += s.weight;
  }
  double is_est = num / den;

  Rng rng2(19);
  std::size_t hits = 0;
  std::size_t total = 0;
  for (int i = 0; i < 100000; ++i) {
    Vec w = prior.Sample(rng2);
    if (!InBox(w, -1.0, 1.0)) continue;
    ++total;
    if (w[0] > 0.2) ++hits;
  }
  double direct = static_cast<double>(hits) / static_cast<double>(total);
  EXPECT_NEAR(is_est, direct, 0.03);
}

}  // namespace
}  // namespace topkpkg::sampling
