// Integration of the Sec. 3.4 maintenance cycle: a long-lived sample pool is
// updated incrementally as feedback arrives — violators of each new
// preference are located (naive/TA/hybrid agree), removed, and replaced with
// fresh samples drawn under the grown constraint set. The pool must remain
// fully valid after every round.

#include <gtest/gtest.h>

#include "sampling_test_util.h"
#include "topkpkg/sampling/mcmc_sampler.h"
#include "topkpkg/sampling/rejection_sampler.h"
#include "topkpkg/sampling/sample_maintenance.h"
#include "topkpkg/sampling/sample_pool.h"

namespace topkpkg::sampling {
namespace {

using sampling_test::DefaultPrior;
using sampling_test::RandomConstraints;

class FeedbackLoop : public ::testing::TestWithParam<MaintenanceStrategy> {};

TEST_P(FeedbackLoop, PoolStaysValidAcrossIncrementalRounds) {
  const MaintenanceStrategy strategy = GetParam();
  Rng rng(31);
  Vec hidden = {0.7, -0.4, 0.5};
  prob::GaussianMixture prior = DefaultPrior(3, 32);

  // Round 0: pool from the unconstrained prior.
  std::vector<pref::Preference> feedback;
  ConstraintChecker empty({});
  auto initial = RejectionSampler(&prior, &empty).Draw(400, rng);
  ASSERT_TRUE(initial.ok());
  SamplePool pool(std::move(initial).value());

  for (int round = 0; round < 8; ++round) {
    // One new (consistent) preference arrives.
    auto fresh_pref = RandomConstraints(1, hidden, rng);
    const pref::Preference& rho = fresh_pref[0];

    MaintenanceResult found = FindViolators(pool, rho, strategy);
    feedback.push_back(rho);
    ConstraintChecker checker(feedback);

    // Replace violators with samples valid under the full feedback set.
    std::vector<WeightedSample> replacements;
    if (!found.violators.empty()) {
      RejectionSampler sampler(&prior, &checker);
      auto drawn = sampler.Draw(found.violators.size(), rng);
      ASSERT_TRUE(drawn.ok()) << drawn.status();
      replacements = std::move(drawn).value();
    }
    std::size_t before = pool.size();
    pool.Replace(found.violators, std::move(replacements));
    EXPECT_EQ(pool.size(), before);

    // Invariant: the whole pool satisfies every preference so far.
    for (std::size_t i = 0; i < pool.size(); ++i) {
      ASSERT_TRUE(checker.IsValid(pool.sample(i).w))
          << "round " << round << " sample " << i << " strategy "
          << MaintenanceStrategyName(strategy);
    }
  }
  EXPECT_EQ(feedback.size(), 8u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, FeedbackLoop,
                         ::testing::Values(MaintenanceStrategy::kNaive,
                                           MaintenanceStrategy::kTa,
                                           MaintenanceStrategy::kHybrid));

TEST(FeedbackLoopTest, MaintenanceCheaperThanRegeneration) {
  // The whole point of Sec. 3.4: replacing violators costs (far) fewer
  // fresh draws than rebuilding the pool each round.
  Rng rng(41);
  Vec hidden = {0.6, 0.3, -0.5};
  prob::GaussianMixture prior = DefaultPrior(3, 42);
  ConstraintChecker empty({});
  auto initial = RejectionSampler(&prior, &empty).Draw(500, rng);
  ASSERT_TRUE(initial.ok());
  SamplePool pool(std::move(initial).value());

  std::vector<pref::Preference> feedback;
  std::size_t replaced_total = 0;
  const int kRounds = 10;
  for (int round = 0; round < kRounds; ++round) {
    auto fresh = RandomConstraints(1, hidden, rng);
    auto found = FindViolators(pool, fresh[0], MaintenanceStrategy::kHybrid);
    feedback.push_back(fresh[0]);
    replaced_total += found.violators.size();
    ConstraintChecker checker(feedback);
    std::vector<WeightedSample> replacements;
    if (!found.violators.empty()) {
      auto drawn = RejectionSampler(&prior, &checker)
                       .Draw(found.violators.size(), rng);
      ASSERT_TRUE(drawn.ok());
      replacements = std::move(drawn).value();
    }
    pool.Replace(found.violators, std::move(replacements));
  }
  // Full regeneration would draw 500 samples per round.
  EXPECT_LT(replaced_total,
            static_cast<std::size_t>(kRounds) * pool.size() / 2)
      << "incremental maintenance should redraw less than half the pool per "
         "round on average";
}

TEST(FeedbackLoopTest, ReplacementSamplesFollowLatestPosterior) {
  // After maintenance, pool samples drawn at different rounds must all be
  // exchangeable w.r.t. the final constraint set — spot-check that early
  // survivors and late replacements have similar coordinate means.
  Rng rng(51);
  Vec hidden = {0.9, -0.2};
  prob::GaussianMixture prior = DefaultPrior(2, 52);
  auto prefs = RandomConstraints(4, hidden, rng);
  ConstraintChecker checker(prefs);
  auto a = RejectionSampler(&prior, &checker).Draw(2000, rng);
  auto b = RejectionSampler(&prior, &checker).Draw(2000, rng);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t coord = 0; coord < 2; ++coord) {
    double ma = 0.0;
    double mb = 0.0;
    for (const auto& s : *a) ma += s.w[coord];
    for (const auto& s : *b) mb += s.w[coord];
    EXPECT_NEAR(ma / a->size(), mb / b->size(), 0.08);
  }
}

}  // namespace
}  // namespace topkpkg::sampling
