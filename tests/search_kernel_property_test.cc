// Property tests for the allocation-free Top-k-Pkg search kernel: the
// arena/SearchScratch rewrite must stay bit-compatible with the exhaustive
// NaivePackageEnumerator oracle across profiles, weight signs, nulls and φ,
// and a SearchScratch reused across heterogeneous calls must leak no state
// between them.

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "topkpkg/common/random.h"
#include "topkpkg/data/generators.h"
#include "topkpkg/model/package.h"
#include "topkpkg/topk/naive_enumerator.h"
#include "topkpkg/topk/topk_pkg.h"

namespace topkpkg::topk {
namespace {

using model::ItemTable;
using model::Package;
using model::PackageEvaluator;
using model::Profile;

struct Workload {
  std::unique_ptr<ItemTable> table;
  std::unique_ptr<Profile> profile;
  std::unique_ptr<PackageEvaluator> evaluator;
};

Workload MakeWorkload(ItemTable table, const std::string& profile_spec,
                      std::size_t phi) {
  Workload w;
  w.table = std::make_unique<ItemTable>(std::move(table));
  w.profile = std::make_unique<Profile>(
      std::move(Profile::Parse(profile_spec)).value());
  w.evaluator =
      std::make_unique<PackageEvaluator>(w.table.get(), w.profile.get(), phi);
  return w;
}

// A random table over `spec`'s width with a per-value null probability.
ItemTable RandomTable(std::size_t n, std::size_t m, double null_prob,
                      Rng& rng) {
  std::vector<Vec> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vec row = rng.UniformVector(m, 0.0, 1.0);
    for (double& v : row) {
      if (rng.Bernoulli(null_prob)) v = model::kNullValue;
    }
    rows.push_back(std::move(row));
  }
  return std::move(ItemTable::Create(std::move(rows))).value();
}

// Weight vector with mixed signs and occasional exact zeros (a zero weight
// deactivates its feature, exercising the active-feature plan). Never
// all-zero: with no active feature the search deliberately returns the
// first k singletons ("any k packages are top-k") instead of the oracle's
// lexicographic tie-break over the whole package space.
Vec RandomWeights(std::size_t m, Rng& rng) {
  Vec w = rng.UniformVector(m, -1.0, 1.0);
  for (double& v : w) {
    if (rng.Bernoulli(0.2)) v = 0.0;
  }
  bool any = false;
  for (double v : w) any = any || v != 0.0;
  if (!any) w[m - 1] = 0.5;
  return w;
}

// ---- Oracle bit-equivalence sweep ----------------------------------------

// (seed, profile spec, phi). expand_on_ties makes the search exact for every
// profile including the plateau-tie-heavy min/max ones, so the full list —
// packages, utilities, tie-order, truncation flag — must match the oracle.
class KernelOracleEquivalence
    : public ::testing::TestWithParam<std::tuple<int, const char*, int>> {};

TEST_P(KernelOracleEquivalence, BitIdenticalToNaiveEnumerator) {
  auto [seed, spec, phi] = GetParam();
  auto profile = std::move(Profile::Parse(spec)).value();
  const std::size_t m = profile.num_features();
  Rng rng(static_cast<uint64_t>(seed) * 7919 + 13);
  const double null_prob = (seed % 3 == 0) ? 0.25 : 0.0;
  auto w = MakeWorkload(RandomTable(11, m, null_prob, rng), spec,
                        static_cast<std::size_t>(phi));
  TopKPkgSearch search(w.evaluator.get());
  NaivePackageEnumerator oracle(w.evaluator.get());
  SearchScratch scratch;  // Shared across all trials of this case.
  SearchLimits exact;
  exact.expand_on_ties = true;
  for (int trial = 0; trial < 8; ++trial) {
    Vec weights = RandomWeights(m, rng);
    if (null_prob > 0.0) {
      // A null on a min-feature is folded as the feature maximum into the
      // sorted lists and the boundary item τ — the best possible reading
      // when a large minimum is desired, but NOT an upper bound when the
      // weight is negative (the item's true aggregate contributes 0, which
      // beats any real positive minimum), so the search is knowingly
      // inexact for nulls × min × negative weight. Keep min-weights
      // non-negative under nulls; null-free seeds cover the negative side.
      for (std::size_t f = 0; f < m; ++f) {
        if (profile.op(f) == model::AggregateOp::kMin && weights[f] < 0.0) {
          weights[f] = -weights[f];
        }
      }
    }
    const std::size_t k = 1 + static_cast<std::size_t>(rng.UniformInt(5));
    auto fast = search.Search(weights, k, exact, nullptr, &scratch);
    auto slow = oracle.Search(weights, k);
    ASSERT_TRUE(fast.ok()) << fast.status();
    ASSERT_TRUE(slow.ok()) << slow.status();
    EXPECT_FALSE(fast->truncated);
    ASSERT_EQ(fast->packages.size(), slow->packages.size())
        << "seed=" << seed << " spec=" << spec << " phi=" << phi
        << " trial=" << trial;
    for (std::size_t i = 0; i < slow->packages.size(); ++i) {
      EXPECT_EQ(fast->packages[i].package, slow->packages[i].package)
          << "seed=" << seed << " spec=" << spec << " phi=" << phi
          << " trial=" << trial << " rank=" << i;
      EXPECT_NEAR(fast->packages[i].utility, slow->packages[i].utility, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProfilesTimesPhi, KernelOracleEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values("sum,avg", "max,min", "sum,max,min",
                                         "avg,min", "sum,sum,avg,max"),
                       ::testing::Values(1, 2, 3, 4)));

// ---- Scratch-reuse regression --------------------------------------------

// Two SearchResults must agree exactly: same packages, bitwise-equal
// utilities, same truncation flag and work counters.
void ExpectSameResult(const SearchResult& a, const SearchResult& b) {
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.items_accessed, b.items_accessed);
  EXPECT_EQ(a.packages_generated, b.packages_generated);
  EXPECT_EQ(a.expansions, b.expansions);
  ASSERT_EQ(a.packages.size(), b.packages.size());
  for (std::size_t i = 0; i < a.packages.size(); ++i) {
    EXPECT_EQ(a.packages[i].package, b.packages[i].package) << "rank " << i;
    EXPECT_EQ(a.packages[i].utility, b.packages[i].utility) << "rank " << i;
  }
}

// One scratch serves interleaved searches over two evaluators of different
// dimensionality/φ, different weights, k, and limits — including truncating
// limits that exercise the max_queue overflow and max_expansions paths.
// Every call must match the same call against a fresh scratch.
TEST(SearchScratchReuseTest, HeterogeneousCallsLeakNoState) {
  auto small = MakeWorkload(
      std::move(data::GenerateUniform(10, 2, 91)).value(), "sum,avg", 3);
  auto large = MakeWorkload(
      std::move(data::GenerateAntiCorrelated(60, 4, 92)).value(),
      "sum,max,min,avg", 4);
  TopKPkgSearch small_search(small.evaluator.get());
  TopKPkgSearch large_search(large.evaluator.get());

  SearchLimits exact;
  SearchLimits ties;
  ties.expand_on_ties = true;
  SearchLimits tiny_expansions;
  tiny_expansions.max_expansions = 20;
  SearchLimits tiny_queue;
  tiny_queue.max_queue = 3;
  SearchLimits tiny_access;
  tiny_access.max_items_accessed = 7;

  struct Call {
    const TopKPkgSearch* search;
    std::size_t m;
    std::size_t k;
    const SearchLimits* limits;
  };
  const std::vector<Call> calls = {
      {&small_search, 2, 2, &exact},   {&large_search, 4, 5, &tiny_queue},
      {&small_search, 2, 4, &ties},    {&large_search, 4, 1, &tiny_expansions},
      {&large_search, 4, 3, &exact},   {&small_search, 2, 1, &tiny_access},
      {&large_search, 4, 2, &ties},    {&small_search, 2, 3, &tiny_queue},
  };

  Rng rng(4242);
  SearchScratch shared;
  for (int round = 0; round < 3; ++round) {
    for (const Call& call : calls) {
      const Vec weights = RandomWeights(call.m, rng);
      auto reused =
          call.search->Search(weights, call.k, *call.limits, nullptr, &shared);
      SearchScratch fresh;
      auto clean =
          call.search->Search(weights, call.k, *call.limits, nullptr, &fresh);
      ASSERT_TRUE(reused.ok()) << reused.status();
      ASSERT_TRUE(clean.ok()) << clean.status();
      ExpectSameResult(*reused, *clean);
    }
  }
}

// The thread_local default scratch must behave exactly like an explicit one.
TEST(SearchScratchReuseTest, DefaultThreadLocalScratchMatchesExplicit) {
  auto w = MakeWorkload(
      std::move(data::GenerateUniform(30, 3, 93)).value(), "sum,avg,min", 3);
  TopKPkgSearch search(w.evaluator.get());
  Rng rng(777);
  for (int trial = 0; trial < 5; ++trial) {
    const Vec weights = RandomWeights(3, rng);
    auto via_tls = search.Search(weights, 4);
    SearchScratch fresh;
    auto via_fresh = search.Search(weights, 4, {}, nullptr, &fresh);
    ASSERT_TRUE(via_tls.ok());
    ASSERT_TRUE(via_fresh.ok());
    ExpectSameResult(*via_tls, *via_fresh);
  }
}

// Filters still apply under the skip-before-materialize collector: the
// filtered search through a reused scratch matches a fresh-scratch run and
// never returns a non-passing package.
TEST(SearchScratchReuseTest, FilterWithReusedScratch) {
  auto w = MakeWorkload(
      std::move(data::GenerateUniform(12, 2, 94)).value(), "sum,avg", 3);
  TopKPkgSearch search(w.evaluator.get());
  TopKPkgSearch::PackageFilter only_pairs = [](const Package& p) {
    return p.size() == 2;
  };
  Rng rng(555);
  SearchScratch shared;
  for (int trial = 0; trial < 5; ++trial) {
    const Vec weights = RandomWeights(2, rng);
    auto filtered = search.Search(weights, 3, {}, &only_pairs, &shared);
    SearchScratch fresh;
    auto clean = search.Search(weights, 3, {}, &only_pairs, &fresh);
    ASSERT_TRUE(filtered.ok());
    ASSERT_TRUE(clean.ok());
    ExpectSameResult(*filtered, *clean);
    for (const auto& sp : filtered->packages) {
      EXPECT_EQ(sp.package.size(), 2u);
    }
  }
}

// A PackageFilter that itself runs a Search() with the default scratch must
// not corrupt the outer call's live arena: the nested call detects the busy
// thread_local scratch and falls back to a private one.
TEST(SearchScratchReuseTest, ReentrantSearchThroughFilterIsSafe) {
  auto w = MakeWorkload(
      std::move(data::GenerateUniform(15, 2, 95)).value(), "sum,avg", 3);
  TopKPkgSearch search(w.evaluator.get());
  const Vec inner_w = {0.3, 0.4};
  // Keep packages whose items all appear in the nested search's top list —
  // contrived, but it exercises a full Search inside the expansion loop.
  TopKPkgSearch::PackageFilter nested = [&](const Package& p) {
    auto inner = search.Search(inner_w, 6);
    if (!inner.ok()) return false;
    for (model::ItemId id : p.items()) {
      bool found = false;
      for (const auto& sp : inner->packages) {
        if (sp.package.Contains(id)) found = true;
      }
      if (!found) return false;
    }
    return true;
  };
  Rng rng(909);
  for (int trial = 0; trial < 3; ++trial) {
    const Vec weights = RandomWeights(2, rng);
    auto reentrant = search.Search(weights, 3, {}, &nested);
    SearchScratch outer_fresh;
    auto isolated = search.Search(weights, 3, {}, &nested, &outer_fresh);
    ASSERT_TRUE(reentrant.ok());
    ASSERT_TRUE(isolated.ok());
    ExpectSameResult(*reentrant, *isolated);
  }
}

}  // namespace
}  // namespace topkpkg::topk
